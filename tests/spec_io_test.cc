// Unit tests for specification serialization: round trips preserve
// queryability, and parsing rejects malformed inputs.

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/spec_io.h"

namespace relspec {
namespace {

constexpr const char* kMeets = R"(
  Meets(0, Tony).
  Next(Tony, Jan).
  Next(Jan, Tony).
  Meets(t, x), Next(x, y) -> Meets(t+1, y).
)";

constexpr const char* kList = R"(
  P(a).
  P(b).
  P(x) -> Member(ext(0, x), x).
  P(y), Member(s, x) -> Member(ext(s, y), y).
  P(y), Member(s, x) -> Member(ext(s, y), x).
)";

Path NatPath(const SymbolTable& symbols, int n) {
  FuncId succ = *symbols.FindFunction("+1");
  std::vector<FuncId> syms(static_cast<size_t>(n), succ);
  return Path(std::move(syms));
}

TEST(SpecIo, GraphSpecRoundTripMeets) {
  auto db = FunctionalDatabase::FromSource(kMeets);
  ASSERT_TRUE(db.ok());
  auto spec = (*db)->BuildGraphSpec();
  ASSERT_TRUE(spec.ok());
  std::string text = SpecIo::Serialize(*spec);
  auto back = SpecIo::ParseGraphSpec(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString() << "\n" << text;

  // The parsed spec answers membership identically — the rules have been
  // "forgotten".
  PredId meets = *back->symbols().FindPredicate("Meets");
  ConstId tony = *back->symbols().FindConstant("Tony");
  ConstId jan = *back->symbols().FindConstant("Jan");
  for (int n = 0; n <= 15; ++n) {
    Path p = NatPath(back->symbols(), n);
    EXPECT_EQ(back->Holds(p, meets, {tony}), n % 2 == 0) << n;
    EXPECT_EQ(back->Holds(p, meets, {jan}), n % 2 == 1) << n;
  }
  PredId next = *back->symbols().FindPredicate("Next");
  EXPECT_TRUE(back->HoldsGlobal(next, {tony, jan}));

  // Serialization is stable (idempotent round trip).
  EXPECT_EQ(SpecIo::Serialize(*back), text);
}

TEST(SpecIo, GraphSpecRoundTripListWithTwoSymbols) {
  auto db = FunctionalDatabase::FromSource(kList);
  ASSERT_TRUE(db.ok());
  auto spec = (*db)->BuildGraphSpec();
  ASSERT_TRUE(spec.ok());
  auto back = SpecIo::ParseGraphSpec(SpecIo::Serialize(*spec));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  PredId member = *back->symbols().FindPredicate("Member");
  ConstId a = *back->symbols().FindConstant("a");
  ConstId b = *back->symbols().FindConstant("b");
  FuncId fa = *back->symbols().FindFunction("ext{a}");
  FuncId fb = *back->symbols().FindFunction("ext{b}");
  Path ab = Path({fa, fb});
  EXPECT_TRUE(back->Holds(ab, member, {a}));
  EXPECT_TRUE(back->Holds(ab, member, {b}));
  Path aa = Path({fa, fa});
  EXPECT_TRUE(back->Holds(aa, member, {a}));
  EXPECT_FALSE(back->Holds(aa, member, {b}));
}

TEST(SpecIo, EquationalSpecRoundTrip) {
  auto db = FunctionalDatabase::FromSource(kMeets);
  ASSERT_TRUE(db.ok());
  auto spec = (*db)->BuildEquationalSpec();
  ASSERT_TRUE(spec.ok());
  std::string text = SpecIo::Serialize(*spec);
  auto back = SpecIo::ParseEquationalSpec(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString() << "\n" << text;
  EXPECT_EQ(back->num_equations(), spec->num_equations());
  PredId meets = *back->symbols().FindPredicate("Meets");
  ConstId tony = *back->symbols().FindConstant("Tony");
  for (int n = 0; n <= 15; ++n) {
    Path p = NatPath(back->symbols(), n);
    EXPECT_EQ(back->Holds(p, meets, {tony}), n % 2 == 0) << n;
  }
  EXPECT_EQ(SpecIo::Serialize(*back), text);
}

TEST(SpecIo, RejectsWrongMagic) {
  EXPECT_FALSE(SpecIo::ParseGraphSpec("not a spec\n").ok());
  EXPECT_FALSE(SpecIo::ParseEquationalSpec("relspec-graph-spec v1\n").ok());
}

TEST(SpecIo, RejectsTruncatedInput) {
  auto db = FunctionalDatabase::FromSource(kMeets);
  ASSERT_TRUE(db.ok());
  auto spec = (*db)->BuildGraphSpec();
  ASSERT_TRUE(spec.ok());
  std::string text = SpecIo::Serialize(*spec);
  // Drop the trailing "end" and some clusters.
  std::string truncated = text.substr(0, text.size() * 2 / 3);
  EXPECT_FALSE(SpecIo::ParseGraphSpec(truncated).ok());
}

TEST(SpecIo, RejectsUnknownSymbolsInBody) {
  auto db = FunctionalDatabase::FromSource(kMeets);
  ASSERT_TRUE(db.ok());
  auto spec = (*db)->BuildGraphSpec();
  ASSERT_TRUE(spec.ok());
  std::string text = SpecIo::Serialize(*spec);
  size_t pos = text.find("Meets");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 5, "Meats");  // atom refers to an undeclared predicate
  EXPECT_FALSE(SpecIo::ParseGraphSpec(text).ok());
}

TEST(SpecIo, CommentsAndBlankLinesIgnored) {
  auto db = FunctionalDatabase::FromSource(kMeets);
  ASSERT_TRUE(db.ok());
  auto spec = (*db)->BuildGraphSpec();
  ASSERT_TRUE(spec.ok());
  std::string text = SpecIo::Serialize(*spec);
  std::string commented = "# a comment\n\n" + text;
  EXPECT_TRUE(SpecIo::ParseGraphSpec(commented).ok());
}

}  // namespace
}  // namespace relspec
