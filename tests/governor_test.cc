// ResourceGovernor unit tests plus end-to-end budget/cancellation coverage:
// sticky first breach, graceful degradation soundness, truncated-spec
// serialization round-trips, and prompt cancellation of the parallel
// evaluator.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/base/governor.h"
#include "src/core/engine.h"
#include "src/core/spec_io.h"

namespace relspec {
namespace {

constexpr char kMeets[] = R"(
  Meets(0, Tony).
  Next(Tony, Jan).  Next(Jan, Tony).
  Meets(t, x), Next(x, y) -> Meets(t+1, y).
)";

// ---------------------------------------------------------------------------
// Governor unit semantics
// ---------------------------------------------------------------------------

TEST(Governor, DefaultLimitsGovernNothing) {
  ResourceGovernor g;
  EXPECT_TRUE(g.Check().ok());
  EXPECT_TRUE(g.CheckTuples(1u << 30).ok());
  EXPECT_TRUE(g.CheckNodes(1u << 30).ok());
  EXPECT_TRUE(g.CheckDepth(1u << 30).ok());
  EXPECT_TRUE(g.ChargeRound().ok());
  EXPECT_TRUE(g.ChargeBytes(1ull << 40).ok());
  EXPECT_FALSE(g.breached());
  EXPECT_FALSE(g.ShouldAbort());
}

TEST(Governor, CancellationIsSticky) {
  ResourceGovernor g;
  g.RequestCancel();
  EXPECT_TRUE(g.ShouldAbort());
  Status first = g.Check();
  EXPECT_TRUE(first.IsCancelled()) << first.ToString();
  // Every later poll — including budget polls — returns the first breach.
  EXPECT_TRUE(g.CheckTuples(0).IsCancelled());
  EXPECT_TRUE(g.status().IsCancelled());
  EXPECT_TRUE(g.breached());
}

TEST(Governor, DeadlineBreachesWithDeadlineExceeded) {
  GovernorLimits limits;
  limits.deadline_ms = 1;
  ResourceGovernor g(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(g.ShouldAbort());
  EXPECT_TRUE(g.Check().IsDeadlineExceeded()) << g.Check().ToString();
  EXPECT_GE(g.elapsed_ms(), 1);
}

TEST(Governor, LevelBudgetsBreachAtFirstExcess) {
  GovernorLimits limits;
  limits.max_tuples = 10;
  limits.max_nodes = 20;
  limits.max_depth = 5;
  limits.max_rounds = 2;
  limits.max_bytes = 100;
  {
    ResourceGovernor g(limits);
    EXPECT_TRUE(g.CheckTuples(10).ok());
    EXPECT_TRUE(g.CheckTuples(11).IsResourceExhausted());
  }
  {
    ResourceGovernor g(limits);
    EXPECT_TRUE(g.CheckNodes(20).ok());
    EXPECT_TRUE(g.CheckNodes(21).IsResourceExhausted());
  }
  {
    ResourceGovernor g(limits);
    EXPECT_TRUE(g.CheckDepth(5).ok());
    EXPECT_TRUE(g.CheckDepth(6).IsResourceExhausted());
  }
  {
    ResourceGovernor g(limits);
    EXPECT_TRUE(g.ChargeRound().ok());
    EXPECT_TRUE(g.ChargeRound().ok());
    EXPECT_TRUE(g.ChargeRound().IsResourceExhausted());
  }
  {
    ResourceGovernor g(limits);
    EXPECT_TRUE(g.ChargeBytes(60).ok());
    EXPECT_TRUE(g.ChargeBytes(60).IsResourceExhausted());
  }
}

TEST(Governor, FirstBreachWinsAndPeaksTrackProgress) {
  GovernorLimits limits;
  limits.max_nodes = 5;
  ResourceGovernor g(limits);
  EXPECT_TRUE(g.CheckNodes(3).ok());
  Status first = g.CheckNodes(9);
  EXPECT_TRUE(first.IsResourceExhausted());
  // A later, different breach condition does not replace the first.
  g.RequestCancel();
  EXPECT_EQ(g.Check().code(), first.code());
  EXPECT_EQ(g.Check().message(), first.message());
  EXPECT_EQ(g.peak_nodes(), 9u);
  // ProgressString carries the observed peaks for breach messages.
  EXPECT_NE(g.ProgressString().find("nodes=9"), std::string::npos)
      << g.ProgressString();
}

TEST(Governor, ShouldAbortDoesNotRecordABreach) {
  GovernorLimits limits;
  limits.deadline_ms = 1;
  ResourceGovernor g(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(g.ShouldAbort());
  // Workers only poll; the coordinator converts the condition to a Status.
  EXPECT_FALSE(g.breached());
  EXPECT_TRUE(g.status().ok());
}

// ---------------------------------------------------------------------------
// Graceful degradation: soundness of truncated results
// ---------------------------------------------------------------------------

TEST(GovernorEngine, BreachWithoutAllowPartialFailsTheBuild) {
  GovernorLimits limits;
  limits.max_nodes = 2;
  ResourceGovernor governor(limits);
  EngineOptions options;
  options.governor = &governor;
  auto db = FunctionalDatabase::FromSource(kMeets, options);
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsResourceExhausted()) << db.status().ToString();
  EXPECT_TRUE(db.status().IsResourceBreach());
}

TEST(GovernorEngine, AllowPartialYieldsSoundTruncatedDatabase) {
  auto full = FunctionalDatabase::FromSource(kMeets);
  ASSERT_TRUE(full.ok());

  GovernorLimits limits;
  limits.max_nodes = 2;
  ResourceGovernor governor(limits);
  EngineOptions options;
  options.governor = &governor;
  options.allow_partial = true;
  auto partial = FunctionalDatabase::FromSource(kMeets, options);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_TRUE((*partial)->truncated());
  EXPECT_TRUE((*partial)->breach().IsResourceExhausted());
  // A truncated database is not a model of the program; Verify must say so.
  EXPECT_TRUE((*partial)->Verify().IsFailedPrecondition());

  // Soundness: every fact the partial database reports true is true in the
  // full least fixpoint (monotone iteration => under-approximation).
  const char* probes[] = {"Meets(0, Tony)", "Meets(1, Jan)",  "Meets(2, Tony)",
                          "Meets(3, Jan)",  "Meets(1, Tony)", "Meets(4, Jan)"};
  for (const char* probe : probes) {
    auto in_partial = (*partial)->HoldsFactText(probe);
    ASSERT_TRUE(in_partial.ok()) << probe;
    if (*in_partial) {
      auto in_full = (*full)->HoldsFactText(probe);
      ASSERT_TRUE(in_full.ok());
      EXPECT_TRUE(*in_full) << probe << " claimed by the truncated database "
                            << "but absent from the least fixpoint";
    }
  }
}

TEST(GovernorEngine, TruncatedGraphSpecRoundTripsThroughSpecIo) {
  GovernorLimits limits;
  limits.max_nodes = 2;
  ResourceGovernor governor(limits);
  EngineOptions options;
  options.governor = &governor;
  options.allow_partial = true;
  auto db = FunctionalDatabase::FromSource(kMeets, options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE((*db)->truncated());

  auto spec = (*db)->BuildGraphSpec();
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(spec->truncated());
  std::string text = SpecIo::Serialize(*spec);
  EXPECT_NE(text.find("truncated "), std::string::npos);

  auto parsed = SpecIo::ParseGraphSpec(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->truncated());
  EXPECT_EQ(parsed->breach().code(), spec->breach().code());
  EXPECT_EQ(parsed->breach().message(), spec->breach().message());
  // The round-trip is a fixpoint: serialize(parse(text)) == text.
  EXPECT_EQ(SpecIo::Serialize(*parsed), text);
}

TEST(GovernorEngine, TruncatedEquationalSpecRoundTripsThroughSpecIo) {
  GovernorLimits limits;
  limits.max_nodes = 2;
  ResourceGovernor governor(limits);
  EngineOptions options;
  options.governor = &governor;
  options.allow_partial = true;
  auto db = FunctionalDatabase::FromSource(kMeets, options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  auto espec = (*db)->BuildEquationalSpec();
  ASSERT_TRUE(espec.ok());
  ASSERT_TRUE(espec->truncated());
  std::string text = SpecIo::Serialize(*espec);
  auto parsed = SpecIo::ParseEquationalSpec(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->truncated());
  EXPECT_EQ(parsed->breach().code(), espec->breach().code());
  EXPECT_EQ(SpecIo::Serialize(*parsed), text);
}

// ---------------------------------------------------------------------------
// Parallel evaluation cancels within one chunk boundary
// ---------------------------------------------------------------------------

TEST(GovernorParallel, ParallelFixpointObservesCancellationPromptly) {
  // A program whose chi table is big enough that a multi-threaded pass has
  // many chunks: the on-call rotation with a wide constant set.
  std::string source;
  for (int i = 0; i < 12; ++i) {
    source += "P(0, k" + std::to_string(i) + ").\n";
  }
  source += "P(t, x) -> P(t+1, x).\n";

  GovernorLimits limits;
  ResourceGovernor governor(limits);
  governor.RequestCancel();  // cancelled before the run even starts

  EngineOptions options;
  options.governor = &governor;
  options.fixpoint.num_threads = 4;
  auto start = std::chrono::steady_clock::now();
  auto db = FunctionalDatabase::FromSource(source, options);
  auto elapsed = std::chrono::steady_clock::now() - start;

  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsCancelled()) << db.status().ToString();
  // Workers drain at the next chunk boundary: the whole run must die well
  // under a second even though the uncancelled build is non-trivial.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            1000)
      << "cancellation took more than one chunk boundary to observe";
}

TEST(GovernorParallel, ParallelFixpointHonorsAnExpiredDeadline) {
  GovernorLimits limits;
  limits.deadline_ms = 1;
  ResourceGovernor governor(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  EngineOptions options;
  options.governor = &governor;
  options.fixpoint.num_threads = 4;
  auto start = std::chrono::steady_clock::now();
  auto db = FunctionalDatabase::FromSource(kMeets, options);
  auto elapsed = std::chrono::steady_clock::now() - start;

  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsDeadlineExceeded()) << db.status().ToString();
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            1000)
      << "expired deadline took more than one chunk boundary to observe";
}

TEST(GovernorParallel, ParallelAndSequentialTruncationAreBothSound) {
  // The same budget under 1 and 4 threads: both runs must either fail with
  // a breach or (with allow_partial) produce sound truncated databases.
  GovernorLimits limits;
  limits.max_nodes = 2;
  for (int threads : {1, 4}) {
    ResourceGovernor governor(limits);
    EngineOptions options;
    options.governor = &governor;
    options.allow_partial = true;
    options.fixpoint.num_threads = threads;
    auto db = FunctionalDatabase::FromSource(kMeets, options);
    ASSERT_TRUE(db.ok()) << "threads=" << threads << ": "
                         << db.status().ToString();
    EXPECT_TRUE((*db)->truncated()) << "threads=" << threads;
    auto holds = (*db)->HoldsFactText("Meets(0, Tony)");
    ASSERT_TRUE(holds.ok());
    EXPECT_TRUE(*holds) << "base fact lost under truncation, threads="
                        << threads;
  }
}

}  // namespace
}  // namespace relspec
