// Unit tests for the [RBS87] safety baseline: unboundedness analysis and the
// query gate — and the contrast with relspec's finite specifications.

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/query.h"
#include "src/parser/parser.h"
#include "src/safety/safety.h"

namespace relspec {
namespace {

constexpr const char* kMeets = R"(
  Meets(0, Tony).
  Next(Tony, Jan).
  Next(Jan, Tony).
  Meets(t, x), Next(x, y) -> Meets(t+1, y).
)";

TEST(Safety, RecursiveGrowingPredicateIsUnbounded) {
  auto p = ParseProgram(kMeets);
  ASSERT_TRUE(p.ok());
  SafetyReport report = AnalyzeSafety(*p);
  PredId meets = *p->symbols.FindPredicate("Meets");
  PredId next = *p->symbols.FindPredicate("Next");
  EXPECT_TRUE(report.IsUnbounded(meets));
  EXPECT_FALSE(report.IsUnbounded(next));
  EXPECT_NE(report.ToString(p->symbols).find("Meets"), std::string::npos);
}

TEST(Safety, NonRecursiveGrowthIsBounded) {
  // One growth step with no recursion: extension stays finite.
  auto p = ParseProgram(R"(
    P(0).
    P(t) -> Q(t+1).
  )");
  ASSERT_TRUE(p.ok());
  SafetyReport report = AnalyzeSafety(*p);
  PredId q = *p->symbols.FindPredicate("Q");
  EXPECT_FALSE(report.IsUnbounded(q));
}

TEST(Safety, UnboundednessPropagatesDownstream) {
  auto p = ParseProgram(R"(
    P(0).
    P(t) -> P(t+1).
    P(s) -> Copy(s).
  )");
  ASSERT_TRUE(p.ok());
  SafetyReport report = AnalyzeSafety(*p);
  EXPECT_TRUE(report.IsUnbounded(*p->symbols.FindPredicate("Copy")));
}

TEST(Safety, IndirectRecursionDetected) {
  auto p = ParseProgram(R"(
    P(0).
    P(t) -> Q(t+1).
    Q(t) -> P(t).
  )");
  ASSERT_TRUE(p.ok());
  SafetyReport report = AnalyzeSafety(*p);
  EXPECT_TRUE(report.IsUnbounded(*p->symbols.FindPredicate("P")));
  EXPECT_TRUE(report.IsUnbounded(*p->symbols.FindPredicate("Q")));
}

TEST(Safety, PureDatalogAlwaysBounded) {
  auto p = ParseProgram(R"(
    Edge(a, b).
    Edge(x, y) -> Reach(x, y).
    Reach(x, y), Edge(y, z) -> Reach(x, z).
  )");
  ASSERT_TRUE(p.ok());
  SafetyReport report = AnalyzeSafety(*p);
  EXPECT_TRUE(report.unbounded_predicates.empty());
}

TEST(Safety, QueryGateRejectsInfiniteAnswers) {
  auto p = ParseProgram(kMeets);
  ASSERT_TRUE(p.ok());
  SafetyReport report = AnalyzeSafety(*p);
  auto unsafe = ParseQuery("?(t, x) Meets(t, x).", &*p);
  ASSERT_TRUE(unsafe.ok());
  EXPECT_FALSE(IsQuerySafe(*p, report, *unsafe));
  // Projecting the functional variable away restores safety.
  auto safe = ParseQuery("?(x) Meets(t, x).", &*p);
  ASSERT_TRUE(safe.ok());
  EXPECT_TRUE(IsQuerySafe(*p, report, *safe));
  // Queries without functional variables are always safe.
  auto plain = ParseQuery("?(x, y) Next(x, y).", &*p);
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(IsQuerySafe(*p, report, *plain));
}

TEST(Safety, BoundedBinderMakesQuerySafe) {
  // The functional variable is also bound by a bounded predicate.
  auto p = ParseProgram(R"(
    P(0).
    P(t) -> P(t+1).
    Start(0).
    Start(s), P(s) -> Hit(s).
  )");
  ASSERT_TRUE(p.ok());
  SafetyReport report = AnalyzeSafety(*p);
  auto q = ParseQuery("?(s) P(s), Start(s).", &*p);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(IsQuerySafe(*p, report, *q));
}

TEST(Safety, RelspecAnswersWhatRbs87Rejects) {
  // The paper's motivating contrast (Section 1): [RBS87] rejects the query;
  // relspec returns a finite specification of the infinite answer.
  auto p = ParseProgram(kMeets);
  ASSERT_TRUE(p.ok());
  SafetyReport report = AnalyzeSafety(*p);
  auto q = ParseQuery("?(t, x) Meets(t, x).", &*p);
  ASSERT_TRUE(q.ok());
  ASSERT_FALSE(IsQuerySafe(*p, report, *q));  // the 1987 answer: "reject"

  auto db = FunctionalDatabase::FromSource(kMeets);
  ASSERT_TRUE(db.ok());
  auto q2 = ParseQuery("?(t, x) Meets(t, x).", (*db)->mutable_program());
  ASSERT_TRUE(q2.ok());
  auto ans = AnswerQuery(db->get(), *q2);  // the 1989 answer: a finite spec
  ASSERT_TRUE(ans.ok());
  EXPECT_TRUE(ans->has_functional_answer());
  EXPECT_FALSE(ans->IsEmpty());
  EXPECT_GT(ans->NumSpecTuples(), 0u);
}

}  // namespace
}  // namespace relspec
