// Unit tests for src/term: symbol interning, hash-consed terms, paths.

#include <gtest/gtest.h>

#include "src/term/path.h"
#include "src/term/symbol_table.h"
#include "src/term/term.h"

namespace relspec {
namespace {

// ---------- SymbolTable ----------

TEST(SymbolTable, InternPredicateIsIdempotent) {
  SymbolTable t;
  auto p1 = t.InternPredicate("Meets", 2, true);
  auto p2 = t.InternPredicate("Meets", 2, false);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(*p1, *p2);
  EXPECT_TRUE(t.predicate(*p1).functional);  // sticky once set
  EXPECT_EQ(t.num_predicates(), 1u);
}

TEST(SymbolTable, PredicateArityConflictRejected) {
  SymbolTable t;
  ASSERT_TRUE(t.InternPredicate("P", 2, false).ok());
  auto bad = t.InternPredicate("P", 3, false);
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST(SymbolTable, SetFunctionalPromotes) {
  SymbolTable t;
  auto p = t.InternPredicate("P", 1, false);
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(t.predicate(*p).functional);
  ASSERT_TRUE(t.SetFunctional(*p).ok());
  EXPECT_TRUE(t.predicate(*p).functional);
  EXPECT_TRUE(t.SetFunctional(99).IsOutOfRange());
}

TEST(SymbolTable, FunctionArity) {
  SymbolTable t;
  auto f = t.InternFunction("f", 1);
  auto g = t.InternFunction("ext", 2);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(t.function(*f).arity, 1);
  EXPECT_EQ(t.function(*g).arity, 2);
  EXPECT_TRUE(t.InternFunction("f", 2).status().IsInvalidArgument());
  EXPECT_TRUE(t.InternFunction("h", 0).status().IsInvalidArgument());
}

TEST(SymbolTable, FindMissingReturnsNotFound) {
  SymbolTable t;
  EXPECT_TRUE(t.FindPredicate("Q").status().IsNotFound());
  EXPECT_TRUE(t.FindFunction("g").status().IsNotFound());
  EXPECT_TRUE(t.FindConstant("c").status().IsNotFound());
}

TEST(SymbolTable, ConstantsAndVariablesInternDensely) {
  SymbolTable t;
  ConstId a = t.InternConstant("a");
  ConstId b = t.InternConstant("b");
  EXPECT_EQ(t.InternConstant("a"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(t.constant_name(b), "b");
  VarId x = t.InternVariable("x");
  EXPECT_EQ(t.InternVariable("x"), x);
  EXPECT_EQ(t.variable_name(x), "x");
}

// ---------- TermArena ----------

TEST(TermArena, ZeroIsPreinterned) {
  TermArena arena;
  EXPECT_EQ(arena.Zero(), kZeroTerm);
  EXPECT_EQ(arena.Depth(kZeroTerm), 0);
  EXPECT_TRUE(arena.IsZero(kZeroTerm));
  EXPECT_EQ(arena.size(), 1u);
}

TEST(TermArena, HashConsingDeduplicates) {
  SymbolTable t;
  FuncId f = *t.InternFunction("f", 1);
  FuncId g = *t.InternFunction("g", 1);
  TermArena arena;
  TermId f0 = arena.Apply(f, arena.Zero());
  TermId f0_again = arena.Apply(f, arena.Zero());
  EXPECT_EQ(f0, f0_again);
  TermId gf0 = arena.Apply(g, f0);
  EXPECT_NE(gf0, f0);
  EXPECT_EQ(arena.Depth(gf0), 2);
  EXPECT_EQ(arena.size(), 3u);  // 0, f(0), g(f(0))
}

TEST(TermArena, MixedTermsCarryArguments) {
  SymbolTable t;
  FuncId ext = *t.InternFunction("ext", 2);
  ConstId a = t.InternConstant("a");
  ConstId b = t.InternConstant("b");
  TermArena arena;
  TermId ta = arena.Apply(ext, arena.Zero(), {a});
  TermId tb = arena.Apply(ext, arena.Zero(), {b});
  EXPECT_NE(ta, tb);
  EXPECT_EQ(arena.Apply(ext, arena.Zero(), {a}), ta);
  EXPECT_FALSE(arena.IsPure(ta));
  EXPECT_TRUE(arena.ToSymbols(ta).status().IsFailedPrecondition());
  EXPECT_EQ(arena.ToString(ta, t), "ext(0,a)");
}

TEST(TermArena, SymbolsRoundTrip) {
  SymbolTable t;
  FuncId f = *t.InternFunction("f", 1);
  FuncId g = *t.InternFunction("g", 1);
  TermArena arena;
  std::vector<FuncId> word = {f, g, g, f};
  TermId id = arena.FromSymbols(word);
  auto back = arena.ToSymbols(id);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, word);
  EXPECT_EQ(arena.ToString(id, t), "f(g(g(f(0))))");
  EXPECT_TRUE(arena.IsPure(id));
}

// ---------- Path ----------

TEST(Path, ZeroProperties) {
  Path z = Path::Zero();
  EXPECT_TRUE(z.empty());
  EXPECT_EQ(z.depth(), 0);
}

TEST(Path, ExtendParentPrefix) {
  SymbolTable t;
  FuncId f = *t.InternFunction("f", 1);
  FuncId g = *t.InternFunction("g", 1);
  Path p = Path::Zero().Extend(f).Extend(g);  // g(f(0))
  EXPECT_EQ(p.depth(), 2);
  EXPECT_EQ(p.Outermost(), g);
  EXPECT_EQ(p.Parent(), Path::Zero().Extend(f));
  EXPECT_EQ(p.Prefix(1), Path::Zero().Extend(f));
  EXPECT_EQ(p.Prefix(0), Path::Zero());
  EXPECT_EQ(p.ToString(t), "g(f(0))");
  EXPECT_EQ(p.ToWord(t), "f.g");
}

TEST(Path, ShortlexOrdering) {
  SymbolTable t;
  FuncId f = *t.InternFunction("f", 1);
  FuncId g = *t.InternFunction("g", 1);
  Path z = Path::Zero();
  Path pf = z.Extend(f);
  Path pg = z.Extend(g);
  Path pff = pf.Extend(f);
  EXPECT_TRUE(z < pf);
  EXPECT_TRUE(pf < pg);   // same length: lexicographic by FuncId
  EXPECT_TRUE(pg < pff);  // shorter first
}

TEST(Path, TermRoundTrip) {
  SymbolTable t;
  FuncId f = *t.InternFunction("f", 1);
  TermArena arena;
  Path p = Path::Zero().Extend(f).Extend(f);
  TermId id = p.ToTerm(&arena);
  auto back = Path::FromTerm(arena, id);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, p);
}

TEST(Path, HashConsistency) {
  SymbolTable t;
  FuncId f = *t.InternFunction("f", 1);
  Path a = Path::Zero().Extend(f);
  Path b = Path::Zero().Extend(f);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(Path, AllPathsOfDepthEnumeratesShortlexLayer) {
  SymbolTable t;
  FuncId f = *t.InternFunction("f", 1);
  FuncId g = *t.InternFunction("g", 1);
  std::vector<Path> layer = AllPathsOfDepth({f, g}, 2);
  ASSERT_EQ(layer.size(), 4u);
  EXPECT_EQ(layer[0].ToWord(t), "f.f");
  EXPECT_EQ(layer[1].ToWord(t), "f.g");
  EXPECT_EQ(layer[2].ToWord(t), "g.f");
  EXPECT_EQ(layer[3].ToWord(t), "g.g");
  EXPECT_EQ(AllPathsOfDepth({f, g}, 0).size(), 1u);
}

}  // namespace
}  // namespace relspec
