// Fuzz target for the parser/lexer front end and the binary snapshot
// loader.
//
// Dual mode:
//
//  * With clang's libFuzzer (-fsanitize=fuzzer), LLVMFuzzerTestOneInput is
//    the entry point and the runtime drives input generation.
//  * Without libFuzzer (RELSPEC_FUZZ_STANDALONE, the gcc path), a standalone
//    main() replays every seed corpus file given on the command line, then
//    runs a time-bounded deterministic mutation loop over the seeds. The
//    budget defaults to 30 seconds; override with RELSPEC_FUZZ_SECONDS.
//
// The invariant under test: Parse() must return a Status for every input —
// never crash, hang, or trip a sanitizer. The parser's recursion depth guard
// (kMaxTermDepth) is what makes deeply nested inputs safe.
//
// Inputs starting with a binary magic route to the matching binary decoder
// instead of the parser; there the invariant is the same — truncated
// sections, bad checksums, wrong versions, and out-of-range ids must all
// come back as InvalidArgument:
//
//  * "RSNP" → the snapshot loader (tests/fuzz_corpus/snapshots/*.rsnp);
//  * "RWAL" → the delta-log scanner (tests/fuzz_corpus/wal/*.rwal). Torn
//    tails are by-design not errors, so the scanner additionally must
//    report them consistently, never read past the buffer, and never
//    accept a record whose checksum does not hold;
//  * "RCKP" → the checkpoint parser (tests/fuzz_corpus/wal/*.rckp), whose
//    symbol-table sections carry attacker-controlled counts and lengths;
//  * "RSRV" → the serving protocol (tests/fuzz_corpus/serve/*.rsrv).
//    Requests and responses share the magic, so the input is fed to both
//    framers and both decoders: attacker-controlled payload lengths,
//    versions, types, and typed result payloads (QueryResult/UpdateResult)
//    must all come back as Status, never out-of-bounds reads.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "src/core/snapshot.h"
#include "src/core/wal.h"
#include "src/parser/parser.h"
#include "src/serve/protocol.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);
  if (input.size() >= 4 && input.substr(0, 4) == "RSNP") {
    // Both loaders must survive any byte stream; the kind check rejects the
    // mismatched one cheaply, so running both costs little and covers both
    // section decoders.
    auto graph = relspec::Snapshot::ParseGraphSpec(input);
    (void)graph;
    auto eq = relspec::Snapshot::ParseEquationalSpec(input);
    (void)eq;
    return 0;
  }
  if (input.size() >= 4 && input.substr(0, 4) == "RWAL") {
    auto scan = relspec::DeltaWal::ScanBytes(input);
    (void)scan;
    return 0;
  }
  if (input.size() >= 4 && input.substr(0, 4) == "RCKP") {
    auto ckpt = relspec::ParseCheckpoint(input);
    (void)ckpt;
    return 0;
  }
  if (input.size() >= 4 && input.substr(0, 4) == "RSRV") {
    // The request and response framings share the magic; run the input
    // through both, then through the typed result decoders (whose inputs
    // are a decoded response's payload bytes on the client side).
    if (auto size = relspec::serve::RequestFrameSize(input);
        size.ok() && *size > 0 && input.size() >= *size) {
      relspec::serve::RequestHeader header;
      std::string_view payload;
      auto decoded = relspec::serve::DecodeRequest(input.substr(0, *size),
                                                   &header, &payload);
      (void)decoded;
    }
    if (auto size = relspec::serve::ResponseFrameSize(input);
        size.ok() && *size > 0 && input.size() >= *size) {
      relspec::serve::ResponseHeader header;
      std::string_view payload;
      auto decoded = relspec::serve::DecodeResponse(input.substr(0, *size),
                                                    &header, &payload);
      if (decoded.ok()) {
        auto query = relspec::serve::DecodeQueryResult(payload);
        (void)query;
        auto update = relspec::serve::DecodeUpdateResult(payload);
        (void)update;
      }
    }
    return 0;
  }
  // The result (well-formed or error Status) is irrelevant; surviving is
  // the assertion.
  auto result = relspec::Parse(input);
  (void)result;
  return 0;
}

#ifdef RELSPEC_FUZZ_STANDALONE

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

// xorshift64* — deterministic across runs so failures reproduce.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ULL) {}
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dULL;
  }

 private:
  uint64_t state_;
};

// One mutation step: byte flips, splices, truncations, duplications, and
// insertion of grammar-relevant tokens.
std::string Mutate(const std::string& base, Rng* rng) {
  static const char* kTokens[] = {"(", ")", ",", ".", "->", "+", "?",
                                  "0",  "t", "f(", "%", " ", "\n"};
  std::string out = base;
  int steps = 1 + static_cast<int>(rng->Next() % 4);
  for (int i = 0; i < steps; ++i) {
    uint64_t choice = rng->Next() % 5;
    if (out.empty()) choice = 3;
    switch (choice) {
      case 0: {  // flip a byte
        size_t pos = rng->Next() % out.size();
        out[pos] = static_cast<char>(rng->Next() % 256);
        break;
      }
      case 1: {  // truncate
        out.resize(rng->Next() % (out.size() + 1));
        break;
      }
      case 2: {  // duplicate a slice
        size_t a = rng->Next() % out.size();
        size_t b = a + rng->Next() % (out.size() - a);
        out.insert(rng->Next() % out.size(), out.substr(a, b - a));
        break;
      }
      case 3: {  // insert a grammar token
        const char* tok =
            kTokens[rng->Next() % (sizeof(kTokens) / sizeof(kTokens[0]))];
        out.insert(rng->Next() % (out.size() + 1), tok);
        break;
      }
      case 4: {  // nest: wrap a prefix in f(...)
        size_t pos = rng->Next() % out.size();
        out = out.substr(0, pos) + "f(" + out.substr(pos) + ")";
        break;
      }
    }
    if (out.size() > 1 << 16) out.resize(1 << 16);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> corpus;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      fprintf(stderr, "fuzz_parser: cannot read seed %s\n", argv[i]);
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    corpus.push_back(buf.str());
  }
  if (corpus.empty()) corpus.push_back("P(0).\nP(t) -> P(t+1).\n");

  // Replay the seeds verbatim first.
  for (const std::string& seed : corpus) {
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(seed.data()),
                           seed.size());
  }

  int seconds = 30;
  if (const char* env = std::getenv("RELSPEC_FUZZ_SECONDS")) {
    seconds = std::atoi(env);
  }
  Rng rng(0xC1A559EC);
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  uint64_t iterations = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const std::string& base = corpus[rng.Next() % corpus.size()];
    std::string mutated = Mutate(base, &rng);
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(mutated.data()),
                           mutated.size());
    ++iterations;
  }
  printf("fuzz_parser: %llu inputs survived (%d s budget, %zu seeds)\n",
         static_cast<unsigned long long>(iterations), seconds, corpus.size());
  return 0;
}

#endif  // RELSPEC_FUZZ_STANDALONE
