// Unit tests for src/base: Status/StatusOr, DynamicBitset, string utils.

#include <gtest/gtest.h>

#include <set>

#include "src/base/bitset.h"
#include "src/base/status.h"
#include "src/base/str_util.h"

namespace relspec {
namespace {

// ---------- Status ----------

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad rule");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad rule");
  EXPECT_EQ(s.ToString(), "invalid argument: bad rule");
}

TEST(Status, AllFactoriesProduceMatchingCodes) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
}

TEST(Status, CodeNameRoundTripsForEveryCode) {
  for (int i = 0; i <= static_cast<int>(StatusCode::kDeadlineExceeded); ++i) {
    StatusCode code = static_cast<StatusCode>(i);
    const char* name = StatusCodeToString(code);
    EXPECT_STRNE(name, "unknown") << "code " << i << " has no name";
    auto back = StatusCodeFromString(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, code) << name;
    // Names must be pairwise distinct for the round trip to be well-defined.
    for (int j = 0; j < i; ++j) {
      EXPECT_STRNE(name, StatusCodeToString(static_cast<StatusCode>(j)));
    }
  }
  EXPECT_FALSE(StatusCodeFromString("no such code").has_value());
  EXPECT_FALSE(StatusCodeFromString("").has_value());
}

TEST(Status, ResourceBreachCoversExactlyTheBudgetCodes) {
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceBreach());
  EXPECT_TRUE(Status::Cancelled("x").IsResourceBreach());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsResourceBreach());
  EXPECT_FALSE(Status::OK().IsResourceBreach());
  EXPECT_FALSE(Status::Internal("x").IsResourceBreach());
  EXPECT_FALSE(Status::InvalidArgument("x").IsResourceBreach());
}

TEST(Status, WithContextPrepends) {
  Status s = Status::NotFound("predicate P").WithContext("parsing rule 3");
  EXPECT_EQ(s.message(), "parsing rule 3: predicate P");
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_TRUE(Status::OK().WithContext("ignored").ok());
}

TEST(Status, CopyIsCheapAndEqual) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.message(), "boom");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
  EXPECT_EQ(v.value_or(7), 7);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

StatusOr<int> DoubledPositive(int x) {
  RELSPEC_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(StatusOr, AssignOrReturnMacro) {
  auto ok = DoubledPositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  auto err = DoubledPositive(-1);
  EXPECT_FALSE(err.ok());
}

// ---------- DynamicBitset ----------

TEST(DynamicBitset, SetTestReset) {
  DynamicBitset b(130);
  EXPECT_TRUE(b.None());
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3u);
  b.Reset(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(DynamicBitset, SubsetAndUnion) {
  DynamicBitset a(100), b(100);
  a.Set(3);
  a.Set(70);
  b.Set(3);
  b.Set(70);
  b.Set(99);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.UnionWith(b));   // changed
  EXPECT_FALSE(a.UnionWith(b));  // no further change
  EXPECT_TRUE(b.IsSubsetOf(a));
  EXPECT_EQ(a, b);
}

TEST(DynamicBitset, IntersectSubtract) {
  DynamicBitset a(64), b(64);
  for (size_t i = 0; i < 64; i += 2) a.Set(i);
  for (size_t i = 0; i < 64; i += 3) b.Set(i);
  DynamicBitset inter = a;
  inter.IntersectWith(b);
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(inter.Test(i), i % 6 == 0) << i;
  }
  DynamicBitset diff = a;
  diff.SubtractWith(b);
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(diff.Test(i), i % 2 == 0 && i % 3 != 0) << i;
  }
}

TEST(DynamicBitset, ForEachVisitsAscending) {
  DynamicBitset b(200);
  std::vector<size_t> want = {0, 63, 64, 65, 127, 128, 199};
  for (size_t i : want) b.Set(i);
  EXPECT_EQ(b.ToVector(), want);
  EXPECT_EQ(b.ToString(), "{0,63,64,65,127,128,199}");
}

TEST(DynamicBitset, HashDistinguishesAndAgrees) {
  DynamicBitset a(100), b(100), c(100);
  a.Set(5);
  b.Set(5);
  c.Set(6);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a, c);
  std::set<DynamicBitset> s = {a, b, c};
  EXPECT_EQ(s.size(), 2u);
}

TEST(DynamicBitset, OrderingIsTotal) {
  DynamicBitset a(64), b(64);
  a.Set(1);
  b.Set(2);
  EXPECT_TRUE(a < b || b < a);
  EXPECT_FALSE(a < a);
}

TEST(DynamicBitset, EmptyUniverse) {
  DynamicBitset b(0);
  EXPECT_TRUE(b.None());
  EXPECT_EQ(b.Count(), 0u);
  DynamicBitset c(0);
  EXPECT_EQ(b, c);
  EXPECT_TRUE(b.IsSubsetOf(c));
}

// ---------- string utils ----------

TEST(StrUtil, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StrUtil, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StrUtil, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StrUtil, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("relspec-graph", "relspec"));
  EXPECT_FALSE(StartsWith("rel", "relspec"));
  EXPECT_TRUE(EndsWith("file.spec", ".spec"));
  EXPECT_FALSE(EndsWith("spec", ".spec"));
}

TEST(StrUtil, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%zu", static_cast<size_t>(123)), "123");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

}  // namespace
}  // namespace relspec
