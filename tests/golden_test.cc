// Golden-file tests: the text serialization of the graph specification for
// the example programs is pinned under tests/golden/*.snap. Any engine
// change that alters the bytes must regenerate the goldens deliberately
// (tools/regen_goldens.sh) — an unintended diff here is a determinism or
// semantics regression.
//
// Run with UPDATE_GOLDENS=1 to rewrite the files from current output.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/core/spec_io.h"
#include "src/parser/parser.h"

#ifndef RELSPEC_SOURCE_DIR
#error "RELSPEC_SOURCE_DIR must point at the repository root"
#endif

namespace relspec {
namespace {

struct GoldenCase {
  const char* name;     // test label and golden stem
  const char* program;  // path under examples/programs/
};

const GoldenCase kCases[] = {
    {"meets", "meets.rsp"},
    {"even", "even.rsp"},
    {"lists", "lists.rsp"},
};

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

// A compact readable diff: the first few differing lines, with line numbers.
std::string LineDiff(const std::string& want, const std::string& got) {
  std::vector<std::string> a = Lines(want), b = Lines(got);
  std::string out;
  int shown = 0;
  for (size_t i = 0; i < std::max(a.size(), b.size()) && shown < 8; ++i) {
    const std::string* wa = i < a.size() ? &a[i] : nullptr;
    const std::string* gb = i < b.size() ? &b[i] : nullptr;
    if (wa != nullptr && gb != nullptr && *wa == *gb) continue;
    out += "  line " + std::to_string(i + 1) + ":\n";
    out += "    golden: " + (wa != nullptr ? *wa : "<eof>") + "\n";
    out += "    actual: " + (gb != nullptr ? *gb : "<eof>") + "\n";
    ++shown;
  }
  return out;
}

class GoldenTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenTest, GraphSpecMatchesGolden) {
  const GoldenCase& c = GetParam();
  std::string root = RELSPEC_SOURCE_DIR;
  std::string source =
      ReadFileOrDie(root + "/examples/programs/" + c.program);
  // Parse separately: example programs may carry "? ..." query statements,
  // which FromSource rejects.
  auto parsed = Parse(source);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto db = FunctionalDatabase::FromProgram(std::move(parsed->program));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto spec = (*db)->BuildGraphSpec();
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  std::string actual = SpecIo::Serialize(*spec);

  std::string golden_path =
      root + "/tests/golden/" + std::string(c.name) + ".snap";
  if (std::getenv("UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << actual;
    GTEST_SKIP() << "golden updated: " << golden_path;
  }
  std::string want = ReadFileOrDie(golden_path);
  EXPECT_EQ(want, actual) << "golden mismatch for " << c.name
                          << " (regenerate with tools/regen_goldens.sh):\n"
                          << LineDiff(want, actual);
}

INSTANTIATE_TEST_SUITE_P(Examples, GoldenTest, ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<GoldenCase>& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace relspec
