// Differential testing: the same program evaluated along independent
// implementation paths must produce byte-identical artifacts.
//
//   (a) parallel fixpoint with 1, 2, and 8 threads -> identical text and
//       binary spec serializations (the determinism contract),
//   (b) snapshot save -> load -> re-serialize -> byte-identical to the
//       direct run, in both the binary and the text format,
//   (c) naive vs semi-naive DATALOG evaluation of CONGR -> identical
//       materialized databases,
//   (d) cached vs uncached query answers -> identical enumerations.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "src/core/congr.h"
#include "src/core/engine.h"
#include "src/core/query.h"
#include "src/core/snapshot.h"
#include "src/core/spec_io.h"
#include "src/parser/parser.h"
#include "tests/random_program.h"

namespace relspec {
namespace {

using testutil::RandomProgram;
using testutil::RandomProgramRich;
using testutil::UniverseUpTo;

std::unique_ptr<FunctionalDatabase> BuildWithThreads(const std::string& source,
                                                     int threads) {
  EngineOptions options;
  options.fixpoint.num_threads = threads;
  auto db = FunctionalDatabase::FromSource(source, options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return db.ok() ? std::move(*db) : nullptr;
}

// Every relation of the database, predicates and rows sorted, as one string.
std::string RenderDatabase(const datalog::Database& db) {
  std::vector<PredId> preds = db.Predicates();
  std::sort(preds.begin(), preds.end());
  std::string out;
  for (PredId p : preds) {
    std::vector<datalog::Tuple> rows = db.relation(p).CopyRows();
    std::sort(rows.begin(), rows.end());
    out += "pred " + std::to_string(p) + "\n";
    for (const auto& row : rows) {
      for (datalog::Value v : row) out += " " + std::to_string(v);
      out += "\n";
    }
  }
  return out;
}

class DifferentialTest : public ::testing::TestWithParam<int> {};

// (a) Thread counts 1, 2, 8 must serialize byte-identically: not just the
// same facts, the same bytes (cluster order, boundary order, everything).
TEST_P(DifferentialTest, SpecsByteIdenticalAcrossThreadCounts) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 40503u + 1u);
  std::string source = RandomProgram(&rng);
  SCOPED_TRACE(source);

  auto db1 = BuildWithThreads(source, 1);
  auto db2 = BuildWithThreads(source, 2);
  auto db8 = BuildWithThreads(source, 8);
  ASSERT_TRUE(db1 && db2 && db8);

  auto s1 = db1->BuildGraphSpec();
  auto s2 = db2->BuildGraphSpec();
  auto s8 = db8->BuildGraphSpec();
  ASSERT_TRUE(s1.ok() && s2.ok() && s8.ok());

  std::string text1 = SpecIo::Serialize(*s1);
  EXPECT_EQ(text1, SpecIo::Serialize(*s2));
  EXPECT_EQ(text1, SpecIo::Serialize(*s8));

  std::string bin1 = Snapshot::Serialize(*s1);
  EXPECT_EQ(bin1, Snapshot::Serialize(*s2));
  EXPECT_EQ(bin1, Snapshot::Serialize(*s8));

  auto e1 = db1->BuildEquationalSpec();
  auto e8 = db8->BuildEquationalSpec();
  ASSERT_TRUE(e1.ok() && e8.ok());
  EXPECT_EQ(SpecIo::Serialize(*e1), SpecIo::Serialize(*e8));
}

// (b) A snapshot-reloaded specification is indistinguishable from the
// directly built one: binary and text serializations round-trip to the
// same bytes, and membership agrees over the inner universe.
TEST_P(DifferentialTest, SnapshotReloadIsByteIdentical) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 48271u + 3u);
  std::string source = RandomProgramRich(&rng);
  SCOPED_TRACE(source);

  auto db = BuildWithThreads(source, 1);
  ASSERT_TRUE(db);
  auto spec = db->BuildGraphSpec();
  ASSERT_TRUE(spec.ok());

  std::string bin = Snapshot::Serialize(*spec);
  auto reloaded = Snapshot::ParseGraphSpec(bin);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();

  EXPECT_EQ(bin, Snapshot::Serialize(*reloaded));
  EXPECT_EQ(SpecIo::Serialize(*spec), SpecIo::Serialize(*reloaded));

  const GroundProgram& ground = db->ground();
  for (const Path& p : UniverseUpTo(ground, 5)) {
    for (AtomIdx i = 0; i < ground.num_atoms(); ++i) {
      const SliceAtom& atom = ground.atom(i);
      ASSERT_EQ(spec->Holds(p, atom.pred, atom.args),
                reloaded->Holds(p, atom.pred, atom.args));
    }
  }

  auto espec = db->BuildEquationalSpec();
  ASSERT_TRUE(espec.ok());
  std::string ebin = Snapshot::Serialize(*espec);
  auto ereloaded = Snapshot::ParseEquationalSpec(ebin);
  ASSERT_TRUE(ereloaded.ok()) << ereloaded.status().ToString();
  EXPECT_EQ(ebin, Snapshot::Serialize(*ereloaded));
}

// (c) Naive and semi-naive evaluation of the CONGR canonical form must
// materialize exactly the same database.
TEST_P(DifferentialTest, NaiveVsSemiNaiveCongr) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 16807u + 7u);
  std::string source = RandomProgram(&rng);
  SCOPED_TRACE(source);

  auto db = BuildWithThreads(source, 1);
  ASSERT_TRUE(db);
  auto espec = db->BuildEquationalSpec();
  ASSERT_TRUE(espec.ok());

  auto semi = EvaluateCongrBounded(*espec, 5, datalog::Strategy::kSemiNaive);
  auto naive = EvaluateCongrBounded(*espec, 5, datalog::Strategy::kNaive);
  if (!semi.ok() || !naive.ok()) {
    GTEST_SKIP() << "universe too deep for the bounded CONGR differential";
  }
  EXPECT_EQ(RenderDatabase(semi->db), RenderDatabase(naive->db));
}

// (d) A warm cache must hand back answers identical to a cold evaluation,
// and a fingerprint change must miss.
TEST_P(DifferentialTest, CachedAnswersMatchUncached) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 69621u + 11u);
  std::string source = RandomProgram(&rng);
  SCOPED_TRACE(source);

  auto db = BuildWithThreads(source, 1);
  ASSERT_TRUE(db);
  QueryCache cache;

  for (PredId p = 0; p < db->program().symbols.num_predicates(); ++p) {
    const PredicateInfo& info = db->program().symbols.predicate(p);
    if (!info.functional || info.name[0] == '$') continue;
    std::string qtext = "?(s" + std::string(info.arity == 2 ? ", x" : "") +
                        ") " + info.name + "(s" +
                        (info.arity == 2 ? ", x" : "") + ").";
    auto q = ParseQuery(qtext, db->mutable_program());
    ASSERT_TRUE(q.ok()) << qtext;

    auto direct = AnswerQuery(db.get(), *q);
    auto cold = AnswerQueryCached(db.get(), *q, &cache);
    auto warm = AnswerQueryCached(db.get(), *q, &cache);
    ASSERT_TRUE(direct.ok() && cold.ok() && warm.ok());
    EXPECT_EQ(cold->get(), warm->get()) << "second lookup must be a hit";

    auto e_direct = direct->Enumerate(5, 100000);
    auto e_warm = (*warm)->Enumerate(5, 100000);
    ASSERT_TRUE(e_direct.ok() && e_warm.ok());
    EXPECT_EQ(*e_direct, *e_warm) << qtext;
  }
}

// (e) Incremental maintenance (paper Section 5, docs/INCREMENTAL.md):
// applying a mixed insert/delete sequence batch by batch must be
// indistinguishable from rebuilding from the edited program — identical
// spec text, identical snapshot bytes, identical equational spec, identical
// fingerprint — at every thread count, and the repaired spec must still
// round-trip through the binary snapshot byte-identically.
TEST_P(DifferentialTest, IncrementalDeltasMatchRebuild) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 25173u + 13u);
  std::string source = RandomProgramRich(&rng);
  SCOPED_TRACE(source);

  // Candidate edits over the generator's guaranteed signature (P0 and R
  // always exist; P1/Seen only sometimes, so they stay out of the pool).
  // Only `f` and the existing constants, so most edits keep the grounded
  // universe and take the in-place repair path; deletes of never-present
  // facts are noops, which must also preserve equivalence.
  std::vector<std::string> pool;
  for (const char* t : {"0", "f(0)", "f(f(0))"}) {
    pool.push_back(std::string("P0(") + t + ", a)");
    pool.push_back(std::string("P0(") + t + ", b)");
  }
  pool.push_back("R(a)");
  pool.push_back("R(b)");

  auto pick = [&rng](size_t n) { return static_cast<size_t>(rng() % n); };
  std::vector<std::string> batches;
  for (int b = 0; b < 4; ++b) {
    std::string text;
    int edits = 1 + static_cast<int>(pick(3));
    for (int e = 0; e < edits; ++e) {
      // Insert-biased early, delete-biased late, so later batches retract
      // facts earlier ones derived from (the interesting DRed case).
      bool insert = pick(4) >= static_cast<size_t>(b);
      text += std::string(insert ? "+ " : "- ") + pool[pick(pool.size())] +
              ".\n";
    }
    batches.push_back(text);
  }
  // One batch with a brand-new constant: the active domain grows, forcing
  // the full-rebuild fallback, which must be equivalent too.
  batches.push_back("+ P0(f(0), c).\n");

  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE(threads);
    EngineOptions opts;
    opts.fixpoint.num_threads = threads;
    auto db = FunctionalDatabase::FromSource(source, opts);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    for (const std::string& batch : batches) {
      SCOPED_TRACE(batch);
      auto stats = (*db)->ApplyDeltaText(batch, opts);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();

      auto fresh =
          FunctionalDatabase::FromProgram((*db)->original_program(), opts);
      ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();

      auto ispec = (*db)->BuildGraphSpec();
      auto fspec = (*fresh)->BuildGraphSpec();
      ASSERT_TRUE(ispec.ok() && fspec.ok());
      EXPECT_EQ(SpecIo::Serialize(*ispec), SpecIo::Serialize(*fspec));
      std::string ibin = Snapshot::Serialize(*ispec);
      EXPECT_EQ(ibin, Snapshot::Serialize(*fspec));
      EXPECT_EQ((*db)->Fingerprint(), (*fresh)->Fingerprint());

      auto reloaded = Snapshot::ParseGraphSpec(ibin);
      ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
      EXPECT_EQ(ibin, Snapshot::Serialize(*reloaded));

      auto iespec = (*db)->BuildEquationalSpec();
      auto fespec = (*fresh)->BuildEquationalSpec();
      ASSERT_TRUE(iespec.ok() && fespec.ok());
      EXPECT_EQ(SpecIo::Serialize(*iespec), SpecIo::Serialize(*fespec));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest, ::testing::Range(0, 15));

}  // namespace
}  // namespace relspec
