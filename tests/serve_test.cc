// RSRV protocol conformance + daemon behavior suite (docs/DAEMON.md).
//
// Three layers:
//   1. Golden byte vectors: hand-written frames for requests, responses and
//      the typed payloads, asserting the exact little-endian layout the wire
//      doc promises — an encoder change that shifts a byte fails here first.
//   2. Decoder hostility: bad magic, wrong version, forged payload length,
//      truncated frames, unknown request types — every rejection is a
//      Status, and the request id stays echoable where the header allows.
//   3. Live server: an in-process serve::Server on a unix socket, driven
//      through serve::ServeClient — request/response round-trips for every
//      type, malformed-frame handling on a real connection, governor
//      breaches as structured replies, spec-only serving, durable update
//      acks that survive a reopen, and (parameterized over 15 random
//      programs) concurrent clients whose query replies must be
//      byte-identical to in-process AnswerQueryCached answers.

#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/base/metrics.h"
#include "src/base/str_util.h"
#include "src/base/trace.h"
#include "src/core/engine.h"
#include "src/core/mixed_to_pure.h"
#include "src/core/query.h"
#include "src/core/wal.h"
#include "src/parser/parser.h"
#include "src/serve/client.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"
#include "src/serve/slowlog.h"
#include "src/term/path.h"
#include "tests/random_program.h"

namespace relspec {
namespace {

using serve::DecodeHealthResult;
using serve::DecodeQueryResult;
using serve::DecodeRequest;
using serve::DecodeResponse;
using serve::DecodeUpdateResult;
using serve::EncodeHealthResult;
using serve::EncodeQueryResult;
using serve::EncodeRequest;
using serve::EncodeResponse;
using serve::EncodeUpdateResult;
using serve::QueryResult;
using serve::RequestFrameSize;
using serve::RequestHeader;
using serve::RequestType;
using serve::ResponseFrameSize;
using serve::ResponseHeader;
using serve::ServeClient;
using serve::UpdateResult;

std::string Bytes(const unsigned char* data, size_t n) {
  return std::string(reinterpret_cast<const char*>(data), n);
}

// A tiny rotation program every live test shares: ground base fact plus a
// derivation rule, so queries have spec tuples and updates have valid facts.
std::string RotationSource() {
  return "OnCall(0, m0).\n"
         "Rotate(m0, m1).\nRotate(m1, m2).\nRotate(m2, m0).\n"
         "OnCall(t, x), Rotate(x, y) -> OnCall(t+1, y).\n";
}

// ---------------------------------------------------------------------------
// Golden byte vectors
// ---------------------------------------------------------------------------

TEST(ServeProtocolGolden, PingRequestFrameBytes) {
  RequestHeader h;
  h.type = RequestType::kPing;
  h.request_id = 0x0102030405060708ULL;
  const unsigned char want[40] = {
      'R', 'S', 'R', 'V',          // magic
      0x01, 0x00, 0x00, 0x00,      // version 1
      0x00, 0x00, 0x00, 0x00,      // type kPing
      0x00, 0x00, 0x00, 0x00,      // payload length 0
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,  // request id LE
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // deadline_ms 0
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // max_tuples 0
  };
  EXPECT_EQ(EncodeRequest(h, ""), Bytes(want, sizeof(want)));
}

TEST(ServeProtocolGolden, MembershipRequestFrameBytes) {
  RequestHeader h;
  h.type = RequestType::kMembership;
  h.request_id = 42;
  h.deadline_ms = 1000;
  h.max_tuples = 5;
  const unsigned char want_header[40] = {
      'R', 'S', 'R', 'V',
      0x01, 0x00, 0x00, 0x00,      // version 1
      0x01, 0x00, 0x00, 0x00,      // type kMembership
      0x08, 0x00, 0x00, 0x00,      // payload length 8
      0x2a, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // request id 42
      0xe8, 0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // deadline 1000
      0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // max_tuples 5
  };
  EXPECT_EQ(EncodeRequest(h, "P0(0, a)"),
            Bytes(want_header, sizeof(want_header)) + "P0(0, a)");
}

TEST(ServeProtocolGolden, ErrorResponseFrameBytes) {
  ResponseHeader h;
  h.status = 8;  // kResourceExhausted
  h.request_id = 7;
  const unsigned char want_header[24] = {
      'R', 'S', 'R', 'V',
      0x01, 0x00, 0x00, 0x00,      // version 1
      0x08, 0x00, 0x00, 0x00,      // status 8
      0x06, 0x00, 0x00, 0x00,      // payload length 6
      0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // request id 7
  };
  EXPECT_EQ(EncodeResponse(h, "budget"),
            Bytes(want_header, sizeof(want_header)) + "budget");
}

TEST(ServeProtocolGolden, QueryResultPayloadBytes) {
  QueryResult r;
  r.spec_tuples = 3;
  r.functional = true;
  r.text = "T";
  const unsigned char want[14] = {
      0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // spec_tuples 3
      0x01,                                             // functional
      0x01, 0x00, 0x00, 0x00,                           // text length 1
      'T',
  };
  EXPECT_EQ(EncodeQueryResult(r), Bytes(want, sizeof(want)));
}

TEST(ServeProtocolGolden, UpdateResultPayloadBytes) {
  UpdateResult r;
  r.fingerprint = 0x10;
  r.inserted = 1;
  r.deleted = 2;
  r.noops = 3;
  r.deleted_bits = 4;
  r.rebuilt = true;
  r.durable = false;
  const unsigned char want[42] = {
      0x10, 0, 0, 0, 0, 0, 0, 0,  // fingerprint
      0x01, 0, 0, 0, 0, 0, 0, 0,  // inserted
      0x02, 0, 0, 0, 0, 0, 0, 0,  // deleted
      0x03, 0, 0, 0, 0, 0, 0, 0,  // noops
      0x04, 0, 0, 0, 0, 0, 0, 0,  // deleted_bits
      0x01,                       // rebuilt
      0x00,                       // durable
  };
  EXPECT_EQ(EncodeUpdateResult(r), Bytes(want, sizeof(want)));
}

TEST(ServeProtocolGolden, HealthResultPayloadBytes) {
  serve::HealthResult h;
  h.ready = true;
  h.live = true;
  h.fingerprint = 0x1122334455667788ULL;
  h.uptime_ms = 0x0102030405060708ULL;
  h.wal_seq = 0xff;
  h.served = 0x1000;
  const unsigned char want[] = {
      0x01,                                            // ready
      0x01,                                            // live
      0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11,  // fingerprint
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,  // uptime_ms
      0xff, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // wal_seq
      0x00, 0x10, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // served
  };
  EXPECT_EQ(EncodeHealthResult(h), Bytes(want, sizeof(want)));
}

// Every request type and both payload codecs must round-trip losslessly.
TEST(ServeProtocol, RequestRoundTripEveryType) {
  const RequestType kTypes[] = {
      RequestType::kPing,      RequestType::kMembership,
      RequestType::kQuery,     RequestType::kUpdate,
      RequestType::kStats,     RequestType::kTraceDump,
      RequestType::kSlowlogDump, RequestType::kHealth,
  };
  uint64_t id = 100;
  for (RequestType type : kTypes) {
    RequestHeader h;
    h.type = type;
    h.request_id = id++;
    h.deadline_ms = 250;
    h.max_tuples = 1u << 20;
    std::string payload = "payload for " + std::string(RequestTypeName(type));
    std::string frame = EncodeRequest(h, payload);

    auto size = RequestFrameSize(frame);
    ASSERT_TRUE(size.ok()) << size.status().ToString();
    EXPECT_EQ(*size, frame.size());

    RequestHeader got;
    std::string_view got_payload;
    ASSERT_TRUE(DecodeRequest(frame, &got, &got_payload).ok());
    EXPECT_EQ(got.type, type);
    EXPECT_EQ(got.request_id, h.request_id);
    EXPECT_EQ(got.deadline_ms, h.deadline_ms);
    EXPECT_EQ(got.max_tuples, h.max_tuples);
    EXPECT_EQ(got_payload, payload);
  }
}

TEST(ServeProtocol, ResponseRoundTrip) {
  ResponseHeader h;
  h.status = 4;
  h.request_id = 0xdeadbeefcafef00dULL;
  std::string frame = EncodeResponse(h, "precondition text");
  auto size = ResponseFrameSize(frame);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, frame.size());
  ResponseHeader got;
  std::string_view payload;
  ASSERT_TRUE(DecodeResponse(frame, &got, &payload).ok());
  EXPECT_EQ(got.status, 4u);
  EXPECT_EQ(got.request_id, h.request_id);
  EXPECT_EQ(payload, "precondition text");
}

TEST(ServeProtocol, TypedPayloadRoundTrip) {
  QueryResult q;
  q.spec_tuples = 0xffffffffffULL;
  q.functional = false;
  q.text = "OnCall: 12 tuples\n  f(0), m1\n";
  auto q2 = DecodeQueryResult(EncodeQueryResult(q));
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->spec_tuples, q.spec_tuples);
  EXPECT_EQ(q2->functional, q.functional);
  EXPECT_EQ(q2->text, q.text);

  UpdateResult u;
  u.fingerprint = 0x1122334455667788ULL;
  u.noops = 9;
  u.durable = true;
  auto u2 = DecodeUpdateResult(EncodeUpdateResult(u));
  ASSERT_TRUE(u2.ok());
  EXPECT_EQ(u2->fingerprint, u.fingerprint);
  EXPECT_EQ(u2->noops, u.noops);
  EXPECT_TRUE(u2->durable);

  serve::HealthResult health;
  health.ready = true;
  health.live = false;
  health.fingerprint = 0xfeedfacecafebeefULL;
  health.uptime_ms = 123456;
  health.wal_seq = 42;
  health.served = 7;
  auto h2 = DecodeHealthResult(EncodeHealthResult(health));
  ASSERT_TRUE(h2.ok());
  EXPECT_TRUE(h2->ready);
  EXPECT_FALSE(h2->live);
  EXPECT_EQ(h2->fingerprint, health.fingerprint);
  EXPECT_EQ(h2->uptime_ms, health.uptime_ms);
  EXPECT_EQ(h2->wal_seq, health.wal_seq);
  EXPECT_EQ(h2->served, health.served);
}

// ---------------------------------------------------------------------------
// Decoder hostility
// ---------------------------------------------------------------------------

TEST(ServeProtocolMalformed, ShortBufferNeedsMoreBytes) {
  // Fewer than 16 bytes cannot be judged yet: 0, not an error.
  auto size = RequestFrameSize(std::string(15, 'R'));
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 0u);
}

TEST(ServeProtocolMalformed, BadMagicRejected) {
  std::string frame = EncodeRequest(RequestHeader(), "");
  frame[0] = 'X';
  EXPECT_FALSE(RequestFrameSize(frame).ok());
  RequestHeader h;
  std::string_view p;
  EXPECT_FALSE(DecodeRequest(frame, &h, &p).ok());
}

TEST(ServeProtocolMalformed, WrongVersionRejected) {
  // A version-2 frame must be refused by this version-1 build — both by the
  // stream reassembler and by the one-shot decoder.
  RequestHeader h;
  h.version = 2;
  std::string frame = EncodeRequest(h, "");
  auto size = RequestFrameSize(frame);
  EXPECT_FALSE(size.ok());
  EXPECT_NE(size.status().message().find("version 2"), std::string::npos);
  RequestHeader got;
  std::string_view p;
  EXPECT_FALSE(DecodeRequest(frame, &got, &p).ok());
}

TEST(ServeProtocolMalformed, ForgedPayloadLengthRejected) {
  // Advertised length over the ceiling is refused at the 16-byte prefix,
  // before any payload buffering could be provoked.
  std::string frame = EncodeRequest(RequestHeader(), "");
  const uint32_t huge = serve::kMaxPayload + 1;
  frame[12] = static_cast<char>(huge & 0xff);
  frame[13] = static_cast<char>((huge >> 8) & 0xff);
  frame[14] = static_cast<char>((huge >> 16) & 0xff);
  frame[15] = static_cast<char>((huge >> 24) & 0xff);
  EXPECT_FALSE(RequestFrameSize(frame).ok());
}

TEST(ServeProtocolMalformed, TruncatedFrameRejectedByDecode) {
  RequestHeader h;
  h.type = RequestType::kMembership;
  std::string frame = EncodeRequest(h, "P0(0, a)");
  // Strip payload bytes but keep the advertised length: the exact-size
  // decoder must refuse the disagreement.
  RequestHeader got;
  std::string_view p;
  EXPECT_FALSE(DecodeRequest(frame.substr(0, frame.size() - 3), &got, &p).ok());
  EXPECT_FALSE(DecodeRequest(frame + "x", &got, &p).ok());
  // And a frame shorter than its own header is truncated outright.
  EXPECT_FALSE(DecodeRequest(frame.substr(0, 20), &got, &p).ok());
}

TEST(ServeProtocolMalformed, UnknownTypeRejectedButIdSurvives) {
  RequestHeader h;
  h.type = static_cast<RequestType>(serve::kMaxRequestType + 7);
  h.request_id = 555;
  std::string frame = EncodeRequest(h, "");
  RequestHeader got;
  std::string_view p;
  Status st = DecodeRequest(frame, &got, &p);
  EXPECT_FALSE(st.ok());
  // The id parses before the type check so the server can echo it.
  EXPECT_EQ(got.request_id, 555u);
}

TEST(ServeProtocolMalformed, TypedPayloadSizeChecks) {
  EXPECT_FALSE(DecodeQueryResult("short").ok());
  std::string q = EncodeQueryResult(QueryResult{.spec_tuples = 1, .text = "ab"});
  EXPECT_FALSE(DecodeQueryResult(q.substr(0, q.size() - 1)).ok());
  EXPECT_FALSE(DecodeQueryResult(q + "x").ok());
  std::string u = EncodeUpdateResult(UpdateResult{});
  EXPECT_FALSE(DecodeUpdateResult(u.substr(0, 41)).ok());
  EXPECT_FALSE(DecodeUpdateResult(u + "x").ok());
  std::string h = EncodeHealthResult(serve::HealthResult{});
  EXPECT_FALSE(DecodeHealthResult(h.substr(0, h.size() - 1)).ok());
  EXPECT_FALSE(DecodeHealthResult(h + "x").ok());
}

// ---------------------------------------------------------------------------
// Live server
// ---------------------------------------------------------------------------

/// An in-process Server on a unix socket with its Serve() loop on a thread.
class LiveServer {
 public:
  static std::unique_ptr<LiveServer> Start(
      std::unique_ptr<FunctionalDatabase> db, const std::string& tag,
      serve::ServerOptions options = {}) {
    options.unix_path = ::testing::TempDir() + "serve_test_" + tag + ".sock";
    auto server = serve::Server::Create(std::move(db), options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    if (!server.ok()) return nullptr;
    return std::unique_ptr<LiveServer>(
        new LiveServer(std::move(server).value()));
  }

  static std::unique_ptr<LiveServer> StartSpecOnly(GraphSpecification spec,
                                                   const std::string& tag) {
    serve::ServerOptions options;
    options.unix_path = ::testing::TempDir() + "serve_test_" + tag + ".sock";
    auto server = serve::Server::CreateSpecOnly(std::move(spec), options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    if (!server.ok()) return nullptr;
    return std::unique_ptr<LiveServer>(
        new LiveServer(std::move(server).value()));
  }

  ~LiveServer() {
    if (server_ != nullptr) Stop();
  }

  void Stop() {
    server_->RequestShutdown();
    thread_.join();
    EXPECT_TRUE(serve_status_.ok()) << serve_status_.ToString();
    server_.reset();
  }

  serve::Server* server() { return server_.get(); }

  std::unique_ptr<ServeClient> Connect() {
    auto client = ServeClient::ConnectUnix(server_->unix_path());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.ok() ? std::move(client).value() : nullptr;
  }

 private:
  explicit LiveServer(std::unique_ptr<serve::Server> server)
      : server_(std::move(server)),
        thread_([this] { serve_status_ = server_->Serve(); }) {}

  std::unique_ptr<serve::Server> server_;
  Status serve_status_ = Status::OK();
  std::thread thread_;
};

/// The daemon's membership semantics, computed locally: parse the fact as a
/// spec-only query, purify, Holds. Mirrors Server::Handle(kMembership).
StatusOr<bool> LocalHolds(const GraphSpecification& spec,
                          const std::string& fact) {
  Program scratch;
  scratch.symbols = spec.symbols();
  RELSPEC_ASSIGN_OR_RETURN(Query q, ParseQuery("? " + fact + ".", &scratch));
  if (q.atoms.size() != 1 || !q.atoms[0].IsGround() ||
      !q.atoms[0].fterm.has_value()) {
    return Status::InvalidArgument("bad probe: " + fact);
  }
  RELSPEC_ASSIGN_OR_RETURN(FuncTerm purified,
                           PurifyGroundTerm(*q.atoms[0].fterm,
                                            &scratch.symbols));
  std::vector<FuncId> syms;
  for (const FuncApply& a : purified.apps) syms.push_back(a.fn);
  std::vector<ConstId> args;
  for (const NfArg& a : q.atoms[0].args) args.push_back(a.id);
  return spec.Holds(Path(std::move(syms)), q.atoms[0].pred, args);
}

TEST(ServeLive, EveryRequestTypeRoundTrips) {
  auto db = FunctionalDatabase::FromSource(RotationSource());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  const uint64_t fp0 = (*db)->Fingerprint();
  auto ref_db = FunctionalDatabase::FromSource(RotationSource());
  ASSERT_TRUE(ref_db.ok());
  auto ref_spec = (*ref_db)->BuildGraphSpec();
  ASSERT_TRUE(ref_spec.ok());

  auto live = LiveServer::Start(std::move(db).value(), "alltypes");
  ASSERT_NE(live, nullptr);
  auto client = live->Connect();
  ASSERT_NE(client, nullptr);

  // Ping: the engine fingerprint, pre-materialized.
  auto ping = client->Ping();
  ASSERT_TRUE(ping.ok()) << ping.status().ToString();
  EXPECT_EQ(*ping, fp0);

  // Membership: both polarities, equal to the local spec's Holds.
  for (const char* fact : {"OnCall(0, m0)", "OnCall(0, m1)", "OnCall(0+1, m1)"}) {
    auto remote = client->Membership(fact);
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    auto local = LocalHolds(*ref_spec, fact);
    ASSERT_TRUE(local.ok());
    EXPECT_EQ(*remote, *local) << fact;
  }

  // Query: byte-identical to the in-process cached answer.
  const std::string query_text = "?(t, x) OnCall(t, x).";
  auto ref_query = ParseQuery(query_text, (*ref_db)->mutable_program());
  ASSERT_TRUE(ref_query.ok());
  QueryCache ref_cache;
  auto ref_answer =
      AnswerQueryCached(ref_db->get(), *ref_query, &ref_cache, nullptr);
  ASSERT_TRUE(ref_answer.ok());
  auto remote_answer = client->Query(query_text);
  ASSERT_TRUE(remote_answer.ok()) << remote_answer.status().ToString();
  EXPECT_EQ(remote_answer->spec_tuples, (*ref_answer)->NumSpecTuples());
  EXPECT_EQ(remote_answer->functional, (*ref_answer)->has_functional_answer());
  EXPECT_EQ(remote_answer->text, serve::RenderAnswerText(**ref_answer));

  // Update: insert toggles the fingerprint, delete restores it, and the
  // post-update ping agrees with the update reply.
  auto ins = client->Update("+ OnCall(0, m1).\n");
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  EXPECT_EQ(ins->inserted, 1u);
  EXPECT_FALSE(ins->durable);
  EXPECT_NE(ins->fingerprint, fp0);
  auto ping2 = client->Ping();
  ASSERT_TRUE(ping2.ok());
  EXPECT_EQ(*ping2, ins->fingerprint);
  auto membership_after = client->Membership("OnCall(0, m1)");
  ASSERT_TRUE(membership_after.ok());
  EXPECT_TRUE(*membership_after) << "update must be visible to membership";
  auto del = client->Update("- OnCall(0, m1).\n");
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  EXPECT_EQ(del->fingerprint, fp0);

  // Stats: the metrics registry JSON, the Prometheus selector, and a
  // rejection for any other payload.
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_FALSE(stats->empty());
  EXPECT_EQ((*stats)[0], '{');
  // With metrics off the exposition is legitimately empty; armed, the
  // kStats request itself refreshes the live serve gauges.
  EnableMetrics(true);
  auto prom = client->StatsPrometheus();
  EnableMetrics(false);
  MetricsRegistry::Global().Reset();
  ASSERT_TRUE(prom.ok()) << prom.status().ToString();
  EXPECT_NE(prom->find("# TYPE relspec_serve_uptime_ms gauge"),
            std::string::npos)
      << *prom;
  auto bad_format = client->Call(RequestType::kStats, "xml");
  ASSERT_TRUE(bad_format.ok());
  EXPECT_EQ(bad_format->status_code,
            static_cast<uint32_t>(StatusCode::kInvalidArgument));

  // Trace dump: precondition error while tracing is off, JSON once on.
  auto off = client->TraceDump();
  EXPECT_FALSE(off.ok());
  EXPECT_EQ(off.status().code(), StatusCode::kFailedPrecondition);
  EnableEventTrace(true);
  auto on = client->TraceDump();
  EnableEventTrace(false);
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  EXPECT_NE(on->find("traceEvents"), std::string::npos);

  // Slow-log dump: precondition error — this server runs without a
  // threshold (the default), so the ring never arms.
  auto slowlog = client->SlowlogDump();
  EXPECT_FALSE(slowlog.ok());
  EXPECT_EQ(slowlog.status().code(), StatusCode::kFailedPrecondition);

  // Health: live + ready, fingerprint matching ping, a served count that
  // covers at least the requests this test already made.
  auto health = client->Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_TRUE(health->ready);
  EXPECT_TRUE(health->live);
  EXPECT_EQ(health->fingerprint, fp0);
  EXPECT_EQ(health->wal_seq, 0u) << "non-durable server must report wal_seq 0";
  EXPECT_GE(health->served, 10u);
}

// One ID correlates all three observability surfaces: a client-supplied
// request id is echoed in the reply header, recorded in the slow-query log,
// and stamped as a span arg on the request's trace timeline; id 0 gets a
// server-minted ID (high bit set) that flows the same way.
TEST(ServeLive, TraceIdFlowsThroughReplySlowlogAndTrace) {
  auto db = FunctionalDatabase::FromSource(RotationSource());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  serve::ServerOptions options;
  options.slowlog.threshold_ms = 0;  // record every request
  auto live = LiveServer::Start(std::move(db).value(), "traceid", options);
  ASSERT_NE(live, nullptr);
  auto client = live->Connect();
  ASSERT_NE(client, nullptr);

  Tracer::Global().Reset();
  EnableEventTrace(true);
  const uint64_t id = 0xABCDEF0123456789ULL;
  const std::string query_text = "?(t, x) OnCall(t, x).";
  auto tagged = client->CallWithId(id, RequestType::kQuery, query_text);
  ASSERT_TRUE(tagged.ok()) << tagged.status().ToString();
  EXPECT_EQ(tagged->status_code, 0u);
  EXPECT_EQ(tagged->request_id, id) << "client trace ID must echo verbatim";

  // The same query again: the server cache now hits, and the slow log must
  // attribute the second request to the cache phase.
  auto repeat = client->Query(query_text);
  ASSERT_TRUE(repeat.ok()) << repeat.status().ToString();

  // id 0 asks the server to assign a trace ID: nonzero, high bit marks it
  // server-minted, and it still tags the span + slow-log entry.
  auto minted = client->CallWithId(0, RequestType::kPing, "");
  ASSERT_TRUE(minted.ok()) << minted.status().ToString();
  EXPECT_EQ(minted->status_code, 0u);
  EXPECT_NE(minted->request_id, 0u);
  EXPECT_NE(minted->request_id & (1ULL << 63), 0u)
      << "server-assigned IDs carry the high marker bit";

  auto trace_json = client->TraceDump();
  EnableEventTrace(false);
  ASSERT_TRUE(trace_json.ok()) << trace_json.status().ToString();
  auto validated = ValidateChromeTraceJson(*trace_json);
  ASSERT_TRUE(validated.ok()) << validated.status().ToString();
  const std::string tagged_arg = StrFormat(
      "\"trace_id\":%llu", static_cast<unsigned long long>(id));
  EXPECT_NE(trace_json->find(tagged_arg), std::string::npos)
      << "client trace ID missing from the request span args";
  const std::string minted_arg = StrFormat(
      "\"trace_id\":%llu",
      static_cast<unsigned long long>(minted->request_id));
  EXPECT_NE(trace_json->find(minted_arg), std::string::npos)
      << "server-minted trace ID missing from the request span args";

  auto slowlog = client->SlowlogDump();
  ASSERT_TRUE(slowlog.ok()) << slowlog.status().ToString();
  EXPECT_NE(slowlog->find(tagged_arg), std::string::npos)
      << "client trace ID missing from the slow log";
  EXPECT_NE(slowlog->find(minted_arg), std::string::npos)
      << "server-minted trace ID missing from the slow log";
  EXPECT_NE(slowlog->find("\"cache\":\"miss\""), std::string::npos)
      << "first query must record a cache miss";
  EXPECT_NE(slowlog->find("\"cache\":\"hit\""), std::string::npos)
      << "repeated query must record a cache hit";
  // Both queries hash the same normalized payload.
  const std::string hash_field = StrFormat(
      "\"query_hash\":\"%016llx\"",
      static_cast<unsigned long long>(serve::SlowlogHash(query_text)));
  EXPECT_NE(slowlog->find(hash_field), std::string::npos);

  // The in-process ring agrees with the wire dump, and every entry's phase
  // breakdown fits inside its total.
  const std::vector<serve::SlowlogEntry> entries =
      live->server()->slowlog().Snapshot();
  ASSERT_GE(entries.size(), 3u);
  for (const serve::SlowlogEntry& e : entries) {
    EXPECT_GT(e.total_ns, 0u);
    EXPECT_LE(e.parse_ns + e.cache_ns + e.eval_ns + e.render_ns + e.write_ns,
              e.total_ns)
        << "phase sum must be monotone under the total (seq " << e.seq << ")";
  }
}

// --reply-timing appends a single trailing "  -- elapsed N ns" line to the
// rendered query text; the default keeps reply bytes canonical (the
// concurrency suite asserts byte-identity against in-process rendering).
TEST(ServeLive, ReplyTimingAppendsElapsedLineWhenOptedIn) {
  auto db = FunctionalDatabase::FromSource(RotationSource());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto ref_db = FunctionalDatabase::FromSource(RotationSource());
  ASSERT_TRUE(ref_db.ok());

  serve::ServerOptions options;
  options.reply_timing = true;
  auto live = LiveServer::Start(std::move(db).value(), "replytiming", options);
  ASSERT_NE(live, nullptr);
  auto client = live->Connect();
  ASSERT_NE(client, nullptr);

  const std::string query_text = "?(t, x) OnCall(t, x).";
  auto ref_query = ParseQuery(query_text, (*ref_db)->mutable_program());
  ASSERT_TRUE(ref_query.ok());
  QueryCache ref_cache;
  auto ref_answer =
      AnswerQueryCached(ref_db->get(), *ref_query, &ref_cache, nullptr);
  ASSERT_TRUE(ref_answer.ok());
  const std::string canonical = serve::RenderAnswerText(**ref_answer);

  auto remote = client->Query(query_text);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  ASSERT_GT(remote->text.size(), canonical.size());
  EXPECT_EQ(remote->text.compare(0, canonical.size(), canonical), 0)
      << "timing must only append, never alter the canonical rows";
  const std::string tail = remote->text.substr(canonical.size());
  EXPECT_EQ(tail.rfind("  -- elapsed ", 0), 0u) << "tail: " << tail;
  EXPECT_EQ(tail.substr(tail.size() - 4), " ns\n") << "tail: " << tail;
}

// The audit ring itself: threshold + sampling admission, wrap-around
// keeping the newest entries, and the documented JSONL schema.
TEST(SlowLogRing, AdmissionPolicyAndWrapAround) {
  serve::SlowLog::Options options;
  options.threshold_ms = 10;
  options.sample_every = 4;
  options.capacity = 8;
  serve::SlowLog log(options);
  ASSERT_TRUE(log.enabled());

  serve::SlowlogEntry slow;
  slow.total_ns = 25'000'000;  // over the 10ms threshold
  serve::SlowlogEntry fast;
  fast.total_ns = 1'000'000;  // under it

  // Offer 0 is fast and lands on the 1-in-4 sample; offers 1..3 are fast
  // non-samples and must drop; a slow offer always records.
  EXPECT_TRUE(log.MaybeRecord(fast));
  EXPECT_FALSE(log.MaybeRecord(fast));
  EXPECT_FALSE(log.MaybeRecord(fast));
  EXPECT_FALSE(log.MaybeRecord(fast));
  EXPECT_TRUE(log.MaybeRecord(slow));
  ASSERT_EQ(log.recorded(), 2u);
  std::vector<serve::SlowlogEntry> entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_TRUE(entries[0].sampled) << "threshold-missing entry is a sample";
  EXPECT_FALSE(entries[1].sampled) << "threshold-reaching entry is not";

  // Wrap-around: 20 more slow entries through the 8-slot ring keep only
  // the newest 8, still sorted by admission order.
  for (uint64_t i = 0; i < 20; ++i) {
    slow.trace_id = 100 + i;
    ASSERT_TRUE(log.MaybeRecord(slow));
  }
  EXPECT_EQ(log.recorded(), 22u);
  entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 8u);
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].seq, 14 + i);
    EXPECT_EQ(entries[i].trace_id, 112 + i);
  }

  serve::SlowLog disabled(serve::SlowLog::Options{});
  EXPECT_FALSE(disabled.enabled());
  EXPECT_FALSE(disabled.MaybeRecord(slow));
  EXPECT_TRUE(disabled.DumpJsonl().empty());
}

TEST(SlowLogRing, EntryJsonSchemaGolden) {
  serve::SlowlogEntry e;
  e.seq = 3;
  e.trace_id = 0xABCDEF0123456789ULL;
  e.type = static_cast<uint32_t>(RequestType::kQuery);
  e.status = 8;  // kResourceExhausted
  e.query_hash = serve::SlowlogHash("?(t, x) OnCall(t, x).");
  e.total_ns = 1234567;
  e.parse_ns = 1000;
  e.cache_ns = 0;
  e.eval_ns = 1200000;
  e.render_ns = 30000;
  e.write_ns = 4000;
  e.cache_hit = 0;
  e.headroom_ms = -3;
  e.headroom_tuples = 42;
  e.sampled = false;
  EXPECT_EQ(
      serve::SlowLog::EntryJson(e),
      StrFormat("{\"seq\":3,\"trace_id\":12379813738877118345,"
                "\"type\":\"query\",\"status\":8,\"query_hash\":\"%016llx\","
                "\"total_ns\":1234567,\"parse_ns\":1000,\"cache_ns\":0,"
                "\"eval_ns\":1200000,\"render_ns\":30000,\"write_ns\":4000,"
                "\"cache\":\"miss\",\"headroom_ms\":-3,"
                "\"headroom_tuples\":42,\"sampled\":false}",
                static_cast<unsigned long long>(e.query_hash)));
}

TEST(ServeLive, MalformedFramesGetErrorRepliesThenHangup) {
  auto db = FunctionalDatabase::FromSource(RotationSource());
  ASSERT_TRUE(db.ok());
  auto live = LiveServer::Start(std::move(db).value(), "malformed");
  ASSERT_NE(live, nullptr);

  {
    // Garbage magic: structured error with request id 0, then the server
    // hangs up (the stream offset is unrecoverable).
    auto client = live->Connect();
    ASSERT_NE(client, nullptr);
    ASSERT_TRUE(client->SendRaw(std::string(40, 'X')).ok());
    auto reply = client->ReadReply();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_NE(reply->status_code, 0u);
    EXPECT_EQ(reply->request_id, 0u);
    EXPECT_FALSE(client->ReadReply().ok()) << "server must close after a "
                                              "broken frame";
  }
  {
    // Forged length: rejected from the 16-byte prefix alone.
    auto client = live->Connect();
    ASSERT_NE(client, nullptr);
    std::string frame = EncodeRequest(RequestHeader(), "");
    const uint32_t huge = serve::kMaxPayload + 1;
    memcpy(&frame[12], &huge, 4);  // test runs little-endian like the wire
    ASSERT_TRUE(client->SendRaw(frame).ok());
    auto reply = client->ReadReply();
    ASSERT_TRUE(reply.ok());
    EXPECT_NE(reply->status_code, 0u);
    EXPECT_FALSE(client->ReadReply().ok());
  }
  {
    // Unsupported version: same treatment.
    auto client = live->Connect();
    ASSERT_NE(client, nullptr);
    RequestHeader v2;
    v2.version = 2;
    v2.request_id = 9;
    ASSERT_TRUE(client->SendRaw(EncodeRequest(v2, "")).ok());
    auto reply = client->ReadReply();
    ASSERT_TRUE(reply.ok());
    EXPECT_NE(reply->status_code, 0u);
    EXPECT_FALSE(client->ReadReply().ok());
  }
  {
    // Unknown type: the frame itself parses, so the id is echoed back.
    auto client = live->Connect();
    ASSERT_NE(client, nullptr);
    RequestHeader h;
    h.type = static_cast<RequestType>(99);
    h.request_id = 77;
    ASSERT_TRUE(client->SendRaw(EncodeRequest(h, "")).ok());
    auto reply = client->ReadReply();
    ASSERT_TRUE(reply.ok());
    EXPECT_NE(reply->status_code, 0u);
    EXPECT_EQ(reply->request_id, 77u);
    EXPECT_FALSE(client->ReadReply().ok());
  }

  // The server survived all of it: a fresh connection still serves.
  auto client = live->Connect();
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->Ping().ok());
}

TEST(ServeLive, GovernorBreachIsAReplyNotAnExit) {
  auto db = FunctionalDatabase::FromSource(RotationSource());
  ASSERT_TRUE(db.ok());
  auto live = LiveServer::Start(std::move(db).value(), "breach");
  ASSERT_NE(live, nullptr);
  auto client = live->Connect();
  ASSERT_NE(client, nullptr);

  // A one-tuple budget breaches on the miss path; the reply carries the
  // breach status code, and the connection (and daemon) live on.
  auto breached =
      client->Query("?(t, x) OnCall(t, x).", /*deadline_ms=*/0,
                    /*max_tuples=*/1);
  ASSERT_FALSE(breached.ok());
  EXPECT_TRUE(breached.status().IsResourceBreach())
      << breached.status().ToString();

  auto unbounded = client->Query("?(t, x) OnCall(t, x).");
  ASSERT_TRUE(unbounded.ok()) << unbounded.status().ToString();
  EXPECT_GT(unbounded->spec_tuples, 1u);
  EXPECT_TRUE(client->Ping().ok());
}

TEST(ServeLive, SpecOnlyServingRefusesQueryAndUpdate) {
  auto db = FunctionalDatabase::FromSource(RotationSource());
  ASSERT_TRUE(db.ok());
  auto spec = (*db)->BuildGraphSpec();
  ASSERT_TRUE(spec.ok());
  auto ref_spec = (*db)->BuildGraphSpec();
  ASSERT_TRUE(ref_spec.ok());

  auto live = LiveServer::StartSpecOnly(*std::move(spec), "speconly");
  ASSERT_NE(live, nullptr);
  auto client = live->Connect();
  ASSERT_NE(client, nullptr);

  EXPECT_TRUE(client->Ping().ok());
  auto member = client->Membership("OnCall(0, m0)");
  ASSERT_TRUE(member.ok()) << member.status().ToString();
  auto local = LocalHolds(*ref_spec, "OnCall(0, m0)");
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(*member, *local);

  auto query = client->Query("?(t, x) OnCall(t, x).");
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kFailedPrecondition);
  auto update = client->Update("+ OnCall(0, m1).\n");
  ASSERT_FALSE(update.ok());
  EXPECT_EQ(update.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ServeLive, DurableUpdateAckSurvivesReopen) {
  const std::string wal_path = ::testing::TempDir() + "serve_test_durable.wal";
  for (const char* suffix :
       {"", ".prev", ".tmp", ".ckpt", ".ckpt.prev", ".ckpt.tmp"}) {
    std::remove((wal_path + suffix).c_str());
  }
  const std::string source = RotationSource();
  auto db = FunctionalDatabase::OpenDurable(source, wal_path, DurableOptions());
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  uint64_t acked_fp = 0;
  {
    auto live = LiveServer::Start(std::move(db).value(), "durable");
    ASSERT_NE(live, nullptr);
    auto client = live->Connect();
    ASSERT_NE(client, nullptr);
    auto update = client->Update("+ OnCall(0, m2).\n");
    ASSERT_TRUE(update.ok()) << update.status().ToString();
    EXPECT_TRUE(update->durable) << "a durable server must ack durably";
    EXPECT_EQ(update->inserted, 1u);
    acked_fp = update->fingerprint;
    live->Stop();  // drains, then the destructor closes the WAL
  }

  auto reopened = FunctionalDatabase::OpenDurable(source, wal_path,
                                                  DurableOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->Fingerprint(), acked_fp)
      << "the acked update must be in the log";
  for (const char* suffix :
       {"", ".prev", ".tmp", ".ckpt", ".ckpt.prev", ".ckpt.tmp"}) {
    std::remove((wal_path + suffix).c_str());
  }
}

// ---------------------------------------------------------------------------
// Concurrent byte-identity over random programs
// ---------------------------------------------------------------------------

class ServeConcurrencyTest : public ::testing::TestWithParam<int> {};

TEST_P(ServeConcurrencyTest, ConcurrentClientsMatchInProcessAnswersByteForByte) {
  const unsigned seed = static_cast<unsigned>(GetParam());
  std::mt19937 rng(seed * 7919u + 3u);
  // Guarantee both functional predicates exist regardless of which rule
  // templates the generator drew, so the fixed query list always parses.
  const std::string source =
      testutil::RandomProgramRich(&rng) + "P0(0, a).\nP1(f(0)).\n";
  SCOPED_TRACE(source);

  const std::vector<std::string> query_texts = {
      "?(t, x1) P0(t, x1).",
      "?(t) P1(t).",
      "?(x1) P0(f(t), x1).",   // non-uniform: recompute path
      "?(t) P0(t, a).",
  };
  const std::vector<std::string> probe_texts = {
      "P0(0, a)", "P0(f(0), b)", "P1(f(0))", "P0(f(f(0)), a)",
  };

  // In-process reference, computed sequentially through the same cached API
  // the server uses.
  auto ref_db = FunctionalDatabase::FromSource(source);
  ASSERT_TRUE(ref_db.ok()) << ref_db.status().ToString();
  auto ref_spec = (*ref_db)->BuildGraphSpec();
  ASSERT_TRUE(ref_spec.ok());
  QueryCache ref_cache;
  struct Expected {
    uint64_t spec_tuples;
    bool functional;
    std::string text;
  };
  std::vector<Expected> expected;
  for (const std::string& text : query_texts) {
    auto query = ParseQuery(text, (*ref_db)->mutable_program());
    ASSERT_TRUE(query.ok()) << text << ": " << query.status().ToString();
    auto answer = AnswerQueryCached(ref_db->get(), *query, &ref_cache, nullptr);
    ASSERT_TRUE(answer.ok()) << text << ": " << answer.status().ToString();
    expected.push_back({(*answer)->NumSpecTuples(),
                        (*answer)->has_functional_answer(),
                        serve::RenderAnswerText(**answer)});
  }
  std::vector<bool> expected_holds;
  for (const std::string& probe : probe_texts) {
    auto holds = LocalHolds(*ref_spec, probe);
    ASSERT_TRUE(holds.ok()) << probe << ": " << holds.status().ToString();
    expected_holds.push_back(*holds);
  }

  auto db = FunctionalDatabase::FromSource(source);
  ASSERT_TRUE(db.ok());
  serve::ServerOptions options;
  options.threads = 3;
  auto live = LiveServer::Start(std::move(db).value(),
                                "conc" + std::to_string(seed), options);
  ASSERT_NE(live, nullptr);

  // Three concurrent clients, two rounds each, all queries and probes per
  // round. Results are collected per-thread and asserted after the join.
  constexpr int kClients = 3;
  constexpr int kRounds = 2;
  struct GotReply {
    std::string label;
    Status status = Status::OK();
    QueryResult query;
    bool holds = false;
    bool is_query = false;
  };
  std::vector<std::vector<GotReply>> got(kClients);
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      auto client = ServeClient::ConnectUnix(live->server()->unix_path());
      if (!client.ok()) {
        got[static_cast<size_t>(t)].push_back(
            {"connect", client.status(), {}, false, false});
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        for (const std::string& text : query_texts) {
          GotReply r;
          r.label = text;
          r.is_query = true;
          auto result = (*client)->Query(text);
          if (result.ok()) {
            r.query = *std::move(result);
          } else {
            r.status = result.status();
          }
          got[static_cast<size_t>(t)].push_back(std::move(r));
        }
        for (const std::string& probe : probe_texts) {
          GotReply r;
          r.label = probe;
          auto holds = (*client)->Membership(probe);
          if (holds.ok()) {
            r.holds = *holds;
          } else {
            r.status = holds.status();
          }
          got[static_cast<size_t>(t)].push_back(std::move(r));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (int t = 0; t < kClients; ++t) {
    const auto& replies = got[static_cast<size_t>(t)];
    ASSERT_EQ(replies.size(),
              static_cast<size_t>(kRounds) *
                  (query_texts.size() + probe_texts.size()))
        << "client " << t << " failed early: "
        << (replies.empty() ? "no replies" : replies.back().status.ToString());
    size_t i = 0;
    for (int round = 0; round < kRounds; ++round) {
      for (size_t q = 0; q < query_texts.size(); ++q, ++i) {
        const GotReply& r = replies[i];
        ASSERT_TRUE(r.status.ok())
            << "client " << t << " " << r.label << ": " << r.status.ToString();
        EXPECT_EQ(r.query.spec_tuples, expected[q].spec_tuples) << r.label;
        EXPECT_EQ(r.query.functional, expected[q].functional) << r.label;
        EXPECT_EQ(r.query.text, expected[q].text)
            << "client " << t << " round " << round << " " << r.label
            << ": daemon answer must be byte-identical to in-process";
      }
      for (size_t p = 0; p < probe_texts.size(); ++p, ++i) {
        const GotReply& r = replies[i];
        ASSERT_TRUE(r.status.ok())
            << "client " << t << " " << r.label << ": " << r.status.ToString();
        EXPECT_EQ(r.holds, expected_holds[p]) << r.label;
      }
    }
  }
  // The reply write precedes the served_ increment, so a client can observe
  // its answer a beat before the counter ticks: wait it out.
  const uint64_t want_served = static_cast<uint64_t>(kClients) * kRounds *
                               (query_texts.size() + probe_texts.size());
  for (int i = 0; i < 1000 && live->server()->requests_served() < want_served;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(live->server()->requests_served(), want_served);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServeConcurrencyTest, ::testing::Range(0, 15));

}  // namespace
}  // namespace relspec
