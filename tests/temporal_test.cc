// Unit tests for the [CI88] temporal baseline: periodic sets, lasso
// detection, fragment gating, and agreement with the full engine.

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/parser/parser.h"
#include "src/temporal/periodic_set.h"
#include "src/temporal/periodic_answers.h"
#include "src/temporal/temporal_engine.h"

namespace relspec {
namespace {

// ---------- PeriodicSet ----------

TEST(PeriodicSet, PointsAndProgressions) {
  PeriodicSet s;
  EXPECT_TRUE(s.IsEmpty());
  s.AddPoint(3);
  s.AddProgression(10, 4);
  EXPECT_FALSE(s.IsEmpty());
  EXPECT_FALSE(s.IsFinite());
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Contains(10));
  EXPECT_TRUE(s.Contains(14));
  EXPECT_TRUE(s.Contains(998));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_FALSE(s.Contains(11));
  EXPECT_FALSE(s.Contains(9));
}

TEST(PeriodicSet, ProgressionAbsorbsCoveredPoints) {
  PeriodicSet s;
  s.AddPoint(5);
  s.AddPoint(6);
  s.AddProgression(1, 2);  // odd numbers
  EXPECT_TRUE(s.Contains(5));
  EXPECT_TRUE(s.Contains(6));
  EXPECT_EQ(s.points().size(), 1u);  // 5 absorbed, 6 kept
}

TEST(PeriodicSet, ZeroPeriodActsAsPoint) {
  PeriodicSet s;
  s.AddProgression(7, 0);
  EXPECT_TRUE(s.IsFinite());
  EXPECT_TRUE(s.Contains(7));
  EXPECT_FALSE(s.Contains(8));
}

TEST(PeriodicSet, UnionAndEnumerate) {
  PeriodicSet a, b;
  a.AddProgression(0, 3);
  b.AddPoint(1);
  b.AddProgression(2, 6);
  a.UnionWith(b);
  EXPECT_EQ(a.Enumerate(12),
            (std::vector<uint64_t>{0, 1, 2, 3, 6, 8, 9, 12}));
}

TEST(PeriodicSet, ToStringIsReadable) {
  PeriodicSet s;
  s.AddPoint(1);
  s.AddProgression(5, 4);
  EXPECT_EQ(s.ToString(), "{1, 5+4i}");
}

// ---------- TemporalEngine ----------

constexpr const char* kMeets = R"(
  Meets(0, Tony).
  Next(Tony, Jan).
  Next(Jan, Tony).
  Meets(t, x), Next(x, y) -> Meets(t+1, y).
)";

TEST(TemporalEngine, MeetsLasso) {
  auto p = ParseProgram(kMeets);
  ASSERT_TRUE(p.ok());
  auto engine = TemporalEngine::Build(*p);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto spec = (*engine)->ComputeSpec();
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->period(), 2u);  // the flip-flop

  const SymbolTable& symbols = (*engine)->program().symbols;
  PredId meets = *symbols.FindPredicate("Meets");
  ConstId tony = *symbols.FindConstant("Tony");
  ConstId jan = *symbols.FindConstant("Jan");
  for (uint64_t n = 0; n <= 40; ++n) {
    EXPECT_EQ(spec->Holds(n, meets, {tony}), n % 2 == 0) << n;
    EXPECT_EQ(spec->Holds(n, meets, {jan}), n % 2 == 1) << n;
  }
  // The [CI88]-style infinite-object answer.
  PeriodicSet tony_days = spec->AnswersFor(meets, {tony});
  EXPECT_FALSE(tony_days.IsFinite());
  EXPECT_EQ(tony_days.Enumerate(8), (std::vector<uint64_t>{0, 2, 4, 6, 8}));
  PredId next = *symbols.FindPredicate("Next");
  EXPECT_TRUE(spec->HoldsGlobal(next, {tony, jan}));
}

TEST(TemporalEngine, AgreesWithFullEngine) {
  auto p = ParseProgram(kMeets);
  ASSERT_TRUE(p.ok());
  auto temporal = TemporalEngine::Build(*p);
  ASSERT_TRUE(temporal.ok());
  auto tspec = (*temporal)->ComputeSpec();
  ASSERT_TRUE(tspec.ok());

  auto full = FunctionalDatabase::FromSource(kMeets);
  ASSERT_TRUE(full.ok());
  for (int n = 0; n <= 25; ++n) {
    auto holds = (*full)->HoldsFactText("Meets(" + std::to_string(n) +
                                        ", Tony)");
    ASSERT_TRUE(holds.ok());
    PredId meets = *(*temporal)->program().symbols.FindPredicate("Meets");
    ConstId tony = *(*temporal)->program().symbols.FindConstant("Tony");
    EXPECT_EQ(tspec->Holds(static_cast<uint64_t>(n), meets, {tony}), *holds)
        << n;
  }
}

TEST(TemporalEngine, PrefixBeforePeriodicity) {
  // A startup transient: P dies out, Q cycles.
  auto p = ParseProgram(R"(
    P(0).
    Q(3).
    Q(t) -> Q(t+2).
  )");
  ASSERT_TRUE(p.ok());
  auto engine = TemporalEngine::Build(*p);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto spec = (*engine)->ComputeSpec();
  ASSERT_TRUE(spec.ok());
  const SymbolTable& symbols = (*engine)->program().symbols;
  PredId pp = *symbols.FindPredicate("P");
  PredId qq = *symbols.FindPredicate("Q");
  EXPECT_TRUE(spec->Holds(0, pp, {}));
  EXPECT_FALSE(spec->Holds(1, pp, {}));
  for (uint64_t n = 0; n <= 20; ++n) {
    EXPECT_EQ(spec->Holds(n, qq, {}), n >= 3 && (n - 3) % 2 == 0) << n;
  }
  PeriodicSet pdays = spec->AnswersFor(pp, {});
  EXPECT_TRUE(pdays.IsFinite());
  EXPECT_EQ(pdays.Enumerate(10), std::vector<uint64_t>{0});
}

TEST(TemporalEngine, RejectsMultipleSymbols) {
  auto p = ParseProgram("P(0).\nP(t) -> P(f(t)).\nP(t) -> P(g(t)).");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(TemporalEngine::Build(*p).status().IsFailedPrecondition());
}

TEST(TemporalEngine, RejectsBackwardRules) {
  // Reading at t+1 (down-propagation) is outside the forward fragment —
  // exactly the generality gap of [CI88] the paper points out.
  auto p = ParseProgram("Q(3).\nQ(t+1) -> Q(t).");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(TemporalEngine::Build(*p).status().IsFailedPrecondition());
}

TEST(TemporalEngine, FullEngineHandlesWhatCI88Cannot) {
  // The same backward program is in scope for the 1989 construction.
  auto db = FunctionalDatabase::FromSource("Q(3).\nQ(t+1) -> Q(t).");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  for (int n = 0; n <= 6; ++n) {
    auto holds = (*db)->HoldsFactText("Q(" + std::to_string(n) + ")");
    ASSERT_TRUE(holds.ok());
    EXPECT_EQ(*holds, n <= 3) << n;
  }
}

TEST(TemporalEngine, GlobalFeedback) {
  auto p = ParseProgram(R"(
    P(0).
    P(t) -> P(t+1).
    P(2) -> Go(a).
    P(t), Go(x) -> R(t).
  )");
  ASSERT_TRUE(p.ok());
  auto engine = TemporalEngine::Build(*p);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto spec = (*engine)->ComputeSpec();
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const SymbolTable& symbols = (*engine)->program().symbols;
  PredId r = *symbols.FindPredicate("R");
  EXPECT_TRUE(spec->Holds(0, r, {}));
  EXPECT_TRUE(spec->Holds(11, r, {}));
}

TEST(TemporalEngine, StateCountBoundedByDistinctStates) {
  auto p = ParseProgram(kMeets);
  ASSERT_TRUE(p.ok());
  auto engine = TemporalEngine::Build(*p);
  ASSERT_TRUE(engine.ok());
  auto spec = (*engine)->ComputeSpec();
  ASSERT_TRUE(spec.ok());
  EXPECT_LE(spec->num_states(), 4u);
}

TEST(TemporalEngine, BinaryCounterHasExponentialPeriod) {
  // 3-bit counter: period 8; Bit2 is set during the second half of each
  // cycle (counter values 4..7 at times 4..7, 12..15, ...).
  std::string source;
  int n = 3;
  for (int i = 0; i < n; ++i) source += "Nobit" + std::to_string(i) + "(0).\n";
  for (int i = 0; i < n; ++i) {
    std::string bit = "Bit" + std::to_string(i);
    std::string nobit = "Nobit" + std::to_string(i);
    std::string lower;
    for (int j = 0; j < i; ++j) lower += ", Bit" + std::to_string(j) + "(t)";
    source += nobit + "(t)" + lower + " -> " + bit + "(t+1).\n";
    source += bit + "(t)" + lower + " -> " + nobit + "(t+1).\n";
    for (int j = 0; j < i; ++j) {
      source += bit + "(t), Nobit" + std::to_string(j) + "(t) -> " + bit +
                "(t+1).\n";
      source += nobit + "(t), Nobit" + std::to_string(j) + "(t) -> " + nobit +
                "(t+1).\n";
    }
  }
  auto p = ParseProgram(source);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  auto engine = TemporalEngine::Build(*p);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto spec = (*engine)->ComputeSpec();
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->period(), 8u);
  const SymbolTable& symbols = (*engine)->program().symbols;
  for (int bit = 0; bit < n; ++bit) {
    PredId pred = *symbols.FindPredicate("Bit" + std::to_string(bit));
    for (uint64_t time = 0; time < 32; ++time) {
      EXPECT_EQ(spec->Holds(time, pred, {}), ((time >> bit) & 1) == 1)
          << "bit " << bit << " at time " << time;
    }
  }
  // The full engine agrees (cross-engine check on a nontrivial program).
  auto db = FunctionalDatabase::FromSource(source);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  for (uint64_t time = 0; time < 16; ++time) {
    auto holds = (*db)->HoldsFactText("Bit1(" + std::to_string(time) + ")");
    ASSERT_TRUE(holds.ok());
    EXPECT_EQ(*holds, ((time >> 1) & 1) == 1) << time;
  }
  EXPECT_TRUE((*db)->Verify().ok());
}

// ---------- periodic answers from graph specifications ----------

TEST(PeriodicAnswers, MatchesTemporalEngineOnForwardPrograms) {
  auto p = ParseProgram(kMeets);
  ASSERT_TRUE(p.ok());
  auto temporal = TemporalEngine::Build(*p);
  ASSERT_TRUE(temporal.ok());
  auto tspec = (*temporal)->ComputeSpec();
  ASSERT_TRUE(tspec.ok());

  auto db = FunctionalDatabase::FromSource(kMeets);
  ASSERT_TRUE(db.ok());
  auto gspec = (*db)->BuildGraphSpec();
  ASSERT_TRUE(gspec.ok());

  PredId meets = *gspec->symbols().FindPredicate("Meets");
  for (const char* who : {"Tony", "Jan"}) {
    ConstId c = *gspec->symbols().FindConstant(who);
    auto days = PeriodicAnswers(*gspec, meets, {c});
    ASSERT_TRUE(days.ok()) << days.status().ToString();
    PredId tmeets = *(*temporal)->program().symbols.FindPredicate("Meets");
    ConstId tc = *(*temporal)->program().symbols.FindConstant(who);
    PeriodicSet expected = tspec->AnswersFor(tmeets, {tc});
    EXPECT_EQ(days->Enumerate(40), expected.Enumerate(40)) << who;
  }
}

TEST(PeriodicAnswers, HandlesBackwardProgramsBeyondCI88) {
  // Due(t+1) -> Due(t): outside the [CI88] fragment, but the graph spec
  // covers it, so the periodic-set answer is extractable anyway.
  auto db = FunctionalDatabase::FromSource("Due(5).\nDue(t+1) -> Due(t).");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto gspec = (*db)->BuildGraphSpec();
  ASSERT_TRUE(gspec.ok());
  PredId due = *gspec->symbols().FindPredicate("Due");
  auto days = PeriodicAnswers(*gspec, due, {});
  ASSERT_TRUE(days.ok()) << days.status().ToString();
  EXPECT_TRUE(days->IsFinite());
  EXPECT_EQ(days->Enumerate(20), (std::vector<uint64_t>{0, 1, 2, 3, 4, 5}));
}

TEST(PeriodicAnswers, RejectsMultiSymbolSpecs) {
  auto db = FunctionalDatabase::FromSource(
      "P(0).\nP(t) -> P(f(t)).\nP(t) -> P(g(t)).");
  ASSERT_TRUE(db.ok());
  auto gspec = (*db)->BuildGraphSpec();
  ASSERT_TRUE(gspec.ok());
  PredId pp = *gspec->symbols().FindPredicate("P");
  EXPECT_TRUE(PeriodicAnswers(*gspec, pp, {}).status().IsFailedPrecondition());
}

TEST(PeriodicAnswers, EmptyAnswerForAbsentTuples) {
  auto db = FunctionalDatabase::FromSource(kMeets);
  ASSERT_TRUE(db.ok());
  auto gspec = (*db)->BuildGraphSpec();
  ASSERT_TRUE(gspec.ok());
  PredId meets = *gspec->symbols().FindPredicate("Meets");
  auto days = PeriodicAnswers(*gspec, meets, {12345});
  ASSERT_TRUE(days.ok());
  EXPECT_TRUE(days->IsEmpty());
}

}  // namespace
}  // namespace relspec
