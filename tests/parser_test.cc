// Unit tests for src/parser: lexer, grammar, functional inference, errors.

#include <gtest/gtest.h>

#include <random>

#include "src/ast/printer.h"
#include "src/parser/lexer.h"
#include "src/parser/parser.h"

namespace relspec {
namespace {

// ---------- lexer ----------

TEST(Lexer, TokenKinds) {
  auto toks = Tokenize("Meets(t, x) -> P :- ? + = 42 .");
  ASSERT_TRUE(toks.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *toks) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kIdent, TokenKind::kLParen, TokenKind::kIdent,
                       TokenKind::kComma, TokenKind::kIdent, TokenKind::kRParen,
                       TokenKind::kArrow, TokenKind::kIdent,
                       TokenKind::kColonDash, TokenKind::kQuestion,
                       TokenKind::kPlus, TokenKind::kEquals,
                       TokenKind::kInteger, TokenKind::kDot, TokenKind::kEof}));
}

TEST(Lexer, CommentsAndPositions) {
  auto toks = Tokenize("% whole line\nP. // trailing\nQ.");
  ASSERT_TRUE(toks.ok());
  ASSERT_GE(toks->size(), 4u);
  EXPECT_EQ((*toks)[0].text, "P");
  EXPECT_EQ((*toks)[0].line, 2);
  EXPECT_EQ((*toks)[2].text, "Q");
  EXPECT_EQ((*toks)[2].line, 3);
}

TEST(Lexer, RejectsStrayCharacters) {
  EXPECT_TRUE(Tokenize("P@Q").status().IsInvalidArgument());
  EXPECT_TRUE(Tokenize("P - Q").status().IsInvalidArgument());
  EXPECT_TRUE(Tokenize("P : Q").status().IsInvalidArgument());
}

TEST(Lexer, IntegersAndPrimedIdents) {
  auto toks = Tokenize("x' 123");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].text, "x'");
  EXPECT_EQ((*toks)[1].value, 123);
}

// ---------- parsing & inference ----------

TEST(Parser, MeetsProgramShapes) {
  auto result = Parse(R"(
    Meets(0, Tony).
    Next(Tony, Jan).
    Meets(t, x), Next(x, y) -> Meets(t+1, y).
    ? Meets(s, Tony).
  )");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Program& p = result->program;
  EXPECT_EQ(p.facts.size(), 2u);
  EXPECT_EQ(p.rules.size(), 1u);
  EXPECT_EQ(result->queries.size(), 1u);

  auto meets = p.symbols.FindPredicate("Meets");
  auto next = p.symbols.FindPredicate("Next");
  ASSERT_TRUE(meets.ok());
  ASSERT_TRUE(next.ok());
  EXPECT_TRUE(p.symbols.predicate(*meets).functional);
  EXPECT_FALSE(p.symbols.predicate(*next).functional);
}

TEST(Parser, PrologStyleRuleEquivalent) {
  auto a = ParseProgram("P(x) -> Q(x).\nP(a).");
  auto b = ParseProgram("Q(x) :- P(x).\nP(a).");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(ToString(*a), ToString(*b));
}

TEST(Parser, FunctionalInferencePropagatesThroughVariables) {
  // R is functional only because s flows from Meets' functional position.
  auto p = ParseProgram(R"(
    Meets(0, a).
    Meets(s, x) -> R(s).
  )");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  auto r = p->symbols.FindPredicate("R");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(p->symbols.predicate(*r).functional);
}

TEST(Parser, PureDatalogStaysNonFunctional) {
  auto p = ParseProgram(R"(
    Edge(a, b).
    Edge(b, c).
    Edge(x, y) -> Reach(x, y).
    Reach(x, y), Edge(y, z) -> Reach(x, z).
  )");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  for (PredId id = 0; id < p->symbols.num_predicates(); ++id) {
    EXPECT_FALSE(p->symbols.predicate(id).functional);
  }
  EXPECT_TRUE(p->PureFunctions().empty());
}

TEST(Parser, NumeralSugarBuildsSuccessorChains) {
  auto p = ParseProgram("Meets(3, a).");
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p->facts.size(), 1u);
  EXPECT_EQ(p->facts[0].fterm->depth(), 3);
  EXPECT_TRUE(p->facts[0].fterm->IsGround());
  auto succ = p->symbols.FindFunction(std::string(kSuccessorName));
  EXPECT_TRUE(succ.ok());
}

TEST(Parser, PlusSugarOnVariables) {
  auto p = ParseProgram("E(0).\nE(t) -> E(t+2).");
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p->rules.size(), 1u);
  EXPECT_EQ(p->rules[0].head.fterm->depth(), 2);
  EXPECT_TRUE(p->rules[0].head.fterm->has_var);
}

TEST(Parser, ZeroAloneDoesNotInternSuccessor) {
  auto p = ParseProgram("P(a).\nP(x) -> Member(ext(0,x), x).");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_TRUE(
      p->symbols.FindFunction(std::string(kSuccessorName)).status().IsNotFound());
}

TEST(Parser, MixedFunctionSymbols) {
  auto p = ParseProgram(R"(
    At(0, p0).
    At(s, x), Connected(x, y) -> At(move(s, x, y), y).
  )");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  auto mv = p->symbols.FindFunction("move");
  ASSERT_TRUE(mv.ok());
  EXPECT_EQ(p->symbols.function(*mv).arity, 3);
}

TEST(Parser, VariableConventionSToZ) {
  // s..z (with digits/primes) are variables; a..r identifiers are constants.
  auto p = ParseProgram("P(a, Tony, jan, q, b).\nP(x1, u, v, w, t9) -> Q(x1).");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->facts.size(), 1u);
  EXPECT_TRUE(p->symbols.FindConstant("Tony").ok());
  EXPECT_TRUE(p->symbols.FindConstant("jan").ok());
  EXPECT_TRUE(p->symbols.FindConstant("q").ok());
  EXPECT_TRUE(p->symbols.FindConstant("x1").status().IsNotFound());
  EXPECT_TRUE(p->symbols.FindConstant("t9").status().IsNotFound());
}

TEST(Parser, QueriesDefaultAndExplicitAnswerVars) {
  auto result = Parse(R"(
    Meets(0, a).
    ? Meets(s, x).
    ?(x) Meets(s, x).
  )");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->queries.size(), 2u);
  EXPECT_EQ(result->queries[0].answer_vars.size(), 2u);
  EXPECT_EQ(result->queries[1].answer_vars.size(), 1u);
}

TEST(Parser, ParseQueryAgainstExistingProgram) {
  auto p = ParseProgram("Meets(0, a).");
  ASSERT_TRUE(p.ok());
  auto q = ParseQuery("? Meets(s, a).", &*p);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->atoms.size(), 1u);
  // Unknown predicates are rejected.
  EXPECT_FALSE(ParseQuery("? Unknown(s).", &*p).ok());
}

// ---------- error paths ----------

TEST(ParserErrors, NonGroundFact) {
  auto p = ParseProgram("P(x).");
  EXPECT_TRUE(p.status().IsInvalidArgument());
}

TEST(ParserErrors, DomainDependentRuleRejected) {
  // Head variable y not bound in the body (Section 2.3's example shape).
  auto p = ParseProgram("P(s) -> Q(s, y).\nP(0).");
  EXPECT_TRUE(p.status().IsInvalidArgument());
}

TEST(ParserErrors, VariableUsedBothWays) {
  auto p = ParseProgram("P(0, a).\nP(s, x), Q(x, s) -> P(s+1, x).\nQ(a, b).");
  // s functional in P but non-functional in... Q(x, s): since Q is inferred
  // non-functional, s appears as a plain argument: conflict.
  EXPECT_TRUE(p.status().IsInvalidArgument());
}

TEST(ParserErrors, ConstantInFunctionalPosition) {
  auto p = ParseProgram("Meets(0, x) -> Meets(tony, x).\nMeets(0, a).");
  EXPECT_TRUE(p.status().IsInvalidArgument());
}

TEST(ParserErrors, FunctionInNonFunctionalPosition) {
  auto p = ParseProgram("P(a, f(b)).");
  EXPECT_TRUE(p.status().IsInvalidArgument());
}

TEST(ParserErrors, MissingDot) {
  auto p = ParseProgram("P(a)");
  EXPECT_TRUE(p.status().IsInvalidArgument());
}

TEST(ParserErrors, ArityMismatchAcrossStatements) {
  auto p = ParseProgram("P(a).\nP(a, b).");
  EXPECT_TRUE(p.status().IsInvalidArgument());
}

TEST(ParserErrors, HugeNumeralRejected) {
  auto p = ParseProgram("Meets(99999999, a).");
  EXPECT_TRUE(p.status().IsInvalidArgument());
}

TEST(ParserErrors, DeeplyNestedTermRejectedNotCrashed) {
  // 100k nested applications: without the depth guard the recursive descent
  // would overflow the stack; with it the parser reports InvalidArgument.
  constexpr int kDepth = 100000;
  std::string input = "P(";
  for (int i = 0; i < kDepth; ++i) input += "f(";
  input += "0";
  for (int i = 0; i < kDepth; ++i) input += ")";
  input += ").";
  auto p = ParseProgram(input);
  ASSERT_FALSE(p.ok());
  EXPECT_TRUE(p.status().IsInvalidArgument());
  EXPECT_NE(p.status().message().find("depth"), std::string::npos);
}

TEST(ParserErrors, ModeratelyNestedTermStillAccepted) {
  // Well under the guard: nesting must keep working.
  constexpr int kDepth = 100;
  std::string input = "P(";
  for (int i = 0; i < kDepth; ++i) input += "f(";
  input += "0";
  for (int i = 0; i < kDepth; ++i) input += ")";
  input += ").";
  EXPECT_TRUE(ParseProgram(input).ok());
}

// ---------- fuzz: no crash on arbitrary input ----------

TEST(ParserFuzz, RandomBytesNeverCrash) {
  std::mt19937 rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    std::string input;
    size_t len = rng() % 120;
    for (size_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>(32 + rng() % 95));  // printable ASCII
    }
    auto result = Parse(input);
    (void)result;  // ok or error; must not crash
  }
}

TEST(ParserFuzz, RandomTokenSoupNeverCrash) {
  std::mt19937 rng(99);
  const std::vector<std::string> pool = {
      "P",  "Q(", ")",  ",",  ".",  "->", ":-", "?",  "x",  "y",   "s",
      "0",  "1",  "42", "+1", "f(", "a",  "b",  "(",  "?(", "ext(", "%c\n"};
  for (int trial = 0; trial < 300; ++trial) {
    std::string input;
    size_t len = rng() % 30;
    for (size_t i = 0; i < len; ++i) input += pool[rng() % pool.size()] + " ";
    auto result = Parse(input);
    (void)result;
  }
}

TEST(ParserFuzz, ValidProgramsAlwaysReparse) {
  // Printer output of any accepted random program must parse back.
  std::mt19937 rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    std::string input;
    size_t len = rng() % 40;
    const std::vector<std::string> pool = {"P(", "Q(", "0", "x", ",", ")",
                                           "->", ".",  "a", "t", "+1"};
    for (size_t i = 0; i < len; ++i) input += pool[rng() % pool.size()];
    auto parsed = ParseProgram(input);
    if (!parsed.ok()) continue;
    auto again = ParseProgram(ToString(*parsed));
    EXPECT_TRUE(again.ok()) << input;
  }
}

}  // namespace
}  // namespace relspec
