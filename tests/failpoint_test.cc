// Failpoint framework tests plus per-phase fault-injection coverage: every
// pipeline phase with a planted site must unwind with a clean Status when
// its site fires, and a retry after failpoint::Clear() must produce a
// byte-identical result to an uninjected run.

#include <gtest/gtest.h>

#include <string>

#include "src/base/failpoint.h"
#include "src/core/engine.h"
#include "src/core/query.h"
#include "src/core/spec_io.h"
#include "src/datalog/database.h"
#include "src/datalog/evaluator.h"
#include "src/parser/parser.h"
#include "src/temporal/temporal_engine.h"

namespace relspec {
namespace {

// Every test must leave the process pristine, or later tests (and the
// byte-identical-retry assertions) see leftover sites.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::Clear(); }
  void TearDown() override { failpoint::Clear(); }
};

constexpr char kMeets[] = R"(
  Meets(0, Tony).
  Next(Tony, Jan).  Next(Jan, Tony).
  Meets(t, x), Next(x, y) -> Meets(t+1, y).
)";

// ---------------------------------------------------------------------------
// Framework semantics
// ---------------------------------------------------------------------------

TEST_F(FailpointTest, InactiveByDefault) {
  EXPECT_FALSE(failpoint::Active());
  // The macro's guarded path: nothing fires, nothing is recorded.
  auto probe = []() -> Status {
    RELSPEC_FAILPOINT("test.unconfigured");
    return Status::OK();
  };
  EXPECT_TRUE(probe().ok());
  EXPECT_EQ(failpoint::HitCount("test.unconfigured"), 0u);
}

TEST_F(FailpointTest, EachActionInjectsItsStatusCode) {
  ASSERT_TRUE(failpoint::Configure("a=error,b=alloc,c=cancel,d=deadline").ok());
  EXPECT_TRUE(failpoint::Active());
  EXPECT_TRUE(failpoint::Evaluate("a").IsInternal());
  EXPECT_TRUE(failpoint::Evaluate("b").IsResourceExhausted());
  EXPECT_TRUE(failpoint::Evaluate("c").IsCancelled());
  EXPECT_TRUE(failpoint::Evaluate("d").IsDeadlineExceeded());
}

TEST_F(FailpointTest, OneInNFiresDeterministicallyOnEveryNthHit) {
  ASSERT_TRUE(failpoint::Configure("p=1in3").ok());
  for (int round = 0; round < 3; ++round) {
    EXPECT_TRUE(failpoint::Evaluate("p").ok());
    EXPECT_TRUE(failpoint::Evaluate("p").ok());
    EXPECT_TRUE(failpoint::Evaluate("p").IsInternal());
  }
  EXPECT_EQ(failpoint::HitCount("p"), 9u);
}

TEST_F(FailpointTest, OffCountsButNeverFires) {
  ASSERT_TRUE(failpoint::Configure("trace.me=off").ok());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(failpoint::Evaluate("trace.me").ok());
  EXPECT_EQ(failpoint::HitCount("trace.me"), 5u);
  auto sites = failpoint::EvaluatedSites();
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0], "trace.me");
}

TEST_F(FailpointTest, MalformedSpecInstallsNothing) {
  EXPECT_TRUE(failpoint::Configure("ok.site=error,bad").IsInvalidArgument());
  EXPECT_TRUE(failpoint::Configure("x=bogus").IsInvalidArgument());
  EXPECT_TRUE(failpoint::Configure("x=1in0").IsInvalidArgument());
  EXPECT_TRUE(failpoint::Configure("=error").IsInvalidArgument());
  // The valid prefix of a rejected spec must not be armed.
  EXPECT_FALSE(failpoint::Active());
  EXPECT_TRUE(failpoint::Evaluate("ok.site").ok());
}

TEST_F(FailpointTest, ClearReturnsToPristineState) {
  ASSERT_TRUE(failpoint::Configure("z=error").ok());
  EXPECT_TRUE(failpoint::Evaluate("z").IsInternal());
  failpoint::Clear();
  EXPECT_FALSE(failpoint::Active());
  EXPECT_EQ(failpoint::HitCount("z"), 0u);
  EXPECT_TRUE(failpoint::EvaluatedSites().empty());
}

// ---------------------------------------------------------------------------
// Per-phase unwind + byte-identical retry
// ---------------------------------------------------------------------------

// Builds kMeets with `site` armed as `action`, expecting the build to fail
// with `want_internal ? Internal : breach`; then clears and rebuilds,
// asserting the serialized graph spec is byte-identical to `baseline`.
void ExpectEngineUnwindAndCleanRetry(const char* site,
                                     const std::string& baseline) {
  ASSERT_TRUE(
      failpoint::Configure(std::string(site) + "=error").ok());
  auto broken = FunctionalDatabase::FromSource(kMeets);
  ASSERT_FALSE(broken.ok()) << "site " << site << " did not fire";
  EXPECT_TRUE(broken.status().IsInternal()) << broken.status().ToString();
  EXPECT_GE(failpoint::HitCount(site), 1u) << "site " << site << " not reached";

  failpoint::Clear();
  auto retried = FunctionalDatabase::FromSource(kMeets);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  auto spec = (*retried)->BuildGraphSpec();
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(SpecIo::Serialize(*spec), baseline)
      << "retry after Clear() diverged for site " << site;
}

TEST_F(FailpointTest, EnginePhasesUnwindCleanly) {
  auto clean = FunctionalDatabase::FromSource(kMeets);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  auto clean_spec = (*clean)->BuildGraphSpec();
  ASSERT_TRUE(clean_spec.ok());
  const std::string baseline = SpecIo::Serialize(*clean_spec);

  ExpectEngineUnwindAndCleanRetry("ground.build", baseline);
  ExpectEngineUnwindAndCleanRetry("fixpoint.round", baseline);
  ExpectEngineUnwindAndCleanRetry("chi.pass", baseline);
  ExpectEngineUnwindAndCleanRetry("algorithm_q.visit", baseline);
}

TEST_F(FailpointTest, DatalogIterationUnwinds) {
  ASSERT_TRUE(failpoint::Configure("datalog.iteration=cancel").ok());
  datalog::Database db;
  ASSERT_TRUE(db.Declare(0, 2).ok());  // Edge
  ASSERT_TRUE(db.Declare(1, 2).ok());  // Reach
  for (uint32_t i = 0; i + 1 < 6; ++i) db.Insert(0, {i, i + 1});
  std::vector<datalog::DRule> rules;
  {
    datalog::DRule r;  // Reach(x,y) <- Edge(x,y).
    r.num_vars = 2;
    r.head = datalog::DAtom{1, {datalog::DTerm::Var(0), datalog::DTerm::Var(1)}};
    r.body = {datalog::DAtom{0, {datalog::DTerm::Var(0), datalog::DTerm::Var(1)}}};
    rules.push_back(r);
  }
  auto stats = datalog::Evaluate(rules, &db);
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsCancelled()) << stats.status().ToString();
  EXPECT_GE(failpoint::HitCount("datalog.iteration"), 1u);

  failpoint::Clear();
  auto retried = datalog::Evaluate(rules, &db);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(db.relation(1).size(), 5u);
}

TEST_F(FailpointTest, CongruenceClosureDrainInterruptsStickily) {
  auto db = FunctionalDatabase::FromSource(kMeets);
  ASSERT_TRUE(db.ok());
  auto espec = (*db)->BuildEquationalSpec();
  ASSERT_TRUE(espec.ok());
  Path a = Path::Zero();
  Path big = a;
  for (int i = 0; i < 6; ++i) big = big.Extend(0);

  ASSERT_TRUE(failpoint::Configure("cc.drain=alloc").ok());
  // The membership test still answers (soundly, possibly under-approximate):
  // the closure keeps whatever merges landed before the interrupt.
  (void)espec->Congruent(a, big);
  EXPECT_GE(failpoint::HitCount("cc.drain"), 1u);
  // The interrupt surfaces as a Status on the explaining API.
  auto proof = espec->ExplainCongruence(a, big);
  ASSERT_FALSE(proof.ok());
  EXPECT_TRUE(proof.status().IsResourceExhausted())
      << proof.status().ToString();

  failpoint::Clear();
  // A fresh spec (fresh closure) answers normally after the clear: every
  // equation of R is trivially in Cl(R).
  auto fresh = (*db)->BuildEquationalSpec();
  ASSERT_TRUE(fresh.ok());
  ASSERT_FALSE(fresh->equations().empty());
  for (const auto& [t1, t2] : fresh->equations()) {
    EXPECT_TRUE(fresh->Congruent(t1, t2));
  }
}

TEST_F(FailpointTest, TemporalStepUnwinds) {
  constexpr char kRotation[] = R"(
    OnCall(0, m0).
    Rotate(m0, m1).  Rotate(m1, m0).
    OnCall(t, x), Rotate(x, y) -> OnCall(t+1, y).
  )";
  auto prog = ParseProgram(kRotation);
  ASSERT_TRUE(prog.ok());
  auto engine = TemporalEngine::Build(*prog);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  ASSERT_TRUE(failpoint::Configure("temporal.step=deadline").ok());
  auto spec = (*engine)->ComputeSpec();
  ASSERT_FALSE(spec.ok());
  EXPECT_TRUE(spec.status().IsDeadlineExceeded()) << spec.status().ToString();
  EXPECT_GE(failpoint::HitCount("temporal.step"), 1u);

  failpoint::Clear();
  auto retried = (*engine)->ComputeSpec();
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(retried->period(), 2u);
}

TEST_F(FailpointTest, QueryEnumerationUnwinds) {
  auto db = FunctionalDatabase::FromSource(kMeets);
  ASSERT_TRUE(db.ok());
  auto query = ParseQuery("?(t) Meets(t, Tony).", (*db)->mutable_program());
  ASSERT_TRUE(query.ok());
  auto answer = AnswerQuery(db->get(), *query);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();

  ASSERT_TRUE(failpoint::Configure("query.enumerate=error").ok());
  auto list = answer->Enumerate(/*max_depth=*/4, /*max_count=*/100);
  ASSERT_FALSE(list.ok());
  EXPECT_TRUE(list.status().IsInternal());

  failpoint::Clear();
  auto retried = answer->Enumerate(/*max_depth=*/4, /*max_count=*/100);
  ASSERT_TRUE(retried.ok());
  EXPECT_FALSE(retried->empty());
}

}  // namespace
}  // namespace relspec
