// Property-based tests: randomly generated functional programs are run
// through the whole pipeline and checked against
//   (a) the quotient-model certificate (completeness: L ⊆ spec),
//   (b) the bounded brute-force fixpoint (soundness: bounded ⊆ spec, and
//       equality on stabilized regions),
//   (c) agreement between the graph and equational specifications,
//   (d) serialization round trips,
//   (e) incremental vs recompute query answers (Theorem 5.1),
//   (f) bounded CONGR evaluation (Section 3.6).

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "src/core/congr.h"
#include "src/core/engine.h"
#include "src/core/query.h"
#include "src/core/spec_io.h"
#include "src/parser/parser.h"

namespace relspec {
namespace {

// Generates a random functional program over predicates P0..P{np-1}
// (functional, arity 1 or 2), symbols f/g, constants a/b.
std::string RandomProgram(std::mt19937* rng) {
  auto pick = [rng](int n) { return static_cast<int>((*rng)() % n); };
  int num_preds = 1 + pick(3);
  int num_syms = 1 + pick(2);
  std::vector<int> arity(num_preds);
  for (int& a : arity) a = 1 + pick(2);
  auto pred_atom = [&](int p, const std::string& term,
                       const std::string& cst) {
    std::string s = "P" + std::to_string(p) + "(" + term;
    if (arity[p] == 2) s += ", " + cst;
    return s + ")";
  };
  auto rand_const = [&]() { return pick(2) == 0 ? "a" : "b"; };
  auto rand_sym = [&]() { return num_syms == 1 || pick(2) == 0 ? "f" : "g"; };

  std::string out;
  // 1-2 facts at depth <= 2.
  int num_facts = 1 + pick(2);
  for (int i = 0; i < num_facts; ++i) {
    int depth = pick(3);
    std::string term = "0";
    for (int d = 0; d < depth; ++d) term = std::string(rand_sym()) + "(" + term + ")";
    out += pred_atom(pick(num_preds), term, rand_const()) + ".\n";
  }
  // 2-5 rules.
  int num_rules = 2 + pick(4);
  for (int i = 0; i < num_rules; ++i) {
    // Body: 1-2 atoms at offsets s or sym(s).
    int body_atoms = 1 + pick(2);
    std::vector<std::string> body;
    for (int b = 0; b < body_atoms; ++b) {
      std::string term = pick(2) == 0 ? "s" : std::string(rand_sym()) + "(s)";
      body.push_back(pred_atom(pick(num_preds), term, rand_const()));
    }
    // Head: at s or sym(s).
    std::string hterm = pick(2) == 0 ? "s" : std::string(rand_sym()) + "(s)";
    std::string head = pred_atom(pick(num_preds), hterm, rand_const());
    std::string rule;
    for (size_t b = 0; b < body.size(); ++b) {
      if (b > 0) rule += ", ";
      rule += body[b];
    }
    out += rule + " -> " + head + ".\n";
  }
  return out;
}

// All paths over the program's alphabet up to `depth`, shortlex.
std::vector<Path> UniverseUpTo(const GroundProgram& ground, int depth) {
  std::vector<Path> out = {Path::Zero()};
  std::vector<Path> layer = {Path::Zero()};
  for (int d = 0; d < depth; ++d) {
    std::vector<Path> next;
    for (const Path& p : layer) {
      for (FuncId f : ground.alphabet()) next.push_back(p.Extend(f));
    }
    out.insert(out.end(), next.begin(), next.end());
    layer = std::move(next);
  }
  return out;
}

// A richer generator with a fixed predicate signature — P0/2 and P1/1
// functional, R/1 non-functional — drawing rules from templates that cover
// non-functional-variable joins, down-propagation, pinned body atoms,
// existential global heads, and globals feeding back into the chain.
std::string RandomProgramRich(std::mt19937* rng) {
  auto pick = [rng](int n) { return static_cast<int>((*rng)() % n); };
  int num_syms = 1 + pick(2);
  auto rand_sym = [&]() {
    return std::string(num_syms == 1 || pick(2) == 0 ? "f" : "g");
  };
  auto rand_const = [&]() { return std::string(pick(2) == 0 ? "a" : "b"); };

  std::string out = "R(a).\n";
  if (pick(2) == 0) out += "R(b).\n";
  // Seed facts.
  {
    int depth = pick(3);
    std::string term = "0";
    for (int d = 0; d < depth; ++d) term = rand_sym() + "(" + term + ")";
    out += "P0(" + term + ", " + rand_const() + ").\n";
  }
  if (pick(2) == 0) out += "P1(" + rand_sym() + "(0)).\n";

  int num_rules = 3 + pick(3);
  for (int i = 0; i < num_rules; ++i) {
    switch (pick(7)) {
      case 0:  // join through a non-functional variable
        out += "P0(t, x), R(x) -> P0(" + rand_sym() + "(t), x).\n";
        break;
      case 1:  // cross-predicate step
        out += "P0(t, " + rand_const() + ") -> P1(" + rand_sym() + "(t)).\n";
        break;
      case 2:  // constant introduction
        out += "P1(t) -> P0(t, " + rand_const() + ").\n";
        break;
      case 3:  // down-propagation
        out += "P0(" + rand_sym() + "(t), x) -> P1(t).\n";
        break;
      case 4:  // existential global head
        out += "P0(t, x) -> Seen(x).\n";
        break;
      case 5:  // pinned body atom gating a step
        out += "P1(" + rand_sym() + "(0)), P0(t, x) -> P0(" + rand_sym() +
               "(t), x).\n";
        break;
      case 6:  // a derived global feeding back into the chain
        out += "Seen(x), P1(t) -> P0(t, x).\n";
        break;
    }
  }
  return out;
}

class RandomProgramTest : public ::testing::TestWithParam<int> {};

void RunPipelineInvariants(const std::string& source) {
  auto db = FunctionalDatabase::FromSource(source);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  // (a) Certificate: the quotient structure is a model, so together with
  // the constructive lower bound the spec equals LFP(Z, D).
  ASSERT_TRUE((*db)->Verify().ok());

  auto gspec = (*db)->BuildGraphSpec();
  auto espec = (*db)->BuildEquationalSpec();
  ASSERT_TRUE(gspec.ok());
  ASSERT_TRUE(espec.ok());

  // (b) Brute force at depth 10 is sound; when two consecutive bounds agree
  // on the inner region, they match the engine exactly there.
  constexpr int kBound = 10;
  constexpr int kInner = 6;
  auto b1 = ComputeBoundedFixpoint((*db)->ground(), kBound);
  auto b2 = ComputeBoundedFixpoint((*db)->ground(), kBound + 2);
  ASSERT_TRUE(b1.ok());
  ASSERT_TRUE(b2.ok());
  const GroundProgram& ground = (*db)->ground();
  std::vector<Path> inner = UniverseUpTo(ground, kInner);
  for (const Path& p : inner) {
    const DynamicBitset& exact = (*db)->labeling().LabelOf(p);
    const DynamicBitset& approx1 = b1->LabelOf(p);
    const DynamicBitset& approx2 = b2->LabelOf(p);
    ASSERT_TRUE(approx1.IsSubsetOf(exact)) << p.depth();  // soundness
    if (approx1 == approx2) {
      EXPECT_EQ(approx1, exact)
          << "stabilized bounded fixpoint disagrees with the engine";
    }
  }

  // (c) Graph and equational specifications agree on every atom over the
  // inner universe.
  for (const Path& p : inner) {
    for (AtomIdx i = 0; i < ground.num_atoms(); ++i) {
      const SliceAtom& atom = ground.atom(i);
      bool g = gspec->Holds(p, atom.pred, atom.args);
      bool e = espec->Holds(p, atom.pred, atom.args);
      bool l = (*db)->labeling().LabelOf(p).Test(i);
      EXPECT_EQ(g, l) << "graph spec vs labeling";
      EXPECT_EQ(e, l) << "equational spec vs labeling";
    }
  }

  // (d) Serialization round trips preserve membership.
  auto greload = SpecIo::ParseGraphSpec(SpecIo::Serialize(*gspec));
  ASSERT_TRUE(greload.ok()) << greload.status().ToString();
  auto ereload = SpecIo::ParseEquationalSpec(SpecIo::Serialize(*espec));
  ASSERT_TRUE(ereload.ok()) << ereload.status().ToString();
  for (const Path& p : inner) {
    for (AtomIdx i = 0; i < ground.num_atoms(); ++i) {
      const SliceAtom& atom = ground.atom(i);
      EXPECT_EQ(greload->Holds(p, atom.pred, atom.args),
                gspec->Holds(p, atom.pred, atom.args));
      EXPECT_EQ(ereload->Holds(p, atom.pred, atom.args),
                espec->Holds(p, atom.pred, atom.args));
    }
  }
}

TEST_P(RandomProgramTest, PipelineInvariants) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::string source = RandomProgram(&rng);
  SCOPED_TRACE(source);
  RunPipelineInvariants(source);
}

TEST_P(RandomProgramTest, RichPipelineInvariants) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 2654435761u + 99u);
  std::string source = RandomProgramRich(&rng);
  SCOPED_TRACE(source);
  RunPipelineInvariants(source);
}

TEST_P(RandomProgramTest, UniformQueriesIncrementalEqualsRecompute) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 7919u + 13u);
  std::string source = RandomProgram(&rng);
  SCOPED_TRACE(source);
  auto db = FunctionalDatabase::FromSource(source);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  // Query each predicate uniformly.
  for (PredId p = 0; p < (*db)->program().symbols.num_predicates(); ++p) {
    const PredicateInfo& info = (*db)->program().symbols.predicate(p);
    if (!info.functional || info.name[0] == '$') continue;
    std::string qtext = "?(s" + std::string(info.arity == 2 ? ", x" : "") +
                        ") " + info.name + "(s" +
                        (info.arity == 2 ? ", x" : "") + ").";
    auto q = ParseQuery(qtext, (*db)->mutable_program());
    ASSERT_TRUE(q.ok()) << qtext;
    auto inc = AnswerQueryIncremental(db->get(), *q);
    auto rec = AnswerQueryRecompute(db->get(), *q);
    ASSERT_TRUE(inc.ok()) << inc.status().ToString();
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    auto e1 = inc->Enumerate(5, 100000);
    auto e2 = rec->Enumerate(5, 100000);
    ASSERT_TRUE(e1.ok());
    ASSERT_TRUE(e2.ok());
    auto render = [](const QueryAnswer& ans,
                     std::vector<ConcreteAnswer> list) {
      std::vector<std::string> out;
      for (const ConcreteAnswer& a : list) {
        std::string s = a.term->ToWord(ans.symbols()) + "|";
        for (ConstId c : a.tuple) s += ans.symbols().constant_name(c) + ",";
        out.push_back(std::move(s));
      }
      std::sort(out.begin(), out.end());
      return out;
    };
    EXPECT_EQ(render(*inc, *e1), render(*rec, *e2)) << qtext;
  }
}

TEST_P(RandomProgramTest, CongrBoundedAgreement) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 104729u + 7u);
  std::string source = RandomProgram(&rng);
  SCOPED_TRACE(source);
  auto db = FunctionalDatabase::FromSource(source);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto espec = (*db)->BuildEquationalSpec();
  ASSERT_TRUE(espec.ok());

  // The bound must cover B and R; representative depth is small for these
  // programs. Keep the universe tight: the eq relation is quadratic in it.
  auto congr = EvaluateCongrBounded(*espec, 6);
  if (!congr.ok()) {
    GTEST_SKIP() << "universe too deep for the bounded CONGR check";
  }
  const GroundProgram& ground = (*db)->ground();
  for (const Path& p : UniverseUpTo(ground, 4)) {
    for (AtomIdx i = 0; i < ground.num_atoms(); ++i) {
      const SliceAtom& atom = ground.atom(i);
      EXPECT_EQ(congr->Holds(p, atom.pred, atom.args),
                espec->Holds(p, atom.pred, atom.args))
          << p.depth();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest, ::testing::Range(0, 25));

// The footnote-3 (merged frontier) variant must agree with the default on
// every membership question.
class MergedFrontierTest : public ::testing::TestWithParam<int> {};

TEST_P(MergedFrontierTest, AgreesWithDefaultTraversal) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 31u + 5u);
  std::string source = RandomProgram(&rng);
  SCOPED_TRACE(source);
  auto db1 = FunctionalDatabase::FromSource(source);
  EngineOptions merged;
  merged.graph.merge_trunk_frontier = true;
  auto db2 = FunctionalDatabase::FromSource(source, merged);
  ASSERT_TRUE(db1.ok());
  ASSERT_TRUE(db2.ok());
  ASSERT_TRUE((*db2)->Verify().ok());
  auto s1 = (*db1)->BuildGraphSpec();
  auto s2 = (*db2)->BuildGraphSpec();
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  // The merged graph is never larger.
  EXPECT_LE(s2->num_clusters(), s1->num_clusters());
  const GroundProgram& ground = (*db1)->ground();
  for (const Path& p : UniverseUpTo(ground, 6)) {
    for (AtomIdx i = 0; i < ground.num_atoms(); ++i) {
      const SliceAtom& atom = ground.atom(i);
      EXPECT_EQ(s1->Holds(p, atom.pred, atom.args),
                s2->Holds(p, atom.pred, atom.args));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergedFrontierTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace relspec
