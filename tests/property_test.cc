// Property-based tests: randomly generated functional programs are run
// through the whole pipeline and checked against
//   (a) the quotient-model certificate (completeness: L ⊆ spec),
//   (b) the bounded brute-force fixpoint (soundness: bounded ⊆ spec, and
//       equality on stabilized regions),
//   (c) agreement between the graph and equational specifications,
//   (d) serialization round trips,
//   (e) incremental vs recompute query answers (Theorem 5.1),
//   (f) bounded CONGR evaluation (Section 3.6).

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "src/core/congr.h"
#include "src/core/engine.h"
#include "src/core/query.h"
#include "src/core/spec_io.h"
#include "src/parser/parser.h"
#include "tests/random_program.h"

namespace relspec {
namespace {

using testutil::RandomProgram;
using testutil::RandomProgramRich;
using testutil::UniverseUpTo;

class RandomProgramTest : public ::testing::TestWithParam<int> {};

void RunPipelineInvariants(const std::string& source) {
  auto db = FunctionalDatabase::FromSource(source);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  // (a) Certificate: the quotient structure is a model, so together with
  // the constructive lower bound the spec equals LFP(Z, D).
  ASSERT_TRUE((*db)->Verify().ok());

  auto gspec = (*db)->BuildGraphSpec();
  auto espec = (*db)->BuildEquationalSpec();
  ASSERT_TRUE(gspec.ok());
  ASSERT_TRUE(espec.ok());

  // (b) Brute force at depth 10 is sound; when two consecutive bounds agree
  // on the inner region, they match the engine exactly there.
  constexpr int kBound = 10;
  constexpr int kInner = 6;
  auto b1 = ComputeBoundedFixpoint((*db)->ground(), kBound);
  auto b2 = ComputeBoundedFixpoint((*db)->ground(), kBound + 2);
  ASSERT_TRUE(b1.ok());
  ASSERT_TRUE(b2.ok());
  const GroundProgram& ground = (*db)->ground();
  std::vector<Path> inner = UniverseUpTo(ground, kInner);
  for (const Path& p : inner) {
    const DynamicBitset& exact = (*db)->labeling().LabelOf(p);
    const DynamicBitset& approx1 = b1->LabelOf(p);
    const DynamicBitset& approx2 = b2->LabelOf(p);
    ASSERT_TRUE(approx1.IsSubsetOf(exact)) << p.depth();  // soundness
    if (approx1 == approx2) {
      EXPECT_EQ(approx1, exact)
          << "stabilized bounded fixpoint disagrees with the engine";
    }
  }

  // (c) Graph and equational specifications agree on every atom over the
  // inner universe.
  for (const Path& p : inner) {
    for (AtomIdx i = 0; i < ground.num_atoms(); ++i) {
      const SliceAtom& atom = ground.atom(i);
      bool g = gspec->Holds(p, atom.pred, atom.args);
      bool e = espec->Holds(p, atom.pred, atom.args);
      bool l = (*db)->labeling().LabelOf(p).Test(i);
      EXPECT_EQ(g, l) << "graph spec vs labeling";
      EXPECT_EQ(e, l) << "equational spec vs labeling";
    }
  }

  // (d) Serialization round trips preserve membership.
  auto greload = SpecIo::ParseGraphSpec(SpecIo::Serialize(*gspec));
  ASSERT_TRUE(greload.ok()) << greload.status().ToString();
  auto ereload = SpecIo::ParseEquationalSpec(SpecIo::Serialize(*espec));
  ASSERT_TRUE(ereload.ok()) << ereload.status().ToString();
  for (const Path& p : inner) {
    for (AtomIdx i = 0; i < ground.num_atoms(); ++i) {
      const SliceAtom& atom = ground.atom(i);
      EXPECT_EQ(greload->Holds(p, atom.pred, atom.args),
                gspec->Holds(p, atom.pred, atom.args));
      EXPECT_EQ(ereload->Holds(p, atom.pred, atom.args),
                espec->Holds(p, atom.pred, atom.args));
    }
  }
}

TEST_P(RandomProgramTest, PipelineInvariants) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::string source = RandomProgram(&rng);
  SCOPED_TRACE(source);
  RunPipelineInvariants(source);
}

TEST_P(RandomProgramTest, RichPipelineInvariants) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 2654435761u + 99u);
  std::string source = RandomProgramRich(&rng);
  SCOPED_TRACE(source);
  RunPipelineInvariants(source);
}

TEST_P(RandomProgramTest, UniformQueriesIncrementalEqualsRecompute) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 7919u + 13u);
  std::string source = RandomProgram(&rng);
  SCOPED_TRACE(source);
  auto db = FunctionalDatabase::FromSource(source);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  // Query each predicate uniformly.
  for (PredId p = 0; p < (*db)->program().symbols.num_predicates(); ++p) {
    const PredicateInfo& info = (*db)->program().symbols.predicate(p);
    if (!info.functional || info.name[0] == '$') continue;
    std::string qtext = "?(s" + std::string(info.arity == 2 ? ", x" : "") +
                        ") " + info.name + "(s" +
                        (info.arity == 2 ? ", x" : "") + ").";
    auto q = ParseQuery(qtext, (*db)->mutable_program());
    ASSERT_TRUE(q.ok()) << qtext;
    auto inc = AnswerQueryIncremental(db->get(), *q);
    auto rec = AnswerQueryRecompute(db->get(), *q);
    ASSERT_TRUE(inc.ok()) << inc.status().ToString();
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    auto e1 = inc->Enumerate(5, 100000);
    auto e2 = rec->Enumerate(5, 100000);
    ASSERT_TRUE(e1.ok());
    ASSERT_TRUE(e2.ok());
    auto render = [](const QueryAnswer& ans,
                     std::vector<ConcreteAnswer> list) {
      std::vector<std::string> out;
      for (const ConcreteAnswer& a : list) {
        std::string s = a.term->ToWord(ans.symbols()) + "|";
        for (ConstId c : a.tuple) s += ans.symbols().constant_name(c) + ",";
        out.push_back(std::move(s));
      }
      std::sort(out.begin(), out.end());
      return out;
    };
    EXPECT_EQ(render(*inc, *e1), render(*rec, *e2)) << qtext;
  }
}

TEST_P(RandomProgramTest, CongrBoundedAgreement) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 104729u + 7u);
  std::string source = RandomProgram(&rng);
  SCOPED_TRACE(source);
  auto db = FunctionalDatabase::FromSource(source);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto espec = (*db)->BuildEquationalSpec();
  ASSERT_TRUE(espec.ok());

  // The bound must cover B and R; representative depth is small for these
  // programs. Keep the universe tight: the eq relation is quadratic in it.
  auto congr = EvaluateCongrBounded(*espec, 6);
  if (!congr.ok()) {
    GTEST_SKIP() << "universe too deep for the bounded CONGR check";
  }
  const GroundProgram& ground = (*db)->ground();
  for (const Path& p : UniverseUpTo(ground, 4)) {
    for (AtomIdx i = 0; i < ground.num_atoms(); ++i) {
      const SliceAtom& atom = ground.atom(i);
      EXPECT_EQ(congr->Holds(p, atom.pred, atom.args),
                espec->Holds(p, atom.pred, atom.args))
          << p.depth();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest, ::testing::Range(0, 25));

// The footnote-3 (merged frontier) variant must agree with the default on
// every membership question.
class MergedFrontierTest : public ::testing::TestWithParam<int> {};

TEST_P(MergedFrontierTest, AgreesWithDefaultTraversal) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 31u + 5u);
  std::string source = RandomProgram(&rng);
  SCOPED_TRACE(source);
  auto db1 = FunctionalDatabase::FromSource(source);
  EngineOptions merged;
  merged.graph.merge_trunk_frontier = true;
  auto db2 = FunctionalDatabase::FromSource(source, merged);
  ASSERT_TRUE(db1.ok());
  ASSERT_TRUE(db2.ok());
  ASSERT_TRUE((*db2)->Verify().ok());
  auto s1 = (*db1)->BuildGraphSpec();
  auto s2 = (*db2)->BuildGraphSpec();
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  // The merged graph is never larger.
  EXPECT_LE(s2->num_clusters(), s1->num_clusters());
  const GroundProgram& ground = (*db1)->ground();
  for (const Path& p : UniverseUpTo(ground, 6)) {
    for (AtomIdx i = 0; i < ground.num_atoms(); ++i) {
      const SliceAtom& atom = ground.atom(i);
      EXPECT_EQ(s1->Holds(p, atom.pred, atom.args),
                s2->Holds(p, atom.pred, atom.args));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergedFrontierTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace relspec
