// Unit tests for src/ast: term/atom construction, program accessors,
// validation, printing.

#include <gtest/gtest.h>

#include "src/ast/ast.h"
#include "src/ast/printer.h"
#include "src/ast/validate.h"
#include "src/parser/parser.h"

namespace relspec {
namespace {

// Builds a tiny table and helpers used across the tests.
struct Fixture {
  Program program;
  PredId meets, next;
  FuncId succ;
  ConstId tony, jan;
  VarId t, x, y;

  Fixture() {
    meets = *program.symbols.InternPredicate("Meets", 2, true);
    next = *program.symbols.InternPredicate("Next", 2, false);
    succ = *program.symbols.InternFunction("+1", 1);
    tony = program.symbols.InternConstant("Tony");
    jan = program.symbols.InternConstant("Jan");
    t = program.symbols.InternVariable("t");
    x = program.symbols.InternVariable("x");
    y = program.symbols.InternVariable("y");
  }

  Atom MeetsAtom(FuncTerm term, NfArg who) const {
    Atom a;
    a.pred = meets;
    a.fterm = std::move(term);
    a.args = {who};
    return a;
  }
  Atom NextAtom(NfArg a1, NfArg a2) const {
    Atom a;
    a.pred = next;
    a.args = {a1, a2};
    return a;
  }
};

TEST(FuncTerm, GroundnessAndDepth) {
  Fixture f;
  FuncTerm zero = FuncTerm::Zero();
  EXPECT_TRUE(zero.IsGround());
  EXPECT_EQ(zero.depth(), 0);
  FuncTerm succ2 = zero.Apply(f.succ).Apply(f.succ);
  EXPECT_TRUE(succ2.IsGround());
  EXPECT_EQ(succ2.depth(), 2);
  FuncTerm var = FuncTerm::Var(f.t).Apply(f.succ);
  EXPECT_FALSE(var.IsGround());
  EXPECT_TRUE(var.IsPure());
}

TEST(FuncTerm, MixedArgumentsAffectGroundness) {
  Fixture f;
  FuncId ext = *f.program.symbols.InternFunction("ext", 2);
  FuncTerm ground = FuncTerm::Zero().Apply(ext, {NfArg::Constant(f.tony)});
  EXPECT_TRUE(ground.IsGround());
  EXPECT_FALSE(ground.IsPure());
  FuncTerm open = FuncTerm::Zero().Apply(ext, {NfArg::Variable(f.x)});
  EXPECT_FALSE(open.IsGround());
}

TEST(FuncTerm, TermIdRoundTrip) {
  Fixture f;
  TermArena arena;
  FuncTerm succ3 = FuncTerm::Zero().Apply(f.succ).Apply(f.succ).Apply(f.succ);
  auto id = succ3.ToTermId(&arena);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(arena.Depth(*id), 3);
  FuncTerm back = FuncTerm::FromTermId(arena, *id);
  EXPECT_EQ(back, succ3);
  EXPECT_TRUE(
      FuncTerm::Var(f.t).ToTermId(&arena).status().IsFailedPrecondition());
}

TEST(Atom, Groundness) {
  Fixture f;
  Atom ground = f.MeetsAtom(FuncTerm::Zero(), NfArg::Constant(f.tony));
  EXPECT_TRUE(ground.IsGround());
  Atom open = f.MeetsAtom(FuncTerm::Var(f.t), NfArg::Constant(f.tony));
  EXPECT_FALSE(open.IsGround());
}

TEST(Program, PredicateAndFunctionPartitions) {
  Fixture f;
  EXPECT_EQ(f.program.FunctionalPredicates(), std::vector<PredId>{f.meets});
  EXPECT_EQ(f.program.NonFunctionalPredicates(), std::vector<PredId>{f.next});
  EXPECT_EQ(f.program.PureFunctions(), std::vector<FuncId>{f.succ});
  EXPECT_TRUE(f.program.MixedFunctions().empty());
}

TEST(Program, ActiveDomainCollectsConstants) {
  Fixture f;
  f.program.facts.push_back(f.NextAtom(NfArg::Constant(f.tony),
                                       NfArg::Constant(f.jan)));
  std::vector<ConstId> domain = f.program.ActiveDomain();
  EXPECT_EQ(domain.size(), 2u);
}

TEST(Program, MaxGroundDepthIgnoresNonGroundTerms) {
  Fixture f;
  Rule r;
  r.body.push_back(f.MeetsAtom(FuncTerm::Var(f.t), NfArg::Variable(f.x)));
  r.head = f.MeetsAtom(FuncTerm::Var(f.t).Apply(f.succ), NfArg::Variable(f.x));
  f.program.rules.push_back(r);
  EXPECT_EQ(f.program.MaxGroundDepth(), 0);
  // A ground fact of depth 3 raises c to 3.
  f.program.facts.push_back(f.MeetsAtom(
      FuncTerm::Zero().Apply(f.succ).Apply(f.succ).Apply(f.succ),
      NfArg::Constant(f.tony)));
  EXPECT_EQ(f.program.MaxGroundDepth(), 3);
}

TEST(CollectVariables, FindsFunctionalAndNonFunctional) {
  Fixture f;
  Atom a = f.MeetsAtom(FuncTerm::Var(f.t), NfArg::Variable(f.x));
  std::vector<VarId> nf;
  std::optional<VarId> fv;
  CollectVariables(a, &nf, &fv);
  ASSERT_TRUE(fv.has_value());
  EXPECT_EQ(*fv, f.t);
  EXPECT_EQ(nf, std::vector<VarId>{f.x});
}

// ---------- validation ----------

TEST(Validate, RangeRestrictionAcceptsAndRejects) {
  Fixture f;
  Rule good;
  good.body.push_back(f.MeetsAtom(FuncTerm::Var(f.t), NfArg::Variable(f.x)));
  good.body.push_back(f.NextAtom(NfArg::Variable(f.x), NfArg::Variable(f.y)));
  good.head =
      f.MeetsAtom(FuncTerm::Var(f.t).Apply(f.succ), NfArg::Variable(f.y));
  EXPECT_TRUE(CheckRangeRestricted(good, f.program.symbols).ok());

  Rule bad = good;
  bad.body.pop_back();  // y no longer bound in the body
  EXPECT_TRUE(
      CheckRangeRestricted(bad, f.program.symbols).IsInvalidArgument());

  Rule bad_func;  // head functional variable not in body
  bad_func.body.push_back(f.NextAtom(NfArg::Variable(f.x), NfArg::Variable(f.x)));
  bad_func.head = f.MeetsAtom(FuncTerm::Var(f.t), NfArg::Variable(f.x));
  EXPECT_TRUE(
      CheckRangeRestricted(bad_func, f.program.symbols).IsInvalidArgument());
}

TEST(Validate, NormalityDetectsDeepAndMultiVariableRules) {
  Fixture f;
  Rule normal;
  normal.body.push_back(f.MeetsAtom(FuncTerm::Var(f.t), NfArg::Variable(f.x)));
  normal.head =
      f.MeetsAtom(FuncTerm::Var(f.t).Apply(f.succ), NfArg::Variable(f.x));
  EXPECT_TRUE(IsNormalRule(normal));

  Rule deep = normal;
  deep.head = f.MeetsAtom(FuncTerm::Var(f.t).Apply(f.succ).Apply(f.succ),
                          NfArg::Variable(f.x));
  EXPECT_FALSE(IsNormalRule(deep));

  VarId s2 = f.program.symbols.InternVariable("s2");
  Rule twovars = normal;
  twovars.body.push_back(f.MeetsAtom(FuncTerm::Var(s2), NfArg::Variable(f.x)));
  EXPECT_FALSE(IsNormalRule(twovars));

  // Deep *ground* terms are allowed in normal rules.
  Rule ground_deep = normal;
  ground_deep.body.push_back(f.MeetsAtom(
      FuncTerm::Zero().Apply(f.succ).Apply(f.succ), NfArg::Constant(f.tony)));
  EXPECT_TRUE(IsNormalRule(ground_deep));
}

TEST(Validate, ProgramChecksFactsAndArity) {
  Fixture f;
  f.program.facts.push_back(
      f.MeetsAtom(FuncTerm::Var(f.t), NfArg::Constant(f.tony)));
  EXPECT_TRUE(ValidateProgram(f.program).IsInvalidArgument());  // open fact
  f.program.facts.clear();
  Atom wrong_arity;
  wrong_arity.pred = f.next;
  wrong_arity.args = {NfArg::Constant(f.tony)};
  f.program.facts.push_back(wrong_arity);
  EXPECT_TRUE(ValidateProgram(f.program).IsInvalidArgument());
}

TEST(Validate, QueryShape) {
  Fixture f;
  Query q;
  q.atoms.push_back(f.MeetsAtom(FuncTerm::Var(f.t), NfArg::Variable(f.x)));
  q.answer_vars = {f.t, f.x};
  EXPECT_TRUE(ValidateQuery(q, f.program.symbols).ok());
  EXPECT_TRUE(IsUniformQuery(q));

  Query empty;
  EXPECT_TRUE(ValidateQuery(empty, f.program.symbols).IsInvalidArgument());

  Query bad_var = q;
  bad_var.answer_vars.push_back(f.y);  // y not in the query
  EXPECT_TRUE(ValidateQuery(bad_var, f.program.symbols).IsInvalidArgument());

  Query nonuniform;
  nonuniform.atoms.push_back(
      f.MeetsAtom(FuncTerm::Var(f.t).Apply(f.succ), NfArg::Variable(f.x)));
  nonuniform.answer_vars = {f.t};
  EXPECT_FALSE(IsUniformQuery(nonuniform));

  // A ground functional term keeps the query uniform.
  Query with_ground = q;
  with_ground.atoms.push_back(
      f.MeetsAtom(FuncTerm::Zero().Apply(f.succ), NfArg::Variable(f.x)));
  EXPECT_TRUE(IsUniformQuery(with_ground));
}

// ---------- printing ----------

TEST(Printer, RendersPaperSyntax) {
  Fixture f;
  Rule r;
  r.body.push_back(f.MeetsAtom(FuncTerm::Var(f.t), NfArg::Variable(f.x)));
  r.body.push_back(f.NextAtom(NfArg::Variable(f.x), NfArg::Variable(f.y)));
  r.head =
      f.MeetsAtom(FuncTerm::Var(f.t).Apply(f.succ), NfArg::Variable(f.y));
  EXPECT_EQ(ToString(r, f.program.symbols),
            "Meets(t,x), Next(x,y) -> Meets(t+1,y).");
  Atom fact = f.MeetsAtom(FuncTerm::Zero(), NfArg::Constant(f.tony));
  Rule fact_rule;
  fact_rule.head = fact;
  EXPECT_EQ(ToString(fact_rule, f.program.symbols), "Meets(0,Tony).");
}

TEST(Printer, ProgramRoundTripsThroughParser) {
  auto parsed = ParseProgram(R"(
    Meets(0, Tony).
    Next(Tony, Jan).
    Meets(t, x), Next(x, y) -> Meets(t+1, y).
  )");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::string text = ToString(*parsed);
  auto reparsed = ParseProgram(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << text;
  EXPECT_EQ(ToString(*reparsed), text);
}

}  // namespace
}  // namespace relspec
