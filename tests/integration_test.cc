// End-to-end reproduction of the paper's worked examples (experiments E1-E3).

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/query.h"
#include "src/ast/validate.h"
#include "src/parser/parser.h"

namespace relspec {
namespace {

// --- E2: the introductory Meets/Next example (Section 1) ---

constexpr const char* kMeetsSource = R"(
  Meets(0, Tony).
  Next(Tony, Jan).
  Next(Jan, Tony).
  Meets(t, x), Next(x, y) -> Meets(t+1, y).
)";

TEST(MeetsExample, MembershipMatchesPaper) {
  auto db = FunctionalDatabase::FromSource(kMeetsSource);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  // Tony meets on even days, Jan on odd days.
  for (int n = 0; n <= 20; ++n) {
    std::string tony = "Meets(" + std::to_string(n) + ", Tony)";
    std::string jan = "Meets(" + std::to_string(n) + ", Jan)";
    auto t = (*db)->HoldsFactText(tony);
    auto j = (*db)->HoldsFactText(jan);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    ASSERT_TRUE(j.ok()) << j.status().ToString();
    EXPECT_EQ(*t, n % 2 == 0) << tony;
    EXPECT_EQ(*j, n % 2 == 1) << jan;
  }
}

TEST(MeetsExample, TwoClustersWithFlipFlopSuccessors) {
  auto db = FunctionalDatabase::FromSource(kMeetsSource);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  const LabelGraph& graph = (*db)->label_graph();
  // c = 0: one trunk cluster (the term 0) plus the BFS clusters. The paper's
  // two congruence classes {0,2,4,...} and {1,3,5,...}: 0 is a singleton
  // trunk cluster, and the BFS yields the odd-days cluster (repr 1) and the
  // even-days cluster (repr 2), whose label equals cluster 0's.
  EXPECT_EQ((*db)->ground().trunk_depth(), 0);
  // The two-element quotient of the paper shows up as two distinct states.
  EXPECT_EQ(graph.EquivalenceScope(), 2u);
  // f(odd) = even-state and f(even-state) = odd: a 2-cycle in F.
  uint32_t c0 = graph.ClusterOf(Path::Zero());
  uint32_t c1 = graph.SuccessorOf(c0, 0);
  uint32_t c2 = graph.SuccessorOf(c1, 0);
  uint32_t c3 = graph.SuccessorOf(c2, 0);
  EXPECT_NE(graph.cluster(c1).label, graph.cluster(c0).label);
  EXPECT_EQ(graph.cluster(c2).label, graph.cluster(c0).label);
  EXPECT_EQ(graph.cluster(c3).label, graph.cluster(c1).label);
  EXPECT_EQ(c3, c1);  // the walk has entered the 2-cycle
}

TEST(MeetsExample, QuotientModelCertified) {
  auto db = FunctionalDatabase::FromSource(kMeetsSource);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE((*db)->Verify().ok());
}

TEST(MeetsExample, InfiniteQueryAnswerSpecification) {
  auto db = FunctionalDatabase::FromSource(kMeetsSource);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto q = ParseQuery("? Meets(t, x).", (*db)->mutable_program());
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto answer = AnswerQuery(db->get(), *q);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_TRUE(answer->has_functional_answer());
  auto concrete = answer->Enumerate(/*max_depth=*/6, /*max_count=*/100);
  ASSERT_TRUE(concrete.ok());
  // Days 0..6 -> 7 answers alternating Tony/Jan.
  ASSERT_EQ(concrete->size(), 7u);
  const SymbolTable& symbols = answer->symbols();
  for (const ConcreteAnswer& a : *concrete) {
    ASSERT_TRUE(a.term.has_value());
    ASSERT_EQ(a.tuple.size(), 1u);
    const std::string& who = symbols.constant_name(a.tuple[0]);
    EXPECT_EQ(who, a.term->depth() % 2 == 0 ? "Tony" : "Jan");
  }
}

// --- E1: the list-membership example (Section 3.4) ---

constexpr const char* kListSource = R"(
  P(a).
  P(b).
  P(x) -> Member(ext(0, x), x).
  P(y), Member(s, x) -> Member(ext(s, y), y).
  P(y), Member(s, x) -> Member(ext(s, y), x).
)";

TEST(ListExample, MembershipSemantics) {
  auto db = FunctionalDatabase::FromSource(kListSource);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  // Slices from the paper: L[ab] = {Member(ab,a), Member(ab,b)}, etc.
  EXPECT_TRUE(*(*db)->HoldsFactText("Member(ext(0,a), a)"));
  EXPECT_FALSE(*(*db)->HoldsFactText("Member(ext(0,a), b)"));
  EXPECT_TRUE(*(*db)->HoldsFactText("Member(ext(ext(0,a),b), a)"));
  EXPECT_TRUE(*(*db)->HoldsFactText("Member(ext(ext(0,a),b), b)"));
  EXPECT_TRUE(*(*db)->HoldsFactText("Member(ext(ext(0,b),a), a)"));
  EXPECT_TRUE(*(*db)->HoldsFactText("Member(ext(ext(0,a),a), a)"));
  EXPECT_FALSE(*(*db)->HoldsFactText("Member(ext(ext(0,a),a), b)"));
  EXPECT_FALSE(*(*db)->HoldsFactText("Member(0, a)"));
  // Deeper: aba contains both.
  EXPECT_TRUE(*(*db)->HoldsFactText("Member(ext(ext(ext(0,a),b),a), b)"));
}

TEST(ListExample, FourClustersAsInPaper) {
  // Section 3.4's worked run has Active = {a, b, ab} and representative
  // terms {0, a, b, ab}: it starts the traversal at depth c (footnote 3).
  EngineOptions options;
  options.graph.merge_trunk_frontier = true;
  auto db = FunctionalDatabase::FromSource(kListSource, options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  const LabelGraph& graph = (*db)->label_graph();
  EXPECT_EQ(graph.CongruenceScope(), 4u);
  EXPECT_EQ(graph.num_active(), 3u);
  EXPECT_TRUE((*db)->Verify().ok());
  // Successor mappings from the paper: f_a(a)=a, f_b(a)=ab, f_a(b)=ab,
  // f_b(b)=b, f_a(ab)=f_b(ab)=ab.
  const SymbolTable& sym = (*db)->program().symbols;
  auto fa = sym.FindFunction("ext{a}");
  auto fb = sym.FindFunction("ext{b}");
  ASSERT_TRUE(fa.ok());
  ASSERT_TRUE(fb.ok());
  Path pa = Path::Zero().Extend(*fa);
  Path pb = Path::Zero().Extend(*fb);
  Path pab = pa.Extend(*fb);
  uint32_t ca = graph.ClusterOf(pa);
  uint32_t cb = graph.ClusterOf(pb);
  uint32_t cab = graph.ClusterOf(pab);
  EXPECT_NE(ca, cb);
  EXPECT_NE(ca, cab);
  EXPECT_EQ(graph.ClusterOf(pa.Extend(*fa)), ca);     // aa ~ a
  EXPECT_EQ(graph.ClusterOf(pb.Extend(*fb)), cb);     // bb ~ b
  EXPECT_EQ(graph.ClusterOf(pb.Extend(*fa)), cab);    // ba ~ ab
  EXPECT_EQ(graph.ClusterOf(pab.Extend(*fa)), cab);   // aba ~ ab
  EXPECT_EQ(graph.ClusterOf(pab.Extend(*fb)), cab);   // abb ~ ab
}

TEST(ListExample, DefaultModeSixClusters) {
  // Without the footnote-3 improvement the trunk (depth <= c = 1) terms are
  // singleton clusters: {0, a, b} plus BFS representatives {aa, ab, bb}.
  auto db = FunctionalDatabase::FromSource(kListSource);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  const LabelGraph& graph = (*db)->label_graph();
  EXPECT_EQ(graph.CongruenceScope(), 6u);
  EXPECT_EQ(graph.num_active(), 3u);
  EXPECT_TRUE((*db)->Verify().ok());
}

TEST(ListExample, IncrementalQueryMatchesPaper) {
  auto db = FunctionalDatabase::FromSource(kListSource);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  // Section 5: Member(s, a) -> QUERY(s). The incremental primary database
  // holds QUERY(a) and QUERY(ab).
  auto q = ParseQuery("?(s) Member(s, a).", (*db)->mutable_program());
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_TRUE(IsUniformQuery(*q));
  auto answer = AnswerQueryIncremental(db->get(), *q);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  // Lists containing a: exactly those whose term includes an ext(.,a).
  auto path_a = (*db)->PathOfGroundTerm(
      FuncTerm::Zero().Apply(*(*db)->program().symbols.FindFunction("ext{a}")));
  ASSERT_TRUE(path_a.ok());
  EXPECT_TRUE(*answer->Contains(*path_a, {}));
  EXPECT_FALSE(*answer->Contains(Path::Zero(), {}));
}

// --- E3 partner: recompute vs incremental agree (Theorem 5.1) ---

TEST(ListExample, IncrementalEqualsRecompute) {
  auto db = FunctionalDatabase::FromSource(kListSource);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto q = ParseQuery("?(s,x) Member(s, x).", (*db)->mutable_program());
  ASSERT_TRUE(q.ok());
  auto inc = AnswerQueryIncremental(db->get(), *q);
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();
  auto rec = AnswerQueryRecompute(db->get(), *q);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  auto e1 = inc->Enumerate(4, 10000);
  auto e2 = rec->Enumerate(4, 10000);
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  std::sort(e1->begin(), e1->end());
  std::sort(e2->begin(), e2->end());
  // Compare as (term, constant-name) pairs: the two answers use different
  // symbol tables.
  auto render = [](const QueryAnswer& ans,
                   const std::vector<ConcreteAnswer>& list) {
    std::vector<std::string> out;
    for (const ConcreteAnswer& a : list) {
      std::string s = a.term->ToWord(ans.symbols()) + "|";
      for (ConstId cid : a.tuple) s += ans.symbols().constant_name(cid) + ",";
      out.push_back(std::move(s));
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(render(*inc, *e1), render(*rec, *e2));
}

// --- E3: the Even example (Section 3.5) ---

constexpr const char* kEvenSource = R"(
  Even(0).
  Even(t) -> Even(t+2).
)";

TEST(EvenExample, EquationalSpecificationMatchesPaper) {
  // Section 3.5 presents R = {(0,2)} for the Even program; that spec uses
  // the improved traversal start of footnote 3 (depth c instead of c+1).
  EngineOptions options;
  options.graph.merge_trunk_frontier = true;
  auto db = FunctionalDatabase::FromSource(kEvenSource, options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto spec = (*db)->BuildEquationalSpec();
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  // R = {(2, 0)}: exactly one equation, relating 2 and 0.
  ASSERT_EQ(spec->num_equations(), 1u);
  EXPECT_EQ(spec->equations()[0].first.depth() +
                spec->equations()[0].second.depth(),
            2);

  auto succ = (*db)->program().symbols.FindFunction("+1");
  ASSERT_TRUE(succ.ok());
  auto nat = [&](int n) {
    std::vector<FuncId> syms(static_cast<size_t>(n), *succ);
    return Path(std::move(syms));
  };
  // The paper: R = {(0,2)}; (0,4) in Cl(R), (1,3) in Cl(R), (0,3) not.
  EXPECT_TRUE(spec->Congruent(nat(0), nat(2)));
  EXPECT_TRUE(spec->Congruent(nat(0), nat(4)));
  EXPECT_TRUE(spec->Congruent(nat(1), nat(3)));
  EXPECT_FALSE(spec->Congruent(nat(0), nat(3)));
  EXPECT_FALSE(spec->Congruent(nat(0), nat(1)));

  auto even = (*db)->program().symbols.FindPredicate("Even");
  ASSERT_TRUE(even.ok());
  for (int n = 0; n <= 12; ++n) {
    EXPECT_EQ(spec->Holds(nat(n), *even, {}), n % 2 == 0) << n;
  }
}

TEST(EvenExample, MembershipViaEngine) {
  auto db = FunctionalDatabase::FromSource(kEvenSource);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  for (int n = 0; n <= 16; ++n) {
    auto holds = (*db)->HoldsFactText("Even(" + std::to_string(n) + ")");
    ASSERT_TRUE(holds.ok());
    EXPECT_EQ(*holds, n % 2 == 0) << n;
  }
  EXPECT_TRUE((*db)->Verify().ok());
}

// --- Robot planning (Section 1, situation calculus) ---

constexpr const char* kRobotSource = R"(
  At(0, p0).
  Connected(p0, p1).
  Connected(p1, p2).
  Connected(p2, p0).
  At(s, x), Connected(x, y) -> At(move(s, x, y), y).
)";

TEST(RobotExample, ReachabilityAlongMoves) {
  auto db = FunctionalDatabase::FromSource(kRobotSource);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE(*(*db)->HoldsFactText("At(0, p0)"));
  EXPECT_TRUE(*(*db)->HoldsFactText("At(move(0,p0,p1), p1)"));
  EXPECT_TRUE(*(*db)->HoldsFactText("At(move(move(0,p0,p1),p1,p2), p2)"));
  EXPECT_FALSE(*(*db)->HoldsFactText("At(move(0,p0,p1), p0)"));
  // An impossible move: from p0 straight to p2.
  EXPECT_FALSE(*(*db)->HoldsFactText("At(move(0,p0,p2), p2)"));
  // Cycle closes: three moves return to p0.
  EXPECT_TRUE(*(*db)->HoldsFactText(
      "At(move(move(move(0,p0,p1),p1,p2),p2,p0), p0)"));
  EXPECT_TRUE((*db)->Verify().ok());
}

}  // namespace
}  // namespace relspec
