// Shared random-program generators for the property-based and differential
// test suites. Kept header-only so each suite compiles them with its own
// seeds; determinism comes from the caller-supplied mt19937.

#ifndef RELSPEC_TESTS_RANDOM_PROGRAM_H_
#define RELSPEC_TESTS_RANDOM_PROGRAM_H_

#include <random>
#include <string>
#include <vector>

#include "src/core/ground.h"
#include "src/term/path.h"

namespace relspec {
namespace testutil {

// Generates a random functional program over predicates P0..P{np-1}
// (functional, arity 1 or 2), symbols f/g, constants a/b.
inline std::string RandomProgram(std::mt19937* rng) {
  auto pick = [rng](int n) { return static_cast<int>((*rng)() % n); };
  int num_preds = 1 + pick(3);
  int num_syms = 1 + pick(2);
  std::vector<int> arity(num_preds);
  for (int& a : arity) a = 1 + pick(2);
  auto pred_atom = [&](int p, const std::string& term,
                       const std::string& cst) {
    std::string s = "P" + std::to_string(p) + "(" + term;
    if (arity[p] == 2) s += ", " + cst;
    return s + ")";
  };
  auto rand_const = [&]() { return pick(2) == 0 ? "a" : "b"; };
  auto rand_sym = [&]() { return num_syms == 1 || pick(2) == 0 ? "f" : "g"; };

  std::string out;
  // 1-2 facts at depth <= 2.
  int num_facts = 1 + pick(2);
  for (int i = 0; i < num_facts; ++i) {
    int depth = pick(3);
    std::string term = "0";
    for (int d = 0; d < depth; ++d) term = std::string(rand_sym()) + "(" + term + ")";
    out += pred_atom(pick(num_preds), term, rand_const()) + ".\n";
  }
  // 2-5 rules.
  int num_rules = 2 + pick(4);
  for (int i = 0; i < num_rules; ++i) {
    // Body: 1-2 atoms at offsets s or sym(s).
    int body_atoms = 1 + pick(2);
    std::vector<std::string> body;
    for (int b = 0; b < body_atoms; ++b) {
      std::string term = pick(2) == 0 ? "s" : std::string(rand_sym()) + "(s)";
      body.push_back(pred_atom(pick(num_preds), term, rand_const()));
    }
    // Head: at s or sym(s).
    std::string hterm = pick(2) == 0 ? "s" : std::string(rand_sym()) + "(s)";
    std::string head = pred_atom(pick(num_preds), hterm, rand_const());
    std::string rule;
    for (size_t b = 0; b < body.size(); ++b) {
      if (b > 0) rule += ", ";
      rule += body[b];
    }
    out += rule + " -> " + head + ".\n";
  }
  return out;
}

// A richer generator with a fixed predicate signature — P0/2 and P1/1
// functional, R/1 non-functional — drawing rules from templates that cover
// non-functional-variable joins, down-propagation, pinned body atoms,
// existential global heads, and globals feeding back into the chain.
inline std::string RandomProgramRich(std::mt19937* rng) {
  auto pick = [rng](int n) { return static_cast<int>((*rng)() % n); };
  int num_syms = 1 + pick(2);
  auto rand_sym = [&]() {
    return std::string(num_syms == 1 || pick(2) == 0 ? "f" : "g");
  };
  auto rand_const = [&]() { return std::string(pick(2) == 0 ? "a" : "b"); };

  std::string out = "R(a).\n";
  if (pick(2) == 0) out += "R(b).\n";
  // Seed facts.
  {
    int depth = pick(3);
    std::string term = "0";
    for (int d = 0; d < depth; ++d) term = rand_sym() + "(" + term + ")";
    out += "P0(" + term + ", " + rand_const() + ").\n";
  }
  if (pick(2) == 0) out += "P1(" + rand_sym() + "(0)).\n";

  int num_rules = 3 + pick(3);
  for (int i = 0; i < num_rules; ++i) {
    switch (pick(7)) {
      case 0:  // join through a non-functional variable
        out += "P0(t, x), R(x) -> P0(" + rand_sym() + "(t), x).\n";
        break;
      case 1:  // cross-predicate step
        out += "P0(t, " + rand_const() + ") -> P1(" + rand_sym() + "(t)).\n";
        break;
      case 2:  // constant introduction
        out += "P1(t) -> P0(t, " + rand_const() + ").\n";
        break;
      case 3:  // down-propagation
        out += "P0(" + rand_sym() + "(t), x) -> P1(t).\n";
        break;
      case 4:  // existential global head
        out += "P0(t, x) -> Seen(x).\n";
        break;
      case 5:  // pinned body atom gating a step
        out += "P1(" + rand_sym() + "(0)), P0(t, x) -> P0(" + rand_sym() +
               "(t), x).\n";
        break;
      case 6:  // a derived global feeding back into the chain
        out += "Seen(x), P1(t) -> P0(t, x).\n";
        break;
    }
  }
  return out;
}

// All paths over the program's alphabet up to `depth`, shortlex.
inline std::vector<Path> UniverseUpTo(const GroundProgram& ground, int depth) {
  std::vector<Path> out = {Path::Zero()};
  std::vector<Path> layer = {Path::Zero()};
  for (int d = 0; d < depth; ++d) {
    std::vector<Path> next;
    for (const Path& p : layer) {
      for (FuncId f : ground.alphabet()) next.push_back(p.Extend(f));
    }
    out.insert(out.end(), next.begin(), next.end());
    layer = std::move(next);
  }
  return out;
}

}  // namespace testutil
}  // namespace relspec

#endif  // RELSPEC_TESTS_RANDOM_PROGRAM_H_
