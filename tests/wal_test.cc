// DeltaWal unit tests: the RWAL wire format, torn-tail truncation,
// adversarial length prefixes (never allocate past the file), fsync-failure
// poisoning, the RCKP checkpoint container, and OpenDurable end to end —
// reopen after clean shutdown, checkpoint rotation, and torn-checkpoint
// fallback all recover a byte-identical engine. The kill -9 crash matrix
// lives in crash_recovery_test.cc.

#include "src/core/wal.h"

#include <cstdio>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/base/failpoint.h"
#include "src/core/engine.h"
#include "src/core/snapshot.h"

namespace relspec {
namespace {

std::string TestPath(const std::string& name) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "wal_test_" + info->name() + "_" + name;
}

// Removes every file the durable engine may have created around `wal_path`.
void CleanWalFiles(const std::string& wal_path) {
  for (const char* suffix :
       {"", ".prev", ".tmp", ".ckpt", ".ckpt.prev", ".ckpt.tmp"}) {
    std::remove((wal_path + suffix).c_str());
  }
}

constexpr char kSource[] = R"(
  Meets(0, Tony).
  Next(Tony, Jan).  Next(Jan, Tony).
  Meets(t, x), Next(x, y) -> Meets(t+1, y).
)";

// ---------------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------------

TEST(WalFormatTest, HeaderRoundTrip) {
  std::string bytes = DeltaWal::SerializeHeader(0xfeedfacecafebeefull);
  ASSERT_EQ(bytes.size(), DeltaWal::kHeaderSize);
  auto scan = DeltaWal::ScanBytes(bytes);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(scan->base_fingerprint, 0xfeedfacecafebeefull);
  EXPECT_TRUE(scan->records.empty());
  EXPECT_EQ(scan->valid_bytes, bytes.size());
  EXPECT_EQ(scan->truncated_bytes, 0u);
}

TEST(WalFormatTest, RecordsRoundTrip) {
  std::string bytes = DeltaWal::SerializeHeader(7);
  bytes += DeltaWal::SerializeRecord(1, 11, "+ P(a).\n");
  bytes += DeltaWal::SerializeRecord(2, 22, "");
  bytes += DeltaWal::SerializeRecord(3, 33, "- P(a).\n+ P(b).\n");
  auto scan = DeltaWal::ScanBytes(bytes);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  ASSERT_EQ(scan->records.size(), 3u);
  EXPECT_EQ(scan->records[0].seq, 1u);
  EXPECT_EQ(scan->records[0].fingerprint, 11u);
  EXPECT_EQ(scan->records[0].payload, "+ P(a).\n");
  EXPECT_EQ(scan->records[1].payload, "");
  EXPECT_EQ(scan->records[2].fingerprint, 33u);
  EXPECT_EQ(scan->valid_bytes, bytes.size());
  EXPECT_EQ(scan->truncated_bytes, 0u);
}

TEST(WalFormatTest, BadHeaderIsInvalidArgument) {
  // Too short.
  EXPECT_FALSE(DeltaWal::ScanBytes("RWA").ok());
  // Wrong magic, full length.
  std::string bytes = DeltaWal::SerializeHeader(1);
  std::string bad = bytes;
  bad[0] = 'X';
  EXPECT_FALSE(DeltaWal::ScanBytes(bad).ok());
  // Flipped bit in the stamped fingerprint: header checksum catches it.
  bad = bytes;
  bad[9] ^= 0x40;
  auto scan = DeltaWal::ScanBytes(bad);
  ASSERT_FALSE(scan.ok());
  EXPECT_EQ(scan.status().code(), StatusCode::kInvalidArgument);
}

// Cutting the file at *every* byte position must yield exactly the records
// whose bytes fully survive — the longest valid prefix — and report the rest
// as a torn tail. This is the property `kill -9` mid-write depends on.
TEST(WalFormatTest, TornTailAtEveryByteYieldsLongestValidPrefix) {
  std::string bytes = DeltaWal::SerializeHeader(7);
  std::vector<size_t> record_ends;
  bytes += DeltaWal::SerializeRecord(1, 11, "+ P(a).\n");
  record_ends.push_back(bytes.size());
  bytes += DeltaWal::SerializeRecord(2, 22, "- Q(b, c).\n");
  record_ends.push_back(bytes.size());
  bytes += DeltaWal::SerializeRecord(3, 33, "+ R(f(a)).\n");
  record_ends.push_back(bytes.size());

  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    std::string prefix = bytes.substr(0, cut);
    auto scan = DeltaWal::ScanBytes(prefix);
    if (cut < DeltaWal::kHeaderSize) {
      EXPECT_FALSE(scan.ok()) << cut;
      continue;
    }
    ASSERT_TRUE(scan.ok()) << "cut at " << cut;
    size_t expect = 0;
    while (expect < record_ends.size() && record_ends[expect] <= cut) {
      ++expect;
    }
    EXPECT_EQ(scan->records.size(), expect) << "cut at " << cut;
    size_t valid_end = expect == 0 ? DeltaWal::kHeaderSize
                                   : record_ends[expect - 1];
    EXPECT_EQ(scan->valid_bytes, valid_end) << "cut at " << cut;
    EXPECT_EQ(scan->truncated_bytes, cut - valid_end) << "cut at " << cut;
  }
}

TEST(WalFormatTest, CorruptMiddleRecordTruncatesFromThere) {
  std::string bytes = DeltaWal::SerializeHeader(7);
  bytes += DeltaWal::SerializeRecord(1, 11, "+ P(a).\n");
  size_t first_end = bytes.size();
  bytes += DeltaWal::SerializeRecord(2, 22, "- Q(b).\n");
  bytes += DeltaWal::SerializeRecord(3, 33, "+ R(c).\n");
  bytes[first_end + DeltaWal::kRecordHeaderSize] ^= 0x01;  // record 2 payload
  auto scan = DeltaWal::ScanBytes(bytes);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->valid_bytes, first_end);
  EXPECT_EQ(scan->truncated_bytes, bytes.size() - first_end);
}

TEST(WalFormatTest, SequenceGapTruncates) {
  std::string bytes = DeltaWal::SerializeHeader(7);
  bytes += DeltaWal::SerializeRecord(1, 11, "+ P(a).\n");
  size_t first_end = bytes.size();
  bytes += DeltaWal::SerializeRecord(3, 33, "+ R(c).\n");  // gap: no seq 2
  auto scan = DeltaWal::ScanBytes(bytes);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->valid_bytes, first_end);
}

// A corrupt u32 length prefix must never be trusted: neither a huge value
// (would over-allocate — ASan guards the attempt) nor one that merely
// overruns the remaining file may produce a record or an error; both are
// torn tails.
TEST(WalFormatTest, LengthPrefixBeyondFileSizeIsTornTailNotAllocation) {
  std::string base = DeltaWal::SerializeHeader(7);
  base += DeltaWal::SerializeRecord(1, 11, "+ P(a).\n");
  size_t valid_end = base.size();

  for (uint32_t evil_len :
       {0xffffffffu, 0x7fffffffu, DeltaWal::kMaxPayloadBytes + 1, 1000u}) {
    std::string bytes = base;
    for (int i = 0; i < 4; ++i) {
      bytes.push_back(static_cast<char>(evil_len >> (8 * i)));
    }
    // A plausible rest-of-record-header, but far fewer payload bytes than
    // the length prefix claims.
    bytes.append(24, '\x5a');
    auto scan = DeltaWal::ScanBytes(bytes);
    ASSERT_TRUE(scan.ok()) << evil_len;
    EXPECT_EQ(scan->records.size(), 1u) << evil_len;
    EXPECT_EQ(scan->valid_bytes, valid_end) << evil_len;
    EXPECT_EQ(scan->truncated_bytes, bytes.size() - valid_end) << evil_len;
  }
}

// ---------------------------------------------------------------------------
// Append / sync / poisoning
// ---------------------------------------------------------------------------

TEST(WalAppendTest, CreateAppendScanRoundTrip) {
  std::string path = TestPath("log");
  CleanWalFiles(path);
  WalOptions opts;
  opts.fsync = FsyncMode::kAlways;
  auto wal = DeltaWal::Create(path, 42, opts);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_TRUE((*wal)->Append(100, "+ P(a).\n").ok());
  ASSERT_TRUE((*wal)->Append(200, "- P(a).\n").ok());
  EXPECT_EQ((*wal)->next_seq(), 3u);
  ASSERT_TRUE((*wal)->Close().ok());

  auto scan = DeltaWal::Scan(path);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(scan->base_fingerprint, 42u);
  ASSERT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->records[0].fingerprint, 100u);
  EXPECT_EQ(scan->records[1].payload, "- P(a).\n");
  CleanWalFiles(path);
}

TEST(WalAppendTest, ScanMissingFileIsNotFound) {
  auto scan = DeltaWal::Scan(TestPath("nonexistent"));
  ASSERT_FALSE(scan.ok());
  EXPECT_EQ(scan.status().code(), StatusCode::kNotFound);
}

TEST(WalAppendTest, OpenForAppendTruncatesTornTailAndContinuesChain) {
  std::string path = TestPath("log");
  CleanWalFiles(path);
  auto wal = DeltaWal::Create(path, 42);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(100, "+ P(a).\n").ok());
  ASSERT_TRUE((*wal)->Close().ok());

  // Simulate a torn append: half a record of garbage at the tail.
  {
    FILE* f = fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    fwrite("\x13\x00\x00\x00garbage", 1, 11, f);
    fclose(f);
  }
  auto scan = DeltaWal::Scan(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 1u);
  ASSERT_GT(scan->truncated_bytes, 0u);

  auto reopened = DeltaWal::OpenForAppend(path, *scan);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->next_seq(), 2u);
  ASSERT_TRUE((*reopened)->Append(200, "- P(a).\n").ok());
  ASSERT_TRUE((*reopened)->Close().ok());

  auto rescan = DeltaWal::Scan(path);
  ASSERT_TRUE(rescan.ok());
  ASSERT_EQ(rescan->records.size(), 2u);
  EXPECT_EQ(rescan->records[1].seq, 2u);
  EXPECT_EQ(rescan->truncated_bytes, 0u);
  CleanWalFiles(path);
}

TEST(WalAppendTest, FailedFsyncPoisonsTheLog) {
  std::string path = TestPath("log");
  CleanWalFiles(path);
  auto wal = DeltaWal::Create(path, 42);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(failpoint::Configure("wal.fsync=error").ok());
  Status st = (*wal)->Append(100, "+ P(a).\n");
  failpoint::Clear();
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE((*wal)->broken());
  Status again = (*wal)->Append(200, "+ P(b).\n");
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);
  CleanWalFiles(path);
}

TEST(WalAppendTest, BatchModeSyncsEveryN) {
  std::string path = TestPath("log");
  CleanWalFiles(path);
  WalOptions opts;
  opts.fsync = FsyncMode::kBatch;
  opts.batch_every = 2;
  auto wal = DeltaWal::Create(path, 42, opts);
  ASSERT_TRUE(wal.ok());
  // The wal.fsync site only evaluates when a sync actually runs: appends
  // 1 and 3 must not sync, appends 2 and 4 must.
  ASSERT_TRUE(failpoint::Configure("wal.fsync=off").ok());
  uint64_t before = failpoint::HitCount("wal.fsync");
  ASSERT_TRUE((*wal)->Append(1, "+ P(a).\n").ok());
  EXPECT_EQ(failpoint::HitCount("wal.fsync"), before);
  ASSERT_TRUE((*wal)->Append(2, "+ P(b).\n").ok());
  EXPECT_EQ(failpoint::HitCount("wal.fsync"), before + 1);
  ASSERT_TRUE((*wal)->Append(3, "+ P(c).\n").ok());
  EXPECT_EQ(failpoint::HitCount("wal.fsync"), before + 1);
  ASSERT_TRUE((*wal)->Append(4, "+ P(d).\n").ok());
  EXPECT_EQ(failpoint::HitCount("wal.fsync"), before + 2);
  ASSERT_TRUE((*wal)->Close().ok());
  failpoint::Clear();
  CleanWalFiles(path);
}

TEST(WalAppendTest, ParseFsyncModeNames) {
  EXPECT_TRUE(ParseFsyncMode("always").ok());
  EXPECT_TRUE(ParseFsyncMode("batch").ok());
  EXPECT_TRUE(ParseFsyncMode("off").ok());
  EXPECT_FALSE(ParseFsyncMode("sometimes").ok());
  EXPECT_STREQ(FsyncModeName(FsyncMode::kBatch), "batch");
}

// ---------------------------------------------------------------------------
// Checkpoint container
// ---------------------------------------------------------------------------

SymbolTable SampleSymbols() {
  SymbolTable symbols;
  EXPECT_TRUE(symbols.InternPredicate("P", 2, true).ok());
  EXPECT_TRUE(symbols.InternPredicate("Q", 1, false).ok());
  EXPECT_TRUE(symbols.InternFunction("f", 1).ok());
  symbols.InternConstant("b");  // deliberately not alphabetical: order is
  symbols.InternConstant("a");  // interning history, and must round-trip
  symbols.InternVariable("t");
  return symbols;
}

TEST(CheckpointFormatTest, RoundTrip) {
  std::string bytes =
      SerializeCheckpoint(77, SampleSymbols(), "P(a).\n", "SNAPBYTES");
  auto data = ParseCheckpoint(bytes);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(data->fingerprint, 77u);
  EXPECT_EQ(data->program_text, "P(a).\n");
  EXPECT_EQ(data->snapshot_bytes, "SNAPBYTES");
  ASSERT_EQ(data->symbols.num_predicates(), 2u);
  EXPECT_EQ(data->symbols.predicate(0).name, "P");
  EXPECT_EQ(data->symbols.predicate(0).arity, 2);
  EXPECT_TRUE(data->symbols.predicate(0).functional);
  EXPECT_FALSE(data->symbols.predicate(1).functional);
  ASSERT_EQ(data->symbols.num_functions(), 1u);
  EXPECT_EQ(data->symbols.function(0).name, "f");
  ASSERT_EQ(data->symbols.num_constants(), 2u);
  EXPECT_EQ(data->symbols.constant_name(0), "b");  // interning order kept
  EXPECT_EQ(data->symbols.constant_name(1), "a");
  ASSERT_EQ(data->symbols.num_variables(), 1u);
}

TEST(CheckpointFormatTest, EveryFlippedBitIsRejected) {
  std::string bytes = SerializeCheckpoint(77, SampleSymbols(), "P(a).\n",
                                          "SNAP");
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string bad = bytes;
    bad[i] ^= 0x10;
    auto data = ParseCheckpoint(bad);
    EXPECT_FALSE(data.ok()) << "flip at byte " << i;
  }
}

// Hostile length and count fields must fail before any allocation sized by
// them. Overwriting a field breaks the checksum too, but the point stands
// either way: rejection must come with no attempt to reserve 4 GiB (ASan
// would flag the allocation if the field were trusted first).
TEST(CheckpointFormatTest, LengthFieldsBeyondFileAreInvalidArgument) {
  // Empty symbol table: the four count fields are zeros directly after the
  // fingerprint, and the program length follows them.
  std::string good = SerializeCheckpoint(77, SymbolTable(), "P(a).\n", "SNAP");
  const size_t pred_count_off = 4 + 4 + 8 + 8;   // magic|version|checksum|fp
  const size_t prog_len_off = pred_count_off + 16;  // four zero counts
  for (size_t off : {pred_count_off, prog_len_off}) {
    for (uint32_t evil : {0xffffffffu, 0x7fffffffu,
                          static_cast<uint32_t>(good.size())}) {
      std::string bad = good;
      for (int i = 0; i < 4; ++i) {
        bad[off + i] = static_cast<char>(evil >> (8 * i));
      }
      auto data = ParseCheckpoint(bad);
      ASSERT_FALSE(data.ok()) << off << "/" << evil;
      EXPECT_EQ(data.status().code(), StatusCode::kInvalidArgument)
          << off << "/" << evil;
    }
  }
}

TEST(CheckpointFormatTest, TruncatedFileIsInvalidArgument) {
  std::string bytes = SerializeCheckpoint(77, SampleSymbols(), "P(a).\n",
                                          "SNAP");
  for (size_t cut : {size_t{0}, size_t{3}, size_t{15}, size_t{20},
                     size_t{30}, size_t{45}, bytes.size() - 1}) {
    EXPECT_FALSE(ParseCheckpoint(bytes.substr(0, cut)).ok()) << cut;
  }
}

// ---------------------------------------------------------------------------
// OpenDurable end to end
// ---------------------------------------------------------------------------

struct EngineState {
  std::string spec_bytes;
  uint64_t fingerprint = 0;
};

EngineState StateOf(FunctionalDatabase* db) {
  EngineState s;
  auto spec = db->BuildGraphSpec();
  EXPECT_TRUE(spec.ok());
  if (spec.ok()) s.spec_bytes = Snapshot::Serialize(*spec);
  s.fingerprint = db->Fingerprint();
  return s;
}

TEST(OpenDurableTest, FreshOpenCreatesLogAndReopenIsByteIdentical) {
  std::string path = TestPath("wal");
  CleanWalFiles(path);
  RecoveryStats rec;
  auto db = FunctionalDatabase::OpenDurable(kSource, path, {}, {}, &rec);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE(rec.created);
  EXPECT_TRUE((*db)->durable());

  ASSERT_TRUE((*db)->LogAndApplyDeltas("+ Meets(0, Jan).\n").ok());
  ASSERT_TRUE((*db)->LogAndApplyDeltas("- Meets(0, Jan).\n+ Next(Jan, Jan).\n")
                  .ok());
  EngineState before = StateOf(db->get());
  db->reset();  // clean shutdown: destructor syncs + closes

  // Reference: the same batches applied to a never-persisted engine.
  auto ref = FunctionalDatabase::FromSource(kSource);
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE((*ref)->ApplyDeltaText("+ Meets(0, Jan).\n").ok());
  ASSERT_TRUE(
      (*ref)->ApplyDeltaText("- Meets(0, Jan).\n+ Next(Jan, Jan).\n").ok());
  EngineState ref_state = StateOf(ref->get());

  RecoveryStats rec2;
  auto reopened = FunctionalDatabase::OpenDurable(kSource, path, {}, {}, &rec2);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_FALSE(rec2.created);
  EXPECT_EQ(rec2.replayed_batches, 2u);
  EngineState after = StateOf(reopened->get());
  EXPECT_EQ(after.spec_bytes, before.spec_bytes);
  EXPECT_EQ(after.spec_bytes, ref_state.spec_bytes);
  EXPECT_EQ(after.fingerprint, ref_state.fingerprint);
  CleanWalFiles(path);
}

TEST(OpenDurableTest, NoopBatchIsLoggedForSymbolStability) {
  std::string path = TestPath("wal");
  CleanWalFiles(path);
  auto db = FunctionalDatabase::OpenDurable(kSource, path);
  ASSERT_TRUE(db.ok());
  // Deleting an absent fact is a fact-level noop, but parsing it interned
  // the new constant `Ghost` into the symbol table — engine state a replay
  // must reproduce. So even noop batches are logged.
  auto stats = (*db)->LogAndApplyDeltas("- Meets(0, Ghost).\n");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->noops, 1u);
  EXPECT_EQ((*db)->wal()->next_seq(), 2u);

  // An effective batch after the phantom gives `Ghost` a smaller id than
  // `Jan`... both engines must agree after recovery, byte for byte.
  ASSERT_TRUE((*db)->LogAndApplyDeltas("+ Meets(0, Ghost).\n").ok());
  EngineState before = StateOf(db->get());
  db->reset();

  auto reopened = FunctionalDatabase::OpenDurable(kSource, path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(StateOf(reopened->get()).spec_bytes, before.spec_bytes);
  EXPECT_EQ(StateOf(reopened->get()).fingerprint, before.fingerprint);
  CleanWalFiles(path);
}

// The regression that motivated seeded re-parse: deleting and re-inserting
// a fact moves it to the tail of the program, so the rendered checkpoint
// text mentions constants in a different order than the engine interned
// them. Recovery through the checkpoint must still be byte-identical to the
// engine that never went through disk at all.
TEST(OpenDurableTest, CheckpointAfterDeleteReinsertIsByteIdentical) {
  std::string path = TestPath("wal");
  CleanWalFiles(path);
  const char* source = "Meets(0, Tony).\nNext(Tony, Jan).\n";
  const char* batches[] = {
      "- Meets(0, Tony).\n+ Meets(0, Tony).\n",  // Tony moves to the tail
      "+ Next(Jan, Tony).\n",
  };

  auto ref = FunctionalDatabase::FromSource(source);
  ASSERT_TRUE(ref.ok());
  for (const char* b : batches) {
    ASSERT_TRUE((*ref)->ApplyDeltaText(b).ok());
  }
  EngineState want = StateOf(ref->get());

  {
    auto db = FunctionalDatabase::OpenDurable(source, path);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE((*db)->LogAndApplyDeltas(batches[0]).ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());  // anchor AFTER the reorder
    ASSERT_TRUE((*db)->LogAndApplyDeltas(batches[1]).ok());
  }
  RecoveryStats rec;
  auto db = FunctionalDatabase::OpenDurable(source, path, {}, {}, &rec);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE(rec.checkpoint_loaded);  // the checkpoint must validate
  EXPECT_FALSE(rec.used_fallback);
  EngineState got = StateOf(db->get());
  EXPECT_EQ(got.spec_bytes, want.spec_bytes);
  EXPECT_EQ(got.fingerprint, want.fingerprint);
  CleanWalFiles(path);
}

TEST(OpenDurableTest, CheckpointRotatesAndRecoversFromEitherGeneration) {
  std::string path = TestPath("wal");
  CleanWalFiles(path);
  DurableOptions dopts;
  auto db = FunctionalDatabase::OpenDurable(kSource, path, dopts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE((*db)->LogAndApplyDeltas("+ Meets(0, Jan).\n").ok());
  ASSERT_TRUE((*db)->Checkpoint().ok());
  ASSERT_TRUE((*db)->LogAndApplyDeltas("+ Next(Jan, Jan).\n").ok());
  EngineState before = StateOf(db->get());
  db->reset();

  // The rotation left both generations on disk.
  EXPECT_TRUE(DeltaWal::ReadFile(path + ".ckpt").ok());
  EXPECT_TRUE(DeltaWal::ReadFile(path + ".prev").ok());

  {
    RecoveryStats rec;
    auto reopened =
        FunctionalDatabase::OpenDurable(kSource, path, dopts, {}, &rec);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_TRUE(rec.checkpoint_loaded);
    EXPECT_FALSE(rec.used_fallback);
    EXPECT_EQ(rec.replayed_batches, 1u);  // only the post-checkpoint batch
    EXPECT_EQ(StateOf(reopened->get()).spec_bytes, before.spec_bytes);
    reopened->reset();
  }

  // Tear the current checkpoint: recovery must fall back one generation
  // (previous log replays from the program base) and still land on the
  // exact same bytes — then rebuild the current generation.
  {
    auto ckpt = DeltaWal::ReadFile(path + ".ckpt");
    ASSERT_TRUE(ckpt.ok());
    std::string torn = ckpt->substr(0, ckpt->size() / 2);
    ASSERT_TRUE(
        DeltaWal::WriteFileDurable(path + ".ckpt", torn, false).ok());
    // The current log anchors to the torn checkpoint, so it cannot replay;
    // the fallback generation carries the pre-checkpoint state, and the
    // post-checkpoint batch is lost with its checkpoint — recovery must
    // still converge on the newest state it can anchor.
    RecoveryStats rec;
    auto reopened =
        FunctionalDatabase::OpenDurable(kSource, path, dopts, {}, &rec);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_TRUE(rec.used_fallback);

    auto ref = FunctionalDatabase::FromSource(kSource);
    ASSERT_TRUE(ref.ok());
    ASSERT_TRUE((*ref)->ApplyDeltaText("+ Meets(0, Jan).\n").ok());
    EXPECT_EQ(StateOf(reopened->get()).spec_bytes,
              StateOf(ref->get()).spec_bytes);

    // Fallback recovery rebuilt the current generation: a fresh reopen must
    // use it directly (no fallback) and see the same state.
    reopened->reset();
    RecoveryStats rec2;
    auto again =
        FunctionalDatabase::OpenDurable(kSource, path, dopts, {}, &rec2);
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    EXPECT_FALSE(rec2.used_fallback);
    EXPECT_EQ(StateOf(again->get()).spec_bytes,
              StateOf(ref->get()).spec_bytes);
  }
  CleanWalFiles(path);
}

TEST(OpenDurableTest, DivergedProgramIsRefusedNotClobbered) {
  std::string path = TestPath("wal");
  CleanWalFiles(path);
  auto db = FunctionalDatabase::OpenDurable(kSource, path);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->LogAndApplyDeltas("+ Meets(0, Jan).\n").ok());
  db->reset();

  auto other = FunctionalDatabase::OpenDurable("P(a).\n", path);
  ASSERT_FALSE(other.ok());
  EXPECT_EQ(other.status().code(), StatusCode::kFailedPrecondition);
  // And the log is untouched: the original program still recovers.
  auto original = FunctionalDatabase::OpenDurable(kSource, path);
  EXPECT_TRUE(original.ok()) << original.status().ToString();
  CleanWalFiles(path);
}

TEST(OpenDurableTest, AutoCheckpointEveryN) {
  std::string path = TestPath("wal");
  CleanWalFiles(path);
  DurableOptions dopts;
  dopts.checkpoint_every = 2;
  auto db = FunctionalDatabase::OpenDurable(kSource, path, dopts);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->LogAndApplyDeltas("+ Meets(0, Jan).\n").ok());
  EXPECT_FALSE(DeltaWal::ReadFile(path + ".ckpt").ok());
  ASSERT_TRUE((*db)->LogAndApplyDeltas("+ Next(Jan, Jan).\n").ok());
  EXPECT_TRUE(DeltaWal::ReadFile(path + ".ckpt").ok());
  // The fresh post-rotation log starts a new chain.
  EXPECT_EQ((*db)->wal()->next_seq(), 1u);
  CleanWalFiles(path);
}

TEST(OpenDurableTest, DeltaValidationErrorLeavesEngineAndLogUntouched) {
  std::string path = TestPath("wal");
  CleanWalFiles(path);
  auto db = FunctionalDatabase::OpenDurable(kSource, path);
  ASSERT_TRUE(db.ok());
  EngineState before = StateOf(db->get());
  // Line 2 is garbage: the whole batch must be rejected with the engine
  // untouched (strong guarantee) and nothing appended to the log.
  auto stats = (*db)->LogAndApplyDeltas("+ Meets(0, Jan).\nnot a delta\n");
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(StateOf(db->get()).spec_bytes, before.spec_bytes);
  EXPECT_EQ((*db)->wal()->next_seq(), 1u);
  CleanWalFiles(path);
}

}  // namespace
}  // namespace relspec
