// Tests for the event tracer: Chrome trace-event JSON validity (every "B"
// matched by an "E", timestamps monotone per lane), ring-buffer overflow
// accounting, the disabled fast path, concurrent emission (run under tsan
// by run_checks.sh --tsan), pipeline byte-identity with tracing enabled,
// and the pluggable log sink.

#include "src/base/trace.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/logging.h"
#include "src/base/metrics.h"
#include "src/core/engine.h"
#include "src/core/spec_io.h"

namespace relspec {
namespace {

// Every test runs against the process-global tracer: start from an empty
// ring and leave tracing disabled for the next test.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EnableEventTrace(false);
    Tracer::Global().Reset();
  }
  void TearDown() override {
    EnableEventTrace(false);
    EnableMetrics(false);
    Tracer::Global().Reset();
  }
};

TEST_F(TraceTest, ExportIsValidChromeJson) {
  EnableEventTrace(true);
  {
    RELSPEC_TRACE_SPAN("test", "outer");
    {
      RELSPEC_TRACE_SPAN1("test", "inner", "round", 3);
      RELSPEC_TRACE_COUNTER("test.items", 42);
    }
    RELSPEC_TRACE_INSTANT("test", "marker");
  }
  EnableEventTrace(false);

  TraceSummary exported;
  std::string json = Tracer::Global().ExportChromeJson(&exported);
  EXPECT_EQ(exported.begins, 2u);
  EXPECT_EQ(exported.ends, 2u);
  EXPECT_EQ(exported.instants, 1u);
  EXPECT_EQ(exported.counters, 1u);
  EXPECT_EQ(exported.dropped, 0u);

  auto validated = ValidateChromeTraceJson(json);
  ASSERT_TRUE(validated.ok()) << validated.status().ToString();
  EXPECT_EQ(validated->begins, 2u);
  EXPECT_EQ(validated->ends, 2u);
  EXPECT_EQ(validated->instants, 1u);
  EXPECT_EQ(validated->counters, 1u);
  EXPECT_EQ(validated->lanes, 1u);
  // Span args survive export.
  EXPECT_NE(json.find("\"round\":3"), std::string::npos);
  EXPECT_NE(json.find("\"value\":42"), std::string::npos);
}

TEST_F(TraceTest, PhaseSpanFeedsTheEventTracer) {
  EnableEventTrace(true);
  { RELSPEC_PHASE("test.phase"); }
  EnableEventTrace(false);
  std::string json = Tracer::Global().ExportChromeJson();
  EXPECT_NE(json.find("\"name\":\"test.phase\""), std::string::npos);
  auto validated = ValidateChromeTraceJson(json);
  ASSERT_TRUE(validated.ok()) << validated.status().ToString();
  EXPECT_EQ(validated->begins, validated->ends);
}

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  ASSERT_FALSE(EventTraceEnabled());
  {
    RELSPEC_TRACE_SPAN("test", "ignored");
    RELSPEC_TRACE_INSTANT("test", "ignored");
    RELSPEC_TRACE_COUNTER("test.ignored", 1);
  }
  TraceSummary exported;
  std::string json = Tracer::Global().ExportChromeJson(&exported);
  EXPECT_EQ(exported.total(), 0u);
  auto validated = ValidateChromeTraceJson(json);
  ASSERT_TRUE(validated.ok()) << validated.status().ToString();
  EXPECT_EQ(validated->total(), 0u);
}

TEST_F(TraceTest, RingOverflowDropsOldestAndCounts) {
  Tracer::Global().SetBufferCapacity(16);
  EnableEventTrace(true);
  // A fresh thread gets a fresh (16-slot) ring; overflow it 4x over.
  std::thread t([] {
    for (int i = 0; i < 64; ++i) {
      RELSPEC_TRACE_INSTANT("test", "spam");
    }
  });
  t.join();
  EnableEventTrace(false);
  Tracer::Global().SetBufferCapacity(size_t{1} << 15);  // restore default

  EXPECT_GE(Tracer::Global().dropped(), 48u);
  EnableMetrics(true);
  TraceSummary exported;
  std::string json = Tracer::Global().ExportChromeJson(&exported);
  EXPECT_GE(exported.dropped, 48u);
  // The exporter mirrors the loss into the metrics gauge...
  EXPECT_EQ(MetricsRegistry::Global().GetGauge("trace.dropped")->value(),
            static_cast<int64_t>(exported.dropped));
  // ...and embeds it in the JSON, where the validator picks it up.
  auto validated = ValidateChromeTraceJson(json);
  ASSERT_TRUE(validated.ok()) << validated.status().ToString();
  EXPECT_EQ(validated->dropped, exported.dropped);
  EXPECT_EQ(validated->instants, 16u);  // the ring keeps the newest events
}

TEST_F(TraceTest, OverflowAcrossSpansStillBalances) {
  Tracer::Global().SetBufferCapacity(16);
  EnableEventTrace(true);
  std::thread t([] {
    // 40 B/E pairs: the surviving window starts mid-stream, so the exporter
    // must discard orphaned E events from the dropped prefix.
    for (int i = 0; i < 40; ++i) {
      RELSPEC_TRACE_SPAN("test", "wrapped");
    }
    // And one span left open at export time must be closed synthetically.
    Tracer::Global().Begin("test", "unclosed");
  });
  t.join();
  EnableEventTrace(false);
  Tracer::Global().SetBufferCapacity(size_t{1} << 15);

  std::string json = Tracer::Global().ExportChromeJson();
  auto validated = ValidateChromeTraceJson(json);
  ASSERT_TRUE(validated.ok()) << validated.status().ToString();
  EXPECT_EQ(validated->begins, validated->ends);
  EXPECT_GT(validated->begins, 0u);
}

TEST_F(TraceTest, ConcurrentEmissionFromEightThreads) {
  EnableEventTrace(true);
  std::atomic<bool> exporting{true};
  // One exporter races the writers to exercise the torn-slot re-check.
  std::thread exporter([&] {
    while (exporting.load(std::memory_order_relaxed)) {
      std::string json = Tracer::Global().ExportChromeJson();
      ASSERT_FALSE(json.empty());
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < 8; ++w) {
    writers.emplace_back([] {
      for (int i = 0; i < 2000; ++i) {
        RELSPEC_TRACE_SPAN("test", "work");
        RELSPEC_TRACE_COUNTER("test.progress", i);
        if (i % 100 == 0) RELSPEC_TRACE_INSTANT("test", "century");
      }
    });
  }
  for (std::thread& w : writers) w.join();
  exporting.store(false, std::memory_order_relaxed);
  exporter.join();
  EnableEventTrace(false);

  std::string json = Tracer::Global().ExportChromeJson();
  auto validated = ValidateChromeTraceJson(json);
  ASSERT_TRUE(validated.ok()) << validated.status().ToString();
  EXPECT_GE(validated->lanes, 8u);
  EXPECT_EQ(validated->begins, validated->ends);
}

TEST_F(TraceTest, TracingDoesNotPerturbSpecBytes) {
  const char* kSource =
      "Meets(0, Tony).\nNext(Tony, Jan).\nNext(Jan, Tony).\n"
      "Meets(t, x), Next(x, y) -> Meets(t+1, y).\n";
  auto plain = FunctionalDatabase::FromSource(kSource);
  ASSERT_TRUE(plain.ok());
  auto plain_spec = (*plain)->BuildGraphSpec();
  ASSERT_TRUE(plain_spec.ok());

  EnableEventTrace(true);
  auto traced = FunctionalDatabase::FromSource(kSource);
  ASSERT_TRUE(traced.ok());
  auto traced_spec = (*traced)->BuildGraphSpec();
  ASSERT_TRUE(traced_spec.ok());
  EnableEventTrace(false);

  EXPECT_EQ(SpecIo::Serialize(*plain_spec), SpecIo::Serialize(*traced_spec));
  auto validated =
      ValidateChromeTraceJson(Tracer::Global().ExportChromeJson());
  ASSERT_TRUE(validated.ok()) << validated.status().ToString();
  EXPECT_GT(validated->begins, 0u);  // the pipeline phases were recorded
}

TEST_F(TraceTest, ValidatorRejectsMalformedTraces) {
  EXPECT_FALSE(ValidateChromeTraceJson("not json").ok());
  EXPECT_FALSE(ValidateChromeTraceJson("{}").ok());  // no traceEvents
  // E without a matching B.
  EXPECT_FALSE(
      ValidateChromeTraceJson(
          R"({"traceEvents":[
              {"ph":"E","pid":1,"tid":0,"ts":1.0,"name":"x"}]})")
          .ok());
  // B never closed.
  EXPECT_FALSE(
      ValidateChromeTraceJson(
          R"({"traceEvents":[
              {"ph":"B","pid":1,"tid":0,"ts":1.0,"name":"x"}]})")
          .ok());
  // Mismatched nesting.
  EXPECT_FALSE(
      ValidateChromeTraceJson(
          R"({"traceEvents":[
              {"ph":"B","pid":1,"tid":0,"ts":1.0,"name":"x"},
              {"ph":"E","pid":1,"tid":0,"ts":2.0,"name":"y"}]})")
          .ok());
  // Timestamps going backwards on one lane.
  EXPECT_FALSE(
      ValidateChromeTraceJson(
          R"({"traceEvents":[
              {"ph":"i","pid":1,"tid":0,"ts":5.0,"name":"a"},
              {"ph":"i","pid":1,"tid":0,"ts":1.0,"name":"b"}]})")
          .ok());
  // Interleaved lanes are independent: out-of-order across lanes is fine.
  EXPECT_TRUE(
      ValidateChromeTraceJson(
          R"({"traceEvents":[
              {"ph":"i","pid":1,"tid":0,"ts":5.0,"name":"a"},
              {"ph":"i","pid":1,"tid":1,"ts":1.0,"name":"b"}]})")
          .ok());
}

TEST(LogSinkTest, SinkCapturesRecordsAndRestores) {
  struct Record {
    LogLevel level;
    std::string file;
    int line;
    std::string message;
  };
  std::vector<Record> captured;
  LogSink prev = SetLogSink([&](LogLevel level, const char* file, int line,
                                const std::string& message) {
    captured.push_back({level, file, line, message});
  });
  LogLevel prev_level = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);

  RELSPEC_LOG(kError) << "captured " << 42;
  RELSPEC_LOG(kDebug) << "filtered out";  // below the level: never emitted

  SetLogLevel(prev_level);
  SetLogSink(std::move(prev));
  RELSPEC_LOG(kInfo) << "after restore";  // must not reach `captured`

  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].level, LogLevel::kError);
  EXPECT_EQ(captured[0].message, "captured 42");
  EXPECT_NE(captured[0].file.find("trace_test.cc"), std::string::npos);
  EXPECT_GT(captured[0].line, 0);
}

}  // namespace
}  // namespace relspec
