// Tests for the metrics registry: instrument semantics, snapshot/JSON
// round-trips, the disabled fast path, and thread safety.

#include "src/base/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace relspec {
namespace {

// Every test runs against the process-global registry, so each starts from
// a clean slate and leaves metrics disabled for the next one.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().Reset();
    EnableMetrics(true);
  }
  void TearDown() override {
    EnableMetrics(false);
    EnableTracing(false);
    MetricsRegistry::Global().Reset();
  }
};

TEST_F(MetricsTest, CounterAddsAndResets) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.counter");
  EXPECT_EQ(c->value(), 0u);
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->value(), 42u);
  c->Reset();
  EXPECT_EQ(c->value(), 0u);
}

TEST_F(MetricsTest, RegistryReturnsStablePointers) {
  Counter* a = MetricsRegistry::Global().GetCounter("test.stable");
  a->Add(7);
  Counter* b = MetricsRegistry::Global().GetCounter("test.stable");
  EXPECT_EQ(a, b);
  // Reset zeroes values but keeps the registration and the pointer valid.
  MetricsRegistry::Global().Reset();
  EXPECT_EQ(a->value(), 0u);
  EXPECT_EQ(MetricsRegistry::Global().GetCounter("test.stable"), a);
}

TEST_F(MetricsTest, GaugeSetAddAndMax) {
  Gauge* g = MetricsRegistry::Global().GetGauge("test.gauge");
  g->Set(10);
  EXPECT_EQ(g->value(), 10);
  g->Add(-3);
  EXPECT_EQ(g->value(), 7);
  g->SetMax(5);
  EXPECT_EQ(g->value(), 7);  // not lowered
  g->SetMax(20);
  EXPECT_EQ(g->value(), 20);
}

TEST_F(MetricsTest, HistogramBucketsByBitWidth) {
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.hist");
  h->Record(0);    // bucket 0
  h->Record(1);    // bucket 1: [1, 2)
  h->Record(5);    // bucket 3: [4, 8)
  h->Record(7);    // bucket 3
  h->Record(100);  // bucket 7: [64, 128)
  EXPECT_EQ(h->count(), 5u);
  EXPECT_EQ(h->sum(), 113u);
  EXPECT_EQ(h->min(), 0u);
  EXPECT_EQ(h->max(), 100u);
  EXPECT_EQ(h->bucket(0), 1u);
  EXPECT_EQ(h->bucket(1), 1u);
  EXPECT_EQ(h->bucket(3), 2u);
  EXPECT_EQ(h->bucket(7), 1u);
  EXPECT_EQ(h->bucket(2), 0u);
}

TEST_F(MetricsTest, MacrosRecordWhenEnabled) {
  RELSPEC_COUNTER("test.macro_counter");
  RELSPEC_COUNTER_ADD("test.macro_counter", 2);
  RELSPEC_GAUGE_SET("test.macro_gauge", 9);
  RELSPEC_GAUGE_MAX("test.macro_gauge", 4);
  RELSPEC_HISTOGRAM("test.macro_hist", 16);
  { RELSPEC_SCOPED_TIMER("test.macro_timer"); }
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.counter("test.macro_counter"), 3u);
  EXPECT_EQ(snap.gauge("test.macro_gauge"), 9);
  ASSERT_NE(snap.histogram("test.macro_hist"), nullptr);
  EXPECT_EQ(snap.histogram("test.macro_hist")->count, 1u);
  ASSERT_NE(snap.histogram("test.macro_timer"), nullptr);
  EXPECT_EQ(snap.histogram("test.macro_timer")->count, 1u);
}

TEST_F(MetricsTest, PhaseSpanAccumulatesTime) {
  { RELSPEC_PHASE("test.phase"); }
  { RELSPEC_PHASE("test.phase"); }
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  const PhaseSnapshot* p = snap.phase("test.phase");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->count, 2u);
}

TEST_F(MetricsTest, DisabledModeRegistersNothing) {
  EnableMetrics(false);
  size_t before = MetricsRegistry::Global().NumInstruments();
  RELSPEC_COUNTER("test.disabled_counter");
  RELSPEC_GAUGE_SET("test.disabled_gauge", 1);
  RELSPEC_HISTOGRAM("test.disabled_hist", 1);
  { RELSPEC_SCOPED_TIMER("test.disabled_timer"); }
  { RELSPEC_PHASE("test.disabled_phase"); }
  EXPECT_EQ(MetricsRegistry::Global().NumInstruments(), before);
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.counter("test.disabled_counter"), 0u);
  EXPECT_EQ(snap.phase("test.disabled_phase"), nullptr);
}

TEST_F(MetricsTest, SnapshotAccessorsDefaultWhenAbsent) {
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.counter("no.such.counter"), 0u);
  EXPECT_EQ(snap.gauge("no.such.gauge"), 0);
  EXPECT_EQ(snap.phase("no.such.phase"), nullptr);
  EXPECT_EQ(snap.histogram("no.such.hist"), nullptr);
}

TEST_F(MetricsTest, JsonRoundTrip) {
  MetricsRegistry::Global().GetCounter("rt.counter")->Add(123);
  MetricsRegistry::Global().GetGauge("rt.gauge")->Set(-5);
  Histogram* h = MetricsRegistry::Global().GetHistogram("rt.hist");
  h->Record(0);
  h->Record(3);
  h->Record(1000);
  MetricsRegistry::Global().GetPhase("rt.phase")->Record(42000);

  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  std::string json = snap.ToJson();
  StatusOr<MetricsSnapshot> parsed = MetricsSnapshot::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  EXPECT_EQ(parsed->counters, snap.counters);
  EXPECT_EQ(parsed->gauges, snap.gauges);
  ASSERT_EQ(parsed->histograms.size(), snap.histograms.size());
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    EXPECT_EQ(parsed->histograms[i].name, snap.histograms[i].name);
    EXPECT_EQ(parsed->histograms[i].count, snap.histograms[i].count);
    EXPECT_EQ(parsed->histograms[i].sum, snap.histograms[i].sum);
    EXPECT_EQ(parsed->histograms[i].min, snap.histograms[i].min);
    EXPECT_EQ(parsed->histograms[i].max, snap.histograms[i].max);
    EXPECT_EQ(parsed->histograms[i].buckets, snap.histograms[i].buckets);
  }
  ASSERT_EQ(parsed->phases.size(), snap.phases.size());
  for (size_t i = 0; i < snap.phases.size(); ++i) {
    EXPECT_EQ(parsed->phases[i].name, snap.phases[i].name);
    EXPECT_EQ(parsed->phases[i].count, snap.phases[i].count);
    EXPECT_EQ(parsed->phases[i].total_ns, snap.phases[i].total_ns);
  }
  // Re-serializing the parse reproduces the exact string (stable schema).
  EXPECT_EQ(parsed->ToJson(), json);
  // The compact form parses back to the same snapshot too.
  StatusOr<MetricsSnapshot> compact =
      MetricsSnapshot::FromJson(snap.ToJson(/*pretty=*/false));
  ASSERT_TRUE(compact.ok()) << compact.status().ToString();
  EXPECT_EQ(compact->ToJson(), json);
}

TEST_F(MetricsTest, PrometheusTextExposition) {
  MetricsRegistry::Global().GetCounter("serve.errors")->Add(3);
  MetricsRegistry::Global().GetGauge("serve.qps_1m")->Set(-7);
  Histogram* h = MetricsRegistry::Global().GetHistogram("serve.request_ns");
  h->Record(1000);
  h->Record(1000);
  h->Record(1000);
  MetricsRegistry::Global().GetPhase("eval.fixpoint")->Record(42000);

  std::string text = MetricsRegistry::Global().Snapshot().ToPrometheusText();

  // Names are prefixed and sanitized (dots -> underscores), each family
  // carries a # TYPE line, and values are plain decimals.
  EXPECT_NE(text.find("# TYPE relspec_serve_errors counter\n"
                      "relspec_serve_errors 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE relspec_serve_qps_1m gauge\n"
                      "relspec_serve_qps_1m -7\n"),
            std::string::npos)
      << text;
  // Histograms render as summaries: one series per reported quantile plus
  // _sum/_count. Three equal samples put every quantile at that value.
  EXPECT_NE(text.find("# TYPE relspec_serve_request_ns summary\n"),
            std::string::npos)
      << text;
  for (const char* q : {"0.5", "0.9", "0.95", "0.99", "0.999"}) {
    std::string series = "relspec_serve_request_ns{quantile=\"";
    series += q;
    series += "\"} 1000\n";
    EXPECT_NE(text.find(series), std::string::npos) << text;
  }
  EXPECT_NE(text.find("relspec_serve_request_ns_sum 3000\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("relspec_serve_request_ns_count 3\n"),
            std::string::npos)
      << text;
  // Phases become a _count/_total_ns counter pair.
  EXPECT_NE(text.find("# TYPE relspec_eval_fixpoint_count counter\n"
                      "relspec_eval_fixpoint_count 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("relspec_eval_fixpoint_total_ns 42000\n"),
            std::string::npos)
      << text;
}

TEST_F(MetricsTest, JsonEscapesSpecialCharacters) {
  MetricsRegistry::Global().GetCounter("weird\"name\\with\ncontrol")->Add(1);
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  std::string json = snap.ToJson();
  StatusOr<MetricsSnapshot> parsed = MetricsSnapshot::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->counter("weird\"name\\with\ncontrol"), 1u);
}

TEST_F(MetricsTest, FromJsonRejectsGarbage) {
  EXPECT_FALSE(MetricsSnapshot::FromJson("").ok());
  EXPECT_FALSE(MetricsSnapshot::FromJson("not json").ok());
  EXPECT_FALSE(MetricsSnapshot::FromJson("{\"counters\": [1,2]}").ok());
  EXPECT_FALSE(MetricsSnapshot::FromJson("{\"counters\": {\"a\": 1}").ok());
}

TEST_F(MetricsTest, ConcurrentIncrementsAreLossless) {
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kIters; ++i) {
        RELSPEC_COUNTER("test.concurrent");
        RELSPEC_HISTOGRAM("test.concurrent_hist", i);
        RELSPEC_GAUGE_MAX("test.concurrent_peak", i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.counter("test.concurrent"),
            static_cast<uint64_t>(kThreads) * kIters);
  ASSERT_NE(snap.histogram("test.concurrent_hist"), nullptr);
  EXPECT_EQ(snap.histogram("test.concurrent_hist")->count,
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(snap.gauge("test.concurrent_peak"), kIters - 1);
}

// --- HistogramSnapshot::ValueAtQuantile -------------------------------------

HistogramSnapshot SnapshotOf(const char* name) {
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  const HistogramSnapshot* hs = snap.histogram(name);
  EXPECT_NE(hs, nullptr);
  return *hs;
}

TEST_F(MetricsTest, QuantileOfEmptyHistogramIsZero) {
  MetricsRegistry::Global().GetHistogram("test.q_empty");
  HistogramSnapshot hs = SnapshotOf("test.q_empty");
  EXPECT_EQ(hs.ValueAtQuantile(0.0), 0u);
  EXPECT_EQ(hs.ValueAtQuantile(0.5), 0u);
  EXPECT_EQ(hs.ValueAtQuantile(1.0), 0u);
}

TEST_F(MetricsTest, QuantileOfSingleSampleIsExact) {
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.q_single");
  h->Record(12345);
  (void)h;
  HistogramSnapshot hs = SnapshotOf("test.q_single");
  // The min/max clamp makes every quantile of a one-sample histogram exact,
  // despite the log-bucket interpolation.
  for (double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(hs.ValueAtQuantile(q), 12345u) << "q=" << q;
  }
}

TEST_F(MetricsTest, QuantileHandlesOverflowBucket) {
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.q_overflow");
  h->Record(1);
  h->Record(UINT64_MAX);  // lands in the top bucket [2^63, 2^64)
  HistogramSnapshot hs = SnapshotOf("test.q_overflow");
  EXPECT_EQ(hs.ValueAtQuantile(0.25), 1u);
  // The top-bucket value is clamped to max, never overflowed past uint64.
  EXPECT_EQ(hs.ValueAtQuantile(1.0), UINT64_MAX);
  uint64_t p99 = hs.ValueAtQuantile(0.99);
  EXPECT_GE(p99, 1u);
  EXPECT_LE(p99, UINT64_MAX);
}

TEST_F(MetricsTest, QuantilesAreMonotoneAndBounded) {
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.q_mono");
  // A deliberately lumpy distribution across many buckets, zeros included.
  uint64_t x = 9876543210u;
  for (int i = 0; i < 1000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    h->Record(x >> (i % 60));
  }
  h->Record(0);
  HistogramSnapshot hs = SnapshotOf("test.q_mono");
  uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    uint64_t v = hs.ValueAtQuantile(q);
    EXPECT_GE(v, prev) << "quantiles must be monotone at q=" << q;
    EXPECT_GE(v, hs.min);
    EXPECT_LE(v, hs.max);
    prev = v;
  }
  EXPECT_EQ(hs.ValueAtQuantile(1.0), hs.max);
}

TEST_F(MetricsTest, QuantileInterpolatesWithinBucket) {
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.q_interp");
  // 100 samples spread over bucket 7 ([64, 128)): interpolated quantiles
  // must stay inside the bucket and span it roughly linearly.
  for (uint64_t v = 0; v < 100; ++v) h->Record(64 + (v * 64) / 100);
  HistogramSnapshot hs = SnapshotOf("test.q_interp");
  uint64_t p10 = hs.ValueAtQuantile(0.10);
  uint64_t p90 = hs.ValueAtQuantile(0.90);
  EXPECT_GE(p10, 64u);
  EXPECT_LE(p90, 127u);
  EXPECT_LT(p10, p90);
}

TEST_F(MetricsTest, JsonCarriesQuantilesAndRoundTripsThem) {
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.q_json");
  for (uint64_t v = 1; v <= 500; ++v) h->Record(v);
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"quantiles\""), std::string::npos);
  EXPECT_NE(json.find("\"p999\""), std::string::npos);
  // Quantiles are derived from the buckets, so a parse/re-emit cycle must
  // reproduce them byte-identically.
  StatusOr<MetricsSnapshot> parsed = MetricsSnapshot::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->ToJson(), json);
  const HistogramSnapshot* hs = parsed->histogram("test.q_json");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->ValueAtQuantile(0.5),
            snap.histogram("test.q_json")->ValueAtQuantile(0.5));
  (void)h;
}

}  // namespace
}  // namespace relspec
