// Unit tests for the program transformations: normalization (appendix) and
// the mixed-to-pure rewriting (Section 2.4), plus the analysis pass.

#include <gtest/gtest.h>

#include "src/ast/printer.h"
#include "src/ast/validate.h"
#include "src/core/analysis.h"
#include "src/core/engine.h"
#include "src/core/mixed_to_pure.h"
#include "src/core/normalize.h"
#include "src/parser/parser.h"

namespace relspec {
namespace {

// ---------- analysis ----------

TEST(Analyze, ReportsParameters) {
  auto p = ParseProgram(R"(
    Meets(0, Tony).
    Next(Tony, Jan).
    Meets(t, x), Next(x, y) -> Meets(t+1, y).
  )");
  ASSERT_TRUE(p.ok());
  ProgramInfo info = Analyze(*p);
  EXPECT_EQ(info.num_predicates, 2);
  EXPECT_EQ(info.max_arity, 2);
  EXPECT_EQ(info.num_constants, 2);
  EXPECT_EQ(info.max_ground_depth, 0);
  EXPECT_EQ(info.num_pure_functions, 1);
  EXPECT_TRUE(info.is_normal);
  EXPECT_TRUE(info.is_pure);
  EXPECT_TRUE(info.domain_independent);
  EXPECT_FALSE(info.ToString().empty());
}

TEST(Analyze, DetectsNonNormalAndMixed) {
  auto p = ParseProgram(R"(
    Even(0).
    Even(t) -> Even(t+2).
  )");
  ASSERT_TRUE(p.ok());
  ProgramInfo info = Analyze(*p);
  EXPECT_FALSE(info.is_normal);  // depth-2 head

  auto q = ParseProgram(R"(
    At(0, p0).
    Connected(p0, p1).
    At(s, x), Connected(x, y) -> At(move(s, x, y), y).
  )");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(Analyze(*q).is_pure);
  EXPECT_EQ(Analyze(*q).num_mixed_functions, 1);
}

// ---------- normalization ----------

TEST(Normalize, IdempotentOnNormalPrograms) {
  auto p = ParseProgram(R"(
    Meets(0, Tony).
    Meets(t, x) -> Meets(t+1, x).
  )");
  ASSERT_TRUE(p.ok());
  std::string before = ToString(*p);
  auto stats = NormalizeProgram(&*p);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rules_in, stats->rules_out);
  EXPECT_EQ(stats->aux_predicates, 0);
  EXPECT_EQ(ToString(*p), before);
}

TEST(Normalize, FlattensDeepHead) {
  auto p = ParseProgram("Even(0).\nEven(t) -> Even(t+2).");
  ASSERT_TRUE(p.ok());
  ASSERT_FALSE(IsNormalProgram(*p));
  auto stats = NormalizeProgram(&*p);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(IsNormalProgram(*p));
  EXPECT_GT(stats->aux_predicates, 0);
  EXPECT_TRUE(ValidateProgram(*p).ok());
}

TEST(Normalize, FlattensDeepBody) {
  auto p = ParseProgram("P(0).\nP(t+3) -> Q(t).\nQ(0) -> R(a).");
  ASSERT_TRUE(p.ok());
  auto stats = NormalizeProgram(&*p);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(IsNormalProgram(*p));
}

TEST(Normalize, SplitsMultipleFunctionalVariables) {
  // Two functional variables: s stays (head), t is projected away.
  auto p = ParseProgram(R"(
    P(0, a).
    Q(0, a).
    P(s, x), Q(t, x) -> P(s+1, x).
  )");
  ASSERT_TRUE(p.ok());
  auto stats = NormalizeProgram(&*p);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(IsNormalProgram(*p));
  EXPECT_GT(stats->aux_predicates, 0);
  EXPECT_TRUE(ValidateProgram(*p).ok());
}

TEST(Normalize, SemanticsPreservedOnOriginalPredicates) {
  // Compare engine results with hand-normalized equivalent.
  auto deep = FunctionalDatabase::FromSource("Even(0).\nEven(t) -> Even(t+2).");
  ASSERT_TRUE(deep.ok()) << deep.status().ToString();
  for (int n = 0; n <= 10; ++n) {
    auto h = (*deep)->HoldsFactText("Even(" + std::to_string(n) + ")");
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(*h, n % 2 == 0) << n;
  }
}

TEST(Normalize, MultiVariableSemantics) {
  // The projected variable acts as an existential test: P grows only while
  // some Q exists.
  auto db = FunctionalDatabase::FromSource(R"(
    P(0, a).
    Q(3, b).
    P(s, x), Q(t, y) -> P(s+1, x).
  )");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE(*(*db)->HoldsFactText("P(5, a)"));
  EXPECT_FALSE(*(*db)->HoldsFactText("P(5, b)"));
  EXPECT_TRUE(*(*db)->HoldsFactText("Q(3, b)"));
  EXPECT_FALSE(*(*db)->HoldsFactText("Q(4, b)"));
}

TEST(Normalize, CrossGroupJoinPreserved) {
  // x is shared between the two projected groups only; the join must
  // survive projection. With A(s,a) and B(t,b) there is no common x, so G
  // must stay empty; adding B(3,a) enables it.
  auto db1 = FunctionalDatabase::FromSource(R"(
    A(0, a).
    B(3, b).
    A(s, x), B(t, x) -> G(x).
  )");
  ASSERT_TRUE(db1.ok()) << db1.status().ToString();
  EXPECT_FALSE(*(*db1)->HoldsFactText("G(a)"));
  auto db2 = FunctionalDatabase::FromSource(R"(
    A(0, a).
    B(3, b).
    B(3, a).
    A(s, x), B(t, x) -> G(x).
  )");
  ASSERT_TRUE(db2.ok()) << db2.status().ToString();
  EXPECT_TRUE(*(*db2)->HoldsFactText("G(a)"));
  EXPECT_FALSE(*(*db2)->HoldsFactText("G(b)"));
}

TEST(Normalize, AppendixExampleShape) {
  // The appendix rule: P(s), W(x) -> P1(g(f(s), x)) — deep mixed head.
  auto p = ParseProgram(R"(
    P(0).
    W(a).
    P(s), W(x) -> P1(g(f(s), x)).
  )");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  auto stats = NormalizeProgram(&*p);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(IsNormalProgram(*p));
  EXPECT_TRUE(ValidateProgram(*p).ok());
}

// ---------- mixed to pure ----------

TEST(MixedToPure, NoopOnPurePrograms) {
  auto p = ParseProgram("Even(0).\nEven(t) -> Even(t+1).");
  ASSERT_TRUE(p.ok());
  auto stats = MixedToPure(&*p);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rules_in, stats->rules_out);
  EXPECT_EQ(stats->new_symbols, 0);
}

TEST(MixedToPure, InstantiatesOverActiveDomain) {
  auto p = ParseProgram(R"(
    P(a).
    P(b).
    P(y), Member(s, x) -> Member(ext(s, y), y).
    Member(ext(0,a), a).
  )");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  int rules_before = static_cast<int>(p->rules.size());
  auto stats = MixedToPure(&*p);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // One rule with one mixed-arg variable over a 2-constant domain -> 2 rules.
  EXPECT_EQ(stats->rules_out, rules_before * 2);
  EXPECT_EQ(stats->new_symbols, 2);  // ext{a}, ext{b}
  EXPECT_FALSE(HasMixedOccurrences(*p));
  EXPECT_TRUE(p->symbols.FindFunction("ext{a}").ok());
  EXPECT_TRUE(p->symbols.FindFunction("ext{b}").ok());
}

TEST(MixedToPure, SubstitutesConsistentlyAcrossRule) {
  // The variable y occurs both in the mixed argument and elsewhere; the
  // instantiation must substitute it everywhere (Section 2.4).
  auto p = ParseProgram(R"(
    P(a).
    P(y) -> Member(ext(0, y), y).
  )");
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(MixedToPure(&*p).ok());
  // The instantiated rule body must be P(a), head Member(ext{a}(0), a).
  ASSERT_EQ(p->rules.size(), 1u);
  const Rule& r = p->rules[0];
  EXPECT_TRUE(r.head.args[0].IsConstant());
  EXPECT_TRUE(r.body[0].args[0].IsConstant());
}

TEST(MixedToPure, PurifyGroundTermHelper) {
  auto p = ParseProgram(R"(
    At(0, p0).
    Connected(p0, p1).
    At(s, x), Connected(x, y) -> At(move(s, x, y), y).
  )");
  ASSERT_TRUE(p.ok());
  FuncId mv = *p->symbols.FindFunction("move");
  ConstId p0 = *p->symbols.FindConstant("p0");
  ConstId p1 = *p->symbols.FindConstant("p1");
  FuncTerm t = FuncTerm::Zero().Apply(
      mv, {NfArg::Constant(p0), NfArg::Constant(p1)});
  auto pure = PurifyGroundTerm(t, &p->symbols);
  ASSERT_TRUE(pure.ok()) << pure.status().ToString();
  EXPECT_TRUE(pure->IsPure());
  EXPECT_EQ(pure->depth(), 1);
  EXPECT_TRUE(p->symbols.FindFunction("move{p0,p1}").ok());
  // Non-ground input is rejected.
  VarId x = p->symbols.InternVariable("x");
  FuncTerm open = FuncTerm::Zero().Apply(mv, {NfArg::Variable(x),
                                              NfArg::Constant(p1)});
  EXPECT_TRUE(PurifyGroundTerm(open, &p->symbols).status().IsInvalidArgument());
}

TEST(MixedToPure, GroundFactsRewrittenDirectly) {
  auto p = ParseProgram(R"(
    Member(ext(0, a), a).
    P(a).
    P(y), Member(s, x) -> Member(ext(s, y), x).
  )");
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(MixedToPure(&*p).ok());
  ASSERT_EQ(p->facts.size(), 2u);
  // The functional fact's term is now pure.
  for (const Atom& f : p->facts) {
    if (f.fterm.has_value()) {
      EXPECT_TRUE(f.fterm->IsPure());
    }
  }
}

TEST(MixedToPure, MultipleMixedVarsMultiply) {
  auto p = ParseProgram(R"(
    At(0, p0).
    Connected(p0, p1).
    At(s, x), Connected(x, y) -> At(move(s, x, y), y).
  )");
  ASSERT_TRUE(p.ok());
  auto stats = MixedToPure(&*p);
  ASSERT_TRUE(stats.ok());
  // Two mixed-arg variables (x, y) over a 2-constant domain -> 4 instances.
  EXPECT_EQ(stats->rules_out, 4);
  EXPECT_EQ(stats->new_symbols, 4);
}

// ---------- full pipeline on a mixed, non-normal program ----------

TEST(Pipeline, DeepMixedProgramEndToEnd) {
  auto db = FunctionalDatabase::FromSource(R"(
    P(0).
    W(a).
    W(b).
    P(s), W(x) -> P1(g(f(s), x)).
    P1(s) -> P(s).
  )");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE(*(*db)->HoldsFactText("P(0)"));
  EXPECT_TRUE(*(*db)->HoldsFactText("P1(g(f(0), a))"));
  EXPECT_TRUE(*(*db)->HoldsFactText("P(g(f(0), b))"));
  EXPECT_TRUE(*(*db)->HoldsFactText("P1(g(f(g(f(0), a)), b))"));
  EXPECT_FALSE(*(*db)->HoldsFactText("P1(f(0))"));
  EXPECT_TRUE((*db)->Verify().ok());
}

}  // namespace
}  // namespace relspec
