// Unit tests for query answering (Section 5): incremental vs recompute,
// uniform detection, enumeration, membership, yes-no.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/ast/validate.h"
#include "src/base/governor.h"
#include "src/base/metrics.h"
#include "src/core/engine.h"
#include "src/core/query.h"
#include "src/parser/parser.h"

namespace relspec {
namespace {

constexpr const char* kMeets = R"(
  Meets(0, Tony).
  Next(Tony, Jan).
  Next(Jan, Tony).
  Meets(t, x), Next(x, y) -> Meets(t+1, y).
)";

std::unique_ptr<FunctionalDatabase> BuildMeets() {
  auto db = FunctionalDatabase::FromSource(kMeets);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(*db);
}

Path NatPath(const FunctionalDatabase& db, int n) {
  FuncId succ = *db.program().symbols.FindFunction("+1");
  std::vector<FuncId> syms(static_cast<size_t>(n), succ);
  return Path(std::move(syms));
}

// Renders answers as strings for order-insensitive comparison across symbol
// tables.
std::vector<std::string> Render(const QueryAnswer& ans,
                                const std::vector<ConcreteAnswer>& list) {
  std::vector<std::string> out;
  for (const ConcreteAnswer& a : list) {
    std::string s = a.term.has_value() ? a.term->ToWord(ans.symbols()) : "-";
    s += "|";
    for (ConstId c : a.tuple) s += ans.symbols().constant_name(c) + ",";
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(Query, FunctionalAnswerEnumeration) {
  auto db = BuildMeets();
  auto q = ParseQuery("?(t, x) Meets(t, x).", db->mutable_program());
  ASSERT_TRUE(q.ok());
  auto ans = AnswerQuery(db.get(), *q);
  ASSERT_TRUE(ans.ok()) << ans.status().ToString();
  EXPECT_TRUE(ans->has_functional_answer());
  EXPECT_FALSE(ans->IsEmpty());
  auto ten = ans->Enumerate(/*max_depth=*/9, /*max_count=*/1000);
  ASSERT_TRUE(ten.ok());
  EXPECT_EQ(ten->size(), 10u);  // one student per day, days 0..9
}

TEST(Query, EnumerationHonorsCountLimit) {
  auto db = BuildMeets();
  auto q = ParseQuery("?(t, x) Meets(t, x).", db->mutable_program());
  ASSERT_TRUE(q.ok());
  auto ans = AnswerQuery(db.get(), *q);
  ASSERT_TRUE(ans.ok());
  auto three = ans->Enumerate(/*max_depth=*/100, /*max_count=*/3);
  ASSERT_TRUE(three.ok());
  EXPECT_EQ(three->size(), 3u);
}

TEST(Query, MembershipViaContains) {
  auto db = BuildMeets();
  auto q = ParseQuery("?(t, x) Meets(t, x).", db->mutable_program());
  ASSERT_TRUE(q.ok());
  auto ans = AnswerQuery(db.get(), *q);
  ASSERT_TRUE(ans.ok());
  ConstId tony = *ans->symbols().FindConstant("Tony");
  ConstId jan = *ans->symbols().FindConstant("Jan");
  EXPECT_TRUE(*ans->Contains(NatPath(*db, 4), {tony}));
  EXPECT_FALSE(*ans->Contains(NatPath(*db, 4), {jan}));
  EXPECT_TRUE(*ans->Contains(NatPath(*db, 5), {jan}));
  // Wrong shapes are rejected.
  EXPECT_FALSE(ans->Contains(std::nullopt, {tony}).ok());
}

TEST(Query, ExistentialFunctionalVariableGivesFiniteAnswer) {
  auto db = BuildMeets();
  // Who ever meets? (t projected away)
  auto q = ParseQuery("?(x) Meets(t, x).", db->mutable_program());
  ASSERT_TRUE(q.ok());
  auto ans = AnswerQuery(db.get(), *q);
  ASSERT_TRUE(ans.ok()) << ans.status().ToString();
  EXPECT_FALSE(ans->has_functional_answer());
  auto all = ans->Enumerate(0, 100);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 2u);  // Tony and Jan
}

TEST(Query, PureNonFunctionalQuery) {
  auto db = BuildMeets();
  auto q = ParseQuery("?(x, y) Next(x, y).", db->mutable_program());
  ASSERT_TRUE(q.ok());
  auto ans = AnswerQuery(db.get(), *q);
  ASSERT_TRUE(ans.ok()) << ans.status().ToString();
  EXPECT_FALSE(ans->has_functional_answer());
  auto all = ans->Enumerate(0, 100);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 2u);
}

TEST(Query, GroundTermAtomConstrainsJoin) {
  auto db = BuildMeets();
  // Who meets on day 4 and is followed by whom? Meets(4, x), Next(x, y).
  auto q = ParseQuery("?(x, y) Meets(4, x), Next(x, y).", db->mutable_program());
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(IsUniformQuery(*q));  // ground terms keep uniformity
  auto ans = AnswerQuery(db.get(), *q);
  ASSERT_TRUE(ans.ok()) << ans.status().ToString();
  auto all = ans->Enumerate(0, 10);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 1u);
  EXPECT_EQ(ans->symbols().constant_name((*all)[0].tuple[0]), "Tony");
  EXPECT_EQ(ans->symbols().constant_name((*all)[0].tuple[1]), "Jan");
}

TEST(Query, IncrementalMatchesRecomputeOnJoinQuery) {
  auto db = BuildMeets();
  auto q = ParseQuery("?(t, x, y) Meets(t, x), Next(x, y).",
                      db->mutable_program());
  ASSERT_TRUE(q.ok());
  auto inc = AnswerQueryIncremental(db.get(), *q);
  auto rec = AnswerQueryRecompute(db.get(), *q);
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  auto e1 = inc->Enumerate(8, 10000);
  auto e2 = rec->Enumerate(8, 10000);
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(Render(*inc, *e1), Render(*rec, *e2));
  EXPECT_EQ(e1->size(), 9u);
}

TEST(Query, NonUniformQueryFallsBackToRecompute) {
  auto db = BuildMeets();
  // Meets(t+1, x): non-uniform (non-ground, non-variable functional term).
  auto q = ParseQuery("?(t, x) Meets(t+1, x).", db->mutable_program());
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(IsUniformQuery(*q));
  EXPECT_TRUE(
      AnswerQueryIncremental(db.get(), *q).status().IsInvalidArgument());
  auto ans = AnswerQuery(db.get(), *q);
  ASSERT_TRUE(ans.ok()) << ans.status().ToString();
  // Answers: t such that Meets(t+1, x): day t+1 is x's day.
  ConstId jan = *ans->symbols().FindConstant("Jan");
  EXPECT_TRUE(*ans->Contains(NatPath(*db, 0), {jan}));   // day 1 is Jan
  ConstId tony = *ans->symbols().FindConstant("Tony");
  EXPECT_FALSE(*ans->Contains(NatPath(*db, 0), {tony}));
  EXPECT_TRUE(*ans->Contains(NatPath(*db, 1), {tony}));  // day 2 is Tony
}

TEST(Query, YesNoQueries) {
  auto db = BuildMeets();
  auto yes = ParseQuery("? Meets(t, Tony).", db->mutable_program());
  ASSERT_TRUE(yes.ok());
  auto r1 = YesNo(db.get(), *yes);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_TRUE(*r1);
  // No one meets twice in a row: Meets(t,x), Meets(t+1... needs two atoms
  // with the same x; use a constant instead: is there a day Jan and Tony
  // both meet? (Never.)
  auto no = ParseQuery("? Meets(t, Tony), Meets(t, Jan).",
                       db->mutable_program());
  ASSERT_TRUE(no.ok());
  auto r2 = YesNo(db.get(), *no);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(*r2);
}

TEST(Query, EmptyAnswerIsEmpty) {
  auto db = BuildMeets();
  auto q = ParseQuery("?(t) Meets(t, Tony), Meets(t, Jan).",
                      db->mutable_program());
  ASSERT_TRUE(q.ok());
  auto ans = AnswerQuery(db.get(), *q);
  ASSERT_TRUE(ans.ok());
  EXPECT_TRUE(ans->IsEmpty());
  EXPECT_EQ(ans->NumSpecTuples(), 0u);
  auto list = ans->Enumerate(10, 10);
  ASSERT_TRUE(list.ok());
  EXPECT_TRUE(list->empty());
}

TEST(Query, ColumnsFollowAnswerVarOrder) {
  auto db = BuildMeets();
  auto q = ParseQuery("?(x, t) Meets(t, x).", db->mutable_program());
  ASSERT_TRUE(q.ok());
  auto ans = AnswerQuery(db.get(), *q);
  ASSERT_TRUE(ans.ok());
  ASSERT_EQ(ans->columns().size(), 2u);
  EXPECT_EQ(ans->columns()[0], "x");
  EXPECT_EQ(ans->columns()[1], "t");
  EXPECT_FALSE(ans->ToString().empty());
}

TEST(Query, ListMembershipUniformAnswers) {
  auto db = FunctionalDatabase::FromSource(R"(
    P(a).
    P(b).
    P(x) -> Member(ext(0, x), x).
    P(y), Member(s, x) -> Member(ext(s, y), y).
    P(y), Member(s, x) -> Member(ext(s, y), x).
  )");
  ASSERT_TRUE(db.ok());
  auto q = ParseQuery("?(s) Member(s, b).", (*db)->mutable_program());
  ASSERT_TRUE(q.ok());
  auto ans = AnswerQuery(db->get(), *q);
  ASSERT_TRUE(ans.ok()) << ans.status().ToString();
  // Lists of depth <= 2 containing b: b, ab, ba, bb -> 4 answers.
  auto list = ans->Enumerate(2, 1000);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->size(), 4u);
}

TEST(Query, RepeatedQueriesDoNotInterfere) {
  auto db = BuildMeets();
  for (int i = 0; i < 3; ++i) {
    auto q = ParseQuery("?(t) Meets(t, Tony).", db->mutable_program());
    ASSERT_TRUE(q.ok());
    auto rec = AnswerQueryRecompute(db.get(), *q);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    auto list = rec->Enumerate(4, 100);
    ASSERT_TRUE(list.ok());
    EXPECT_EQ(list->size(), 3u);  // days 0, 2, 4
  }
}

// --- per-request governors --------------------------------------------------

TEST(Query, NullGovernorLeavesAnswersUnchanged) {
  auto db = BuildMeets();
  auto q = ParseQuery("?(t, x) Meets(t, x).", db->mutable_program());
  ASSERT_TRUE(q.ok());
  auto without = AnswerQuery(db.get(), *q);
  auto with = AnswerQuery(db.get(), *q, nullptr);
  ASSERT_TRUE(without.ok());
  ASSERT_TRUE(with.ok());
  EXPECT_EQ(without->NumSpecTuples(), with->NumSpecTuples());
}

TEST(Query, GenerousGovernorDoesNotBreach) {
  auto db = BuildMeets();
  auto q = ParseQuery("?(t, x) Meets(t, x).", db->mutable_program());
  ASSERT_TRUE(q.ok());
  GovernorLimits limits;
  limits.max_tuples = 1000000;
  ResourceGovernor governor(limits);
  auto ans = AnswerQuery(db.get(), *q, &governor);
  ASSERT_TRUE(ans.ok()) << ans.status().ToString();
  EXPECT_FALSE(ans->IsEmpty());
}

TEST(Query, TinyTupleBudgetBreachesIncremental) {
  auto db = BuildMeets();
  // Uniform query -> incremental path, which polls CheckTuples per cluster.
  auto q = ParseQuery("?(t, x) Meets(t, x).", db->mutable_program());
  ASSERT_TRUE(q.ok());
  GovernorLimits limits;
  limits.max_tuples = 1;
  ResourceGovernor governor(limits);
  auto ans = AnswerQueryIncremental(db.get(), *q, &governor);
  ASSERT_FALSE(ans.ok());
  EXPECT_TRUE(ans.status().IsResourceBreach()) << ans.status().ToString();
  // The breach is per-request state: a fresh governor (or none) answers.
  auto retry = AnswerQueryIncremental(db.get(), *q);
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

TEST(Query, PreBreachedGovernorRejectsRecompute) {
  auto db = BuildMeets();
  // Non-uniform -> recompute path; the governor rides the sub-build.
  auto q = ParseQuery("?(x) Meets(t+1, x).", db->mutable_program());
  ASSERT_TRUE(q.ok());
  GovernorLimits limits;
  ResourceGovernor governor(limits);
  governor.RequestCancel();
  auto ans = AnswerQueryRecompute(db.get(), *q, &governor);
  ASSERT_FALSE(ans.ok());
  EXPECT_TRUE(ans.status().IsResourceBreach()) << ans.status().ToString();
}

TEST(Query, TinyNodeBudgetBreachesRecompute) {
  auto db = BuildMeets();
  auto q = ParseQuery("?(x) Meets(t+1, x).", db->mutable_program());
  ASSERT_TRUE(q.ok());
  GovernorLimits limits;
  limits.max_nodes = 1;  // the QUERY-extended sub-build needs more
  ResourceGovernor governor(limits);
  auto ans = AnswerQueryRecompute(db.get(), *q, &governor);
  ASSERT_FALSE(ans.ok());
  EXPECT_TRUE(ans.status().IsResourceBreach()) << ans.status().ToString();
  // The database itself is untouched: ungoverned answers still work.
  auto retry = AnswerQueryRecompute(db.get(), *q);
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

TEST(Query, CachedHitSkipsGovernorMissConsultsIt) {
  auto db = BuildMeets();
  auto q = ParseQuery("?(t, x) Meets(t, x).", db->mutable_program());
  ASSERT_TRUE(q.ok());
  QueryCache cache;
  // Populate the cache ungoverned.
  auto first = AnswerQueryCached(db.get(), *q, &cache);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  // A hit must not consult the (breached) governor.
  GovernorLimits limits;
  ResourceGovernor breached(limits);
  breached.RequestCancel();
  auto hit = AnswerQueryCached(db.get(), *q, &cache, &breached);
  EXPECT_TRUE(hit.ok()) << hit.status().ToString();
  // A miss with the same breached governor is rejected.
  cache.Clear();
  auto miss = AnswerQueryCached(db.get(), *q, &cache, &breached);
  ASSERT_FALSE(miss.ok());
  EXPECT_TRUE(miss.status().IsResourceBreach()) << miss.status().ToString();
}

// --- delta-driven cache invalidation (docs/INCREMENTAL.md) ------------------

// Counter-reading fixture: the registry is process-global, so start clean
// and leave metrics disabled for the next suite.
class DeltaCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().Reset();
    EnableMetrics(true);
  }
  void TearDown() override {
    EnableMetrics(false);
    MetricsRegistry::Global().Reset();
  }
};

TEST_F(DeltaCacheTest, EffectiveDeltaInvalidatesFingerprintAndCache) {
  auto db = BuildMeets();
  uint64_t fp_before = db->Fingerprint();
  auto q = ParseQuery("?(t, x) Meets(t, x).", db->mutable_program());
  ASSERT_TRUE(q.ok());

  QueryCache cache;
  auto cold = AnswerQueryCached(db.get(), *q, &cache);
  auto warm = AnswerQueryCached(db.get(), *q, &cache);
  ASSERT_TRUE(cold.ok() && warm.ok());
  EXPECT_EQ(cold->get(), warm->get());
  {
    MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
    EXPECT_EQ(snap.counter("cache.miss"), 1u);
    EXPECT_EQ(snap.counter("cache.hit"), 1u);
  }

  auto stats = db->ApplyDeltaText("+ Meets(0, Jan).\n");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->inserted, 1u);
  EXPECT_NE(db->Fingerprint(), fp_before)
      << "an effective delta must change the fingerprint";

  // The stale entry is keyed under the old fingerprint: same query, same
  // cache, but a miss — and the recomputed answer reflects the new fact.
  auto after = AnswerQueryCached(db.get(), *q, &cache);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_NE(after->get(), warm->get());
  {
    MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
    EXPECT_EQ(snap.counter("cache.miss"), 2u);
    EXPECT_EQ(snap.counter("cache.hit"), 1u);
  }

  auto direct = AnswerQuery(db.get(), *q);
  ASSERT_TRUE(direct.ok());
  auto e_cached = (*after)->Enumerate(5, 100000);
  auto e_direct = direct->Enumerate(5, 100000);
  ASSERT_TRUE(e_cached.ok() && e_direct.ok());
  EXPECT_EQ(*e_cached, *e_direct);
}

TEST_F(DeltaCacheTest, NoopDeltaKeepsFingerprintAndHits) {
  auto db = BuildMeets();
  uint64_t fp_before = db->Fingerprint();
  auto q = ParseQuery("?(t, x) Meets(t, x).", db->mutable_program());
  ASSERT_TRUE(q.ok());
  QueryCache cache;
  auto cold = AnswerQueryCached(db.get(), *q, &cache);
  ASSERT_TRUE(cold.ok());

  // Inserting a present fact and deleting an absent one are both noops: the
  // batch must not touch the engine or the fingerprint.
  auto stats = db->ApplyDeltaText("+ Meets(0, Tony).\n- Next(Tony, Felix).\n");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->inserted, 0u);
  EXPECT_EQ(stats->deleted, 0u);
  EXPECT_EQ(stats->noops, 2u);
  EXPECT_EQ(db->Fingerprint(), fp_before);

  auto warm = AnswerQueryCached(db.get(), *q, &cache);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(cold->get(), warm->get()) << "noop batch must keep cache hits";
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.counter("cache.hit"), 1u);
  EXPECT_EQ(snap.counter("cache.miss"), 1u);
}

TEST_F(DeltaCacheTest, StaleEntriesAgeOutThroughLru) {
  auto db = BuildMeets();
  QueryCache::Options copts;
  copts.max_entries = 1;  // the stale entry must be evicted, not retained
  QueryCache cache(copts);
  auto q = ParseQuery("?(t, x) Meets(t, x).", db->mutable_program());
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(AnswerQueryCached(db.get(), *q, &cache).ok());

  auto stats = db->ApplyDeltaText("+ Meets(0, Jan).\n");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // Re-answering under the new fingerprint inserts a second entry; with
  // max_entries=1 the stale one is the LRU victim.
  ASSERT_TRUE(AnswerQueryCached(db.get(), *q, &cache).ok());
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.counter("cache.evict"), 1u);
  EXPECT_EQ(snap.counter("cache.miss"), 2u);
}

// Regression: a batch whose tail line is invalid must leave the engine fully
// untouched, even when earlier lines were valid, effective edits. The whole
// batch is validated before any mutation — a partial application here would
// desynchronize the WAL replay path, which logs batches all-or-nothing.
TEST_F(DeltaCacheTest, InvalidTailLineLeavesWholeBatchUnapplied) {
  auto db = BuildMeets();
  const uint64_t fp_before = db->Fingerprint();
  const size_t constants_before = db->program().symbols.num_constants();
  const size_t predicates_before = db->program().symbols.num_predicates();

  // Three failure shapes after two valid effective edits: garbage syntax, a
  // non-ground fact, and an unknown predicate.
  const char* bad_batches[] = {
      "+ Meets(0, Jan).\n- Next(Tony, Jan).\nnot a delta line\n",
      "+ Meets(0, Jan).\n- Next(Tony, Jan).\n+ Meets(t, x).\n",
      "+ Meets(0, Jan).\n- Next(Tony, Jan).\n+ Zorp(0, Tony).\n",
  };
  for (const char* batch : bad_batches) {
    auto stats = db->ApplyDeltaText(batch);
    ASSERT_FALSE(stats.ok()) << batch;
    EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument) << batch;
    EXPECT_EQ(db->Fingerprint(), fp_before)
        << "rejected batch mutated the engine: " << batch;
    // No phantom symbols may leak from the abandoned batch's parse.
    EXPECT_EQ(db->program().symbols.num_constants(), constants_before);
    EXPECT_EQ(db->program().symbols.num_predicates(), predicates_before);
  }

  // The engine is still healthy: the same valid prefix applies cleanly.
  auto stats = db->ApplyDeltaText("+ Meets(0, Jan).\n- Next(Tony, Jan).\n");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->inserted, 1u);
  EXPECT_EQ(stats->deleted, 1u);
  EXPECT_NE(db->Fingerprint(), fp_before);
}

}  // namespace
}  // namespace relspec
