// Unit tests for the FunctionalDatabase facade: pipeline wiring, error
// paths, resource limits, and edge-case programs.

#include <gtest/gtest.h>

#include "src/base/metrics.h"
#include "src/core/engine.h"
#include "src/core/query.h"
#include "src/parser/parser.h"

namespace relspec {
namespace {

TEST(Engine, RejectsSourceWithQueries) {
  auto db = FunctionalDatabase::FromSource("P(0).\n? P(s).");
  EXPECT_TRUE(db.status().IsInvalidArgument());
}

TEST(Engine, RejectsDomainDependentPrograms) {
  auto db = FunctionalDatabase::FromSource("P(0).\nP(s) -> Q(s, y).\nQ(0, a).");
  EXPECT_TRUE(db.status().IsInvalidArgument());
}

TEST(Engine, EmptyProgramWorks) {
  auto db = FunctionalDatabase::FromSource("");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->label_graph().num_clusters(), 1u);  // just the term 0
  EXPECT_TRUE((*db)->Verify().ok());
}

TEST(Engine, FactsOnlyProgram) {
  auto db = FunctionalDatabase::FromSource(R"(
    Meets(2, Tony).
    Next(Tony, Jan).
  )");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE(*(*db)->HoldsFactText("Meets(2, Tony)"));
  EXPECT_FALSE(*(*db)->HoldsFactText("Meets(1, Tony)"));
  EXPECT_FALSE(*(*db)->HoldsFactText("Meets(3, Tony)"));
  EXPECT_TRUE(*(*db)->HoldsFactText("Next(Tony, Jan)"));
}

TEST(Engine, PureDatalogProgram) {
  auto db = FunctionalDatabase::FromSource(R"(
    Edge(a, b).
    Edge(b, c).
    Edge(x, y) -> Reach(x, y).
    Reach(x, y), Edge(y, z) -> Reach(x, z).
  )");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE(*(*db)->HoldsFactText("Reach(a, c)"));
  EXPECT_FALSE(*(*db)->HoldsFactText("Reach(c, a)"));
  EXPECT_TRUE((*db)->Verify().ok());
  // Queries over a function-free program are finite.
  auto q = ParseQuery("?(x) Reach(a, x).", (*db)->mutable_program());
  ASSERT_TRUE(q.ok());
  auto ans = AnswerQuery(db->get(), *q);
  ASSERT_TRUE(ans.ok()) << ans.status().ToString();
  EXPECT_FALSE(ans->has_functional_answer());
  auto list = ans->Enumerate(0, 10);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->size(), 2u);  // b and c
}

TEST(Engine, HoldsFactErrors) {
  auto db = FunctionalDatabase::FromSource("Meets(0, Tony).");
  ASSERT_TRUE(db.ok());
  // Open atoms are rejected.
  EXPECT_FALSE((*db)->HoldsFactText("Meets(t, Tony)").ok());
  // Unknown predicates are rejected at parse time.
  EXPECT_FALSE((*db)->HoldsFactText("Unknown(0)").ok());
  // Unknown constants are simply false (they are outside the universe).
  auto unknown_const = (*db)->HoldsFactText("Meets(0, Nobody)");
  ASSERT_TRUE(unknown_const.ok());
  EXPECT_FALSE(*unknown_const);
}

TEST(Engine, FactsWithUnknownSymbolsAreFalse) {
  auto db = FunctionalDatabase::FromSource("Meets(0, Tony).\nMeets(t, x) -> Meets(t+1, x).");
  ASSERT_TRUE(db.ok());
  // A ground term using a function symbol the program never mentions.
  EXPECT_FALSE(*(*db)->HoldsFactText("Meets(ghost(0), Tony)"));
  EXPECT_TRUE(*(*db)->HoldsFactText("Meets(1, Tony)"));
}

TEST(Engine, InfoAndStatsPopulated) {
  auto db = FunctionalDatabase::FromSource(R"(
    Even(0).
    Even(t) -> Even(t+2).
  )");
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE((*db)->info().is_normal);  // post-transformation
  EXPECT_GT((*db)->normalize_stats().aux_predicates, 0);
  EXPECT_EQ((*db)->purify_stats().new_symbols, 0);
  EXPECT_FALSE((*db)->original_program().rules.empty());
  EXPECT_GE((*db)->program().rules.size(),
            (*db)->original_program().rules.size());
}

TEST(Engine, GroundRuleCapPropagates) {
  EngineOptions options;
  options.ground.max_rules = 1;
  auto db = FunctionalDatabase::FromSource(R"(
    OnCall(0, a).
    Rotate(a, b).
    Rotate(b, a).
    OnCall(t, x), Rotate(x, y) -> OnCall(t+1, y).
  )", options);
  EXPECT_TRUE(db.status().IsResourceExhausted());
}

TEST(Engine, TrunkCapPropagates) {
  EngineOptions options;
  options.fixpoint.max_trunk_nodes = 2;
  // c = 3 with two symbols would need 15 trunk nodes.
  auto db = FunctionalDatabase::FromSource(R"(
    P(f(f(f(0)))).
    P(t) -> P(g(t)).
  )", options);
  EXPECT_TRUE(db.status().IsResourceExhausted());
}

TEST(Engine, PathOfGroundTermPurifies) {
  auto db = FunctionalDatabase::FromSource(R"(
    At(0, p0).
    Connected(p0, p1).
    At(s, x), Connected(x, y) -> At(move(s, x, y), y).
  )");
  ASSERT_TRUE(db.ok());
  FuncId mv = *(*db)->program().symbols.FindFunction("move");
  ConstId p0 = *(*db)->program().symbols.FindConstant("p0");
  ConstId p1 = *(*db)->program().symbols.FindConstant("p1");
  FuncTerm t = FuncTerm::Zero().Apply(mv, {NfArg::Constant(p0),
                                           NfArg::Constant(p1)});
  auto path = (*db)->PathOfGroundTerm(t);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->depth(), 1);
  VarId x = (*db)->mutable_symbols()->InternVariable("x");
  FuncTerm open = FuncTerm::Var(x);
  EXPECT_TRUE((*db)->PathOfGroundTerm(open).status().IsInvalidArgument());
}

TEST(Engine, SelfLoopRule) {
  // A rule deriving its own body atom: the fixpoint must not diverge.
  auto db = FunctionalDatabase::FromSource(R"(
    P(0).
    P(t) -> P(t).
    P(t) -> P(t+1).
  )");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE(*(*db)->HoldsFactText("P(5)"));
  EXPECT_TRUE((*db)->Verify().ok());
}

TEST(Engine, TwoSymbolCrossPropagation) {
  // Facts hop between branches in both directions.
  auto db = FunctionalDatabase::FromSource(R"(
    P(0).
    P(t) -> Q(f(t)).
    Q(f(t)) -> R(g(t)).
    R(g(t)) -> S(t).
  )");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE(*(*db)->HoldsFactText("Q(f(0))"));
  EXPECT_TRUE(*(*db)->HoldsFactText("R(g(0))"));
  EXPECT_TRUE(*(*db)->HoldsFactText("S(0)"));
  EXPECT_FALSE(*(*db)->HoldsFactText("S(f(0))"));
  EXPECT_TRUE((*db)->Verify().ok());
}

TEST(Engine, DeepGroundFactTrunk) {
  // A fact at depth 6 forces a deep trunk; everything still works.
  auto db = FunctionalDatabase::FromSource(R"(
    P(6).
    P(t) -> P(t+1).
    P(t+1) -> Q(t).
  )");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->ground().trunk_depth(), 6);
  EXPECT_FALSE(*(*db)->HoldsFactText("P(5)"));
  EXPECT_TRUE(*(*db)->HoldsFactText("P(9)"));
  EXPECT_TRUE(*(*db)->HoldsFactText("Q(5)"));   // down from P(6)
  EXPECT_FALSE(*(*db)->HoldsFactText("Q(4)"));  // no P(5)
  EXPECT_TRUE((*db)->Verify().ok());
}

TEST(Engine, MetricsCoverWholePipeline) {
  MetricsRegistry::Global().Reset();
  EnableMetrics(true);
  auto db = FunctionalDatabase::FromSource(R"(
    Even(0).
    Even(t) -> Even(t+2).
  )");
  EnableMetrics(false);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  // Every pipeline stage left a phase span behind.
  for (const char* name : {"parse", "engine.build", "validate", "normalize",
                           "purify", "ground", "fixpoint", "algorithm_q"}) {
    const PhaseSnapshot* p = snap.phase(name);
    ASSERT_NE(p, nullptr) << name;
    EXPECT_GE(p->count, 1u) << name;
  }
  EXPECT_EQ(snap.gauge("fixpoint.trunk_nodes"),
            static_cast<int64_t>((*db)->labeling().trunk_paths().size()));
  EXPECT_GT(snap.counter("fixpoint.rounds"), 0u);
  EXPECT_EQ(snap.counter("chi.hits") + snap.counter("chi.misses"),
            snap.counter("chi.lookups"));
  EXPECT_EQ(snap.gauge("labelgraph.clusters"),
            static_cast<int64_t>((*db)->label_graph().num_clusters()));
  MetricsRegistry::Global().Reset();
}

TEST(Engine, MetricsDisabledLeavesNoTrace) {
  MetricsRegistry::Global().Reset();
  ASSERT_FALSE(MetricsEnabled());
  size_t before = MetricsRegistry::Global().NumInstruments();
  auto db = FunctionalDatabase::FromSource("P(0).\nP(t) -> P(t+1).");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  // The disabled fast path performs no registrations at all.
  EXPECT_EQ(MetricsRegistry::Global().NumInstruments(), before);
}

}  // namespace
}  // namespace relspec
