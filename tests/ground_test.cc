// Unit tests for grounding: atom universes, positional rules, context
// propositions, EDB pruning.

#include <gtest/gtest.h>

#include "src/core/ground.h"
#include "src/core/mixed_to_pure.h"
#include "src/core/normalize.h"
#include "src/parser/parser.h"

namespace relspec {
namespace {

StatusOr<GroundProgram> GroundSource(std::string_view source,
                                     GroundOptions options = {}) {
  RELSPEC_ASSIGN_OR_RETURN(Program p, ParseProgram(source));
  RELSPEC_ASSIGN_OR_RETURN(NormalizeStats ns, NormalizeProgram(&p));
  (void)ns;
  RELSPEC_ASSIGN_OR_RETURN(MixedToPureStats ms, MixedToPure(&p));
  (void)ms;
  return Ground(p, options);
}

TEST(Ground, MeetsProgramStructure) {
  auto g = GroundSource(R"(
    Meets(0, Tony).
    Next(Tony, Jan).
    Next(Jan, Tony).
    Meets(t, x), Next(x, y) -> Meets(t+1, y).
  )");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->num_symbols(), 1u);
  EXPECT_EQ(g->trunk_depth(), 0);
  // Universe: Meets@Tony, Meets@Jan.
  EXPECT_EQ(g->num_atoms(), 2u);
  // The rule grounds over (x,y) in {Tony,Jan}^2, but EDB pruning against
  // Next keeps only the two real pairs.
  EXPECT_EQ(g->local_rules().size(), 2u);
  EXPECT_TRUE(g->global_rules().empty());
  EXPECT_EQ(g->pinned_facts().size(), 1u);
  EXPECT_EQ(g->pinned_facts()[0].first.depth(), 0);
  EXPECT_EQ(g->global_facts().size(), 2u);
  // Each local rule: body at s, head at +1(s).
  for (const GroundRule& r : g->local_rules()) {
    EXPECT_EQ(r.body_eps.size(), 1u);
    EXPECT_TRUE(r.body_child.empty());
    EXPECT_EQ(r.head_kind, GroundRule::HeadKind::kChild);
    EXPECT_TRUE(r.IsLocal());
  }
}

TEST(Ground, WithoutEdbPruningEnumeratesAllPairs) {
  GroundOptions options;
  options.edb_pruning = false;
  auto g = GroundSource(R"(
    Meets(0, Tony).
    Next(Tony, Jan).
    Next(Jan, Tony).
    Meets(t, x), Next(x, y) -> Meets(t+1, y).
  )", options);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  // 2 constants -> 4 (x,y) instances, each carrying the Next ctx atom.
  EXPECT_EQ(g->local_rules().size(), 4u);
  for (const GroundRule& r : g->local_rules()) {
    EXPECT_EQ(r.body_ctx.size(), 1u);
  }
}

TEST(Ground, PinnedAtomsForGroundTerms) {
  auto g = GroundSource(R"(
    P(2).
    P(t) -> Q(t+1).
    Q(3) -> Win(a).
  )");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->trunk_depth(), 3);  // the ground term 3 in the last rule
  // The last rule has a pinned body atom and a global head: non-local.
  ASSERT_EQ(g->global_rules().size(), 1u);
  const GroundRule& r = g->global_rules()[0];
  EXPECT_EQ(r.head_kind, GroundRule::HeadKind::kCtx);
  ASSERT_EQ(r.body_ctx.size(), 1u);
  EXPECT_EQ(g->ctx_prop(r.body_ctx[0]).kind, CtxProp::Kind::kPinned);
  EXPECT_EQ(g->ctx_prop(r.body_ctx[0]).path.depth(), 3);
}

TEST(Ground, GlobalHeadFromFunctionalBodyIsLocalExistential) {
  auto g = GroundSource(R"(
    P(0).
    P(t) -> P(t+1).
    P(s) -> Nonempty(a).
  )");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  // P(s) -> Nonempty(a): positional body, ctx head -> local existential.
  bool found = false;
  for (const GroundRule& r : g->local_rules()) {
    if (r.head_kind == GroundRule::HeadKind::kCtx) {
      EXPECT_EQ(r.body_eps.size(), 1u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Ground, RequiresNormalProgram) {
  auto p = ParseProgram("Even(0).\nEven(t) -> Even(t+2).");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(Ground(*p).status().IsFailedPrecondition());
}

TEST(Ground, RequiresPureProgram) {
  auto p = ParseProgram(R"(
    P(a).
    P(x) -> Member(ext(0, x), x).
  )");
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(NormalizeProgram(&*p).ok());
  EXPECT_TRUE(Ground(*p).status().IsFailedPrecondition());
}

TEST(Ground, RuleCapEnforced) {
  GroundOptions options;
  options.max_rules = 2;
  options.edb_pruning = false;
  auto g = GroundSource(R"(
    P(0, a).
    P(0, b).
    P(0, c).
    P(t, x), P(t, y) -> P(t+1, x).
  )", options);
  EXPECT_TRUE(g.status().IsResourceExhausted());
}

TEST(Ground, DeduplicatesRuleInstances) {
  // x does not occur in the head; distinct x bindings give the same ground
  // rule after EDB pruning of P... here Q is IDB so instances differ only
  // in the ctx atom. Use a genuinely duplicating shape:
  auto g = GroundSource(R"(
    Base(a).
    Base(b).
    R(0).
    R(t), Base(x) -> R(t+1).
  )");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  // Base is EDB-pruned and dropped; both x=a and x=b collapse to the same
  // positional rule.
  EXPECT_EQ(g->local_rules().size(), 1u);
}

TEST(Ground, FindAtomAndFindGlobal) {
  auto g = GroundSource(R"(
    Meets(0, Tony).
    Next(Tony, Jan).
    Meets(t, x), Next(x, y) -> Meets(t+1, y).
  )");
  ASSERT_TRUE(g.ok());
  // Probe by reconstructing keys (ids are internal; scan the dictionary).
  bool found_meets_jan = false;
  for (AtomIdx i = 0; i < g->num_atoms(); ++i) {
    if (g->atom(i).args.size() == 1) found_meets_jan = true;
    EXPECT_EQ(g->FindAtom(g->atom(i)), i);
  }
  EXPECT_TRUE(found_meets_jan);
  SliceAtom missing;
  missing.pred = 999;
  EXPECT_EQ(g->FindAtom(missing), kInvalidId);
  EXPECT_EQ(g->FindGlobal(999, {}), kInvalidId);
}

TEST(Ground, RendersRulesForHumans) {
  auto p = ParseProgram(R"(
    Meets(0, Tony).
    Next(Tony, Jan).
    Meets(t, x), Next(x, y) -> Meets(t+1, y).
  )");
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(NormalizeProgram(&*p).ok());
  ASSERT_TRUE(MixedToPure(&*p).ok());
  auto g = Ground(*p);
  ASSERT_TRUE(g.ok());
  ASSERT_FALSE(g->local_rules().empty());
  std::string text = g->RuleToString(g->local_rules()[0], p->symbols);
  EXPECT_NE(text.find("->"), std::string::npos);
  EXPECT_NE(text.find("Meets"), std::string::npos);
}

TEST(Ground, PureDatalogProgramHasNoLocalRules) {
  auto g = GroundSource(R"(
    Edge(a, b).
    Edge(b, c).
    Edge(x, y) -> Reach(x, y).
    Reach(x, y), Edge(y, z) -> Reach(x, z).
  )");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_TRUE(g->local_rules().empty());
  EXPECT_FALSE(g->global_rules().empty());
  EXPECT_EQ(g->num_symbols(), 0u);
}

}  // namespace
}  // namespace relspec
