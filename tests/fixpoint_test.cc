// Unit tests for the least-fixpoint machinery: trunk labels, the chi table,
// context propagation, bounded brute-force evaluation.

#include <gtest/gtest.h>

#include "src/base/metrics.h"
#include "src/core/fixpoint.h"
#include "src/core/ground.h"
#include "src/core/mixed_to_pure.h"
#include "src/core/normalize.h"
#include "src/parser/parser.h"

namespace relspec {
namespace {

struct Built {
  Program program;
  GroundProgram ground;
};

StatusOr<Built> Build(std::string_view source) {
  RELSPEC_ASSIGN_OR_RETURN(Program p, ParseProgram(source));
  RELSPEC_ASSIGN_OR_RETURN(NormalizeStats ns, NormalizeProgram(&p));
  (void)ns;
  RELSPEC_ASSIGN_OR_RETURN(MixedToPureStats ms, MixedToPure(&p));
  (void)ms;
  RELSPEC_ASSIGN_OR_RETURN(GroundProgram g, Ground(p));
  return Built{std::move(p), std::move(g)};
}

// Looks up a slice atom id by predicate name + constant names.
SliceAtom AtomOf(const Built& b, const std::string& pred,
                 const std::vector<std::string>& consts) {
  SliceAtom a;
  a.pred = *b.program.symbols.FindPredicate(pred);
  for (const auto& c : consts) a.args.push_back(*b.program.symbols.FindConstant(c));
  return a;
}

Path NatPath(const Built& b, int n) {
  FuncId succ = *b.program.symbols.FindFunction("+1");
  std::vector<FuncId> syms(static_cast<size_t>(n), succ);
  return Path(std::move(syms));
}

TEST(Fixpoint, ForwardChainLabels) {
  auto b = Build("P(0).\nP(t) -> P(t+1).");
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  auto l = ComputeFixpoint(b->ground);
  ASSERT_TRUE(l.ok()) << l.status().ToString();
  SliceAtom p = AtomOf(*b, "P", {});
  for (int n = 0; n <= 10; ++n) {
    EXPECT_TRUE(l->Holds(NatPath(*b, n), p)) << n;
  }
}

TEST(Fixpoint, DownPropagation) {
  // Q flows downward: Q(t+1) -> Q(t); seeded at depth 4 via P-chain.
  auto b = Build(R"(
    P(0).
    P(t) -> P(t+1).
    P(4), P(t) -> Q(t+4).
    Q(t+1) -> Q(t).
  )");
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  auto l = ComputeFixpoint(b->ground);
  ASSERT_TRUE(l.ok()) << l.status().ToString();
  SliceAtom q = AtomOf(*b, "Q", {});
  // Q holds at t+4 for every t, and propagates down to everything.
  for (int n = 0; n <= 10; ++n) {
    EXPECT_TRUE(l->Holds(NatPath(*b, n), q)) << n;
  }
}

TEST(Fixpoint, DownPropagationBounded) {
  // Q seeded only at the pinned position 3, flows down but not up.
  auto b = Build(R"(
    Q(3).
    Q(t+1) -> Q(t).
  )");
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  auto l = ComputeFixpoint(b->ground);
  ASSERT_TRUE(l.ok()) << l.status().ToString();
  SliceAtom q = AtomOf(*b, "Q", {});
  for (int n = 0; n <= 8; ++n) {
    EXPECT_EQ(l->Holds(NatPath(*b, n), q), n <= 3) << n;
  }
}

TEST(Fixpoint, ExistentialGlobalFromDeepNode) {
  // Witness(a) becomes true because SOME node (depth 5) satisfies P&Marker.
  auto b = Build(R"(
    P(0).
    P(t) -> P(t+1).
    Marker(5).
    P(t), Marker(t) -> Witness(a).
  )");
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  auto l = ComputeFixpoint(b->ground);
  ASSERT_TRUE(l.ok()) << l.status().ToString();
  ConstId a = *b->program.symbols.FindConstant("a");
  PredId witness = *b->program.symbols.FindPredicate("Witness");
  EXPECT_TRUE(l->HoldsGlobal(witness, {a}));
}

TEST(Fixpoint, GlobalFeedsBackIntoChain) {
  // The chain only advances once Go(a) is derived, which requires reaching
  // depth 2 first: tests the context feedback loop.
  auto b = Build(R"(
    P(0).
    P(t) -> P(t+1).
    P(2) -> Go(a).
    P(t), Go(x) -> R(t).
  )");
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  auto l = ComputeFixpoint(b->ground);
  ASSERT_TRUE(l.ok()) << l.status().ToString();
  SliceAtom r = AtomOf(*b, "R", {});
  EXPECT_TRUE(l->Holds(NatPath(*b, 0), r));
  EXPECT_TRUE(l->Holds(NatPath(*b, 7), r));
}

TEST(Fixpoint, SiblingPropagationAcrossSymbols) {
  // Facts jump between sibling branches: P at f-child implies Q at g-child.
  auto b = Build(R"(
    P(0).
    P(t) -> P(f(t)).
    P(f(t)) -> Q(g(t)).
  )");
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  auto l = ComputeFixpoint(b->ground);
  ASSERT_TRUE(l.ok()) << l.status().ToString();
  FuncId f = *b->program.symbols.FindFunction("f");
  FuncId g = *b->program.symbols.FindFunction("g");
  SliceAtom q = AtomOf(*b, "Q", {});
  SliceAtom p = AtomOf(*b, "P", {});
  EXPECT_TRUE(l->Holds(Path({g}), q));
  EXPECT_TRUE(l->Holds(Path({f, g}), q));
  EXPECT_FALSE(l->Holds(Path({g, g}), q));  // no P below g-branches
  EXPECT_FALSE(l->Holds(Path({g}), p));
}

TEST(Fixpoint, UnknownSymbolsHaveEmptyLabels) {
  auto b = Build("P(0).\nP(t) -> P(f(t)).");
  ASSERT_TRUE(b.ok());
  auto l = ComputeFixpoint(b->ground);
  ASSERT_TRUE(l.ok());
  SliceAtom p = AtomOf(*b, "P", {});
  // A path through a symbol absent from the program: nothing holds there.
  FuncId ghost = *b->program.symbols.InternFunction("ghost", 1);
  EXPECT_FALSE(l->Holds(Path({ghost}), p));
  FuncId f = *b->program.symbols.FindFunction("f");
  EXPECT_FALSE(l->Holds(Path({ghost, f}), p));
  EXPECT_TRUE(l->Holds(Path({f}), p));
}

TEST(Fixpoint, StatesRepeatAndChiTableStaysSmall) {
  auto b = Build("P(0).\nP(t) -> P(t+1).");
  ASSERT_TRUE(b.ok());
  auto l = ComputeFixpoint(b->ground);
  ASSERT_TRUE(l.ok());
  // Deep labels resolve through the finite chi table.
  SliceAtom p = AtomOf(*b, "P", {});
  EXPECT_TRUE(l->Holds(NatPath(*b, 200), p));
  EXPECT_LT(l->chi().num_entries(), 10u);
}

TEST(Fixpoint, ChiEntryCapEnforced) {
  auto b = Build(R"(
    P(0, a).
    P(0, b).
    P(t, x) -> P(t+1, x).
  )");
  ASSERT_TRUE(b.ok());
  FixpointOptions options;
  options.max_chi_entries = 0;
  auto l = ComputeFixpoint(b->ground, options);
  EXPECT_TRUE(l.status().IsResourceExhausted());
}

// ---------- bounded brute force ----------

TEST(BoundedFixpoint, MatchesExactEngineOnRegion) {
  auto b = Build(R"(
    Meets(0, Tony).
    Next(Tony, Jan).
    Next(Jan, Tony).
    Meets(t, x), Next(x, y) -> Meets(t+1, y).
  )");
  ASSERT_TRUE(b.ok());
  auto exact = ComputeFixpoint(b->ground);
  ASSERT_TRUE(exact.ok());
  auto bounded = ComputeBoundedFixpoint(b->ground, 12);
  ASSERT_TRUE(bounded.ok()) << bounded.status().ToString();
  SliceAtom tony = AtomOf(*b, "Meets", {"Tony"});
  SliceAtom jan = AtomOf(*b, "Meets", {"Jan"});
  for (int n = 0; n <= 12; ++n) {
    EXPECT_EQ(bounded->Holds(NatPath(*b, n), tony),
              exact->Holds(NatPath(*b, n), tony))
        << n;
    EXPECT_EQ(bounded->Holds(NatPath(*b, n), jan),
              exact->Holds(NatPath(*b, n), jan))
        << n;
  }
  EXPECT_GT(bounded->TotalFacts(), 0u);
  EXPECT_EQ(bounded->num_nodes(), 13u);
}

TEST(BoundedFixpoint, UnderApproximatesWithDownPropagation) {
  // With down-propagation, facts near the bound need derivations that
  // excursion above the bound; the bounded fixpoint soundly misses them.
  auto b = Build(R"(
    P(0).
    P(t) -> P(t+1).
    P(4), P(t) -> Q(t+4).
    Q(t+1) -> Q(t).
  )");
  ASSERT_TRUE(b.ok());
  auto exact = ComputeFixpoint(b->ground);
  ASSERT_TRUE(exact.ok());
  auto bounded = ComputeBoundedFixpoint(b->ground, 6);
  ASSERT_TRUE(bounded.ok());
  SliceAtom q = AtomOf(*b, "Q", {});
  // Soundness: everything the bounded engine derives is in the fixpoint.
  for (int n = 0; n <= 6; ++n) {
    if (bounded->Holds(NatPath(*b, n), q)) {
      EXPECT_TRUE(exact->Holds(NatPath(*b, n), q)) << n;
    }
  }
}

TEST(BoundedFixpoint, BoundSmallerThanTrunkRejected) {
  auto b = Build("P(5).\nP(t) -> P(t+1).");
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(ComputeBoundedFixpoint(b->ground, 2).ok());
}

TEST(Fixpoint, TrunkDeeperThanZero) {
  // Facts at several depths; the trunk covers them all.
  auto b = Build(R"(
    P(3, a).
    P(1, b).
    P(t, x) -> P(t+1, x).
  )");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->ground.trunk_depth(), 3);
  auto l = ComputeFixpoint(b->ground);
  ASSERT_TRUE(l.ok());
  EXPECT_TRUE(l->Holds(NatPath(*b, 3), AtomOf(*b, "P", {"a"})));
  EXPECT_FALSE(l->Holds(NatPath(*b, 2), AtomOf(*b, "P", {"a"})));
  EXPECT_TRUE(l->Holds(NatPath(*b, 2), AtomOf(*b, "P", {"b"})));
  EXPECT_TRUE(l->Holds(NatPath(*b, 9), AtomOf(*b, "P", {"a"})));
  EXPECT_TRUE(l->Holds(NatPath(*b, 9), AtomOf(*b, "P", {"b"})));
}

// RAII guard for tests that assert on the process-global metrics registry.
class ScopedMetrics {
 public:
  ScopedMetrics() {
    MetricsRegistry::Global().Reset();
    EnableMetrics(true);
  }
  ~ScopedMetrics() {
    EnableMetrics(false);
    MetricsRegistry::Global().Reset();
  }
};

TEST(FixpointMetrics, ChiHitsPlusMissesEqualLookups) {
  auto b = Build(R"(
    P(0).
    P(t) -> P(t+1).
    P(t+1) -> Q(t).
  )");
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ScopedMetrics metrics;
  auto l = ComputeFixpoint(b->ground);
  ASSERT_TRUE(l.ok()) << l.status().ToString();
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_GT(snap.counter("chi.lookups"), 0u);
  EXPECT_EQ(snap.counter("chi.hits") + snap.counter("chi.misses"),
            snap.counter("chi.lookups"));
  // Every miss creates a chi entry, and the entry gauge reflects the table.
  EXPECT_EQ(snap.gauge("fixpoint.chi_entries"),
            static_cast<int64_t>(l->chi().num_entries()));
}

TEST(FixpointMetrics, RoundCounterMatchesLabeling) {
  auto b = Build(R"(
    P(0).
    P(t) -> P(t+1).
    Q(3).
    Q(t+1) -> Q(t).
  )");
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ScopedMetrics metrics;
  auto l = ComputeFixpoint(b->ground);
  ASSERT_TRUE(l.ok()) << l.status().ToString();
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.counter("fixpoint.rounds"),
            static_cast<uint64_t>(l->rounds()));
  EXPECT_EQ(snap.gauge("fixpoint.trunk_nodes"),
            static_cast<int64_t>(l->trunk_paths().size()));
  const PhaseSnapshot* phase = snap.phase("fixpoint");
  ASSERT_NE(phase, nullptr);
  EXPECT_EQ(phase->count, 1u);
}

TEST(FixpointMetrics, RoundCounterCappedByMaxRounds) {
  auto b = Build("P(0).\nP(t) -> P(t+1).");
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ScopedMetrics metrics;
  FixpointOptions options;
  options.max_rounds = 1;
  auto l = ComputeFixpoint(b->ground, options);
  EXPECT_TRUE(l.status().IsResourceExhausted());
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  // The counter tracks rounds entered, and the cap aborts in round
  // max_rounds + 1.
  EXPECT_EQ(snap.counter("fixpoint.rounds"), options.max_rounds + 1);
}

}  // namespace
}  // namespace relspec
