// Unit tests for specifications: Algorithm Q's label graph, the graph
// specification (B, F), the equational specification (B, R), and the
// quotient-model certificate.

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/verify.h"

namespace relspec {
namespace {

constexpr const char* kMeets = R"(
  Meets(0, Tony).
  Next(Tony, Jan).
  Next(Jan, Tony).
  Meets(t, x), Next(x, y) -> Meets(t+1, y).
)";

Path NatPath(const FunctionalDatabase& db, int n) {
  FuncId succ = *db.program().symbols.FindFunction("+1");
  std::vector<FuncId> syms(static_cast<size_t>(n), succ);
  return Path(std::move(syms));
}

TEST(LabelGraph, ClusterWalkAgreesWithLabeling) {
  auto db = FunctionalDatabase::FromSource(kMeets);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  const LabelGraph& graph = (*db)->label_graph();
  for (int n = 0; n <= 30; ++n) {
    Path p = NatPath(**db, n);
    uint32_t cl = graph.ClusterOf(p);
    ASSERT_NE(cl, kInvalidId);
    EXPECT_EQ(graph.cluster(cl).label, (*db)->labeling().LabelOf(p)) << n;
  }
}

TEST(LabelGraph, ScopesSatisfyLemmas) {
  auto db = FunctionalDatabase::FromSource(kMeets);
  ASSERT_TRUE(db.ok());
  const LabelGraph& graph = (*db)->label_graph();
  // Lemma 3.1: scope_~ <= 2^gsize; here gsize-ish = 2 atoms -> <= 4.
  EXPECT_LE(graph.EquivalenceScope(), 4u);
  // Lemma 3.2: the congruence scope is finite and >= the equivalence scope.
  EXPECT_GE(graph.CongruenceScope(), graph.EquivalenceScope());
  EXPECT_GT(graph.num_potential(), 0u);
}

TEST(LabelGraph, ClusterCapEnforced) {
  EngineOptions options;
  options.graph.max_clusters = 1;
  auto db = FunctionalDatabase::FromSource(kMeets, options);
  EXPECT_TRUE(db.status().IsResourceExhausted());
}

TEST(GraphSpec, SelfContainedMembership) {
  auto db = FunctionalDatabase::FromSource(kMeets);
  ASSERT_TRUE(db.ok());
  auto spec = (*db)->BuildGraphSpec();
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  PredId meets = *spec->symbols().FindPredicate("Meets");
  ConstId tony = *spec->symbols().FindConstant("Tony");
  ConstId jan = *spec->symbols().FindConstant("Jan");
  for (int n = 0; n <= 20; ++n) {
    EXPECT_EQ(spec->Holds(NatPath(**db, n), meets, {tony}), n % 2 == 0) << n;
    EXPECT_EQ(spec->Holds(NatPath(**db, n), meets, {jan}), n % 2 == 1) << n;
  }
  // Non-functional relations are part of B.
  PredId next = *spec->symbols().FindPredicate("Next");
  EXPECT_TRUE(spec->HoldsGlobal(next, {tony, jan}));
  EXPECT_FALSE(spec->HoldsGlobal(next, {tony, tony}));
}

TEST(GraphSpec, SlicesMatchPaperExample) {
  auto db = FunctionalDatabase::FromSource(kMeets);
  ASSERT_TRUE(db.ok());
  auto spec = (*db)->BuildGraphSpec();
  ASSERT_TRUE(spec.ok());
  // Slice of day 0: {Meets(.,Tony)}; day 1: {Meets(.,Jan)}.
  auto slice0 = spec->SliceOf(NatPath(**db, 0));
  auto slice1 = spec->SliceOf(NatPath(**db, 1));
  ASSERT_EQ(slice0.size(), 1u);
  ASSERT_EQ(slice1.size(), 1u);
  EXPECT_EQ(spec->symbols().constant_name(slice0[0].args[0]), "Tony");
  EXPECT_EQ(spec->symbols().constant_name(slice1[0].args[0]), "Jan");
  EXPECT_GT(spec->num_slice_tuples(), 0u);
  EXPECT_GT(spec->num_edges(), 0u);
  EXPECT_FALSE(spec->ToString().empty());
}

TEST(GraphSpec, UnknownTermsAndAtomsAreFalse) {
  auto db = FunctionalDatabase::FromSource(kMeets);
  ASSERT_TRUE(db.ok());
  auto spec = (*db)->BuildGraphSpec();
  ASSERT_TRUE(spec.ok());
  PredId meets = *spec->symbols().FindPredicate("Meets");
  // A constant the program never mentions.
  EXPECT_FALSE(spec->Holds(NatPath(**db, 0), meets, {9999}));
  // A path through an unknown symbol.
  SymbolTable copy = spec->symbols();
  (void)copy;
  EXPECT_TRUE(spec->SliceOf(Path({kInvalidId - 1})).empty());
}

// ---------- equational specification ----------

TEST(EquationalSpec, AgreesWithGraphSpecEverywhere) {
  auto db = FunctionalDatabase::FromSource(kMeets);
  ASSERT_TRUE(db.ok());
  auto gspec = (*db)->BuildGraphSpec();
  auto espec = (*db)->BuildEquationalSpec();
  ASSERT_TRUE(gspec.ok());
  ASSERT_TRUE(espec.ok());
  PredId meets = *gspec->symbols().FindPredicate("Meets");
  ConstId tony = *gspec->symbols().FindConstant("Tony");
  for (int n = 0; n <= 25; ++n) {
    Path p = NatPath(**db, n);
    EXPECT_EQ(espec->Holds(p, meets, {tony}), gspec->Holds(p, meets, {tony}))
        << n;
  }
}

TEST(EquationalSpec, EquationsRelateEqualStateTerms) {
  auto db = FunctionalDatabase::FromSource(kMeets);
  ASSERT_TRUE(db.ok());
  auto espec = (*db)->BuildEquationalSpec();
  ASSERT_TRUE(espec.ok());
  EXPECT_GT(espec->num_equations(), 0u);
  // Every equation's two sides must be state-equivalent in the labeling.
  for (const auto& [t1, t2] : espec->equations()) {
    EXPECT_EQ((*db)->labeling().LabelOf(t1), (*db)->labeling().LabelOf(t2));
  }
  EXPECT_FALSE(espec->ToString().empty());
}

TEST(EquationalSpec, CongruentRespectsParity) {
  auto db = FunctionalDatabase::FromSource(kMeets);
  ASSERT_TRUE(db.ok());
  auto espec = (*db)->BuildEquationalSpec();
  ASSERT_TRUE(espec.ok());
  // All even days >= frontier are congruent; even vs odd never.
  EXPECT_TRUE(espec->Congruent(NatPath(**db, 1), NatPath(**db, 3)));
  EXPECT_TRUE(espec->Congruent(NatPath(**db, 2), NatPath(**db, 8)));
  EXPECT_FALSE(espec->Congruent(NatPath(**db, 1), NatPath(**db, 2)));
}

TEST(EquationalSpec, GraphSpecMoreEconomicalOnWideStates) {
  // Section 4's remark: when B is large, the graph spec's successor table is
  // a more economical encoding than R. We check both exist and report sizes.
  auto db = FunctionalDatabase::FromSource(R"(
    P(0, a). P(0, b). P(0, c). P(0, d).
    P(t, x) -> P(t+1, x).
  )");
  ASSERT_TRUE(db.ok());
  auto gspec = (*db)->BuildGraphSpec();
  auto espec = (*db)->BuildEquationalSpec();
  ASSERT_TRUE(gspec.ok());
  ASSERT_TRUE(espec.ok());
  EXPECT_GT(gspec->num_slice_tuples(), 0u);
  EXPECT_GT(espec->num_equations(), 0u);
}

TEST(EquationalSpec, ExplainCongruenceUsesR) {
  auto db = FunctionalDatabase::FromSource(kMeets);
  ASSERT_TRUE(db.ok());
  auto espec = (*db)->BuildEquationalSpec();
  ASSERT_TRUE(espec.ok());
  // Day 8 ~ day 2: the proof uses only equations of R (lifted).
  auto proof = espec->ExplainCongruence(NatPath(**db, 8), NatPath(**db, 2));
  ASSERT_TRUE(proof.ok()) << proof.status().ToString();
  EXPECT_GT(proof->NumSteps(), 0u);
  auto text = espec->ExplainCongruenceText(NatPath(**db, 8), NatPath(**db, 2));
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("[asserted]"), std::string::npos);
  // Non-congruent terms: NotFound.
  EXPECT_TRUE(espec->ExplainCongruence(NatPath(**db, 1), NatPath(**db, 2))
                  .status()
                  .IsNotFound());
}

// ---------- certificates ----------

TEST(Verify, AcceptsAllWorkedExamples) {
  for (const char* source : {
           kMeets,
           "Even(0).\nEven(t) -> Even(t+2).",
           "P(a).\nP(b).\nP(x) -> Member(ext(0,x), x).\n"
           "P(y), Member(s,x) -> Member(ext(s,y), y).\n"
           "P(y), Member(s,x) -> Member(ext(s,y), x).",
       }) {
    auto db = FunctionalDatabase::FromSource(source);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_TRUE((*db)->Verify().ok()) << source;
  }
}

TEST(Verify, DetectsTamperedGraph) {
  auto db = FunctionalDatabase::FromSource(kMeets);
  ASSERT_TRUE(db.ok());
  // Corrupt a copy of the label graph: clear a label bit.
  LabelGraph graph = (*db)->label_graph();
  bool corrupted = false;
  for (uint32_t c = 0; c < graph.num_clusters() && !corrupted; ++c) {
    Cluster& cl = const_cast<Cluster&>(graph.cluster(c));
    if (cl.label.Any()) {
      cl.label.Clear();
      corrupted = true;
    }
  }
  ASSERT_TRUE(corrupted);
  EXPECT_FALSE(VerifyQuotientModel(graph, &(*db)->labeling()).ok());
}

}  // namespace
}  // namespace relspec
