// Unit tests for the DATALOG substrate: relations, joins, naive and
// semi-naive evaluation.

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "src/core/engine.h"
#include "src/parser/parser.h"

#include "src/datalog/database.h"
#include "src/datalog/frontend.h"
#include "src/datalog/evaluator.h"
#include "src/datalog/relation.h"

namespace relspec {
namespace datalog {
namespace {

TEST(Relation, InsertDeduplicates) {
  Relation r(2);
  EXPECT_TRUE(r.Insert({1, 2}));
  EXPECT_FALSE(r.Insert({1, 2}));
  EXPECT_TRUE(r.Insert({2, 1}));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains({1, 2}));
  EXPECT_FALSE(r.Contains({9, 9}));
}

TEST(Relation, ProbeByColumnSubset) {
  Relation r(3);
  r.Insert({1, 10, 100});
  r.Insert({1, 20, 200});
  r.Insert({2, 10, 300});
  EXPECT_EQ(r.Probe({0}, {1}).size(), 2u);
  EXPECT_EQ(r.Probe({1}, {10}).size(), 2u);
  EXPECT_EQ(r.Probe({0, 1}, {1, 10}).size(), 1u);
  EXPECT_TRUE(r.Probe({0}, {9}).empty());
  // Index catches up after later inserts.
  r.Insert({1, 30, 400});
  EXPECT_EQ(r.Probe({0}, {1}).size(), 3u);
}

TEST(TupleHash, OrderAndLengthSensitive) {
  TupleHash h;
  EXPECT_NE(h({1, 2}), h({2, 1}));
  EXPECT_NE(h({0}), h({0, 0}));
  EXPECT_NE(h({}), h({0}));
  // Same tuple hashes the same (sanity for the unordered containers).
  EXPECT_EQ(h({7, 8, 9}), h({7, 8, 9}));
}

TEST(TupleHash, DensePairsDoNotCollide) {
  // Regression: the previous FNV-1a-style fold (h ^= v; h *= prime) fed each
  // 32-bit value into the low half of the state only, clustering the dense,
  // correlated ids this engine stores (consecutive ConstIds/TermIds). The
  // splitmix64 chain must keep such families collision-free in practice.
  TupleHash h;
  std::unordered_set<size_t> hashes;
  size_t count = 0;
  for (Value i = 0; i < 200; ++i) {
    for (Value j = 0; j < 200; ++j) {
      hashes.insert(h({i, j}));
      ++count;
    }
  }
  // 40k 64-bit hashes: any birthday collision is ~1e-11 likely; demand none.
  EXPECT_EQ(hashes.size(), count);

  // The low bits alone (what unordered_map buckets actually use) must also
  // spread: with 16 buckets no bucket may hold more than twice its share.
  std::vector<size_t> buckets(16, 0);
  for (size_t v : hashes) ++buckets[v % 16];
  for (size_t b : buckets) EXPECT_LT(b, 2 * count / 16);
}

TEST(TupleHash, ShiftedTuplesSpreadAcrossBuckets) {
  // Tuples {i, i+1, i+2}: maximally correlated elements. Checks low-bit
  // dispersion of the chained mix for triples as well.
  TupleHash h;
  std::unordered_set<size_t> hashes;
  for (Value i = 0; i < 10'000; ++i) hashes.insert(h({i, i + 1, i + 2}));
  EXPECT_EQ(hashes.size(), 10'000u);
}

class TransitiveClosureTest : public ::testing::TestWithParam<Strategy> {
 protected:
  // Builds edge facts for a path graph 0 -> 1 -> ... -> n-1 plus the closure
  // rules, and evaluates.
  EvalStats RunPath(int n, Database* db) {
    PredId edge = 0, reach = 1;
    EXPECT_TRUE(db->Declare(edge, 2).ok());
    EXPECT_TRUE(db->Declare(reach, 2).ok());
    for (int i = 0; i + 1 < n; ++i) {
      db->Insert(edge, {static_cast<Value>(i), static_cast<Value>(i + 1)});
    }
    std::vector<DRule> rules;
    {
      DRule r;  // Reach(x,y) <- Edge(x,y).
      r.num_vars = 2;
      r.head = DAtom{reach, {DTerm::Var(0), DTerm::Var(1)}};
      r.body = {DAtom{edge, {DTerm::Var(0), DTerm::Var(1)}}};
      rules.push_back(r);
    }
    {
      DRule r;  // Reach(x,z) <- Reach(x,y), Edge(y,z).
      r.num_vars = 3;
      r.head = DAtom{reach, {DTerm::Var(0), DTerm::Var(2)}};
      r.body = {DAtom{reach, {DTerm::Var(0), DTerm::Var(1)}},
                DAtom{edge, {DTerm::Var(1), DTerm::Var(2)}}};
      rules.push_back(r);
    }
    EvalOptions opts;
    opts.strategy = GetParam();
    auto stats = Evaluate(rules, db, opts);
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    return *stats;
  }
};

TEST_P(TransitiveClosureTest, ComputesFullClosure) {
  Database db;
  RunPath(8, &db);
  const Relation& reach = db.relation(1);
  EXPECT_EQ(reach.size(), 8u * 7u / 2u);  // all i<j pairs
  EXPECT_TRUE(reach.Contains({0, 7}));
  EXPECT_FALSE(reach.Contains({7, 0}));
}

TEST_P(TransitiveClosureTest, EmptyEdgesFixpointImmediately) {
  Database db;
  RunPath(0, &db);
  EXPECT_EQ(db.relation(1).size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Strategies, TransitiveClosureTest,
                         ::testing::Values(Strategy::kNaive,
                                           Strategy::kSemiNaive),
                         [](const auto& info) {
                           return info.param == Strategy::kNaive ? "Naive"
                                                                 : "SemiNaive";
                         });

TEST(Evaluator, SemiNaiveAndNaiveAgreeOnCyclicGraph) {
  for (Strategy strategy : {Strategy::kNaive, Strategy::kSemiNaive}) {
    Database db;
    PredId edge = 0, reach = 1;
    ASSERT_TRUE(db.Declare(edge, 2).ok());
    ASSERT_TRUE(db.Declare(reach, 2).ok());
    // Two 3-cycles joined at node 0.
    for (auto [a, b] : std::vector<std::pair<Value, Value>>{
             {0, 1}, {1, 2}, {2, 0}, {0, 3}, {3, 4}, {4, 0}}) {
      db.Insert(edge, {a, b});
    }
    std::vector<DRule> rules;
    DRule base;
    base.num_vars = 2;
    base.head = DAtom{reach, {DTerm::Var(0), DTerm::Var(1)}};
    base.body = {DAtom{edge, {DTerm::Var(0), DTerm::Var(1)}}};
    DRule step;
    step.num_vars = 3;
    step.head = DAtom{reach, {DTerm::Var(0), DTerm::Var(2)}};
    step.body = {DAtom{reach, {DTerm::Var(0), DTerm::Var(1)}},
                 DAtom{reach, {DTerm::Var(1), DTerm::Var(2)}}};
    rules = {base, step};
    EvalOptions opts;
    opts.strategy = strategy;
    auto stats = Evaluate(rules, &db, opts);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(db.relation(reach).size(), 25u);  // all 5x5 pairs reachable
  }
}

TEST(Evaluator, SemiNaiveDoesLessWorkThanNaive) {
  Database naive_db, semi_db;
  auto run = [](Strategy strategy, Database* db) {
    PredId edge = 0, reach = 1;
    EXPECT_TRUE(db->Declare(edge, 2).ok());
    EXPECT_TRUE(db->Declare(reach, 2).ok());
    for (int i = 0; i + 1 < 30; ++i) {
      db->Insert(edge, {static_cast<Value>(i), static_cast<Value>(i + 1)});
    }
    DRule base;
    base.num_vars = 2;
    base.head = DAtom{1, {DTerm::Var(0), DTerm::Var(1)}};
    base.body = {DAtom{0, {DTerm::Var(0), DTerm::Var(1)}}};
    DRule step;
    step.num_vars = 3;
    step.head = DAtom{1, {DTerm::Var(0), DTerm::Var(2)}};
    step.body = {DAtom{1, {DTerm::Var(0), DTerm::Var(1)}},
                 DAtom{0, {DTerm::Var(1), DTerm::Var(2)}}};
    EvalOptions opts;
    opts.strategy = strategy;
    auto stats = Evaluate({base, step}, db, opts);
    EXPECT_TRUE(stats.ok());
    return stats->rule_firings;
  };
  size_t naive_firings = run(Strategy::kNaive, &naive_db);
  size_t semi_firings = run(Strategy::kSemiNaive, &semi_db);
  EXPECT_EQ(naive_db.relation(1).size(), semi_db.relation(1).size());
  // Naive re-derives everything each round; semi-naive only touches deltas.
  EXPECT_GT(naive_firings, 2 * semi_firings);
}

TEST(Evaluator, BodilessRuleInsertsFact) {
  for (Strategy strategy : {Strategy::kNaive, Strategy::kSemiNaive}) {
    Database db;
    ASSERT_TRUE(db.Declare(0, 1).ok());
    DRule fact;
    fact.num_vars = 0;
    fact.head = DAtom{0, {DTerm::Val(7)}};
    EvalOptions opts;
    opts.strategy = strategy;
    ASSERT_TRUE(Evaluate({fact}, &db, opts).ok());
    EXPECT_TRUE(db.Contains(0, {7}));
  }
}

TEST(Evaluator, RepeatedVariablesInAtom) {
  Database db;
  ASSERT_TRUE(db.Declare(0, 2).ok());
  ASSERT_TRUE(db.Declare(1, 1).ok());
  db.Insert(0, {1, 1});
  db.Insert(0, {1, 2});
  DRule r;  // Diag(x) <- R(x,x).
  r.num_vars = 1;
  r.head = DAtom{1, {DTerm::Var(0)}};
  r.body = {DAtom{0, {DTerm::Var(0), DTerm::Var(0)}}};
  ASSERT_TRUE(Evaluate({r}, &db).ok());
  EXPECT_EQ(db.relation(1).size(), 1u);
  EXPECT_TRUE(db.Contains(1, {1}));
}

TEST(Evaluator, ConstantsInHeadAndBody) {
  Database db;
  ASSERT_TRUE(db.Declare(0, 2).ok());
  ASSERT_TRUE(db.Declare(1, 2).ok());
  db.Insert(0, {5, 6});
  db.Insert(0, {7, 8});
  DRule r;  // Out(9, y) <- In(5, y).
  r.num_vars = 1;
  r.head = DAtom{1, {DTerm::Val(9), DTerm::Var(0)}};
  r.body = {DAtom{0, {DTerm::Val(5), DTerm::Var(0)}}};
  ASSERT_TRUE(Evaluate({r}, &db).ok());
  EXPECT_EQ(db.relation(1).size(), 1u);
  EXPECT_TRUE(db.Contains(1, {9, 6}));
}

TEST(Evaluator, RejectsNonRangeRestrictedRules) {
  Database db;
  ASSERT_TRUE(db.Declare(0, 1).ok());
  ASSERT_TRUE(db.Declare(1, 1).ok());
  DRule r;
  r.num_vars = 2;
  r.head = DAtom{1, {DTerm::Var(1)}};  // var 1 not in body
  r.body = {DAtom{0, {DTerm::Var(0)}}};
  EXPECT_TRUE(Evaluate({r}, &db).status().IsInvalidArgument());
}

TEST(Evaluator, RejectsUndeclaredPredicates) {
  Database db;
  ASSERT_TRUE(db.Declare(0, 1).ok());
  DRule r;
  r.num_vars = 1;
  r.head = DAtom{5, {DTerm::Var(0)}};
  r.body = {DAtom{0, {DTerm::Var(0)}}};
  EXPECT_TRUE(Evaluate({r}, &db).status().IsFailedPrecondition());
}

TEST(Evaluator, TupleLimitEnforced) {
  Database db;
  ASSERT_TRUE(db.Declare(0, 2).ok());
  ASSERT_TRUE(db.Declare(1, 2).ok());
  for (Value i = 0; i < 50; ++i) db.Insert(0, {i, i + 1});
  DRule base;
  base.num_vars = 2;
  base.head = DAtom{1, {DTerm::Var(0), DTerm::Var(1)}};
  base.body = {DAtom{0, {DTerm::Var(0), DTerm::Var(1)}}};
  DRule step;
  step.num_vars = 3;
  step.head = DAtom{1, {DTerm::Var(0), DTerm::Var(2)}};
  step.body = {DAtom{1, {DTerm::Var(0), DTerm::Var(1)}},
               DAtom{0, {DTerm::Var(1), DTerm::Var(2)}}};
  EvalOptions opts;
  opts.max_tuples = 100;
  EXPECT_TRUE(Evaluate({base, step}, &db, opts).status().IsResourceExhausted());
}

TEST(JoinProject, ProjectsAndDeduplicates) {
  Database db;
  ASSERT_TRUE(db.Declare(0, 2).ok());
  ASSERT_TRUE(db.Declare(1, 2).ok());
  db.Insert(0, {1, 2});
  db.Insert(0, {1, 3});
  db.Insert(1, {2, 9});
  db.Insert(1, {3, 9});
  // ans(x) :- A(x,y), B(y, 9): both y's work, one x.
  std::vector<DAtom> body = {DAtom{0, {DTerm::Var(0), DTerm::Var(1)}},
                             DAtom{1, {DTerm::Var(1), DTerm::Val(9)}}};
  auto result = JoinProject(db, body, 2, {0});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], Tuple{1});
}

// ---------- stratified negation ----------

TEST(Negation, WinMoveGame) {
  // The classic: Win(x) <- Move(x, y), not Win(y), on a path 0->1->2->3.
  // Positions with no move lose; 3 loses, 2 wins, 1 loses, 0 wins... wait:
  // Win(2) via Move(2,3), not Win(3); Win(0) via Move(0,1), not Win(1)?
  // Win(1) would need not Win(2) — false. So Win = {0, 2}.
  Database db;
  ASSERT_TRUE(db.Declare(0, 2).ok());  // Move
  ASSERT_TRUE(db.Declare(1, 1).ok());  // Win
  for (Value i = 0; i < 3; ++i) db.Insert(0, {i, i + 1});
  DRule r;
  r.num_vars = 2;
  r.head = DAtom{1, {DTerm::Var(0)}};
  DAtom move{0, {DTerm::Var(0), DTerm::Var(1)}, false};
  DAtom notwin{1, {DTerm::Var(1)}, true};
  r.body = {move, notwin};
  auto stats = Evaluate({r}, &db);
  // Win is recursive through negation: not stratifiable.
  EXPECT_TRUE(stats.status().IsInvalidArgument());
}

TEST(Negation, ComplementOfReachability) {
  // Unreach(x, y) <- Node(x), Node(y), not Reach(x, y).
  Database db;
  ASSERT_TRUE(db.Declare(0, 2).ok());  // Edge
  ASSERT_TRUE(db.Declare(1, 2).ok());  // Reach
  ASSERT_TRUE(db.Declare(2, 1).ok());  // Node
  ASSERT_TRUE(db.Declare(3, 2).ok());  // Unreach
  db.Insert(0, {0, 1});
  db.Insert(0, {1, 2});
  for (Value v = 0; v < 4; ++v) db.Insert(2, {v});  // node 3 is isolated
  DRule base;
  base.num_vars = 2;
  base.head = DAtom{1, {DTerm::Var(0), DTerm::Var(1)}};
  base.body = {DAtom{0, {DTerm::Var(0), DTerm::Var(1)}}};
  DRule step;
  step.num_vars = 3;
  step.head = DAtom{1, {DTerm::Var(0), DTerm::Var(2)}};
  step.body = {DAtom{1, {DTerm::Var(0), DTerm::Var(1)}},
               DAtom{0, {DTerm::Var(1), DTerm::Var(2)}}};
  DRule comp;
  comp.num_vars = 2;
  comp.head = DAtom{3, {DTerm::Var(0), DTerm::Var(1)}};
  comp.body = {DAtom{2, {DTerm::Var(0)}}, DAtom{2, {DTerm::Var(1)}},
               DAtom{1, {DTerm::Var(0), DTerm::Var(1)}, true}};
  auto stats = Evaluate({base, step, comp}, &db);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // Reach = {(0,1),(0,2),(1,2)}; Unreach = 16 - 3 = 13 pairs.
  EXPECT_EQ(db.relation(1).size(), 3u);
  EXPECT_EQ(db.relation(3).size(), 13u);
  EXPECT_TRUE(db.Contains(3, {3, 0}));
  EXPECT_TRUE(db.Contains(3, {0, 0}));   // reflexive pairs unreachable here
  EXPECT_FALSE(db.Contains(3, {0, 2}));
}

TEST(Negation, StratifyRulesOrdersLayers) {
  // p <- e; q <- p, not r; r <- e: r and p in stratum 0, q above both.
  DRule p;
  p.num_vars = 1;
  p.head = DAtom{1, {DTerm::Var(0)}};
  p.body = {DAtom{0, {DTerm::Var(0)}}};
  DRule r;
  r.num_vars = 1;
  r.head = DAtom{2, {DTerm::Var(0)}};
  r.body = {DAtom{0, {DTerm::Var(0)}}};
  DRule q;
  q.num_vars = 1;
  q.head = DAtom{3, {DTerm::Var(0)}};
  q.body = {DAtom{1, {DTerm::Var(0)}}, DAtom{2, {DTerm::Var(0)}, true}};
  auto strata = StratifyRules({p, q, r});
  ASSERT_TRUE(strata.ok()) << strata.status().ToString();
  ASSERT_EQ(strata->size(), 2u);
  EXPECT_EQ((*strata)[0].size(), 2u);
  EXPECT_EQ((*strata)[1].size(), 1u);
  EXPECT_EQ((*strata)[1][0].head.pred, 3u);
}

TEST(Negation, UnboundNegatedVariableRejected) {
  Database db;
  ASSERT_TRUE(db.Declare(0, 1).ok());
  ASSERT_TRUE(db.Declare(1, 1).ok());
  ASSERT_TRUE(db.Declare(2, 1).ok());
  DRule r;  // P(x) <- E(x), not Q(y): y unbound.
  r.num_vars = 2;
  r.head = DAtom{2, {DTerm::Var(0)}};
  r.body = {DAtom{0, {DTerm::Var(0)}}, DAtom{1, {DTerm::Var(1)}, true}};
  EXPECT_TRUE(Evaluate({r}, &db).status().IsInvalidArgument());
}

TEST(Negation, NegatedAtomAnywhereInBody) {
  // The matcher reorders: a leading negated atom still works.
  Database db;
  ASSERT_TRUE(db.Declare(0, 1).ok());  // E
  ASSERT_TRUE(db.Declare(1, 1).ok());  // Block
  ASSERT_TRUE(db.Declare(2, 1).ok());  // Out
  db.Insert(0, {1});
  db.Insert(0, {2});
  db.Insert(1, {2});
  DRule r;
  r.num_vars = 1;
  r.head = DAtom{2, {DTerm::Var(0)}};
  r.body = {DAtom{1, {DTerm::Var(0)}, true}, DAtom{0, {DTerm::Var(0)}}};
  auto stats = Evaluate({r}, &db);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(db.Contains(2, {1}));
  EXPECT_FALSE(db.Contains(2, {2}));
}

TEST(Negation, JoinProjectWithNegation) {
  Database db;
  ASSERT_TRUE(db.Declare(0, 1).ok());
  ASSERT_TRUE(db.Declare(1, 1).ok());
  db.Insert(0, {1});
  db.Insert(0, {2});
  db.Insert(1, {2});
  std::vector<DAtom> body = {DAtom{1, {DTerm::Var(0)}, true},
                             DAtom{0, {DTerm::Var(0)}}};
  auto result = JoinProject(db, body, 1, {0});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], Tuple{1});
}

// ---------- frontend: text -> relational engine ----------

TEST(Frontend, TransitiveClosureFromText) {
  auto p = ParseProgram(R"(
    Edge(a, b).
    Edge(b, c).
    Edge(c, d).
    Edge(x, y) -> Reach(x, y).
    Reach(x, y), Edge(y, z) -> Reach(x, z).
  )");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  auto db = EvaluateDatalogProgram(*p);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  PredId reach = *p->symbols.FindPredicate("Reach");
  EXPECT_EQ(db->relation(reach).size(), 6u);
  Atom probe;
  probe.pred = reach;
  probe.args = {NfArg::Constant(*p->symbols.FindConstant("a")),
                NfArg::Constant(*p->symbols.FindConstant("d"))};
  auto holds = DatalogHolds(*db, probe);
  ASSERT_TRUE(holds.ok());
  EXPECT_TRUE(*holds);
}

TEST(Frontend, RejectsFunctionalPrograms) {
  auto p = ParseProgram("P(0).\nP(t) -> P(t+1).");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(CompileDatalog(*p).status().IsFailedPrecondition());
}

TEST(Frontend, AgreesWithFunctionalPipelineOnPureDatalog) {
  // The grounding-based path (FunctionalDatabase) and the relational path
  // must produce the same answers on function-free programs.
  constexpr const char* kSource = R"(
    Edge(a, b).
    Edge(b, c).
    Edge(c, a).
    Edge(c, d).
    Edge(x, y) -> Reach(x, y).
    Reach(x, y), Edge(y, z) -> Reach(x, z).
  )";
  auto p = ParseProgram(kSource);
  ASSERT_TRUE(p.ok());
  auto rel = EvaluateDatalogProgram(*p);
  ASSERT_TRUE(rel.ok());
  auto db = relspec::FunctionalDatabase::FromSource(kSource);
  ASSERT_TRUE(db.ok());
  PredId reach = *p->symbols.FindPredicate("Reach");
  std::vector<ConstId> domain = p->ActiveDomain();
  for (ConstId x : domain) {
    for (ConstId y : domain) {
      Atom probe;
      probe.pred = reach;
      probe.args = {NfArg::Constant(x), NfArg::Constant(y)};
      auto a = DatalogHolds(*rel, probe);
      auto b = (*db)->HoldsFact(probe);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(*a, *b);
    }
  }
}

TEST(Frontend, FactsOnlyProgram) {
  auto p = ParseProgram("Likes(a, b).\nLikes(b, a).");
  ASSERT_TRUE(p.ok());
  auto db = EvaluateDatalogProgram(*p);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->TotalTuples(), 2u);
}

TEST(JoinProject, EmptyBodyYieldsOneEmptyMatch) {
  Database db;
  auto result = JoinProject(db, {}, 0, {});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_TRUE(result[0].empty());
}

}  // namespace
}  // namespace datalog
}  // namespace relspec
