// Unit tests for the versioned binary snapshot format (src/core/snapshot.*):
// round trips, header validation, and robustness against corrupted input —
// every malformed byte stream must come back as InvalidArgument, never a
// crash or a silently wrong specification.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/engine.h"
#include "src/core/snapshot.h"
#include "src/core/spec_io.h"

namespace relspec {
namespace {

constexpr char kMeets[] = R"(
  Meets(0, Tony).
  Next(Tony, Jan).  Next(Jan, Tony).
  Meets(t, x), Next(x, y) -> Meets(f(t), y).
)";

constexpr char kLists[] = R"(
  Equal(0).
  Equal(t) -> Equal(a(b(t))).
  Equal(t) -> Grown(a(t)).
)";

StatusOr<GraphSpecification> BuildGraph(const std::string& source) {
  RELSPEC_ASSIGN_OR_RETURN(std::unique_ptr<FunctionalDatabase> db,
                           FunctionalDatabase::FromSource(source));
  return db->BuildGraphSpec();
}

StatusOr<EquationalSpecification> BuildEq(const std::string& source) {
  RELSPEC_ASSIGN_OR_RETURN(std::unique_ptr<FunctionalDatabase> db,
                           FunctionalDatabase::FromSource(source));
  return db->BuildEquationalSpec();
}

TEST(SnapshotTest, GraphRoundTripPreservesBytes) {
  auto spec = BuildGraph(kMeets);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  std::string bin = Snapshot::Serialize(*spec);
  auto reloaded = Snapshot::ParseGraphSpec(bin);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  // Binary and text serializations are both byte-stable across the trip.
  EXPECT_EQ(bin, Snapshot::Serialize(*reloaded));
  EXPECT_EQ(SpecIo::Serialize(*spec), SpecIo::Serialize(*reloaded));
  EXPECT_EQ(spec->num_clusters(), reloaded->num_clusters());
  EXPECT_EQ(spec->num_slice_tuples(), reloaded->num_slice_tuples());
}

TEST(SnapshotTest, GraphRoundTripPreservesMembership) {
  auto spec = BuildGraph(kMeets);
  ASSERT_TRUE(spec.ok());
  auto reloaded = Snapshot::ParseGraphSpec(Snapshot::Serialize(*spec));
  ASSERT_TRUE(reloaded.ok());
  auto tony = spec->symbols().FindConstant("Tony");
  auto jan = spec->symbols().FindConstant("Jan");
  auto meets = spec->symbols().FindPredicate("Meets");
  auto f = spec->symbols().FindFunction("f");
  ASSERT_TRUE(tony.ok() && jan.ok() && meets.ok() && f.ok());
  Path p = Path::Zero();
  for (int d = 0; d <= 9; ++d) {
    EXPECT_EQ(spec->Holds(p, *meets, {*tony}),
              reloaded->Holds(p, *meets, {*tony}));
    EXPECT_EQ(spec->Holds(p, *meets, {*jan}),
              reloaded->Holds(p, *meets, {*jan}));
    p = p.Extend(*f);
  }
}

TEST(SnapshotTest, EquationalRoundTrip) {
  auto spec = BuildEq(kLists);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  std::string bin = Snapshot::Serialize(*spec);
  auto reloaded = Snapshot::ParseEquationalSpec(bin);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(bin, Snapshot::Serialize(*reloaded));
  EXPECT_EQ(spec->num_equations(), reloaded->num_equations());
  // Congruence answers survive the trip.
  for (const auto& [lhs, rhs] : spec->equations()) {
    EXPECT_TRUE(reloaded->Congruent(lhs, rhs));
  }
}

TEST(SnapshotTest, PeekKindDistinguishesSpecs) {
  auto g = BuildGraph(kMeets);
  auto e = BuildEq(kMeets);
  ASSERT_TRUE(g.ok() && e.ok());
  auto gk = Snapshot::PeekKind(Snapshot::Serialize(*g));
  auto ek = Snapshot::PeekKind(Snapshot::Serialize(*e));
  ASSERT_TRUE(gk.ok() && ek.ok());
  EXPECT_EQ(*gk, Snapshot::Kind::kGraph);
  EXPECT_EQ(*ek, Snapshot::Kind::kEquational);
}

TEST(SnapshotTest, KindMismatchIsRejected) {
  auto g = BuildGraph(kMeets);
  ASSERT_TRUE(g.ok());
  auto as_eq = Snapshot::ParseEquationalSpec(Snapshot::Serialize(*g));
  EXPECT_FALSE(as_eq.ok());
  EXPECT_EQ(as_eq.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, EmptyAndTruncatedHeadersAreRejected) {
  for (size_t len : {size_t{0}, size_t{1}, size_t{4}, size_t{19}}) {
    auto spec = Snapshot::ParseGraphSpec(std::string(len, '\0'));
    EXPECT_FALSE(spec.ok()) << len;
    EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument) << len;
  }
}

TEST(SnapshotTest, BadMagicIsRejected) {
  auto g = BuildGraph(kMeets);
  ASSERT_TRUE(g.ok());
  std::string bin = Snapshot::Serialize(*g);
  bin[0] = 'X';
  auto spec = Snapshot::ParseGraphSpec(bin);
  EXPECT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, UnsupportedVersionIsRejected) {
  auto g = BuildGraph(kMeets);
  ASSERT_TRUE(g.ok());
  std::string bin = Snapshot::Serialize(*g);
  bin[4] = static_cast<char>(99);  // version field
  auto spec = Snapshot::ParseGraphSpec(bin);
  EXPECT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, TruncatedBodyIsRejected) {
  auto g = BuildGraph(kMeets);
  ASSERT_TRUE(g.ok());
  std::string bin = Snapshot::Serialize(*g);
  for (size_t len = 20; len < bin.size(); len += 7) {
    auto spec = Snapshot::ParseGraphSpec(bin.substr(0, len));
    EXPECT_FALSE(spec.ok()) << len;
    EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument) << len;
  }
}

// Every single-byte corruption must be rejected (the checksum covers the
// body; header fields are validated individually) — and must never crash.
TEST(SnapshotTest, EveryByteFlipIsRejected) {
  auto g = BuildGraph(kMeets);
  ASSERT_TRUE(g.ok());
  std::string bin = Snapshot::Serialize(*g);
  for (size_t i = 0; i < bin.size(); ++i) {
    std::string corrupt = bin;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x5a);
    auto spec = Snapshot::ParseGraphSpec(corrupt);
    EXPECT_FALSE(spec.ok()) << "flip at byte " << i;
  }
}

TEST(SnapshotTest, AppendedGarbageIsRejected) {
  auto g = BuildGraph(kMeets);
  ASSERT_TRUE(g.ok());
  std::string bin = Snapshot::Serialize(*g) + "trailing";
  auto spec = Snapshot::ParseGraphSpec(bin);
  EXPECT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Forged length prefixes
// ---------------------------------------------------------------------------
//
// The checksum stops accidental corruption, but an adversarial file can carry
// a *valid* checksum over absurd length and count fields. These tests reseal
// the header checksum after planting huge values and verify the parser stays
// bounds-checked: InvalidArgument, never a crash or a multi-gigabyte
// allocation driven by a 4-byte prefix. The checksum below reimplements the
// documented chained-splitmix algorithm, which doubles as a wire-format pin.

constexpr size_t kSnapHeaderSize = 20;  // magic | version | kind | checksum

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t BodyChecksum(std::string_view bytes) {
  uint64_t h = Mix64(0x243f6a8885a308d3ull ^ bytes.size());
  size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    uint64_t word;
    std::memcpy(&word, bytes.data() + i, 8);
    h = Mix64(h ^ word);
  }
  if (i < bytes.size()) {
    uint64_t word = 0;
    std::memcpy(&word, bytes.data() + i, bytes.size() - i);
    h = Mix64(h ^ word);
  }
  return h;
}

void SealChecksum(std::string* bin) {
  uint64_t sum =
      BodyChecksum(std::string_view(*bin).substr(kSnapHeaderSize));
  for (int i = 0; i < 8; ++i) {
    (*bin)[12 + i] = static_cast<char>(sum >> (8 * i));
  }
}

void PatchU32(std::string* bin, size_t off, uint32_t v) {
  for (int i = 0; i < 4; ++i) (*bin)[off + i] = static_cast<char>(v >> (8 * i));
}

void PatchU64(std::string* bin, size_t off, uint64_t v) {
  for (int i = 0; i < 8; ++i) (*bin)[off + i] = static_cast<char>(v >> (8 * i));
}

// Sanity check for the attacks below: resealing an untouched file is a
// byte-level no-op, so the test's checksum matches the library's.
TEST(SnapshotTest, TestChecksumMatchesLibraryChecksum) {
  auto g = BuildGraph(kMeets);
  ASSERT_TRUE(g.ok());
  std::string bin = Snapshot::Serialize(*g);
  std::string resealed = bin;
  SealChecksum(&resealed);
  EXPECT_EQ(bin, resealed);
}

// Every section's u64 length field, replaced with values far beyond the file
// (and with all-ones), must be rejected after the checksum passes.
TEST(SnapshotTest, ForgedSectionLengthBeyondFileIsRejected) {
  auto g = BuildGraph(kMeets);
  ASSERT_TRUE(g.ok());
  const std::string bin = Snapshot::Serialize(*g);
  // Walk the section framing: u32 tag | u64 len | payload, starting at the
  // body. Collect each length field's offset and true value.
  std::vector<std::pair<size_t, uint64_t>> len_fields;
  size_t pos = kSnapHeaderSize;
  while (pos + 12 <= bin.size()) {
    uint64_t len = 0;
    std::memcpy(&len, bin.data() + pos + 4, 8);
    len_fields.emplace_back(pos + 4, len);
    pos += 12 + len;
  }
  ASSERT_EQ(pos, bin.size());
  ASSERT_GT(len_fields.size(), 2u);
  for (auto [off, true_len] : len_fields) {
    const uint64_t evils[] = {~0ull, 1ull << 40,
                              static_cast<uint64_t>(bin.size()), true_len + 1};
    for (uint64_t evil : evils) {
      std::string forged = bin;
      PatchU64(&forged, off, evil);
      SealChecksum(&forged);
      auto spec = Snapshot::ParseGraphSpec(forged);
      EXPECT_FALSE(spec.ok()) << "len field at " << off << " = " << evil;
      EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument)
          << "len field at " << off;
    }
  }
}

// Overwrite every 4-byte-aligned word of the body with 0xffffffff and reseal.
// Count fields become absurd (4 billion symbols from a few-hundred-byte
// file); the parser must bail bounds-checked. Offsets landing inside string
// payloads or boolean flags may legitimately still parse — then the result
// must serialize to a stable canonical form (serialize-parse-serialize is a
// fixed point), never a silently unstable spec.
TEST(SnapshotTest, ForgedCountWordsNeverCrashOrOverAllocate) {
  auto g = BuildGraph(kMeets);
  ASSERT_TRUE(g.ok());
  const std::string bin = Snapshot::Serialize(*g);
  for (size_t off = kSnapHeaderSize; off + 4 <= bin.size(); off += 4) {
    std::string forged = bin;
    PatchU32(&forged, off, 0xffffffffu);
    SealChecksum(&forged);
    auto spec = Snapshot::ParseGraphSpec(forged);
    if (spec.ok()) {
      std::string canon = Snapshot::Serialize(*spec);
      auto again = Snapshot::ParseGraphSpec(canon);
      ASSERT_TRUE(again.ok()) << "word at " << off;
      EXPECT_EQ(Snapshot::Serialize(*again), canon) << "word at " << off;
    } else {
      EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument)
          << "word at " << off;
    }
  }
}

}  // namespace
}  // namespace relspec
