// Unit tests for the versioned binary snapshot format (src/core/snapshot.*):
// round trips, header validation, and robustness against corrupted input —
// every malformed byte stream must come back as InvalidArgument, never a
// crash or a silently wrong specification.

#include <gtest/gtest.h>

#include <string>

#include "src/core/engine.h"
#include "src/core/snapshot.h"
#include "src/core/spec_io.h"

namespace relspec {
namespace {

constexpr char kMeets[] = R"(
  Meets(0, Tony).
  Next(Tony, Jan).  Next(Jan, Tony).
  Meets(t, x), Next(x, y) -> Meets(f(t), y).
)";

constexpr char kLists[] = R"(
  Equal(0).
  Equal(t) -> Equal(a(b(t))).
  Equal(t) -> Grown(a(t)).
)";

StatusOr<GraphSpecification> BuildGraph(const std::string& source) {
  RELSPEC_ASSIGN_OR_RETURN(std::unique_ptr<FunctionalDatabase> db,
                           FunctionalDatabase::FromSource(source));
  return db->BuildGraphSpec();
}

StatusOr<EquationalSpecification> BuildEq(const std::string& source) {
  RELSPEC_ASSIGN_OR_RETURN(std::unique_ptr<FunctionalDatabase> db,
                           FunctionalDatabase::FromSource(source));
  return db->BuildEquationalSpec();
}

TEST(SnapshotTest, GraphRoundTripPreservesBytes) {
  auto spec = BuildGraph(kMeets);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  std::string bin = Snapshot::Serialize(*spec);
  auto reloaded = Snapshot::ParseGraphSpec(bin);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  // Binary and text serializations are both byte-stable across the trip.
  EXPECT_EQ(bin, Snapshot::Serialize(*reloaded));
  EXPECT_EQ(SpecIo::Serialize(*spec), SpecIo::Serialize(*reloaded));
  EXPECT_EQ(spec->num_clusters(), reloaded->num_clusters());
  EXPECT_EQ(spec->num_slice_tuples(), reloaded->num_slice_tuples());
}

TEST(SnapshotTest, GraphRoundTripPreservesMembership) {
  auto spec = BuildGraph(kMeets);
  ASSERT_TRUE(spec.ok());
  auto reloaded = Snapshot::ParseGraphSpec(Snapshot::Serialize(*spec));
  ASSERT_TRUE(reloaded.ok());
  auto tony = spec->symbols().FindConstant("Tony");
  auto jan = spec->symbols().FindConstant("Jan");
  auto meets = spec->symbols().FindPredicate("Meets");
  auto f = spec->symbols().FindFunction("f");
  ASSERT_TRUE(tony.ok() && jan.ok() && meets.ok() && f.ok());
  Path p = Path::Zero();
  for (int d = 0; d <= 9; ++d) {
    EXPECT_EQ(spec->Holds(p, *meets, {*tony}),
              reloaded->Holds(p, *meets, {*tony}));
    EXPECT_EQ(spec->Holds(p, *meets, {*jan}),
              reloaded->Holds(p, *meets, {*jan}));
    p = p.Extend(*f);
  }
}

TEST(SnapshotTest, EquationalRoundTrip) {
  auto spec = BuildEq(kLists);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  std::string bin = Snapshot::Serialize(*spec);
  auto reloaded = Snapshot::ParseEquationalSpec(bin);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(bin, Snapshot::Serialize(*reloaded));
  EXPECT_EQ(spec->num_equations(), reloaded->num_equations());
  // Congruence answers survive the trip.
  for (const auto& [lhs, rhs] : spec->equations()) {
    EXPECT_TRUE(reloaded->Congruent(lhs, rhs));
  }
}

TEST(SnapshotTest, PeekKindDistinguishesSpecs) {
  auto g = BuildGraph(kMeets);
  auto e = BuildEq(kMeets);
  ASSERT_TRUE(g.ok() && e.ok());
  auto gk = Snapshot::PeekKind(Snapshot::Serialize(*g));
  auto ek = Snapshot::PeekKind(Snapshot::Serialize(*e));
  ASSERT_TRUE(gk.ok() && ek.ok());
  EXPECT_EQ(*gk, Snapshot::Kind::kGraph);
  EXPECT_EQ(*ek, Snapshot::Kind::kEquational);
}

TEST(SnapshotTest, KindMismatchIsRejected) {
  auto g = BuildGraph(kMeets);
  ASSERT_TRUE(g.ok());
  auto as_eq = Snapshot::ParseEquationalSpec(Snapshot::Serialize(*g));
  EXPECT_FALSE(as_eq.ok());
  EXPECT_EQ(as_eq.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, EmptyAndTruncatedHeadersAreRejected) {
  for (size_t len : {size_t{0}, size_t{1}, size_t{4}, size_t{19}}) {
    auto spec = Snapshot::ParseGraphSpec(std::string(len, '\0'));
    EXPECT_FALSE(spec.ok()) << len;
    EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument) << len;
  }
}

TEST(SnapshotTest, BadMagicIsRejected) {
  auto g = BuildGraph(kMeets);
  ASSERT_TRUE(g.ok());
  std::string bin = Snapshot::Serialize(*g);
  bin[0] = 'X';
  auto spec = Snapshot::ParseGraphSpec(bin);
  EXPECT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, UnsupportedVersionIsRejected) {
  auto g = BuildGraph(kMeets);
  ASSERT_TRUE(g.ok());
  std::string bin = Snapshot::Serialize(*g);
  bin[4] = static_cast<char>(99);  // version field
  auto spec = Snapshot::ParseGraphSpec(bin);
  EXPECT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, TruncatedBodyIsRejected) {
  auto g = BuildGraph(kMeets);
  ASSERT_TRUE(g.ok());
  std::string bin = Snapshot::Serialize(*g);
  for (size_t len = 20; len < bin.size(); len += 7) {
    auto spec = Snapshot::ParseGraphSpec(bin.substr(0, len));
    EXPECT_FALSE(spec.ok()) << len;
    EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument) << len;
  }
}

// Every single-byte corruption must be rejected (the checksum covers the
// body; header fields are validated individually) — and must never crash.
TEST(SnapshotTest, EveryByteFlipIsRejected) {
  auto g = BuildGraph(kMeets);
  ASSERT_TRUE(g.ok());
  std::string bin = Snapshot::Serialize(*g);
  for (size_t i = 0; i < bin.size(); ++i) {
    std::string corrupt = bin;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x5a);
    auto spec = Snapshot::ParseGraphSpec(corrupt);
    EXPECT_FALSE(spec.ok()) << "flip at byte " << i;
  }
}

TEST(SnapshotTest, AppendedGarbageIsRejected) {
  auto g = BuildGraph(kMeets);
  ASSERT_TRUE(g.ok());
  std::string bin = Snapshot::Serialize(*g) + "trailing";
  auto spec = Snapshot::ParseGraphSpec(bin);
  EXPECT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace relspec
