// Unit tests for the CONGR canonical form (Section 3.6): the rule set is
// database-independent, and LFP(CONGR, B ∪ R) agrees with the specification.

#include <gtest/gtest.h>

#include "src/core/congr.h"
#include "src/core/engine.h"

namespace relspec {
namespace {

constexpr const char* kMeets = R"(
  Meets(0, Tony).
  Next(Tony, Jan).
  Next(Jan, Tony).
  Meets(t, x), Next(x, y) -> Meets(t+1, y).
)";

Path NatPath(const SymbolTable& symbols, int n) {
  FuncId succ = *symbols.FindFunction("+1");
  std::vector<FuncId> syms(static_cast<size_t>(n), succ);
  return Path(std::move(syms));
}

TEST(Congr, RulesTextListsClosureAndTransferRules) {
  auto db = FunctionalDatabase::FromSource(kMeets);
  ASSERT_TRUE(db.ok());
  auto spec = (*db)->BuildEquationalSpec();
  ASSERT_TRUE(spec.ok());
  std::string text = CongrRulesText(*spec);
  EXPECT_NE(text.find("eq(x,x) :- term(x)."), std::string::npos);
  EXPECT_NE(text.find("eq(x,y) :- eq(y,x)."), std::string::npos);
  EXPECT_NE(text.find("eq(x,y) :- eq(x,z), eq(z,y)."), std::string::npos);
  EXPECT_NE(text.find("apply_+1"), std::string::npos);
  EXPECT_NE(text.find("Meets(t,z1) :- Meets(s,z1), eq(s,t)."),
            std::string::npos);
}

TEST(Congr, RulesAreDatabaseIndependent) {
  // Two different databases under the same predicates produce the same
  // CONGR rule text: the canonical-form property.
  auto db1 = FunctionalDatabase::FromSource(kMeets);
  auto db2 = FunctionalDatabase::FromSource(R"(
    Meets(3, Ann).
    Next(Ann, Ann).
    Meets(t, x), Next(x, y) -> Meets(t+1, y).
  )");
  ASSERT_TRUE(db1.ok());
  ASSERT_TRUE(db2.ok());
  auto s1 = (*db1)->BuildEquationalSpec();
  auto s2 = (*db2)->BuildEquationalSpec();
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(CongrRulesText(*s1), CongrRulesText(*s2));
}

TEST(Congr, BoundedEvaluationMatchesSpecification) {
  auto db = FunctionalDatabase::FromSource(kMeets);
  ASSERT_TRUE(db.ok());
  auto spec = (*db)->BuildEquationalSpec();
  ASSERT_TRUE(spec.ok());
  constexpr int kBound = 10;
  auto result = EvaluateCongrBounded(*spec, kBound);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  PredId meets = *spec->symbols().FindPredicate("Meets");
  ConstId tony = *spec->symbols().FindConstant("Tony");
  ConstId jan = *spec->symbols().FindConstant("Jan");
  for (int n = 0; n <= kBound; ++n) {
    Path p = NatPath(spec->symbols(), n);
    EXPECT_EQ(result->Holds(p, meets, {tony}), spec->Holds(p, meets, {tony}))
        << n;
    EXPECT_EQ(result->Holds(p, meets, {jan}), spec->Holds(p, meets, {jan}))
        << n;
  }
  EXPECT_GT(result->stats.tuples_derived, 0u);
}

TEST(Congr, EvenExampleBothStrategies) {
  EngineOptions options;
  options.graph.merge_trunk_frontier = true;  // Section 3.5's R = {(0,2)}
  auto db = FunctionalDatabase::FromSource("Even(0).\nEven(t) -> Even(t+2).",
                                           options);
  ASSERT_TRUE(db.ok());
  auto spec = (*db)->BuildEquationalSpec();
  ASSERT_TRUE(spec.ok());
  for (auto strategy :
       {datalog::Strategy::kNaive, datalog::Strategy::kSemiNaive}) {
    auto result = EvaluateCongrBounded(*spec, 9, strategy);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    PredId even = *spec->symbols().FindPredicate("Even");
    for (int n = 0; n <= 9; ++n) {
      EXPECT_EQ(result->Holds(NatPath(spec->symbols(), n), even, {}),
                n % 2 == 0)
          << n;
    }
    // eq contains the lifted congruence pairs: (1,3) from (0,2).
    uint32_t t1 = result->TermIndex(NatPath(spec->symbols(), 1));
    uint32_t t3 = result->TermIndex(NatPath(spec->symbols(), 3));
    EXPECT_TRUE(result->db.Contains(result->eq_pred, {t1, t3}));
    uint32_t t2 = result->TermIndex(NatPath(spec->symbols(), 2));
    EXPECT_FALSE(result->db.Contains(result->eq_pred, {t1, t2}));
  }
}

TEST(Congr, ListExampleAgreement) {
  auto db = FunctionalDatabase::FromSource(R"(
    P(a).
    P(b).
    P(x) -> Member(ext(0, x), x).
    P(y), Member(s, x) -> Member(ext(s, y), y).
    P(y), Member(s, x) -> Member(ext(s, y), x).
  )");
  ASSERT_TRUE(db.ok());
  auto spec = (*db)->BuildEquationalSpec();
  ASSERT_TRUE(spec.ok());
  auto result = EvaluateCongrBounded(*spec, 5);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  PredId member = *spec->symbols().FindPredicate("Member");
  ConstId a = *spec->symbols().FindConstant("a");
  // Exhaustive agreement over the bounded universe.
  for (const Path& p : result->terms) {
    EXPECT_EQ(result->Holds(p, member, {a}), spec->Holds(p, member, {a}))
        << p.depth();
  }
}

TEST(Congr, BoundTooSmallRejected) {
  auto db = FunctionalDatabase::FromSource("P(4).\nP(t) -> P(t+1).");
  ASSERT_TRUE(db.ok());
  auto spec = (*db)->BuildEquationalSpec();
  ASSERT_TRUE(spec.ok());
  // Representatives reach depth 5; bound 2 cannot host B.
  EXPECT_FALSE(EvaluateCongrBounded(*spec, 2).ok());
}

TEST(Congr, UnknownTermOutsideUniverse) {
  auto db = FunctionalDatabase::FromSource(kMeets);
  ASSERT_TRUE(db.ok());
  auto spec = (*db)->BuildEquationalSpec();
  ASSERT_TRUE(spec.ok());
  auto result = EvaluateCongrBounded(*spec, 3);
  ASSERT_TRUE(result.ok());
  PredId meets = *spec->symbols().FindPredicate("Meets");
  ConstId tony = *spec->symbols().FindConstant("Tony");
  // Depth 4 exceeds the bound: reported absent (not an error).
  EXPECT_FALSE(result->Holds(NatPath(spec->symbols(), 4), meets, {tony}));
}

}  // namespace
}  // namespace relspec
