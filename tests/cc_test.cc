// Unit tests for union-find and the DST80 congruence closure.

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <random>

#include "src/cc/congruence_closure.h"
#include "src/cc/union_find.h"
#include "src/term/symbol_table.h"

namespace relspec {
namespace {

TEST(UnionFind, BasicUnions) {
  UnionFind uf(5);
  EXPECT_EQ(uf.NumSets(), 5u);
  EXPECT_FALSE(uf.Same(0, 1));
  uf.Union(0, 1);
  EXPECT_TRUE(uf.Same(0, 1));
  uf.Union(1, 2);
  EXPECT_TRUE(uf.Same(0, 2));
  EXPECT_FALSE(uf.Same(0, 3));
  EXPECT_EQ(uf.NumSets(), 3u);
  // Idempotent union.
  uf.Union(0, 2);
  EXPECT_EQ(uf.NumSets(), 3u);
}

TEST(UnionFind, GrowsOnDemand) {
  UnionFind uf;
  uf.EnsureSize(2);
  uf.Union(0, 1);
  uf.EnsureSize(10);
  EXPECT_EQ(uf.NumSets(), 9u);
  EXPECT_TRUE(uf.Same(0, 1));
  EXPECT_FALSE(uf.Same(0, 9));
}

TEST(UnionFind, RandomizedAgainstNaive) {
  std::mt19937 rng(42);
  constexpr int kN = 60;
  UnionFind uf(kN);
  std::vector<int> naive(kN);
  for (int i = 0; i < kN; ++i) naive[i] = i;
  auto naive_find = [&](int x) {
    while (naive[x] != x) x = naive[x];
    return x;
  };
  for (int step = 0; step < 500; ++step) {
    int a = static_cast<int>(rng() % kN);
    int b = static_cast<int>(rng() % kN);
    if (step % 3 == 0) {
      uf.Union(static_cast<uint32_t>(a), static_cast<uint32_t>(b));
      naive[naive_find(a)] = naive_find(b);
    } else {
      EXPECT_EQ(uf.Same(static_cast<uint32_t>(a), static_cast<uint32_t>(b)),
                naive_find(a) == naive_find(b));
    }
  }
}

// ---------- congruence closure ----------

class CcFixture : public ::testing::Test {
 protected:
  CcFixture() : cc_(&arena_) {
    f_ = *symbols_.InternFunction("f", 1);
    g_ = *symbols_.InternFunction("g", 1);
  }

  TermId Nat(int n) {  // f^n(0)
    TermId t = arena_.Zero();
    for (int i = 0; i < n; ++i) t = arena_.Apply(f_, t);
    return t;
  }

  SymbolTable symbols_;
  TermArena arena_;
  CongruenceClosure cc_;
  FuncId f_, g_;
};

TEST_F(CcFixture, ReflexiveByDefault) {
  EXPECT_TRUE(cc_.AreCongruent(Nat(3), Nat(3)));
  EXPECT_FALSE(cc_.AreCongruent(Nat(3), Nat(4)));
}

TEST_F(CcFixture, MergePropagatesUpward) {
  // The paper's Section 3.5 example: R = {(0, 2)}.
  cc_.Merge(Nat(0), Nat(2));
  EXPECT_TRUE(cc_.AreCongruent(Nat(0), Nat(2)));
  EXPECT_TRUE(cc_.AreCongruent(Nat(0), Nat(4)));   // lifted twice
  EXPECT_TRUE(cc_.AreCongruent(Nat(1), Nat(3)));   // lifted once
  EXPECT_TRUE(cc_.AreCongruent(Nat(1), Nat(13)));  // odd ~ odd
  EXPECT_FALSE(cc_.AreCongruent(Nat(0), Nat(3)));  // even vs odd
  EXPECT_FALSE(cc_.AreCongruent(Nat(0), Nat(1)));
}

TEST_F(CcFixture, LazyTermsJoinExistingClasses) {
  cc_.Merge(Nat(0), Nat(2));
  // Terms interned after the merge still resolve correctly.
  EXPECT_TRUE(cc_.AreCongruent(Nat(10), Nat(0)));
  EXPECT_FALSE(cc_.AreCongruent(Nat(11), Nat(0)));
}

TEST_F(CcFixture, MixedSymbolsWithDifferentArgsStayApart) {
  FuncId ext = *symbols_.InternFunction("ext", 2);
  ConstId a = symbols_.InternConstant("a");
  ConstId b = symbols_.InternConstant("b");
  TermId ea = arena_.Apply(ext, arena_.Zero(), {a});
  TermId eb = arena_.Apply(ext, arena_.Zero(), {b});
  EXPECT_FALSE(cc_.AreCongruent(ea, eb));
  // ext(x, a) == ext(y, a) follows from x == y...
  TermId one = Nat(1);
  cc_.Merge(arena_.Zero(), one);
  TermId ea1 = arena_.Apply(ext, one, {a});
  EXPECT_TRUE(cc_.AreCongruent(ea, ea1));
  // ...but never across different constant arguments.
  TermId eb1 = arena_.Apply(ext, one, {b});
  EXPECT_FALSE(cc_.AreCongruent(ea, eb1));
  EXPECT_TRUE(cc_.AreCongruent(eb, eb1));
}

TEST_F(CcFixture, TwoSymbolWordCongruence) {
  // a ~ ab (from the list example): then any suffix extension agrees.
  TermId ta = arena_.Apply(f_, arena_.Zero());
  TermId tab = arena_.Apply(g_, ta);
  cc_.Merge(ta, tab);
  // a.b.b ~ a.b ~ a
  TermId tabb = arena_.Apply(g_, tab);
  EXPECT_TRUE(cc_.AreCongruent(tabb, ta));
  // g(0) unaffected.
  EXPECT_FALSE(cc_.AreCongruent(arena_.Apply(g_, arena_.Zero()), ta));
}

TEST_F(CcFixture, TransitivityAcrossSeparateMerges) {
  cc_.Merge(Nat(1), Nat(4));
  cc_.Merge(Nat(4), Nat(7));
  EXPECT_TRUE(cc_.AreCongruent(Nat(1), Nat(7)));
  EXPECT_TRUE(cc_.AreCongruent(Nat(2), Nat(8)));  // lifted
}

TEST_F(CcFixture, NumClassesTracksMerges) {
  Nat(4);  // interns 0..4
  cc_.AreCongruent(Nat(4), Nat(4));
  size_t before = cc_.NumClasses();
  EXPECT_EQ(before, 5u);
  cc_.Merge(Nat(0), Nat(1));
  // 0~1 collapses everything: 1~2, 2~3, 3~4 by congruence.
  EXPECT_EQ(cc_.NumClasses(), 1u);
}

TEST_F(CcFixture, DiamondMergeTriggersCascade) {
  // Merge g(0) with f(0); then f(f(0)) ~ g(f(0)) requires signature
  // propagation through the merged child class... build the diamond first.
  TermId f0 = arena_.Apply(f_, arena_.Zero());
  TermId g0 = arena_.Apply(g_, arena_.Zero());
  TermId ff0 = arena_.Apply(f_, f0);
  TermId fg0 = arena_.Apply(f_, g0);
  EXPECT_FALSE(cc_.AreCongruent(ff0, fg0));
  cc_.Merge(f0, g0);
  EXPECT_TRUE(cc_.AreCongruent(ff0, fg0));
  EXPECT_FALSE(cc_.AreCongruent(ff0, f0));
}

TEST_F(CcFixture, RandomizedAgainstBruteForce) {
  // Random unary-term universes; compare the closure against a brute-force
  // fixpoint of the congruence rules over the bounded universe.
  std::mt19937 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    TermArena arena;
    CongruenceClosure cc(&arena);
    constexpr int kDepth = 8;
    std::vector<TermId> terms;  // f/g words up to depth kDepth... linear f-chain
    // Universe: all f/g words of depth <= 4 (21 terms over 2 symbols).
    std::vector<TermId> layer = {arena.Zero()};
    terms.push_back(arena.Zero());
    for (int d = 0; d < 4; ++d) {
      std::vector<TermId> next;
      for (TermId t : layer) {
        for (FuncId fn : {f_, g_}) {
          TermId u = arena.Apply(fn, t);
          next.push_back(u);
          terms.push_back(u);
        }
      }
      layer = next;
    }
    (void)kDepth;
    // Random equations between terms.
    std::vector<std::pair<TermId, TermId>> eqs;
    for (int e = 0; e < 3; ++e) {
      eqs.emplace_back(terms[rng() % terms.size()], terms[rng() % terms.size()]);
    }
    for (auto [a, b] : eqs) cc.Merge(a, b);

    // Brute force: union-find over the universe, iterate congruence.
    std::map<TermId, TermId> parent;
    for (TermId t : terms) parent[t] = t;
    std::function<TermId(TermId)> find = [&](TermId x) {
      while (parent[x] != x) x = parent[x];
      return x;
    };
    auto unite = [&](TermId a, TermId b) { parent[find(a)] = find(b); };
    for (auto [a, b] : eqs) unite(a, b);
    bool changed = true;
    while (changed) {
      changed = false;
      for (TermId a : terms) {
        for (TermId b : terms) {
          if (find(a) != find(b)) continue;
          for (FuncId fn : {f_, g_}) {
            TermId fa = arena.Apply(fn, a);
            TermId fb = arena.Apply(fn, b);
            if (parent.count(fa) > 0 && parent.count(fb) > 0 &&
                find(fa) != find(fb)) {
              unite(fa, fb);
              changed = true;
            }
          }
        }
      }
    }
    for (TermId a : terms) {
      for (TermId b : terms) {
        // Brute force under-approximates on the clipped frontier (congruence
        // via deeper terms is impossible for unary words), so equality holds.
        EXPECT_EQ(cc.AreCongruent(a, b), find(a) == find(b))
            << "trial " << trial;
      }
    }
  }
}

// ---------- proof production (Explain) ----------

TEST_F(CcFixture, ExplainAssertedEquation) {
  cc_.Merge(Nat(0), Nat(2));
  auto proof = cc_.Explain(Nat(0), Nat(2));
  ASSERT_TRUE(proof.ok()) << proof.status().ToString();
  EXPECT_EQ(proof->lhs, Nat(0));
  EXPECT_EQ(proof->rhs, Nat(2));
  ASSERT_EQ(proof->steps.size(), 1u);
  EXPECT_TRUE(proof->steps[0].asserted);
  EXPECT_EQ(proof->NumSteps(), 1u);
}

TEST_F(CcFixture, ExplainReflexivityIsEmpty) {
  auto proof = cc_.Explain(Nat(3), Nat(3));
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(proof->steps.empty());
  EXPECT_EQ(proof->NumSteps(), 0u);
}

TEST_F(CcFixture, ExplainNonCongruentIsNotFound) {
  cc_.Merge(Nat(0), Nat(2));
  EXPECT_TRUE(cc_.Explain(Nat(0), Nat(1)).status().IsNotFound());
}

TEST_F(CcFixture, ExplainCongruenceLifting) {
  // 4 == 0 follows from 0 == 2 used twice, via congruence.
  cc_.Merge(Nat(0), Nat(2));
  auto proof = cc_.Explain(Nat(4), Nat(0));
  ASSERT_TRUE(proof.ok()) << proof.status().ToString();
  std::vector<std::pair<TermId, TermId>> used;
  proof->CollectAsserted(&used);
  ASSERT_EQ(used.size(), 2u);
  for (const auto& [l, r] : used) {
    // Every asserted step is the single equation (0, 2), in either direction.
    EXPECT_TRUE((l == Nat(0) && r == Nat(2)) || (l == Nat(2) && r == Nat(0)));
  }
  std::string text = proof->ToString(arena_, symbols_);
  EXPECT_NE(text.find("[asserted]"), std::string::npos);
  EXPECT_NE(text.find("[congruence]"), std::string::npos);
}

TEST_F(CcFixture, ExplainTransitiveChain) {
  cc_.Merge(Nat(1), Nat(4));
  cc_.Merge(Nat(4), Nat(7));
  auto proof = cc_.Explain(Nat(1), Nat(7));
  ASSERT_TRUE(proof.ok());
  std::vector<std::pair<TermId, TermId>> used;
  proof->CollectAsserted(&used);
  EXPECT_EQ(used.size(), 2u);  // both equations, no detours
  // Chain endpoints line up.
  ASSERT_FALSE(proof->steps.empty());
  EXPECT_EQ(proof->steps.front().lhs, Nat(1));
  EXPECT_EQ(proof->steps.back().rhs, Nat(7));
  for (size_t i = 0; i + 1 < proof->steps.size(); ++i) {
    EXPECT_EQ(proof->steps[i].rhs, proof->steps[i + 1].lhs);
  }
}

TEST_F(CcFixture, ExplainSurvivesManyMerges) {
  // Random-ish merges; every congruent pair must be explainable with only
  // asserted equations that were actually asserted.
  std::vector<std::pair<TermId, TermId>> eqs = {
      {Nat(0), Nat(3)}, {Nat(1), Nat(5)}, {Nat(2), Nat(2)}, {Nat(4), Nat(0)}};
  for (auto [a, b] : eqs) cc_.Merge(a, b);
  for (int i = 0; i <= 8; ++i) {
    for (int j = 0; j <= 8; ++j) {
      if (!cc_.AreCongruent(Nat(i), Nat(j))) continue;
      auto proof = cc_.Explain(Nat(i), Nat(j));
      ASSERT_TRUE(proof.ok()) << i << "," << j;
      std::vector<std::pair<TermId, TermId>> used;
      proof->CollectAsserted(&used);
      for (const auto& [l, r] : used) {
        bool found = false;
        for (auto [a, b] : eqs) {
          if ((l == a && r == b) || (l == b && r == a)) found = true;
        }
        EXPECT_TRUE(found) << "asserted step not in the equation set";
      }
    }
  }
}

}  // namespace
}  // namespace relspec
