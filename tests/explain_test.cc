// Unit tests for provenance (derivation trees).

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/explain.h"

namespace relspec {
namespace {

constexpr const char* kMeets = R"(
  Meets(0, Tony).
  Next(Tony, Jan).
  Next(Jan, Tony).
  Meets(t, x), Next(x, y) -> Meets(t+1, y).
)";

struct Built {
  std::unique_ptr<FunctionalDatabase> db;
  Path NatPath(int n) const {
    FuncId succ = *db->program().symbols.FindFunction("+1");
    std::vector<FuncId> syms(static_cast<size_t>(n), succ);
    return Path(std::move(syms));
  }
  SliceAtom Atom(const std::string& pred,
                 const std::vector<std::string>& consts) const {
    SliceAtom a;
    a.pred = *db->program().symbols.FindPredicate(pred);
    for (const auto& c : consts) {
      a.args.push_back(*db->program().symbols.FindConstant(c));
    }
    return a;
  }
};

Built Build(const char* source) {
  auto db = FunctionalDatabase::FromSource(source);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return Built{std::move(*db)};
}

TEST(Explain, DatabaseFactIsAnAxiom) {
  Built b = Build(kMeets);
  auto d = ExplainFact(b.db->ground(), b.NatPath(0), b.Atom("Meets", {"Tony"}));
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->kind, Derivation::Kind::kDatabaseFact);
  EXPECT_EQ(d->NumSteps(), 0u);
  EXPECT_TRUE(d->premises.empty());
}

TEST(Explain, ChainDerivationHasOneStepPerDay) {
  Built b = Build(kMeets);
  auto d = ExplainFact(b.db->ground(), b.NatPath(4), b.Atom("Meets", {"Tony"}));
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->kind, Derivation::Kind::kLocalRule);
  // Four rule steps, each consuming the previous day plus a Next fact.
  EXPECT_EQ(d->NumSteps(), 4u);
  // The rendering mentions the database fact at the leaf.
  std::string text = d->ToString(b.db->ground(), b.db->program().symbols);
  EXPECT_NE(text.find("[database fact]"), std::string::npos);
  EXPECT_NE(text.find("Meets(0,Tony)"), std::string::npos);
}

TEST(Explain, UnderivableFactIsNotFound) {
  Built b = Build(kMeets);
  auto d = ExplainFact(b.db->ground(), b.NatPath(3), b.Atom("Meets", {"Tony"}));
  EXPECT_TRUE(d.status().IsNotFound());  // day 3 is Jan's
  // Unknown constant -> outside the universe.
  SliceAtom bogus;
  bogus.pred = b.Atom("Meets", {"Tony"}).pred;
  bogus.args = {9999};
  EXPECT_TRUE(
      ExplainFact(b.db->ground(), b.NatPath(0), bogus).status().IsNotFound());
}

TEST(Explain, GlobalFactExplanation) {
  Built b = Build(R"(
    P(0).
    P(t) -> P(t+1).
    Marker(3).
    P(t), Marker(t) -> Witness(a).
  )");
  PredId witness = *b.db->program().symbols.FindPredicate("Witness");
  ConstId a = *b.db->program().symbols.FindConstant("a");
  auto d = ExplainGlobal(b.db->ground(), witness, {a});
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->kind, Derivation::Kind::kLocalRule);
  // The witness rule fired at depth 3; its P premise has a 3-step chain.
  EXPECT_EQ(d->at.depth(), 3);
  EXPECT_GE(d->NumSteps(), 4u);
}

TEST(Explain, DownPropagationDerivation) {
  Built b = Build(R"(
    Q(3).
    Q(t+1) -> Q(t).
  )");
  auto d = ExplainFact(b.db->ground(), Path::Zero(), b.Atom("Q", {}));
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  // Three downward steps from the database fact at depth 3.
  EXPECT_EQ(d->NumSteps(), 3u);
}

TEST(Explain, AgreesWithMembershipOnRandomDays) {
  Built b = Build(kMeets);
  for (int n = 0; n <= 9; ++n) {
    for (const char* who : {"Tony", "Jan"}) {
      auto holds = b.db->HoldsFactText("Meets(" + std::to_string(n) + ", " +
                                       who + ")");
      ASSERT_TRUE(holds.ok());
      auto d = ExplainFact(b.db->ground(), b.NatPath(n), b.Atom("Meets", {who}));
      EXPECT_EQ(d.ok(), *holds) << n << " " << who;
      if (d.ok()) {
        EXPECT_EQ(d->NumSteps(), static_cast<size_t>(n));
      }
    }
  }
}

TEST(Explain, MixedProgramPlans) {
  Built b = Build(R"(
    At(0, p0).
    Connected(p0, p1).
    Connected(p1, p0).
    At(s, x), Connected(x, y) -> At(move(s, x, y), y).
  )");
  // Explain At(move(move(0,p0,p1),p1,p0), p0): two rule steps.
  FuncId m01 = *b.db->program().symbols.FindFunction("move{p0,p1}");
  FuncId m10 = *b.db->program().symbols.FindFunction("move{p1,p0}");
  Path plan({m01, m10});
  auto d = ExplainFact(b.db->ground(), plan, b.Atom("At", {"p0"}));
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->NumSteps(), 2u);
  // The leaf is the initial situation. (The Connected premises were folded
  // into the ground rule instances by EDB pruning, so they do not appear.)
  std::string text = d->ToString(b.db->ground(), b.db->program().symbols);
  EXPECT_NE(text.find("At(0,p0)"), std::string::npos);
  EXPECT_NE(text.find("[database fact]"), std::string::npos);
}

TEST(Explain, BoundCapGivesNotFound) {
  Built b = Build("P(0).\nP(t) -> P(t+1).");
  ExplainOptions options;
  options.max_bound = 4;
  auto d = ExplainFact(b.db->ground(), b.NatPath(10), b.Atom("P", {}), options);
  EXPECT_TRUE(d.status().IsNotFound());
  // Default bound reaches it.
  auto ok = ExplainFact(b.db->ground(), b.NatPath(10), b.Atom("P", {}));
  EXPECT_TRUE(ok.ok());
}

}  // namespace
}  // namespace relspec
