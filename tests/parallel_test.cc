// Tests for the parallel evaluation runtime: the work-stealing TaskPool and
// the determinism contract of the parallel DATALOG and fixpoint passes
// (docs/ARCHITECTURE.md, "Determinism contract").

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <numeric>
#include <random>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "src/base/metrics.h"
#include "src/base/task_pool.h"
#include "src/core/engine.h"
#include "src/core/query.h"
#include "src/core/spec_io.h"
#include "src/datalog/database.h"
#include "src/datalog/evaluator.h"
#include "src/parser/parser.h"

namespace relspec {
namespace {

using datalog::Database;
using datalog::DAtom;
using datalog::DRule;
using datalog::DTerm;
using datalog::EvalOptions;
using datalog::Evaluate;
using datalog::Relation;
using datalog::Strategy;
using datalog::Tuple;
using datalog::Value;

// ---------------------------------------------------------------------------
// TaskPool
// ---------------------------------------------------------------------------

TEST(TaskPool, SingleThreadedRunsInlineOverFullRange) {
  TaskPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<std::tuple<size_t, size_t, size_t>> calls;
  pool.ParallelFor(3, 17, 1, [&](size_t lo, size_t hi, size_t chunk) {
    calls.emplace_back(lo, hi, chunk);
  });
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0], std::make_tuple(size_t{3}, size_t{17}, size_t{0}));
}

TEST(TaskPool, NumChunksRespectsGrainAndCap) {
  TaskPool pool(4);
  // An empty range has no chunks (ParallelFor invokes nothing); small
  // ranges collapse to one chunk per grain unit.
  EXPECT_EQ(pool.NumChunks(0, 1), 0u);
  EXPECT_EQ(pool.NumChunks(1, 1), 1u);
  EXPECT_EQ(pool.NumChunks(10, 100), 1u);
  // Large ranges are capped at kChunksPerThread per worker.
  EXPECT_EQ(pool.NumChunks(1'000'000, 1),
            4u * TaskPool::kChunksPerThread);
  // The grain bounds the chunk count from above.
  EXPECT_EQ(pool.NumChunks(6, 2), 3u);
}

TEST(TaskPool, ChunksPartitionTheRangeInOrder) {
  TaskPool pool(4);
  const size_t begin = 5, end = 1029;
  std::mutex mu;
  std::vector<std::tuple<size_t, size_t, size_t>> calls;
  pool.ParallelFor(begin, end, 1, [&](size_t lo, size_t hi, size_t chunk) {
    std::lock_guard<std::mutex> g(mu);
    calls.emplace_back(chunk, lo, hi);
  });
  ASSERT_EQ(calls.size(), pool.NumChunks(end - begin, 1));
  std::sort(calls.begin(), calls.end());
  size_t expect_lo = begin;
  for (size_t i = 0; i < calls.size(); ++i) {
    auto [chunk, lo, hi] = calls[i];
    EXPECT_EQ(chunk, i);
    EXPECT_EQ(lo, expect_lo);
    EXPECT_LT(lo, hi);
    expect_lo = hi;
  }
  EXPECT_EQ(expect_lo, end);
}

TEST(TaskPool, ChunkDecompositionIsDeterministic) {
  // Two pools with the same thread count must produce identical chunk
  // boundaries for the same range — the determinism contract hinges on it.
  auto boundaries = [](TaskPool& pool) {
    std::mutex mu;
    std::vector<std::tuple<size_t, size_t, size_t>> calls;
    pool.ParallelFor(0, 777, 3, [&](size_t lo, size_t hi, size_t chunk) {
      std::lock_guard<std::mutex> g(mu);
      calls.emplace_back(chunk, lo, hi);
    });
    std::sort(calls.begin(), calls.end());
    return calls;
  };
  TaskPool a(3), b(3);
  EXPECT_EQ(boundaries(a), boundaries(b));
}

TEST(TaskPool, AllWorkExecutesExactlyOnce) {
  TaskPool pool(8);
  const size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(0, n, 1, [&](size_t lo, size_t hi, size_t) {
    for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(TaskPool, SurvivesManySmallBatches) {
  TaskPool pool(4);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 500; ++round) {
    pool.ParallelFor(0, 7, 1, [&](size_t lo, size_t hi, size_t) {
      total.fetch_add(hi - lo);
    });
  }
  EXPECT_EQ(total.load(), 500u * 7u);
}

TEST(TaskPool, NestedSequentialUseFromChunks) {
  // A chunk callback may do arbitrary work, including heavy allocation;
  // check sums survive a compute-bound fan-out.
  TaskPool pool(4);
  const size_t n = 64;
  std::vector<uint64_t> out(pool.NumChunks(n, 1));
  pool.ParallelFor(0, n, 1, [&](size_t lo, size_t hi, size_t chunk) {
    uint64_t acc = 0;
    for (size_t i = lo; i < hi; ++i) {
      std::vector<uint64_t> scratch(1000, i);
      acc = std::accumulate(scratch.begin(), scratch.end(), acc);
    }
    out[chunk] = acc;
  });
  uint64_t total = std::accumulate(out.begin(), out.end(), uint64_t{0});
  EXPECT_EQ(total, 1000u * (n * (n - 1) / 2));
}

// ---------------------------------------------------------------------------
// DATALOG determinism across thread counts
// ---------------------------------------------------------------------------

// Snapshot of every relation: rows in insertion order.
std::vector<std::vector<Tuple>> Snapshot(const Database& db) {
  std::vector<std::vector<Tuple>> out;
  for (PredId p : db.Predicates()) out.push_back(db.relation(p).CopyRows());
  return out;
}

// Deterministic sparse digraph edges over n nodes.
void InsertRandomEdges(Database* db, PredId edge, int n, int out_degree) {
  uint64_t lcg = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < n; ++i) {
    for (int e = 0; e < out_degree; ++e) {
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      db->Insert(edge, {static_cast<Value>(i),
                        static_cast<Value>((lcg >> 33) % n)});
    }
  }
}

std::vector<DRule> ClosureRules(PredId edge, PredId reach) {
  DRule base;  // Reach(x,y) <- Edge(x,y).
  base.num_vars = 2;
  base.head = DAtom{reach, {DTerm::Var(0), DTerm::Var(1)}};
  base.body = {DAtom{edge, {DTerm::Var(0), DTerm::Var(1)}}};
  DRule step;  // Reach(x,z) <- Reach(x,y), Edge(y,z).
  step.num_vars = 3;
  step.head = DAtom{reach, {DTerm::Var(0), DTerm::Var(2)}};
  step.body = {DAtom{reach, {DTerm::Var(0), DTerm::Var(1)}},
               DAtom{edge, {DTerm::Var(1), DTerm::Var(2)}}};
  return {base, step};
}

class ThreadDeterminismTest : public ::testing::TestWithParam<Strategy> {};

TEST_P(ThreadDeterminismTest, ClosureIsByteIdenticalAcrossThreadCounts) {
  std::vector<std::vector<std::vector<Tuple>>> snapshots;
  std::vector<size_t> derived;
  for (int threads : {1, 2, 8}) {
    Database db;
    ASSERT_TRUE(db.Declare(0, 2).ok());
    ASSERT_TRUE(db.Declare(1, 2).ok());
    InsertRandomEdges(&db, 0, 48, 3);
    EvalOptions opts;
    opts.strategy = GetParam();
    opts.num_threads = threads;
    auto stats = Evaluate(ClosureRules(0, 1), &db, opts);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    snapshots.push_back(Snapshot(db));
    derived.push_back(stats->tuples_derived);
  }
  // Contents AND row order must match the 1-thread run exactly.
  EXPECT_EQ(snapshots[0], snapshots[1]);
  EXPECT_EQ(snapshots[0], snapshots[2]);
  EXPECT_EQ(derived[0], derived[1]);
  EXPECT_EQ(derived[0], derived[2]);
}

INSTANTIATE_TEST_SUITE_P(Strategies, ThreadDeterminismTest,
                         ::testing::Values(Strategy::kSemiNaive,
                                           Strategy::kNaive));

TEST(ThreadDeterminism, StratifiedNegationMatchesSequential) {
  // Unreach(x,y) <- Node(x), Node(y), !Reach(x,y): two strata, the upper one
  // reading the lower through negation.
  const PredId edge = 0, reach = 1, node = 2, unreach = 3;
  auto build = [&](Database* db) {
    ASSERT_TRUE(db->Declare(edge, 2).ok());
    ASSERT_TRUE(db->Declare(reach, 2).ok());
    ASSERT_TRUE(db->Declare(node, 1).ok());
    ASSERT_TRUE(db->Declare(unreach, 2).ok());
    const int n = 24;
    InsertRandomEdges(db, edge, n, 2);
    for (int i = 0; i < n; ++i) db->Insert(node, {static_cast<Value>(i)});
  };
  std::vector<DRule> rules = ClosureRules(edge, reach);
  {
    DRule r;
    r.num_vars = 2;
    r.head = DAtom{unreach, {DTerm::Var(0), DTerm::Var(1)}};
    DAtom neg{reach, {DTerm::Var(0), DTerm::Var(1)}};
    neg.negated = true;
    r.body = {DAtom{node, {DTerm::Var(0)}}, DAtom{node, {DTerm::Var(1)}}, neg};
    rules.push_back(r);
  }
  std::vector<std::vector<std::vector<Tuple>>> snapshots;
  for (int threads : {1, 2, 8}) {
    Database db;
    build(&db);
    EvalOptions opts;
    opts.num_threads = threads;
    auto stats = Evaluate(rules, &db, opts);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    ASSERT_FALSE(db.relation(unreach).empty());
    snapshots.push_back(Snapshot(db));
  }
  EXPECT_EQ(snapshots[0], snapshots[1]);
  EXPECT_EQ(snapshots[0], snapshots[2]);
}

TEST(ThreadDeterminism, ManySmallDeltasStress) {
  // A long path graph: the closure adds one small delta per round for ~n
  // rounds, exercising many tiny parallel passes (and the pool's repeated
  // batch startup/teardown) rather than a few big ones.
  std::vector<std::vector<std::vector<Tuple>>> snapshots;
  for (int threads : {1, 8}) {
    Database db;
    ASSERT_TRUE(db.Declare(0, 2).ok());
    ASSERT_TRUE(db.Declare(1, 2).ok());
    const int n = 96;
    for (int i = 0; i + 1 < n; ++i) {
      db.Insert(0, {static_cast<Value>(i), static_cast<Value>(i + 1)});
    }
    EvalOptions opts;
    opts.num_threads = threads;
    auto stats = Evaluate(ClosureRules(0, 1), &db, opts);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(db.relation(1).size(),
              static_cast<size_t>(n) * (n - 1) / 2);
    snapshots.push_back(Snapshot(db));
  }
  EXPECT_EQ(snapshots[0], snapshots[1]);
}

// ---------------------------------------------------------------------------
// Fixpoint determinism across thread counts
// ---------------------------------------------------------------------------

// A subset-family program: applying set_i keeps all bits and adds bit i,
// so the chi table holds 2^(n-1) distinct entries — enough parallel work
// to cover multi-chunk passes.
std::string SubsetSource(int n) {
  std::string out = "B(0, b0).\n";
  for (int i = 0; i < n; ++i) {
    std::string sym = "set" + std::to_string(i);
    out += "B(t, x) -> B(" + sym + "(t), x).\n";
    out += "B(t, x) -> B(" + sym + "(t), b" + std::to_string(i) + ").\n";
  }
  return out;
}

TEST(ThreadDeterminism, FixpointSpecIsByteIdenticalAcrossThreadCounts) {
  std::vector<std::string> specs;
  for (int threads : {1, 4}) {
    EngineOptions options;
    options.fixpoint.num_threads = threads;
    auto db = FunctionalDatabase::FromSource(SubsetSource(5), options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto spec = (*db)->BuildGraphSpec();
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    specs.push_back(SpecIo::Serialize(*spec));
    // The converged table must be identical, not just the spec.
    EXPECT_GT((*db)->labeling().chi().num_entries(), 8u);
  }
  EXPECT_EQ(specs[0], specs[1]);
}

TEST(ThreadDeterminism, FixpointAnswersMatchSequential) {
  const char* source =
      "OnCall(0, alice).\n"
      "Rotate(alice, bob).\n"
      "Rotate(bob, carol).\n"
      "Rotate(carol, alice).\n"
      "OnCall(t, x), Rotate(x, y) -> OnCall(t+1, y).\n";
  std::vector<std::string> facts = {"OnCall(0, alice)", "OnCall(4, bob)",
                                    "OnCall(7, carol)", "OnCall(9, alice)"};
  std::vector<std::vector<bool>> answers;
  for (int threads : {1, 4}) {
    EngineOptions options;
    options.fixpoint.num_threads = threads;
    auto db = FunctionalDatabase::FromSource(source, options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    std::vector<bool> row;
    for (const std::string& f : facts) {
      auto holds = (*db)->HoldsFactText(f);
      ASSERT_TRUE(holds.ok()) << holds.status().ToString();
      row.push_back(*holds);
    }
    answers.push_back(row);
  }
  EXPECT_EQ(answers[0], answers[1]);
  // The rotation has period 3: alice at t % 3 == 0, bob at 1, carol at 2.
  EXPECT_TRUE(answers[0][0]);
  EXPECT_TRUE(answers[0][1]);
  EXPECT_FALSE(answers[0][2]);
  EXPECT_TRUE(answers[0][3]);
}

// --- shared QueryCache under contention (relspecd's serving cache) ----------

// Counter-reading fixture: the registry is process-global, so start clean
// and leave metrics disabled for the next suite.
class CacheStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().Reset();
    EnableMetrics(true);
  }
  void TearDown() override {
    EnableMetrics(false);
    MetricsRegistry::Global().Reset();
  }
};

TEST_F(CacheStressTest, SharedCacheHoldsBudgetsAndCountersUnderContention) {
  // Real answers up front (the cache charges QueryAnswer::ApproxBytes), so
  // the threads exercise only the cache itself: Lookup / Insert / Clear /
  // size / bytes racing across four threads, with max_entries far below the
  // key population to keep the LRU eviction path hot.
  auto db = FunctionalDatabase::FromSource(
      "OnCall(0, alice).\n"
      "Rotate(alice, bob).\n"
      "Rotate(bob, alice).\n"
      "OnCall(t, x), Rotate(x, y) -> OnCall(t+1, y).\n");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  QueryCache warmup;
  std::vector<std::shared_ptr<const QueryAnswer>> answers;
  for (const char* text :
       {"?(t, x1) OnCall(t, x1).", "?(t) OnCall(t, alice).",
        "?(t) OnCall(t, bob).", "?(x1) Rotate(alice, x1)."}) {
    auto q = ParseQuery(text, (*db)->mutable_program());
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    auto a = AnswerQueryCached(db->get(), *q, &warmup);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    answers.push_back(*a);
  }
  // The warmup misses are not part of the ledger under test.
  MetricsRegistry::Global().Reset();

  QueryCache::Options copt;
  copt.max_entries = 4;
  QueryCache cache(copt);
  constexpr int kThreads = 4;
  constexpr int kRounds = 2000;
  constexpr int kKeys = 16;
  std::atomic<uint64_t> lookups{0};
  std::atomic<uint64_t> hits{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::mt19937 rng(static_cast<unsigned>(t) * 7919u + 3u);
      for (int i = 0; i < kRounds; ++i) {
        std::string key = "q" + std::to_string(rng() % kKeys);
        auto hit = cache.Lookup(1, key);
        lookups.fetch_add(1, std::memory_order_relaxed);
        if (hit != nullptr) {
          hits.fetch_add(1, std::memory_order_relaxed);
        } else {
          cache.Insert(1, key, answers[rng() % answers.size()]);
        }
        // The budgets are invariants, not end states: every concurrent
        // observer must see them hold mid-flight.
        EXPECT_LE(cache.size(), copt.max_entries);
        EXPECT_LE(cache.bytes(), copt.max_bytes);
        if (t == 0 && i % 501 == 500) cache.Clear();
      }
    });
  }
  for (auto& w : workers) w.join();

  // Counter ledger: every Lookup incremented exactly one of hit/miss, and
  // every eviction traces back to a missed insert.
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.counter("cache.hit"), hits.load());
  EXPECT_EQ(snap.counter("cache.hit") + snap.counter("cache.miss"),
            lookups.load());
  EXPECT_GT(snap.counter("cache.evict"), 0u)
      << "max_entries = 4 over 16 keys never evicted";
  EXPECT_LE(snap.counter("cache.evict"), snap.counter("cache.miss"));

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
}

}  // namespace
}  // namespace relspec
