// Crash-recovery matrix: kill -9 a child engine at every WAL failpoint site
// (write, fsync, and every checkpoint-rotation rename boundary), then recover
// in the parent and require byte-identity with a never-crashed reference.
//
// Protocol per (site, seed):
//   1. Precompute reference states ref[0..N]: spec text, snapshot bytes, and
//      fingerprint after each prefix of N randomized delta batches, applied
//      to a plain in-memory engine.
//   2. Fork. The child arms `site=abortK` (SIGKILL on the Kth hit), opens the
//      database durably with fsync=always and auto-checkpointing, and applies
//      the batches via LogAndApplyDeltas, writing one ack byte down a pipe
//      after each acknowledged batch. The pipe survives the SIGKILL.
//   3. The parent counts acks, reaps the child, and recovers with a plain
//      OpenDurable. The recovered state must equal ref[j] — all three of
//      spec text, snapshot bytes, fingerprint — for some prefix j, and
//      because every ack was issued under fsync=always, j >= acks (no
//      acknowledged batch may be lost).
//   4. The parent then applies the remaining batches to the recovered engine
//      and must converge on ref[N] exactly; a final reopen replays the log
//      once more and must land on ref[N] again.

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/base/failpoint.h"
#include "src/base/trace.h"
#include "src/core/engine.h"
#include "src/core/snapshot.h"
#include "src/core/spec_io.h"
#include "src/core/wal.h"
#include "src/serve/client.h"
#include "src/serve/server.h"
#include "tests/random_program.h"

namespace relspec {
namespace {

using testutil::RandomProgramRich;

// One fully rendered engine state; equality means byte-identity.
struct RefState {
  std::string spec_text;
  std::string snapshot_bytes;
  uint64_t fingerprint = 0;

  bool operator==(const RefState& o) const {
    return fingerprint == o.fingerprint && snapshot_bytes == o.snapshot_bytes &&
           spec_text == o.spec_text;
  }
};

RefState Render(FunctionalDatabase* db) {
  RefState s;
  auto spec = db->BuildGraphSpec();
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  if (spec.ok()) {
    s.spec_text = SpecIo::Serialize(*spec);
    s.snapshot_bytes = Snapshot::Serialize(*spec);
  }
  s.fingerprint = db->Fingerprint();
  return s;
}

// The same randomized source + batch sequence the incremental differential
// test uses (tests/differential_test.cc): mixed inserts/deletes over the
// generator's guaranteed P0/R signature, plus one new-constant batch that
// forces the full-rebuild path.
std::string MakeSource(unsigned seed) {
  std::mt19937 rng(seed * 25173u + 13u);
  return RandomProgramRich(&rng);
}

std::vector<std::string> MakeBatches(unsigned seed) {
  std::mt19937 rng(seed * 69069u + 17u);
  std::vector<std::string> pool;
  for (const char* t : {"0", "f(0)", "f(f(0))"}) {
    pool.push_back(std::string("P0(") + t + ", a)");
    pool.push_back(std::string("P0(") + t + ", b)");
  }
  pool.push_back("R(a)");
  pool.push_back("R(b)");

  auto pick = [&rng](size_t n) { return static_cast<size_t>(rng() % n); };
  std::vector<std::string> batches;
  for (int b = 0; b < 4; ++b) {
    std::string text;
    int edits = 1 + static_cast<int>(pick(3));
    for (int e = 0; e < edits; ++e) {
      bool insert = pick(4) >= static_cast<size_t>(b);
      text += std::string(insert ? "+ " : "- ") + pool[pick(pool.size())] +
              ".\n";
    }
    batches.push_back(text);
  }
  batches.push_back("+ P0(f(0), c).\n");
  return batches;
}

EngineOptions SingleThreaded() {
  EngineOptions opts;
  opts.fixpoint.num_threads = 1;  // keep the forked child free of threads
  return opts;
}

DurableOptions DurableEveryTwo() {
  DurableOptions dopts;
  dopts.checkpoint_every = 2;  // exercise rotation mid-run
  return dopts;
}

void CleanWalFiles(const std::string& wal_path) {
  for (const char* suffix :
       {"", ".prev", ".tmp", ".ckpt", ".ckpt.prev", ".ckpt.tmp"}) {
    std::remove((wal_path + suffix).c_str());
  }
}

// Child body (between fork and SIGKILL/_exit): apply every batch durably,
// acking each success down `ack_fd`. Exit codes distinguish unexpected
// failures from the expected kill.
int ChildWorkload(const std::string& failpoint_spec, const std::string& source,
                  const std::vector<std::string>& batches,
                  const std::string& wal_path, int ack_fd) {
  if (!failpoint::Configure(failpoint_spec).ok()) return 40;
  auto db = FunctionalDatabase::OpenDurable(source, wal_path, DurableEveryTwo(),
                                            SingleThreaded());
  if (!db.ok()) return 41;
  for (size_t i = 0; i < batches.size(); ++i) {
    auto stats = (*db)->LogAndApplyDeltas(batches[i], SingleThreaded());
    if (!stats.ok()) return 42;
    char ack = static_cast<char>('0' + i);
    if (::write(ack_fd, &ack, 1) != 1) return 43;
  }
  return 0;
}

// Forks the child workload and returns the number of acked batches. The
// child either dies by SIGKILL at the armed site or exits 0 (the site was
// never hit K times — a clean run, which recovery must handle too).
int RunCrashingChild(const std::string& failpoint_spec,
                     const std::string& source,
                     const std::vector<std::string>& batches,
                     const std::string& wal_path) {
  int pipe_fds[2];
  EXPECT_EQ(::pipe(pipe_fds), 0);
  pid_t pid = ::fork();
  EXPECT_GE(pid, 0);
  if (pid == 0) {
    ::close(pipe_fds[0]);
    int code = ChildWorkload(failpoint_spec, source, batches, wal_path,
                             pipe_fds[1]);
    ::_exit(code);  // no destructors: a crashed process runs none either
  }
  ::close(pipe_fds[1]);
  int acked = 0;
  char buf[16];
  ssize_t n;
  while ((n = ::read(pipe_fds[0], buf, sizeof buf)) > 0) {
    acked += static_cast<int>(n);
  }
  ::close(pipe_fds[0]);
  int wstatus = 0;
  EXPECT_EQ(::waitpid(pid, &wstatus, 0), pid);
  if (WIFSIGNALED(wstatus)) {
    EXPECT_EQ(WTERMSIG(wstatus), SIGKILL) << failpoint_spec;
  } else {
    EXPECT_TRUE(WIFEXITED(wstatus));
    EXPECT_EQ(WEXITSTATUS(wstatus), 0)
        << failpoint_spec << ": child failed before the site fired";
  }
  return acked;
}

// Recovers, locates the recovered state among the reference prefixes,
// enforces acked-durability, converges on ref[N], and reopens once more.
void RecoverAndVerify(const std::string& source,
                      const std::vector<std::string>& batches,
                      const std::vector<RefState>& ref,
                      const std::string& wal_path, int acked) {
  RecoveryStats rec;
  auto db = FunctionalDatabase::OpenDurable(source, wal_path, DurableEveryTwo(),
                                            SingleThreaded(), &rec);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  RefState got = Render(db->get());

  int match = -1;
  for (int j = static_cast<int>(ref.size()) - 1; j >= 0; --j) {
    if (ref[static_cast<size_t>(j)] == got) {
      match = j;
      break;
    }
  }
  ASSERT_GE(match, 0) << "recovered state matches no never-crashed prefix "
                      << "(replayed " << rec.replayed_batches << " batches)";
  // fsync=always acked-durability: an acknowledged batch is never lost.
  EXPECT_GE(match, acked) << "recovery lost an acknowledged batch";

  // Converge: the remaining batches must land exactly on ref[N].
  for (size_t i = static_cast<size_t>(match); i < batches.size(); ++i) {
    auto stats = (*db)->LogAndApplyDeltas(batches[i], SingleThreaded());
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  }
  EXPECT_TRUE(Render(db->get()) == ref.back());
  db->reset();

  // And a final reopen replays whatever the convergence run logged.
  auto reopened = FunctionalDatabase::OpenDurable(
      source, wal_path, DurableEveryTwo(), SingleThreaded());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  RefState re = Render(reopened->get());
  EXPECT_EQ(re.spec_text, ref.back().spec_text);
  EXPECT_TRUE(re.snapshot_bytes == ref.back().snapshot_bytes);
  EXPECT_EQ(re.fingerprint, ref.back().fingerprint);
}

class CrashRecoveryTest : public ::testing::TestWithParam<int> {};

TEST_P(CrashRecoveryTest, KillAtEveryWalSiteRecoversByteIdentical) {
  const unsigned seed = static_cast<unsigned>(GetParam());
  const std::string source = MakeSource(seed);
  const std::vector<std::string> batches = MakeBatches(seed);
  SCOPED_TRACE(source);

  // Reference prefixes on a plain engine (ApplyDeltaText is the same code
  // recovery replays through).
  std::vector<RefState> ref;
  {
    auto db = FunctionalDatabase::FromSource(source, SingleThreaded());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ref.push_back(Render(db->get()));
    for (const std::string& batch : batches) {
      auto stats = (*db)->ApplyDeltaText(batch, SingleThreaded());
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      ref.push_back(Render(db->get()));
    }
  }

  // Every site, with the kill moved across hit positions by the seed so the
  // matrix covers first/middle/late hits of multi-hit sites.
  struct SiteCase {
    const char* site;
    int hit_spread;  // kill on hit 1 + seed % hit_spread
  };
  const SiteCase kSites[] = {
      {"wal.create.write", 1},
      {"wal.create.synced", 1},
      {"wal.append.write", 3},
      {"wal.append.written", 3},
      {"wal.append.acked", 3},
      {"wal.fsync", 3},
      {"wal.checkpoint.write_ckpt", 2},
      {"wal.checkpoint.write_newlog", 2},
      {"wal.checkpoint.rename_ckpt_prev", 2},
      {"wal.checkpoint.rename_wal_prev", 2},
      {"wal.checkpoint.rename_ckpt", 2},
      {"wal.checkpoint.rename_wal", 2},
      {"wal.checkpoint.done", 2},
  };

  const std::string wal_path = ::testing::TempDir() + "crash_seed" +
                               std::to_string(seed) + ".wal";
  for (const SiteCase& sc : kSites) {
    const int kill_hit = 1 + static_cast<int>(seed) % sc.hit_spread;
    const std::string spec =
        std::string(sc.site) + "=abort" + std::to_string(kill_hit);
    SCOPED_TRACE(spec);
    CleanWalFiles(wal_path);
    int acked = RunCrashingChild(spec, source, batches, wal_path);
    RecoverAndVerify(source, batches, ref, wal_path, acked);
  }
  CleanWalFiles(wal_path);
}

// The torn-tail truncation boundary: a crash *during a previous recovery's*
// ftruncate of garbage tail bytes must itself be recoverable.
TEST_P(CrashRecoveryTest, KillDuringTornTailTruncationRecovers) {
  const unsigned seed = static_cast<unsigned>(GetParam());
  const std::string source = MakeSource(seed);
  const std::vector<std::string> batches = MakeBatches(seed);
  const std::string wal_path = ::testing::TempDir() + "crash_trunc_seed" +
                               std::to_string(seed) + ".wal";
  CleanWalFiles(wal_path);

  std::vector<RefState> ref;
  {
    auto db = FunctionalDatabase::FromSource(source, SingleThreaded());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ref.push_back(Render(db->get()));
    for (const std::string& batch : batches) {
      auto stats = (*db)->ApplyDeltaText(batch, SingleThreaded());
      ASSERT_TRUE(stats.ok());
      ref.push_back(Render(db->get()));
    }
  }

  // Build a durable run, then tear the log tail by hand (the moral
  // equivalent of a kill mid-write(2), which a failpoint cannot produce
  // because the record write is a single syscall).
  {
    auto db = FunctionalDatabase::OpenDurable(source, wal_path,
                                              DurableEveryTwo(),
                                              SingleThreaded());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    for (const std::string& batch : batches) {
      ASSERT_TRUE((*db)->LogAndApplyDeltas(batch, SingleThreaded()).ok());
    }
  }
  auto bytes = DeltaWal::ReadFile(wal_path);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(DeltaWal::WriteFileDurable(
                  wal_path, *bytes + "\x09\x00\x00\x00torn", false)
                  .ok());

  // A child recovering this log dies exactly at the truncate site...
  int acked = RunCrashingChild("wal.recover.truncate=abort", source, {},
                               wal_path);
  EXPECT_EQ(acked, 0);
  // ...and the parent's recovery still lands on the full reference state.
  RecoveryStats rec;
  auto db = FunctionalDatabase::OpenDurable(source, wal_path, DurableEveryTwo(),
                                            SingleThreaded(), &rec);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE(Render(db->get()) == ref.back());
  CleanWalFiles(wal_path);
}

// Under fsync=batch an unsynced acknowledged batch MAY be lost, but recovery
// must still land on some exact prefix — never a torn or reordered state.
TEST_P(CrashRecoveryTest, BatchFsyncCrashRecoversToExactPrefix) {
  const unsigned seed = static_cast<unsigned>(GetParam());
  if (seed >= 5) GTEST_SKIP() << "prefix-consistency spot check: 5 seeds";
  const std::string source = MakeSource(seed);
  const std::vector<std::string> batches = MakeBatches(seed);
  const std::string wal_path = ::testing::TempDir() + "crash_batch_seed" +
                               std::to_string(seed) + ".wal";
  CleanWalFiles(wal_path);

  std::vector<RefState> ref;
  {
    auto db = FunctionalDatabase::FromSource(source, SingleThreaded());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ref.push_back(Render(db->get()));
    for (const std::string& batch : batches) {
      ASSERT_TRUE((*db)->ApplyDeltaText(batch, SingleThreaded()).ok());
      ref.push_back(Render(db->get()));
    }
  }

  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::close(pipe_fds[0]);
    if (!failpoint::Configure("wal.append.acked=abort3").ok()) ::_exit(40);
    DurableOptions dopts;
    dopts.wal.fsync = FsyncMode::kBatch;
    dopts.wal.batch_every = 2;
    auto db = FunctionalDatabase::OpenDurable(source, wal_path, dopts,
                                              SingleThreaded());
    if (!db.ok()) ::_exit(41);
    for (const std::string& batch : batches) {
      if (!(*db)->LogAndApplyDeltas(batch, SingleThreaded()).ok()) ::_exit(42);
      char ack = '.';
      if (::write(pipe_fds[1], &ack, 1) != 1) ::_exit(43);
    }
    ::_exit(0);
  }
  ::close(pipe_fds[1]);
  char buf[16];
  while (::read(pipe_fds[0], buf, sizeof buf) > 0) {
  }
  ::close(pipe_fds[0]);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);

  DurableOptions dopts;
  dopts.wal.fsync = FsyncMode::kBatch;
  dopts.wal.batch_every = 2;
  auto db = FunctionalDatabase::OpenDurable(source, wal_path, dopts,
                                            SingleThreaded());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  RefState got = Render(db->get());
  bool is_prefix = false;
  for (const RefState& r : ref) is_prefix = is_prefix || r == got;
  EXPECT_TRUE(is_prefix) << "recovered state is not an exact prefix";
  CleanWalFiles(wal_path);
}

// ---------------------------------------------------------------------------
// Daemon chaos: the same kill matrix, but the updates arrive over the RSRV
// socket and the acks are the daemon's update *replies* (durable=true under
// fsync=always). A SIGKILLed daemon must preserve every replied-to update.

// Child body: serve a durable engine on a unix socket, inline execution
// (threads=1: no threads in the forked child), ready byte once listening.
int DaemonChildWorkload(const std::string& failpoint_spec,
                        const std::string& source, const std::string& wal_path,
                        const std::string& socket_path, int ready_fd) {
  if (!failpoint::Configure(failpoint_spec).ok()) return 40;
  auto db = FunctionalDatabase::OpenDurable(source, wal_path, DurableEveryTwo(),
                                            SingleThreaded());
  if (!db.ok()) return 41;
  serve::ServerOptions options;
  options.unix_path = socket_path;
  options.threads = 1;
  auto server = serve::Server::Create(std::move(db).value(), options);
  if (!server.ok()) return 42;
  char ready = '!';
  if (::write(ready_fd, &ready, 1) != 1) return 43;
  ::close(ready_fd);
  return (*server)->Serve().ok() ? 0 : 44;
}

// Forks the serving child, pushes every batch through a ServeClient, and
// returns how many got an OK durable reply before the armed site killed the
// daemon (or, if the site never fired, before the parent's own SIGKILL — a
// daemon crash is a crash either way, there is no drain).
int RunCrashingDaemon(const std::string& failpoint_spec,
                      const std::string& source,
                      const std::vector<std::string>& batches,
                      const std::string& wal_path,
                      const std::string& socket_path) {
  int ready_fds[2];
  EXPECT_EQ(::pipe(ready_fds), 0);
  pid_t pid = ::fork();
  EXPECT_GE(pid, 0);
  if (pid == 0) {
    ::close(ready_fds[0]);
    ::_exit(DaemonChildWorkload(failpoint_spec, source, wal_path, socket_path,
                                ready_fds[1]));
  }
  ::close(ready_fds[1]);
  char ready = 0;
  ssize_t got = ::read(ready_fds[0], &ready, 1);
  ::close(ready_fds[0]);
  EXPECT_EQ(got, 1) << failpoint_spec << ": daemon died before listening";
  int acked = 0;
  if (got == 1) {
    auto client = serve::ServeClient::Connect(socket_path);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    if (client.ok()) {
      for (const std::string& batch : batches) {
        auto result = (*client)->Update(batch);
        if (!result.ok()) break;  // the armed site fired mid-request
        EXPECT_TRUE(result->durable) << failpoint_spec;
        ++acked;
      }
    }
  }
  ::kill(pid, SIGKILL);
  int wstatus = 0;
  EXPECT_EQ(::waitpid(pid, &wstatus, 0), pid);
  EXPECT_TRUE(WIFSIGNALED(wstatus) && WTERMSIG(wstatus) == SIGKILL)
      << failpoint_spec;
  return acked;
}

TEST_P(CrashRecoveryTest, DaemonKillAtWalSitesPreservesAckedUpdates) {
  const unsigned seed = static_cast<unsigned>(GetParam());
  const std::string source = MakeSource(seed);
  const std::vector<std::string> batches = MakeBatches(seed);
  SCOPED_TRACE(source);

  std::vector<RefState> ref;
  {
    auto db = FunctionalDatabase::FromSource(source, SingleThreaded());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ref.push_back(Render(db->get()));
    for (const std::string& batch : batches) {
      auto stats = (*db)->ApplyDeltaText(batch, SingleThreaded());
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      ref.push_back(Render(db->get()));
    }
  }

  // A representative slice of the WAL matrix (the full sweep above already
  // covers every site in-process; here the point is the socket ack path).
  struct SiteCase {
    const char* site;
    int hit_spread;
  };
  const SiteCase kSites[] = {
      {"wal.append.write", 3},
      {"wal.append.acked", 3},
      {"wal.fsync", 3},
      {"wal.checkpoint.rename_wal", 2},
  };

  const std::string wal_path = ::testing::TempDir() + "daemon_crash_seed" +
                               std::to_string(seed) + ".wal";
  const std::string socket_path = ::testing::TempDir() + "daemon_crash_seed" +
                                  std::to_string(seed) + ".sock";
  for (const SiteCase& sc : kSites) {
    const int kill_hit = 1 + static_cast<int>(seed) % sc.hit_spread;
    const std::string spec =
        std::string(sc.site) + "=abort" + std::to_string(kill_hit);
    SCOPED_TRACE(spec);
    CleanWalFiles(wal_path);
    std::remove(socket_path.c_str());
    int acked =
        RunCrashingDaemon(spec, source, batches, wal_path, socket_path);
    RecoverAndVerify(source, batches, ref, wal_path, acked);
  }
  CleanWalFiles(wal_path);
  std::remove(socket_path.c_str());
}

// Graceful shutdown is the opposite contract: RequestShutdown (exactly what
// relspecd's SIGTERM handler calls) must reply to the request already on the
// wire, flush a contract-valid trace, and leave the WAL replayable.
TEST_P(CrashRecoveryTest, DaemonShutdownDrainsInFlightRepliesAndTrace) {
  const unsigned seed = static_cast<unsigned>(GetParam());
  if (seed >= 5) GTEST_SKIP() << "drain spot check: 5 seeds";
  const std::string source = MakeSource(seed);
  const std::vector<std::string> batches = MakeBatches(seed);
  const std::string wal_path = ::testing::TempDir() + "daemon_drain_seed" +
                               std::to_string(seed) + ".wal";
  const std::string socket_path = ::testing::TempDir() + "daemon_drain_seed" +
                                  std::to_string(seed) + ".sock";
  CleanWalFiles(wal_path);
  std::remove(socket_path.c_str());

  EnableEventTrace(true);
  Tracer::Global().Reset();
  uint64_t fp_after_updates = 0;
  {
    auto db = FunctionalDatabase::OpenDurable(source, wal_path,
                                              DurableEveryTwo(),
                                              SingleThreaded());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    serve::ServerOptions options;
    options.unix_path = socket_path;
    options.threads = 2;
    auto server = serve::Server::Create(std::move(db).value(), options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    Status served = Status::Internal("never served");
    std::thread serving([&] { served = (*server)->Serve(); });

    auto client = serve::ServeClient::Connect(socket_path);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    for (const std::string& batch : batches) {
      auto result = (*client)->Update(batch);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_TRUE(result->durable);
      fp_after_updates = result->fingerprint;
    }

    // Put a ping on the wire, then shut down before reading the reply. The
    // drain's final read pass must harvest the frame and answer it.
    serve::RequestHeader ping;
    ping.type = serve::RequestType::kPing;
    ping.request_id = 777;
    ASSERT_TRUE((*client)->SendRaw(serve::EncodeRequest(ping, "")).ok());
    (*server)->RequestShutdown();
    auto reply = (*client)->ReadReply();
    ASSERT_TRUE(reply.ok()) << "drain dropped an in-flight request: "
                            << reply.status().ToString();
    EXPECT_EQ(reply->request_id, 777u);
    EXPECT_TRUE(reply->ok());

    serving.join();
    EXPECT_TRUE(served.ok()) << served.ToString();
  }
  EnableEventTrace(false);
  TraceSummary exported;
  std::string json = Tracer::Global().ExportChromeJson(&exported);
  auto summary = ValidateChromeTraceJson(json);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_GT(summary->begins + summary->instants, 0u)
      << "the serving run recorded no trace events";

  // The drained WAL replays to the exact acked state.
  auto reopened = FunctionalDatabase::OpenDurable(
      source, wal_path, DurableEveryTwo(), SingleThreaded());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->Fingerprint(), fp_after_updates);
  CleanWalFiles(wal_path);
  std::remove(socket_path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashRecoveryTest, ::testing::Range(0, 15));

}  // namespace
}  // namespace relspec
