#!/usr/bin/env bash
# Regenerates BENCH_baseline.json — the committed perf baseline the CI perf
# gate (tools/bench_compare) diffs fresh runs against. See docs/SERVING.md.
#
# Usage: tools/regen_baseline.sh [BUILD_DIR]   (default: build)
#
# Eight suites:
#   bench_query  representative E18 microbenchmarks (cache, snapshot warm
#                start) from bench/bench_query.cc
#   bench_trace  representative E19 tracer-ablation numbers from
#                bench/bench_trace.cc
#   bench_delta  representative E21 incremental-maintenance numbers
#                (shallow repair vs full recompute, noop batch) from
#                bench/bench_delta.cc
#   bench_wal    representative E26 durability numbers from
#                bench/bench_wal.cc — only the fsync-free paths (append,
#                scan, durable update with fsync=off, recovery): device
#                sync latency on shared runners is too noisy to gate
#   bench_slowlog  E28 slow-query audit log ablation (recording disabled /
#                sampled / always-on / full-ring JSONL dump) from
#                bench/bench_slowlog.cc
#   bench_serve  a fixed-seed serving session from relspec_bench_serve
#                (the same flags the CI perf job uses)
#   bench_serve_durable  the same schedule served through per-lane WALs
#                (update mix, fsync=batch, checkpoint rotation) — the CI
#                durable replay, which also recovery-checks every lane
#   bench_serve_daemon  the update-free schedule replayed over the RSRV
#                socket against a live relspecd (--connect), so the gate
#                also covers the wire protocol + daemon dispatch overhead
#
# Thresholds are deliberately generous (default 3.0 = 4x allowed) because
# CI runs on shared 1-core containers where absolute times swing wildly;
# the gate exists to catch order-of-magnitude regressions, not 10% drifts.
# Rerun this script on the reference machine and commit the result whenever
# an intentional perf change lands.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake --build "$BUILD_DIR" -j "$(nproc)" --target \
    bench_query --target bench_trace --target bench_delta \
    --target bench_wal --target bench_slowlog \
    --target relspec_bench_serve --target relspecd >/dev/null

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "== bench_query =="
"$BUILD_DIR"/bench/bench_query \
    --benchmark_filter='BM_Query_(Incremental|CachedWarm)/8$|BM_Query_(ColdStartPipeline|WarmStartSnapshot)/14$' \
    --benchmark_min_time=0.05 --benchmark_format=json \
    > "$TMP/query.json"

echo "== bench_trace =="
"$BUILD_DIR"/bench/bench_trace \
    --benchmark_filter='BM_Trace_Disabled_CallSite$|BM_Trace_Enabled_Idle$|BM_Trace_Export$' \
    --benchmark_min_time=0.05 --benchmark_format=json \
    > "$TMP/trace.json"

echo "== bench_delta =="
"$BUILD_DIR"/bench/bench_delta \
    --benchmark_filter='BM_Delta_(ShallowRepair|FullRecompute)/14$|BM_Delta_NoopBatch$' \
    --benchmark_min_time=0.05 --benchmark_format=json \
    > "$TMP/delta.json"

echo "== bench_wal =="
"$BUILD_DIR"/bench/bench_wal \
    --benchmark_filter='BM_Wal_Append/0$|BM_Wal_ScanBytes/512$|BM_Wal_DurableUpdate/0$|BM_Wal_Recover/16$' \
    --benchmark_min_time=0.05 --benchmark_format=json \
    > "$TMP/wal.json"

echo "== bench_slowlog =="
"$BUILD_DIR"/bench/bench_slowlog \
    --benchmark_filter='BM_Slowlog_(Disabled|Sampled|AlwaysOn|Dump)$' \
    --benchmark_min_time=0.05 --benchmark_format=json \
    > "$TMP/slowlog.json"

echo "== bench_serve =="
"$BUILD_DIR"/tools/relspec_bench_serve \
    --qps 1500 --requests 3000 --clients 2 --seed 42 --population 64 \
    --slow-ms 5 --out "$TMP/serve.json"

echo "== bench_serve_durable =="
"$BUILD_DIR"/tools/relspec_bench_serve \
    --qps 1500 --requests 1500 --clients 2 --seed 42 --population 64 \
    --slow-ms 5 \
    --mix membership=40,cached=25,uncached=10,snapshot=5,update=20 \
    --wal "$TMP/serve_wal" --fsync batch --checkpoint-every 64 \
    --suite-name bench_serve_durable --out "$TMP/serve_durable.json"

echo "== bench_serve_daemon =="
"$BUILD_DIR"/tools/relspecd --rotation 8 --socket "$TMP/daemon.sock" \
    >"$TMP/daemon.log" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 100); do
  [ -S "$TMP/daemon.sock" ] && break
  sleep 0.1
done
"$BUILD_DIR"/tools/relspec_bench_serve \
    --qps 1500 --requests 1500 --clients 2 --seed 42 --population 64 \
    --slow-ms 5 --connect "$TMP/daemon.sock" \
    --suite-name bench_serve_daemon --out "$TMP/serve_daemon.json"
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"

python3 - "$TMP/query.json" "$TMP/trace.json" "$TMP/delta.json" \
    "$TMP/wal.json" "$TMP/slowlog.json" "$TMP/serve.json" \
    "$TMP/serve_durable.json" "$TMP/serve_daemon.json" \
    BENCH_baseline.json <<'EOF'
import json, sys

def suite_from_gbench(path):
    """Google-benchmark JSON -> {metric: {value, dir}} (real_time, ns)."""
    metrics = {}
    with open(path) as f:
        for b in json.load(f)["benchmarks"]:
            name = b["name"].replace("/", "_")
            assert b["time_unit"] in ("ns", "us", "ms"), b["time_unit"]
            scale = {"ns": 1, "us": 1e3, "ms": 1e6}[b["time_unit"]]
            metrics[name + "_ns"] = {
                "value": round(b["real_time"] * scale, 3),
                "dir": "lower",
            }
    return metrics

baseline = {
    "schema": "relspec-bench-v1",
    "note": "committed perf baseline; regenerate with tools/regen_baseline.sh "
            "and commit whenever an intentional perf change lands",
    "suites": {
        "bench_query": {
            "thresholds": {"default": 3.0},
            "metrics": suite_from_gbench(sys.argv[1]),
        },
        "bench_trace": {
            "thresholds": {"default": 3.0},
            "metrics": suite_from_gbench(sys.argv[2]),
        },
        "bench_delta": {
            "thresholds": {"default": 3.0},
            "metrics": suite_from_gbench(sys.argv[3]),
        },
        "bench_wal": {
            "thresholds": {"default": 3.0},
            "metrics": suite_from_gbench(sys.argv[4]),
        },
        "bench_slowlog": {
            "thresholds": {"default": 3.0},
            "metrics": suite_from_gbench(sys.argv[5]),
        },
        # The serve reports already carry their suites in gate-ready form.
        "bench_serve": json.load(open(sys.argv[6]))["suites"]["bench_serve"],
        "bench_serve_durable":
            json.load(open(sys.argv[7]))["suites"]["bench_serve_durable"],
        "bench_serve_daemon":
            json.load(open(sys.argv[8]))["suites"]["bench_serve_daemon"],
    },
}
with open(sys.argv[9], "w") as f:
    json.dump(baseline, f, indent=2)
    f.write("\n")
total = sum(len(s["metrics"]) for s in baseline["suites"].values())
print(f"wrote {sys.argv[9]}: {len(baseline['suites'])} suites, "
      f"{total} metrics")
EOF
