#!/usr/bin/env bash
# CTest driver for the --trace-out timeline contract.
#
# Usage: check_trace.sh CLI_BINARY EXAMPLES_DIR TRACE_CHECK_BINARY
#
# Runs a threaded pipeline with --trace-out and validates the emitted Chrome
# trace-event JSON: structurally valid (B/E matched, timestamps monotone per
# lane), carrying a meaningful number of events, with the main thread and at
# least one TaskPool worker registered as named lanes.
set -u

cli="$1"
examples="$2"
trace_check="$3"

fail() { echo "FAIL: $*" >&2; exit 1; }

trace=$(mktemp)
trap 'rm -f "$trace"' EXIT

"$cli" "$examples/meets.rsp" --fact "Meets(4, Tony)" --spec graph \
    --threads 2 --trace-out="$trace" >/dev/null \
  || fail "traced CLI run failed"
[ -s "$trace" ] || fail "--trace-out produced no file"

# The pipeline phases alone contribute well over 10 span pairs.
"$trace_check" "$trace" --min-events 20 \
    --require-lane main --require-lane worker-1 \
  || fail "trace validation failed"

# Tracing must not perturb results: the spec printed under --trace-out must
# be byte-identical to an untraced run.
diff <("$cli" "$examples/meets.rsp" --spec graph --threads 2 \
           --trace-out=/dev/null) \
     <("$cli" "$examples/meets.rsp" --spec graph --threads 2) \
  || fail "--trace-out changed the CLI's stdout"

echo "PASS: trace valid with main + worker lanes"
