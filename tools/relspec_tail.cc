// relspec_tail: a live one-line-per-poll view of a running relspecd
// (docs/OPERATIONS.md).
//
//   relspec_tail ADDR [flags]
//
//   ADDR is the daemon's address: a Unix socket path or host:port. Each
//   poll issues one kHealth and one kStats request and renders a single
//   line — uptime, served-request count (and delta since the last poll),
//   the serve.qps_1m / serve.error_rate_1m windowed gauges, request-latency
//   p50/p99 from the serve.request_ns histogram, live cache occupancy, and
//   dropped trace events. Start the daemon with --stats for non-zero
//   metrics (the health fields work regardless).
//
//     --interval-ms N   poll interval (default 1000)
//     --count N         stop after N polls (default 0 = until interrupted)
//     --prometheus      dump the Prometheus text exposition once and exit
//     --health          print one parsed health line and exit
//     --slowlog         dump the slow-query log JSONL once and exit
//     --help            this summary
//
//   Exit codes: 0 ok, 1 connection or request failure, 2 usage error.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/base/metrics.h"
#include "src/base/str_util.h"
#include "src/serve/client.h"
#include "src/serve/protocol.h"

namespace relspec {
namespace {

int UsageError(const std::string& message) {
  fprintf(stderr, "relspec_tail: %s\n", message.c_str());
  return 2;
}

int Fail(const Status& status) {
  fprintf(stderr, "relspec_tail: %s\n", status.ToString().c_str());
  return 1;
}

void PrintHelp(const char* argv0) {
  printf(
      "usage: %s ADDR [flags]\n"
      "\n"
      "Poll a running relspecd (docs/OPERATIONS.md) and render one status\n"
      "line per poll. ADDR is a Unix socket path or host:port.\n"
      "\n"
      "  --interval-ms N   poll interval (default 1000)\n"
      "  --count N         stop after N polls (0 = until interrupted)\n"
      "  --prometheus      dump the Prometheus text exposition and exit\n"
      "  --health          print one parsed health line and exit\n"
      "  --slowlog         dump the slow-query log JSONL and exit\n"
      "  --help            this summary\n",
      argv0);
}

std::string FormatNs(uint64_t ns) {
  if (ns < 1000) return StrFormat("%lluns", static_cast<unsigned long long>(ns));
  if (ns < 1000000) return StrFormat("%.1fus", static_cast<double>(ns) / 1e3);
  if (ns < 1000000000ULL) {
    return StrFormat("%.1fms", static_cast<double>(ns) / 1e6);
  }
  return StrFormat("%.2fs", static_cast<double>(ns) / 1e9);
}

int Run(int argc, char** argv) {
  std::string address;
  long interval_ms = 1000;
  long count = 0;
  bool prometheus = false, health_once = false, slowlog_once = false;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (flag == "--help") {
      PrintHelp(argv[0]);
      return 0;
    } else if (flag == "--interval-ms") {
      interval_ms = atol(next());
    } else if (flag == "--count") {
      count = atol(next());
    } else if (flag == "--prometheus") {
      prometheus = true;
    } else if (flag == "--health") {
      health_once = true;
    } else if (flag == "--slowlog") {
      slowlog_once = true;
    } else if (!flag.empty() && flag[0] == '-') {
      return UsageError("unknown flag " + flag + " (see --help)");
    } else if (address.empty()) {
      address = flag;
    } else {
      return UsageError("more than one ADDR given (see --help)");
    }
  }
  if (address.empty()) return UsageError("no daemon ADDR given (see --help)");
  if (interval_ms <= 0) return UsageError("--interval-ms must be positive");
  if (prometheus + health_once + slowlog_once > 1) {
    return UsageError(
        "--prometheus / --health / --slowlog are mutually exclusive");
  }

  auto client = serve::ServeClient::Connect(address);
  if (!client.ok()) return Fail(client.status());

  if (prometheus) {
    auto text = (*client)->StatsPrometheus();
    if (!text.ok()) return Fail(text.status());
    fputs(text->c_str(), stdout);
    return 0;
  }
  if (slowlog_once) {
    auto text = (*client)->SlowlogDump();
    if (!text.ok()) return Fail(text.status());
    fputs(text->c_str(), stdout);
    return 0;
  }
  if (health_once) {
    auto health = (*client)->Health();
    if (!health.ok()) return Fail(health.status());
    printf("ready=%d live=%d fp=0x%016llx uptime_ms=%llu wal_seq=%llu "
           "served=%llu\n",
           health->ready ? 1 : 0, health->live ? 1 : 0,
           static_cast<unsigned long long>(health->fingerprint),
           static_cast<unsigned long long>(health->uptime_ms),
           static_cast<unsigned long long>(health->wal_seq),
           static_cast<unsigned long long>(health->served));
    return 0;
  }

  uint64_t last_served = 0;
  bool have_last = false;
  for (long poll = 0; count == 0 || poll < count; ++poll) {
    if (poll > 0) usleep(static_cast<useconds_t>(interval_ms) * 1000);
    auto health = (*client)->Health();
    if (!health.ok()) return Fail(health.status());
    auto stats_json = (*client)->Stats();
    if (!stats_json.ok()) return Fail(stats_json.status());
    auto snap = MetricsSnapshot::FromJson(*stats_json);
    if (!snap.ok()) return Fail(snap.status());
    const uint64_t served = health->served;
    const uint64_t delta = have_last ? served - last_served : served;
    last_served = served;
    have_last = true;
    uint64_t p50 = 0, p99 = 0;
    if (const HistogramSnapshot* h = snap->histogram("serve.request_ns")) {
      p50 = h->ValueAtQuantile(0.50);
      p99 = h->ValueAtQuantile(0.99);
    }
    printf(
        "up %llus  served %llu (+%llu)  qps1m %lld  err1m %lldbp  p50 %s  "
        "p99 %s  cache %lld/%lldB  dropped %lld\n",
        static_cast<unsigned long long>(health->uptime_ms / 1000),
        static_cast<unsigned long long>(served),
        static_cast<unsigned long long>(delta),
        static_cast<long long>(snap->gauge("serve.qps_1m")),
        static_cast<long long>(snap->gauge("serve.error_rate_1m")),
        FormatNs(p50).c_str(), FormatNs(p99).c_str(),
        static_cast<long long>(snap->gauge("cache.entries")),
        static_cast<long long>(snap->gauge("cache.bytes")),
        static_cast<long long>(snap->gauge("trace.dropped")));
    fflush(stdout);
  }
  return 0;
}

}  // namespace
}  // namespace relspec

int main(int argc, char** argv) {
  return relspec::Run(argc, argv);
}
