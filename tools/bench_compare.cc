// bench_compare: the CI perf-regression gate.
//
// Diffs two relspec-bench-v1 JSON reports (e.g. the committed
// BENCH_baseline.json against a fresh BENCH_serve.json) suite by suite and
// exits non-zero when any metric regressed past its relative threshold.
// See docs/SERVING.md for the report schema.
//
//   bench_compare BASELINE.json CURRENT.json [flags]
//
// Schema (both files):
//
//   {"suites": {"<suite>": {
//      "thresholds": {"default": 0.25, "<metric>": 0.5},
//      "metrics": {"<metric>": {"value": 123, "dir": "lower"}}}}}
//
// Other top-level fields are ignored, so BENCH_serve.json (which embeds its
// suite next to the human-readable report) is consumed directly.
//
// For a metric with dir "lower" (lower is better — latencies), a regression
// is current > baseline * (1 + threshold); for dir "higher" (throughput),
// current < baseline * (1 - threshold). The threshold for a metric is the
// first of: --threshold METRIC=REL, --default-threshold, the *current*
// file's per-metric threshold, its suite "default", then 0.25.
//
// Metrics present only in the current report are reported as "new" and do
// not gate (so reports can grow fields); a suite present in the current
// report but missing from the baseline is an error — a silently vanishing
// baseline must not turn the gate green.
//
// Exit codes: 0 no regression, 1 regression, 2 usage / I/O / malformed
// report / missing suite.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/json.h"
#include "src/base/status.h"
#include "src/base/str_util.h"

namespace relspec {
namespace {

constexpr int kExitOk = 0;
constexpr int kExitRegression = 1;
constexpr int kExitError = 2;

struct Metric {
  double value = 0.0;
  bool higher_is_better = false;
};

struct Suite {
  std::map<std::string, double> thresholds;  // may contain "default"
  std::map<std::string, Metric> metrics;
};

struct Report {
  std::map<std::string, Suite> suites;
};

void PrintHelp() {
  printf(
      "bench_compare - diff two relspec-bench-v1 reports, fail on "
      "regression\n"
      "\n"
      "usage: bench_compare BASELINE.json CURRENT.json [flags]\n"
      "\n"
      "  --suite NAME                  gate only this suite (repeatable;\n"
      "                                default: every suite in CURRENT)\n"
      "  --threshold METRIC=REL        per-metric relative threshold\n"
      "                                override, e.g. p99_ns=0.2\n"
      "  --default-threshold REL       threshold for metrics without a\n"
      "                                --threshold override\n"
      "  --help                        this text\n"
      "\n"
      "exit: 0 ok, 1 regression, 2 usage/IO/malformed report/missing "
      "suite\n");
}

int Fail(const std::string& msg) {
  fprintf(stderr, "bench_compare: %s\n", msg.c_str());
  return kExitError;
}

Status ParseMetric(JsonParser* p, Metric* m) {
  bool saw_value = false;
  RELSPEC_RETURN_NOT_OK(p->ParseObject([&](const std::string& f) -> Status {
    if (f == "value") {
      RELSPEC_ASSIGN_OR_RETURN(m->value, p->ParseNumber());
      saw_value = true;
      return Status::OK();
    }
    if (f == "dir") {
      RELSPEC_ASSIGN_OR_RETURN(std::string dir, p->ParseString());
      if (dir != "lower" && dir != "higher") {
        return p->Error("metric dir must be \"lower\" or \"higher\"");
      }
      m->higher_is_better = dir == "higher";
      return Status::OK();
    }
    return p->SkipValue();
  }));
  if (!saw_value) return p->Error("metric without \"value\"");
  return Status::OK();
}

Status ParseSuite(JsonParser* p, Suite* s) {
  return p->ParseObject([&](const std::string& f) -> Status {
    if (f == "thresholds") {
      return p->ParseObject([&](const std::string& name) -> Status {
        RELSPEC_ASSIGN_OR_RETURN(double t, p->ParseNumber());
        s->thresholds[name] = t;
        return Status::OK();
      });
    }
    if (f == "metrics") {
      return p->ParseObject([&](const std::string& name) -> Status {
        return ParseMetric(p, &s->metrics[name]);
      });
    }
    return p->SkipValue();
  });
}

StatusOr<Report> ParseReport(std::string_view text) {
  Report r;
  JsonParser p(text);
  RELSPEC_RETURN_NOT_OK(p.ParseObject([&](const std::string& f) -> Status {
    if (f == "suites") {
      return p.ParseObject([&](const std::string& name) -> Status {
        return ParseSuite(&p, &r.suites[name]);
      });
    }
    return p.SkipValue();
  }));
  if (!p.AtEnd()) return p.Error("trailing content after report object");
  return r;
}

StatusOr<Report> LoadReport(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot read " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return ParseReport(buf.str());
}

int Run(int argc, char** argv) {
  std::vector<std::string> positional;
  std::set<std::string> only_suites;
  std::map<std::string, double> overrides;
  double default_threshold = -1.0;

  auto value_of = [&](int* i, const char* flag) -> std::string {
    std::string arg = argv[*i];
    std::string prefix = std::string(flag) + "=";
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
    if (*i + 1 < argc) return argv[++*i];
    return "";
  };
  auto matches = [&](const char* arg, const char* flag) {
    return strcmp(arg, flag) == 0 ||
           std::string(arg).rfind(std::string(flag) + "=", 0) == 0;
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintHelp();
      return kExitOk;
    } else if (matches(argv[i], "--suite")) {
      only_suites.insert(value_of(&i, "--suite"));
    } else if (matches(argv[i], "--threshold")) {
      std::string spec = value_of(&i, "--threshold");
      size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) {
        return Fail("bad --threshold (want METRIC=REL): " + spec);
      }
      overrides[spec.substr(0, eq)] = atof(spec.c_str() + eq + 1);
    } else if (matches(argv[i], "--default-threshold")) {
      default_threshold = atof(value_of(&i, "--default-threshold").c_str());
    } else if (arg.rfind("--", 0) == 0) {
      return Fail("unknown flag " + arg + " (--help for usage)");
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    return Fail("want exactly BASELINE.json and CURRENT.json (--help)");
  }

  StatusOr<Report> baseline = LoadReport(positional[0]);
  if (!baseline.ok()) {
    return Fail(positional[0] + ": " + baseline.status().ToString());
  }
  StatusOr<Report> current = LoadReport(positional[1]);
  if (!current.ok()) {
    return Fail(positional[1] + ": " + current.status().ToString());
  }

  for (const std::string& s : only_suites) {
    if (current->suites.find(s) == current->suites.end()) {
      return Fail("suite \"" + s + "\" not in " + positional[1]);
    }
  }

  int regressions = 0;
  int compared = 0;
  for (const auto& [suite_name, cur] : current->suites) {
    if (!only_suites.empty() && only_suites.find(suite_name) == only_suites.end()) {
      continue;
    }
    auto base_it = baseline->suites.find(suite_name);
    if (base_it == baseline->suites.end()) {
      return Fail("suite \"" + suite_name + "\" missing from baseline " +
                  positional[0]);
    }
    const Suite& base = base_it->second;
    printf("suite %s\n", suite_name.c_str());

    auto threshold_for = [&](const std::string& metric) {
      auto ov = overrides.find(metric);
      if (ov != overrides.end()) return ov->second;
      if (default_threshold >= 0) return default_threshold;
      auto th = cur.thresholds.find(metric);
      if (th != cur.thresholds.end()) return th->second;
      th = cur.thresholds.find("default");
      if (th != cur.thresholds.end()) return th->second;
      return 0.25;
    };

    for (const auto& [name, m] : cur.metrics) {
      auto bm = base.metrics.find(name);
      if (bm == base.metrics.end()) {
        printf("  %-16s %14.3f  (new, no baseline)\n", name.c_str(), m.value);
        continue;
      }
      const double bv = bm->second.value;
      const double t = threshold_for(name);
      if (bv == 0.0) {
        // No meaningful relative comparison against a zero baseline.
        printf("  %-16s %14.3f -> %14.3f  skipped (zero baseline)\n",
               name.c_str(), bv, m.value);
        continue;
      }
      ++compared;
      const double ratio = m.value / bv;
      bool regressed = m.higher_is_better ? m.value < bv * (1.0 - t)
                                          : m.value > bv * (1.0 + t);
      printf("  %-16s %14.3f -> %14.3f  (%+.1f%%, %s, allowed %.0f%%)%s\n",
             name.c_str(), bv, m.value, (ratio - 1.0) * 100.0,
             m.higher_is_better ? "higher=better" : "lower=better", t * 100.0,
             regressed ? "  REGRESSION" : "");
      if (regressed) ++regressions;
    }
  }

  if (compared == 0) {
    return Fail("no comparable metrics (empty or disjoint reports)");
  }
  if (regressions > 0) {
    fprintf(stderr, "bench_compare: %d regression(s)\n", regressions);
    return kExitRegression;
  }
  printf("bench_compare: OK (%d metric(s) within thresholds)\n", compared);
  return kExitOk;
}

}  // namespace
}  // namespace relspec

int main(int argc, char** argv) { return relspec::Run(argc, argv); }
