// trace_check: validate a Chrome trace-event JSON file produced by
// relspec_cli --trace-out (or any tool emitting the same subset).
//
//   trace_check FILE [--min-events N] [--require-lane NAME]
//
// Checks the structural contract (parseable, every "B" matched by an "E",
// timestamps monotone per lane) via the same ValidateChromeTraceJson used by
// tests/trace_test.cc, then prints a one-line summary:
//
//   trace ok: 12 begins 12 ends 3 instants 5 counters 2 lanes 0 dropped
//
// Exit codes: 0 valid, 1 invalid or constraint unmet, 2 usage/IO error.
// --min-events bounds total non-metadata events from below; --require-lane
// asserts a thread_name metadata record with the given name exists (e.g.
// "main", "worker-1").

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/json.h"
#include "src/base/trace.h"

using namespace relspec;

namespace {

// Collects the thread_name metadata values, which ValidateChromeTraceJson
// does not surface.
std::vector<std::string> LaneNames(std::string_view json) {
  std::vector<std::string> names;
  JsonParser p(json);
  auto parse_event = [&]() -> Status {
    bool is_thread_name = false;
    std::string arg_name;
    RELSPEC_RETURN_NOT_OK(p.ParseObject([&](const std::string& key) -> Status {
      if (key == "name") {
        RELSPEC_ASSIGN_OR_RETURN(std::string name, p.ParseString());
        if (name == "thread_name") is_thread_name = true;
        return Status::OK();
      }
      if (key == "args") {
        return p.ParseObject([&](const std::string& inner) -> Status {
          if (inner == "name") {
            RELSPEC_ASSIGN_OR_RETURN(arg_name, p.ParseString());
            return Status::OK();
          }
          return p.SkipValue();
        });
      }
      return p.SkipValue();
    }));
    if (is_thread_name && !arg_name.empty()) names.push_back(arg_name);
    return Status::OK();
  };
  Status st = p.ParseObject([&](const std::string& key) -> Status {
    if (key == "traceEvents") return p.ParseArray(parse_event);
    return p.SkipValue();
  });
  (void)st;  // structural errors already reported by the validator
  return names;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  long min_events = -1;
  std::vector<std::string> required_lanes;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--min-events" && i + 1 < argc) {
      min_events = atol(argv[++i]);
    } else if (arg == "--require-lane" && i + 1 < argc) {
      required_lanes.push_back(argv[++i]);
    } else if (arg[0] == '-') {
      fprintf(stderr,
              "usage: %s FILE [--min-events N] [--require-lane NAME]\n",
              argv[0]);
      return 2;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    fprintf(stderr, "usage: %s FILE [--min-events N] [--require-lane NAME]\n",
            argv[0]);
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    fprintf(stderr, "trace_check: cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string json = ss.str();

  StatusOr<TraceSummary> summary = ValidateChromeTraceJson(json);
  if (!summary.ok()) {
    fprintf(stderr, "trace_check: %s: %s\n", path.c_str(),
            summary.status().ToString().c_str());
    return 1;
  }
  if (min_events >= 0 &&
      summary->total() < static_cast<uint64_t>(min_events)) {
    fprintf(stderr,
            "trace_check: %s: %llu events, expected at least %ld\n",
            path.c_str(), (unsigned long long)summary->total(), min_events);
    return 1;
  }
  std::vector<std::string> lanes = LaneNames(json);
  for (const std::string& want : required_lanes) {
    bool found = false;
    for (const std::string& lane : lanes) {
      if (lane == want) {
        found = true;
        break;
      }
    }
    if (!found) {
      fprintf(stderr, "trace_check: %s: no lane named \"%s\"\n", path.c_str(),
              want.c_str());
      return 1;
    }
  }
  printf(
      "trace ok: %llu begins %llu ends %llu instants %llu counters "
      "%llu lanes %llu dropped\n",
      (unsigned long long)summary->begins, (unsigned long long)summary->ends,
      (unsigned long long)summary->instants,
      (unsigned long long)summary->counters, (unsigned long long)summary->lanes,
      (unsigned long long)summary->dropped);
  return 0;
}
