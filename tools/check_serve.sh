#!/usr/bin/env bash
# CTest driver for the serving-SLO harness contract (docs/SERVING.md).
#
# Usage: check_serve.sh SERVE_BINARY COMPARE_BINARY MODE [TRACE_CHECK_BINARY]
#
# MODE determinism: two runs with the same seed must produce byte-identical
#   --dump-requests schedules and matching request_seq_hash / answers_hash,
#   and the report must carry non-zero p50/p95/p99 latency percentiles.
# MODE trace: a run with --trace-out and --slow-ms 0 (every request counts
#   as slow) must emit a timeline that trace_check accepts, containing
#   slow_request instants.
# MODE breach: under a per-request --request-max-tuples budget, breaches are
#   reported as error replies in the JSON summary ("requests.breaches" > 0)
#   with exit 0 — never as a process resource exit; a --deadline-ms run must
#   also exit 0 with a well-formed report.
# MODE gate: bench_compare on the report against itself exits 0, and a
#   synthetic +50% p99 regression exits 1 under --threshold p99_ns=0.2.
# MODE daemon: COMPARE_BINARY carries relspecd instead. The daemon replay
#   (--connect) of the update-free default mix must reproduce the in-process
#   answers_hash bit-for-bit; then a durable daemon is killed -9 after an
#   update replay and its recovered fingerprint (relspecd --ping) must match
#   the pre-kill one — acked updates survive the crash.
set -u

serve="$1"
compare="$2"
mode="$3"
trace_check="${4:-}"

fail() { echo "FAIL: $*" >&2; exit 1; }

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

# Short, load-light flags so the check is stable on busy CI runners: the
# contract under test is determinism/reporting, not throughput.
common=(--qps 1500 --requests 600 --clients 2 --seed 7 --population 32)

case "$mode" in
  determinism)
    "$serve" "${common[@]}" --out "$tmpdir/a.json" \
        --dump-requests "$tmpdir/a.txt" >/dev/null 2>&1 \
      || fail "first serve run failed"
    "$serve" "${common[@]}" --out "$tmpdir/b.json" \
        --dump-requests "$tmpdir/b.txt" >/dev/null 2>&1 \
      || fail "second serve run failed"
    cmp -s "$tmpdir/a.txt" "$tmpdir/b.txt" \
      || fail "--dump-requests schedules differ for the same seed"
    python3 - "$tmpdir/a.json" "$tmpdir/b.json" <<'EOF' || exit 1
import json, sys
a = json.load(open(sys.argv[1]))
b = json.load(open(sys.argv[2]))
if a["request_seq_hash"] != b["request_seq_hash"]:
    sys.exit("FAIL: request_seq_hash differs for the same seed")
if a["answers_hash"] != b["answers_hash"]:
    sys.exit("FAIL: answers_hash differs for the same seed")
lat = a["latency_ns"]
for q in ("p50", "p95", "p99"):
    if lat[q] <= 0:
        sys.exit(f"FAIL: latency {q} is zero")
if lat["p50"] > lat["p95"] or lat["p95"] > lat["p99"]:
    sys.exit("FAIL: percentiles are not monotone")
if a["requests"]["total"] != 600:
    sys.exit("FAIL: wrong total request count")
EOF
    echo "PASS: schedule + hashes deterministic, percentiles non-zero"
    ;;
  trace)
    [ -n "$trace_check" ] || fail "trace mode needs TRACE_CHECK_BINARY"
    # --slow-ms 0 marks every request slow (latency from the scheduled
    # arrival is strictly positive), so the assertion is load-independent.
    "$serve" "${common[@]}" --slow-ms 0 --out "$tmpdir/r.json" \
        --trace-out "$tmpdir/t.json" >/dev/null 2>&1 \
      || fail "serve run with --trace-out failed"
    "$trace_check" "$tmpdir/t.json" --min-events 10 --require-lane main \
      || fail "serve trace failed validation"
    grep -q "slow_request" "$tmpdir/t.json" \
      || fail "trace has no slow_request instants despite --slow-ms 0"
    python3 - "$tmpdir/r.json" <<'EOF' || exit 1
import json, sys
r = json.load(open(sys.argv[1]))
if r["requests"]["slow"] <= 0:
    sys.exit("FAIL: report counted no slow requests despite --slow-ms 0")
EOF
    echo "PASS: serve trace validates, slow_request instants present"
    ;;
  breach)
    # Deterministic budget breach: an all-uncached mix where full-projection
    # answers exceed a 2-tuple budget.
    "$serve" "${common[@]}" --mix uncached=1 --request-max-tuples 2 \
        --out "$tmpdir/r.json" >/dev/null 2>&1
    code=$?
    [ "$code" -eq 0 ] || fail "breach run must exit 0, got $code"
    python3 - "$tmpdir/r.json" <<'EOF' || exit 1
import json, sys
r = json.load(open(sys.argv[1]))["requests"]
if r["breaches"] <= 0:
    sys.exit("FAIL: no breaches recorded under --request-max-tuples 2")
if r["errors"] < r["breaches"]:
    sys.exit("FAIL: breaches not counted as error replies")
if r["ok"] + r["errors"] != r["total"]:
    sys.exit("FAIL: ok + errors != total")
EOF
    # Wall-clock deadline flavor: nondeterministic breach count, but the run
    # itself must still exit 0 with a well-formed report.
    "$serve" "${common[@]}" --deadline-ms 50 --out "$tmpdir/d.json" \
        >/dev/null 2>&1
    code=$?
    [ "$code" -eq 0 ] || fail "--deadline-ms run must exit 0, got $code"
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$tmpdir/d.json" \
      || fail "--deadline-ms report is not valid JSON"
    echo "PASS: per-request breaches are error replies, exit stays 0"
    ;;
  gate)
    "$serve" "${common[@]}" --out "$tmpdir/r.json" >/dev/null 2>&1 \
      || fail "serve run failed"
    "$compare" "$tmpdir/r.json" "$tmpdir/r.json" --suite bench_serve \
        >/dev/null \
      || fail "self-compare must exit 0"
    python3 - "$tmpdir/r.json" "$tmpdir/worse.json" <<'EOF' || exit 1
import json, sys
r = json.load(open(sys.argv[1]))
m = r["suites"]["bench_serve"]["metrics"]["p99_ns"]
m["value"] = m["value"] * 1.5
json.dump(r, open(sys.argv[2], "w"))
EOF
    "$compare" "$tmpdir/r.json" "$tmpdir/worse.json" --suite bench_serve \
        --threshold p99_ns=0.2 >/dev/null
    code=$?
    [ "$code" -eq 1 ] \
      || fail "synthetic +50% p99 regression must exit 1, got $code"
    echo "PASS: self-compare green, synthetic p99 regression gates"
    ;;
  daemon)
    daemon="$compare"  # this mode's second binary is relspecd
    sock="$tmpdir/d.sock"
    wal="$tmpdir/d.wal"
    wait_for_socket() {
      for _ in $(seq 100); do
        [ -S "$sock" ] && return 0
        sleep 0.1
      done
      return 1
    }
    ping_fp() {
      "$daemon" --ping "$sock" | sed -n 's/^pong fp=//p'
    }

    # 1) Wire parity: the daemon replay of the update-free default mix must
    #    reproduce the in-process answers_hash bit-for-bit.
    "$daemon" --rotation 8 --socket "$sock" >"$tmpdir/daemon1.log" 2>&1 &
    dpid=$!
    wait_for_socket || fail "daemon did not come up (see daemon1.log)"
    "$serve" "${common[@]}" --out "$tmpdir/inproc.json" >/dev/null 2>&1 \
      || fail "in-process serve run failed"
    "$serve" "${common[@]}" --connect "$sock" --out "$tmpdir/remote.json" \
        >/dev/null 2>&1 \
      || fail "--connect replay against the daemon failed"
    python3 - "$tmpdir/inproc.json" "$tmpdir/remote.json" <<'EOF' || exit 1
import json, sys
a = json.load(open(sys.argv[1]))
b = json.load(open(sys.argv[2]))
if a["answers_hash"] != b["answers_hash"]:
    sys.exit("FAIL: daemon replay answers_hash differs from in-process")
for name, r in (("in-process", a), ("daemon", b)):
    if r["requests"]["errors"] != 0:
        sys.exit(f"FAIL: {name} run had {r['requests']['errors']} errors")
EOF
    kill -TERM "$dpid"
    wait "$dpid"
    code=$?
    [ "$code" -eq 0 ] || fail "daemon SIGTERM drain must exit 0, got $code"

    # 2) Crash durability: replay updates into a durable daemon, kill -9,
    #    recover from the WAL — the fingerprint must survive the crash.
    rm -f "$sock"  # a stale socket file would fool wait_for_socket
    "$daemon" --rotation 8 --socket "$sock" --wal "$wal" \
        >"$tmpdir/daemon2.log" 2>&1 &
    dpid=$!
    wait_for_socket || fail "durable daemon did not come up (see daemon2.log)"
    "$serve" --qps 500 --requests 60 --clients 1 --seed 7 --population 32 \
        --mix update=1 --connect "$sock" --out "$tmpdir/up.json" \
        >/dev/null 2>&1 \
      || fail "update replay against the durable daemon failed"
    python3 - "$tmpdir/up.json" <<'EOF' || exit 1
import json, sys
r = json.load(open(sys.argv[1]))["requests"]
if r["errors"] != 0:
    sys.exit(f"FAIL: update replay had {r['errors']} errors")
EOF
    fp_before=$(ping_fp)
    [ -n "$fp_before" ] || fail "could not ping the daemon before the kill"
    kill -9 "$dpid"
    wait "$dpid" 2>/dev/null
    rm -f "$sock"
    "$daemon" --rotation 8 --socket "$sock" --wal "$wal" \
        >"$tmpdir/daemon3.log" 2>&1 &
    dpid=$!
    wait_for_socket || fail "recovered daemon did not come up (see daemon3.log)"
    grep -q "recovered" "$tmpdir/daemon3.log" \
      || fail "restarted daemon did not report a WAL recovery"
    fp_after=$(ping_fp)
    kill -TERM "$dpid"
    wait "$dpid" || fail "recovered daemon failed its drain"
    [ "$fp_before" = "$fp_after" ] \
      || fail "fingerprint lost across kill -9: $fp_before -> $fp_after"
    echo "PASS: daemon replay bit-identical; acked updates survive kill -9"
    ;;
  *)
    fail "unknown mode '$mode'"
    ;;
esac
