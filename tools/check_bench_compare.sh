#!/usr/bin/env bash
# CTest driver for the bench_compare exit-code contract (docs/SERVING.md):
# 0 within thresholds, 1 regression, 2 for missing suites / malformed JSON /
# usage errors. Improvements never gate.
#
# Usage: check_bench_compare.sh COMPARE_BINARY
set -u

compare="$1"

fail() { echo "FAIL: $*" >&2; exit 1; }

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

cat > "$tmpdir/base.json" <<'EOF'
{"schema": "relspec-bench-v1", "suites": {"s": {
  "thresholds": {"default": 0.10, "tput": 0.20},
  "metrics": {
    "lat_ns":  {"value": 1000, "dir": "lower"},
    "tput":    {"value": 500,  "dir": "higher"},
    "zero":    {"value": 0,    "dir": "lower"}}}}}
EOF

mkjson() {  # mkjson FILE lat tput
  cat > "$1" <<EOF
{"schema": "relspec-bench-v1", "suites": {"s": {
  "thresholds": {"default": 0.10, "tput": 0.20},
  "metrics": {
    "lat_ns":  {"value": $2, "dir": "lower"},
    "tput":    {"value": $3, "dir": "higher"},
    "zero":    {"value": 7,  "dir": "lower"},
    "extra":   {"value": 1,  "dir": "lower"}}}}}
EOF
}

# Within thresholds: +5% latency (allowed 10%), -10% throughput (allowed
# 20%). The zero-baseline metric is skipped, the new metric doesn't gate.
mkjson "$tmpdir/ok.json" 1050 450
"$compare" "$tmpdir/base.json" "$tmpdir/ok.json" >/dev/null \
  || fail "within-threshold diff must exit 0"

# Latency regression: +30% > 10%.
mkjson "$tmpdir/lat.json" 1300 500
"$compare" "$tmpdir/base.json" "$tmpdir/lat.json" >/dev/null
[ $? -eq 1 ] || fail "latency regression must exit 1"

# Throughput regression: -40% on a higher-is-better metric.
mkjson "$tmpdir/tput.json" 1000 300
"$compare" "$tmpdir/base.json" "$tmpdir/tput.json" >/dev/null
[ $? -eq 1 ] || fail "throughput regression must exit 1"

# Improvement in a lower-is-better metric must never gate, no matter how
# large.
mkjson "$tmpdir/better.json" 10 5000
"$compare" "$tmpdir/base.json" "$tmpdir/better.json" >/dev/null \
  || fail "improvement must exit 0"

# CLI overrides tighten the report's own thresholds.
"$compare" "$tmpdir/base.json" "$tmpdir/ok.json" --threshold lat_ns=0.01 \
    >/dev/null
[ $? -eq 1 ] || fail "--threshold override must turn +5% into a regression"
"$compare" "$tmpdir/base.json" "$tmpdir/lat.json" --default-threshold 0.5 \
    >/dev/null \
  || fail "--default-threshold 0.5 must absorb a +30% change"

# A suite missing from the baseline is a hard error (exit 2), not a pass.
cat > "$tmpdir/other.json" <<'EOF'
{"suites": {"unrelated": {"metrics": {"m": {"value": 1, "dir": "lower"}}}}}
EOF
"$compare" "$tmpdir/other.json" "$tmpdir/ok.json" 2>/dev/null
[ $? -eq 2 ] || fail "missing baseline suite must exit 2"
"$compare" "$tmpdir/base.json" "$tmpdir/ok.json" --suite nope 2>/dev/null
[ $? -eq 2 ] || fail "--suite not in CURRENT must exit 2"

# Malformed JSON and unreadable files are exit 2.
echo '{"suites": {' > "$tmpdir/bad.json"
"$compare" "$tmpdir/bad.json" "$tmpdir/ok.json" 2>/dev/null
[ $? -eq 2 ] || fail "malformed baseline must exit 2"
"$compare" "$tmpdir/base.json" "$tmpdir/bad.json" 2>/dev/null
[ $? -eq 2 ] || fail "malformed current must exit 2"
"$compare" "$tmpdir/missing.json" "$tmpdir/ok.json" 2>/dev/null
[ $? -eq 2 ] || fail "unreadable baseline must exit 2"

echo "PASS: bench_compare exit-code contract holds"
