#!/usr/bin/env bash
# CTest driver for the slow-query audit log contract (docs/OPERATIONS.md).
#
# Usage: check_slowlog.sh RELSPECD_BINARY SERVE_BINARY TAIL_BINARY
#
# Starts relspecd with --slowlog-ms 0 (every request is recorded),
# --slowlog-out and --trace-out, replays the deterministic update-free
# bench mix against it, pokes the live exposition with relspec_tail, and
# after the SIGTERM drain asserts over the flushed JSONL:
#
#   1. every benched request (membership/query) appears exactly once, with
#      a unique non-zero trace ID;
#   2. per-phase breakdowns are monotone: parse + cache + eval + render +
#      write <= total, and total > 0;
#   3. every benched trace ID also appears as a span "trace_id" arg in the
#      --trace-out Chrome export (request-to-timeline correlation);
#   4. the telemetry-on daemon replay reproduces the in-process
#      answers_hash bit-for-bit — recording is invisible to answers.
#
# relspec_tail is exercised in all four modes (--health, --prometheus,
# --slowlog, live polling) against the running daemon.
set -u

daemon="$1"
serve="$2"
tail_bin="$3"

fail() { echo "FAIL: $*" >&2; exit 1; }

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

sock="$tmpdir/d.sock"
common=(--qps 1500 --requests 600 --clients 2 --seed 7 --population 32)

"$daemon" --rotation 8 --socket "$sock" --stats="$tmpdir/stats.json" \
    --slowlog-ms 0 --slowlog-out "$tmpdir/slow.jsonl" \
    --trace-out "$tmpdir/trace.json" >"$tmpdir/daemon.log" 2>&1 &
dpid=$!
for _ in $(seq 100); do
  [ -S "$sock" ] && break
  sleep 0.1
done
[ -S "$sock" ] || fail "daemon did not come up (see daemon.log)"

# In-process baseline (no daemon, no slow log) for the answers_hash parity
# check, then the telemetry-on daemon replay.
"$serve" "${common[@]}" --out "$tmpdir/inproc.json" >/dev/null 2>&1 \
  || fail "in-process serve run failed"
"$serve" "${common[@]}" --connect "$sock" --out "$tmpdir/remote.json" \
    >/dev/null 2>&1 \
  || fail "--connect replay against the slow-logging daemon failed"

# Live exposition smoke tests while the daemon is still up.
"$tail_bin" "$sock" --health >"$tmpdir/health.txt" \
  || fail "relspec_tail --health failed"
grep -q "ready=1 live=1" "$tmpdir/health.txt" \
  || fail "health line does not report ready=1 live=1"
grep -q "served=" "$tmpdir/health.txt" \
  || fail "health line has no served count"
"$tail_bin" "$sock" --prometheus >"$tmpdir/prom.txt" \
  || fail "relspec_tail --prometheus failed"
grep -q "^# TYPE relspec_serve_request_ns summary" "$tmpdir/prom.txt" \
  || fail "Prometheus exposition lacks the serve.request_ns summary"
grep -q "^relspec_serve_request_ns{quantile=\"0.99\"}" "$tmpdir/prom.txt" \
  || fail "Prometheus exposition lacks the p99 quantile series"
"$tail_bin" "$sock" --count 2 --interval-ms 100 >"$tmpdir/live.txt" \
  || fail "relspec_tail live polling failed"
[ "$(wc -l <"$tmpdir/live.txt")" -eq 2 ] \
  || fail "live view did not print one line per poll"
grep -q "served" "$tmpdir/live.txt" || fail "live view line looks wrong"
"$tail_bin" "$sock" --slowlog >"$tmpdir/slow_live.jsonl" \
  || fail "relspec_tail --slowlog failed"
[ -s "$tmpdir/slow_live.jsonl" ] || fail "live slow-log dump is empty"

kill -TERM "$dpid"
wait "$dpid"
code=$?
[ "$code" -eq 0 ] || fail "daemon SIGTERM drain must exit 0, got $code"
[ -s "$tmpdir/slow.jsonl" ] || fail "--slowlog-out file missing or empty"

python3 - "$tmpdir/slow.jsonl" "$tmpdir/trace.json" "$tmpdir/inproc.json" \
    "$tmpdir/remote.json" <<'EOF' || exit 1
import json, sys

entries = [json.loads(line) for line in open(sys.argv[1]) if line.strip()]
if not entries:
    sys.exit("FAIL: slow log is empty")

# The bench traffic is membership + query; relspec_tail's own health /
# stats / slowlog-dump polls are recorded too and excluded here.
benched = [e for e in entries if e["type"] in ("membership", "query")]
report = json.load(open(sys.argv[4]))
total = report["requests"]["total"]
if len(benched) != total:
    sys.exit(f"FAIL: {len(benched)} benched slow-log entries, "
             f"expected {total} (every request must appear exactly once)")

ids = [e["trace_id"] for e in benched]
if any(i == 0 for i in ids):
    sys.exit("FAIL: a slow-log entry has trace_id 0")
if len(set(ids)) != len(ids):
    sys.exit("FAIL: duplicate trace IDs in the slow log")

for e in entries:
    phases = (e["parse_ns"] + e["cache_ns"] + e["eval_ns"] + e["render_ns"]
              + e["write_ns"])
    if e["total_ns"] <= 0:
        sys.exit(f"FAIL: entry seq {e['seq']} has non-positive total_ns")
    if phases > e["total_ns"]:
        sys.exit(f"FAIL: entry seq {e['seq']} phase sum {phases} exceeds "
                 f"total_ns {e['total_ns']}")

trace = json.load(open(sys.argv[2]))
span_ids = {ev["args"]["trace_id"]
            for ev in trace["traceEvents"]
            if isinstance(ev.get("args"), dict) and "trace_id" in ev["args"]}
missing = [i for i in ids if i not in span_ids]
if missing:
    sys.exit(f"FAIL: {len(missing)} slow-log trace IDs missing from the "
             f"trace export (e.g. {missing[0]})")

inproc = json.load(open(sys.argv[3]))
if inproc["answers_hash"] != report["answers_hash"]:
    sys.exit("FAIL: answers_hash differs with the slow log on — recording "
             "must be invisible to answers")
for name, r in (("in-process", inproc), ("daemon", report)):
    if r["requests"]["errors"] != 0:
        sys.exit(f"FAIL: {name} run had {r['requests']['errors']} errors")
EOF

# CI sets SLOWLOG_ARTIFACT_DIR to keep the audit trail after the tmpdir
# trap fires (the serve job uploads it).
if [ -n "${SLOWLOG_ARTIFACT_DIR:-}" ]; then
  mkdir -p "$SLOWLOG_ARTIFACT_DIR"
  cp "$tmpdir/slow.jsonl" "$tmpdir/slow_live.jsonl" "$tmpdir/trace.json" \
     "$tmpdir/prom.txt" "$tmpdir/health.txt" "$tmpdir/daemon.log" \
     "$SLOWLOG_ARTIFACT_DIR/"
fi
echo "PASS: slow log complete + monotone, trace IDs correlate, answers identical"
