// relspec_cli: run functional deductive databases from the command line.
//
//   relspec_cli [PROGRAM.rsp] [flags]   (the program is optional with
//                                       --load-spec / --load-snapshot)
//
//   Queries contained in the program file ("? atoms." statements) are
//   answered automatically. Additional flags:
//
//     --fact "Meets(4, Tony)"   membership test against LFP(Z, D)
//     --query "?(t,x) Meets(t, x)."  answer an ad-hoc query
//     --explain "Meets(4, Tony)"     print a derivation tree
//     --spec graph|eq           print the relational specification
//     --save-spec FILE          serialize the graph specification
//     --load-spec FILE          answer --fact from a saved spec (no rules!)
//     --save-snapshot FILE      binary snapshot of the graph specification
//                               (versioned, checksummed; docs/SNAPSHOT_FORMAT.md)
//     --load-snapshot FILE      warm start: answer --fact from a binary
//                               snapshot, skipping ground/fixpoint/Q.
//                               With a PROGRAM positional, the snapshot is
//                               instead verified byte-identical against the
//                               built engine (a stale snapshot fails), and
//                               the engine then serves everything — the
//                               warm-start handshake for --apply-deltas
//     --apply-deltas FILE       apply "+ Fact." / "- Fact." base-fact
//                               deltas to the built engine (incremental
//                               maintenance, paper section 5; file format
//                               and semantics in docs/INCREMENTAL.md);
//                               queries/specs/snapshots then reflect the
//                               updated database
//     --wal FILE                durable mode: open the engine through a
//                               write-ahead log at FILE (docs/DURABILITY.md).
//                               Recovery replays surviving batches first;
//                               --apply-deltas batches are logged before
//                               they are acknowledged
//     --fsync always|batch|off  WAL durability policy (default always:
//                               an applied batch survives kill -9)
//     --checkpoint-every N      checkpoint + rotate the log after every N
//                               logged batches (default 0: never)
//     --recover                 print what recovery did (base, replayed
//                               batches, truncated tail) after --wal opens
//     --enumerate DEPTH         horizon for printing query answers (default 6)
//     --prove "T1" "T2"         prove two ground terms congruent (Cl(R))
//     --periodic "OnCall(t, a)" the [CI88] periodic-set answer (one symbol)
//     --merged-frontier         footnote-3 traversal start (depth c)
//     --info                    program parameters (Section 2.5)
//     --verify                  quotient-model certificate
//     --stats[=FILE]            dump a JSON metrics snapshot on exit
//                               (stdout when no FILE is given)
//     --trace                   log per-phase begin/end lines to stderr
//     --trace-out FILE          write a Chrome trace-event JSON timeline
//                               (open in Perfetto / chrome://tracing);
//                               flushed on every exit path, including
//                               governor breaches (exit 7)
//     --threads N               worker threads for fixpoint evaluation
//                               (default 1; results are byte-identical for
//                               any N — see docs/ARCHITECTURE.md)
//     --deadline-ms N           wall-clock budget for the whole run
//     --max-tuples N            budget on derived DATALOG tuples
//     --max-nodes N             budget on chi-table entries / clusters
//     --max-depth N             budget on term depth during enumeration
//     --allow-partial           degrade gracefully on a resource breach:
//                               emit a sound partial result marked truncated
//                               instead of failing
//     --help                    print the flag summary and exit
//
//   SIGINT and SIGTERM request cooperative cancellation: the engine unwinds
//   cleanly — stats, trace, and WAL are flushed on the way out (exit code 7,
//   or a truncated result with --allow-partial).
//
//   Diagnostics go to stderr through the logger; stdout carries only the
//   requested output (and the --stats JSON when no FILE is given). Exit
//   codes: 0 success, 2 usage error, 3 I/O error, 4 parse error, 5 engine
//   error, 6 verification failure, 7 resource exhaustion / cancellation /
//   deadline.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/failpoint.h"
#include "src/base/governor.h"
#include "src/base/logging.h"
#include "src/base/metrics.h"
#include "src/base/str_util.h"
#include "src/base/trace.h"
#include "src/ast/printer.h"
#include "src/core/engine.h"
#include "src/core/wal.h"
#include "src/core/explain.h"
#include "src/core/query.h"
#include "src/core/snapshot.h"
#include "src/core/spec_io.h"
#include "src/temporal/periodic_answers.h"
#include "src/parser/parser.h"

namespace {

using namespace relspec;

constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitIo = 3;
constexpr int kExitParse = 4;
constexpr int kExitEngine = 5;
constexpr int kExitVerify = 6;
constexpr int kExitResource = 7;

int Fail(int code, const Status& status) {
  RELSPEC_LOG(kError) << status.ToString();
  return code;
}

/// Resource breaches (exhaustion, cancellation, deadline) get their own exit
/// code so callers can distinguish "the program is too big for the budget"
/// from "the engine rejected the program".
int EngineExitCode(const Status& status) {
  return status.IsResourceBreach() ? kExitResource : kExitEngine;
}

// Set by main before RunCli; the SIGINT/SIGTERM handler requests cooperative
// cancellation through it (a relaxed atomic store — async-signal-safe). Both
// signals take the same clean path: the engine unwinds, the WAL closes, and
// stats/trace flush before exit 7 — a supervisor's TERM is not data loss.
ResourceGovernor* g_governor = nullptr;
bool g_allow_partial = false;

extern "C" void HandleShutdownSignal(int) {
  if (g_governor != nullptr) g_governor->RequestCancel();
}

int UsageError(const std::string& message) {
  RELSPEC_LOG(kError) << message;
  return kExitUsage;
}

// The single source of truth for the flag surface. tools/run_checks.sh greps
// this output against the flag tables in README.md and docs/ to catch drift,
// so every user-facing flag must appear here.
void PrintHelp(const char* argv0) {
  printf(
      "usage: %s [PROGRAM.rsp] [flags]\n"
      "\n"
      "Queries in the program file (\"? atoms.\" statements) are answered\n"
      "automatically. Flags:\n"
      "\n"
      "  --fact \"Meets(4, Tony)\"       membership test against LFP(Z, D)\n"
      "  --query \"?(t,x) Meets(t, x).\" answer an ad-hoc query\n"
      "  --explain \"Meets(4, Tony)\"    print a derivation tree\n"
      "  --spec graph|eq               print the relational specification\n"
      "  --save-spec FILE              serialize the graph specification\n"
      "  --load-spec FILE              answer --fact from a saved spec\n"
      "  --save-snapshot FILE          binary snapshot of the graph\n"
      "                                specification (versioned, checksummed;\n"
      "                                see docs/SNAPSHOT_FORMAT.md)\n"
      "  --load-snapshot FILE          warm start: answer --fact from a\n"
      "                                binary snapshot, skipping\n"
      "                                ground/fixpoint/Q; with a PROGRAM\n"
      "                                positional, verify the snapshot\n"
      "                                against the built engine instead\n"
      "                                (the --apply-deltas warm-start\n"
      "                                handshake, docs/INCREMENTAL.md)\n"
      "  --apply-deltas FILE           apply \"+ Fact.\" / \"- Fact.\" deltas\n"
      "                                to the built engine (incremental\n"
      "                                maintenance; docs/INCREMENTAL.md)\n"
      "  --wal FILE                    durable mode: open through a\n"
      "                                write-ahead log at FILE, replaying\n"
      "                                surviving batches first; deltas are\n"
      "                                logged before they are acknowledged\n"
      "                                (docs/DURABILITY.md)\n"
      "  --fsync always|batch|off      WAL durability policy (default\n"
      "                                always: an applied batch survives\n"
      "                                kill -9)\n"
      "  --checkpoint-every N          checkpoint + rotate the log after\n"
      "                                every N logged batches (default 0:\n"
      "                                never)\n"
      "  --recover                     print what recovery did (base,\n"
      "                                replayed batches, truncated tail)\n"
      "  --enumerate DEPTH             horizon for printing query answers\n"
      "                                (default 6)\n"
      "  --prove \"T1\" \"T2\"             prove two ground terms congruent\n"
      "  --periodic \"OnCall(t, a)\"     the [CI88] periodic-set answer\n"
      "  --merged-frontier             footnote-3 traversal start (depth c)\n"
      "  --info                        program parameters (Section 2.5)\n"
      "  --verify                      quotient-model certificate\n"
      "  --stats[=FILE]                dump a JSON metrics snapshot on exit\n"
      "  --trace                       log per-phase begin/end lines to\n"
      "                                stderr\n"
      "  --trace-out FILE              write a Chrome trace-event JSON\n"
      "                                timeline (open in Perfetto or\n"
      "                                chrome://tracing); flushed on every\n"
      "                                exit path, including breaches\n"
      "  --threads N                   worker threads for fixpoint\n"
      "                                evaluation (default 1; results are\n"
      "                                byte-identical for any N -- see\n"
      "                                docs/ARCHITECTURE.md and\n"
      "                                docs/TUNING.md)\n"
      "  --deadline-ms N               wall-clock budget for the whole run\n"
      "                                (exit 7 when exceeded)\n"
      "  --max-tuples N                budget on derived DATALOG tuples\n"
      "  --max-nodes N                 budget on chi-table entries and\n"
      "                                clusters\n"
      "  --max-depth N                 budget on term depth during\n"
      "                                enumeration\n"
      "  --allow-partial               degrade gracefully on a resource\n"
      "                                breach: emit a sound partial result\n"
      "                                marked truncated instead of failing\n"
      "  --help                        print this summary and exit\n",
      argv0);
}

StatusOr<std::string> ReadFile(const std::string& path,
                               bool binary = false) {
  std::ifstream in(path, binary ? std::ios::binary : std::ios::in);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void PrintAnswer(const QueryAnswer& answer, int horizon) {
  printf("answer(%s):", relspec::Join(answer.columns(), ",").c_str());
  if (answer.has_functional_answer()) {
    printf(" infinite; finite specification with %zu clusters, %zu tuples\n",
           answer.graph().num_clusters(), answer.NumSpecTuples());
  } else {
    printf(" finite\n");
  }
  auto concrete = answer.Enumerate(horizon, 64, g_governor);
  if (!concrete.ok()) {
    printf("  (enumeration stopped: %s)\n",
           concrete.status().ToString().c_str());
    return;
  }
  for (const ConcreteAnswer& a : *concrete) {
    printf("  ");
    bool first = true;
    if (a.term.has_value()) {
      printf("%s", a.term->ToString(answer.symbols()).c_str());
      first = false;
    }
    for (ConstId c : a.tuple) {
      printf("%s%s", first ? "" : ", ",
             answer.symbols().constant_name(c).c_str());
      first = false;
    }
    printf("\n");
  }
  if (answer.has_functional_answer()) {
    printf("  ... (answers up to term depth %d shown)\n", horizon);
  }
}

// Runs the CLI proper. Kept separate from main so the --stats snapshot is
// dumped on every exit path, success or failure.
int RunCli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--help") {
      PrintHelp(argv[0]);
      return kExitOk;
    }
  }
  if (argc < 2) {
    return UsageError(StrFormat("usage: %s [PROGRAM.rsp] [flags]  (see file header)",
                                argv[0]));
  }

  // The PROGRAM.rsp positional is optional when the run starts from a saved
  // specification (--load-spec / --load-snapshot need no program).
  std::string program_path;
  int first_flag = 1;
  if (argv[1][0] != '-') {
    program_path = argv[1];
    first_flag = 2;
  }
  std::vector<std::string> facts, queries, explains, periodics;
  std::vector<std::pair<std::string, std::string>> proofs;
  std::string spec_kind, save_spec, load_spec, save_snapshot, load_snapshot;
  std::string apply_deltas;
  std::string wal_path;
  DurableOptions durable;
  bool want_recover_report = false;
  bool fsync_given = false, checkpoint_given = false;
  bool want_info = false, want_verify = false;
  int horizon = 6;
  EngineOptions options;
  for (int i = first_flag; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (flag == "--fact") {
      facts.push_back(next());
    } else if (flag == "--query") {
      queries.push_back(next());
    } else if (flag == "--explain") {
      explains.push_back(next());
    } else if (flag == "--prove") {
      std::string t1 = next();
      proofs.emplace_back(t1, next());
    } else if (flag == "--periodic") {
      periodics.push_back(next());
    } else if (flag == "--spec") {
      spec_kind = next();
    } else if (flag == "--save-spec") {
      save_spec = next();
    } else if (flag == "--load-spec") {
      load_spec = next();
    } else if (flag == "--save-snapshot") {
      save_snapshot = next();
    } else if (flag == "--load-snapshot") {
      load_snapshot = next();
    } else if (flag == "--apply-deltas") {
      apply_deltas = next();
    } else if (flag == "--wal") {
      wal_path = next();
    } else if (flag == "--fsync") {
      std::string value = next();
      auto mode = ParseFsyncMode(value);
      if (!mode.ok()) {
        return UsageError("--fsync expects always|batch|off, got \"" + value +
                          "\"");
      }
      durable.wal.fsync = *mode;
      fsync_given = true;
    } else if (flag == "--checkpoint-every") {
      std::string value = next();
      long long n = atoll(value.c_str());
      if (n < 0) {
        return UsageError(
            "--checkpoint-every expects a non-negative integer, got \"" +
            value + "\"");
      }
      durable.checkpoint_every = static_cast<uint64_t>(n);
      checkpoint_given = true;
    } else if (flag == "--recover") {
      want_recover_report = true;
    } else if (flag == "--enumerate") {
      horizon = atoi(next());
    } else if (flag == "--merged-frontier") {
      options.graph.merge_trunk_frontier = true;
    } else if (flag == "--info") {
      want_info = true;
    } else if (flag == "--verify") {
      want_verify = true;
    } else if (flag == "--threads" || flag.rfind("--threads=", 0) == 0) {
      std::string value = flag == "--threads"
                              ? next()
                              : flag.substr(strlen("--threads="));
      int n = atoi(value.c_str());
      if (n < 1) {
        return UsageError("--threads expects a positive integer, got \"" +
                          value + "\"");
      }
      options.fixpoint.num_threads = n;
    } else if (flag == "--deadline-ms" || flag == "--max-tuples" ||
               flag == "--max-nodes" || flag == "--max-depth" ||
               flag == "--trace-out") {
      next();  // value consumed; parsed in main before RunCli starts
    } else if (flag.rfind("--deadline-ms=", 0) == 0 ||
               flag.rfind("--max-tuples=", 0) == 0 ||
               flag.rfind("--max-nodes=", 0) == 0 ||
               flag.rfind("--max-depth=", 0) == 0 ||
               flag.rfind("--trace-out=", 0) == 0 ||
               flag == "--allow-partial" || flag == "--stats" ||
               flag.rfind("--stats=", 0) == 0 || flag == "--trace") {
      // Handled in main before RunCli starts.
    } else {
      return UsageError("unknown flag: " + flag);
    }
  }
  options.governor = g_governor;
  options.allow_partial = g_allow_partial;

  if (!load_spec.empty() && !load_snapshot.empty()) {
    return UsageError("--load-spec and --load-snapshot are exclusive");
  }
  if (wal_path.empty() && (fsync_given || checkpoint_given ||
                           want_recover_report)) {
    return UsageError(
        "--fsync / --checkpoint-every / --recover only apply to durable "
        "mode: add --wal FILE");
  }
  if (!wal_path.empty()) {
    if (program_path.empty()) {
      return UsageError("--wal needs the PROGRAM.rsp positional (recovery "
                        "anchors generation-0 logs to the program)");
    }
    if (!load_spec.empty() || !load_snapshot.empty()) {
      return UsageError(
          "--wal is exclusive with --load-spec / --load-snapshot: the WAL's "
          "own checkpoint is the durable warm start (docs/DURABILITY.md)");
    }
  }
  // Spec-only mode: answer membership from a serialized specification
  // (text --load-spec or binary --load-snapshot without a PROGRAM), skipping
  // parse/ground/fixpoint/Q entirely. A saved spec has no rules, so deltas
  // cannot be applied here; --load-snapshot *with* a PROGRAM takes the
  // engine path below, where the snapshot is verified instead of served.
  if (!load_spec.empty() || (!load_snapshot.empty() && program_path.empty())) {
    if (!apply_deltas.empty()) {
      return UsageError(
          "--apply-deltas needs rules: give the PROGRAM positional "
          "alongside --load-snapshot (see docs/INCREMENTAL.md)");
    }
    StatusOr<GraphSpecification> spec = Status::Internal("unreachable");
    if (!load_spec.empty()) {
      auto text = ReadFile(load_spec);
      if (!text.ok()) return Fail(kExitIo, text.status());
      spec = SpecIo::ParseGraphSpec(*text);
    } else {
      auto bytes = ReadFile(load_snapshot, /*binary=*/true);
      if (!bytes.ok()) return Fail(kExitIo, bytes.status());
      spec = Snapshot::ParseGraphSpec(*bytes);
    }
    if (!spec.ok()) return Fail(kExitParse, spec.status());
    printf("loaded specification: %zu clusters, %zu tuples (no rules)\n",
           spec->num_clusters(), spec->num_slice_tuples());
    // Membership via a throwaway program sharing the spec's symbols.
    for (const std::string& fact : facts) {
      Program scratch;
      scratch.symbols = spec->symbols();
      auto q = ParseQuery("? " + fact + ".", &scratch);
      if (!q.ok() || q->atoms.size() != 1 || !q->atoms[0].IsGround() ||
          !q->atoms[0].fterm.has_value()) {
        RELSPEC_LOG(kError) << "bad --fact " << fact;
        continue;
      }
      auto purified = PurifyGroundTerm(*q->atoms[0].fterm, &scratch.symbols);
      if (!purified.ok()) return Fail(kExitEngine, purified.status());
      std::vector<FuncId> syms;
      for (const FuncApply& a : purified->apps) syms.push_back(a.fn);
      std::vector<ConstId> args;
      for (const NfArg& a : q->atoms[0].args) args.push_back(a.id);
      bool holds = spec->Holds(Path(std::move(syms)), q->atoms[0].pred, args);
      printf("%s -> %s\n", fact.c_str(), holds ? "true" : "false");
    }
    return kExitOk;
  }

  if (program_path.empty()) {
    return UsageError(
        "missing PROGRAM.rsp (only --load-spec / --load-snapshot run "
        "without one)");
  }
  auto source = ReadFile(program_path);
  if (!source.ok()) return Fail(kExitIo, source.status());
  auto parsed = Parse(*source);
  if (!parsed.ok()) return Fail(kExitParse, parsed.status());
  std::vector<Query> file_queries = parsed->queries;

  StatusOr<std::unique_ptr<FunctionalDatabase>> db =
      Status::Internal("unreachable");
  RecoveryStats recovery;
  if (wal_path.empty()) {
    db = FunctionalDatabase::FromProgram(std::move(parsed->program), options);
  } else {
    // Durable mode anchors on the rendered program, not the raw file:
    // comments and "? ..." query statements then never shift the recovery
    // fingerprint, and the same bytes re-anchor the log on every run.
    db = FunctionalDatabase::OpenDurable(ToString(parsed->program), wal_path,
                                         durable, options, &recovery);
    if (db.ok() && !file_queries.empty()) {
      // The recovered engine's symbol table is its own (replayed batches may
      // have interned symbols the program file never mentions), so file
      // queries re-parse against it below instead of using the parsed ids.
      std::vector<std::string> rendered;
      for (const Query& q : file_queries) {
        rendered.push_back(ToString(q, parsed->program.symbols));
      }
      queries.insert(queries.begin(), rendered.begin(), rendered.end());
      file_queries.clear();
    }
  }
  if (!db.ok()) return Fail(EngineExitCode(db.status()), db.status());
  if (!wal_path.empty() && want_recover_report) {
    printf("recovery: %s base=%s replayed=%llu batches (%llu bytes) "
           "truncated_tail=%llu bytes%s\n",
           recovery.created ? "fresh log" : "recovered",
           recovery.checkpoint_loaded ? "checkpoint" : "program",
           static_cast<unsigned long long>(recovery.replayed_batches),
           static_cast<unsigned long long>(recovery.replayed_bytes),
           static_cast<unsigned long long>(recovery.truncated_bytes),
           recovery.used_fallback ? " [fell back one generation]" : "");
  }
  if ((*db)->truncated()) {
    RELSPEC_LOG(kWarning) << "partial result (sound under-approximation): "
                          << (*db)->breach().ToString();
  }

  // Warm-start handshake: a PROGRAM + --load-snapshot run verifies the
  // snapshot is byte-identical to the engine just built from the program —
  // i.e. the snapshot really is this database's pre-delta state — before
  // any deltas are applied. A stale or foreign snapshot fails (exit 6).
  if (!load_snapshot.empty()) {
    auto bytes = ReadFile(load_snapshot, /*binary=*/true);
    if (!bytes.ok()) return Fail(kExitIo, bytes.status());
    auto spec = (*db)->BuildGraphSpec();
    if (!spec.ok()) return Fail(EngineExitCode(spec.status()), spec.status());
    if (Snapshot::Serialize(*spec) != *bytes) {
      RELSPEC_LOG(kError) << "snapshot " << load_snapshot
                          << " does not match the engine built from "
                          << program_path << " (stale or foreign snapshot)";
      return kExitVerify;
    }
    printf("snapshot verified against %s (%zu bytes)\n", program_path.c_str(),
           bytes->size());
  }

  // Incremental maintenance (paper section 5): apply base-fact deltas to
  // the built engine. Everything after this point — facts, queries, specs,
  // --save-snapshot — reflects the updated database.
  if (!apply_deltas.empty()) {
    auto text = ReadFile(apply_deltas);
    if (!text.ok()) return Fail(kExitIo, text.status());
    // Durable mode logs the batch before acknowledging it: under
    // --fsync always, this printf implies the batch survives kill -9.
    auto stats = wal_path.empty()
                     ? (*db)->ApplyDeltaText(*text, options)
                     : (*db)->LogAndApplyDeltas(*text, options);
    if (!stats.ok()) {
      return Fail(EngineExitCode(stats.status()), stats.status());
    }
    printf(
        "deltas applied: +%zu -%zu (%zu noops), %s%s\n", stats->inserted,
        stats->deleted, stats->noops,
        stats->rebuilt
            ? "universe changed -> full rebuild"
            : StrFormat("incremental repair (%zu bits retracted, %zu "
                        "re-derivation rounds%s)",
                        stats->deleted_bits, stats->rederive_rounds,
                        stats->chi_reset ? ", chi table reset" : "")
                  .c_str(),
        (*db)->truncated() ? " [truncated]" : "");
    if ((*db)->truncated()) {
      RELSPEC_LOG(kWarning) << "partial result (sound under-approximation): "
                            << (*db)->breach().ToString();
    }
  }

  if (want_info) {
    printf("info: %s\n", (*db)->info().ToString().c_str());
    printf("clusters: %zu  (equivalence scope %zu)\n",
           (*db)->label_graph().num_clusters(),
           (*db)->label_graph().EquivalenceScope());
  }
  if (want_verify) {
    Status cert = (*db)->Verify();
    printf("certificate: %s\n", cert.ToString().c_str());
    if (!cert.ok()) return kExitVerify;
  }

  for (const std::string& fact : facts) {
    auto holds = (*db)->HoldsFactText(fact);
    if (!holds.ok()) return Fail(kExitParse, holds.status());
    printf("%s -> %s\n", fact.c_str(), *holds ? "true" : "false");
  }

  for (const Query& q : file_queries) {
    auto answer = AnswerQuery(db->get(), q);
    if (!answer.ok()) return Fail(EngineExitCode(answer.status()), answer.status());
    PrintAnswer(*answer, horizon);
  }
  for (const std::string& qtext : queries) {
    auto q = ParseQuery(qtext, (*db)->mutable_program());
    if (!q.ok()) return Fail(kExitParse, q.status());
    auto answer = AnswerQuery(db->get(), *q);
    if (!answer.ok()) return Fail(EngineExitCode(answer.status()), answer.status());
    PrintAnswer(*answer, horizon);
  }

  for (const std::string& fact : explains) {
    auto q = ParseQuery("? " + fact + ".", (*db)->mutable_program());
    if (!q.ok()) return Fail(kExitParse, q.status());
    if (q->atoms.size() != 1 || !q->atoms[0].IsGround()) {
      return UsageError("--explain expects a single ground fact");
    }
    const Atom& atom = q->atoms[0];
    std::vector<ConstId> args;
    for (const NfArg& a : atom.args) args.push_back(a.id);
    StatusOr<Derivation> d = Status::NotFound("no functional term");
    if (atom.fterm.has_value()) {
      auto path = (*db)->PathOfGroundTerm(*atom.fterm);
      if (!path.ok()) return Fail(kExitEngine, path.status());
      d = ExplainFact((*db)->ground(), *path, SliceAtom{atom.pred, args});
    } else {
      d = ExplainGlobal((*db)->ground(), atom.pred, args);
    }
    if (!d.ok()) {
      printf("%s: %s\n", fact.c_str(), d.status().ToString().c_str());
      continue;
    }
    printf("derivation of %s (%zu steps):\n%s", fact.c_str(), d->NumSteps(),
           d->ToString((*db)->ground(), (*db)->program().symbols).c_str());
  }

  if (!proofs.empty()) {
    auto espec = (*db)->BuildEquationalSpec();
    if (!espec.ok()) return Fail(EngineExitCode(espec.status()), espec.status());
    espec->set_governor(g_governor);
    for (const auto& [t1, t2] : proofs) {
      // Terms are given as dot-words or numerals, e.g. "4" or "f.g".
      auto to_path = [&](const std::string& text) -> StatusOr<Path> {
        if (!text.empty() && isdigit(static_cast<unsigned char>(text[0]))) {
          auto succ = (*db)->program().symbols.FindFunction("+1");
          if (!succ.ok()) return succ.status();
          std::vector<FuncId> syms(static_cast<size_t>(atoi(text.c_str())),
                                   *succ);
          return Path(std::move(syms));
        }
        if (text == "0") return Path::Zero();
        std::vector<FuncId> syms;
        for (const std::string& name : Split(text, '.')) {
          auto f = (*db)->program().symbols.FindFunction(name);
          if (!f.ok()) return f.status();
          syms.push_back(*f);
        }
        return Path(std::move(syms));
      };
      auto p1 = to_path(t1);
      auto p2 = to_path(t2);
      if (!p1.ok() || !p2.ok()) {
        return UsageError(
            StrFormat("bad --prove terms %s %s", t1.c_str(), t2.c_str()));
      }
      auto proof = espec->ExplainCongruenceText(*p1, *p2);
      if (!proof.ok()) {
        printf("(%s, %s): %s\n", t1.c_str(), t2.c_str(),
               proof.status().ToString().c_str());
      } else {
        printf("proof that %s == %s in Cl(R):\n%s", t1.c_str(), t2.c_str(),
               proof->c_str());
      }
    }
  }

  for (const std::string& ptext : periodics) {
    auto q = ParseQuery("? " + ptext + ".", (*db)->mutable_program());
    if (!q.ok()) return Fail(kExitParse, q.status());
    if (q->atoms.size() != 1 || !q->atoms[0].fterm.has_value()) {
      return UsageError("--periodic expects one functional atom");
    }
    auto spec = (*db)->BuildGraphSpec();
    if (!spec.ok()) return Fail(EngineExitCode(spec.status()), spec.status());
    std::vector<ConstId> args;
    for (const NfArg& a : q->atoms[0].args) {
      if (!a.IsConstant()) {
        return UsageError("--periodic arguments must be constants");
      }
      args.push_back(a.id);
    }
    auto days = PeriodicAnswers(*spec, q->atoms[0].pred, args);
    if (!days.ok()) return Fail(kExitEngine, days.status());
    printf("%s holds at times %s\n", ptext.c_str(),
           days->ToString().c_str());
  }

  if (spec_kind == "graph") {
    auto spec = (*db)->BuildGraphSpec();
    if (!spec.ok()) return Fail(EngineExitCode(spec.status()), spec.status());
    printf("%s", spec->ToString().c_str());
  } else if (spec_kind == "eq") {
    auto spec = (*db)->BuildEquationalSpec();
    if (!spec.ok()) return Fail(EngineExitCode(spec.status()), spec.status());
    printf("%s", spec->ToString().c_str());
  }

  if (!save_spec.empty()) {
    auto spec = (*db)->BuildGraphSpec();
    if (!spec.ok()) return Fail(EngineExitCode(spec.status()), spec.status());
    std::ofstream out(save_spec);
    if (!out) {
      return Fail(kExitIo, Status::NotFound("cannot write " + save_spec));
    }
    out << SpecIo::Serialize(*spec);
    printf("specification saved to %s\n", save_spec.c_str());
  }

  if (!save_snapshot.empty()) {
    auto spec = (*db)->BuildGraphSpec();
    if (!spec.ok()) return Fail(EngineExitCode(spec.status()), spec.status());
    std::ofstream out(save_snapshot, std::ios::binary);
    if (!out) {
      return Fail(kExitIo, Status::NotFound("cannot write " + save_snapshot));
    }
    out << Snapshot::Serialize(*spec);
    printf("snapshot saved to %s\n", save_snapshot.c_str());
  }
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  // --stats/--trace and the governor flags are pre-scanned so
  // instrumentation and the resource budget are live before any work starts
  // and the snapshot is emitted no matter how RunCli exits.
  bool want_stats = false;
  std::string stats_file;
  std::string trace_file;
  GovernorLimits limits;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto value_of = [&](const char* name) -> std::string {
      std::string prefix = std::string(name) + "=";
      if (flag.rfind(prefix, 0) == 0) return flag.substr(prefix.size());
      return i + 1 < argc ? argv[++i] : "";
    };
    if (flag == "--stats") {
      want_stats = true;
    } else if (flag.rfind("--stats=", 0) == 0) {
      want_stats = true;
      stats_file = flag.substr(strlen("--stats="));
    } else if (flag == "--trace") {
      EnableTracing(true);
      if (GetLogLevel() > LogLevel::kInfo) SetLogLevel(LogLevel::kInfo);
    } else if (flag == "--trace-out" || flag.rfind("--trace-out=", 0) == 0) {
      trace_file = value_of("--trace-out");
    } else if (flag == "--deadline-ms" || flag.rfind("--deadline-ms=", 0) == 0) {
      limits.deadline_ms = atoll(value_of("--deadline-ms").c_str());
    } else if (flag == "--max-tuples" || flag.rfind("--max-tuples=", 0) == 0) {
      limits.max_tuples = strtoull(value_of("--max-tuples").c_str(), nullptr, 10);
    } else if (flag == "--max-nodes" || flag.rfind("--max-nodes=", 0) == 0) {
      limits.max_nodes = strtoull(value_of("--max-nodes").c_str(), nullptr, 10);
    } else if (flag == "--max-depth" || flag.rfind("--max-depth=", 0) == 0) {
      limits.max_depth = strtoull(value_of("--max-depth").c_str(), nullptr, 10);
    } else if (flag == "--allow-partial") {
      g_allow_partial = true;
    }
  }
  if (want_stats) EnableMetrics(true);
  if (!trace_file.empty()) {
    Tracer::Global().SetCurrentThreadName("main");
    EnableEventTrace(true);
  }
  failpoint::InitFromEnv();

  // The governor arms its deadline at construction, so it is created after
  // flag parsing and immediately before the governed run.
  ResourceGovernor governor(limits);
  g_governor = &governor;
  std::signal(SIGINT, HandleShutdownSignal);
  std::signal(SIGTERM, HandleShutdownSignal);

  int code;
  {
    RELSPEC_PHASE("governor");
    code = RunCli(argc, argv);
  }
  governor.RecordMetrics();
  g_governor = nullptr;

  // The trace is written before the stats snapshot so the trace.dropped
  // gauge the exporter records is included in the --stats JSON. Both files
  // are emitted on every exit path — including resource breaches (exit 7) —
  // so truncated runs stay diagnosable.
  if (!trace_file.empty()) {
    EnableEventTrace(false);
    Status written = Tracer::Global().WriteChromeJson(trace_file);
    if (!written.ok()) {
      RELSPEC_LOG(kError) << "cannot write --trace-out file " << trace_file
                          << ": " << written.ToString();
      if (code == kExitOk) code = kExitIo;
    }
  }

  if (want_stats) {
    std::string json = MetricsRegistry::Global().Snapshot().ToJson();
    if (stats_file.empty()) {
      printf("%s\n", json.c_str());
    } else {
      std::ofstream out(stats_file);
      if (!out) {
        RELSPEC_LOG(kError) << "cannot write --stats file " << stats_file;
        if (code == kExitOk) code = kExitIo;
      } else {
        out << json << "\n";
      }
    }
  }
  return code;
}
