// relspec_cli: run functional deductive databases from the command line.
//
//   relspec_cli PROGRAM.rsp [flags]
//
//   Queries contained in the program file ("? atoms." statements) are
//   answered automatically. Additional flags:
//
//     --fact "Meets(4, Tony)"   membership test against LFP(Z, D)
//     --query "?(t,x) Meets(t, x)."  answer an ad-hoc query
//     --explain "Meets(4, Tony)"     print a derivation tree
//     --spec graph|eq           print the relational specification
//     --save-spec FILE          serialize the graph specification
//     --load-spec FILE          answer --fact from a saved spec (no rules!)
//     --enumerate DEPTH         horizon for printing query answers (default 6)
//     --prove "T1" "T2"         prove two ground terms congruent (Cl(R))
//     --periodic "OnCall(t, a)" the [CI88] periodic-set answer (one symbol)
//     --merged-frontier         footnote-3 traversal start (depth c)
//     --info                    program parameters (Section 2.5)
//     --verify                  quotient-model certificate

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/str_util.h"
#include "src/core/engine.h"
#include "src/core/explain.h"
#include "src/core/query.h"
#include "src/core/spec_io.h"
#include "src/temporal/periodic_answers.h"
#include "src/parser/parser.h"

namespace {

using namespace relspec;

int Fail(const Status& status) {
  fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void PrintAnswer(const QueryAnswer& answer, int horizon) {
  printf("answer(%s):", relspec::Join(answer.columns(), ",").c_str());
  if (answer.has_functional_answer()) {
    printf(" infinite; finite specification with %zu clusters, %zu tuples\n",
           answer.graph().num_clusters(), answer.NumSpecTuples());
  } else {
    printf(" finite\n");
  }
  auto concrete = answer.Enumerate(horizon, 64);
  if (!concrete.ok()) return;
  for (const ConcreteAnswer& a : *concrete) {
    printf("  ");
    bool first = true;
    if (a.term.has_value()) {
      printf("%s", a.term->ToString(answer.symbols()).c_str());
      first = false;
    }
    for (ConstId c : a.tuple) {
      printf("%s%s", first ? "" : ", ",
             answer.symbols().constant_name(c).c_str());
      first = false;
    }
    printf("\n");
  }
  if (answer.has_functional_answer()) {
    printf("  ... (answers up to term depth %d shown)\n", horizon);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    fprintf(stderr, "usage: %s PROGRAM.rsp [flags]  (see file header)\n",
            argv[0]);
    return 2;
  }

  std::string program_path = argv[1];
  std::vector<std::string> facts, queries, explains, periodics;
  std::vector<std::pair<std::string, std::string>> proofs;
  std::string spec_kind, save_spec, load_spec;
  bool want_info = false, want_verify = false;
  int horizon = 6;
  EngineOptions options;
  for (int i = 2; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (flag == "--fact") {
      facts.push_back(next());
    } else if (flag == "--query") {
      queries.push_back(next());
    } else if (flag == "--explain") {
      explains.push_back(next());
    } else if (flag == "--prove") {
      std::string t1 = next();
      proofs.emplace_back(t1, next());
    } else if (flag == "--periodic") {
      periodics.push_back(next());
    } else if (flag == "--spec") {
      spec_kind = next();
    } else if (flag == "--save-spec") {
      save_spec = next();
    } else if (flag == "--load-spec") {
      load_spec = next();
    } else if (flag == "--enumerate") {
      horizon = atoi(next());
    } else if (flag == "--merged-frontier") {
      options.graph.merge_trunk_frontier = true;
    } else if (flag == "--info") {
      want_info = true;
    } else if (flag == "--verify") {
      want_verify = true;
    } else {
      fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return 2;
    }
  }

  // Spec-only mode: answer membership from a serialized specification.
  if (!load_spec.empty()) {
    auto text = ReadFile(load_spec);
    if (!text.ok()) return Fail(text.status());
    auto spec = SpecIo::ParseGraphSpec(*text);
    if (!spec.ok()) return Fail(spec.status());
    printf("loaded specification: %zu clusters, %zu tuples (no rules)\n",
           spec->num_clusters(), spec->num_slice_tuples());
    // Membership via a throwaway program sharing the spec's symbols.
    for (const std::string& fact : facts) {
      Program scratch;
      scratch.symbols = spec->symbols();
      auto q = ParseQuery("? " + fact + ".", &scratch);
      if (!q.ok() || q->atoms.size() != 1 || !q->atoms[0].IsGround() ||
          !q->atoms[0].fterm.has_value()) {
        fprintf(stderr, "bad --fact %s\n", fact.c_str());
        continue;
      }
      auto purified = PurifyGroundTerm(*q->atoms[0].fterm, &scratch.symbols);
      if (!purified.ok()) return Fail(purified.status());
      std::vector<FuncId> syms;
      for (const FuncApply& a : purified->apps) syms.push_back(a.fn);
      std::vector<ConstId> args;
      for (const NfArg& a : q->atoms[0].args) args.push_back(a.id);
      bool holds = spec->Holds(Path(std::move(syms)), q->atoms[0].pred, args);
      printf("%s -> %s\n", fact.c_str(), holds ? "true" : "false");
    }
    return 0;
  }

  auto source = ReadFile(program_path);
  if (!source.ok()) return Fail(source.status());
  auto parsed = Parse(*source);
  if (!parsed.ok()) return Fail(parsed.status());
  std::vector<Query> file_queries = parsed->queries;

  auto db = FunctionalDatabase::FromProgram(std::move(parsed->program), options);
  if (!db.ok()) return Fail(db.status());

  if (want_info) {
    printf("info: %s\n", (*db)->info().ToString().c_str());
    printf("clusters: %zu  (equivalence scope %zu)\n",
           (*db)->label_graph().num_clusters(),
           (*db)->label_graph().EquivalenceScope());
  }
  if (want_verify) {
    Status cert = (*db)->Verify();
    printf("certificate: %s\n", cert.ToString().c_str());
    if (!cert.ok()) return 1;
  }

  for (const std::string& fact : facts) {
    auto holds = (*db)->HoldsFactText(fact);
    if (!holds.ok()) return Fail(holds.status());
    printf("%s -> %s\n", fact.c_str(), *holds ? "true" : "false");
  }

  for (const Query& q : file_queries) {
    auto answer = AnswerQuery(db->get(), q);
    if (!answer.ok()) return Fail(answer.status());
    PrintAnswer(*answer, horizon);
  }
  for (const std::string& qtext : queries) {
    auto q = ParseQuery(qtext, (*db)->mutable_program());
    if (!q.ok()) return Fail(q.status());
    auto answer = AnswerQuery(db->get(), *q);
    if (!answer.ok()) return Fail(answer.status());
    PrintAnswer(*answer, horizon);
  }

  for (const std::string& fact : explains) {
    auto q = ParseQuery("? " + fact + ".", (*db)->mutable_program());
    if (!q.ok()) return Fail(q.status());
    if (q->atoms.size() != 1 || !q->atoms[0].IsGround()) {
      fprintf(stderr, "--explain expects a single ground fact\n");
      return 2;
    }
    const Atom& atom = q->atoms[0];
    std::vector<ConstId> args;
    for (const NfArg& a : atom.args) args.push_back(a.id);
    StatusOr<Derivation> d = Status::NotFound("no functional term");
    if (atom.fterm.has_value()) {
      auto path = (*db)->PathOfGroundTerm(*atom.fterm);
      if (!path.ok()) return Fail(path.status());
      d = ExplainFact((*db)->ground(), *path, SliceAtom{atom.pred, args});
    } else {
      d = ExplainGlobal((*db)->ground(), atom.pred, args);
    }
    if (!d.ok()) {
      printf("%s: %s\n", fact.c_str(), d.status().ToString().c_str());
      continue;
    }
    printf("derivation of %s (%zu steps):\n%s", fact.c_str(), d->NumSteps(),
           d->ToString((*db)->ground(), (*db)->program().symbols).c_str());
  }

  if (!proofs.empty()) {
    auto espec = (*db)->BuildEquationalSpec();
    if (!espec.ok()) return Fail(espec.status());
    for (const auto& [t1, t2] : proofs) {
      // Terms are given as dot-words or numerals, e.g. "4" or "f.g".
      auto to_path = [&](const std::string& text) -> StatusOr<Path> {
        if (!text.empty() && isdigit(static_cast<unsigned char>(text[0]))) {
          auto succ = (*db)->program().symbols.FindFunction("+1");
          if (!succ.ok()) return succ.status();
          std::vector<FuncId> syms(static_cast<size_t>(atoi(text.c_str())),
                                   *succ);
          return Path(std::move(syms));
        }
        if (text == "0") return Path::Zero();
        std::vector<FuncId> syms;
        for (const std::string& name : Split(text, '.')) {
          auto f = (*db)->program().symbols.FindFunction(name);
          if (!f.ok()) return f.status();
          syms.push_back(*f);
        }
        return Path(std::move(syms));
      };
      auto p1 = to_path(t1);
      auto p2 = to_path(t2);
      if (!p1.ok() || !p2.ok()) {
        fprintf(stderr, "bad --prove terms %s %s\n", t1.c_str(), t2.c_str());
        return 2;
      }
      auto proof = espec->ExplainCongruenceText(*p1, *p2);
      if (!proof.ok()) {
        printf("(%s, %s): %s\n", t1.c_str(), t2.c_str(),
               proof.status().ToString().c_str());
      } else {
        printf("proof that %s == %s in Cl(R):\n%s", t1.c_str(), t2.c_str(),
               proof->c_str());
      }
    }
  }

  for (const std::string& ptext : periodics) {
    auto q = ParseQuery("? " + ptext + ".", (*db)->mutable_program());
    if (!q.ok()) return Fail(q.status());
    if (q->atoms.size() != 1 || !q->atoms[0].fterm.has_value()) {
      fprintf(stderr, "--periodic expects one functional atom\n");
      return 2;
    }
    auto spec = (*db)->BuildGraphSpec();
    if (!spec.ok()) return Fail(spec.status());
    std::vector<ConstId> args;
    for (const NfArg& a : q->atoms[0].args) {
      if (!a.IsConstant()) {
        fprintf(stderr, "--periodic arguments must be constants\n");
        return 2;
      }
      args.push_back(a.id);
    }
    auto days = PeriodicAnswers(*spec, q->atoms[0].pred, args);
    if (!days.ok()) return Fail(days.status());
    printf("%s holds at times %s\n", ptext.c_str(),
           days->ToString().c_str());
  }

  if (spec_kind == "graph") {
    auto spec = (*db)->BuildGraphSpec();
    if (!spec.ok()) return Fail(spec.status());
    printf("%s", spec->ToString().c_str());
  } else if (spec_kind == "eq") {
    auto spec = (*db)->BuildEquationalSpec();
    if (!spec.ok()) return Fail(spec.status());
    printf("%s", spec->ToString().c_str());
  }

  if (!save_spec.empty()) {
    auto spec = (*db)->BuildGraphSpec();
    if (!spec.ok()) return Fail(spec.status());
    std::ofstream out(save_spec);
    out << SpecIo::Serialize(*spec);
    printf("specification saved to %s\n", save_spec.c_str());
  }
  return 0;
}
