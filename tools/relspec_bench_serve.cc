// relspec_bench_serve: open-loop serving-SLO load harness.
//
// Replays a deterministic mixed request stream against an in-process engine
// and reports latency percentiles plus error/breach counts as a
// machine-readable BENCH_serve.json (schema relspec-bench-v1, directly
// consumable by tools/bench_compare). See docs/SERVING.md.
//
//   relspec_bench_serve [PROGRAM.rsp] [flags]
//
// The request schedule (arrival time, request type, key) is precomputed from
// --seed before any client starts, so the stream is byte-deterministic for a
// fixed seed: --dump-requests writes it out and the report embeds a
// request_seq_hash over it. Arrivals are open-loop — evenly spaced at the
// target QPS, independent of completions — and each request's latency is
// measured from its *scheduled* arrival, so queueing delay when the engine
// falls behind is included (no coordinated omission).
//
// Request types (weights set by --mix):
//   membership  GraphSpecification::Holds on a precomputed probe fact
//   cached      AnswerQueryCached through a per-client QueryCache
//   uncached    AnswerQuery with no cache (incremental or recompute,
//               depending on the key's query shape)
//   snapshot    warm-start: parse the binary snapshot, then one Holds
//   update      FunctionalDatabase::ApplyDeltas toggling one base fact
//               (delete if present, re-insert otherwise) on this lane's
//               engine — incremental maintenance under live load
//               (docs/INCREMENTAL.md); weight 0 by default
//
// Durable updates (--wal PREFIX): each lane opens its engine through a
// write-ahead log at PREFIX.laneN.rwal and update requests go through
// LogAndApplyDeltas, so the update latency quantiles include the WAL append
// and fsync cost under the --fsync policy (docs/DURABILITY.md). After the
// run, every lane's log is closed and recovered from scratch; a recovered
// fingerprint that differs from the lane's final in-memory fingerprint is a
// harness failure, so the report doubles as a durability check.
//
// Daemon replay (--connect ADDR): the same precomputed stream is shipped to a
// running relspecd over the RSRV protocol (src/serve/protocol.h) instead of
// being executed in-process — membership and snapshot requests become wire
// membership lookups, cached/uncached become wire queries, updates become
// wire deltas. The per-type answer mixing is identical, so an update-free mix
// replayed against a daemon serving the same program produces the same
// answers_hash as the in-process run (the acceptance check in
// tools/check_serve.sh daemon mode relies on this). See docs/DAEMON.md.
//
// Each client lane owns its own FunctionalDatabase, GraphSpecification and
// QueryCache (the cache and parts of the engine are documented
// not-thread-safe); lanes are scheduled through the existing TaskPool so
// worker threads appear as named lanes in the Perfetto timeline. Requests
// slower than --slow-ms emit a "slow_request" instant into the trace.
//
// Per-request SLO: --deadline-ms / --request-max-tuples construct a fresh
// ResourceGovernor per request. A breach is an *error reply* counted in the
// report ("requests.breaches"), never a process exit — the harness exits 0
// as long as the run itself completed.
//
// Exit codes: 0 run completed (even with error replies), 2 usage,
// 3 I/O error, 4 program parse/build error.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/ast/printer.h"
#include "src/base/governor.h"
#include "src/base/metrics.h"
#include "src/base/status.h"
#include "src/base/str_util.h"
#include "src/base/task_pool.h"
#include "src/base/trace.h"
#include "src/core/engine.h"
#include "src/core/query.h"
#include "src/core/snapshot.h"
#include "src/core/wal.h"
#include "src/parser/parser.h"
#include "src/serve/client.h"
#include "src/term/path.h"

namespace relspec {
namespace {

constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitIo = 3;
constexpr int kExitParse = 4;

enum RequestType : uint8_t {
  kMembership = 0,
  kCached = 1,
  kUncached = 2,
  kSnapshot = 3,
  kUpdate = 4,
};
constexpr const char* kTypeNames[] = {"membership", "cached", "uncached",
                                      "snapshot", "update"};
constexpr int kNumTypes = 5;

struct Options {
  std::string program_file;  // empty: builtin rotation program
  int rotation = 8;
  double qps = 2000.0;
  int clients = 2;
  int64_t duration_ms = 1000;
  uint64_t requests = 0;  // 0: derived from qps * duration
  uint64_t seed = 42;
  double zipf = 0.99;
  int population = 64;
  // The default update weight is 0 so existing seeds keep byte-identical
  // schedules (BuildSchedule draws `pick % weight_sum` and the sum stays 100).
  uint64_t mix[kNumTypes] = {60, 25, 10, 5, 0};
  int64_t slow_ms = 10;
  int64_t deadline_ms = 0;          // per-request; 0 = off
  uint64_t request_max_tuples = 0;  // per-request; 0 = off
  std::string out_file = "BENCH_serve.json";
  /// Suite name for the embedded relspec-bench-v1 block; a durable CI
  /// replay sets its own name so bench_compare gates it against the
  /// matching baseline suite instead of the plain-serve numbers.
  std::string suite_name = "bench_serve";
  std::string trace_file;
  std::string stats_file;  // "-" = stdout
  bool want_stats = false;
  std::string dump_requests_file;
  /// Durable updates: when set, lane i serves through a WAL at
  /// PREFIX.lane<i>.rwal and update requests are logged before they are
  /// acknowledged (stale logs from earlier runs are removed first, so the
  /// schedule stays deterministic).
  std::string wal_prefix;
  DurableOptions durable;
  /// Daemon replay: when set, every lane connects to a running relspecd at
  /// this address (unix path or host:port) and requests go over the RSRV
  /// protocol instead of in-process calls. The PROGRAM/--rotation flags
  /// must describe the same program the daemon serves; the per-key request
  /// material (probe facts, query text, deltas) is still derived locally,
  /// so an update-free mix replays to the same answers_hash as in-process
  /// mode. Mixes with updates are still deterministic across daemon replays
  /// at --clients 1, but diverge from in-process: the daemon rebuilds its
  /// spec after every update, while in-process lanes probe a spec built at
  /// setup. See docs/DAEMON.md.
  std::string connect;
};

void PrintHelp() {
  printf(
      "relspec_bench_serve - open-loop serving-SLO load harness\n"
      "\n"
      "usage: relspec_bench_serve [PROGRAM.rsp] [flags]\n"
      "\n"
      "With no PROGRAM.rsp a builtin k-team rotation program is served\n"
      "(--rotation sets k). The request stream is precomputed from --seed\n"
      "and is byte-identical across runs with the same flags.\n"
      "\n"
      "load shape:\n"
      "  --qps N                       target request rate (default 2000)\n"
      "  --clients N                   client lanes routed through the task\n"
      "                                pool (default 2)\n"
      "  --duration-ms N               run length; request count is\n"
      "                                qps * duration (default 1000)\n"
      "  --requests N                  exact request count (overrides\n"
      "                                --duration-ms)\n"
      "  --seed N                      PRNG seed for the schedule (default 42)\n"
      "  --zipf S                      Zipf skew exponent for key popularity\n"
      "                                (default 0.99; 0 = uniform)\n"
      "  --population N                number of distinct request keys\n"
      "                                (default 64)\n"
      "  --mix T=W,...                 request-type weights, e.g.\n"
      "                                membership=60,cached=25,uncached=10,\n"
      "                                snapshot=5,update=0 (the default;\n"
      "                                update requests apply base-fact deltas\n"
      "                                and run ungoverned, see\n"
      "                                docs/INCREMENTAL.md)\n"
      "\n"
      "durable updates:\n"
      "  --wal PREFIX                  open each lane's engine through a\n"
      "                                write-ahead log at PREFIX.laneN.rwal;\n"
      "                                update requests are logged before they\n"
      "                                are acknowledged, and every lane's log\n"
      "                                is recovered and fingerprint-checked\n"
      "                                after the run (docs/DURABILITY.md)\n"
      "  --fsync always|batch|off      WAL durability policy (default always)\n"
      "  --checkpoint-every N          checkpoint + rotate a lane's log after\n"
      "                                every N logged batches (default 0)\n"
      "\n"
      "daemon replay:\n"
      "  --connect ADDR                replay the stream against a running\n"
      "                                relspecd (unix path or host:port) over\n"
      "                                the RSRV protocol instead of\n"
      "                                in-process calls; PROGRAM/--rotation\n"
      "                                must match the daemon's program, and\n"
      "                                an update-free mix reproduces the\n"
      "                                in-process answers_hash exactly\n"
      "                                (docs/DAEMON.md); excludes --wal\n"
      "\n"
      "per-request SLO:\n"
      "  --deadline-ms N               per-request deadline; a breach is an\n"
      "                                error reply, not a process exit\n"
      "  --request-max-tuples N        per-request derived-tuple budget\n"
      "                                (deterministic breach for tests)\n"
      "  --slow-ms N                   requests slower than this emit a\n"
      "                                slow_request trace instant (default\n"
      "                                10; 0 marks every request)\n"
      "\n"
      "output:\n"
      "  --out FILE                    machine-readable report (default\n"
      "                                BENCH_serve.json)\n"
      "  --suite-name NAME             suite name for the report's embedded\n"
      "                                relspec-bench-v1 block (default\n"
      "                                bench_serve; the CI durable replay\n"
      "                                uses bench_serve_durable)\n"
      "  --dump-requests FILE          write the precomputed schedule, one\n"
      "                                'seq arrival_us type key' line per\n"
      "                                request (determinism checks)\n"
      "  --trace-out FILE              write a Chrome trace-event JSON\n"
      "                                timeline of the run\n"
      "  --stats[=FILE]                dump the full metrics registry JSON\n"
      "  --help                        this text\n");
}

int Usage(const std::string& msg) {
  fprintf(stderr, "relspec_bench_serve: %s\n(--help for usage)\n",
          msg.c_str());
  return kExitUsage;
}

// --- deterministic PRNG -----------------------------------------------------

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double NextUnit(uint64_t* state) {
  return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
}

// --- request schedule -------------------------------------------------------

struct Request {
  uint64_t arrival_ns = 0;
  uint32_t key = 0;
  RequestType type = kMembership;
};

/// Zipf(s) sampler over [0, n): precomputed CDF + binary search.
class ZipfSampler {
 public:
  ZipfSampler(int n, double s) : cdf_(static_cast<size_t>(n)) {
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      total += std::pow(static_cast<double>(i + 1), -s);
      cdf_[static_cast<size_t>(i)] = total;
    }
    for (double& c : cdf_) c /= total;
  }
  uint32_t Sample(double u) const {
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end()) --it;
    return static_cast<uint32_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

std::vector<Request> BuildSchedule(const Options& opt, uint64_t total) {
  std::vector<Request> reqs(total);
  ZipfSampler zipf(opt.population, opt.zipf);
  uint64_t weight_sum = 0;
  for (uint64_t w : opt.mix) weight_sum += w;
  uint64_t rng = opt.seed * 0x9e3779b97f4a7c15ULL + 1;
  const double ns_per_req = 1e9 / opt.qps;
  for (uint64_t i = 0; i < total; ++i) {
    Request& r = reqs[i];
    r.arrival_ns = static_cast<uint64_t>(static_cast<double>(i) * ns_per_req);
    uint64_t pick = SplitMix64(&rng) % weight_sum;
    int type = 0;
    for (; type < kNumTypes - 1; ++type) {
      if (pick < opt.mix[type]) break;
      pick -= opt.mix[type];
    }
    r.type = static_cast<RequestType>(type);
    r.key = zipf.Sample(NextUnit(&rng));
  }
  return reqs;
}

uint64_t HashSchedule(const std::vector<Request>& reqs) {
  uint64_t h = 0x243f6a8885a308d3ULL;  // pi
  for (size_t i = 0; i < reqs.size(); ++i) {
    uint64_t mixed = h ^ (static_cast<uint64_t>(i) << 40) ^
                     (static_cast<uint64_t>(reqs[i].type) << 32) ^
                     (static_cast<uint64_t>(reqs[i].key) << 1) ^
                     reqs[i].arrival_ns;
    h = SplitMix64(&mixed);
  }
  return h;
}

// --- workload ---------------------------------------------------------------

/// Per-key request material, derived once from a prototype engine build and
/// shared read-only by every client lane.
struct Workload {
  std::string source;
  /// Membership probe for key k: Holds(path, pred, args) on the spec.
  struct Probe {
    Path path;
    PredId pred;
    std::vector<ConstId> args;
  };
  std::vector<Probe> probes;
  /// The same probes rendered as fact text ("Pred(f(g(0)), c)") — the
  /// --connect mode ships membership requests as text over the wire, and the
  /// daemon re-parses them against the same program, so Holds sees the same
  /// (path, pred, args) triple.
  std::vector<std::string> probe_text;
  /// Query text for key k (parsed per client; ~1 in 5 keys get a
  /// non-uniform shape that exercises the recompute path).
  std::vector<std::string> queries;
  /// Serialized graph-spec snapshot (warm-start requests re-parse it).
  std::string snapshot_bytes;
  /// Per-key base fact for update requests (taken from the program's own
  /// facts, so every delta is valid and the grounded universe never grows).
  /// Empty when the update weight is 0.
  std::vector<Atom> delta_facts;
  /// The same facts rendered as source text — durable lanes log deltas
  /// through LogAndApplyDeltas, which takes delta *text*.
  std::vector<std::string> delta_fact_text;
};

std::string RenderTerm(const std::string& func_name, const std::string& base) {
  // "+1"-style suffix operators render as base+1; ordinary symbols as f(base).
  if (!func_name.empty() && func_name[0] == '+') return base + func_name;
  return func_name + "(" + base + ")";
}

bool UsableConstant(const std::string& name) {
  // Must re-parse as a constant token: lowercase start outside the variable
  // range [s-z].
  return !name.empty() && name[0] >= 'a' && name[0] < 's';
}

bool UsablePredicate(const std::string& name) {
  if (name.empty() || name[0] < 'A' || name[0] > 'Z') return false;
  for (char c : name) {
    if (!isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

StatusOr<Workload> BuildWorkload(const Options& opt, std::string source) {
  Workload w;
  w.source = std::move(source);

  RELSPEC_ASSIGN_OR_RETURN(std::unique_ptr<FunctionalDatabase> db,
                           FunctionalDatabase::FromSource(w.source));
  RELSPEC_ASSIGN_OR_RETURN(GraphSpecification spec, db->BuildGraphSpec());
  w.snapshot_bytes = Snapshot::Serialize(spec);

  const SymbolTable& sym = spec.symbols();
  std::vector<PredId> fpreds;
  for (PredId p = 0; p < sym.num_predicates(); ++p) {
    if (sym.predicate(p).functional && UsablePredicate(sym.predicate(p).name)) {
      fpreds.push_back(p);
    }
  }
  if (fpreds.empty()) {
    return Status::InvalidArgument(
        "program has no queryable functional predicate");
  }
  std::vector<ConstId> consts;
  for (ConstId c = 0; c < sym.num_constants(); ++c) {
    if (UsableConstant(sym.constant_name(c))) consts.push_back(c);
  }
  const std::vector<FuncId>& alphabet = spec.alphabet();

  w.probes.reserve(static_cast<size_t>(opt.population));
  w.queries.reserve(static_cast<size_t>(opt.population));
  for (int k = 0; k < opt.population; ++k) {
    uint64_t rng = opt.seed ^ (0xabcdef12345678ULL + static_cast<uint64_t>(k));
    SplitMix64(&rng);

    // Membership probe: a pseudo-random path (bounded depth) and a
    // pseudo-random argument tuple. Probes that answer false are as useful
    // as ones that answer true — both exercise the Link walk.
    Workload::Probe probe;
    probe.pred = fpreds[SplitMix64(&rng) % fpreds.size()];
    if (!alphabet.empty()) {
      int depth = static_cast<int>(SplitMix64(&rng) % 12);
      std::vector<FuncId> syms(static_cast<size_t>(depth));
      for (FuncId& f : syms) f = alphabet[SplitMix64(&rng) % alphabet.size()];
      probe.path = Path(std::move(syms));
    }
    int arity = sym.predicate(probe.pred).arity;
    for (int a = 1; a < arity; ++a) {
      if (consts.empty()) break;
      probe.args.push_back(consts[SplitMix64(&rng) % consts.size()]);
    }
    // Rendered form of the same probe. Path symbols are innermost-first, so
    // folding RenderTerm over them rebuilds the nested term left to right:
    // [f, g] -> g(f(0)). Requires a surface-renderable alphabet, the same
    // constraint the recompute query shape below already imposes.
    std::string term = "0";
    for (FuncId f : probe.path.symbols()) {
      term = RenderTerm(sym.function(f).name, term);
    }
    std::string fact = sym.predicate(probe.pred).name + "(" + term;
    for (ConstId carg : probe.args) fact += ", " + sym.constant_name(carg);
    fact += ")";
    w.probe_text.push_back(std::move(fact));
    w.probes.push_back(std::move(probe));

    // Query text. Shapes (per-key, fixed by the seed):
    //   A  ?(t, x1, ...) P(t, x1, ...).        full projection, uniform
    //   B  ?(t, ...) P(t, ..., c, ...).        one constant pin, uniform
    //   C  ?(x1, ...) P(f(t), x1, ...).        non-uniform -> recompute
    PredId qp = fpreds[SplitMix64(&rng) % fpreds.size()];
    int qarity = sym.predicate(qp).arity;
    uint64_t shape = SplitMix64(&rng) % 5;
    bool recompute_shape = shape == 4 && !alphabet.empty();
    int pin = (shape >= 2 && shape < 4 && qarity > 1 && !consts.empty())
                  ? static_cast<int>(1 + SplitMix64(&rng) %
                                             static_cast<uint64_t>(qarity - 1))
                  : -1;
    std::string head = "?(";
    std::string body = sym.predicate(qp).name + "(";
    std::string fterm = "t";
    if (recompute_shape) {
      fterm = RenderTerm(
          sym.function(alphabet[SplitMix64(&rng) % alphabet.size()]).name, "t");
    } else {
      head += "t";
    }
    body += fterm;
    for (int a = 1; a < qarity; ++a) {
      body += ", ";
      if (a == pin) {
        body += sym.constant_name(consts[SplitMix64(&rng) % consts.size()]);
      } else {
        std::string var = "x" + std::to_string(a);
        body += var;
        if (head.size() > 2) head += ", ";
        head += var;
      }
    }
    if (head == "?(") head += "t";  // degenerate: keep at least one column
    w.queries.push_back(head + ") " + body + ").");
  }

  if (opt.mix[kUpdate] > 0) {
    const std::vector<Atom>& facts = db->original_program().facts;
    if (facts.empty()) {
      return Status::InvalidArgument(
          "update requests need a program with base facts");
    }
    w.delta_facts.reserve(static_cast<size_t>(opt.population));
    w.delta_fact_text.reserve(static_cast<size_t>(opt.population));
    for (int k = 0; k < opt.population; ++k) {
      uint64_t rng = opt.seed ^ (0x5bd1e9955bd1e995ULL + static_cast<uint64_t>(k));
      SplitMix64(&rng);
      w.delta_facts.push_back(facts[SplitMix64(&rng) % facts.size()]);
      w.delta_fact_text.push_back(
          ToString(w.delta_facts.back(), db->original_program().symbols));
    }
  }
  return w;
}

// --- per-client serving loop ------------------------------------------------

struct ClientState {
  std::unique_ptr<FunctionalDatabase> db;
  GraphSpecification spec;
  std::unique_ptr<QueryCache> cache;
  std::vector<Query> queries;  // parsed against this client's program
  /// --connect mode: this lane's RSRV connection to the daemon (the in-process
  /// members above stay empty).
  std::unique_ptr<serve::ServeClient> remote;
  /// Update-toggle state per key: true while the key's delta fact is present
  /// in this lane's program (all facts start present).
  std::vector<uint8_t> fact_present;

  uint64_t done = 0;
  uint64_t ok = 0;
  uint64_t errors = 0;
  uint64_t breaches = 0;
  uint64_t slow = 0;
  uint64_t by_type[kNumTypes] = {};
  uint64_t answers_hash = 0x6a09e667f3bcc908ULL;
  uint64_t last_end_ns = 0;
  Status fatal;  // setup failure for this lane
  std::string wal_path;  // durable mode: this lane's log
};

Status SetupClient(const Options& opt, const Workload& w, size_t lane,
                   ClientState* c) {
  if (!opt.connect.empty()) {
    // Daemon replay: no local engine at all — every lane is just a socket.
    RELSPEC_ASSIGN_OR_RETURN(c->remote,
                             serve::ServeClient::Connect(opt.connect));
    c->fact_present.assign(w.delta_facts.size(), 1);
    return Status::OK();
  }
  if (opt.wal_prefix.empty()) {
    RELSPEC_ASSIGN_OR_RETURN(c->db, FunctionalDatabase::FromSource(w.source));
  } else {
    c->wal_path = StrFormat("%s.lane%zu.rwal", opt.wal_prefix.c_str(), lane);
    // The bench always starts from a clean log: a stale WAL from an earlier
    // run would replay into this lane and break schedule determinism.
    const char* suffixes[] = {"", ".prev", ".tmp", ".ckpt", ".ckpt.prev",
                              ".ckpt.tmp"};
    for (const char* suffix : suffixes) {
      std::remove((c->wal_path + suffix).c_str());
    }
    RELSPEC_ASSIGN_OR_RETURN(
        c->db,
        FunctionalDatabase::OpenDurable(w.source, c->wal_path, opt.durable));
  }
  RELSPEC_ASSIGN_OR_RETURN(c->spec, c->db->BuildGraphSpec());
  c->cache = std::make_unique<QueryCache>();
  c->queries.reserve(w.queries.size());
  for (const std::string& text : w.queries) {
    RELSPEC_ASSIGN_OR_RETURN(Query q,
                             ParseQuery(text, c->db->mutable_program()));
    c->queries.push_back(std::move(q));
  }
  c->fact_present.assign(w.delta_facts.size(), 1);
  return Status::OK();
}

void MixAnswer(ClientState* c, uint64_t v) {
  uint64_t mixed = c->answers_hash ^ v;
  c->answers_hash = SplitMix64(&mixed);
}

/// Executes one request. Returns the reply status: OK, a resource breach
/// (per-request governor), or an engine error.
Status ExecuteRequest(const Workload& w, const Request& r,
                      ResourceGovernor* governor, ClientState* c) {
  switch (r.type) {
    case kMembership: {
      const Workload::Probe& p = w.probes[r.key];
      MixAnswer(c, c->spec.Holds(p.path, p.pred, p.args) ? 1 : 0);
      return Status::OK();
    }
    case kCached: {
      auto answer = AnswerQueryCached(c->db.get(), c->queries[r.key],
                                      c->cache.get(), governor);
      if (!answer.ok()) return answer.status();
      MixAnswer(c, (*answer)->NumSpecTuples());
      return Status::OK();
    }
    case kUncached: {
      auto answer = AnswerQuery(c->db.get(), c->queries[r.key], governor);
      if (!answer.ok()) return answer.status();
      MixAnswer(c, answer->NumSpecTuples());
      return Status::OK();
    }
    case kSnapshot: {
      auto spec = Snapshot::ParseGraphSpec(w.snapshot_bytes);
      if (!spec.ok()) return spec.status();
      const Workload::Probe& p = w.probes[r.key];
      MixAnswer(c, spec->Holds(p.path, p.pred, p.args) ? 1 : 0);
      return Status::OK();
    }
    case kUpdate: {
      // Toggle this key's base fact: delete while present, re-insert after.
      // Updates run *ungoverned* (the per-request governor is ignored): a
      // breach mid-repair leaves the engine in an unspecified state, which
      // would corrupt this lane for every later request. The update latency
      // histogram is the SLO signal instead.
      const bool insert = c->fact_present[r.key] == 0;
      StatusOr<DeltaStats> stats = Status::Internal("unreachable");
      if (c->db->durable()) {
        // Logged before acknowledged: the measured latency includes the WAL
        // append and (policy-dependent) fsync.
        stats = c->db->LogAndApplyDeltas(
            StrFormat("%c %s.\n", insert ? '+' : '-',
                      w.delta_fact_text[r.key].c_str()));
      } else {
        FactDelta d;
        d.insert = insert;
        d.fact = w.delta_facts[r.key];
        stats = c->db->ApplyDeltas({d});
      }
      if (!stats.ok()) return stats.status();
      c->fact_present[r.key] = insert ? 1 : 0;
      MixAnswer(c, c->db->Fingerprint() ^ (stats->rebuilt ? 1 : 0) ^
                       (stats->deleted_bits << 1));
      return Status::OK();
    }
  }
  return Status::Internal("unreachable request type");
}

/// --connect mode: the same request, shipped over RSRV instead of called
/// in-process. Each type mixes the same value into answers_hash as its
/// in-process twin, so an update-free replay against a daemon serving the
/// same program reproduces the in-process report's answers_hash exactly.
/// Updates mix the daemon's post-apply fingerprint; at --clients 1 the apply
/// order is fixed, so the hash is stable across daemon replays (though not
/// equal to in-process, whose membership probes see a setup-time spec while
/// the daemon's spec tracks every delta).
Status ExecuteRemote(const Options& opt, const Workload& w, const Request& r,
                     ClientState* c) {
  switch (r.type) {
    case kMembership:
    case kSnapshot: {
      // Both map to a daemon membership lookup: the daemon *is* the
      // warm-started spec, so the snapshot type degenerates to Holds.
      auto holds = c->remote->Membership(w.probe_text[r.key]);
      if (!holds.ok()) return holds.status();
      MixAnswer(c, *holds ? 1 : 0);
      return Status::OK();
    }
    case kCached:
    case kUncached: {
      // The daemon routes every query through its shared cache; the
      // distinction between the two types lives server-side only. Both mix
      // the spec-tuple count, which is cache-invariant.
      auto result = c->remote->Query(
          w.queries[r.key],
          opt.deadline_ms > 0 ? static_cast<uint64_t>(opt.deadline_ms) : 0,
          opt.request_max_tuples);
      if (!result.ok()) return result.status();
      MixAnswer(c, result->spec_tuples);
      return Status::OK();
    }
    case kUpdate: {
      const bool insert = c->fact_present[r.key] == 0;
      auto result = c->remote->Update(
          StrFormat("%c %s.\n", insert ? '+' : '-',
                    w.delta_fact_text[r.key].c_str()));
      if (!result.ok()) return result.status();
      c->fact_present[r.key] = insert ? 1 : 0;
      MixAnswer(c, result->fingerprint ^ (result->rebuilt ? 1 : 0) ^
                       (result->deleted_bits << 1));
      return Status::OK();
    }
  }
  return Status::Internal("unreachable request type");
}

void ServeLane(const Options& opt, const Workload& w,
               const std::vector<Request>& reqs,
               std::chrono::steady_clock::time_point start, size_t lane,
               size_t num_lanes, Histogram* lat_all, Histogram* svc_all,
               Histogram* lat_type[kNumTypes], ClientState* c) {
  const GovernorLimits limits = [&] {
    GovernorLimits l;
    l.deadline_ms = opt.deadline_ms;
    l.max_tuples = opt.request_max_tuples;
    return l;
  }();
  const bool governed = opt.deadline_ms > 0 || opt.request_max_tuples > 0;
  const uint64_t slow_ns = static_cast<uint64_t>(opt.slow_ms) * 1000000ull;

  for (size_t i = lane; i < reqs.size(); i += num_lanes) {
    const Request& r = reqs[i];
    auto scheduled = start + std::chrono::nanoseconds(r.arrival_ns);
    std::this_thread::sleep_until(scheduled);
    auto t0 = std::chrono::steady_clock::now();

    Status reply;
    if (c->remote != nullptr) {
      // Daemon replay: the SLO limits travel in the request header and the
      // governor lives server-side; a breach comes back as an error reply
      // whose status code IsResourceBreach() recognizes.
      reply = ExecuteRemote(opt, w, r, c);
    } else if (governed) {
      // Constructed per request: the governor arms its deadline at
      // construction, so each request gets a fresh budget.
      ResourceGovernor governor(limits);
      reply = ExecuteRequest(w, r, &governor, c);
    } else {
      reply = ExecuteRequest(w, r, nullptr, c);
    }

    auto t1 = std::chrono::steady_clock::now();
    uint64_t latency_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - scheduled)
            .count());
    uint64_t service_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    lat_all->Record(latency_ns);
    svc_all->Record(service_ns);
    lat_type[r.type]->Record(latency_ns);

    ++c->done;
    ++c->by_type[r.type];
    if (reply.ok()) {
      ++c->ok;
    } else {
      ++c->errors;
      if (reply.IsResourceBreach()) ++c->breaches;
    }
    if (latency_ns > slow_ns) {
      ++c->slow;
      RELSPEC_TRACE_INSTANT1("serve", "slow_request", "lat_us",
                             latency_ns / 1000);
    }
    c->last_end_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - start)
            .count());
  }
}

// --- report -----------------------------------------------------------------

void AppendQuantiles(const HistogramSnapshot* h, std::string* out) {
  const char* labels[] = {"p50", "p90", "p95", "p99", "p999"};
  for (size_t i = 0; i < 5; ++i) {
    out->append(StrFormat(
        "\"%s\": %llu, ", labels[i],
        static_cast<unsigned long long>(
            h == nullptr
                ? 0
                : h->ValueAtQuantile(HistogramSnapshot::kReportedQuantiles[i]))));
  }
  uint64_t mean = (h == nullptr || h->count == 0) ? 0 : h->sum / h->count;
  out->append(StrFormat(
      "\"min\": %llu, \"max\": %llu, \"mean\": %llu, \"count\": %llu",
      static_cast<unsigned long long>(h == nullptr ? 0 : h->min),
      static_cast<unsigned long long>(h == nullptr ? 0 : h->max),
      static_cast<unsigned long long>(mean),
      static_cast<unsigned long long>(h == nullptr ? 0 : h->count)));
}

std::string BuildReport(const Options& opt, const std::string& program_label,
                        uint64_t total_requests, uint64_t seq_hash,
                        const std::vector<ClientState>& clients,
                        const MetricsSnapshot& snap, double achieved_qps) {
  uint64_t done = 0, ok = 0, errors = 0, breaches = 0, slow = 0;
  uint64_t by_type[kNumTypes] = {};
  uint64_t answers_hash = 0x243f6a8885a308d3ULL;
  for (const ClientState& c : clients) {
    done += c.done;
    ok += c.ok;
    errors += c.errors;
    breaches += c.breaches;
    slow += c.slow;
    for (int t = 0; t < kNumTypes; ++t) by_type[t] += c.by_type[t];
    // Lane order is fixed (lane i serves requests i mod clients), so this
    // combined hash is deterministic too.
    uint64_t mixed = answers_hash ^ c.answers_hash;
    answers_hash = SplitMix64(&mixed);
  }

  const HistogramSnapshot* lat = snap.histogram("serve.latency_ns");
  const HistogramSnapshot* svc = snap.histogram("serve.service_ns");

  std::string out = "{\n  \"schema\": \"relspec-bench-v1\",\n";
  out += "  \"tool\": \"relspec_bench_serve\",\n";
  out += "  \"config\": {\n";
  out += StrFormat("    \"program\": \"%s\",\n", program_label.c_str());
  out += StrFormat("    \"connect\": \"%s\",\n", opt.connect.c_str());
  out += StrFormat(
      "    \"qps\": %.3f, \"clients\": %d, \"duration_ms\": %lld,\n", opt.qps,
      opt.clients, static_cast<long long>(opt.duration_ms));
  out += StrFormat(
      "    \"requests\": %llu, \"seed\": %llu, \"zipf\": %.4f, "
      "\"population\": %d,\n",
      static_cast<unsigned long long>(total_requests),
      static_cast<unsigned long long>(opt.seed), opt.zipf, opt.population);
  out += "    \"mix\": {";
  for (int t = 0; t < kNumTypes; ++t) {
    out += StrFormat("%s\"%s\": %llu", t == 0 ? "" : ", ", kTypeNames[t],
                     static_cast<unsigned long long>(opt.mix[t]));
  }
  out += "},\n";
  out += StrFormat(
      "    \"slow_ms\": %lld, \"deadline_ms\": %lld, "
      "\"request_max_tuples\": %llu,\n",
      static_cast<long long>(opt.slow_ms),
      static_cast<long long>(opt.deadline_ms),
      static_cast<unsigned long long>(opt.request_max_tuples));
  out += StrFormat(
      "    \"wal\": {\"enabled\": %s, \"fsync\": \"%s\", "
      "\"checkpoint_every\": %llu}\n",
      opt.wal_prefix.empty() ? "false" : "true",
      FsyncModeName(opt.durable.wal.fsync),
      static_cast<unsigned long long>(opt.durable.checkpoint_every));
  out += "  },\n";
  out += StrFormat("  \"request_seq_hash\": \"0x%016llx\",\n",
                   static_cast<unsigned long long>(seq_hash));
  out += StrFormat("  \"answers_hash\": \"0x%016llx\",\n",
                   static_cast<unsigned long long>(answers_hash));
  out += StrFormat(
      "  \"requests\": {\"total\": %llu, \"ok\": %llu, \"errors\": %llu, "
      "\"breaches\": %llu, \"slow\": %llu,\n    \"by_type\": {",
      static_cast<unsigned long long>(done),
      static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(errors),
      static_cast<unsigned long long>(breaches),
      static_cast<unsigned long long>(slow));
  for (int t = 0; t < kNumTypes; ++t) {
    out += StrFormat("%s\"%s\": %llu", t == 0 ? "" : ", ", kTypeNames[t],
                     static_cast<unsigned long long>(by_type[t]));
  }
  out += "}},\n";
  out += "  \"latency_ns\": {";
  AppendQuantiles(lat, &out);
  out += "},\n  \"service_ns\": {";
  AppendQuantiles(svc, &out);
  out += "},\n";
  for (int t = 0; t < kNumTypes; ++t) {
    const HistogramSnapshot* h =
        snap.histogram(std::string("serve.latency_ns.") + kTypeNames[t]);
    out += StrFormat("  \"latency_ns_%s\": {", kTypeNames[t]);
    AppendQuantiles(h, &out);
    out += "},\n";
  }
  out += StrFormat("  \"qps\": {\"target\": %.3f, \"achieved\": %.3f},\n",
                   opt.qps, achieved_qps);
  out += StrFormat(
      "  \"cache\": {\"hits\": %llu, \"misses\": %llu},\n",
      static_cast<unsigned long long>(snap.counter("cache.hit")),
      static_cast<unsigned long long>(snap.counter("cache.miss")));
  out += StrFormat("  \"trace\": {\"dropped\": %lld},\n",
                   static_cast<long long>(snap.gauge("trace.dropped")));

  // Embedded relspec-bench-v1 suite: bench_compare consumes this report
  // directly. Thresholds are generous (shared CI runners); tests that want
  // a tight gate override them with bench_compare --threshold.
  out += StrFormat("  \"suites\": {\n    \"%s\": {\n",
                   opt.suite_name.c_str());
  out +=
      "      \"thresholds\": {\"default\": 3.0, \"achieved_qps\": 0.6},\n"
      "      \"metrics\": {\n";
  const char* labels[] = {"p50", "p90", "p95", "p99", "p999"};
  for (size_t i = 0; i < 5; ++i) {
    out += StrFormat(
        "        \"%s_ns\": {\"value\": %llu, \"dir\": \"lower\"},\n",
        labels[i],
        static_cast<unsigned long long>(
            lat == nullptr ? 0
                           : lat->ValueAtQuantile(
                                 HistogramSnapshot::kReportedQuantiles[i])));
  }
  out += StrFormat(
      "        \"achieved_qps\": {\"value\": %.3f, \"dir\": \"higher\"}\n",
      achieved_qps);
  out += "      }\n    }\n  }\n}\n";
  return out;
}

// --- main -------------------------------------------------------------------

bool ParseMix(const std::string& spec, uint64_t mix[kNumTypes]) {
  for (int t = 0; t < kNumTypes; ++t) mix[t] = 0;
  std::stringstream ss(spec);
  std::string item;
  bool any = false;
  while (std::getline(ss, item, ',')) {
    size_t eq = item.find('=');
    if (eq == std::string::npos) return false;
    std::string name = item.substr(0, eq);
    int type = -1;
    for (int t = 0; t < kNumTypes; ++t) {
      if (name == kTypeNames[t]) type = t;
    }
    if (type < 0) return false;
    mix[type] = strtoull(item.c_str() + eq + 1, nullptr, 10);
    any = any || mix[type] > 0;
  }
  return any;
}

int Run(int argc, char** argv) {
  Options opt;
  auto value_of = [&](int* i, const char* flag) -> std::string {
    std::string arg = argv[*i];
    std::string prefix = std::string(flag) + "=";
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
    if (*i + 1 < argc) return argv[++*i];
    return "";
  };
  auto matches = [&](const char* arg, const char* flag) {
    return strcmp(arg, flag) == 0 ||
           std::string(arg).rfind(std::string(flag) + "=", 0) == 0;
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintHelp();
      return kExitOk;
    } else if (matches(argv[i], "--rotation")) {
      opt.rotation = atoi(value_of(&i, "--rotation").c_str());
    } else if (matches(argv[i], "--qps")) {
      opt.qps = atof(value_of(&i, "--qps").c_str());
    } else if (matches(argv[i], "--clients")) {
      opt.clients = atoi(value_of(&i, "--clients").c_str());
    } else if (matches(argv[i], "--duration-ms")) {
      opt.duration_ms = atoll(value_of(&i, "--duration-ms").c_str());
    } else if (matches(argv[i], "--requests")) {
      opt.requests = strtoull(value_of(&i, "--requests").c_str(), nullptr, 10);
    } else if (matches(argv[i], "--seed")) {
      opt.seed = strtoull(value_of(&i, "--seed").c_str(), nullptr, 10);
    } else if (matches(argv[i], "--zipf")) {
      opt.zipf = atof(value_of(&i, "--zipf").c_str());
    } else if (matches(argv[i], "--population")) {
      opt.population = atoi(value_of(&i, "--population").c_str());
    } else if (matches(argv[i], "--mix")) {
      if (!ParseMix(value_of(&i, "--mix"), opt.mix)) {
        return Usage("bad --mix (want e.g. membership=60,cached=25)");
      }
    } else if (matches(argv[i], "--wal")) {
      opt.wal_prefix = value_of(&i, "--wal");
    } else if (matches(argv[i], "--connect")) {
      opt.connect = value_of(&i, "--connect");
    } else if (matches(argv[i], "--fsync")) {
      std::string value = value_of(&i, "--fsync");
      auto mode = ParseFsyncMode(value);
      if (!mode.ok()) return Usage("--fsync expects always|batch|off");
      opt.durable.wal.fsync = *mode;
    } else if (matches(argv[i], "--checkpoint-every")) {
      opt.durable.checkpoint_every = strtoull(
          value_of(&i, "--checkpoint-every").c_str(), nullptr, 10);
    } else if (matches(argv[i], "--slow-ms")) {
      opt.slow_ms = atoll(value_of(&i, "--slow-ms").c_str());
    } else if (matches(argv[i], "--deadline-ms")) {
      opt.deadline_ms = atoll(value_of(&i, "--deadline-ms").c_str());
    } else if (matches(argv[i], "--request-max-tuples")) {
      opt.request_max_tuples =
          strtoull(value_of(&i, "--request-max-tuples").c_str(), nullptr, 10);
    } else if (matches(argv[i], "--out")) {
      opt.out_file = value_of(&i, "--out");
    } else if (matches(argv[i], "--suite-name")) {
      opt.suite_name = value_of(&i, "--suite-name");
    } else if (matches(argv[i], "--dump-requests")) {
      opt.dump_requests_file = value_of(&i, "--dump-requests");
    } else if (matches(argv[i], "--trace-out")) {
      opt.trace_file = value_of(&i, "--trace-out");
    } else if (arg == "--stats" || arg.rfind("--stats=", 0) == 0) {
      opt.want_stats = true;
      if (arg.rfind("--stats=", 0) == 0) opt.stats_file = arg.substr(8);
    } else if (arg.rfind("--", 0) == 0) {
      return Usage("unknown flag " + arg);
    } else if (opt.program_file.empty()) {
      opt.program_file = arg;
    } else {
      return Usage("more than one PROGRAM argument");
    }
  }
  if (opt.qps <= 0) return Usage("--qps must be positive");
  if (opt.clients < 1) return Usage("--clients must be >= 1");
  if (opt.population < 1) return Usage("--population must be >= 1");
  if (opt.rotation < 1) return Usage("--rotation must be >= 1");
  if (opt.duration_ms < 1 && opt.requests == 0) {
    return Usage("--duration-ms must be >= 1");
  }
  if (!opt.connect.empty() && !opt.wal_prefix.empty()) {
    // In daemon replay the lanes own no engine: durability belongs to the
    // daemon's own --wal flag, not the harness.
    return Usage("--connect and --wal are mutually exclusive");
  }

  EnableMetrics(true);  // the report is built from histograms
  if (!opt.trace_file.empty()) {
    Tracer::Global().SetCurrentThreadName("main");
    EnableEventTrace(true);
  }

  std::string source;
  std::string program_label;
  if (opt.program_file.empty()) {
    source = relspec_bench::RotationProgram(opt.rotation);
    program_label = StrFormat("builtin:rotation%d", opt.rotation);
  } else {
    std::ifstream in(opt.program_file);
    if (!in) {
      fprintf(stderr, "relspec_bench_serve: cannot read %s\n",
              opt.program_file.c_str());
      return kExitIo;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    source = buf.str();
    program_label = opt.program_file;
  }

  uint64_t total = opt.requests > 0
                       ? opt.requests
                       : static_cast<uint64_t>(
                             opt.qps * static_cast<double>(opt.duration_ms) /
                             1000.0);
  if (total == 0) total = 1;

  const std::vector<Request> reqs = BuildSchedule(opt, total);
  const uint64_t seq_hash = HashSchedule(reqs);
  if (!opt.dump_requests_file.empty()) {
    std::ofstream out(opt.dump_requests_file);
    if (!out) {
      fprintf(stderr, "relspec_bench_serve: cannot write %s\n",
              opt.dump_requests_file.c_str());
      return kExitIo;
    }
    for (size_t i = 0; i < reqs.size(); ++i) {
      out << i << " " << reqs[i].arrival_ns / 1000 << " "
          << kTypeNames[reqs[i].type] << " " << reqs[i].key << "\n";
    }
  }

  StatusOr<Workload> workload = [&] {
    RELSPEC_PHASE("serve.build");
    return BuildWorkload(opt, std::move(source));
  }();
  if (!workload.ok()) {
    fprintf(stderr, "relspec_bench_serve: workload build failed: %s\n",
            workload.status().ToString().c_str());
    return kExitParse;
  }

  std::vector<ClientState> clients(static_cast<size_t>(opt.clients));
  {
    RELSPEC_PHASE("serve.setup");
    for (size_t lane = 0; lane < clients.size(); ++lane) {
      Status st = SetupClient(opt, *workload, lane, &clients[lane]);
      if (!st.ok()) {
        fprintf(stderr, "relspec_bench_serve: client setup failed: %s\n",
                st.ToString().c_str());
        return kExitParse;
      }
    }
  }

  MetricsRegistry& reg = MetricsRegistry::Global();
  Histogram* lat_all = reg.GetHistogram("serve.latency_ns");
  Histogram* svc_all = reg.GetHistogram("serve.service_ns");
  Histogram* lat_type[kNumTypes];
  for (int t = 0; t < kNumTypes; ++t) {
    lat_type[t] =
        reg.GetHistogram(std::string("serve.latency_ns.") + kTypeNames[t]);
  }

  TaskPool pool(opt.clients);
  auto wall0 = std::chrono::steady_clock::now();
  {
    RELSPEC_PHASE("serve.run");
    auto start = std::chrono::steady_clock::now();
    // min_grain 1 over [0, clients) yields exactly one chunk per lane.
    pool.ParallelFor(0, static_cast<size_t>(opt.clients), 1,
                     [&](size_t begin, size_t end, size_t /*chunk*/) {
                       for (size_t lane = begin; lane < end; ++lane) {
                         ServeLane(opt, *workload, reqs, start, lane,
                                   static_cast<size_t>(opt.clients), lat_all,
                                   svc_all, lat_type, &clients[lane]);
                       }
                     });
  }
  auto wall1 = std::chrono::steady_clock::now();

  // Durable mode closes every lane's log and proves recovery: reopening the
  // WAL from scratch must rebuild an engine with the lane's exact final
  // fingerprint. A mismatch is a harness failure, not a metric.
  if (!opt.wal_prefix.empty()) {
    RELSPEC_PHASE("serve.recover_verify");
    uint64_t replayed = 0;
    for (size_t lane = 0; lane < clients.size(); ++lane) {
      ClientState& c = clients[lane];
      const uint64_t want = c.db->Fingerprint();
      c.db.reset();  // closes (and syncs) the lane's log
      RecoveryStats rec;
      auto re = FunctionalDatabase::OpenDurable(workload->source, c.wal_path,
                                                opt.durable, EngineOptions(),
                                                &rec);
      if (!re.ok()) {
        fprintf(stderr,
                "relspec_bench_serve: lane %zu WAL recovery failed: %s\n",
                lane, re.status().ToString().c_str());
        return kExitParse;
      }
      if ((*re)->Fingerprint() != want) {
        fprintf(stderr,
                "relspec_bench_serve: lane %zu recovered fingerprint "
                "mismatch (wal %s)\n",
                lane, c.wal_path.c_str());
        return kExitParse;
      }
      replayed += rec.replayed_batches;
    }
    fprintf(stderr,
            "serve: wal recovery verified on %zu lanes (%llu batches "
            "replayed)\n",
            clients.size(), static_cast<unsigned long long>(replayed));
  }

  uint64_t span_ns = 0;
  for (const ClientState& c : clients) span_ns = std::max(span_ns, c.last_end_ns);
  if (span_ns == 0) {
    span_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(wall1 - wall0)
            .count());
  }
  double achieved_qps =
      static_cast<double>(total) / (static_cast<double>(span_ns) / 1e9);

  int code = kExitOk;
  // The trace is exported before the snapshot so the trace.dropped gauge is
  // reflected in both the report and the --stats JSON.
  if (!opt.trace_file.empty()) {
    EnableEventTrace(false);
    Status written = Tracer::Global().WriteChromeJson(opt.trace_file);
    if (!written.ok()) {
      fprintf(stderr, "relspec_bench_serve: cannot write --trace-out %s: %s\n",
              opt.trace_file.c_str(), written.ToString().c_str());
      code = kExitIo;
    }
  }

  MetricsSnapshot snap = reg.Snapshot();
  std::string report = BuildReport(opt, program_label, total, seq_hash,
                                   clients, snap, achieved_qps);
  {
    std::ofstream out(opt.out_file);
    if (!out) {
      fprintf(stderr, "relspec_bench_serve: cannot write --out %s\n",
              opt.out_file.c_str());
      return kExitIo;
    }
    out << report;
  }

  if (opt.want_stats) {
    std::string json = snap.ToJson();
    if (opt.stats_file.empty() || opt.stats_file == "-") {
      printf("%s\n", json.c_str());
    } else {
      std::ofstream out(opt.stats_file);
      if (!out) {
        fprintf(stderr, "relspec_bench_serve: cannot write --stats %s\n",
                opt.stats_file.c_str());
        return kExitIo;
      }
      out << json << "\n";
    }
  }

  uint64_t done = 0, errors = 0, breaches = 0, slow = 0;
  for (const ClientState& c : clients) {
    done += c.done;
    errors += c.errors;
    breaches += c.breaches;
    slow += c.slow;
  }
  const HistogramSnapshot* lat = snap.histogram("serve.latency_ns");
  fprintf(stderr,
          "serve: %llu requests (%llu errors, %llu breaches, %llu slow), "
          "qps %.1f/%.1f, p50 %llu us, p99 %llu us -> %s\n",
          static_cast<unsigned long long>(done),
          static_cast<unsigned long long>(errors),
          static_cast<unsigned long long>(breaches),
          static_cast<unsigned long long>(slow), achieved_qps, opt.qps,
          static_cast<unsigned long long>(
              (lat != nullptr ? lat->ValueAtQuantile(0.5) : 0) / 1000),
          static_cast<unsigned long long>(
              (lat != nullptr ? lat->ValueAtQuantile(0.99) : 0) / 1000),
          opt.out_file.c_str());
  return code;
}

}  // namespace
}  // namespace relspec

int main(int argc, char** argv) { return relspec::Run(argc, argv); }
