// relspecd: the long-lived query-serving daemon (docs/DAEMON.md).
//
//   relspecd [PROGRAM.rsp] [flags]
//
//   Exactly one source of truth must be given: a PROGRAM.rsp positional,
//   --rotation K (the builtin k-team rotation program — the serving
//   benchmark family), or --load-snapshot FILE (spec-only warm start:
//   membership/ping/stats/trace-dump only, since a saved spec has no
//   rules). The engine is built ONCE; clients then speak the RSRV
//   length-prefixed binary protocol over a Unix-domain or TCP socket.
//
//     --socket PATH             listen on a Unix-domain socket at PATH
//     --tcp-port N              listen on 127.0.0.1:N instead (0 picks an
//                               ephemeral port, printed on the ready line)
//     --threads N               TaskPool lanes for request execution
//                               (default 2; 1 = run requests inline)
//     --rotation K              serve the builtin k-team rotation program
//     --load-snapshot FILE      spec-only warm start from a binary snapshot
//     --wal FILE                durable serving: open the engine through a
//                               write-ahead log (docs/DURABILITY.md);
//                               update acks then mean applied AND logged.
//                               Needs a program (positional or --rotation)
//     --fsync always|batch|off  WAL durability policy (default always)
//     --checkpoint-every N      checkpoint + rotate after N logged batches
//     --cache-entries N         shared query-cache entry ceiling (default 64)
//     --cache-bytes N           shared query-cache byte ceiling (default 16M)
//     --deadline-ms N           default per-request deadline for requests
//                               that carry none in their header
//     --max-tuples N            default per-request tuple budget, likewise
//     --slowlog-ms N            slow-query audit log: record every request
//                               whose total latency is >= N ms (0 records
//                               all); arms the `slowlog-dump` request type.
//                               Off by default (docs/OPERATIONS.md)
//     --slowlog-sample N        also record 1-in-N of the requests under
//                               the --slowlog-ms threshold (0 = none)
//     --slowlog-out FILE        flush the slow log as JSONL on drain
//     --reply-timing            append "  -- elapsed N ns" to every query
//                               reply text (off: reply bytes stay canonical)
//     --stats[=FILE]            dump a JSON metrics snapshot on exit
//                               (stdout when no FILE); also enables the
//                               live `stats` request type's metrics
//     --trace-out FILE          record a Chrome trace timeline, written on
//                               exit; also arms the live `trace-dump`
//                               request type
//     --ping ADDR               client mode: connect to a running daemon at
//                               ADDR (unix path or host:port), ping it,
//                               print "pong fp=0x..." and exit 0 (1 on
//                               failure). No server is started.
//     --help                    this summary
//
//   On SIGTERM/SIGINT the daemon drains: the listener closes, in-flight
//   requests complete and their responses are written, then stats and
//   trace are flushed exactly like the CLI and the process exits 0. A
//   per-request resource breach is always an error *reply* (the exit-7
//   taxonomy mapped to RSRV status codes) — the daemon never exits 7.
//
//   Exit codes: 0 clean shutdown, 2 usage error, 3 I/O error, 4 parse
//   error, 5 engine error.

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "bench/bench_util.h"
#include "src/ast/printer.h"
#include "src/base/logging.h"
#include "src/base/metrics.h"
#include "src/base/str_util.h"
#include "src/base/trace.h"
#include "src/core/engine.h"
#include "src/core/snapshot.h"
#include "src/core/wal.h"
#include "src/parser/parser.h"
#include "src/serve/client.h"
#include "src/serve/server.h"

namespace relspec {
namespace {

constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitIo = 3;
constexpr int kExitParse = 4;
constexpr int kExitEngine = 5;

serve::Server* g_server = nullptr;

void HandleShutdownSignal(int) {
  if (g_server != nullptr) g_server->RequestShutdown();
}

int UsageError(const std::string& message) {
  fprintf(stderr, "relspecd: %s\n", message.c_str());
  return kExitUsage;
}

int Fail(int code, const Status& status) {
  fprintf(stderr, "relspecd: %s\n", status.ToString().c_str());
  return code;
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void PrintHelp(const char* argv0) {
  printf(
      "usage: %s [PROGRAM.rsp] [flags]\n"
      "\n"
      "Serve a relational specification over the RSRV binary protocol\n"
      "(docs/DAEMON.md). Exactly one program source: PROGRAM.rsp,\n"
      "--rotation K, or --load-snapshot FILE (spec-only).\n"
      "\n"
      "  --socket PATH             Unix-domain socket to listen on\n"
      "  --tcp-port N              listen on 127.0.0.1:N (0 = ephemeral)\n"
      "  --threads N               request-execution lanes (default 2)\n"
      "  --rotation K              builtin k-team rotation program\n"
      "  --load-snapshot FILE      spec-only warm start (membership only)\n"
      "  --wal FILE                durable serving through a write-ahead log\n"
      "  --fsync always|batch|off  WAL durability policy (default always)\n"
      "  --checkpoint-every N      checkpoint + rotate after N batches\n"
      "  --cache-entries N         query-cache entry ceiling (default 64)\n"
      "  --cache-bytes N           query-cache byte ceiling (default 16M)\n"
      "  --deadline-ms N           default per-request deadline\n"
      "  --max-tuples N            default per-request tuple budget\n"
      "  --slowlog-ms N            record requests slower than N ms (0 = all)\n"
      "  --slowlog-sample N        sample 1-in-N of the faster requests\n"
      "  --slowlog-out FILE        flush the slow log as JSONL on drain\n"
      "  --reply-timing            append elapsed-ns to query reply text\n"
      "  --stats[=FILE]            JSON metrics snapshot on exit\n"
      "  --trace-out FILE          Chrome trace timeline, written on exit\n"
      "  --ping ADDR               client mode: ping a running daemon\n"
      "  --help                    this summary\n",
      argv0);
}

int RunDaemon(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--help") {
      PrintHelp(argv[0]);
      return kExitOk;
    }
  }
  std::string program_path;
  int first_flag = 1;
  if (argc > 1 && argv[1][0] != '-') {
    program_path = argv[1];
    first_flag = 2;
  }
  std::string load_snapshot, wal_path, ping_addr;
  std::string stats_file, trace_file, slowlog_file;
  bool want_stats = false;
  bool fsync_given = false, checkpoint_given = false;
  int rotation = 0;
  DurableOptions durable;
  serve::ServerOptions options;
  for (int i = first_flag; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (flag == "--socket") {
      options.unix_path = next();
    } else if (flag == "--tcp-port") {
      options.tcp_port = atoi(next());
    } else if (flag == "--threads") {
      options.threads = atoi(next());
    } else if (flag == "--rotation") {
      rotation = atoi(next());
    } else if (flag == "--load-snapshot") {
      load_snapshot = next();
    } else if (flag == "--wal") {
      wal_path = next();
    } else if (flag == "--fsync") {
      std::string value = next();
      auto mode = ParseFsyncMode(value);
      if (!mode.ok()) {
        return UsageError("--fsync expects always|batch|off, got \"" + value +
                          "\"");
      }
      durable.wal.fsync = *mode;
      fsync_given = true;
    } else if (flag == "--checkpoint-every") {
      durable.checkpoint_every = static_cast<uint64_t>(atoll(next()));
      checkpoint_given = true;
    } else if (flag == "--cache-entries") {
      options.cache.max_entries = static_cast<size_t>(atoll(next()));
    } else if (flag == "--cache-bytes") {
      options.cache.max_bytes = static_cast<size_t>(atoll(next()));
    } else if (flag == "--deadline-ms") {
      options.default_limits.deadline_ms = atoll(next());
    } else if (flag == "--max-tuples") {
      options.default_limits.max_tuples =
          static_cast<uint64_t>(atoll(next()));
    } else if (flag == "--slowlog-ms") {
      options.slowlog.threshold_ms = atoll(next());
    } else if (flag == "--slowlog-sample") {
      options.slowlog.sample_every = static_cast<uint64_t>(atoll(next()));
    } else if (flag == "--slowlog-out") {
      slowlog_file = next();
    } else if (flag == "--reply-timing") {
      options.reply_timing = true;
    } else if (flag == "--stats") {
      want_stats = true;
    } else if (flag.rfind("--stats=", 0) == 0) {
      want_stats = true;
      stats_file = flag.substr(strlen("--stats="));
    } else if (flag == "--trace-out") {
      trace_file = next();
    } else if (flag == "--ping") {
      ping_addr = next();
    } else {
      return UsageError("unknown flag " + flag + " (see --help)");
    }
  }

  // Client mode: ping a running daemon and report its fingerprint.
  if (!ping_addr.empty()) {
    auto client = serve::ServeClient::Connect(ping_addr);
    if (!client.ok()) {
      fprintf(stderr, "relspecd: %s\n", client.status().ToString().c_str());
      return 1;
    }
    auto fp = (*client)->Ping();
    if (!fp.ok()) {
      fprintf(stderr, "relspecd: %s\n", fp.status().ToString().c_str());
      return 1;
    }
    printf("pong fp=0x%016llx\n", static_cast<unsigned long long>(*fp));
    return kExitOk;
  }

  int sources = (program_path.empty() ? 0 : 1) + (rotation > 0 ? 1 : 0) +
                (load_snapshot.empty() ? 0 : 1);
  if (sources != 1) {
    return UsageError(
        "give exactly one of PROGRAM.rsp, --rotation K, or "
        "--load-snapshot FILE");
  }
  if (options.unix_path.empty() == (options.tcp_port < 0)) {
    return UsageError("give exactly one of --socket PATH or --tcp-port N");
  }
  if (wal_path.empty() && (fsync_given || checkpoint_given)) {
    return UsageError(
        "--fsync / --checkpoint-every only apply to durable mode: add "
        "--wal FILE");
  }
  if (!wal_path.empty() && !load_snapshot.empty()) {
    return UsageError(
        "--wal is exclusive with --load-snapshot: the WAL's own checkpoint "
        "is the durable warm start (docs/DURABILITY.md)");
  }
  if (options.slowlog.threshold_ms < 0 &&
      (options.slowlog.sample_every > 0 || !slowlog_file.empty())) {
    return UsageError(
        "--slowlog-sample / --slowlog-out only apply with the slow log on: "
        "add --slowlog-ms N");
  }

  // --stats / --trace-out arm the live request types too.
  if (want_stats) EnableMetrics(true);
  if (!trace_file.empty()) {
    EnableEventTrace(true);
    // The poll loop runs on this thread; name its lane like the CLI does so
    // trace_check --require-lane main holds for daemon timelines too.
    Tracer::Global().SetCurrentThreadName("main");
  }

  // Build the engine once, before any client connects.
  StatusOr<std::unique_ptr<serve::Server>> server =
      Status::Internal("unreachable");
  if (!load_snapshot.empty()) {
    auto bytes = ReadFile(load_snapshot);
    if (!bytes.ok()) return Fail(kExitIo, bytes.status());
    auto spec = Snapshot::ParseGraphSpec(*bytes);
    if (!spec.ok()) return Fail(kExitParse, spec.status());
    server = serve::Server::CreateSpecOnly(std::move(spec).value(), options);
  } else {
    std::string source;
    if (rotation > 0) {
      source = relspec_bench::RotationProgram(rotation);
    } else {
      auto text = ReadFile(program_path);
      if (!text.ok()) return Fail(kExitIo, text.status());
      source = std::move(text).value();
    }
    auto parsed = Parse(source);
    if (!parsed.ok()) return Fail(kExitParse, parsed.status());
    StatusOr<std::unique_ptr<FunctionalDatabase>> db =
        Status::Internal("unreachable");
    if (wal_path.empty()) {
      db = FunctionalDatabase::FromProgram(std::move(parsed->program));
    } else {
      // Durable mode anchors on the rendered program (like the CLI), so
      // comments never shift the recovery fingerprint.
      RecoveryStats recovery;
      db = FunctionalDatabase::OpenDurable(ToString(parsed->program),
                                           wal_path, durable, {}, &recovery);
      if (db.ok()) {
        fprintf(stderr,
                "relspecd: durable open: %s, %llu batch(es) replayed\n",
                recovery.created ? "fresh log" : "recovered",
                static_cast<unsigned long long>(recovery.replayed_batches));
      }
    }
    if (!db.ok()) return Fail(kExitEngine, db.status());
    server = serve::Server::Create(std::move(db).value(), options);
  }
  if (!server.ok()) return Fail(kExitEngine, server.status());

  g_server = server->get();
  std::signal(SIGINT, HandleShutdownSignal);
  std::signal(SIGTERM, HandleShutdownSignal);
  // A client vanishing mid-write must not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);

  if (!options.unix_path.empty()) {
    printf("relspecd: serving on %s (pid %d)\n", options.unix_path.c_str(),
           getpid());
  } else {
    printf("relspecd: serving on 127.0.0.1:%d (pid %d)\n",
           (*server)->tcp_port(), getpid());
  }
  fflush(stdout);

  Status served = (*server)->Serve();
  g_server = nullptr;
  if (!served.ok()) return Fail(kExitIo, served);
  printf("relspecd: drained after %llu request(s)\n",
         static_cast<unsigned long long>((*server)->requests_served()));

  int code = kExitOk;
  // Slow-log flush on drain: the same JSONL a kSlowlogDump request returns,
  // written after every in-flight request has completed and recorded.
  if (!slowlog_file.empty()) {
    std::ofstream out(slowlog_file);
    if (!out) {
      RELSPEC_LOG(kError) << "cannot write --slowlog-out file "
                          << slowlog_file;
      code = kExitIo;
    } else {
      out << (*server)->slowlog().DumpJsonl();
    }
  }
  // Trace before stats, like the CLI: the exporter's trace.dropped gauge
  // then lands in the stats JSON.
  if (!trace_file.empty()) {
    EnableEventTrace(false);
    Status written = Tracer::Global().WriteChromeJson(trace_file);
    if (!written.ok()) {
      RELSPEC_LOG(kError) << "cannot write --trace-out file " << trace_file
                          << ": " << written.ToString();
      code = kExitIo;
    }
  }
  if (want_stats) {
    std::string json = MetricsRegistry::Global().Snapshot().ToJson();
    if (stats_file.empty()) {
      printf("%s\n", json.c_str());
    } else {
      std::ofstream out(stats_file);
      if (!out) {
        RELSPEC_LOG(kError) << "cannot write --stats file " << stats_file;
        code = kExitIo;
      } else {
        out << json << "\n";
      }
    }
  }
  return code;
}

}  // namespace
}  // namespace relspec

int main(int argc, char** argv) {
  return relspec::RunDaemon(argc, argv);
}
