#!/usr/bin/env bash
# CTest driver for the resource governor's CLI contract.
#
# Usage: check_governor.sh CLI_BINARY EXAMPLES_DIR MODE [TRACE_CHECK_BINARY]
#
# MODE deadline: the divergent program must exit with the dedicated
#   resource-exhaustion code (7) and do so promptly — within the
#   --deadline-ms budget plus scheduling slack. The --stats and --trace-out
#   files must both be flushed (and be valid) despite the breach, so
#   truncated runs stay diagnosable; the trace is validated with
#   TRACE_CHECK_BINARY when one is given.
# MODE partial: with --allow-partial the same program must exit 0, emit a
#   well-formed truncated specification, and report breach metrics in the
#   --stats snapshot.
# MODE delta: warm-start from a snapshot, then apply a base-fact delta that
#   makes the fixpoint diverge (docs/INCREMENTAL.md). The snapshot handshake
#   must pass, the breached delta application must exit 7, and --stats /
#   --trace-out must be flushed exactly like a breached build.
# MODE sigterm: SIGTERM takes the same cooperative-cancellation path as
#   SIGINT — the divergent program must unwind cleanly with exit 7 (not die
#   on the default signal disposition, which would be 143), promptly, with
#   --stats and --trace-out flushed. A supervisor's TERM is not data loss.
# MODE daemon: CLI_BINARY carries relspecd instead. SIGTERM mid-serving must
#   drain — requests already accepted get replies, the process exits 0 (not
#   143, never 7: a daemon maps breaches to error replies), and --stats /
#   --trace-out are flushed and valid, exactly like the CLI contract above.
set -u

cli="$1"
examples="$2"
mode="$3"
trace_check="${4:-}"
prog="$examples/diverge.rsp"

fail() { echo "FAIL: $*" >&2; exit 1; }

case "$mode" in
  deadline)
    stats=$(mktemp) trace=$(mktemp)
    trap 'rm -f "$stats" "$trace"' EXIT
    rm -f "$stats" "$trace"
    start_ms=$(($(date +%s%N) / 1000000))
    "$cli" "$prog" --info --deadline-ms 1000 \
        --stats="$stats" --trace-out="$trace"
    code=$?
    end_ms=$(($(date +%s%N) / 1000000))
    elapsed=$((end_ms - start_ms))
    [ "$code" -eq 7 ] || fail "expected exit 7 (resource exhaustion), got $code"
    # 1000 ms budget + generous slack for process startup and teardown.
    [ "$elapsed" -lt 10000 ] || fail "took ${elapsed} ms to honor a 1000 ms deadline"
    # Diagnosability on breach: both snapshots flushed and well-formed.
    [ -s "$stats" ] || fail "--stats file not flushed on exit 7"
    grep -q "governor.breach" "$stats" \
      || fail "--stats snapshot on exit 7 lacks governor.breach"
    [ -s "$trace" ] || fail "--trace-out file not flushed on exit 7"
    if [ -n "$trace_check" ]; then
      "$trace_check" "$trace" --min-events 1 --require-lane main \
        || fail "--trace-out JSON from a breached run failed validation"
    fi
    echo "PASS: exit 7 after ${elapsed} ms; stats + trace flushed"
    ;;
  partial)
    out=$("$cli" "$prog" --spec eq --max-nodes 2000 --allow-partial --stats 2>/dev/null)
    code=$?
    [ "$code" -eq 0 ] || fail "--allow-partial should exit 0, got $code"
    echo "$out" | grep -q "equational specification:.*\[truncated\]" \
      || fail "missing [truncated] marker in spec output"
    echo "$out" | grep -q "governor.breach" \
      || fail "missing governor.breach counter in --stats snapshot"
    # The truncated spec must still round-trip through the serializer.
    tmp=$(mktemp)
    trap 'rm -f "$tmp"' EXIT
    "$cli" "$prog" --max-nodes 2000 --allow-partial --save-spec "$tmp" >/dev/null 2>&1 \
      || fail "--save-spec of a truncated spec failed"
    grep -q "^truncated " "$tmp" || fail "saved spec lacks the truncated line"
    "$cli" "$prog" --load-spec "$tmp" --fact "B(0, b0)" 2>/dev/null | grep -q "true" \
      || fail "truncated spec did not answer the seed fact after reload"
    echo "PASS: truncated spec well-formed, breach metrics present"
    ;;
  delta)
    work=$(mktemp -d)
    trap 'rm -rf "$work"' EXIT
    # Without its seed fact the subset family converges instantly; the
    # delta re-inserts the seed, so the *repair* is what diverges.
    sed '/^B(0, b0)\./d' "$prog" > "$work/seedless.rsp"
    "$cli" "$work/seedless.rsp" --save-snapshot "$work/seed.snap" >/dev/null \
      || fail "building the seedless program failed"
    printf '+ B(0, b0).\n' > "$work/deltas.txt"
    "$cli" "$work/seedless.rsp" --load-snapshot "$work/seed.snap" \
        --apply-deltas "$work/deltas.txt" --deadline-ms 1000 \
        --stats="$work/stats.json" --trace-out="$work/trace.json" >/dev/null
    code=$?
    [ "$code" -eq 7 ] || fail "expected exit 7 from a breached delta, got $code"
    # Diagnosability on breach, same contract as MODE deadline.
    [ -s "$work/stats.json" ] || fail "--stats not flushed on delta breach"
    grep -q "governor.breach" "$work/stats.json" \
      || fail "--stats snapshot on delta breach lacks governor.breach"
    grep -q "delta.apply" "$work/stats.json" \
      || fail "--stats snapshot lacks the delta.apply phase"
    [ -s "$work/trace.json" ] || fail "--trace-out not flushed on delta breach"
    if [ -n "$trace_check" ]; then
      "$trace_check" "$work/trace.json" --min-events 1 --require-lane main \
        || fail "--trace-out JSON from a breached delta run failed validation"
    fi
    echo "PASS: delta breach exit 7; handshake + stats + trace flushed"
    ;;
  sigterm)
    stats=$(mktemp) trace=$(mktemp)
    trap 'rm -f "$stats" "$trace"' EXIT
    rm -f "$stats" "$trace"
    # A huge deadline keeps the governor armed without ever firing: the only
    # thing that can stop this run is the signal.
    "$cli" "$prog" --info --deadline-ms 600000 \
        --stats="$stats" --trace-out="$trace" &
    pid=$!
    sleep 1
    kill -TERM "$pid" 2>/dev/null || fail "process exited before SIGTERM"
    term_ms=$(($(date +%s%N) / 1000000))
    wait "$pid"
    code=$?
    end_ms=$(($(date +%s%N) / 1000000))
    elapsed=$((end_ms - term_ms))
    # 143 (128+15) would mean the default disposition killed us mid-write.
    [ "$code" -eq 7 ] || fail "expected exit 7 (cooperative cancel), got $code"
    [ "$elapsed" -lt 10000 ] || fail "took ${elapsed} ms to honor SIGTERM"
    [ -s "$stats" ] || fail "--stats file not flushed on SIGTERM"
    grep -q "governor.breach" "$stats" \
      || fail "--stats snapshot on SIGTERM lacks governor.breach"
    [ -s "$trace" ] || fail "--trace-out file not flushed on SIGTERM"
    if [ -n "$trace_check" ]; then
      "$trace_check" "$trace" --min-events 1 --require-lane main \
        || fail "--trace-out JSON from a SIGTERM'd run failed validation"
    fi
    echo "PASS: SIGTERM cancelled cooperatively in ${elapsed} ms; stats + trace flushed"
    ;;
  daemon)
    work=$(mktemp -d)
    trap 'rm -rf "$work"' EXIT
    sock="$work/g.sock"
    stats="$work/stats.json"
    trace="$work/trace.json"
    "$cli" --rotation 8 --socket "$sock" --stats="$stats" \
        --trace-out "$trace" >"$work/daemon.log" 2>&1 &
    pid=$!
    up=0
    for _ in $(seq 100); do
      if [ -S "$sock" ]; then up=1; break; fi
      sleep 0.1
    done
    [ "$up" -eq 1 ] || fail "daemon did not come up (see daemon.log)"
    # Serve some real load so the drain has requests to account for.
    for _ in 1 2 3; do
      "$cli" --ping "$sock" >/dev/null || fail "ping against the daemon failed"
    done
    kill -TERM "$pid" 2>/dev/null || fail "daemon exited before SIGTERM"
    term_ms=$(($(date +%s%N) / 1000000))
    wait "$pid"
    code=$?
    end_ms=$(($(date +%s%N) / 1000000))
    elapsed=$((end_ms - term_ms))
    # 143 would mean the default disposition killed the daemon mid-drain.
    [ "$code" -eq 0 ] || fail "expected exit 0 (drained), got $code"
    [ "$elapsed" -lt 10000 ] || fail "took ${elapsed} ms to honor SIGTERM"
    grep -q "drained after" "$work/daemon.log" \
      || fail "daemon did not report its drain"
    [ -s "$stats" ] || fail "--stats file not flushed on SIGTERM"
    grep -q "serve.accepts" "$stats" \
      || fail "--stats snapshot lacks the serve.accepts counter"
    [ -s "$trace" ] || fail "--trace-out file not flushed on SIGTERM"
    if [ -n "$trace_check" ]; then
      "$trace_check" "$trace" --min-events 1 --require-lane main \
        || fail "--trace-out JSON from the drained daemon failed validation"
    fi
    echo "PASS: daemon drained in ${elapsed} ms; stats + trace flushed"
    ;;
  *)
    fail "unknown mode '$mode'"
    ;;
esac
