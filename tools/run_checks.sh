#!/usr/bin/env bash
# Repo-wide check runner: configure + build, run the test suite, then
# smoke-check the observability surface end to end:
#   1. relspec_cli --stats=FILE emits a JSON snapshot that parses and
#      contains the headline instrumentation (fixpoint rounds, chi
#      hit/miss/lookup invariant, phase spans);
#   2. one benchmark run under RELSPEC_BENCH_METRICS=1 emits a valid
#      single-line {"bench": ..., "metrics": {...}} record on stderr;
#   3. the flag tables in README.md and docs/ agree with the actual
#      --help output of relspec_cli, relspec_bench_serve, bench_compare,
#      and relspecd (docs drift check).
#
# Usage: tools/run_checks.sh [BUILD_DIR]   (default: build)
#        tools/run_checks.sh --tsan [BUILD_DIR]
#        tools/run_checks.sh --asan [BUILD_DIR]
#        tools/run_checks.sh --fuzz [BUILD_DIR]
#        tools/run_checks.sh --bench [BUILD_DIR]
#
# --tsan builds with -DRELSPEC_SANITIZE=thread (default dir: build-tsan) and
# runs the concurrency-sensitive test binaries (task pool, evaluator,
# fixpoint, engine, event tracer) under ThreadSanitizer, then exits. See
# docs/TUNING.md.
#
# --asan builds with -DRELSPEC_SANITIZE=address,undefined (default dir:
# build-asan) and runs the fault-injection suites (failpoint, governor,
# parser) under ASan+UBSan: every injected unwind path must be leak- and
# UB-free. See docs/ROBUSTNESS.md.
#
# --fuzz builds the parser/snapshot/WAL/protocol fuzz target
# (-DRELSPEC_FUZZ=ON, default dir: build-fuzz) and runs a 30-second smoke
# over the example-program seeds plus the binary corpora: snapshots
# (tests/fuzz_corpus/snapshots/*.rsnp, RSNP magic → snapshot loader),
# durability (tests/fuzz_corpus/wal/*, RWAL magic → delta-log scanner,
# RCKP magic → checkpoint parser), and the serving protocol
# (tests/fuzz_corpus/serve/*.rsrv, RSRV magic → request/response framers
# and the typed result decoders). Under gcc this is the standalone
# mutation driver; under clang, libFuzzer. Budget override:
# RELSPEC_FUZZ_SECONDS.
#
# --bench builds the serving harness and the perf gate (default dir: build),
# runs a short fixed-seed serve session, and diffs the fresh BENCH_serve.json
# against the committed BENCH_baseline.json with tools/bench_compare. See
# docs/SERVING.md.
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--asan" ]]; then
  BUILD_DIR="${2:-build-asan}"
  echo "== asan+ubsan configure + build ($BUILD_DIR) =="
  cmake -B "$BUILD_DIR" -S . -DRELSPEC_SANITIZE=address,undefined \
      -DRELSPEC_BUILD_BENCHMARKS=OFF -DRELSPEC_BUILD_EXAMPLES=OFF \
      -DRELSPEC_WERROR=OFF
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target \
      failpoint_test governor_test parser_test snapshot_test \
      differential_test
  echo "== asan+ubsan tests =="
  for t in failpoint_test governor_test parser_test snapshot_test \
           differential_test; do
    echo "-- $t"
    "$BUILD_DIR"/tests/"$t"
  done
  echo "== asan+ubsan checks passed =="
  exit 0
fi

if [[ "${1:-}" == "--fuzz" ]]; then
  BUILD_DIR="${2:-build-fuzz}"
  echo "== fuzz configure + build ($BUILD_DIR) =="
  cmake -B "$BUILD_DIR" -S . -DRELSPEC_FUZZ=ON \
      -DRELSPEC_BUILD_BENCHMARKS=OFF -DRELSPEC_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target fuzz_parser
  echo "== fuzz smoke (seeds: examples/programs/*.rsp + snapshot + WAL + RSRV corpora) =="
  "$BUILD_DIR"/tests/fuzz_parser examples/programs/*.rsp \
      tests/fuzz_corpus/snapshots/*.rsnp \
      tests/fuzz_corpus/wal/* \
      tests/fuzz_corpus/serve/*.rsrv
  echo "== fuzz smoke passed =="
  exit 0
fi

if [[ "${1:-}" == "--bench" ]]; then
  BUILD_DIR="${2:-build}"
  echo "== bench configure + build ($BUILD_DIR) =="
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target \
      relspec_bench_serve --target bench_compare --target trace_check
  echo "== serve session (fixed seed) =="
  SERVE_DIR="$(mktemp -d)"
  trap 'rm -rf "$SERVE_DIR"' EXIT
  "$BUILD_DIR"/tools/relspec_bench_serve \
      --qps 1500 --requests 3000 --clients 2 --seed 42 --population 64 \
      --slow-ms 5 --out "$SERVE_DIR/BENCH_serve.json" \
      --trace-out "$SERVE_DIR/serve_trace.json"
  "$BUILD_DIR"/tools/trace_check "$SERVE_DIR/serve_trace.json" \
      --min-events 10 --require-lane main
  echo "== perf gate vs BENCH_baseline.json =="
  "$BUILD_DIR"/tools/bench_compare BENCH_baseline.json \
      "$SERVE_DIR/BENCH_serve.json" --suite bench_serve
  echo "== bench checks passed =="
  exit 0
fi

if [[ "${1:-}" == "--tsan" ]]; then
  BUILD_DIR="${2:-build-tsan}"
  echo "== tsan configure + build ($BUILD_DIR) =="
  # -Werror off: gcc's -O1/-fsanitize pipeline emits known false-positive
  # maybe-uninitialized warnings in libstdc++ headers.
  cmake -B "$BUILD_DIR" -S . -DRELSPEC_SANITIZE=thread \
      -DRELSPEC_BUILD_BENCHMARKS=OFF -DRELSPEC_BUILD_EXAMPLES=OFF \
      -DRELSPEC_WERROR=OFF
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target \
      parallel_test datalog_test fixpoint_test engine_test \
      failpoint_test governor_test differential_test trace_test
  echo "== tsan tests =="
  for t in parallel_test datalog_test fixpoint_test engine_test \
           failpoint_test governor_test differential_test trace_test; do
    echo "-- $t"
    "$BUILD_DIR"/tests/"$t"
  done
  echo "== tsan checks passed =="
  exit 0
fi

BUILD_DIR="${1:-build}"

# Only pick a generator for a fresh build dir; an existing cache keeps its own.
GENERATOR_FLAGS=()
if [[ ! -f "$BUILD_DIR/CMakeCache.txt" ]] && command -v ninja >/dev/null 2>&1; then
  GENERATOR_FLAGS=(-G Ninja)
fi

echo "== configure + build =="
cmake -B "$BUILD_DIR" -S . "${GENERATOR_FLAGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "== tests =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== CLI --stats JSON =="
STATS_FILE="$(mktemp)"
BENCH_ERR_FILE="$(mktemp)"
trap 'rm -f "$STATS_FILE" "$BENCH_ERR_FILE"' EXIT
"$BUILD_DIR"/tools/relspec_cli examples/programs/even.rsp \
    --fact "Even(4)" --prove 0 4 --stats="$STATS_FILE" >/dev/null
python3 - "$STATS_FILE" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    snap = json.load(f)

for section in ("counters", "gauges", "histograms", "phases"):
    assert isinstance(snap.get(section), dict), f"missing section {section}"

c = snap["counters"]
assert c.get("fixpoint.rounds", 0) > 0, "no fixpoint rounds recorded"
assert c.get("chi.hits", 0) + c.get("chi.misses", 0) == c.get("chi.lookups"), \
    "chi hit/miss/lookup invariant violated"
assert c.get("uf.finds", 0) > 0, "no union-find activity recorded"
for phase in ("engine.build", "fixpoint", "algorithm_q"):
    assert snap["phases"].get(phase, {}).get("count", 0) >= 1, \
        f"phase {phase} missing"
print(f"stats OK: {len(c)} counters, {len(snap['phases'])} phases")
EOF

echo "== bench metrics line =="
RELSPEC_BENCH_METRICS=1 "$BUILD_DIR"/bench/bench_fixpoint \
    --benchmark_filter='BM_Fixpoint_ChiEntries_Rotation/8$' \
    --benchmark_min_time=0.01 >/dev/null 2>"$BENCH_ERR_FILE"
python3 - "$BENCH_ERR_FILE" <<'EOF'
import json, sys

records = []
with open(sys.argv[1]) as f:
    for line in f:
        line = line.strip()
        if not line.startswith('{"bench"'):
            continue
        rec = json.loads(line)
        assert "bench" in rec and "metrics" in rec, f"bad record: {rec}"
        assert rec["metrics"]["counters"].get("fixpoint.rounds", 0) > 0
        records.append(rec["bench"])
assert records, "no bench metrics line found on stderr"
print(f"bench metrics OK: {sorted(set(records))}")
EOF

echo "== docs drift check =="
HELP_FILE="$(mktemp)"
SERVE_HELP_FILE="$(mktemp)"
COMPARE_HELP_FILE="$(mktemp)"
DAEMON_HELP_FILE="$(mktemp)"
TAIL_HELP_FILE="$(mktemp)"
trap 'rm -f "$STATS_FILE" "$BENCH_ERR_FILE" "$HELP_FILE" \
    "$SERVE_HELP_FILE" "$COMPARE_HELP_FILE" "$DAEMON_HELP_FILE" \
    "$TAIL_HELP_FILE"' EXIT
"$BUILD_DIR"/tools/relspec_cli --help > "$HELP_FILE"
"$BUILD_DIR"/tools/relspec_bench_serve --help > "$SERVE_HELP_FILE"
"$BUILD_DIR"/tools/bench_compare --help > "$COMPARE_HELP_FILE"
"$BUILD_DIR"/tools/relspecd --help > "$DAEMON_HELP_FILE"
"$BUILD_DIR"/tools/relspec_tail --help > "$TAIL_HELP_FILE"
python3 - "$HELP_FILE" "$SERVE_HELP_FILE" "$COMPARE_HELP_FILE" \
    "$DAEMON_HELP_FILE" "$TAIL_HELP_FILE" README.md docs/*.md <<'EOF'
import re, sys

help_text = open(sys.argv[1]).read()
help_flags = set(re.findall(r"--[a-z][a-z_-]*", help_text))
# The serving harness, perf gate, daemon, and live tail have their own
# --help; docs may reference any flag from the five tools' combined surface.
serve_flags = set(re.findall(r"--[a-z][a-z_-]*", open(sys.argv[2]).read()))
compare_flags = set(re.findall(r"--[a-z][a-z_-]*", open(sys.argv[3]).read()))
daemon_flags = set(re.findall(r"--[a-z][a-z_-]*", open(sys.argv[4]).read()))
tail_flags = set(re.findall(r"--[a-z][a-z_-]*", open(sys.argv[5]).read()))

# Flags that legitimately appear in the docs but belong to other tools
# (google-benchmark, ctest, cmake, this script) or are flag *prefixes*.
WHITELIST = {
    "--benchmark_filter", "--benchmark_min_time", "--benchmark_repetitions",
    "--benchmark_format", "--benchmark_out", "--gtest_filter",
    "--output-on-failure", "--test-dir", "--tsan", "--asan", "--fuzz",
    "--build", "--target",
    # tools/trace_check flags (documented in OBSERVABILITY.md):
    "--min-events", "--require-lane",
    # run_checks.sh's own mode flag (documented in docs/SERVING.md):
    "--bench",
}

all_tool_flags = (help_flags | serve_flags | compare_flags | daemon_flags
                  | tail_flags)
problems = []
doc_flags = set()
for path in sys.argv[6:]:
    text = open(path).read()
    for flag in set(re.findall(r"--[a-z][a-z_-]*", text)):
        if flag in WHITELIST:
            continue
        doc_flags.add(flag)
        if flag not in all_tool_flags:
            problems.append(f"{path} documents {flag}, absent from every "
                            "tool's --help")

# Every CLI flag must be documented in README.md (the flag table).
readme = open(sys.argv[6]).read()
for flag in sorted(help_flags - {"--help"}):
    if flag not in readme:
        problems.append(f"--help lists {flag}, absent from README.md")

# Every serving-harness / perf-gate flag must appear in docs/SERVING.md.
serving = open("docs/SERVING.md").read()
for flag in sorted((serve_flags | compare_flags) - {"--help"}):
    if flag not in serving:
        problems.append(f"tool --help lists {flag}, absent from "
                        "docs/SERVING.md")

# The incremental-update surface (paper Section 5) must be documented in
# docs/INCREMENTAL.md: every delta/warm-start CLI flag, plus the serving
# harness's update request type. The list below is pinned on purpose — a
# flag dropped from --help without being dropped here is also drift.
incremental = open("docs/INCREMENTAL.md").read()
DELTA_FLAGS = {"--apply-deltas", "--load-snapshot", "--save-snapshot"}
for flag in sorted(DELTA_FLAGS):
    if flag not in help_flags:
        problems.append(f"docs-drift list pins {flag}, absent from the "
                        "CLI's --help")
    if flag not in incremental:
        problems.append(f"delta flag {flag} absent from docs/INCREMENTAL.md")
# The durability surface (docs/DURABILITY.md) is pinned the same way:
# every WAL CLI flag must exist in --help and be documented there, and
# the serve harness must keep its durable-update mode.
durability = open("docs/DURABILITY.md").read()
DURABLE_FLAGS = {"--wal", "--fsync", "--checkpoint-every", "--recover"}
for flag in sorted(DURABLE_FLAGS):
    if flag not in help_flags:
        problems.append(f"docs-drift list pins {flag}, absent from the "
                        "CLI's --help")
    if flag not in durability:
        problems.append(f"WAL flag {flag} absent from docs/DURABILITY.md")
for flag in sorted(DURABLE_FLAGS - {"--recover"}):
    if flag not in serve_flags:
        problems.append(f"serve --help no longer lists {flag} (durable "
                        "update mode)")

if "update=" not in open(sys.argv[2]).read():
    problems.append("serve --help no longer documents the update request "
                    "type (mix update=N)")
if "update" not in incremental:
    problems.append("serve update request type absent from "
                    "docs/INCREMENTAL.md")

# The daemon surface (docs/DAEMON.md) is pinned the same way: every
# relspecd flag must appear in docs/DAEMON.md, the daemon-only flags in
# the list below must keep existing in relspecd --help, and the serve
# harness must keep its --connect daemon-replay mode.
daemon_doc = open("docs/DAEMON.md").read()
for flag in sorted(daemon_flags - {"--help"}):
    if flag not in daemon_doc:
        problems.append(f"relspecd --help lists {flag}, absent from "
                        "docs/DAEMON.md")
DAEMON_FLAGS = {"--socket", "--tcp-port", "--threads", "--rotation",
                "--ping", "--cache-entries", "--cache-bytes",
                "--deadline-ms", "--max-tuples", "--wal", "--fsync",
                "--checkpoint-every", "--load-snapshot",
                "--slowlog-ms", "--slowlog-sample", "--slowlog-out",
                "--reply-timing"}
for flag in sorted(DAEMON_FLAGS):
    if flag not in daemon_flags:
        problems.append(f"docs-drift list pins {flag}, absent from "
                        "relspecd --help")
if "--connect" not in serve_flags:
    problems.append("serve --help no longer lists --connect (daemon "
                    "replay mode)")
if "--connect" not in daemon_doc:
    problems.append("--connect replay absent from docs/DAEMON.md")

# The observability surface (docs/OPERATIONS.md) is pinned the same way:
# every relspec_tail flag and every slow-log / telemetry daemon flag must
# be documented there, and the tail tool must keep its one-shot modes.
operations = open("docs/OPERATIONS.md").read()
for flag in sorted(tail_flags - {"--help"}):
    if flag not in operations:
        problems.append(f"relspec_tail --help lists {flag}, absent from "
                        "docs/OPERATIONS.md")
TAIL_FLAGS = {"--interval-ms", "--count", "--prometheus", "--health",
              "--slowlog"}
for flag in sorted(TAIL_FLAGS):
    if flag not in tail_flags:
        problems.append(f"docs-drift list pins {flag}, absent from "
                        "relspec_tail --help")
SLOWLOG_FLAGS = {"--slowlog-ms", "--slowlog-sample", "--slowlog-out",
                 "--reply-timing"}
for flag in sorted(SLOWLOG_FLAGS):
    if flag not in operations:
        problems.append(f"telemetry flag {flag} absent from "
                        "docs/OPERATIONS.md")

for p in problems:
    print("DRIFT:", p, file=sys.stderr)
if problems:
    sys.exit(1)
print(f"docs drift OK: {len(help_flags)} CLI flags, "
      f"{len(serve_flags | compare_flags)} serve/gate flags, "
      f"{len(daemon_flags)} daemon flags, "
      f"{len(tail_flags)} tail flags, "
      f"{len(doc_flags)} doc mentions consistent")
EOF

echo "== all checks passed =="
