#!/usr/bin/env bash
# Regenerates tests/golden/*.snap from the current engine output.
#
# Run this only after convincing yourself the spec-serialization change is
# intended; the golden test exists to catch accidental byte drift.
#
#   tools/regen_goldens.sh [BUILD_DIR]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

if [[ ! -d "$build" ]]; then
  echo "error: build directory $build not found (run cmake first)" >&2
  exit 1
fi

cmake --build "$build" --target golden_test -j >/dev/null
mkdir -p "$repo/tests/golden"
UPDATE_GOLDENS=1 "$build/tests/golden_test" >/dev/null
echo "regenerated:"
ls -l "$repo"/tests/golden/*.snap
