#include "src/ast/printer.h"

#include "src/base/str_util.h"

namespace relspec {

std::string ToString(const NfArg& arg, const SymbolTable& symbols) {
  return arg.IsConstant() ? symbols.constant_name(arg.id)
                          : symbols.variable_name(arg.id);
}

std::string ToString(const FuncTerm& term, const SymbolTable& symbols) {
  std::string out = term.has_var ? symbols.variable_name(term.var) : "0";
  for (const FuncApply& a : term.apps) {
    const std::string& name = symbols.function(a.fn).name;
    if (name == "+1" && a.args.empty()) {
      // Successor sugar: print "t+1" so the output re-parses.
      out += "+1";
      continue;
    }
    std::string inner = std::move(out);
    out = name + "(" + inner;
    for (const NfArg& arg : a.args) {
      out += ",";
      out += ToString(arg, symbols);
    }
    out += ")";
  }
  return out;
}

std::string ToString(const Atom& atom, const SymbolTable& symbols) {
  std::string out = symbols.predicate(atom.pred).name;
  std::vector<std::string> parts;
  if (atom.fterm.has_value()) parts.push_back(ToString(*atom.fterm, symbols));
  for (const NfArg& a : atom.args) parts.push_back(ToString(a, symbols));
  if (!parts.empty()) out += "(" + Join(parts, ",") + ")";
  return out;
}

std::string ToString(const Rule& rule, const SymbolTable& symbols) {
  if (rule.body.empty()) return ToString(rule.head, symbols) + ".";
  std::vector<std::string> body;
  body.reserve(rule.body.size());
  for (const Atom& a : rule.body) body.push_back(ToString(a, symbols));
  return Join(body, ", ") + " -> " + ToString(rule.head, symbols) + ".";
}

std::string ToString(const Query& query, const SymbolTable& symbols) {
  std::vector<std::string> atoms;
  atoms.reserve(query.atoms.size());
  for (const Atom& a : query.atoms) atoms.push_back(ToString(a, symbols));
  return "? " + Join(atoms, ", ") + ".";
}

std::string ToString(const Program& program) {
  std::string out;
  for (const Atom& f : program.facts) {
    out += ToString(f, program.symbols);
    out += ".\n";
  }
  for (const Rule& r : program.rules) {
    out += ToString(r, program.symbols);
    out += "\n";
  }
  return out;
}

}  // namespace relspec
