#include "src/ast/ast.h"

#include <algorithm>
#include <set>

#include "src/base/logging.h"

namespace relspec {

FuncTerm FuncTerm::Apply(FuncId fn, std::vector<NfArg> args) const {
  FuncTerm out = *this;
  out.apps.push_back(FuncApply{fn, std::move(args)});
  return out;
}

bool FuncTerm::IsGround() const {
  if (has_var) return false;
  for (const FuncApply& a : apps) {
    for (const NfArg& arg : a.args) {
      if (arg.IsVariable()) return false;
    }
  }
  return true;
}

bool FuncTerm::IsPure() const {
  for (const FuncApply& a : apps) {
    if (!a.args.empty()) return false;
  }
  return true;
}

StatusOr<TermId> FuncTerm::ToTermId(TermArena* arena) const {
  if (!IsGround()) {
    return Status::FailedPrecondition("ToTermId on a non-ground functional term");
  }
  TermId t = arena->Zero();
  for (const FuncApply& a : apps) {
    std::vector<ConstId> consts;
    consts.reserve(a.args.size());
    for (const NfArg& arg : a.args) consts.push_back(arg.id);
    t = arena->Apply(a.fn, t, std::move(consts));
  }
  return t;
}

FuncTerm FuncTerm::FromTermId(const TermArena& arena, TermId id) {
  std::vector<FuncApply> apps;
  for (TermId t = id; t != kZeroTerm; t = arena.node(t).child) {
    const TermNode& n = arena.node(t);
    std::vector<NfArg> args;
    args.reserve(n.args.size());
    for (ConstId c : n.args) args.push_back(NfArg::Constant(c));
    apps.push_back(FuncApply{n.fn, std::move(args)});
  }
  std::reverse(apps.begin(), apps.end());
  FuncTerm out;
  out.apps = std::move(apps);
  return out;
}

bool Atom::IsGround() const {
  if (fterm.has_value() && !fterm->IsGround()) return false;
  for (const NfArg& a : args) {
    if (a.IsVariable()) return false;
  }
  return true;
}

std::vector<PredId> Program::FunctionalPredicates() const {
  std::vector<PredId> out;
  for (PredId p = 0; p < symbols.num_predicates(); ++p) {
    if (symbols.predicate(p).functional) out.push_back(p);
  }
  return out;
}

std::vector<PredId> Program::NonFunctionalPredicates() const {
  std::vector<PredId> out;
  for (PredId p = 0; p < symbols.num_predicates(); ++p) {
    if (!symbols.predicate(p).functional) out.push_back(p);
  }
  return out;
}

std::vector<FuncId> Program::PureFunctions() const {
  std::vector<FuncId> out;
  for (FuncId f = 0; f < symbols.num_functions(); ++f) {
    if (symbols.function(f).arity == 1) out.push_back(f);
  }
  return out;
}

std::vector<FuncId> Program::MixedFunctions() const {
  std::vector<FuncId> out;
  for (FuncId f = 0; f < symbols.num_functions(); ++f) {
    if (symbols.function(f).arity >= 2) out.push_back(f);
  }
  return out;
}

namespace {
void CollectAtomConstants(const Atom& atom, std::set<ConstId>* out) {
  if (atom.fterm.has_value()) {
    for (const FuncApply& a : atom.fterm->apps) {
      for (const NfArg& arg : a.args) {
        if (arg.IsConstant()) out->insert(arg.id);
      }
    }
  }
  for (const NfArg& a : atom.args) {
    if (a.IsConstant()) out->insert(a.id);
  }
}
}  // namespace

std::vector<ConstId> Program::ActiveDomain() const {
  std::set<ConstId> seen;
  for (const Atom& f : facts) CollectAtomConstants(f, &seen);
  for (const Rule& r : rules) {
    CollectAtomConstants(r.head, &seen);
    for (const Atom& a : r.body) CollectAtomConstants(a, &seen);
  }
  return std::vector<ConstId>(seen.begin(), seen.end());
}

namespace {
int AtomGroundDepth(const Atom& atom) {
  if (!atom.fterm.has_value()) return 0;
  // Depth of the functional term counted from its base; per Section 2.5 this
  // is the depth of the largest functional term in Z and D. Non-ground terms
  // count too (their depth bounds how far rule locality reaches).
  return atom.fterm->depth();
}
}  // namespace

int Program::MaxGroundDepth() const {
  int c = 0;
  for (const Atom& f : facts) c = std::max(c, AtomGroundDepth(f));
  for (const Rule& r : rules) {
    // For rules, only *ground* functional terms pin facts to specific
    // positions; non-ground normal terms have depth <= 1 and are local.
    if (r.head.fterm.has_value() && r.head.fterm->IsGround()) {
      c = std::max(c, r.head.fterm->depth());
    }
    for (const Atom& a : r.body) {
      if (a.fterm.has_value() && a.fterm->IsGround()) {
        c = std::max(c, a.fterm->depth());
      }
    }
  }
  return c;
}

void CollectVariables(const Atom& atom, std::vector<VarId>* nf_vars,
                      std::optional<VarId>* func_var) {
  auto add_nf = [nf_vars](VarId v) {
    if (std::find(nf_vars->begin(), nf_vars->end(), v) == nf_vars->end()) {
      nf_vars->push_back(v);
    }
  };
  if (atom.fterm.has_value()) {
    if (atom.fterm->has_var) *func_var = atom.fterm->var;
    for (const FuncApply& a : atom.fterm->apps) {
      for (const NfArg& arg : a.args) {
        if (arg.IsVariable()) add_nf(arg.id);
      }
    }
  }
  for (const NfArg& a : atom.args) {
    if (a.IsVariable()) add_nf(a.id);
  }
}

}  // namespace relspec
