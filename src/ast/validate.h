// Structural validation of programs, rules and queries.
//
// Checks the paper's syntactic restrictions:
//  * facts are ground;
//  * arities match the symbol table;
//  * functional predicates always carry a functional term, non-functional
//    predicates never do;
//  * domain independence == range restriction (Section 2.3): every variable
//    of a rule head occurs in its body;
//  * normality (Section 2.4): a rule has at most one functional variable and
//    its non-ground functional terms have depth <= 1;
//  * queries are positive with at most one functional variable (Section 5).

#ifndef RELSPEC_AST_VALIDATE_H_
#define RELSPEC_AST_VALIDATE_H_

#include "src/ast/ast.h"
#include "src/base/status.h"

namespace relspec {

/// Full structural validation of a program (facts + rules).
Status ValidateProgram(const Program& program);

/// Range restriction for one rule (== domain independence, Section 2.3).
Status CheckRangeRestricted(const Rule& rule, const SymbolTable& symbols);

/// True if the rule is normal (Section 2.4): at most one functional variable
/// and every non-ground functional term has depth <= 1.
bool IsNormalRule(const Rule& rule);

/// True if every rule of the program is normal.
bool IsNormalProgram(const Program& program);

/// Validates a query: positive, known predicates, arity match, at most one
/// functional variable, answer_vars all occur in the atoms.
Status ValidateQuery(const Query& query, const SymbolTable& symbols);

/// True if the query is uniform (Section 5): its only non-ground functional
/// term is a bare functional variable.
bool IsUniformQuery(const Query& query);

}  // namespace relspec

#endif  // RELSPEC_AST_VALIDATE_H_
