#include "src/ast/validate.h"

#include <algorithm>
#include <optional>
#include <set>

#include "src/ast/printer.h"
#include "src/base/str_util.h"

namespace relspec {

namespace {

Status CheckAtomShape(const Atom& atom, const SymbolTable& symbols) {
  if (atom.pred >= symbols.num_predicates()) {
    return Status::InvalidArgument("atom references unknown predicate id");
  }
  const PredicateInfo& info = symbols.predicate(atom.pred);
  if (info.functional != atom.fterm.has_value()) {
    return Status::InvalidArgument(StrFormat(
        "predicate '%s' is %s but the atom %s a functional term",
        info.name.c_str(), info.functional ? "functional" : "non-functional",
        atom.fterm.has_value() ? "carries" : "lacks"));
  }
  int got = static_cast<int>(atom.args.size()) + (atom.fterm.has_value() ? 1 : 0);
  if (got != info.arity) {
    return Status::InvalidArgument(
        StrFormat("predicate '%s' has arity %d but atom has %d arguments",
                  info.name.c_str(), info.arity, got));
  }
  if (atom.fterm.has_value()) {
    for (const FuncApply& a : atom.fterm->apps) {
      if (a.fn >= symbols.num_functions()) {
        return Status::InvalidArgument("unknown function symbol id in term");
      }
      int want = symbols.function(a.fn).arity - 1;
      if (static_cast<int>(a.args.size()) != want) {
        return Status::InvalidArgument(StrFormat(
            "function symbol '%s' expects %d non-functional arguments, got %zu",
            symbols.function(a.fn).name.c_str(), want, a.args.size()));
      }
    }
  }
  return Status::OK();
}

// Collects the variables of a set of atoms.
void CollectAll(const std::vector<Atom>& atoms, std::set<VarId>* nf_vars,
                std::set<VarId>* func_vars) {
  for (const Atom& a : atoms) {
    std::vector<VarId> nf;
    std::optional<VarId> fv;
    CollectVariables(a, &nf, &fv);
    nf_vars->insert(nf.begin(), nf.end());
    if (fv.has_value()) func_vars->insert(*fv);
  }
}

}  // namespace

Status CheckRangeRestricted(const Rule& rule, const SymbolTable& symbols) {
  std::set<VarId> body_nf, body_fv;
  CollectAll(rule.body, &body_nf, &body_fv);
  std::set<VarId> head_nf, head_fv;
  CollectAll({rule.head}, &head_nf, &head_fv);
  for (VarId v : head_nf) {
    if (body_nf.count(v) == 0) {
      return Status::InvalidArgument(
          StrFormat("rule is not range-restricted (domain-dependent): head "
                    "variable '%s' does not occur in the body: %s",
                    symbols.variable_name(v).c_str(),
                    ToString(rule, symbols).c_str()));
    }
  }
  for (VarId v : head_fv) {
    if (body_fv.count(v) == 0) {
      return Status::InvalidArgument(
          StrFormat("rule is not range-restricted (domain-dependent): head "
                    "functional variable '%s' does not occur in the body: %s",
                    symbols.variable_name(v).c_str(),
                    ToString(rule, symbols).c_str()));
    }
  }
  return Status::OK();
}

bool IsNormalRule(const Rule& rule) {
  std::set<VarId> func_vars;
  auto scan = [&func_vars](const Atom& a) -> bool {
    if (!a.fterm.has_value()) return true;
    if (a.fterm->has_var) {
      func_vars.insert(a.fterm->var);
      if (a.fterm->depth() > 1) return false;  // non-ground term too deep
    }
    return true;
  };
  if (!scan(rule.head)) return false;
  for (const Atom& a : rule.body) {
    if (!scan(a)) return false;
  }
  return func_vars.size() <= 1;
}

bool IsNormalProgram(const Program& program) {
  return std::all_of(program.rules.begin(), program.rules.end(), IsNormalRule);
}

Status ValidateProgram(const Program& program) {
  for (const Atom& f : program.facts) {
    RELSPEC_RETURN_NOT_OK(CheckAtomShape(f, program.symbols)
                              .WithContext("fact " + ToString(f, program.symbols)));
    if (!f.IsGround()) {
      return Status::InvalidArgument("database fact is not ground: " +
                                     ToString(f, program.symbols));
    }
  }
  for (const Rule& r : program.rules) {
    RELSPEC_RETURN_NOT_OK(CheckAtomShape(r.head, program.symbols)
                              .WithContext("rule " + ToString(r, program.symbols)));
    for (const Atom& a : r.body) {
      RELSPEC_RETURN_NOT_OK(CheckAtomShape(a, program.symbols)
                                .WithContext("rule " + ToString(r, program.symbols)));
    }
    RELSPEC_RETURN_NOT_OK(CheckRangeRestricted(r, program.symbols));
  }
  return Status::OK();
}

Status ValidateQuery(const Query& query, const SymbolTable& symbols) {
  if (query.atoms.empty()) {
    return Status::InvalidArgument("query has no atoms");
  }
  std::set<VarId> nf_vars, func_vars;
  for (const Atom& a : query.atoms) {
    RELSPEC_RETURN_NOT_OK(
        CheckAtomShape(a, symbols).WithContext("query atom"));
  }
  CollectAll(query.atoms, &nf_vars, &func_vars);
  if (func_vars.size() > 1) {
    return Status::InvalidArgument(
        "query has more than one functional variable (Section 5 restricts "
        "queries to at most one)");
  }
  for (VarId v : query.answer_vars) {
    if (nf_vars.count(v) == 0 && func_vars.count(v) == 0) {
      return Status::InvalidArgument(
          StrFormat("answer variable '%s' does not occur in the query",
                    symbols.variable_name(v).c_str()));
    }
  }
  return Status::OK();
}

bool IsUniformQuery(const Query& query) {
  for (const Atom& a : query.atoms) {
    if (!a.fterm.has_value()) continue;
    const FuncTerm& t = *a.fterm;
    if (t.IsGround()) continue;           // ground terms are allowed
    if (t.has_var && t.depth() == 0) continue;  // bare variable
    return false;
  }
  return true;
}

}  // namespace relspec
