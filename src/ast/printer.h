// Pretty printing of AST nodes in the paper's surface syntax:
//   Meets(t,x), Next(x,y) -> Meets(f(t),y).

#ifndef RELSPEC_AST_PRINTER_H_
#define RELSPEC_AST_PRINTER_H_

#include <string>

#include "src/ast/ast.h"

namespace relspec {

std::string ToString(const NfArg& arg, const SymbolTable& symbols);
std::string ToString(const FuncTerm& term, const SymbolTable& symbols);
std::string ToString(const Atom& atom, const SymbolTable& symbols);
std::string ToString(const Rule& rule, const SymbolTable& symbols);
std::string ToString(const Query& query, const SymbolTable& symbols);

/// The whole program: facts first, then rules, one per line.
std::string ToString(const Program& program);

}  // namespace relspec

#endif  // RELSPEC_AST_PRINTER_H_
