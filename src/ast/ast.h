// Abstract syntax for functional deductive databases (Section 2.1).
//
// A Program holds a symbol table, a set of Horn rules Z, and a finite
// database D of ground facts. Functional predicates carry their functional
// term in the fixed argument position 0; the remaining arguments are
// non-functional (constants or non-functional variables).
//
// Functional terms are linear chains: every function symbol has exactly one
// functional argument, so an AST functional term is a base (the constant 0
// or one functional variable) plus a sequence of applications, innermost
// first. Mixed (k-ary) symbols carry their non-functional arguments with
// each application.

#ifndef RELSPEC_AST_AST_H_
#define RELSPEC_AST_AST_H_

#include <optional>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/term/symbol_table.h"
#include "src/term/term.h"

namespace relspec {

/// A non-functional argument: a database constant or a non-functional
/// variable.
struct NfArg {
  enum class Kind { kConstant, kVariable };
  Kind kind = Kind::kConstant;
  uint32_t id = 0;  // ConstId or VarId according to kind

  static NfArg Constant(ConstId c) { return NfArg{Kind::kConstant, c}; }
  static NfArg Variable(VarId v) { return NfArg{Kind::kVariable, v}; }
  bool IsConstant() const { return kind == Kind::kConstant; }
  bool IsVariable() const { return kind == Kind::kVariable; }
  bool operator==(const NfArg& o) const { return kind == o.kind && id == o.id; }
};

/// One function-symbol application within a functional term.
struct FuncApply {
  FuncId fn = kInvalidId;
  /// Non-functional arguments of a mixed symbol; empty for pure symbols.
  std::vector<NfArg> args;
  bool operator==(const FuncApply& o) const { return fn == o.fn && args == o.args; }
};

/// An AST-level functional term: base (0 or a functional variable) plus a
/// chain of applications, innermost first. Examples:
///   0              -> has_var=false, apps={}
///   s              -> has_var=true(var=s), apps={}
///   f(g(s))        -> has_var=true, apps={g, f}
///   ext(0, x)      -> has_var=false, apps={ext[x]}
struct FuncTerm {
  bool has_var = false;
  VarId var = kInvalidId;
  std::vector<FuncApply> apps;

  static FuncTerm Zero() { return FuncTerm{}; }
  static FuncTerm Var(VarId v) { return FuncTerm{true, v, {}}; }

  /// f(this) or f(this, args...).
  FuncTerm Apply(FuncId fn, std::vector<NfArg> args = {}) const;

  /// Number of applications above the base.
  int depth() const { return static_cast<int>(apps.size()); }
  /// True if the base is 0 and all mixed arguments are constants.
  bool IsGround() const;
  /// True if no mixed symbol occurs.
  bool IsPure() const;
  bool operator==(const FuncTerm& o) const {
    return has_var == o.has_var && (!has_var || var == o.var) && apps == o.apps;
  }

  /// Interns a ground functional term into `arena`. Fails if not ground.
  StatusOr<TermId> ToTermId(TermArena* arena) const;
  /// The AST form of an interned ground term.
  static FuncTerm FromTermId(const TermArena& arena, TermId id);
};

/// A functional or non-functional atom. For functional predicates, `fterm`
/// is the argument in the fixed functional position; `args` are the other
/// arguments in order.
struct Atom {
  PredId pred = kInvalidId;
  std::optional<FuncTerm> fterm;
  std::vector<NfArg> args;

  bool IsFunctional() const { return fterm.has_value(); }
  /// True if every argument is ground (a fact).
  bool IsGround() const;
  bool operator==(const Atom& o) const {
    return pred == o.pred && fterm == o.fterm && args == o.args;
  }
};

/// A Horn rule: body atoms imply the head atom.
struct Rule {
  std::vector<Atom> body;
  Atom head;
};

/// A positive conjunctive query. Variables not listed in `answer_vars` are
/// existentially quantified. At most one functional variable may occur
/// (Section 5).
struct Query {
  std::vector<Atom> atoms;
  /// Free variables, in output-column order. May include the functional
  /// variable.
  std::vector<VarId> answer_vars;
};

/// A functional deductive database: rules Z plus ground facts D, sharing a
/// symbol table.
struct Program {
  SymbolTable symbols;
  std::vector<Rule> rules;
  std::vector<Atom> facts;

  /// All functional predicate ids, in id order.
  std::vector<PredId> FunctionalPredicates() const;
  /// All non-functional predicate ids, in id order.
  std::vector<PredId> NonFunctionalPredicates() const;
  /// All pure / all mixed function symbols, in id order.
  std::vector<FuncId> PureFunctions() const;
  std::vector<FuncId> MixedFunctions() const;
  /// All constants mentioned anywhere (the active domain), in id order.
  std::vector<ConstId> ActiveDomain() const;

  /// The parameter c of Section 2.5: the maximum depth of a ground
  /// functional term occurring in the rules or the database (0 if none).
  int MaxGroundDepth() const;
};

/// Collects the distinct variables of an atom, in first-occurrence order.
void CollectVariables(const Atom& atom, std::vector<VarId>* nf_vars,
                      std::optional<VarId>* func_var);

}  // namespace relspec

#endif  // RELSPEC_AST_AST_H_
