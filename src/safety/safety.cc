#include "src/safety/safety.h"

#include <algorithm>
#include <set>
#include <vector>

#include "src/base/str_util.h"

namespace relspec {

bool SafetyReport::IsUnbounded(PredId p) const {
  return std::find(unbounded_predicates.begin(), unbounded_predicates.end(),
                   p) != unbounded_predicates.end();
}

std::string SafetyReport::ToString(const SymbolTable& symbols) const {
  std::vector<std::string> names;
  names.reserve(unbounded_predicates.size());
  for (PredId p : unbounded_predicates) {
    names.push_back(symbols.predicate(p).name);
  }
  return "potentially unbounded: {" + Join(names, ", ") + "}";
}

SafetyReport AnalyzeSafety(const Program& program) {
  size_t n = program.symbols.num_predicates();
  // reach[a] = predicates derivable (directly or transitively) from a.
  std::vector<std::set<PredId>> reach(n);
  for (const Rule& r : program.rules) {
    for (const Atom& b : r.body) reach[b.pred].insert(r.head.pred);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t a = 0; a < n; ++a) {
      for (PredId mid : std::set<PredId>(reach[a])) {
        for (PredId tgt : reach[mid]) {
          if (reach[a].insert(tgt).second) changed = true;
        }
      }
    }
  }
  auto reaches = [&](PredId a, PredId b) {
    return a == b || reach[a].count(b) > 0;
  };

  // Growing rules on recursive cycles seed unboundedness.
  std::set<PredId> unbounded;
  for (const Rule& r : program.rules) {
    bool growing = r.head.fterm.has_value() && r.head.fterm->has_var &&
                   r.head.fterm->depth() >= 1;
    if (!growing) continue;
    // The rule lies on a cycle if its head can feed back into its body.
    for (const Atom& b : r.body) {
      if (reaches(r.head.pred, b.pred)) {
        unbounded.insert(r.head.pred);
        break;
      }
    }
  }
  // Unboundedness propagates along derivability.
  for (size_t a = 0; a < n; ++a) {
    if (unbounded.count(static_cast<PredId>(a)) > 0) {
      for (PredId tgt : reach[a]) unbounded.insert(tgt);
    }
  }

  SafetyReport report;
  report.unbounded_predicates.assign(unbounded.begin(), unbounded.end());
  return report;
}

bool IsQuerySafe(const Program& program, const SafetyReport& report,
                 const Query& query) {
  (void)program;
  // Find the functional variable, if it is an answer column.
  std::optional<VarId> func_var;
  for (const Atom& a : query.atoms) {
    if (a.fterm.has_value() && a.fterm->has_var) func_var = a.fterm->var;
  }
  if (!func_var.has_value()) return true;
  if (std::find(query.answer_vars.begin(), query.answer_vars.end(),
                *func_var) == query.answer_vars.end()) {
    return true;  // the functional variable is projected away
  }
  // Safe iff some atom binds the variable with a bounded predicate.
  for (const Atom& a : query.atoms) {
    if (a.fterm.has_value() && a.fterm->has_var && a.fterm->var == *func_var &&
        !report.IsUnbounded(a.pred)) {
      return true;
    }
  }
  return false;
}

}  // namespace relspec
