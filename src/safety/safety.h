// The [RBS87] baseline: conservative safety analysis.
//
// The "standard solution" to infinite answers (Ramakrishnan, Bancilhon &
// Silberschatz 1987) is to detect queries whose answers may be infinite and
// reject them. We reproduce a conservative syntactic test: a functional
// predicate is *potentially unbounded* when it is fed (transitively) by a
// growing rule — one whose head deepens the functional term — lying on a
// recursive cycle of the predicate dependency graph. A query is declared
// unsafe when its answer columns include a functional variable whose every
// binding atom has a potentially unbounded predicate.
//
// The point of the baseline (paper Section 1): relspec answers these queries
// anyway, with a finite relational specification, where [RBS87] can only say
// "rejected".

#ifndef RELSPEC_SAFETY_SAFETY_H_
#define RELSPEC_SAFETY_SAFETY_H_

#include <string>
#include <vector>

#include "src/ast/ast.h"
#include "src/base/status.h"

namespace relspec {

struct SafetyReport {
  /// Predicates whose extensions may be infinite.
  std::vector<PredId> unbounded_predicates;
  bool IsUnbounded(PredId p) const;
  std::string ToString(const SymbolTable& symbols) const;
};

/// Analyzes which predicates may have infinite extensions.
SafetyReport AnalyzeSafety(const Program& program);

/// The [RBS87]-style gate: true when the query's answer is guaranteed
/// finite; false when it would be rejected as (potentially) unsafe.
bool IsQuerySafe(const Program& program, const SafetyReport& report,
                 const Query& query);

}  // namespace relspec

#endif  // RELSPEC_SAFETY_SAFETY_H_
