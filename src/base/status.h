// Status and StatusOr: the library-wide error model.
//
// relspec does not throw exceptions across its public API. Every fallible
// operation returns a Status (or a StatusOr<T> carrying a value on success),
// in the style of Apache Arrow and RocksDB.

#ifndef RELSPEC_BASE_STATUS_H_
#define RELSPEC_BASE_STATUS_H_

#include <cassert>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace relspec {

/// Machine-readable error category carried by a non-OK Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,   ///< malformed input (bad rule, bad query, bad term)
  kNotFound = 2,          ///< missing predicate / symbol / file
  kAlreadyExists = 3,     ///< duplicate declaration
  kFailedPrecondition = 4,///< operation invoked in the wrong state
  kOutOfRange = 5,        ///< index/depth outside the valid range
  kUnimplemented = 6,     ///< feature outside the supported fragment
  kInternal = 7,          ///< invariant violation inside the library
  kResourceExhausted = 8, ///< configured limits (atoms, states, depth) hit
  kCancelled = 9,         ///< cooperative cancellation was requested
  kDeadlineExceeded = 10, ///< wall-clock deadline passed before completion
};

/// Returns the canonical lowercase name of a StatusCode ("invalid argument"...).
const char* StatusCodeToString(StatusCode code);

/// Inverse of StatusCodeToString: the code for a canonical name. Returns
/// kOk only for "ok"; unknown names yield std::nullopt. (Round-tripped by
/// the base tests over every code.)
std::optional<StatusCode> StatusCodeFromString(std::string_view name);

/// The result of an operation that can fail.
///
/// A Status is cheap to copy when OK (no allocation); error states carry a
/// heap-allocated message. Use the RELSPEC_RETURN_NOT_OK macro to propagate.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message);

  /// Factory helpers, one per StatusCode.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg);
  static Status NotFound(std::string msg);
  static Status AlreadyExists(std::string msg);
  static Status FailedPrecondition(std::string msg);
  static Status OutOfRange(std::string msg);
  static Status Unimplemented(std::string msg);
  static Status Internal(std::string msg);
  static Status ResourceExhausted(std::string msg);
  static Status Cancelled(std::string msg);
  static Status DeadlineExceeded(std::string msg);

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// The error message; empty for OK statuses.
  const std::string& message() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }

  /// True for the codes that mean "ran out of resources or was asked to
  /// stop" rather than "the input or the library is wrong": resource
  /// exhaustion, cancellation and deadline expiry. These are the codes the
  /// CLI maps to its resource-exhaustion exit code and the codes eligible
  /// for graceful degradation (--allow-partial).
  bool IsResourceBreach() const {
    StatusCode c = code();
    return c == StatusCode::kResourceExhausted ||
           c == StatusCode::kCancelled || c == StatusCode::kDeadlineExceeded;
  }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  /// Prepends context to the error message; no-op on OK statuses.
  Status WithContext(const std::string& context) const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // nullptr means OK; shared so copies are cheap.
  std::shared_ptr<const State> state_;
};

/// Either a value of type T or an error Status. Never both, never neither.
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. Must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }
  StatusOr(T value)  // NOLINT(runtime/explicit)
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status out of the enclosing function.
#define RELSPEC_RETURN_NOT_OK(expr)                  \
  do {                                               \
    ::relspec::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (0)

/// Evaluates a StatusOr expression; on error returns its Status, otherwise
/// moves the value into `lhs`.
#define RELSPEC_ASSIGN_OR_RETURN_IMPL(var, lhs, expr) \
  auto var = (expr);                                  \
  if (!var.ok()) return var.status();                 \
  lhs = std::move(var).value()

#define RELSPEC_ASSIGN_CONCAT_(x, y) x##y
#define RELSPEC_ASSIGN_CONCAT(x, y) RELSPEC_ASSIGN_CONCAT_(x, y)

#define RELSPEC_ASSIGN_OR_RETURN(lhs, expr) \
  RELSPEC_ASSIGN_OR_RETURN_IMPL(            \
      RELSPEC_ASSIGN_CONCAT(_statusor_, __LINE__), lhs, expr)

}  // namespace relspec

#endif  // RELSPEC_BASE_STATUS_H_
