#include "src/base/failpoint.h"

#include <csignal>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>

#include "src/base/logging.h"
#include "src/base/str_util.h"
#include "src/base/trace.h"

namespace relspec {
namespace failpoint {
namespace {

enum class Action { kOff, kError, kAlloc, kCancel, kDeadline, kOneInN, kAbort };

struct Site {
  Action action = Action::kOff;
  uint64_t period = 0;  // kOneInN: fire on every `period`-th hit;
                        // kAbort: SIGKILL on exactly the `period`-th hit
  uint64_t hits = 0;
};

uint64_t ParseDigits(std::string_view digits, bool* ok) {
  uint64_t n = 0;
  *ok = !digits.empty();
  for (char c : digits) {
    if (c < '0' || c > '9') {
      *ok = false;
      return 0;
    }
    n = n * 10 + static_cast<uint64_t>(c - '0');
  }
  return n;
}

// The registry is mutex-guarded rather than lock-free: sites only evaluate
// while the framework is active, which happens in tests and debugging
// sessions where per-hit lock cost is irrelevant. The production fast path
// is the relaxed load of g_active in Active().
std::atomic<bool> g_active{false};
std::mutex g_mu;
std::map<std::string, Site, std::less<>>& Registry() {
  static auto* m = new std::map<std::string, Site, std::less<>>();
  return *m;
}

StatusOr<Site> ParseAction(std::string_view site, std::string_view action) {
  Site s;
  if (action == "off") {
    s.action = Action::kOff;
  } else if (action == "error") {
    s.action = Action::kError;
  } else if (action == "alloc") {
    s.action = Action::kAlloc;
  } else if (action == "cancel") {
    s.action = Action::kCancel;
  } else if (action == "deadline") {
    s.action = Action::kDeadline;
  } else if (action.size() > 3 && action.substr(0, 3) == "1in") {
    bool ok = false;
    uint64_t n = ParseDigits(action.substr(3), &ok);
    if (!ok) {
      return Status::InvalidArgument(
          StrFormat("failpoint '%s': bad period in action '%s'",
                    std::string(site).c_str(), std::string(action).c_str()));
    }
    if (n == 0) {
      return Status::InvalidArgument(
          StrFormat("failpoint '%s': period must be >= 1",
                    std::string(site).c_str()));
    }
    s.action = Action::kOneInN;
    s.period = n;
  } else if (action.size() >= 5 && action.substr(0, 5) == "abort") {
    uint64_t n = 1;
    if (action.size() > 5) {
      bool ok = false;
      n = ParseDigits(action.substr(5), &ok);
      if (!ok || n == 0) {
        return Status::InvalidArgument(
            StrFormat("failpoint '%s': bad hit number in action '%s'",
                      std::string(site).c_str(), std::string(action).c_str()));
      }
    }
    s.action = Action::kAbort;
    s.period = n;
  } else {
    return Status::InvalidArgument(StrFormat(
        "failpoint '%s': unknown action '%s' (want "
        "error|alloc|cancel|deadline|1inN|abort[N]|off)",
        std::string(site).c_str(), std::string(action).c_str()));
  }
  return s;
}

}  // namespace

bool Active() { return g_active.load(std::memory_order_relaxed); }

Status Configure(std::string_view spec) {
  // Validate the whole spec before installing anything, so a typo in the
  // third entry does not leave the first two silently armed.
  std::vector<std::pair<std::string, Site>> parsed;
  for (const std::string& entry : Split(spec, ',')) {
    std::string_view stripped = StripWhitespace(entry);
    if (stripped.empty()) continue;
    size_t eq = stripped.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument(
          StrFormat("failpoint entry '%s' is not site=action",
                    std::string(stripped).c_str()));
    }
    std::string site(StripWhitespace(stripped.substr(0, eq)));
    std::string action(StripWhitespace(stripped.substr(eq + 1)));
    RELSPEC_ASSIGN_OR_RETURN(Site s, ParseAction(site, action));
    parsed.emplace_back(std::move(site), s);
  }
  if (parsed.empty()) return Status::OK();
  {
    std::lock_guard<std::mutex> lock(g_mu);
    for (auto& [site, s] : parsed) {
      Site& slot = Registry()[site];
      uint64_t hits = slot.hits;  // reconfiguring keeps the hit count
      slot = s;
      slot.hits = hits;
    }
  }
  g_active.store(true, std::memory_order_release);
  return Status::OK();
}

void InitFromEnv() {
  const char* env = std::getenv("RELSPEC_FAILPOINTS");
  if (env == nullptr || *env == '\0') return;
  Status st = Configure(env);
  if (!st.ok()) {
    RELSPEC_LOG(kWarning) << "ignoring RELSPEC_FAILPOINTS: " << st.ToString();
  }
}

void Clear() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_active.store(false, std::memory_order_release);
  Registry().clear();
}

uint64_t HitCount(std::string_view site) {
  std::lock_guard<std::mutex> lock(g_mu);
  auto it = Registry().find(site);
  return it == Registry().end() ? 0 : it->second.hits;
}

std::vector<std::string> EvaluatedSites() {
  std::lock_guard<std::mutex> lock(g_mu);
  std::vector<std::string> names;
  for (const auto& [name, site] : Registry()) {
    if (site.hits > 0) names.push_back(name);
  }
  return names;  // std::map iterates sorted
}

Status Evaluate(const char* site) {
  std::lock_guard<std::mutex> lock(g_mu);
  auto it = Registry().find(std::string_view(site));
  if (it == Registry().end()) {
    // Unconfigured sites are tracked (hit counting) but never fire.
    Site s;
    s.hits = 1;
    Registry().emplace(site, s);
    return Status::OK();
  }
  Site& s = it->second;
  ++s.hits;
  Status result = Status::OK();
  switch (s.action) {
    case Action::kOff:
      break;
    case Action::kError:
      result = Status::Internal(StrFormat("failpoint '%s' fired", site));
      break;
    case Action::kAlloc:
      result = Status::ResourceExhausted(
          StrFormat("failpoint '%s': simulated allocation failure", site));
      break;
    case Action::kCancel:
      result = Status::Cancelled(StrFormat("failpoint '%s' fired", site));
      break;
    case Action::kDeadline:
      result =
          Status::DeadlineExceeded(StrFormat("failpoint '%s' fired", site));
      break;
    case Action::kOneInN:
      if (s.hits % s.period == 0) {
        result = Status::Internal(StrFormat(
            "failpoint '%s' fired (hit %llu, period %llu)", site,
            static_cast<unsigned long long>(s.hits),
            static_cast<unsigned long long>(s.period)));
      }
      break;
    case Action::kAbort:
      if (s.hits == s.period) {
        // Die exactly here, as if `kill -9`-ed: no atexit handlers, no
        // buffered-stream flush, no destructor runs. SIGKILL cannot be
        // caught, so this models a power-cut/OOM-kill at this boundary.
        ::kill(::getpid(), SIGKILL);
        ::_exit(137);  // unreachable unless kill() itself failed
      }
      break;
  }
  if (!result.ok()) {
    // `site` is a string literal at every RELSPEC_FAILPOINT expansion, so
    // storing the pointer in the ring is safe.
    RELSPEC_TRACE_INSTANT("failpoint", site);
  }
  return result;
}

}  // namespace failpoint
}  // namespace relspec
