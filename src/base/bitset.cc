#include "src/base/bitset.h"

#include <cassert>

namespace relspec {

size_t DynamicBitset::Count() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
  return n;
}

bool DynamicBitset::None() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

bool DynamicBitset::IsSubsetOf(const DynamicBitset& other) const {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

bool DynamicBitset::UnionWith(const DynamicBitset& other) {
  assert(size_ == other.size_);
  bool changed = false;
  for (size_t i = 0; i < words_.size(); ++i) {
    uint64_t merged = words_[i] | other.words_[i];
    if (merged != words_[i]) {
      words_[i] = merged;
      changed = true;
    }
  }
  return changed;
}

void DynamicBitset::IntersectWith(const DynamicBitset& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void DynamicBitset::SubtractWith(const DynamicBitset& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
}

void DynamicBitset::Clear() {
  for (uint64_t& w : words_) w = 0;
}

bool DynamicBitset::operator<(const DynamicBitset& other) const {
  if (size_ != other.size_) return size_ < other.size_;
  return words_ < other.words_;
}

std::vector<size_t> DynamicBitset::ToVector() const {
  std::vector<size_t> out;
  out.reserve(Count());
  ForEach([&](size_t i) { out.push_back(i); });
  return out;
}

std::string DynamicBitset::ToString() const {
  std::string out = "{";
  bool first = true;
  ForEach([&](size_t i) {
    if (!first) out += ",";
    first = false;
    out += std::to_string(i);
  });
  out += "}";
  return out;
}

size_t DynamicBitset::Hash() const {
  // FNV-1a over the words; adequate for hashing state sets.
  uint64_t h = 14695981039346656037ull;
  for (uint64_t w : words_) {
    h ^= w;
    h *= 1099511628211ull;
  }
  h ^= size_;
  h *= 1099511628211ull;
  return static_cast<size_t>(h);
}

}  // namespace relspec
