#include "src/base/governor.h"

#include "src/base/metrics.h"
#include "src/base/str_util.h"
#include "src/base/trace.h"

namespace relspec {

namespace {

std::chrono::steady_clock::time_point ComputeDeadline(
    std::chrono::steady_clock::time_point start, int64_t deadline_ms) {
  if (deadline_ms <= 0) return std::chrono::steady_clock::time_point::max();
  return start + std::chrono::milliseconds(deadline_ms);
}

void BumpMax(std::atomic<uint64_t>* slot, uint64_t v) {
  uint64_t cur = slot->load(std::memory_order_relaxed);
  while (v > cur &&
         !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

ResourceGovernor::ResourceGovernor(GovernorLimits limits)
    : limits_(limits),
      start_(std::chrono::steady_clock::now()),
      deadline_(ComputeDeadline(start_, limits.deadline_ms)) {}

bool ResourceGovernor::ShouldAbort() const {
  if (breached_.load(std::memory_order_acquire)) return true;
  if (cancel_.load(std::memory_order_relaxed)) return true;
  return deadline_ != std::chrono::steady_clock::time_point::max() &&
         std::chrono::steady_clock::now() >= deadline_;
}

Status ResourceGovernor::Check() {
  if (breached_.load(std::memory_order_acquire)) return status();
  if (cancel_.load(std::memory_order_relaxed)) {
    return RecordBreach(Status::Cancelled(
        "cancellation requested (" + ProgressString() + ")"));
  }
  if (deadline_ != std::chrono::steady_clock::time_point::max() &&
      std::chrono::steady_clock::now() >= deadline_) {
    return RecordBreach(Status::DeadlineExceeded(
        StrFormat("deadline of %lld ms exceeded (",
                  static_cast<long long>(limits_.deadline_ms)) +
        ProgressString() + ")"));
  }
  return Status::OK();
}

Status ResourceGovernor::CheckTuples(uint64_t level) {
  BumpMax(&peak_tuples_, level);
  RELSPEC_RETURN_NOT_OK(Check());
  if (limits_.max_tuples != 0 && level > limits_.max_tuples) {
    return RecordBreach(Status::ResourceExhausted(
        StrFormat("derived tuples %llu exceeded max_tuples=%llu",
                  static_cast<unsigned long long>(level),
                  static_cast<unsigned long long>(limits_.max_tuples))));
  }
  return Status::OK();
}

Status ResourceGovernor::CheckNodes(uint64_t level) {
  BumpMax(&peak_nodes_, level);
  RELSPEC_RETURN_NOT_OK(Check());
  if (limits_.max_nodes != 0 && level > limits_.max_nodes) {
    return RecordBreach(Status::ResourceExhausted(
        StrFormat("fixpoint nodes %llu exceeded max_nodes=%llu",
                  static_cast<unsigned long long>(level),
                  static_cast<unsigned long long>(limits_.max_nodes))));
  }
  return Status::OK();
}

Status ResourceGovernor::CheckDepth(uint64_t level) {
  BumpMax(&peak_depth_, level);
  RELSPEC_RETURN_NOT_OK(Check());
  if (limits_.max_depth != 0 && level > limits_.max_depth) {
    return RecordBreach(Status::ResourceExhausted(
        StrFormat("depth %llu exceeded max_depth=%llu",
                  static_cast<unsigned long long>(level),
                  static_cast<unsigned long long>(limits_.max_depth))));
  }
  return Status::OK();
}

Status ResourceGovernor::ChargeRound() {
  uint64_t r = rounds_.fetch_add(1, std::memory_order_relaxed) + 1;
  RELSPEC_RETURN_NOT_OK(Check());
  if (limits_.max_rounds != 0 && r > limits_.max_rounds) {
    return RecordBreach(Status::ResourceExhausted(
        StrFormat("fixpoint round %llu exceeded max_rounds=%llu",
                  static_cast<unsigned long long>(r),
                  static_cast<unsigned long long>(limits_.max_rounds))));
  }
  return Status::OK();
}

Status ResourceGovernor::ChargeBytes(uint64_t delta) {
  uint64_t total = bytes_.fetch_add(delta, std::memory_order_relaxed) + delta;
  RELSPEC_RETURN_NOT_OK(Check());
  if (limits_.max_bytes != 0 && total > limits_.max_bytes) {
    return RecordBreach(Status::ResourceExhausted(
        StrFormat("tracked allocation %llu bytes exceeded max_bytes=%llu",
                  static_cast<unsigned long long>(total),
                  static_cast<unsigned long long>(limits_.max_bytes))));
  }
  return Status::OK();
}

Status ResourceGovernor::status() const {
  if (!breached_.load(std::memory_order_acquire)) return Status::OK();
  std::lock_guard<std::mutex> lock(breach_mu_);
  return breach_;
}

Status ResourceGovernor::RecordBreach(Status s) {
  std::lock_guard<std::mutex> lock(breach_mu_);
  if (!breached_.load(std::memory_order_relaxed)) {
    RELSPEC_TRACE_INSTANT1("governor", "breach", "code",
                           static_cast<int>(s.code()));
    const uint64_t trace_id = trace_id_.load(std::memory_order_relaxed);
    if (trace_id != 0) {
      RELSPEC_TRACE_INSTANT1("governor", "breach_trace", "trace_id",
                             trace_id);
    }
    breach_ = std::move(s);
    // Release so that readers who observe breached_ == true see breach_.
    breached_.store(true, std::memory_order_release);
  }
  return breach_;
}

int64_t ResourceGovernor::elapsed_ms() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

std::string ResourceGovernor::ProgressString() const {
  return StrFormat(
      "rounds=%llu tuples=%llu nodes=%llu depth=%llu bytes=%llu "
      "elapsed_ms=%lld",
      static_cast<unsigned long long>(rounds()),
      static_cast<unsigned long long>(peak_tuples()),
      static_cast<unsigned long long>(peak_nodes()),
      static_cast<unsigned long long>(peak_depth()),
      static_cast<unsigned long long>(bytes()),
      static_cast<long long>(elapsed_ms()));
}

void ResourceGovernor::RecordMetrics() const {
  RELSPEC_GAUGE_MAX("governor.rounds", rounds());
  RELSPEC_GAUGE_MAX("governor.peak_tuples", peak_tuples());
  RELSPEC_GAUGE_MAX("governor.peak_nodes", peak_nodes());
  RELSPEC_GAUGE_MAX("governor.peak_depth", peak_depth());
  RELSPEC_GAUGE_MAX("governor.bytes", bytes());
  RELSPEC_GAUGE_MAX("governor.elapsed_ms", elapsed_ms());
  Status s = status();
  if (s.ok()) return;
  switch (s.code()) {
    case StatusCode::kDeadlineExceeded:
      RELSPEC_COUNTER("governor.breach.deadline");
      break;
    case StatusCode::kCancelled:
      RELSPEC_COUNTER("governor.breach.cancelled");
      break;
    case StatusCode::kResourceExhausted:
      RELSPEC_COUNTER("governor.breach.budget");
      break;
    default:
      RELSPEC_COUNTER("governor.breach.other");
      break;
  }
}

}  // namespace relspec
