// Failpoints: compile-in fault injection sites for robustness testing.
//
// A failpoint is a named site planted in library code with
// RELSPEC_FAILPOINT("phase.step"). When the framework is inactive (the
// default), the macro costs one relaxed atomic load and a predicted-false
// branch — no lookup, no lock, no allocation. Tests (or an operator chasing
// a bug) activate sites by name:
//
//   failpoint::Configure("fixpoint.round=error,chi.close=1in20");
//   ... run the pipeline; the named sites now fail ...
//   failpoint::Clear();
//
// or from the environment before process start:
//
//   RELSPEC_FAILPOINTS="datalog.match=cancel" relspec_cli ...
//
// Supported actions per site:
//   error     inject Status::Internal           (invariant-violation path)
//   alloc     inject Status::ResourceExhausted  (simulated allocation failure)
//   cancel    inject Status::Cancelled          (cooperative-cancel path)
//   deadline  inject Status::DeadlineExceeded   (deadline-expiry path)
//   1inN      inject Status::Internal on every Nth hit (deterministic, not
//             random, so failures are reproducible), e.g. "1in20"
//   abort     raise SIGKILL on the first hit — the process dies as if
//             `kill -9`-ed mid-operation. Crash-recovery tests use this to
//             kill a child exactly at a WAL write/fsync/rename boundary.
//   abortN    same, but on the Nth hit, e.g. "abort3"
//   off       count hits but never fire (site tracing)
//
// Every evaluated site — configured or not — gets a hit counter, so tests
// can assert a site was actually reached. Defining RELSPEC_NO_FAILPOINTS
// compiles all sites out entirely.

#ifndef RELSPEC_BASE_FAILPOINT_H_
#define RELSPEC_BASE_FAILPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"

namespace relspec {
namespace failpoint {

/// True once any configuration is installed; the macro's fast-path guard.
bool Active();

/// Installs sites from a "site=action[,site=action...]" spec. Adds to (or
/// overrides within) the current configuration. Returns kInvalidArgument on
/// a malformed entry; entries before the malformed one are NOT installed
/// (the whole spec is validated first).
Status Configure(std::string_view spec);

/// Configures from the RELSPEC_FAILPOINTS environment variable, if set.
/// A malformed value is reported once via the logger and otherwise ignored
/// (a bad injection spec must not take down a production binary).
void InitFromEnv();

/// Removes every site and deactivates the framework. Hit counters are
/// discarded too: a Clear() returns the process to a pristine state so a
/// retried computation behaves byte-identically to an uninjected run.
void Clear();

/// Hits recorded for a site since the framework became active (evaluated
/// sites are counted whether or not they were configured to fire).
uint64_t HitCount(std::string_view site);

/// Names of all sites evaluated at least once while active (sorted).
std::vector<std::string> EvaluatedSites();

/// Called by RELSPEC_FAILPOINT when active: records the hit and returns the
/// injected Status, or OK when the site should not fire. `site` must be a
/// string literal (stored by pointer until copied into the registry).
Status Evaluate(const char* site);

}  // namespace failpoint
}  // namespace relspec

#ifdef RELSPEC_NO_FAILPOINTS
#define RELSPEC_FAILPOINT(site) \
  do {                          \
  } while (0)
#else
/// Plants a failpoint site. Usable in any function returning Status or
/// StatusOr<T> (StatusOr converts from Status). Void/bool call sites should
/// call failpoint::Evaluate directly and route the Status themselves.
#define RELSPEC_FAILPOINT(site)                                       \
  do {                                                                \
    if (::relspec::failpoint::Active()) {                             \
      ::relspec::Status _fp_st = ::relspec::failpoint::Evaluate(site); \
      if (!_fp_st.ok()) return _fp_st;                                \
    }                                                                 \
  } while (0)
#endif

#endif  // RELSPEC_BASE_FAILPOINT_H_
