// A process-wide metrics registry: named counters, gauges, log-bucketed
// histograms and phase spans, plus a JSON-serializable snapshot.
//
// Design goals, in order:
//
//  1. Near-zero overhead when disabled. Collection is off by default; every
//     macro below first performs one relaxed atomic load and branches away.
//     No registry lookup, no allocation, no clock read happens while
//     metrics are disabled.
//  2. Thread-safe when enabled. Instruments are plain atomics; the registry
//     map is guarded by a mutex and instrument pointers are stable for the
//     process lifetime (entries are never erased, Reset only zeroes values),
//     so call sites may cache the pointer in a function-local static.
//  3. Machine-readable. MetricsSnapshot::ToJson emits a stable JSON schema
//     (documented in docs/OBSERVABILITY.md) consumed by `relspec_cli
//     --stats`, the bench harness and the check script; FromJson parses it
//     back for round-trip validation.
//
// Usage (mirrors the RELSPEC_LOG idiom):
//
//   RELSPEC_COUNTER("chi.lookups");           // += 1
//   RELSPEC_COUNTER_ADD("uf.path_compressions", n);
//   RELSPEC_GAUGE_SET("fixpoint.trunk_nodes", trunk.size());
//   RELSPEC_GAUGE_MAX("cc.pending_peak", pending_.size());
//   RELSPEC_HISTOGRAM("datalog.rule_batch", batch_size);
//   RELSPEC_SCOPED_TIMER("eqspec.holds_ns");  // histogram of ns, RAII
//   RELSPEC_PHASE("fixpoint");                // phase span, RAII; also
//                                             // emits begin/end trace lines
//                                             // when tracing is enabled

#ifndef RELSPEC_BASE_METRICS_H_
#define RELSPEC_BASE_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"

namespace relspec {

/// Turns metric collection on or off for the whole process. Off by default.
void EnableMetrics(bool on);
bool MetricsEnabled();

/// Turns phase tracing on or off: RELSPEC_PHASE spans log begin/end lines
/// (with wall time) through RELSPEC_LOG(kInfo). Off by default. The log
/// level must admit kInfo for the lines to actually appear.
void EnableTracing(bool on);
bool TracingEnabled();

/// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written (or maximum) instantaneous value.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  /// Raises the gauge to v if v is larger (peak tracking).
  void SetMax(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log-bucketed histogram over uint64 samples: bucket i holds samples whose
/// bit width is i, i.e. values in [2^(i-1), 2^i). Bucket 0 holds zeros.
class Histogram {
 public:
  static constexpr int kNumBuckets = 65;

  void Record(uint64_t v);
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Minimum / maximum recorded sample; 0 when empty.
  uint64_t min() const;
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// Accumulated wall time of a named pipeline phase.
class PhaseStat {
 public:
  void Record(uint64_t ns) {
    count_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t total_ns() const {
    return total_ns_.load(std::memory_order_relaxed);
  }
  void Reset() {
    count_.store(0, std::memory_order_relaxed);
    total_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_ns_{0};
};

struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  /// (bucket exponent, count) for every non-empty bucket: exponent e covers
  /// samples in [2^(e-1), 2^e); e == 0 covers exactly 0.
  std::vector<std::pair<int, uint64_t>> buckets;

  /// The quantiles ToJson surfaces under "quantiles" (as pN keys: p50 is
  /// q = 0.50, p999 is q = 0.999).
  static constexpr double kReportedQuantiles[] = {0.50, 0.90, 0.95, 0.99,
                                                  0.999};

  /// Value at quantile q in [0, 1], linearly interpolated inside the log
  /// bucket containing the target rank and clamped to [min, max] (so a
  /// single-sample histogram returns the sample exactly). Monotone in q;
  /// 0 for an empty histogram. q outside [0, 1] is clamped.
  uint64_t ValueAtQuantile(double q) const;
};

struct PhaseSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t total_ns = 0;
};

/// A point-in-time copy of every registered instrument, sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;
  std::vector<PhaseSnapshot> phases;

  /// Value of a named counter/gauge/phase; 0 when absent (convenient for
  /// invariant assertions in tests).
  uint64_t counter(std::string_view name) const;
  int64_t gauge(std::string_view name) const;
  const PhaseSnapshot* phase(std::string_view name) const;
  const HistogramSnapshot* histogram(std::string_view name) const;

  /// Serializes to the stable JSON schema (see docs/OBSERVABILITY.md).
  /// `pretty` adds indentation; pass false for a single-line blob suitable
  /// for embedding in another JSON line.
  std::string ToJson(bool pretty = true) const;
  /// Parses a ToJson string back (round-trip validation; also the parser
  /// behind `tools/run_checks.sh`'s snapshot check).
  static StatusOr<MetricsSnapshot> FromJson(std::string_view json);

  /// Renders the snapshot in the Prometheus text exposition format
  /// (version 0.0.4): counters and phase totals as `counter` families,
  /// gauges as `gauge` families, histograms as `summary` families whose
  /// quantile series come from ValueAtQuantile over kReportedQuantiles.
  /// Metric names are the registry names with '.' mapped to '_' and a
  /// `relspec_` prefix (e.g. serve.accepts -> relspec_serve_accepts); the
  /// full name table is pinned in docs/OPERATIONS.md. Deterministic:
  /// families and series are emitted in sorted-name order.
  std::string ToPrometheusText() const;
};

/// The process-wide instrument registry. Instruments are created on first
/// use and never destroyed; returned pointers stay valid forever.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);
  PhaseStat* GetPhase(std::string_view name);

  /// Copies every instrument into a snapshot.
  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered instrument (registrations and cached pointers
  /// stay valid).
  void Reset();

  /// Total registered instruments (tests: the disabled path registers none).
  size_t NumInstruments() const;

 private:
  struct Impl;
  MetricsRegistry();
  ~MetricsRegistry() = delete;  // process-lifetime singleton
  Impl* impl_;
};

namespace internal {

/// RAII nanosecond timer recording into a histogram; inert when given null.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h)
      : h_(h),
        start_(h ? std::chrono::steady_clock::now()
                 : std::chrono::steady_clock::time_point()) {}
  ~ScopedTimer() {
    if (h_ == nullptr) return;
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
    h_->Record(static_cast<uint64_t>(ns));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point start_;
};

/// RAII phase span: accumulates wall time into the registry's PhaseStat when
/// metrics are enabled, emits begin/end lines through the logger when
/// tracing is enabled, and records a timeline span in the event tracer
/// (base/trace.h) when event tracing is enabled — one RELSPEC_PHASE yields
/// all three views. `name` must be a string literal (stored by pointer).
class PhaseSpan {
 public:
  explicit PhaseSpan(const char* name);
  ~PhaseSpan();
  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

 private:
  const char* name_;
  bool metrics_on_;
  bool tracing_on_;
  bool event_trace_on_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace internal
}  // namespace relspec

#define RELSPEC_METRICS_CONCAT_INNER(a, b) a##b
#define RELSPEC_METRICS_CONCAT(a, b) RELSPEC_METRICS_CONCAT_INNER(a, b)

// Each macro caches the instrument pointer in a function-local static, so
// the registry's mutex is taken once per call site, not per call.
#define RELSPEC_COUNTER(name) RELSPEC_COUNTER_ADD(name, 1)

#define RELSPEC_COUNTER_ADD(name, n)                              \
  do {                                                            \
    if (::relspec::MetricsEnabled()) {                            \
      static ::relspec::Counter* relspec_counter =                \
          ::relspec::MetricsRegistry::Global().GetCounter(name);  \
      relspec_counter->Add(static_cast<uint64_t>(n));             \
    }                                                             \
  } while (0)

#define RELSPEC_GAUGE_SET(name, v)                              \
  do {                                                          \
    if (::relspec::MetricsEnabled()) {                          \
      static ::relspec::Gauge* relspec_gauge =                  \
          ::relspec::MetricsRegistry::Global().GetGauge(name);  \
      relspec_gauge->Set(static_cast<int64_t>(v));              \
    }                                                           \
  } while (0)

#define RELSPEC_GAUGE_ADD(name, d)                              \
  do {                                                          \
    if (::relspec::MetricsEnabled()) {                          \
      static ::relspec::Gauge* relspec_gauge =                  \
          ::relspec::MetricsRegistry::Global().GetGauge(name);  \
      relspec_gauge->Add(static_cast<int64_t>(d));              \
    }                                                           \
  } while (0)

#define RELSPEC_GAUGE_MAX(name, v)                              \
  do {                                                          \
    if (::relspec::MetricsEnabled()) {                          \
      static ::relspec::Gauge* relspec_gauge =                  \
          ::relspec::MetricsRegistry::Global().GetGauge(name);  \
      relspec_gauge->SetMax(static_cast<int64_t>(v));           \
    }                                                           \
  } while (0)

#define RELSPEC_HISTOGRAM(name, v)                                  \
  do {                                                              \
    if (::relspec::MetricsEnabled()) {                              \
      static ::relspec::Histogram* relspec_hist =                   \
          ::relspec::MetricsRegistry::Global().GetHistogram(name);  \
      relspec_hist->Record(static_cast<uint64_t>(v));               \
    }                                                               \
  } while (0)

#define RELSPEC_SCOPED_TIMER(name)                                          \
  ::relspec::internal::ScopedTimer RELSPEC_METRICS_CONCAT(                  \
      relspec_scoped_timer_, __LINE__)(                                     \
      ::relspec::MetricsEnabled()                                           \
          ? [] {                                                            \
              static ::relspec::Histogram* relspec_hist =                   \
                  ::relspec::MetricsRegistry::Global().GetHistogram(name);  \
              return relspec_hist;                                          \
            }()                                                             \
          : nullptr)

#define RELSPEC_PHASE(name)                       \
  ::relspec::internal::PhaseSpan RELSPEC_METRICS_CONCAT(relspec_phase_, \
                                                        __LINE__)(name)

#endif  // RELSPEC_BASE_METRICS_H_
