#include "src/base/trace.h"

#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "src/base/json.h"
#include "src/base/metrics.h"
#include "src/base/str_util.h"

namespace relspec {

namespace trace_internal {
std::atomic<bool> g_trace_enabled{false};
}  // namespace trace_internal

void EnableEventTrace(bool on) {
  trace_internal::g_trace_enabled.store(on, std::memory_order_relaxed);
}

namespace {

enum EventKind : uint8_t {
  kNone = 0,
  kBegin = 1,
  kEnd = 2,
  kInstant = 3,
  kCounter = 4,
};

// One ring slot. Every field is a relaxed atomic so that a reader racing a
// wrap-around sees a torn but well-defined value (discarded via the head
// re-check in Export) instead of a C++ data race. Strings are stored by
// pointer — the macros only pass string literals.
struct TraceEvent {
  std::atomic<uint8_t> kind;
  std::atomic<int64_t> ts_ns;
  std::atomic<const char*> cat;
  std::atomic<const char*> name;
  std::atomic<const char*> arg_name;
  std::atomic<uint64_t> arg_value;
};

// A plain copy of a TraceEvent, snapshotted by the exporter.
struct EventCopy {
  uint8_t kind;
  int64_t ts_ns;
  const char* cat;
  const char* name;
  const char* arg_name;
  uint64_t arg_value;
};

// One lane: a single-writer ring owned by one thread, read by the exporter.
// The slot array is allocated on the lane's first event so threads that
// never record (or record only while tracing is disabled) cost nothing.
struct TraceBuffer {
  std::atomic<TraceEvent*> slots{nullptr};
  size_t capacity = 0;               // power of two, fixed at creation
  std::atomic<uint64_t> head{0};     // next write index; only writer stores
  uint64_t lane_id = 0;
  std::string name;                  // guarded by Tracer::Impl::mu
};

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out->append(StrFormat("\\u%04x", c));
        } else {
          out->push_back(c);
        }
    }
  }
}

// Chrome "ts" is in microseconds; keep nanosecond precision as a fraction.
std::string FormatTs(int64_t ts_ns) {
  if (ts_ns < 0) ts_ns = 0;
  return StrFormat("%lld.%03lld", static_cast<long long>(ts_ns / 1000),
                   static_cast<long long>(ts_ns % 1000));
}

}  // namespace

struct Tracer::Impl {
  std::mutex mu;
  std::vector<TraceBuffer*> buffers;  // leaked, process lifetime
  size_t default_capacity = size_t{1} << 15;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();

  int64_t NowNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch)
        .count();
  }

  TraceBuffer* RegisterThread() {
    auto* b = new TraceBuffer;
    std::lock_guard<std::mutex> lock(mu);
    b->capacity = default_capacity;
    b->lane_id = buffers.size();
    buffers.push_back(b);
    return b;
  }

  // The calling thread's lane, created on first use. The pointer outlives
  // the thread (buffers are leaked), so export may run after writers exit.
  TraceBuffer* CurrentBuffer() {
    thread_local TraceBuffer* tl_buffer = nullptr;
    if (tl_buffer == nullptr) tl_buffer = RegisterThread();
    return tl_buffer;
  }

  static TraceEvent* EnsureSlots(TraceBuffer* b) {
    TraceEvent* slots = b->slots.load(std::memory_order_acquire);
    if (slots != nullptr) return slots;
    // C++20 value-initialization zero-fills the atomics (kind == kNone).
    auto* fresh = new TraceEvent[b->capacity]();
    if (b->slots.compare_exchange_strong(slots, fresh,
                                         std::memory_order_acq_rel)) {
      return fresh;
    }
    delete[] fresh;  // only the owning thread allocates, but stay defensive
    return slots;
  }

  void Emit(uint8_t kind, const char* cat, const char* name,
            const char* arg_name, uint64_t arg_value) {
    TraceBuffer* b = CurrentBuffer();
    TraceEvent* slots = EnsureSlots(b);
    uint64_t idx = b->head.load(std::memory_order_relaxed);  // single writer
    TraceEvent& e = slots[idx & (b->capacity - 1)];
    e.kind.store(kind, std::memory_order_relaxed);
    e.ts_ns.store(NowNs(), std::memory_order_relaxed);
    e.cat.store(cat, std::memory_order_relaxed);
    e.name.store(name, std::memory_order_relaxed);
    e.arg_name.store(arg_name, std::memory_order_relaxed);
    e.arg_value.store(arg_value, std::memory_order_relaxed);
    b->head.store(idx + 1, std::memory_order_release);
  }
};

Tracer::Tracer() : impl_(new Impl) {}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer;  // leaked: safe during thread teardown
  return *tracer;
}

void Tracer::SetBufferCapacity(size_t events) {
  size_t cap = 8;
  while (cap < events && cap < (size_t{1} << 24)) cap <<= 1;
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->default_capacity = cap;
}

void Tracer::SetCurrentThreadName(std::string name) {
  TraceBuffer* b = impl_->CurrentBuffer();
  std::lock_guard<std::mutex> lock(impl_->mu);
  b->name = std::move(name);
}

void Tracer::Begin(const char* cat, const char* name, const char* arg_name,
                   uint64_t arg_value) {
  impl_->Emit(kBegin, cat, name, arg_name, arg_value);
}

void Tracer::End(const char* cat, const char* name, const char* arg_name,
                 uint64_t arg_value) {
  impl_->Emit(kEnd, cat, name, arg_name, arg_value);
}

void Tracer::Instant(const char* cat, const char* name, const char* arg_name,
                     uint64_t arg_value) {
  impl_->Emit(kInstant, cat, name, arg_name, arg_value);
}

void Tracer::Counter(const char* name, int64_t value) {
  impl_->Emit(kCounter, "counter", name, nullptr,
              static_cast<uint64_t>(value));
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  uint64_t dropped = 0;
  for (TraceBuffer* b : impl_->buffers) {
    uint64_t h = b->head.load(std::memory_order_relaxed);
    if (h > b->capacity) dropped += h - b->capacity;
  }
  return dropped;
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (TraceBuffer* b : impl_->buffers) {
    TraceEvent* slots = b->slots.load(std::memory_order_acquire);
    if (slots != nullptr) {
      for (size_t i = 0; i < b->capacity; ++i) {
        slots[i].kind.store(kNone, std::memory_order_relaxed);
      }
    }
    b->head.store(0, std::memory_order_release);
  }
}

std::string Tracer::ExportChromeJson(TraceSummary* summary) {
  TraceSummary sum;
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto emit_line = [&](const std::string& line) {
    if (!first) out.append(",\n");
    first = false;
    out.append(line);
  };

  std::lock_guard<std::mutex> lock(impl_->mu);
  emit_line(
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"ts\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"relspec\"}}");
  ++sum.metadata;

  for (TraceBuffer* b : impl_->buffers) {
    uint64_t tid = b->lane_id;
    std::string lane_name =
        b->name.empty() ? StrFormat("thread-%llu", (unsigned long long)tid)
                        : b->name;
    std::string escaped_name;
    AppendJsonEscaped(&escaped_name, lane_name);
    emit_line(StrFormat(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":%llu,\"ts\":0,"
        "\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}",
        (unsigned long long)tid, escaped_name.c_str()));
    emit_line(StrFormat(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":%llu,\"ts\":0,"
        "\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":%llu}}",
        (unsigned long long)tid, (unsigned long long)tid));
    sum.metadata += 2;

    TraceEvent* slots = b->slots.load(std::memory_order_acquire);
    if (slots == nullptr) continue;
    ++sum.lanes;

    // Snapshot the surviving window [h2 - cap, h2). The release store of
    // h2 orders all slot writes at indices < h2 before our acquire load;
    // slots being overwritten by a concurrent writer past h2 are excluded
    // by the head re-check below.
    uint64_t h2 = b->head.load(std::memory_order_acquire);
    uint64_t begin = h2 > b->capacity ? h2 - b->capacity : 0;
    std::vector<EventCopy> events;
    events.reserve(static_cast<size_t>(h2 - begin));
    std::vector<uint64_t> indices;
    indices.reserve(static_cast<size_t>(h2 - begin));
    for (uint64_t i = begin; i < h2; ++i) {
      const TraceEvent& e = slots[i & (b->capacity - 1)];
      EventCopy c;
      c.kind = e.kind.load(std::memory_order_relaxed);
      c.ts_ns = e.ts_ns.load(std::memory_order_relaxed);
      c.cat = e.cat.load(std::memory_order_relaxed);
      c.name = e.name.load(std::memory_order_relaxed);
      c.arg_name = e.arg_name.load(std::memory_order_relaxed);
      c.arg_value = e.arg_value.load(std::memory_order_relaxed);
      events.push_back(c);
      indices.push_back(i);
    }
    uint64_t h3 = b->head.load(std::memory_order_acquire);
    uint64_t valid_from = h3 > b->capacity ? h3 - b->capacity : 0;
    sum.dropped += valid_from;

    // Repair what the ring (or a concurrent writer) broke: skip overwritten
    // and orphaned events, then close any span still open at the lane's
    // end. A slot racing an in-flight write can mix old and new field
    // values (each field is an atomic, so each value is individually
    // valid); clamping timestamps keeps the lane monotone regardless.
    std::vector<const char*> open_cats;
    std::vector<const char*> open_names;
    int64_t last_ts = 0;
    for (size_t k = 0; k < events.size(); ++k) {
      if (indices[k] < valid_from) continue;  // overwritten during the copy
      const EventCopy& c = events[k];
      if (c.kind == kNone || c.name == nullptr) continue;
      if (c.kind == kEnd && open_names.empty()) continue;  // B was dropped
      int64_t ts = c.ts_ns < last_ts ? last_ts : c.ts_ns;
      last_ts = ts;
      std::string line =
          StrFormat("{\"pid\":1,\"tid\":%llu,\"ts\":%s",
                    (unsigned long long)tid, FormatTs(ts).c_str());
      switch (c.kind) {
        case kBegin:
          line.append(StrFormat(",\"ph\":\"B\",\"cat\":\"%s\",\"name\":\"%s\"",
                                c.cat, c.name));
          open_cats.push_back(c.cat);
          open_names.push_back(c.name);
          ++sum.begins;
          break;
        case kEnd:
          line.append(StrFormat(",\"ph\":\"E\",\"cat\":\"%s\",\"name\":\"%s\"",
                                open_cats.back(), open_names.back()));
          open_cats.pop_back();
          open_names.pop_back();
          ++sum.ends;
          break;
        case kInstant:
          line.append(
              StrFormat(",\"ph\":\"i\",\"s\":\"t\",\"cat\":\"%s\","
                        "\"name\":\"%s\"",
                        c.cat, c.name));
          ++sum.instants;
          break;
        case kCounter:
          line.append(StrFormat(
              ",\"ph\":\"C\",\"name\":\"%s\",\"args\":{\"value\":%lld}",
              c.name, (long long)static_cast<int64_t>(c.arg_value)));
          ++sum.counters;
          break;
        default:
          continue;
      }
      if (c.kind != kCounter && c.arg_name != nullptr) {
        line.append(StrFormat(",\"args\":{\"%s\":%llu}", c.arg_name,
                              (unsigned long long)c.arg_value));
      }
      line.push_back('}');
      emit_line(line);
    }
    while (!open_names.empty()) {
      emit_line(StrFormat(
          "{\"pid\":1,\"tid\":%llu,\"ts\":%s,\"ph\":\"E\",\"cat\":\"%s\","
          "\"name\":\"%s\"}",
          (unsigned long long)tid, FormatTs(last_ts).c_str(),
          open_cats.back(), open_names.back()));
      open_cats.pop_back();
      open_names.pop_back();
      ++sum.ends;
    }
  }

  out.append(StrFormat(
      "\n],\"otherData\":{\"trace.dropped\":%llu,\"exporter\":\"relspec\"}}\n",
      (unsigned long long)sum.dropped));

  if (MetricsEnabled()) {
    MetricsRegistry::Global().GetGauge("trace.dropped")->Set(
        static_cast<int64_t>(sum.dropped));
  }
  if (summary != nullptr) *summary = sum;
  return out;
}

Status Tracer::WriteChromeJson(const std::string& path) {
  std::string json = ExportChromeJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument(
        StrFormat("cannot open trace output file: %s", path.c_str()));
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::Internal(
        StrFormat("short write to trace output file: %s", path.c_str()));
  }
  return Status::OK();
}

namespace {

struct ParsedEvent {
  std::string ph;
  std::string name;
  bool has_ts = false;
  double ts = 0;
  bool has_pid = false;
  bool has_tid = false;
  int64_t tid = 0;
};

struct LaneState {
  double last_ts = 0;
  bool any = false;
  std::vector<std::string> open;  // names of unmatched B events
};

}  // namespace

StatusOr<TraceSummary> ValidateChromeTraceJson(std::string_view json) {
  TraceSummary sum;
  JsonParser p(json);
  std::map<int64_t, LaneState> lanes;
  bool saw_events_array = false;

  auto parse_event = [&]() -> Status {
    ParsedEvent ev;
    RELSPEC_RETURN_NOT_OK(p.ParseObject([&](const std::string& key) -> Status {
      if (key == "ph") {
        RELSPEC_ASSIGN_OR_RETURN(ev.ph, p.ParseString());
      } else if (key == "name") {
        RELSPEC_ASSIGN_OR_RETURN(ev.name, p.ParseString());
      } else if (key == "ts") {
        RELSPEC_ASSIGN_OR_RETURN(ev.ts, p.ParseNumber());
        ev.has_ts = true;
      } else if (key == "pid") {
        RELSPEC_ASSIGN_OR_RETURN(int64_t pid, p.ParseInt());
        (void)pid;
        ev.has_pid = true;
      } else if (key == "tid") {
        RELSPEC_ASSIGN_OR_RETURN(ev.tid, p.ParseInt());
        ev.has_tid = true;
      } else {
        RELSPEC_RETURN_NOT_OK(p.SkipValue());
      }
      return Status::OK();
    }));
    if (ev.ph.size() != 1 ||
        std::string_view("BEiCM").find(ev.ph[0]) == std::string_view::npos) {
      return Status::InvalidArgument(
          StrFormat("trace event with unknown ph '%s'", ev.ph.c_str()));
    }
    if (!ev.has_pid || !ev.has_tid) {
      return Status::InvalidArgument("trace event missing pid/tid");
    }
    if (ev.ph == "M") {
      ++sum.metadata;
      return Status::OK();
    }
    if (!ev.has_ts || ev.name.empty()) {
      return Status::InvalidArgument(
          StrFormat("%s event missing ts or name", ev.ph.c_str()));
    }
    LaneState& lane = lanes[ev.tid];
    if (lane.any && ev.ts < lane.last_ts) {
      return Status::InvalidArgument(StrFormat(
          "timestamps not monotone on lane %lld (%.3f after %.3f)",
          (long long)ev.tid, ev.ts, lane.last_ts));
    }
    lane.any = true;
    lane.last_ts = ev.ts;
    if (ev.ph == "B") {
      lane.open.push_back(ev.name);
      ++sum.begins;
    } else if (ev.ph == "E") {
      if (lane.open.empty()) {
        return Status::InvalidArgument(StrFormat(
            "E event '%s' without matching B on lane %lld", ev.name.c_str(),
            (long long)ev.tid));
      }
      if (lane.open.back() != ev.name) {
        return Status::InvalidArgument(StrFormat(
            "E event '%s' does not match open B '%s' on lane %lld",
            ev.name.c_str(), lane.open.back().c_str(), (long long)ev.tid));
      }
      lane.open.pop_back();
      ++sum.ends;
    } else if (ev.ph == "i") {
      ++sum.instants;
    } else {  // "C"
      ++sum.counters;
    }
    return Status::OK();
  };

  RELSPEC_RETURN_NOT_OK(p.ParseObject([&](const std::string& key) -> Status {
    if (key == "traceEvents") {
      saw_events_array = true;
      return p.ParseArray(parse_event);
    }
    if (key == "otherData") {
      return p.ParseObject([&](const std::string& inner) -> Status {
        if (inner == "trace.dropped") {
          RELSPEC_ASSIGN_OR_RETURN(sum.dropped, p.ParseUint());
          return Status::OK();
        }
        return p.SkipValue();
      });
    }
    return p.SkipValue();
  }));
  if (!p.AtEnd()) {
    return Status::InvalidArgument("trailing data after trace JSON object");
  }
  if (!saw_events_array) {
    return Status::InvalidArgument("trace JSON has no traceEvents array");
  }
  for (const auto& [tid, lane] : lanes) {
    if (!lane.open.empty()) {
      return Status::InvalidArgument(
          StrFormat("B event '%s' never closed on lane %lld",
                    lane.open.back().c_str(), (long long)tid));
    }
    ++sum.lanes;
  }
  return sum;
}

}  // namespace relspec
