#include "src/base/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>

#include "src/base/json.h"
#include "src/base/logging.h"
#include "src/base/str_util.h"
#include "src/base/trace.h"

namespace relspec {

namespace {
std::atomic<bool> g_metrics_enabled{false};
std::atomic<bool> g_tracing_enabled{false};
}  // namespace

void EnableMetrics(bool on) {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}
bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}
void EnableTracing(bool on) {
  g_tracing_enabled.store(on, std::memory_order_relaxed);
}
bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

void Histogram::Record(uint64_t v) {
  buckets_[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::min() const {
  uint64_t m = min_.load(std::memory_order_relaxed);
  return m == UINT64_MAX ? 0 : m;
}

uint64_t HistogramSnapshot::ValueAtQuantile(double q) const {
  if (count == 0) return 0;
  if (!(q > 0.0)) q = 0.0;
  if (q > 1.0) q = 1.0;
  // The target cumulative rank. Walk the (sorted, sparse) buckets until the
  // running count reaches it, then interpolate linearly inside that bucket's
  // value range [2^(e-1), 2^e).
  const double target = q * static_cast<double>(count);
  uint64_t cum = 0;
  double value = 0.0;
  for (const auto& [exp, n] : buckets) {
    const double lo = exp == 0 ? 0.0 : std::ldexp(1.0, exp - 1);
    const double hi =
        exp == 0 ? 0.0
                 : (exp >= 64 ? 18446744073709551615.0  // UINT64_MAX
                              : std::ldexp(1.0, exp) - 1.0);
    const double before = static_cast<double>(cum);
    cum += n;
    value = hi;  // carried forward if rounding never reaches `target`
    if (static_cast<double>(cum) >= target) {
      double frac =
          n == 0 ? 1.0 : (target - before) / static_cast<double>(n);
      if (frac < 0.0) frac = 0.0;
      if (frac > 1.0) frac = 1.0;
      value = lo + frac * (hi - lo);
      break;
    }
  }
  // Clamp into the observed range: exact for single-sample histograms,
  // immune to interpolation overshoot at the extremes, and UB-free at
  // UINT64_MAX (never casts a double >= 2^64).
  if (value <= static_cast<double>(min)) return min;
  if (value >= static_cast<double>(max)) return max;
  return static_cast<uint64_t>(value);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  // std::map: sorted iteration for stable snapshots; unique_ptr: instrument
  // addresses survive rehashing/rebalancing, so call sites can cache them.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
  std::map<std::string, std::unique_ptr<PhaseStat>, std::less<>> phases;
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: instruments must outlive every static destructor.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

namespace {
template <typename T>
T* GetOrCreate(std::mutex& mu,
               std::map<std::string, std::unique_ptr<T>, std::less<>>& map,
               std::string_view name) {
  std::lock_guard<std::mutex> lock(mu);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), std::make_unique<T>()).first;
  }
  return it->second.get();
}
}  // namespace

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  return GetOrCreate(impl_->mu, impl_->counters, name);
}
Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  return GetOrCreate(impl_->mu, impl_->gauges, name);
}
Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  return GetOrCreate(impl_->mu, impl_->histograms, name);
}
PhaseStat* MetricsRegistry::GetPhase(std::string_view name) {
  return GetOrCreate(impl_->mu, impl_->phases, name);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  MetricsSnapshot snap;
  for (const auto& [name, c] : impl_->counters) {
    snap.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, g] : impl_->gauges) {
    snap.gauges.emplace_back(name, g->value());
  }
  for (const auto& [name, h] : impl_->histograms) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = h->count();
    hs.sum = h->sum();
    hs.min = h->min();
    hs.max = h->max();
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      uint64_t n = h->bucket(i);
      if (n > 0) hs.buckets.emplace_back(i, n);
    }
    snap.histograms.push_back(std::move(hs));
  }
  for (const auto& [name, p] : impl_->phases) {
    snap.phases.push_back(PhaseSnapshot{name, p->count(), p->total_ns()});
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, c] : impl_->counters) c->Reset();
  for (auto& [name, g] : impl_->gauges) g->Reset();
  for (auto& [name, h] : impl_->histograms) h->Reset();
  for (auto& [name, p] : impl_->phases) p->Reset();
}

size_t MetricsRegistry::NumInstruments() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->counters.size() + impl_->gauges.size() +
         impl_->histograms.size() + impl_->phases.size();
}

// ---------------------------------------------------------------------------
// MetricsSnapshot accessors
// ---------------------------------------------------------------------------

uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

int64_t MetricsSnapshot::gauge(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

const PhaseSnapshot* MetricsSnapshot::phase(std::string_view name) const {
  for (const PhaseSnapshot& p : phases) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// JSON serialization
// ---------------------------------------------------------------------------

namespace {

// JSON labels for HistogramSnapshot::kReportedQuantiles, index-aligned.
constexpr const char* kQuantileLabels[] = {"p50", "p90", "p95", "p99",
                                           "p999"};
static_assert(std::size(kQuantileLabels) ==
              std::size(HistogramSnapshot::kReportedQuantiles));

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char ch : s) {
    switch (ch) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          *out += StrFormat("\\u%04x", ch);
        } else {
          out->push_back(ch);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string MetricsSnapshot::ToJson(bool pretty) const {
  const std::string item_first = pretty ? "\n    " : "";
  const std::string item_next = pretty ? ",\n    " : ", ";
  const std::string section_close = pretty ? "\n  }" : "}";
  const std::string section_sep = pretty ? ",\n  " : ", ";
  std::string out = pretty ? "{\n  \"counters\": {" : "{\"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out += first ? item_first : item_next;
    first = false;
    AppendJsonString(name, &out);
    out += StrFormat(": %llu", static_cast<unsigned long long>(v));
  }
  out += first ? "}" : section_close;
  out += section_sep + "\"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    out += first ? item_first : item_next;
    first = false;
    AppendJsonString(name, &out);
    out += StrFormat(": %lld", static_cast<long long>(v));
  }
  out += first ? "}" : section_close;
  out += section_sep + "\"histograms\": {";
  first = true;
  for (const HistogramSnapshot& h : histograms) {
    out += first ? item_first : item_next;
    first = false;
    AppendJsonString(h.name, &out);
    out += StrFormat(
        ": {\"count\": %llu, \"sum\": %llu, \"min\": %llu, \"max\": %llu, "
        "\"buckets\": [",
        static_cast<unsigned long long>(h.count),
        static_cast<unsigned long long>(h.sum),
        static_cast<unsigned long long>(h.min),
        static_cast<unsigned long long>(h.max));
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out += ", ";
      out += StrFormat("[%d, %llu]", h.buckets[i].first,
                       static_cast<unsigned long long>(h.buckets[i].second));
    }
    out += "], \"quantiles\": {";
    for (size_t i = 0; i < std::size(kQuantileLabels); ++i) {
      if (i > 0) out += ", ";
      out += StrFormat(
          "\"%s\": %llu", kQuantileLabels[i],
          static_cast<unsigned long long>(h.ValueAtQuantile(
              HistogramSnapshot::kReportedQuantiles[i])));
    }
    out += "}}";
  }
  out += first ? "}" : section_close;
  out += section_sep + "\"phases\": {";
  first = true;
  for (const PhaseSnapshot& p : phases) {
    out += first ? item_first : item_next;
    first = false;
    AppendJsonString(p.name, &out);
    out += StrFormat(": {\"count\": %llu, \"total_ns\": %llu}",
                     static_cast<unsigned long long>(p.count),
                     static_cast<unsigned long long>(p.total_ns));
  }
  out += first ? "}" : section_close;
  out += pretty ? "\n}\n" : "}";
  return out;
}

namespace {

// Registry names use '.'/'-' separators; Prometheus metric names may not.
std::string PrometheusName(std::string_view name) {
  std::string out = "relspec_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  for (const auto& [name, v] : counters) {
    const std::string pname = PrometheusName(name);
    out += StrFormat("# TYPE %s counter\n%s %llu\n", pname.c_str(),
                     pname.c_str(), static_cast<unsigned long long>(v));
  }
  for (const auto& [name, v] : gauges) {
    const std::string pname = PrometheusName(name);
    out += StrFormat("# TYPE %s gauge\n%s %lld\n", pname.c_str(),
                     pname.c_str(), static_cast<long long>(v));
  }
  for (const HistogramSnapshot& h : histograms) {
    const std::string pname = PrometheusName(h.name);
    out += StrFormat("# TYPE %s summary\n", pname.c_str());
    for (double q : HistogramSnapshot::kReportedQuantiles) {
      out += StrFormat(
          "%s{quantile=\"%g\"} %llu\n", pname.c_str(), q,
          static_cast<unsigned long long>(h.ValueAtQuantile(q)));
    }
    out += StrFormat("%s_sum %llu\n%s_count %llu\n", pname.c_str(),
                     static_cast<unsigned long long>(h.sum), pname.c_str(),
                     static_cast<unsigned long long>(h.count));
  }
  for (const PhaseSnapshot& p : phases) {
    const std::string pname = PrometheusName(p.name);
    out += StrFormat("# TYPE %s_count counter\n%s_count %llu\n",
                     pname.c_str(), pname.c_str(),
                     static_cast<unsigned long long>(p.count));
    out += StrFormat("# TYPE %s_total_ns counter\n%s_total_ns %llu\n",
                     pname.c_str(), pname.c_str(),
                     static_cast<unsigned long long>(p.total_ns));
  }
  return out;
}

// ---------------------------------------------------------------------------
// JSON parsing (the subset ToJson emits) — shared parser in base/json.h
// ---------------------------------------------------------------------------

StatusOr<MetricsSnapshot> MetricsSnapshot::FromJson(std::string_view json) {
  MetricsSnapshot snap;
  JsonParser p(json);
  Status status = p.ParseObject([&](const std::string& section) -> Status {
    if (section == "counters") {
      return p.ParseObject([&](const std::string& name) -> Status {
        RELSPEC_ASSIGN_OR_RETURN(uint64_t v, p.ParseUint());
        snap.counters.emplace_back(name, v);
        return Status::OK();
      });
    }
    if (section == "gauges") {
      return p.ParseObject([&](const std::string& name) -> Status {
        RELSPEC_ASSIGN_OR_RETURN(int64_t v, p.ParseInt());
        snap.gauges.emplace_back(name, v);
        return Status::OK();
      });
    }
    if (section == "histograms") {
      return p.ParseObject([&](const std::string& name) -> Status {
        HistogramSnapshot hs;
        hs.name = name;
        RELSPEC_RETURN_NOT_OK(
            p.ParseObject([&](const std::string& field) -> Status {
              if (field == "quantiles") {
                // Derived from the buckets (ToJson recomputes them), so the
                // values are validated as well-formed numbers and dropped:
                // the parsed snapshot re-emits byte-identical quantiles.
                return p.ParseObject([&](const std::string&) -> Status {
                  return p.ParseUint().status();
                });
              }
              if (field == "buckets") {
                if (!p.Eat('[')) return p.Error("expected '['");
                while (!p.Peek(']')) {
                  if (!p.Eat('[')) return p.Error("expected '['");
                  RELSPEC_ASSIGN_OR_RETURN(int64_t exp, p.ParseInt());
                  RELSPEC_ASSIGN_OR_RETURN(uint64_t n, p.ParseUint());
                  if (!p.Eat(']')) return p.Error("expected ']'");
                  hs.buckets.emplace_back(static_cast<int>(exp), n);
                }
                if (!p.Eat(']')) return p.Error("expected ']'");
                return Status::OK();
              }
              RELSPEC_ASSIGN_OR_RETURN(uint64_t v, p.ParseUint());
              if (field == "count") hs.count = v;
              else if (field == "sum") hs.sum = v;
              else if (field == "min") hs.min = v;
              else if (field == "max") hs.max = v;
              else return p.Error("unknown histogram field " + field);
              return Status::OK();
            }));
        snap.histograms.push_back(std::move(hs));
        return Status::OK();
      });
    }
    if (section == "phases") {
      return p.ParseObject([&](const std::string& name) -> Status {
        PhaseSnapshot ps;
        ps.name = name;
        RELSPEC_RETURN_NOT_OK(
            p.ParseObject([&](const std::string& field) -> Status {
              RELSPEC_ASSIGN_OR_RETURN(uint64_t v, p.ParseUint());
              if (field == "count") ps.count = v;
              else if (field == "total_ns") ps.total_ns = v;
              else return p.Error("unknown phase field " + field);
              return Status::OK();
            }));
        snap.phases.push_back(std::move(ps));
        return Status::OK();
      });
    }
    return p.Error("unknown section " + section);
  });
  RELSPEC_RETURN_NOT_OK(status);
  if (!p.AtEnd()) return Status::InvalidArgument("trailing JSON content");
  return snap;
}

// ---------------------------------------------------------------------------
// PhaseSpan
// ---------------------------------------------------------------------------

namespace internal {

namespace {
// Nesting depth for trace indentation; per thread so concurrent phases from
// different threads don't garble each other's indent.
thread_local int g_phase_depth = 0;
}  // namespace

PhaseSpan::PhaseSpan(const char* name)
    : name_(name),
      metrics_on_(MetricsEnabled()),
      tracing_on_(TracingEnabled()),
      event_trace_on_(EventTraceEnabled()) {
  if (event_trace_on_) Tracer::Global().Begin("phase", name_);
  if (!metrics_on_ && !tracing_on_) return;
  if (tracing_on_) {
    RELSPEC_LOG(kInfo) << "trace: " << std::string(static_cast<size_t>(g_phase_depth) * 2, ' ')
                       << ">> " << name_;
    ++g_phase_depth;
  }
  start_ = std::chrono::steady_clock::now();
}

PhaseSpan::~PhaseSpan() {
  if (event_trace_on_) Tracer::Global().End("phase", name_);
  if (!metrics_on_ && !tracing_on_) return;
  auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start_)
                .count();
  if (metrics_on_) {
    MetricsRegistry::Global().GetPhase(name_)->Record(
        static_cast<uint64_t>(ns));
  }
  if (tracing_on_) {
    --g_phase_depth;
    RELSPEC_LOG(kInfo) << "trace: " << std::string(static_cast<size_t>(g_phase_depth) * 2, ' ')
                       << "<< " << name_ << " ("
                       << StrFormat("%.3f ms", static_cast<double>(ns) / 1e6)
                       << ")";
  }
}

}  // namespace internal
}  // namespace relspec
