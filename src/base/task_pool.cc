#include "src/base/task_pool.h"

#include <algorithm>

#include "src/base/metrics.h"
#include "src/base/str_util.h"
#include "src/base/trace.h"

namespace relspec {

TaskPool::TaskPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  RELSPEC_GAUGE_SET("task_pool.workers", num_threads_);
  slots_.reserve(static_cast<size_t>(num_threads_));
  for (int i = 0; i < num_threads_; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
  threads_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i) {
    threads_.emplace_back([this, i] {
      Tracer::Global().SetCurrentThreadName(StrFormat("worker-%d", i));
      WorkerLoop(static_cast<size_t>(i));
    });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

size_t TaskPool::NumChunks(size_t range, size_t min_grain) const {
  if (range == 0) return 0;
  if (min_grain == 0) min_grain = 1;
  size_t by_grain = (range + min_grain - 1) / min_grain;
  size_t target = static_cast<size_t>(num_threads_) * kChunksPerThread;
  return std::max<size_t>(1, std::min(by_grain, target));
}

bool TaskPool::RunOneTask(size_t self) {
  std::function<void()> task;
  {
    Slot& own = *slots_[self];
    std::lock_guard<std::mutex> lk(own.mu);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
    }
  }
  if (!task) {
    for (size_t k = 1; k < slots_.size() && !task; ++k) {
      Slot& victim = *slots_[(self + k) % slots_.size()];
      std::lock_guard<std::mutex> lk(victim.mu);
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.front());
        victim.tasks.pop_front();
      }
    }
    if (task) {
      RELSPEC_COUNTER("task_pool.steals");
      RELSPEC_TRACE_INSTANT1("task_pool", "steal", "lane", self);
    }
  }
  if (!task) return false;
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    --queued_;
  }
  RELSPEC_COUNTER("task_pool.tasks");
  {
    RELSPEC_TRACE_SPAN("task_pool", "run");
    task();
  }
  return true;
}

void TaskPool::WorkerLoop(size_t self) {
  while (true) {
    {
      RELSPEC_TRACE_SPAN("task_pool", "park");
      std::unique_lock<std::mutex> lk(wake_mu_);
      wake_cv_.wait(lk, [this] { return stop_ || queued_ > 0; });
      if (stop_) return;
    }
    while (RunOneTask(self)) {
    }
  }
}

void TaskPool::Submit(std::function<void()> task) {
  if (num_threads_ <= 1) {
    RELSPEC_COUNTER("task_pool.tasks");
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    // Round-robin over the worker-owned slots (1..n-1); slot 0 belongs to
    // whichever thread is inside ParallelFor and may sit idle otherwise.
    size_t lane = 1 + (submit_rr_++ % static_cast<size_t>(num_threads_ - 1));
    Slot& slot = *slots_[lane];
    std::lock_guard<std::mutex> sg(slot.mu);
    slot.tasks.push_back(std::move(task));
    ++queued_;
  }
  wake_cv_.notify_one();
}

void TaskPool::ParallelFor(size_t begin, size_t end, size_t min_grain,
                           const ChunkFn& fn) {
  if (end <= begin) return;
  size_t range = end - begin;
  size_t nchunks = NumChunks(range, min_grain);
  if (num_threads_ <= 1 || nchunks <= 1) {
    fn(begin, end, 0);
    return;
  }
  RELSPEC_COUNTER("task_pool.parallel_fors");
  std::lock_guard<std::mutex> submit_lk(submit_mu_);

  // Batch completion state. `remaining` is guarded by `mu`; the worker that
  // drops it to zero notifies under the lock and never touches the batch
  // again, so destruction on return is safe.
  struct Batch {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining;
  } batch;
  batch.remaining = nchunks;

  size_t base = range / nchunks;
  size_t rem = range % nchunks;
  size_t pos = begin;
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    for (size_t ci = 0; ci < nchunks; ++ci) {
      size_t len = base + (ci < rem ? 1 : 0);
      size_t lo = pos;
      size_t hi = pos + len;
      pos = hi;
      auto task = [&fn, &batch, lo, hi, ci] {
        fn(lo, hi, ci);
        std::lock_guard<std::mutex> g(batch.mu);
        if (--batch.remaining == 0) batch.cv.notify_all();
      };
      Slot& slot = *slots_[ci % static_cast<size_t>(num_threads_)];
      std::lock_guard<std::mutex> sg(slot.mu);
      slot.tasks.push_back(std::move(task));
      ++queued_;
    }
  }
  wake_cv_.notify_all();

  // The submitting thread works the batch too (slot 0), then waits for
  // chunks stolen by workers that are still in flight.
  while (RunOneTask(0)) {
  }
  std::unique_lock<std::mutex> bl(batch.mu);
  batch.cv.wait(bl, [&batch] { return batch.remaining == 0; });
}

}  // namespace relspec
