#include "src/base/status.h"

namespace relspec {

namespace {
const std::string& EmptyString() {
  static const std::string* empty = new std::string();
  return *empty;
}
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid argument";
    case StatusCode::kNotFound: return "not found";
    case StatusCode::kAlreadyExists: return "already exists";
    case StatusCode::kFailedPrecondition: return "failed precondition";
    case StatusCode::kOutOfRange: return "out of range";
    case StatusCode::kUnimplemented: return "unimplemented";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kResourceExhausted: return "resource exhausted";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kDeadlineExceeded: return "deadline exceeded";
  }
  return "unknown";
}

std::optional<StatusCode> StatusCodeFromString(std::string_view name) {
  for (int i = 0; i <= static_cast<int>(StatusCode::kDeadlineExceeded); ++i) {
    StatusCode code = static_cast<StatusCode>(i);
    if (name == StatusCodeToString(code)) return code;
  }
  return std::nullopt;
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    state_ = std::make_shared<const State>(State{code, std::move(message)});
  }
}

Status Status::InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status Status::NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
Status Status::AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
Status Status::FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
Status Status::OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
Status Status::Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
Status Status::Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
Status Status::ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
Status Status::Cancelled(std::string msg) {
  return Status(StatusCode::kCancelled, std::move(msg));
}
Status Status::DeadlineExceeded(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}

const std::string& Status::message() const {
  return ok() ? EmptyString() : state_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code());
  result += ": ";
  result += state_->message;
  return result;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code(), context + ": " + state_->message);
}

}  // namespace relspec
