// DynamicBitset: a fixed-universe, heap-backed bitset.
//
// The fixpoint machinery in src/core represents the "state" of a term — the
// set of atoms of the grounded universe true at that term — as a
// DynamicBitset. States are hashed (they key the subtree-closure table and
// the state-equivalence relation of the paper, Section 3.1), unioned, and
// compared for subset inclusion in inner loops, so those operations are
// word-parallel.

#ifndef RELSPEC_BASE_BITSET_H_
#define RELSPEC_BASE_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace relspec {

/// A set of integers drawn from a universe [0, size) fixed at construction.
class DynamicBitset {
 public:
  DynamicBitset() = default;
  /// Creates an empty set over the universe [0, size).
  explicit DynamicBitset(size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  size_t size() const { return size_; }

  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  void Reset(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }

  /// Number of elements in the set (popcount).
  size_t Count() const;
  bool None() const;
  bool Any() const { return !None(); }

  /// True if every element of this set is also in `other`.
  /// Precondition: same universe size.
  bool IsSubsetOf(const DynamicBitset& other) const;

  /// this |= other. Returns true if this changed.
  bool UnionWith(const DynamicBitset& other);
  /// this &= other.
  void IntersectWith(const DynamicBitset& other);
  /// this &= ~other.
  void SubtractWith(const DynamicBitset& other);
  void Clear();

  bool operator==(const DynamicBitset& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }
  bool operator!=(const DynamicBitset& other) const { return !(*this == other); }

  /// Deterministic total order (for use as map keys and canonical output).
  bool operator<(const DynamicBitset& other) const;

  /// Calls f(i) for each element i in increasing order.
  template <typename F>
  void ForEach(F&& f) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        int b = __builtin_ctzll(bits);
        f(w * 64 + static_cast<size_t>(b));
        bits &= bits - 1;
      }
    }
  }

  /// Elements in increasing order.
  std::vector<size_t> ToVector() const;

  /// "{1,5,9}" — for debugging and golden tests.
  std::string ToString() const;

  size_t Hash() const;

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

struct DynamicBitsetHash {
  size_t operator()(const DynamicBitset& b) const { return b.Hash(); }
};

}  // namespace relspec

#endif  // RELSPEC_BASE_BITSET_H_
