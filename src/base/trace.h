// Event-level tracing: per-thread ring buffers of timestamped events,
// exported as Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing). Complements the aggregate registry in metrics.h: where
// a counter answers "how many", a trace answers "when, on which thread, and
// overlapping what".
//
// Design goals, in order:
//
//  1. Near-zero overhead when disabled. Recording is off by default; every
//     macro below performs one relaxed atomic load (inlined, no function
//     call) and branches away. No clock read, no allocation, no buffer
//     touch happens while tracing is disabled (verified by
//     bench/bench_trace.cc).
//  2. Lock-free recording when enabled. Each thread owns a fixed-capacity
//     ring buffer; recording is a handful of relaxed atomic stores plus one
//     release store of the head — no lock, no contention with other lanes.
//     When the ring wraps, the OLDEST events are dropped and the loss is
//     reported via Tracer::dropped() and the `trace.dropped` metrics gauge;
//     recording never blocks and never grows memory.
//  3. Honest export. ExportChromeJson repairs what ring overflow broke
//     (orphaned "E" events from a dropped prefix are discarded; spans still
//     open at export time are closed at the lane's last timestamp), so the
//     emitted JSON always satisfies the trace contract checked by
//     ValidateChromeTraceJson: parseable, every "B" matched by an "E",
//     timestamps monotone per lane.
//
// Event kinds (one ring slot each, all names/categories must be string
// literals — they are stored by pointer, never copied):
//
//   RELSPEC_TRACE_SPAN(cat, name);               // RAII begin/end pair
//   RELSPEC_TRACE_SPAN1(cat, name, "round", n);  // span with a numeric arg
//   RELSPEC_TRACE_INSTANT(cat, name);            // zero-duration marker
//   RELSPEC_TRACE_INSTANT1(cat, name, "code", v);
//   RELSPEC_TRACE_COUNTER(name, value);          // time-series sample
//
// Lanes: every emitting thread gets a lane (tid in the exported JSON).
// Tracer::SetCurrentThreadName names the calling thread's lane ("main",
// "worker-3"); the TaskPool names its workers automatically. Unnamed lanes
// export as "thread-N".

#ifndef RELSPEC_BASE_TRACE_H_
#define RELSPEC_BASE_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/base/status.h"

namespace relspec {

namespace trace_internal {
extern std::atomic<bool> g_trace_enabled;
}  // namespace trace_internal

/// Turns event recording on or off for the whole process. Off by default.
/// Buffers are not cleared by disabling: a stop/export/start cycle around a
/// region of interest works as expected.
void EnableEventTrace(bool on);

/// The macros' fast-path guard: one inlined relaxed load.
inline bool EventTraceEnabled() {
  return trace_internal::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Per-lane event totals of an exported or validated trace.
struct TraceSummary {
  uint64_t begins = 0;
  uint64_t ends = 0;
  uint64_t instants = 0;
  uint64_t counters = 0;
  uint64_t metadata = 0;
  uint64_t lanes = 0;
  uint64_t dropped = 0;

  uint64_t total() const { return begins + ends + instants + counters; }
};

/// The process-wide tracer. Thread buffers are created lazily on a thread's
/// first recorded event (or SetCurrentThreadName) and leaked on purpose, so
/// export after a writer thread has exited is safe.
class Tracer {
 public:
  static Tracer& Global();

  /// Ring capacity (events per thread) for buffers allocated AFTER the
  /// call; existing buffers keep their size. Rounded up to a power of two,
  /// minimum 8. Default: 32768 events (~2 MiB per recording thread).
  void SetBufferCapacity(size_t events);

  /// Names the calling thread's lane in the exported trace. Registers the
  /// lane but does not allocate its ring (that happens on first event), so
  /// it is cheap to call unconditionally at thread start.
  void SetCurrentThreadName(std::string name);

  /// Recording primitives behind the RELSPEC_TRACE_* macros. Callers are
  /// expected to check EventTraceEnabled() first (the macros do); calling
  /// while disabled records nothing. `cat`, `name` and `arg_name` must be
  /// string literals.
  void Begin(const char* cat, const char* name,
             const char* arg_name = nullptr, uint64_t arg_value = 0);
  void End(const char* cat, const char* name,
           const char* arg_name = nullptr, uint64_t arg_value = 0);
  void Instant(const char* cat, const char* name,
               const char* arg_name = nullptr, uint64_t arg_value = 0);
  void Counter(const char* name, int64_t value);

  /// Events dropped to ring overflow across all lanes since the last
  /// Reset(). Also exported as the `trace.dropped` gauge by
  /// ExportChromeJson (when metrics are enabled) and embedded in the JSON's
  /// otherData section.
  uint64_t dropped() const;

  /// Serializes every lane's surviving events as a Chrome trace-event JSON
  /// object ({"traceEvents": [...], ...}). Safe to call while other threads
  /// are still recording: a lane's concurrently-overwritten slots are
  /// excluded by the head re-check, never emitted torn. `summary`, when
  /// non-null, receives the exported event totals.
  std::string ExportChromeJson(TraceSummary* summary = nullptr);

  /// ExportChromeJson straight to a file.
  Status WriteChromeJson(const std::string& path);

  /// Zeroes every lane's ring and the drop accounting. Lane ids and names
  /// survive (like MetricsRegistry::Reset).
  void Reset();

 private:
  struct Impl;
  Tracer();
  ~Tracer() = delete;  // process-lifetime singleton
  Impl* impl_;
};

/// Checks that `json` is a structurally valid Chrome trace-event file:
/// parseable, "traceEvents" present, every event carrying ph/ts/pid (and
/// tid+name where the phase requires them), B/E balanced per lane, and
/// timestamps monotone per lane. Returns the event totals on success.
/// Shared by tests/trace_test.cc and tools/trace_check.cc.
StatusOr<TraceSummary> ValidateChromeTraceJson(std::string_view json);

namespace internal {

/// RAII begin/end pair; inert when tracing was disabled at construction.
/// If tracing turns off mid-span the unmatched "B" is repaired at export.
class TraceSpan {
 public:
  TraceSpan(const char* cat, const char* name,
            const char* arg_name = nullptr, uint64_t arg_value = 0) {
    if (!EventTraceEnabled()) return;
    cat_ = cat;
    name_ = name;
    Tracer::Global().Begin(cat, name, arg_name, arg_value);
  }
  ~TraceSpan() {
    if (name_ == nullptr || !EventTraceEnabled()) return;
    Tracer::Global().End(cat_, name_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* cat_ = nullptr;
  const char* name_ = nullptr;
};

}  // namespace internal
}  // namespace relspec

#define RELSPEC_TRACE_CONCAT_INNER(a, b) a##b
#define RELSPEC_TRACE_CONCAT(a, b) RELSPEC_TRACE_CONCAT_INNER(a, b)

#define RELSPEC_TRACE_SPAN(cat, name)                                \
  ::relspec::internal::TraceSpan RELSPEC_TRACE_CONCAT(relspec_trace_span_, \
                                                      __LINE__)(cat, name)

#define RELSPEC_TRACE_SPAN1(cat, name, arg_name, arg_value)          \
  ::relspec::internal::TraceSpan RELSPEC_TRACE_CONCAT(relspec_trace_span_, \
                                                      __LINE__)(           \
      cat, name, arg_name, static_cast<uint64_t>(arg_value))

#define RELSPEC_TRACE_INSTANT(cat, name)                     \
  do {                                                       \
    if (::relspec::EventTraceEnabled()) {                    \
      ::relspec::Tracer::Global().Instant(cat, name);        \
    }                                                        \
  } while (0)

#define RELSPEC_TRACE_INSTANT1(cat, name, arg_name, arg_value)            \
  do {                                                                    \
    if (::relspec::EventTraceEnabled()) {                                 \
      ::relspec::Tracer::Global().Instant(cat, name, arg_name,            \
                                          static_cast<uint64_t>(arg_value)); \
    }                                                                     \
  } while (0)

#define RELSPEC_TRACE_COUNTER(name, value)                                \
  do {                                                                    \
    if (::relspec::EventTraceEnabled()) {                                 \
      ::relspec::Tracer::Global().Counter(name,                           \
                                          static_cast<int64_t>(value));   \
    }                                                                     \
  } while (0)

#endif  // RELSPEC_BASE_TRACE_H_
