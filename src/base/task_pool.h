// TaskPool: a fixed-size work-stealing thread pool for the evaluation hot
// loops (DATALOG delta joins, chi-table passes).
//
// Shape (after the task-based many-core designs, e.g. MxTasking): N-1
// background workers plus the submitting thread, one mutex-guarded deque per
// worker. Owners pop from the back of their own deque (LIFO, cache-warm);
// idle workers steal from the front of a victim's deque (FIFO, oldest —
// i.e. largest remaining — work first). Tasks here are coarse chunks of an
// index range, hundreds of microseconds to milliseconds each, so the
// per-task mutex cost is noise; the point of stealing is load balance when
// chunk costs are skewed, not lock-freedom.
//
// Determinism contract (see docs/ARCHITECTURE.md): ParallelFor decomposes
// [begin, end) into NumChunks(range, min_grain) contiguous chunks whose
// boundaries depend only on (range, min_grain, num_threads) — never on
// scheduling. The chunk index passed to the callback lets callers gather
// results into per-chunk slots and merge them in chunk order on the calling
// thread, which makes the merged result independent of which worker ran
// which chunk. All parallel call sites in this codebase follow that
// gather-then-merge discipline.
//
// Instrumented (see docs/OBSERVABILITY.md): task_pool.workers (gauge),
// task_pool.tasks, task_pool.steals, task_pool.parallel_fors (counters).

#ifndef RELSPEC_BASE_TASK_POOL_H_
#define RELSPEC_BASE_TASK_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace relspec {

class TaskPool {
 public:
  /// Creates a pool of `num_threads` execution lanes: the calling thread
  /// plus num_threads - 1 spawned workers. Clamped to >= 1; a 1-thread pool
  /// spawns nothing and runs everything inline on the caller.
  explicit TaskPool(int num_threads);
  ~TaskPool();
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Number of chunks ParallelFor(begin, end, min_grain, ...) will produce
  /// for a range of `range` elements: ceil(range / min_grain), capped at
  /// num_threads * kChunksPerThread. Depends only on the arguments and the
  /// pool size, so callers can pre-size per-chunk result buffers.
  size_t NumChunks(size_t range, size_t min_grain) const;

  /// fn(chunk_begin, chunk_end, chunk_index): chunks partition [begin, end)
  /// in order; chunk_index < NumChunks(end - begin, min_grain). Blocks until
  /// every chunk has run; the calling thread participates. Not reentrant:
  /// fn must not itself call ParallelFor on this pool. Concurrent calls from
  /// distinct threads are serialized.
  using ChunkFn = std::function<void(size_t begin, size_t end, size_t chunk)>;
  void ParallelFor(size_t begin, size_t end, size_t min_grain,
                   const ChunkFn& fn);

  /// Fire-and-forget: enqueues one task for any worker (task-per-request
  /// serving, see src/serve/server.cc). On a 1-thread pool the task runs
  /// inline on the caller before Submit returns. Tasks must track their own
  /// completion: the destructor stops workers without draining, so a task
  /// still queued when the pool dies is silently dropped — owners drain
  /// (e.g. an in-flight count) before destroying the pool. Safe to call
  /// concurrently with ParallelFor and from multiple threads.
  void Submit(std::function<void()> task);

  /// Oversubscription factor: more chunks than lanes so stealing can
  /// rebalance skewed chunk costs.
  static constexpr size_t kChunksPerThread = 4;

 private:
  struct Slot {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  /// Pops own back, else steals a victim's front. Returns false when every
  /// deque is empty.
  bool RunOneTask(size_t self);
  void WorkerLoop(size_t self);

  int num_threads_;
  std::vector<std::unique_ptr<Slot>> slots_;  // slot 0: submitting thread
  std::vector<std::thread> threads_;
  std::mutex submit_mu_;  // serializes ParallelFor batches
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  size_t queued_ = 0;  // tasks sitting in deques; guarded by wake_mu_
  bool stop_ = false;  // guarded by wake_mu_
  size_t submit_rr_ = 0;  // Submit round-robin cursor; guarded by wake_mu_
};

}  // namespace relspec

#endif  // RELSPEC_BASE_TASK_POOL_H_
