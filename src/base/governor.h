// ResourceGovernor: one object that decides when a computation must stop.
//
// The paper's least fixpoints are infinite objects; their finite
// specifications can still be astronomically large, and no static check can
// predict which inputs blow up. A governor makes every long-running phase
// interruptible by carrying:
//
//   - a wall-clock deadline (steady clock, armed at construction),
//   - a cooperative cancellation token (async-signal-safe to request),
//   - budget counters: derived tuples, chi-table/trunk nodes, fixpoint
//     rounds, term depth, and tracked allocation bytes.
//
// Engine phases poll it at natural safe points (once per round, per table
// entry, per rule batch, per parallel chunk). A breach is *sticky*: the
// first one wins, every later poll returns the same Status, and the phases
// unwind through the normal Status plumbing. Budget breaches (not errors)
// are eligible for graceful degradation: with allow_partial the engine
// keeps the monotone state it has already computed — a sound
// under-approximation of the fixpoint — and returns it marked `truncated`
// together with the breach reason and progress metrics.
//
// Thread safety: every method is safe to call concurrently; RequestCancel
// is additionally async-signal-safe (one relaxed atomic store) so a SIGINT
// handler can use it.

#ifndef RELSPEC_BASE_GOVERNOR_H_
#define RELSPEC_BASE_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "src/base/status.h"

namespace relspec {

/// Budgets for one governed computation. Zero means "unlimited" for every
/// field; a default-constructed Limits governs nothing but still supports
/// cancellation.
struct GovernorLimits {
  /// Wall-clock budget in milliseconds, measured from ResourceGovernor
  /// construction. Breach -> kDeadlineExceeded.
  int64_t deadline_ms = 0;
  /// Maximum derived tuples across all DATALOG strata. Breach ->
  /// kResourceExhausted.
  uint64_t max_tuples = 0;
  /// Maximum fixpoint nodes: chi-table entries plus trunk labels. Breach ->
  /// kResourceExhausted.
  uint64_t max_nodes = 0;
  /// Maximum Kleene-iteration rounds of the core fixpoint. Breach ->
  /// kResourceExhausted.
  uint64_t max_rounds = 0;
  /// Maximum term/path depth accepted by governed traversals. Breach ->
  /// kResourceExhausted.
  uint64_t max_depth = 0;
  /// Maximum tracked allocation bytes (self-reported by phases that charge
  /// their large structures). Breach -> kResourceExhausted.
  uint64_t max_bytes = 0;
};

class ResourceGovernor {
 public:
  /// Arms the deadline clock immediately (if deadline_ms > 0).
  explicit ResourceGovernor(GovernorLimits limits = {});

  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  const GovernorLimits& limits() const { return limits_; }

  /// Requests cooperative cancellation. Async-signal-safe; the next poll on
  /// any thread observes it.
  void RequestCancel() { cancel_.store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return cancel_.load(std::memory_order_relaxed);
  }

  /// Cheap poll for parallel workers: true once the computation must stop
  /// (recorded breach, pending cancellation, or expired deadline). Does NOT
  /// record a breach itself — workers that observe it just drain; the
  /// coordinating thread turns the condition into a Status via Check().
  bool ShouldAbort() const;

  /// Polls cancellation and the deadline; records and returns the first
  /// breach (sticky — once non-OK, every later call returns that Status).
  Status Check();

  /// Check() plus a budget comparison against the current *level* of a
  /// monotone quantity. Levels, not deltas: callers pass "how big is the
  /// structure now", which is race-free to re-report from many threads.
  Status CheckTuples(uint64_t level);
  Status CheckNodes(uint64_t level);
  Status CheckDepth(uint64_t level);

  /// Check() plus one round charged against max_rounds.
  Status ChargeRound();

  /// Check() plus `delta` bytes added to the tracked-allocation account.
  Status ChargeBytes(uint64_t delta);

  /// The first breach, or OK while none has occurred.
  Status status() const;
  bool breached() const { return breached_.load(std::memory_order_acquire); }

  /// Progress observed so far (peaks of the reported levels) — the numbers
  /// attached to truncated results and exported by RecordMetrics.
  uint64_t rounds() const { return rounds_.load(std::memory_order_relaxed); }
  uint64_t peak_tuples() const {
    return peak_tuples_.load(std::memory_order_relaxed);
  }
  uint64_t peak_nodes() const {
    return peak_nodes_.load(std::memory_order_relaxed);
  }
  uint64_t peak_depth() const {
    return peak_depth_.load(std::memory_order_relaxed);
  }
  uint64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  /// Milliseconds elapsed since construction.
  int64_t elapsed_ms() const;

  /// Request-scoped trace context (docs/OPERATIONS.md): the serving layer
  /// stamps the request's 64-bit trace ID on its per-request governor so a
  /// breach instant in the exported timeline carries the ID of the request
  /// that breached, not just the breach code. 0 = no trace context.
  void set_trace_id(uint64_t id) {
    trace_id_.store(id, std::memory_order_relaxed);
  }
  uint64_t trace_id() const {
    return trace_id_.load(std::memory_order_relaxed);
  }

  /// One-line progress summary, e.g. for breach messages and --stats.
  std::string ProgressString() const;

  /// Publishes governor.* metrics: breach counters keyed by code, progress
  /// gauges, and elapsed time. Call once when the governed run finishes
  /// (normally or by breach); no-op while metrics are disabled.
  void RecordMetrics() const;

 private:
  /// Records `s` as the breach if none is recorded yet; returns the stored
  /// first breach either way.
  Status RecordBreach(Status s);

  const GovernorLimits limits_;
  const std::chrono::steady_clock::time_point start_;
  const std::chrono::steady_clock::time_point deadline_;  // time_point::max() if none

  std::atomic<bool> cancel_{false};
  std::atomic<bool> breached_{false};
  mutable std::mutex breach_mu_;
  Status breach_;  // guarded by breach_mu_; set once

  std::atomic<uint64_t> rounds_{0};
  std::atomic<uint64_t> peak_tuples_{0};
  std::atomic<uint64_t> peak_nodes_{0};
  std::atomic<uint64_t> peak_depth_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> trace_id_{0};
};

}  // namespace relspec

#endif  // RELSPEC_BASE_GOVERNOR_H_
