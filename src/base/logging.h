// Minimal leveled logging through a pluggable sink (default: stderr), plus
// CHECK macros for internal invariants. Logging defaults to
// warnings-and-above so library users see nothing in normal operation;
// tests and benchmarks can raise the level.

#ifndef RELSPEC_BASE_LOGGING_H_
#define RELSPEC_BASE_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace relspec {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Sets the minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Receives every emitted log record: the level, the call site, and the
/// streamed message (no level/site prefix, no trailing newline).
using LogSink =
    std::function<void(LogLevel level, const char* file, int line,
                       const std::string& message)>;

/// Replaces the process-wide sink; pass nullptr to restore the default
/// stderr sink. Returns the previous sink so tests can restore it. kFatal
/// messages still abort after the sink returns. Not safe to race with
/// concurrent logging — install sinks at test/process setup.
LogSink SetLogSink(LogSink sink);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the level is disabled.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace relspec

#define RELSPEC_LOG_IS_ON(level) \
  (::relspec::LogLevel::level >= ::relspec::GetLogLevel())

#define RELSPEC_LOG(level)                                       \
  !RELSPEC_LOG_IS_ON(level)                                      \
      ? (void)0                                                  \
      : ::relspec::internal::LogMessageVoidify() &               \
            ::relspec::internal::LogMessage(                     \
                ::relspec::LogLevel::level, __FILE__, __LINE__)  \
                .stream()

/// Aborts with a message when an internal invariant is violated.
#define RELSPEC_CHECK(cond)                                             \
  (cond) ? (void)0                                                      \
         : ::relspec::internal::LogMessageVoidify() &                   \
               ::relspec::internal::LogMessage(                         \
                   ::relspec::LogLevel::kFatal, __FILE__, __LINE__)     \
                   .stream()                                            \
               << "Check failed: " #cond " "

#define RELSPEC_CHECK_EQ(a, b) RELSPEC_CHECK((a) == (b))
#define RELSPEC_CHECK_NE(a, b) RELSPEC_CHECK((a) != (b))
#define RELSPEC_CHECK_LT(a, b) RELSPEC_CHECK((a) < (b))
#define RELSPEC_CHECK_LE(a, b) RELSPEC_CHECK((a) <= (b))
#define RELSPEC_CHECK_GT(a, b) RELSPEC_CHECK((a) > (b))
#define RELSPEC_CHECK_GE(a, b) RELSPEC_CHECK((a) >= (b))

#endif  // RELSPEC_BASE_LOGGING_H_
