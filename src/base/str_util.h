// Small string helpers shared across the library.

#ifndef RELSPEC_BASE_STR_UTIL_H_
#define RELSPEC_BASE_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace relspec {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace relspec

#endif  // RELSPEC_BASE_STR_UTIL_H_
