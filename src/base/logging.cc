#include "src/base/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

namespace relspec {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kFatal: return "F";
  }
  return "?";
}

void StderrSink(LogLevel level, const char* file, int line,
                const std::string& message) {
  fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), file, line,
          message.c_str());
}

// The installed sink; guarded by a mutex so a sink swap can't race the copy
// taken on the (rare: level-filtered) emission path. Leaked like the other
// process-lifetime singletons so logging works during static teardown.
std::mutex& SinkMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

LogSink& InstalledSink() {
  static LogSink* sink = new LogSink(StderrSink);
  return *sink;
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

LogSink SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  LogSink prev = std::move(InstalledSink());
  InstalledSink() = sink ? std::move(sink) : LogSink(StderrSink);
  return prev;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  std::string msg = stream_.str();
  LogSink sink;
  {
    std::lock_guard<std::mutex> lock(SinkMutex());
    sink = InstalledSink();
  }
  sink(level_, file_, line_, msg);
  if (level_ == LogLevel::kFatal) {
    fflush(stderr);
    std::abort();
  }
}

}  // namespace internal
}  // namespace relspec
