#include "src/base/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace relspec {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kFatal: return "F";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::string msg = stream_.str();
  fprintf(stderr, "%s\n", msg.c_str());
  if (level_ == LogLevel::kFatal) {
    fflush(stderr);
    std::abort();
  }
}

}  // namespace internal
}  // namespace relspec
