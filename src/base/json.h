// A minimal recursive-descent parser for the JSON subset this codebase
// emits (metrics snapshots, Chrome trace-event files): objects, arrays,
// strings with simple escapes, integers and decimal numbers, and the
// true/false/null literals. Extracted from metrics.cc so the trace
// validator (src/base/trace.cc) and the metrics round-trip share one
// implementation.
//
// Deliberately lenient where our emitters are regular: commas are treated
// as whitespace, so a well-formed emission parses and a malformed one still
// fails on structure. Not a general-purpose validating JSON parser.

#ifndef RELSPEC_BASE_JSON_H_
#define RELSPEC_BASE_JSON_H_

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "src/base/status.h"
#include "src/base/str_util.h"

namespace relspec {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Status Error(const std::string& what) {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at offset %zu: %s", pos_, what.c_str()));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r' || text_[pos_] == ',')) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Peek(char c) {
    SkipWs();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  StatusOr<std::string> ParseString() {
    if (!Eat('"')) return Error("expected '\"'");
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char ch = text_[pos_++];
      if (ch != '\\') {
        out.push_back(ch);
        continue;
      }
      if (pos_ >= text_.size()) return Error("dangling escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad \\u escape");
          }
          out.push_back(static_cast<char>(code));  // ASCII control chars only
          break;
        }
        default: return Error("unknown escape");
      }
    }
    if (!Eat('"')) return Error("unterminated string");
    return out;
  }

  StatusOr<int64_t> ParseInt() {
    SkipWs();
    bool neg = false;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      neg = true;
      ++pos_;
    }
    if (pos_ >= text_.size() || !isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Error("expected digit");
    }
    uint64_t v = 0;
    while (pos_ < text_.size() && isdigit(static_cast<unsigned char>(text_[pos_]))) {
      v = v * 10 + static_cast<uint64_t>(text_[pos_++] - '0');
    }
    return neg ? -static_cast<int64_t>(v) : static_cast<int64_t>(v);
  }

  StatusOr<uint64_t> ParseUint() {
    RELSPEC_ASSIGN_OR_RETURN(int64_t v, ParseInt());
    if (v < 0) return Error("expected non-negative integer");
    return static_cast<uint64_t>(v);
  }

  /// Parses an integer or decimal number (Chrome trace "ts" values carry a
  /// fractional microsecond part).
  StatusOr<double> ParseNumber() {
    SkipWs();
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    size_t digits = 0;
    while (pos_ < text_.size() &&
           (isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '-' || text_[pos_] == '+') && digits > 0))) {
      ++pos_;
      ++digits;
    }
    if (digits == 0) return Error("expected number");
    return std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                       nullptr);
  }

  /// Parses {"key": value, ...}, invoking `on_member(key)` with the cursor
  /// positioned at the value.
  template <typename F>
  Status ParseObject(F&& on_member) {
    if (!Eat('{')) return Error("expected '{'");
    while (!Peek('}')) {
      RELSPEC_ASSIGN_OR_RETURN(std::string key, ParseString());
      if (!Eat(':')) return Error("expected ':'");
      RELSPEC_RETURN_NOT_OK(on_member(key));
    }
    if (!Eat('}')) return Error("expected '}'");
    return Status::OK();
  }

  /// Parses [value, ...], invoking `on_element()` with the cursor at each
  /// element.
  template <typename F>
  Status ParseArray(F&& on_element) {
    if (!Eat('[')) return Error("expected '['");
    while (!Peek(']')) {
      RELSPEC_RETURN_NOT_OK(on_element());
    }
    if (!Eat(']')) return Error("expected ']'");
    return Status::OK();
  }

  /// Skips one value of any kind (for members the caller does not care
  /// about).
  Status SkipValue() {
    SkipWs();
    if (pos_ >= text_.size()) return Error("expected value");
    char c = text_[pos_];
    if (c == '{') {
      return ParseObject([&](const std::string&) { return SkipValue(); });
    }
    if (c == '[') {
      return ParseArray([&] { return SkipValue(); });
    }
    if (c == '"') return ParseString().status();
    if (c == 't' || c == 'f' || c == 'n') {
      for (std::string_view lit : {"true", "false", "null"}) {
        if (text_.substr(pos_, lit.size()) == lit) {
          pos_ += lit.size();
          return Status::OK();
        }
      }
      return Error("unknown literal");
    }
    return ParseNumber().status();
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace relspec

#endif  // RELSPEC_BASE_JSON_H_
