// The [CI88] temporal baseline: periodicity-based evaluation for *forward
// temporal* programs.
//
// [CI88] (Chomicki & Imielinski, PODS 1988) handled deductive databases with
// the single function symbol +1 and represented infinite answers as
// "infinite objects" — here, PeriodicSets. Its applicability was limited
// (the 1989 paper's introductory Meets example already falls outside the
// fragment handled there in full generality); we reproduce it as the
// comparison baseline with the *forward fragment*:
//
//   * exactly one pure function symbol (+1), no mixed symbols,
//   * no rule reads at a child position (body terms are s or ground):
//     information flows forward in time only.
//
// Under these restrictions the least fixpoint restricted to the time line is
// computed by iterating a step function label(n+1) = F(label(n)) and
// detecting the lasso (prefix mu, period lambda) — linear in the number of
// distinct states, with no chi table and no tree traversal.

#ifndef RELSPEC_TEMPORAL_TEMPORAL_ENGINE_H_
#define RELSPEC_TEMPORAL_TEMPORAL_ENGINE_H_

#include <memory>
#include <vector>

#include "src/ast/ast.h"
#include "src/base/bitset.h"
#include "src/base/status.h"
#include "src/core/ground.h"
#include "src/temporal/periodic_set.h"

namespace relspec {

class ResourceGovernor;

/// The lasso representation of a temporal least fixpoint: labels for time
/// points 0..mu-1, then a cycle of length lambda repeating forever.
class TemporalSpec {
 public:
  uint64_t prefix_length() const { return prefix_.size(); }
  uint64_t period() const { return cycle_.size(); }

  /// The label at time n.
  const DynamicBitset& LabelAt(uint64_t n) const;
  /// Membership of pred(n, args...).
  bool Holds(uint64_t n, PredId pred, const std::vector<ConstId>& args) const;
  /// All times at which pred(args...) holds, as a periodic set — the [CI88]
  /// "infinite object" answer representation.
  PeriodicSet AnswersFor(PredId pred, const std::vector<ConstId>& args) const;

  bool HoldsGlobal(PredId pred, const std::vector<ConstId>& args) const;

  /// Distinct states seen along the chain (= mu + lambda).
  size_t num_states() const { return prefix_.size() + cycle_.size(); }

 private:
  friend class TemporalEngine;
  const GroundProgram* ground_ = nullptr;
  std::vector<DynamicBitset> prefix_;
  std::vector<DynamicBitset> cycle_;
  DynamicBitset ctx_;
};

/// Builds TemporalSpecs for forward temporal programs.
class TemporalEngine {
 public:
  /// Transforms and grounds the program; fails with FailedPrecondition if it
  /// is not a forward temporal program (see file comment).
  static StatusOr<std::unique_ptr<TemporalEngine>> Build(Program program);

  /// The lasso fixpoint. The optional governor is polled once per chain
  /// position (deadline, cancellation, node budget) and must outlive the
  /// call.
  StatusOr<TemporalSpec> ComputeSpec(size_t max_states = 10'000'000,
                                     ResourceGovernor* governor = nullptr);

  const GroundProgram& ground() const { return *ground_; }
  const Program& program() const { return program_; }

 private:
  TemporalEngine() = default;
  Program program_;
  std::unique_ptr<GroundProgram> ground_;
};

}  // namespace relspec

#endif  // RELSPEC_TEMPORAL_TEMPORAL_ENGINE_H_
