// Periodic-set answers from graph specifications.
//
// For single-symbol (temporal) programs, the successor graph restricted to
// the +1 chain is a lasso, so the set of time points where a fact holds is
// a PeriodicSet — [CI88]'s "infinite object" representation. Unlike the
// TemporalEngine (which is limited to the forward fragment), this works for
// *any* program the 1989 construction handles, as long as the alphabet has
// one symbol: the graph specification already encodes the full fixpoint, so
// extracting the lasso is a pure walk.

#ifndef RELSPEC_TEMPORAL_PERIODIC_ANSWERS_H_
#define RELSPEC_TEMPORAL_PERIODIC_ANSWERS_H_

#include "src/base/status.h"
#include "src/core/graph_spec.h"
#include "src/temporal/periodic_set.h"

namespace relspec {

/// All n with pred(n, args...) in LFP(Z, D), as a periodic set. Fails with
/// FailedPrecondition unless the specification's alphabet is a single
/// symbol.
StatusOr<PeriodicSet> PeriodicAnswers(const GraphSpecification& spec,
                                      PredId pred,
                                      const std::vector<ConstId>& args);

}  // namespace relspec

#endif  // RELSPEC_TEMPORAL_PERIODIC_ANSWERS_H_
