#include "src/temporal/periodic_answers.h"

#include <unordered_map>
#include <vector>

namespace relspec {

StatusOr<PeriodicSet> PeriodicAnswers(const GraphSpecification& spec,
                                      PredId pred,
                                      const std::vector<ConstId>& args) {
  if (spec.alphabet().size() != 1) {
    return Status::FailedPrecondition(
        "periodic answers require a single function symbol");
  }
  const LabelGraph& graph = spec.graph();

  // Is the atom in a given cluster's slice?
  auto holds_in = [&](uint32_t cluster) {
    for (const SliceAtom& a : spec.SliceOf(graph.cluster(cluster).representative)) {
      if (a.pred == pred && a.args == args) return true;
    }
    return false;
  };

  // Walk the chain 0, 1, 2, ... by successor until a cluster repeats.
  std::vector<uint32_t> chain;
  std::unordered_map<uint32_t, size_t> seen;
  uint32_t cur = graph.ClusterOf(Path::Zero());
  size_t cycle_start = 0;
  while (true) {
    auto it = seen.find(cur);
    if (it != seen.end()) {
      cycle_start = it->second;
      break;
    }
    seen.emplace(cur, chain.size());
    chain.push_back(cur);
    cur = graph.SuccessorOf(cur, 0);
  }

  PeriodicSet out;
  size_t period = chain.size() - cycle_start;
  for (size_t n = 0; n < chain.size(); ++n) {
    if (!holds_in(chain[n])) continue;
    if (n < cycle_start) {
      out.AddPoint(n);
    } else {
      out.AddProgression(n, period);
    }
  }
  return out;
}

}  // namespace relspec
