// PeriodicSet: finite unions of points and arithmetic progressions over the
// naturals — the "infinite objects" of [CI88] used to represent answers of
// temporal deductive databases (one function symbol, +1).

#ifndef RELSPEC_TEMPORAL_PERIODIC_SET_H_
#define RELSPEC_TEMPORAL_PERIODIC_SET_H_

#include <cstdint>
#include <string>
#include <vector>

namespace relspec {

/// A subset of N representable as points ∪ progressions {start + period*i}.
class PeriodicSet {
 public:
  PeriodicSet() = default;

  void AddPoint(uint64_t n);
  /// Adds {start, start+period, start+2*period, ...}; period >= 1.
  void AddProgression(uint64_t start, uint64_t period);

  bool Contains(uint64_t n) const;
  bool IsEmpty() const { return points_.empty() && progressions_.empty(); }
  /// True if the set is finite (no progressions).
  bool IsFinite() const { return progressions_.empty(); }

  /// In-place union.
  void UnionWith(const PeriodicSet& other);

  /// Elements <= limit, ascending, deduplicated.
  std::vector<uint64_t> Enumerate(uint64_t limit) const;

  /// "{1, 3, 5+4i}" style rendering.
  std::string ToString() const;

  const std::vector<uint64_t>& points() const { return points_; }
  const std::vector<std::pair<uint64_t, uint64_t>>& progressions() const {
    return progressions_;
  }

 private:
  std::vector<uint64_t> points_;
  std::vector<std::pair<uint64_t, uint64_t>> progressions_;  // (start, period)
};

}  // namespace relspec

#endif  // RELSPEC_TEMPORAL_PERIODIC_SET_H_
