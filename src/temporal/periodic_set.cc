#include "src/temporal/periodic_set.h"

#include <algorithm>
#include <set>

#include "src/base/str_util.h"

namespace relspec {

void PeriodicSet::AddPoint(uint64_t n) {
  if (!Contains(n)) points_.push_back(n);
}

void PeriodicSet::AddProgression(uint64_t start, uint64_t period) {
  if (period == 0) {
    AddPoint(start);
    return;
  }
  progressions_.emplace_back(start, period);
  // Drop points the new progression covers.
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [&](uint64_t p) {
                                 return p >= start && (p - start) % period == 0;
                               }),
                points_.end());
}

bool PeriodicSet::Contains(uint64_t n) const {
  for (uint64_t p : points_) {
    if (p == n) return true;
  }
  for (const auto& [start, period] : progressions_) {
    if (n >= start && (n - start) % period == 0) return true;
  }
  return false;
}

void PeriodicSet::UnionWith(const PeriodicSet& other) {
  for (uint64_t p : other.points_) AddPoint(p);
  for (const auto& [s, p] : other.progressions_) AddProgression(s, p);
}

std::vector<uint64_t> PeriodicSet::Enumerate(uint64_t limit) const {
  std::set<uint64_t> out;
  for (uint64_t p : points_) {
    if (p <= limit) out.insert(p);
  }
  for (const auto& [start, period] : progressions_) {
    for (uint64_t n = start; n <= limit; n += period) out.insert(n);
  }
  return std::vector<uint64_t>(out.begin(), out.end());
}

std::string PeriodicSet::ToString() const {
  std::vector<std::string> parts;
  std::vector<uint64_t> pts = points_;
  std::sort(pts.begin(), pts.end());
  for (uint64_t p : pts) parts.push_back(StrFormat("%llu", (unsigned long long)p));
  auto progs = progressions_;
  std::sort(progs.begin(), progs.end());
  for (const auto& [s, p] : progs) {
    parts.push_back(
        StrFormat("%llu+%llui", (unsigned long long)s, (unsigned long long)p));
  }
  return "{" + Join(parts, ", ") + "}";
}

}  // namespace relspec
