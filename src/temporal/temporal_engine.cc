#include "src/temporal/temporal_engine.h"

#include <unordered_map>

#include "src/ast/validate.h"
#include "src/base/failpoint.h"
#include "src/base/governor.h"
#include "src/base/str_util.h"
#include "src/core/mixed_to_pure.h"
#include "src/core/normalize.h"

namespace relspec {

const DynamicBitset& TemporalSpec::LabelAt(uint64_t n) const {
  if (n < prefix_.size()) return prefix_[n];
  uint64_t k = (n - prefix_.size()) % cycle_.size();
  return cycle_[k];
}

bool TemporalSpec::Holds(uint64_t n, PredId pred,
                         const std::vector<ConstId>& args) const {
  AtomIdx idx = ground_->FindAtom(SliceAtom{pred, args});
  if (idx == kInvalidId) return false;
  return LabelAt(n).Test(idx);
}

PeriodicSet TemporalSpec::AnswersFor(PredId pred,
                                     const std::vector<ConstId>& args) const {
  PeriodicSet out;
  AtomIdx idx = ground_->FindAtom(SliceAtom{pred, args});
  if (idx == kInvalidId) return out;
  for (size_t n = 0; n < prefix_.size(); ++n) {
    if (prefix_[n].Test(idx)) out.AddPoint(n);
  }
  for (size_t k = 0; k < cycle_.size(); ++k) {
    if (cycle_[k].Test(idx)) {
      out.AddProgression(prefix_.size() + k, cycle_.size());
    }
  }
  return out;
}

bool TemporalSpec::HoldsGlobal(PredId pred,
                               const std::vector<ConstId>& args) const {
  CtxIdx idx = ground_->FindGlobal(pred, args);
  return idx != kInvalidId && ctx_.Test(idx);
}

StatusOr<std::unique_ptr<TemporalEngine>> TemporalEngine::Build(Program program) {
  auto engine = std::unique_ptr<TemporalEngine>(new TemporalEngine());
  RELSPEC_RETURN_NOT_OK(ValidateProgram(program));
  engine->program_ = std::move(program);
  RELSPEC_ASSIGN_OR_RETURN(NormalizeStats nstats,
                           NormalizeProgram(&engine->program_));
  (void)nstats;
  RELSPEC_ASSIGN_OR_RETURN(MixedToPureStats pstats,
                           MixedToPure(&engine->program_));
  (void)pstats;
  RELSPEC_ASSIGN_OR_RETURN(GroundProgram ground, Ground(engine->program_));
  if (ground.num_symbols() > 1) {
    return Status::FailedPrecondition(
        "temporal engine requires a single function symbol (+1)");
  }
  for (const GroundRule& rule : ground.local_rules()) {
    if (!rule.body_child.empty()) {
      return Status::FailedPrecondition(
          "temporal engine handles the forward fragment only: a rule reads "
          "at position s+1 (this is what [CI88] could not handle in "
          "general; use the full engine)");
    }
  }
  engine->ground_ = std::make_unique<GroundProgram>(std::move(ground));
  return engine;
}

StatusOr<TemporalSpec> TemporalEngine::ComputeSpec(size_t max_states,
                                                   ResourceGovernor* governor) {
  const GroundProgram& ground = *ground_;
  const size_t num_atoms = ground.num_atoms();
  const int c = ground.trunk_depth();

  TemporalSpec spec;
  spec.ground_ = &ground;
  spec.ctx_ = DynamicBitset(ground.num_ctx());
  DynamicBitset& ctx = spec.ctx_;
  for (CtxIdx g : ground.global_facts()) ctx.Set(g);

  // Pinned facts by time position.
  std::vector<DynamicBitset> pinned(static_cast<size_t>(c) + 1,
                                    DynamicBitset(num_atoms));
  for (const auto& [path, atom] : ground.pinned_facts()) {
    pinned[static_cast<size_t>(path.depth())].Set(atom);
  }

  // Local closure at one position; returns ctx emissions via the shared ctx.
  auto close_position = [&](DynamicBitset* label, bool* ctx_changed) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const GroundRule& rule : ground.local_rules()) {
        if (rule.head_kind == GroundRule::HeadKind::kChild) continue;
        bool sat = true;
        for (AtomIdx a : rule.body_eps) sat = sat && label->Test(a);
        for (CtxIdx b : rule.body_ctx) sat = sat && ctx.Test(b);
        if (!sat) continue;
        if (rule.head_kind == GroundRule::HeadKind::kEps) {
          if (!label->Test(rule.head_id)) {
            label->Set(rule.head_id);
            changed = true;
          }
        } else if (!ctx.Test(rule.head_id)) {
          ctx.Set(rule.head_id);
          *ctx_changed = true;
        }
      }
    }
  };

  auto step = [&](const DynamicBitset& label) {
    DynamicBitset seed(num_atoms);
    for (const GroundRule& rule : ground.local_rules()) {
      if (rule.head_kind != GroundRule::HeadKind::kChild) continue;
      bool sat = true;
      for (AtomIdx a : rule.body_eps) sat = sat && label.Test(a);
      for (CtxIdx b : rule.body_ctx) sat = sat && ctx.Test(b);
      if (sat) seed.Set(rule.head_id);
    }
    return seed;
  };

  // Outer loop: recompute the chain whenever the context grows.
  while (true) {
    bool ctx_changed = false;

    // Global rules closure.
    bool gchanged = true;
    while (gchanged) {
      gchanged = false;
      for (const GroundRule& rule : ground.global_rules()) {
        if (ctx.Test(rule.head_id)) continue;
        bool sat = true;
        for (CtxIdx b : rule.body_ctx) sat = sat && ctx.Test(b);
        if (sat) {
          ctx.Set(rule.head_id);
          gchanged = true;
        }
      }
    }

    // Pinned context propositions into their positions.
    for (CtxIdx i = 0; i < ground.num_ctx(); ++i) {
      const CtxProp& prop = ground.ctx_prop(i);
      if (prop.kind == CtxProp::Kind::kPinned && ctx.Test(i)) {
        pinned[static_cast<size_t>(prop.path.depth())].Set(prop.atom);
      }
    }

    // Walk the chain, lasso-detecting from position c on.
    std::vector<DynamicBitset> labels;
    std::unordered_map<DynamicBitset, size_t, DynamicBitsetHash> seen;
    DynamicBitset current = pinned[0];
    size_t cycle_start = 0;
    bool found = false;
    for (size_t n = 0; !found; ++n) {
      if (n > max_states) {
        return Status::ResourceExhausted("temporal lasso exceeded max_states");
      }
      RELSPEC_FAILPOINT("temporal.step");
      if (governor != nullptr) {
        RELSPEC_RETURN_NOT_OK(governor->CheckNodes(n));
      }
      close_position(&current, &ctx_changed);
      // label -> ctx pinned sync.
      for (CtxIdx i = 0; i < ground.num_ctx(); ++i) {
        const CtxProp& prop = ground.ctx_prop(i);
        if (prop.kind == CtxProp::Kind::kPinned && !ctx.Test(i) &&
            static_cast<size_t>(prop.path.depth()) == n &&
            current.Test(prop.atom)) {
          ctx.Set(i);
          ctx_changed = true;
        }
      }
      if (n >= static_cast<size_t>(c)) {
        auto it = seen.find(current);
        if (it != seen.end()) {
          cycle_start = it->second;
          found = true;
          break;
        }
        seen.emplace(current, n);
      }
      labels.push_back(current);
      DynamicBitset next = step(current);
      if (n + 1 <= static_cast<size_t>(c)) next.UnionWith(pinned[n + 1]);
      current = std::move(next);
    }

    if (ctx_changed) continue;  // context grew: recompute the chain

    spec.prefix_.assign(labels.begin(),
                        labels.begin() + static_cast<long>(cycle_start));
    spec.cycle_.assign(labels.begin() + static_cast<long>(cycle_start),
                       labels.end());
    if (spec.cycle_.empty()) {
      // Degenerate (no function symbol): repeat the last state forever.
      spec.cycle_.push_back(labels.empty() ? DynamicBitset(num_atoms)
                                           : labels.back());
    }
    return spec;
  }
}

}  // namespace relspec
