#include "src/serve/slowlog.h"

#include <algorithm>

#include "src/base/str_util.h"
#include "src/serve/protocol.h"

namespace relspec {
namespace serve {

uint64_t SlowlogHash(std::string_view text) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (unsigned char c : text) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

SlowLog::SlowLog(const Options& options) : options_(options) {
  size_t cap = 8;
  while (cap < options_.capacity) cap <<= 1;
  mask_ = cap - 1;
  slots_ = std::make_unique<Slot[]>(cap);
}

void SlowLog::Pack(const SlowlogEntry& e, Slot* slot) {
  const uint64_t w[kWords] = {
      e.seq,
      e.trace_id,
      (static_cast<uint64_t>(e.type) << 32) | e.status,
      e.query_hash,
      e.total_ns,
      e.parse_ns,
      e.cache_ns,
      e.eval_ns,
      e.render_ns,
      e.write_ns,
      (static_cast<uint64_t>(e.cache_hit) << 1) | (e.sampled ? 1 : 0),
      static_cast<uint64_t>(e.headroom_ms),
      static_cast<uint64_t>(e.headroom_tuples),
  };
  for (size_t i = 0; i < kWords; ++i) {
    slot->words[i].store(w[i], std::memory_order_relaxed);
  }
}

SlowlogEntry SlowLog::Unpack(const Slot& slot) {
  uint64_t w[kWords];
  for (size_t i = 0; i < kWords; ++i) {
    w[i] = slot.words[i].load(std::memory_order_relaxed);
  }
  SlowlogEntry e;
  e.seq = w[0];
  e.trace_id = w[1];
  e.type = static_cast<uint32_t>(w[2] >> 32);
  e.status = static_cast<uint32_t>(w[2] & 0xffffffffu);
  e.query_hash = w[3];
  e.total_ns = w[4];
  e.parse_ns = w[5];
  e.cache_ns = w[6];
  e.eval_ns = w[7];
  e.render_ns = w[8];
  e.write_ns = w[9];
  e.cache_hit = static_cast<uint8_t>(w[10] >> 1);
  e.sampled = (w[10] & 1) != 0;
  e.headroom_ms = static_cast<int64_t>(w[11]);
  e.headroom_tuples = static_cast<int64_t>(w[12]);
  return e;
}

bool SlowLog::MaybeRecord(SlowlogEntry entry) {
  if (!enabled()) return false;
  const uint64_t n = observed_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t threshold_ns =
      static_cast<uint64_t>(options_.threshold_ms) * 1000000ULL;
  bool sampled = false;
  if (entry.total_ns < threshold_ns) {
    if (options_.sample_every == 0) return false;
    if (n % options_.sample_every != 0) return false;
    sampled = true;
  }
  entry.sampled = sampled;
  const uint64_t k = next_.fetch_add(1, std::memory_order_relaxed);
  entry.seq = k;
  Slot& slot = slots_[k & mask_];
  slot.seq.store(2 * k + 1, std::memory_order_release);
  Pack(entry, &slot);
  slot.seq.store(2 * k + 2, std::memory_order_release);
  return true;
}

std::vector<SlowlogEntry> SlowLog::Snapshot() const {
  std::vector<SlowlogEntry> out;
  if (!enabled()) return out;
  const size_t cap = mask_ + 1;
  out.reserve(std::min<uint64_t>(cap, recorded()));
  for (size_t i = 0; i < cap; ++i) {
    const Slot& slot = slots_[i];
    const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 == 0 || (s1 & 1) != 0) continue;  // empty or mid-write
    SlowlogEntry entry = Unpack(slot);
    const uint64_t s2 = slot.seq.load(std::memory_order_acquire);
    if (s1 != s2) continue;  // overwritten while copying
    out.push_back(entry);
  }
  std::sort(out.begin(), out.end(),
            [](const SlowlogEntry& a, const SlowlogEntry& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::string SlowLog::EntryJson(const SlowlogEntry& e) {
  std::string cache;
  switch (e.cache_hit) {
    case 0: cache = "miss"; break;
    case 1: cache = "hit"; break;
    default: cache = "none"; break;
  }
  return StrFormat(
      "{\"seq\":%llu,\"trace_id\":%llu,\"type\":\"%s\",\"status\":%u,"
      "\"query_hash\":\"%016llx\",\"total_ns\":%llu,\"parse_ns\":%llu,"
      "\"cache_ns\":%llu,\"eval_ns\":%llu,\"render_ns\":%llu,"
      "\"write_ns\":%llu,\"cache\":\"%s\",\"headroom_ms\":%lld,"
      "\"headroom_tuples\":%lld,\"sampled\":%s}",
      static_cast<unsigned long long>(e.seq),
      static_cast<unsigned long long>(e.trace_id),
      RequestTypeName(static_cast<RequestType>(e.type)), e.status,
      static_cast<unsigned long long>(e.query_hash),
      static_cast<unsigned long long>(e.total_ns),
      static_cast<unsigned long long>(e.parse_ns),
      static_cast<unsigned long long>(e.cache_ns),
      static_cast<unsigned long long>(e.eval_ns),
      static_cast<unsigned long long>(e.render_ns),
      static_cast<unsigned long long>(e.write_ns), cache.c_str(),
      static_cast<long long>(e.headroom_ms),
      static_cast<long long>(e.headroom_tuples),
      e.sampled ? "true" : "false");
}

std::string SlowLog::DumpJsonl() const {
  std::string out;
  for (const SlowlogEntry& entry : Snapshot()) {
    out += EntryJson(entry);
    out += "\n";
  }
  return out;
}

}  // namespace serve
}  // namespace relspec
