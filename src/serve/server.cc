#include "src/serve/server.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <optional>
#include <utility>

#include "src/base/logging.h"
#include "src/base/metrics.h"
#include "src/base/str_util.h"
#include "src/base/trace.h"
#include "src/core/mixed_to_pure.h"
#include "src/parser/parser.h"

namespace relspec {
namespace serve {

namespace {

Status Errno(const char* what) {
  return Status::Internal(StrFormat("%s: %s", what, strerror(errno)));
}

uint64_t ElapsedNs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

/// Marks a trace ID as server-assigned (the client sent request_id 0).
constexpr uint64_t kServerTraceIdBit = 1ULL << 63;

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

}  // namespace

/// One accepted connection. The poll loop owns the struct; the atomics are
/// the only fields a request task touches after dispatch.
struct Server::Conn {
  int fd = -1;
  std::string inbuf;
  /// True while a request task for this connection is in flight; the loop
  /// neither polls nor reads the fd until the task clears it.
  std::atomic<bool> busy{false};
  /// Set by a task that answered a malformed frame: close once idle.
  std::atomic<bool> close_after_reply{false};
  /// Peer closed or write failed — reap once idle.
  bool dead = false;
  /// Drain bookkeeping: this connection already got its final read pass.
  bool drained = false;

  ~Conn() {
    if (fd >= 0) close(fd);
  }
};

Server::Server(std::unique_ptr<FunctionalDatabase> db, GraphSpecification spec,
               const ServerOptions& options)
    : options_(options),
      db_(std::move(db)),
      spec_(std::move(spec)),
      cache_(options.cache),
      pool_(std::make_unique<TaskPool>(std::max(1, options.threads))),
      slowlog_(options.slowlog) {}

StatusOr<std::unique_ptr<Server>> Server::Create(
    std::unique_ptr<FunctionalDatabase> db, const ServerOptions& options) {
  if (db == nullptr) return Status::InvalidArgument("null database");
  RELSPEC_ASSIGN_OR_RETURN(GraphSpecification spec, db->BuildGraphSpec());
  uint64_t fp = db->Fingerprint();  // materialize before concurrent readers
  std::unique_ptr<Server> server(
      new Server(std::move(db), std::move(spec), options));
  server->fingerprint_ = fp;
  RELSPEC_RETURN_NOT_OK(server->Listen());
  return server;
}

StatusOr<std::unique_ptr<Server>> Server::CreateSpecOnly(
    GraphSpecification spec, const ServerOptions& options) {
  std::unique_ptr<Server> server(
      new Server(nullptr, std::move(spec), options));
  RELSPEC_RETURN_NOT_OK(server->Listen());
  return server;
}

Server::~Server() {
  // Drain before the pool dies: Submit tasks still queued would be dropped.
  while (in_flight_.load() > 0) usleep(1000);
  pool_.reset();
  conns_.clear();
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_r_ >= 0) close(wake_r_);
  int w = wake_w_.exchange(-1);
  if (w >= 0) close(w);
  if (!options_.unix_path.empty()) unlink(options_.unix_path.c_str());
}

Status Server::Listen() {
  if (options_.unix_path.empty() == (options_.tcp_port < 0)) {
    return Status::InvalidArgument(
        "exactly one of unix_path / tcp_port must be set");
  }
  int pipefd[2];
  if (pipe(pipefd) != 0) return Errno("pipe");
  wake_r_ = pipefd[0];
  wake_w_.store(pipefd[1]);
  RELSPEC_RETURN_NOT_OK(SetNonBlocking(wake_r_));

  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument(
          StrFormat("unix socket path too long (%zu bytes, max %zu)",
                    options_.unix_path.size(), sizeof(addr.sun_path) - 1));
    }
    memcpy(addr.sun_path, options_.unix_path.c_str(),
           options_.unix_path.size() + 1);
    listen_fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Errno("socket(AF_UNIX)");
    unlink(options_.unix_path.c_str());  // stale path from a crashed run
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return Errno("bind(unix)");
    }
  } else {
    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Errno("socket(AF_INET)");
    int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return Errno("bind(tcp)");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      return Errno("getsockname");
    }
    bound_port_ = ntohs(bound.sin_port);
  }
  if (listen(listen_fd_, 64) != 0) return Errno("listen");
  RELSPEC_RETURN_NOT_OK(SetNonBlocking(listen_fd_));
  return Status::OK();
}

void Server::RequestShutdown() {
  shutdown_.store(true, std::memory_order_release);
  Wake();
}

void Server::Wake() {
  int w = wake_w_.load(std::memory_order_acquire);
  if (w >= 0) {
    char b = 'w';
    // Best-effort: a full pipe already guarantees a pending wake-up.
    [[maybe_unused]] ssize_t n = write(w, &b, 1);
  }
}

void Server::AcceptAll() {
  while (true) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient error: back to poll
    }
    if (!SetNonBlocking(fd).ok()) {
      close(fd);
      continue;
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conns_.push_back(std::move(conn));
    RELSPEC_COUNTER("serve.accepts");
  }
}

bool Server::ReadAvailable(Conn* conn) {
  char buf[4096];
  while (true) {
    ssize_t n = read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->inbuf.append(buf, static_cast<size_t>(n));
      // A peer streaming an over-long frame gets cut off here; the frame
      // prefix check below rejects it as soon as 16 bytes are in anyway.
      if (conn->inbuf.size() > kRequestHeaderSize + kMaxPayload) return false;
      continue;
    }
    if (n == 0) return false;  // EOF
    if (errno == EINTR) continue;
    return errno == EAGAIN || errno == EWOULDBLOCK;
  }
}

void Server::MaybeDispatch(Conn* conn) {
  if (conn->busy.load(std::memory_order_acquire) || conn->dead ||
      conn->close_after_reply.load(std::memory_order_acquire)) {
    return;
  }
  StatusOr<size_t> size = RequestFrameSize(conn->inbuf);
  if (!size.ok()) {
    // Malformed prefix: answer with a structured error, then hang up — the
    // stream offset is unrecoverable once framing is broken.
    ResponseHeader resp;
    resp.status = static_cast<uint32_t>(size.status().code());
    WriteAll(conn->fd, EncodeResponse(resp, size.status().message()));
    RELSPEC_COUNTER("serve.malformed");
    conn->dead = true;
    return;
  }
  if (*size == 0 || conn->inbuf.size() < *size) return;  // incomplete
  std::string frame = conn->inbuf.substr(0, *size);
  conn->inbuf.erase(0, *size);
  conn->busy.store(true, std::memory_order_release);
  in_flight_.fetch_add(1);
  pool_->Submit([this, conn, frame = std::move(frame)]() mutable {
    ExecuteFrame(conn, std::move(frame));
  });
}

void Server::ExecuteFrame(Conn* conn, std::string frame) {
  const auto start = std::chrono::steady_clock::now();
  RequestHeader req;
  std::string_view payload;
  Status decoded = DecodeRequest(frame, &req, &payload);
  // Trace-context assignment: the client's request_id IS the trace ID when
  // nonzero; otherwise the server mints one (high bit marks it assigned).
  // Echoed in the reply header either way, stamped on the request span and
  // the per-request governor, and carried by the slow-log entry — one ID
  // correlates the wire, the timeline, and the audit log.
  const uint64_t trace_id =
      req.request_id != 0
          ? req.request_id
          : (kServerTraceIdBit |
             next_trace_id_.fetch_add(1, std::memory_order_relaxed));
  RELSPEC_TRACE_SPAN1("serve", "request", "trace_id", trace_id);
  SlowlogEntry entry;
  entry.trace_id = trace_id;
  entry.type = static_cast<uint32_t>(req.type);
  Status status = Status::OK();
  std::string out;
  if (!decoded.ok()) {
    status = decoded;
    ResponseHeader resp;
    resp.status = static_cast<uint32_t>(decoded.code());
    // Echo whatever id the decoder salvaged (0 when the prefix itself was
    // broken) — a minted trace ID is a service for well-formed requests,
    // not a promise a hostile frame can rely on. The slow-log entry still
    // carries the minted id so the rejection is auditable.
    resp.request_id = req.request_id;
    out = EncodeResponse(resp, decoded.message());
    conn->close_after_reply.store(true, std::memory_order_release);
    RELSPEC_COUNTER("serve.malformed");
  } else {
    entry.query_hash = SlowlogHash(payload);
    std::string body = Handle(req, payload, trace_id, &status, &entry);
    ResponseHeader resp;
    resp.status = static_cast<uint32_t>(status.code());
    resp.request_id = trace_id;
    out = EncodeResponse(resp, status.ok() ? std::string_view(body)
                                           : std::string_view(status.message()));
    if (!status.ok()) {
      RELSPEC_COUNTER("serve.errors");
      if (status.IsResourceBreach()) RELSPEC_COUNTER("serve.breaches");
    }
  }
  const auto write_start = std::chrono::steady_clock::now();
  if (!WriteAll(conn->fd, out)) conn->close_after_reply.store(true);
  entry.write_ns = ElapsedNs(write_start);
  entry.total_ns = ElapsedNs(start);
  entry.status = static_cast<uint32_t>(status.code());
  rates_.Tick(UptimeSec(), !status.ok());
  RELSPEC_HISTOGRAM("serve.request_ns", entry.total_ns);
  slowlog_.MaybeRecord(entry);
  served_.fetch_add(1);
  conn->busy.store(false, std::memory_order_release);
  in_flight_.fetch_sub(1);
  Wake();  // the loop re-arms the connection (or reaps it)
}

std::string Server::Handle(const RequestHeader& req, std::string_view payload,
                           uint64_t trace_id, Status* out,
                           SlowlogEntry* entry) {
  // Per-request admission control: the request header's budgets, falling
  // back to the server-wide defaults. A breach becomes an error reply
  // carrying the governor's sticky status — never a process exit.
  GovernorLimits limits = options_.default_limits;
  if (req.deadline_ms > 0) limits.deadline_ms = static_cast<int64_t>(req.deadline_ms);
  if (req.max_tuples > 0) limits.max_tuples = req.max_tuples;
  std::optional<ResourceGovernor> governor;
  if (limits.deadline_ms > 0 || limits.max_tuples > 0) {
    governor.emplace(limits);
    governor->set_trace_id(trace_id);
  }
  std::string body =
      HandleRequest(req, payload, governor ? &*governor : nullptr, out, entry);
  if (governor) {
    // Governor headroom at completion: what was left of the budgets when
    // the request finished (negative = how far past them it ran).
    if (limits.deadline_ms > 0) {
      entry->headroom_ms = limits.deadline_ms - governor->elapsed_ms();
    }
    if (limits.max_tuples > 0) {
      entry->headroom_tuples =
          static_cast<int64_t>(limits.max_tuples) -
          static_cast<int64_t>(governor->peak_tuples());
    }
  }
  return body;
}

std::string Server::HandleRequest(const RequestHeader& req,
                                  std::string_view payload,
                                  ResourceGovernor* governor, Status* out,
                                  SlowlogEntry* entry) {
  *out = Status::OK();
  switch (req.type) {
    case RequestType::kPing: {
      std::shared_lock<std::shared_mutex> lock(state_mu_);
      std::string body;
      body.resize(8);
      uint64_t fp = fingerprint_;
      for (int i = 0; i < 8; ++i) {
        body[static_cast<size_t>(i)] = static_cast<char>((fp >> (8 * i)) & 0xff);
      }
      return body;
    }
    case RequestType::kMembership: {
      std::shared_lock<std::shared_mutex> lock(state_mu_);
      // The CLI's spec-only pattern: parse against a scratch program holding
      // a copy of the spec's symbols, so shared state is never mutated.
      const auto parse_start = std::chrono::steady_clock::now();
      Program scratch;
      scratch.symbols = spec_.symbols();
      auto q = ParseQuery("? " + std::string(payload) + ".", &scratch);
      if (!q.ok()) {
        *out = q.status();
        return "";
      }
      if (q->atoms.size() != 1 || !q->atoms[0].IsGround() ||
          !q->atoms[0].fterm.has_value()) {
        *out = Status::InvalidArgument(
            "membership wants one ground functional fact, e.g. "
            "\"OnCall(m0+1, m1)\"");
        return "";
      }
      auto purified = PurifyGroundTerm(*q->atoms[0].fterm, &scratch.symbols);
      if (!purified.ok()) {
        *out = purified.status();
        return "";
      }
      entry->parse_ns = ElapsedNs(parse_start);
      const auto eval_start = std::chrono::steady_clock::now();
      std::vector<FuncId> syms;
      for (const FuncApply& a : purified->apps) syms.push_back(a.fn);
      std::vector<ConstId> args;
      for (const NfArg& a : q->atoms[0].args) args.push_back(a.id);
      bool holds = spec_.Holds(Path(std::move(syms)), q->atoms[0].pred, args);
      entry->eval_ns = ElapsedNs(eval_start);
      return std::string(1, holds ? '\1' : '\0');
    }
    case RequestType::kQuery: {
      if (db_ == nullptr) {
        *out = Status::FailedPrecondition(
            "spec-only server (no rules): query needs a program, not just a "
            "snapshot");
        return "";
      }
      // Exclusive: ParseQuery interns into the engine's shared symbol table
      // and the engine API is single-coordinator by design.
      std::unique_lock<std::shared_mutex> lock(state_mu_);
      const auto parse_start = std::chrono::steady_clock::now();
      auto query = ParseQuery(std::string(payload), db_->mutable_program());
      if (!query.ok()) {
        *out = query.status();
        return "";
      }
      entry->parse_ns = ElapsedNs(parse_start);
      const auto answer_start = std::chrono::steady_clock::now();
      bool cache_hit = false;
      auto answer =
          AnswerQueryCached(db_.get(), *query, &cache_, governor, &cache_hit);
      // The answer time is the cache phase on a hit (a map lookup) and the
      // eval phase on a miss (the full answer pipeline).
      const uint64_t answer_ns = ElapsedNs(answer_start);
      entry->cache_hit = cache_hit ? 1 : 0;
      (cache_hit ? entry->cache_ns : entry->eval_ns) = answer_ns;
      if (!answer.ok()) {
        *out = answer.status();
        return "";
      }
      const auto render_start = std::chrono::steady_clock::now();
      QueryResult result;
      result.spec_tuples = (*answer)->NumSpecTuples();
      result.functional = (*answer)->has_functional_answer();
      result.text = RenderAnswerText(
          **answer, options_.reply_timing
                        ? static_cast<int64_t>(ElapsedNs(parse_start))
                        : -1);
      std::string body = EncodeQueryResult(result);
      entry->render_ns = ElapsedNs(render_start);
      return body;
    }
    case RequestType::kUpdate: {
      if (db_ == nullptr) {
        *out = Status::FailedPrecondition(
            "spec-only server (no rules): updates need a program, not just a "
            "snapshot");
        return "";
      }
      std::unique_lock<std::shared_mutex> lock(state_mu_);
      // Updates run ungoverned: a breach mid-repair would leave the engine
      // in an unspecified state (docs/INCREMENTAL.md). Through the WAL when
      // durable, so an OK ack means applied *and* logged.
      const auto eval_start = std::chrono::steady_clock::now();
      StatusOr<DeltaStats> stats =
          db_->durable() ? db_->LogAndApplyDeltas(payload)
                         : db_->ApplyDeltaText(payload);
      if (!stats.ok()) {
        *out = stats.status();
        return "";
      }
      if (stats->inserted > 0 || stats->deleted > 0 || stats->rebuilt) {
        auto spec = db_->BuildGraphSpec();
        if (!spec.ok()) {
          *out = Status::Internal(
              "update applied but spec rebuild failed: " +
              spec.status().message());
          return "";
        }
        spec_ = *std::move(spec);
      }
      fingerprint_ = db_->Fingerprint();  // re-materialize for shared readers
      entry->eval_ns = ElapsedNs(eval_start);
      UpdateResult result;
      result.fingerprint = fingerprint_;
      result.inserted = stats->inserted;
      result.deleted = stats->deleted;
      result.noops = stats->noops;
      result.deleted_bits = stats->deleted_bits;
      result.rebuilt = stats->rebuilt;
      result.durable = db_->durable();
      return EncodeUpdateResult(result);
    }
    case RequestType::kStats: {
      RefreshLiveGauges();
      std::shared_lock<std::shared_mutex> lock(state_mu_);
      const auto eval_start = std::chrono::steady_clock::now();
      MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
      std::string body;
      if (payload == "prometheus") {
        body = snap.ToPrometheusText();
      } else if (payload.empty()) {
        body = snap.ToJson();
      } else {
        *out = Status::InvalidArgument(
            "unknown stats format (want an empty payload for JSON or "
            "\"prometheus\")");
        return "";
      }
      entry->eval_ns = ElapsedNs(eval_start);
      return body;
    }
    case RequestType::kTraceDump: {
      if (!EventTraceEnabled()) {
        *out = Status::FailedPrecondition(
            "event tracing is off: start relspecd with --trace-out FILE");
        return "";
      }
      std::shared_lock<std::shared_mutex> lock(state_mu_);
      const auto eval_start = std::chrono::steady_clock::now();
      std::string body = Tracer::Global().ExportChromeJson();
      entry->eval_ns = ElapsedNs(eval_start);
      return body;
    }
    case RequestType::kSlowlogDump: {
      if (!slowlog_.enabled()) {
        *out = Status::FailedPrecondition(
            "slow log is off: start relspecd with --slowlog-ms N");
        return "";
      }
      // The ring is lock-free; no engine lock needed. The dump cannot
      // contain its own request — this entry is recorded after the reply.
      const auto eval_start = std::chrono::steady_clock::now();
      std::string body = slowlog_.DumpJsonl();
      entry->eval_ns = ElapsedNs(eval_start);
      return body;
    }
    case RequestType::kHealth: {
      RefreshLiveGauges();
      std::shared_lock<std::shared_mutex> lock(state_mu_);
      HealthResult health;
      health.live = true;
      health.ready = true;  // the listener answered and the engine is built
      health.fingerprint = fingerprint_;
      health.uptime_ms = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - start_time_)
              .count());
      health.wal_seq =
          (db_ != nullptr && db_->wal() != nullptr) ? db_->wal()->next_seq()
                                                    : 0;
      health.served = served_.load(std::memory_order_relaxed);
      return EncodeHealthResult(health);
    }
  }
  *out = Status::InvalidArgument("unknown request type");
  return "";
}

uint64_t Server::UptimeSec() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now() - start_time_)
          .count());
}

void Server::RateWindow::Tick(uint64_t now_sec, bool error) {
  const size_t slot = now_sec % kSlots;
  const uint64_t want = now_sec + 1;  // 0 marks a never-used slot
  uint64_t have = stamp[slot].load(std::memory_order_relaxed);
  if (have != want &&
      stamp[slot].compare_exchange_strong(have, want,
                                          std::memory_order_relaxed)) {
    requests[slot].store(0, std::memory_order_relaxed);
    errors[slot].store(0, std::memory_order_relaxed);
  }
  requests[slot].fetch_add(1, std::memory_order_relaxed);
  if (error) errors[slot].fetch_add(1, std::memory_order_relaxed);
}

void Server::RateWindow::Sum60(uint64_t now_sec, uint64_t* reqs,
                               uint64_t* errs) const {
  *reqs = 0;
  *errs = 0;
  for (int i = 0; i < kSlots; ++i) {
    const uint64_t have = stamp[i].load(std::memory_order_relaxed);
    if (have == 0) continue;
    const uint64_t sec = have - 1;
    if (sec > now_sec || now_sec - sec >= 60) continue;
    *reqs += requests[i].load(std::memory_order_relaxed);
    *errs += errors[i].load(std::memory_order_relaxed);
  }
}

void Server::RefreshLiveGauges() {
  RELSPEC_GAUGE_SET("cache.entries", static_cast<int64_t>(cache_.size()));
  RELSPEC_GAUGE_SET("cache.bytes", static_cast<int64_t>(cache_.bytes()));
  RELSPEC_GAUGE_SET("trace.dropped",
                    static_cast<int64_t>(Tracer::Global().dropped()));
  RELSPEC_GAUGE_SET(
      "serve.uptime_ms",
      static_cast<int64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - start_time_)
              .count()));
  const uint64_t now_sec = UptimeSec();
  uint64_t reqs = 0, errs = 0;
  rates_.Sum60(now_sec, &reqs, &errs);
  // The effective window is shorter than a minute while the daemon warms
  // up; divide by the real window so early readings aren't diluted.
  const uint64_t window = std::max<uint64_t>(1, std::min<uint64_t>(60, now_sec + 1));
  RELSPEC_GAUGE_SET("serve.qps_1m", static_cast<int64_t>(reqs / window));
  // Errors per 10,000 requests over the window (basis points): an integer
  // gauge that still resolves sub-percent error rates.
  RELSPEC_GAUGE_SET(
      "serve.error_rate_1m",
      reqs == 0 ? 0 : static_cast<int64_t>(errs * 10000 / reqs));
}

bool Server::WriteAll(int fd, std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: a peer that hung up mid-reply yields EPIPE here, not a
    // process-killing SIGPIPE (the daemon must outlive any one client).
    ssize_t n =
        send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Nonblocking fd with a full socket buffer: wait for drainage. A
      // worker parking here is acceptable — slow clients get backpressure.
      pollfd p{fd, POLLOUT, 0};
      poll(&p, 1, 1000);
      continue;
    }
    return false;
  }
  return true;
}

Status Server::Serve() {
  RELSPEC_TRACE_SPAN("serve", "loop");
  bool listener_open = true;
  std::vector<pollfd> fds;
  std::vector<Conn*> polled;
  while (true) {
    bool draining = shutdown_.load(std::memory_order_acquire);
    if (draining && listener_open) {
      // Stop accepting; existing connections get one final harvest pass
      // below (frames already in their socket buffers are still served).
      close(listen_fd_);
      listen_fd_ = -1;
      listener_open = false;
    }

    // Reap and dispatch.
    for (auto it = conns_.begin(); it != conns_.end();) {
      Conn* conn = it->get();
      if (!conn->busy.load(std::memory_order_acquire) &&
          (conn->dead || conn->close_after_reply.load())) {
        it = conns_.erase(it);
        continue;
      }
      if (draining && !conn->drained &&
          !conn->busy.load(std::memory_order_acquire)) {
        conn->drained = true;
        if (!ReadAvailable(conn)) conn->dead = true;
      }
      MaybeDispatch(conn);
      if (draining && !conn->busy.load(std::memory_order_acquire) &&
          !conn->dead && conn->drained) {
        // Drained, idle, and nothing dispatchable left: we're done with it.
        StatusOr<size_t> size = RequestFrameSize(conn->inbuf);
        if (!size.ok() || *size == 0 || conn->inbuf.size() < *size) {
          conn->dead = true;
        }
      }
      ++it;
    }
    // Re-run the reap after drain marking (avoids one extra poll round).
    if (draining) {
      conns_.erase(
          std::remove_if(conns_.begin(), conns_.end(),
                         [](const std::unique_ptr<Conn>& c) {
                           return !c->busy.load() &&
                                  (c->dead || c->close_after_reply.load());
                         }),
          conns_.end());
      if (conns_.empty() && in_flight_.load() == 0) break;
    }

    fds.clear();
    polled.clear();
    fds.push_back(pollfd{wake_r_, POLLIN, 0});
    if (listener_open) fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (auto& conn : conns_) {
      if (!conn->busy.load(std::memory_order_acquire) && !conn->dead) {
        fds.push_back(pollfd{conn->fd, POLLIN, 0});
        polled.push_back(conn.get());
      }
    }
    int rc = poll(fds.data(), static_cast<nfds_t>(fds.size()), 500);
    if (rc < 0 && errno != EINTR) return Errno("poll");

    // Drain the wake pipe.
    if (fds[0].revents & POLLIN) {
      char buf[64];
      while (read(wake_r_, buf, sizeof(buf)) > 0) {
      }
    }
    size_t base = 1;
    if (listener_open) {
      if (fds[1].revents & POLLIN) AcceptAll();
      base = 2;
    }
    for (size_t i = 0; i < polled.size(); ++i) {
      short revents = fds[base + i].revents;
      if (revents & (POLLIN | POLLHUP | POLLERR)) {
        if (!ReadAvailable(polled[i])) {
          // EOF: serve whatever complete frames are already buffered, then
          // let the reap pass close it.
          polled[i]->dead = polled[i]->inbuf.empty() ||
                            polled[i]->busy.load(std::memory_order_acquire);
          if (!polled[i]->dead) {
            MaybeDispatch(polled[i]);
            if (!polled[i]->busy.load(std::memory_order_acquire)) {
              polled[i]->dead = true;
            }
          }
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace serve
}  // namespace relspec
