// RSRV — the relspecd wire protocol (docs/DAEMON.md).
//
// Length-prefixed binary frames over a byte stream (Unix-domain or TCP
// socket), little-endian throughout. Requests flow client -> server,
// responses server -> client; each side therefore knows which frame kind to
// expect and the two kinds share the magic/version/length prefix so one
// incremental reassembler serves both.
//
//   Request frame (header = 40 bytes):
//     off  0  u8[4]  magic "RSRV"
//     off  4  u32    protocol version (currently 1)
//     off  8  u32    request type (RequestType)
//     off 12  u32    payload length (<= kMaxPayload)
//     off 16  u64    request id (echoed verbatim in the response)
//     off 24  u64    deadline_ms  (0 = no per-request deadline)
//     off 32  u64    max_tuples   (0 = no per-request tuple budget)
//     off 40  u8[payload length]  payload
//
//   Response frame (header = 24 bytes):
//     off  0  u8[4]  magic "RSRV"
//     off  4  u32    protocol version (currently 1)
//     off  8  u32    status (StatusCode numeric; 0 = OK)
//     off 12  u32    payload length (<= kMaxPayload)
//     off 16  u64    request id (copied from the request; 0 when the
//                    request header itself was unreadable)
//     off 24  u8[payload length]  payload (result on OK, the status
//                    message text on error)
//
// Decoding is pure and total: malformed bytes yield a Status, never UB —
// the decoders are routed through tests/fuzz_parser.cc like the RSNP/RWAL
// decoders. The deadline/tuple budgets in the request header become a
// per-request ResourceGovernor server-side; a breach is reported through
// the response status (kResourceExhausted / kDeadlineExceeded /
// kCancelled — the CLI's exit-7 taxonomy), never by killing the daemon.

#ifndef RELSPEC_SERVE_PROTOCOL_H_
#define RELSPEC_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/base/status.h"
#include "src/core/query.h"

namespace relspec {
namespace serve {

inline constexpr char kMagic[4] = {'R', 'S', 'R', 'V'};
inline constexpr uint32_t kProtocolVersion = 1;
inline constexpr size_t kRequestHeaderSize = 40;
inline constexpr size_t kResponseHeaderSize = 24;
/// Hard ceiling on a single frame's payload; a larger advertised length is
/// rejected before any buffering happens (forged-length defense).
inline constexpr uint32_t kMaxPayload = 1u << 20;

enum class RequestType : uint32_t {
  kPing = 0,        // payload: none      -> u64 engine fingerprint
  kMembership = 1,  // payload: fact text -> u8 0/1
  kQuery = 2,       // payload: query text -> QueryResult
  kUpdate = 3,      // payload: delta text -> UpdateResult
  kStats = 4,       // payload: none or "prometheus" -> metrics text
  kTraceDump = 5,   // payload: none      -> Chrome trace JSON text
  kSlowlogDump = 6,  // payload: none     -> slow-log JSONL text
  kHealth = 7,       // payload: none     -> HealthResult
};
inline constexpr uint32_t kMaxRequestType =
    static_cast<uint32_t>(RequestType::kHealth);

const char* RequestTypeName(RequestType type);

struct RequestHeader {
  uint32_t version = kProtocolVersion;
  RequestType type = RequestType::kPing;
  uint64_t request_id = 0;
  uint64_t deadline_ms = 0;  // 0 = ungoverned (server default applies)
  uint64_t max_tuples = 0;   // 0 = unbounded (server default applies)
};

struct ResponseHeader {
  uint32_t version = kProtocolVersion;
  uint32_t status = 0;  // StatusCode numeric
  uint64_t request_id = 0;
};

/// Serializes a complete frame (header + payload).
std::string EncodeRequest(const RequestHeader& header,
                          std::string_view payload);
std::string EncodeResponse(const ResponseHeader& header,
                           std::string_view payload);

/// Incremental stream reassembly: the total size of the frame at the head
/// of `buffer`, or 0 if more bytes are needed to tell. Validates the
/// magic/version/length prefix as soon as 16 bytes are present, so a
/// malformed or forged-length frame is rejected without waiting for (or
/// allocating) its advertised payload.
StatusOr<size_t> RequestFrameSize(std::string_view buffer);
StatusOr<size_t> ResponseFrameSize(std::string_view buffer);

/// Decodes one complete frame. `frame` must be exactly the frame's bytes —
/// a size disagreeing with the advertised payload length is rejected
/// (truncated or forged length). On success `*payload` views into `frame`.
Status DecodeRequest(std::string_view frame, RequestHeader* header,
                     std::string_view* payload);
Status DecodeResponse(std::string_view frame, ResponseHeader* header,
                      std::string_view* payload);

// ---------------------------------------------------------------------------
// Typed payloads
// ---------------------------------------------------------------------------

/// kQuery response payload: u64 spec_tuples | u8 functional |
/// u32 text_len | text.
struct QueryResult {
  uint64_t spec_tuples = 0;
  bool functional = false;
  std::string text;  // RenderAnswerText of the answer
};
std::string EncodeQueryResult(const QueryResult& result);
StatusOr<QueryResult> DecodeQueryResult(std::string_view payload);

/// kUpdate response payload: u64 fingerprint | u64 inserted | u64 deleted |
/// u64 noops | u64 deleted_bits | u8 rebuilt | u8 durable. `durable` means
/// the batch went through LogAndApplyDeltas: the ack implies the update
/// survives a crash under the server's fsync policy.
struct UpdateResult {
  uint64_t fingerprint = 0;
  uint64_t inserted = 0;
  uint64_t deleted = 0;
  uint64_t noops = 0;
  uint64_t deleted_bits = 0;
  bool rebuilt = false;
  bool durable = false;
};
std::string EncodeUpdateResult(const UpdateResult& result);
StatusOr<UpdateResult> DecodeUpdateResult(std::string_view payload);

/// kHealth response payload: u8 ready | u8 live | u64 fingerprint |
/// u64 uptime_ms | u64 wal_seq | u64 served (exactly 34 bytes).
/// `live` is 1 whenever the daemon answered at all; `ready` is 1 once the
/// engine is built and the listener accepts work. `wal_seq` is the sequence
/// number the next durably logged batch will use (0 when the engine is not
/// durable); it advances per acked update and restarts after a checkpoint
/// rotation, so a change signals WAL-generation movement. See
/// docs/OPERATIONS.md for the health semantics table.
struct HealthResult {
  bool ready = false;
  bool live = false;
  uint64_t fingerprint = 0;
  uint64_t uptime_ms = 0;
  uint64_t wal_seq = 0;
  uint64_t served = 0;
};
std::string EncodeHealthResult(const HealthResult& result);
StatusOr<HealthResult> DecodeHealthResult(std::string_view payload);

/// The canonical text rendering of a query answer used on the wire: the
/// answer's ToString() followed by a bounded deterministic enumeration
/// (depth <= 3, at most 32 concrete answers, one per "  "-indented line).
/// Exported so the conformance tests can assert byte-identity between a
/// daemon reply and an in-process AnswerQueryCached answer.
///
/// `elapsed_ns >= 0` appends one trailing "  -- elapsed N ns\n" summary
/// line (the daemon's `--reply-timing` flag); the default -1 renders the
/// canonical byte-stable text, keeping the golden vectors and the
/// daemon-vs-in-process identity contract valid.
std::string RenderAnswerText(const QueryAnswer& answer,
                             int64_t elapsed_ns = -1);

}  // namespace serve
}  // namespace relspec

#endif  // RELSPEC_SERVE_PROTOCOL_H_
