#include "src/serve/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>

#include "src/base/str_util.h"

namespace relspec {
namespace serve {

namespace {

Status Errno(const char* what) {
  return Status::Internal(StrFormat("%s: %s", what, strerror(errno)));
}

Status FromWire(uint32_t code, const std::string& message) {
  auto status_code = static_cast<StatusCode>(code);
  switch (status_code) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kAlreadyExists:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kOutOfRange:
    case StatusCode::kUnimplemented:
    case StatusCode::kInternal:
    case StatusCode::kResourceExhausted:
    case StatusCode::kCancelled:
    case StatusCode::kDeadlineExceeded:
      return Status(status_code, message);
  }
  return Status::Internal(
      StrFormat("server replied with unknown status code %u: %s", code,
                message.c_str()));
}

/// Connection counter backing per-client request-id uniqueness: client k
/// starts its ids at (k << 32) + 1, so ids from distinct clients in one
/// process never collide (and are never 0 — id 0 asks the server to
/// assign a trace ID).
std::atomic<uint64_t> g_client_seq{0};

}  // namespace

ServeClient::ServeClient(int fd)
    : fd_(fd),
      next_id_((g_client_seq.fetch_add(1, std::memory_order_relaxed) << 32) +
               1) {}

Status ServeClient::Reply::ToStatus() const {
  return FromWire(status_code, payload);
}

StatusOr<std::unique_ptr<ServeClient>> ServeClient::ConnectUnix(
    const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long");
  }
  memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_UNIX)");
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status err = Errno(StrFormat("connect(%s)", path.c_str()).c_str());
    close(fd);
    return err;
  }
  return std::unique_ptr<ServeClient>(new ServeClient(fd));
}

StatusOr<std::unique_ptr<ServeClient>> ServeClient::ConnectTcp(
    const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        StrFormat("bad IPv4 address: %s", host.c_str()));
  }
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_INET)");
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status err = Errno(StrFormat("connect(%s:%d)", host.c_str(), port).c_str());
    close(fd);
    return err;
  }
  return std::unique_ptr<ServeClient>(new ServeClient(fd));
}

StatusOr<std::unique_ptr<ServeClient>> ServeClient::Connect(
    const std::string& address) {
  size_t colon = address.rfind(':');
  if (colon != std::string::npos &&
      address.find('/') == std::string::npos) {
    int port = atoi(address.c_str() + colon + 1);
    if (port <= 0 || port > 65535) {
      return Status::InvalidArgument(
          StrFormat("bad port in address: %s", address.c_str()));
    }
    return ConnectTcp(address.substr(0, colon), port);
  }
  return ConnectUnix(address);
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) close(fd_);
}

Status ServeClient::SendRaw(std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: a server that died mid-conversation surfaces as an EPIPE
    // Status, not a SIGPIPE that kills the client process (the chaos tests
    // SIGKILL servers on purpose).
    ssize_t n =
        send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("write");
  }
  return Status::OK();
}

StatusOr<ServeClient::Reply> ServeClient::ReadReply() {
  while (true) {
    RELSPEC_ASSIGN_OR_RETURN(size_t size, ResponseFrameSize(inbuf_));
    if (size > 0 && inbuf_.size() >= size) {
      ResponseHeader header;
      std::string_view payload;
      RELSPEC_RETURN_NOT_OK(
          DecodeResponse(std::string_view(inbuf_).substr(0, size), &header,
                         &payload));
      Reply reply;
      reply.status_code = header.status;
      reply.request_id = header.request_id;
      reply.payload = std::string(payload);
      inbuf_.erase(0, size);
      return reply;
    }
    char buf[4096];
    ssize_t n = read(fd_, buf, sizeof(buf));
    if (n > 0) {
      inbuf_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return Status::Internal("server closed the connection mid-reply");
    }
    if (errno == EINTR) continue;
    return Errno("read");
  }
}

StatusOr<ServeClient::Reply> ServeClient::Call(RequestType type,
                                               std::string_view payload,
                                               uint64_t deadline_ms,
                                               uint64_t max_tuples) {
  const uint64_t id = next_id_++;
  RELSPEC_ASSIGN_OR_RETURN(Reply reply,
                           CallWithId(id, type, payload, deadline_ms,
                                      max_tuples));
  if (reply.request_id != id) {
    return Status::Internal(
        StrFormat("response id %llu does not match request id %llu",
                  static_cast<unsigned long long>(reply.request_id),
                  static_cast<unsigned long long>(id)));
  }
  return reply;
}

StatusOr<ServeClient::Reply> ServeClient::CallWithId(uint64_t request_id,
                                                     RequestType type,
                                                     std::string_view payload,
                                                     uint64_t deadline_ms,
                                                     uint64_t max_tuples) {
  RequestHeader header;
  header.type = type;
  header.request_id = request_id;
  header.deadline_ms = deadline_ms;
  header.max_tuples = max_tuples;
  RELSPEC_RETURN_NOT_OK(SendRaw(EncodeRequest(header, payload)));
  return ReadReply();
}

StatusOr<uint64_t> ServeClient::Ping() {
  RELSPEC_ASSIGN_OR_RETURN(Reply reply, Call(RequestType::kPing, ""));
  if (!reply.ok()) return reply.ToStatus();
  if (reply.payload.size() != 8) {
    return Status::Internal("ping reply payload must be 8 bytes");
  }
  uint64_t fp = 0;
  for (int i = 7; i >= 0; --i) {
    fp = (fp << 8) | static_cast<uint8_t>(reply.payload[static_cast<size_t>(i)]);
  }
  return fp;
}

StatusOr<bool> ServeClient::Membership(std::string_view fact_text) {
  RELSPEC_ASSIGN_OR_RETURN(Reply reply,
                           Call(RequestType::kMembership, fact_text));
  if (!reply.ok()) return reply.ToStatus();
  if (reply.payload.size() != 1) {
    return Status::Internal("membership reply payload must be 1 byte");
  }
  return reply.payload[0] != 0;
}

StatusOr<QueryResult> ServeClient::Query(std::string_view query_text,
                                         uint64_t deadline_ms,
                                         uint64_t max_tuples) {
  RELSPEC_ASSIGN_OR_RETURN(
      Reply reply,
      Call(RequestType::kQuery, query_text, deadline_ms, max_tuples));
  if (!reply.ok()) return reply.ToStatus();
  return DecodeQueryResult(reply.payload);
}

StatusOr<UpdateResult> ServeClient::Update(std::string_view delta_text) {
  RELSPEC_ASSIGN_OR_RETURN(Reply reply,
                           Call(RequestType::kUpdate, delta_text));
  if (!reply.ok()) return reply.ToStatus();
  return DecodeUpdateResult(reply.payload);
}

StatusOr<std::string> ServeClient::Stats() {
  RELSPEC_ASSIGN_OR_RETURN(Reply reply, Call(RequestType::kStats, ""));
  if (!reply.ok()) return reply.ToStatus();
  return std::move(reply.payload);
}

StatusOr<std::string> ServeClient::StatsPrometheus() {
  RELSPEC_ASSIGN_OR_RETURN(Reply reply,
                           Call(RequestType::kStats, "prometheus"));
  if (!reply.ok()) return reply.ToStatus();
  return std::move(reply.payload);
}

StatusOr<std::string> ServeClient::TraceDump() {
  RELSPEC_ASSIGN_OR_RETURN(Reply reply, Call(RequestType::kTraceDump, ""));
  if (!reply.ok()) return reply.ToStatus();
  return std::move(reply.payload);
}

StatusOr<std::string> ServeClient::SlowlogDump() {
  RELSPEC_ASSIGN_OR_RETURN(Reply reply, Call(RequestType::kSlowlogDump, ""));
  if (!reply.ok()) return reply.ToStatus();
  return std::move(reply.payload);
}

StatusOr<HealthResult> ServeClient::Health() {
  RELSPEC_ASSIGN_OR_RETURN(Reply reply, Call(RequestType::kHealth, ""));
  if (!reply.ok()) return reply.ToStatus();
  return DecodeHealthResult(reply.payload);
}

}  // namespace serve
}  // namespace relspec
