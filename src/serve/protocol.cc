#include "src/serve/protocol.h"

#include <cstring>

#include "src/base/str_util.h"

namespace relspec {
namespace serve {
namespace {

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xff);
  b[1] = static_cast<char>((v >> 8) & 0xff);
  b[2] = static_cast<char>((v >> 16) & 0xff);
  b[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xffffffffu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(std::string_view s, size_t off) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(s[off + static_cast<size_t>(i)]);
  }
  return v;
}

uint64_t GetU64(std::string_view s, size_t off) {
  return static_cast<uint64_t>(GetU32(s, off)) |
         (static_cast<uint64_t>(GetU32(s, off + 4)) << 32);
}

/// Validates the common 16-byte prefix (magic, version, payload length)
/// shared by request and response frames; returns the payload length.
StatusOr<uint32_t> CheckPrefix(std::string_view buffer) {
  if (buffer.size() < 16) {
    return Status::InvalidArgument("frame prefix truncated");
  }
  if (memcmp(buffer.data(), kMagic, 4) != 0) {
    return Status::InvalidArgument("bad frame magic (want \"RSRV\")");
  }
  uint32_t version = GetU32(buffer, 4);
  if (version != kProtocolVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported RSRV protocol version %u (this build speaks "
                  "version %u)",
                  version, kProtocolVersion));
  }
  uint32_t payload_len = GetU32(buffer, 12);
  if (payload_len > kMaxPayload) {
    return Status::InvalidArgument(
        StrFormat("frame payload length %u exceeds the %u-byte ceiling",
                  payload_len, kMaxPayload));
  }
  return payload_len;
}

StatusOr<size_t> FrameSize(std::string_view buffer, size_t header_size) {
  if (buffer.size() < 16) return size_t{0};  // need more bytes
  RELSPEC_ASSIGN_OR_RETURN(uint32_t payload_len, CheckPrefix(buffer));
  return header_size + payload_len;
}

}  // namespace

const char* RequestTypeName(RequestType type) {
  switch (type) {
    case RequestType::kPing: return "ping";
    case RequestType::kMembership: return "membership";
    case RequestType::kQuery: return "query";
    case RequestType::kUpdate: return "update";
    case RequestType::kStats: return "stats";
    case RequestType::kTraceDump: return "trace-dump";
    case RequestType::kSlowlogDump: return "slowlog-dump";
    case RequestType::kHealth: return "health";
  }
  return "unknown";
}

std::string EncodeRequest(const RequestHeader& header,
                          std::string_view payload) {
  std::string out;
  out.reserve(kRequestHeaderSize + payload.size());
  out.append(kMagic, 4);
  PutU32(&out, header.version);
  PutU32(&out, static_cast<uint32_t>(header.type));
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU64(&out, header.request_id);
  PutU64(&out, header.deadline_ms);
  PutU64(&out, header.max_tuples);
  out.append(payload);
  return out;
}

std::string EncodeResponse(const ResponseHeader& header,
                           std::string_view payload) {
  std::string out;
  out.reserve(kResponseHeaderSize + payload.size());
  out.append(kMagic, 4);
  PutU32(&out, header.version);
  PutU32(&out, header.status);
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU64(&out, header.request_id);
  out.append(payload);
  return out;
}

StatusOr<size_t> RequestFrameSize(std::string_view buffer) {
  return FrameSize(buffer, kRequestHeaderSize);
}

StatusOr<size_t> ResponseFrameSize(std::string_view buffer) {
  return FrameSize(buffer, kResponseHeaderSize);
}

Status DecodeRequest(std::string_view frame, RequestHeader* header,
                     std::string_view* payload) {
  if (frame.size() < kRequestHeaderSize) {
    return Status::InvalidArgument("request frame truncated");
  }
  RELSPEC_ASSIGN_OR_RETURN(uint32_t payload_len, CheckPrefix(frame));
  if (frame.size() != kRequestHeaderSize + payload_len) {
    return Status::InvalidArgument(StrFormat(
        "request frame length %zu disagrees with advertised payload %u",
        frame.size(), payload_len));
  }
  uint32_t type = GetU32(frame, 8);
  header->request_id = GetU64(frame, 16);  // echoable even on a type error
  if (type > kMaxRequestType) {
    return Status::InvalidArgument(
        StrFormat("unknown request type %u", type));
  }
  header->version = GetU32(frame, 4);
  header->type = static_cast<RequestType>(type);
  header->deadline_ms = GetU64(frame, 24);
  header->max_tuples = GetU64(frame, 32);
  *payload = frame.substr(kRequestHeaderSize);
  return Status::OK();
}

Status DecodeResponse(std::string_view frame, ResponseHeader* header,
                      std::string_view* payload) {
  if (frame.size() < kResponseHeaderSize) {
    return Status::InvalidArgument("response frame truncated");
  }
  RELSPEC_ASSIGN_OR_RETURN(uint32_t payload_len, CheckPrefix(frame));
  if (frame.size() != kResponseHeaderSize + payload_len) {
    return Status::InvalidArgument(StrFormat(
        "response frame length %zu disagrees with advertised payload %u",
        frame.size(), payload_len));
  }
  header->version = GetU32(frame, 4);
  header->status = GetU32(frame, 8);
  header->request_id = GetU64(frame, 16);
  *payload = frame.substr(kResponseHeaderSize);
  return Status::OK();
}

std::string EncodeQueryResult(const QueryResult& result) {
  std::string out;
  PutU64(&out, result.spec_tuples);
  out.push_back(result.functional ? 1 : 0);
  PutU32(&out, static_cast<uint32_t>(result.text.size()));
  out.append(result.text);
  return out;
}

StatusOr<QueryResult> DecodeQueryResult(std::string_view payload) {
  if (payload.size() < 13) {
    return Status::InvalidArgument("query result payload truncated");
  }
  QueryResult result;
  result.spec_tuples = GetU64(payload, 0);
  result.functional = payload[8] != 0;
  uint32_t text_len = GetU32(payload, 9);
  if (payload.size() != 13 + static_cast<size_t>(text_len)) {
    return Status::InvalidArgument(
        "query result text length disagrees with payload size");
  }
  result.text = std::string(payload.substr(13));
  return result;
}

std::string EncodeUpdateResult(const UpdateResult& result) {
  std::string out;
  PutU64(&out, result.fingerprint);
  PutU64(&out, result.inserted);
  PutU64(&out, result.deleted);
  PutU64(&out, result.noops);
  PutU64(&out, result.deleted_bits);
  out.push_back(result.rebuilt ? 1 : 0);
  out.push_back(result.durable ? 1 : 0);
  return out;
}

StatusOr<UpdateResult> DecodeUpdateResult(std::string_view payload) {
  if (payload.size() != 42) {
    return Status::InvalidArgument("update result payload must be 42 bytes");
  }
  UpdateResult result;
  result.fingerprint = GetU64(payload, 0);
  result.inserted = GetU64(payload, 8);
  result.deleted = GetU64(payload, 16);
  result.noops = GetU64(payload, 24);
  result.deleted_bits = GetU64(payload, 32);
  result.rebuilt = payload[40] != 0;
  result.durable = payload[41] != 0;
  return result;
}

std::string EncodeHealthResult(const HealthResult& result) {
  std::string out;
  out.push_back(result.ready ? 1 : 0);
  out.push_back(result.live ? 1 : 0);
  PutU64(&out, result.fingerprint);
  PutU64(&out, result.uptime_ms);
  PutU64(&out, result.wal_seq);
  PutU64(&out, result.served);
  return out;
}

StatusOr<HealthResult> DecodeHealthResult(std::string_view payload) {
  if (payload.size() != 34) {
    return Status::InvalidArgument("health result payload must be 34 bytes");
  }
  HealthResult result;
  result.ready = payload[0] != 0;
  result.live = payload[1] != 0;
  result.fingerprint = GetU64(payload, 2);
  result.uptime_ms = GetU64(payload, 10);
  result.wal_seq = GetU64(payload, 18);
  result.served = GetU64(payload, 26);
  return result;
}

std::string RenderAnswerText(const QueryAnswer& answer, int64_t elapsed_ns) {
  std::string out = answer.ToString();
  auto rows = answer.Enumerate(/*max_depth=*/3, /*max_count=*/32);
  if (rows.ok()) {  // unbounded answers stay spec-only
    for (const ConcreteAnswer& row : *rows) {
      out += "  ";
      bool first = true;
      if (row.term.has_value()) {
        out += row.term->ToString(answer.symbols());
        first = false;
      }
      for (ConstId c : row.tuple) {
        if (!first) out += ", ";
        out += answer.symbols().constant_name(c);
        first = false;
      }
      out += "\n";
    }
  }
  if (elapsed_ns >= 0) {
    out += StrFormat("  -- elapsed %lld ns\n",
                     static_cast<long long>(elapsed_ns));
  }
  return out;
}

}  // namespace serve
}  // namespace relspec
