// ServeClient: a small synchronous client for the RSRV protocol
// (docs/DAEMON.md), used by relspec_bench_serve --connect, relspecd --ping,
// and the conformance/chaos test suites.
//
// One connection, one outstanding request at a time (the protocol keeps
// responses in order per connection, so that is all a synchronous client
// needs). Not thread-safe: give each serving lane its own client.

#ifndef RELSPEC_SERVE_CLIENT_H_
#define RELSPEC_SERVE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "src/base/status.h"
#include "src/serve/protocol.h"

namespace relspec {
namespace serve {

class ServeClient {
 public:
  static StatusOr<std::unique_ptr<ServeClient>> ConnectUnix(
      const std::string& path);
  static StatusOr<std::unique_ptr<ServeClient>> ConnectTcp(
      const std::string& host, int port);
  /// "host:port" (no '/') connects TCP; anything else is a unix path.
  static StatusOr<std::unique_ptr<ServeClient>> Connect(
      const std::string& address);

  ~ServeClient();
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// A raw response: the wire status plus the payload (result bytes on OK,
  /// the server's status message on error).
  struct Reply {
    uint32_t status_code = 0;
    uint64_t request_id = 0;
    std::string payload;
    bool ok() const { return status_code == 0; }
    /// The reply as a Status (OK, or the server's code + message).
    Status ToStatus() const;
  };

  /// One round trip: sends a frame, blocks for the matching response. The
  /// request id (= the server-side trace ID, docs/OPERATIONS.md) is
  /// auto-assigned: unique within the process across all clients, never 0.
  StatusOr<Reply> Call(RequestType type, std::string_view payload,
                       uint64_t deadline_ms = 0, uint64_t max_tuples = 0);

  /// Call with a caller-chosen request id / trace ID (0 asks the server to
  /// assign one; the reply then carries the server-generated ID, which is
  /// why this variant skips the id-echo check that Call enforces).
  StatusOr<Reply> CallWithId(uint64_t request_id, RequestType type,
                             std::string_view payload,
                             uint64_t deadline_ms = 0,
                             uint64_t max_tuples = 0);

  // Typed helpers. A non-OK wire status surfaces as that error Status, so
  // a governor breach on the server shows up as kResourceExhausted /
  // kDeadlineExceeded / kCancelled here, exactly like an in-process call.
  StatusOr<uint64_t> Ping();  // returns the engine fingerprint
  StatusOr<bool> Membership(std::string_view fact_text);
  StatusOr<QueryResult> Query(std::string_view query_text,
                              uint64_t deadline_ms = 0,
                              uint64_t max_tuples = 0);
  StatusOr<UpdateResult> Update(std::string_view delta_text);
  StatusOr<std::string> Stats();
  /// kStats with the "prometheus" payload selector: the registry rendered
  /// in the Prometheus text exposition format.
  StatusOr<std::string> StatsPrometheus();
  StatusOr<std::string> TraceDump();
  /// kSlowlogDump: the slow-query audit ring as JSONL (docs/OPERATIONS.md).
  StatusOr<std::string> SlowlogDump();
  StatusOr<HealthResult> Health();

  /// Protocol-conformance escape hatches: ship arbitrary bytes / read one
  /// raw reply frame (malformed-frame tests).
  Status SendRaw(std::string_view bytes);
  StatusOr<Reply> ReadReply();

 private:
  explicit ServeClient(int fd);

  int fd_;
  /// Seeded from a process-wide connection counter so two clients in one
  /// process never reuse a request id — trace IDs stay unique per request
  /// across every lane of a multi-client bench run.
  uint64_t next_id_;
  std::string inbuf_;
};

}  // namespace serve
}  // namespace relspec

#endif  // RELSPEC_SERVE_CLIENT_H_
