// The relspecd serving core: a socket front-end over one FunctionalDatabase
// (docs/DAEMON.md).
//
// Design: a thin layer over the existing engine API, not a fork of it. One
// poll() loop (the thread that calls Serve()) owns the listener and every
// connection; complete RSRV frames are handed to the TaskPool as
// task-per-request work (the mxtasking-style scheduler/worker split). At
// most one request per connection is in flight at a time — the loop stops
// polling a connection while its task runs — so responses never reorder
// within a connection, while distinct connections proceed concurrently.
//
// Concurrency model over the engine (the honest one, given the engine's
// documented single-coordinator design):
//   * membership / ping / stats / trace-dump run under a shared lock —
//     membership parses into a scratch Program holding a *copy* of the
//     spec's symbol table (the CLI's spec-only pattern), so it never
//     mutates shared state; the fingerprint is pre-materialized whenever
//     the exclusive lock is held, so shared readers never race its lazy
//     computation.
//   * query / update run under the exclusive lock: ParseQuery interns into
//     the engine's shared symbol table, and updates rewrite the engine.
// The shared QueryCache has its own internal mutex and still pays off:
// repeated queries skip the whole answer pipeline even though they
// serialize on the engine lock.
//
// Shutdown (SIGTERM/SIGINT -> RequestShutdown, async-signal-safe) drains:
// the listener closes, one final read pass harvests request frames already
// delivered to each idle connection's socket buffer, every in-flight
// request runs to completion and its response is written, then Serve()
// returns so the caller can flush stats/trace exactly like the CLI.

#ifndef RELSPEC_SERVE_SERVER_H_
#define RELSPEC_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/base/governor.h"
#include "src/base/status.h"
#include "src/base/task_pool.h"
#include "src/core/engine.h"
#include "src/core/graph_spec.h"
#include "src/core/query.h"
#include "src/serve/protocol.h"

namespace relspec {
namespace serve {

struct ServerOptions {
  /// Unix-domain socket path. A stale file at the path is unlinked first.
  std::string unix_path;
  /// TCP listener on 127.0.0.1 when >= 0 (0 picks an ephemeral port —
  /// read it back with tcp_port()). Exactly one of unix_path / tcp_port
  /// must be set.
  int tcp_port = -1;
  /// TaskPool lanes for request execution. 1 runs requests inline on the
  /// poll loop (fork-friendly: no threads at all).
  int threads = 2;
  /// Shared query cache configuration.
  QueryCache::Options cache;
  /// Server-side default budgets for requests that carry none in their
  /// header (0 fields). A request's own nonzero header fields win.
  GovernorLimits default_limits;
};

class Server {
 public:
  /// Full-engine serving: every request type. Takes ownership of the
  /// database (which may be durable — updates then go through
  /// LogAndApplyDeltas and acks imply durability).
  static StatusOr<std::unique_ptr<Server>> Create(
      std::unique_ptr<FunctionalDatabase> db, const ServerOptions& options);

  /// Spec-only serving (--load-snapshot warm start without a program):
  /// membership/ping/stats/trace-dump only; query and update requests get a
  /// kFailedPrecondition reply (a saved spec has no rules).
  static StatusOr<std::unique_ptr<Server>> CreateSpecOnly(
      GraphSpecification spec, const ServerOptions& options);

  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Runs the accept/poll/dispatch loop until RequestShutdown. Returns OK
  /// after a clean drain; call at most once.
  Status Serve();

  /// Initiates drain-then-exit. Async-signal-safe (atomic store + one
  /// write() to the self-pipe) — call it straight from a SIGTERM handler.
  void RequestShutdown();

  /// The bound TCP port (meaningful after Create with tcp_port >= 0).
  int tcp_port() const { return bound_port_; }
  const std::string& unix_path() const { return options_.unix_path; }
  uint64_t requests_served() const { return served_.load(); }
  /// The served database (null in spec-only mode). The caller may inspect
  /// it after Serve() returns; touching it while serving races.
  FunctionalDatabase* db() { return db_.get(); }

 private:
  struct Conn;

  Server(std::unique_ptr<FunctionalDatabase> db, GraphSpecification spec,
         const ServerOptions& options);

  Status Listen();
  void Wake();
  void AcceptAll();
  /// Reads everything available; returns false when the peer is gone.
  bool ReadAvailable(Conn* conn);
  /// Dispatches the complete frame at the head of conn->inbuf, if any.
  void MaybeDispatch(Conn* conn);
  void ExecuteFrame(Conn* conn, std::string frame);
  /// Runs one decoded request; returns the response payload and sets *out.
  std::string Handle(const RequestHeader& req, std::string_view payload,
                     Status* out);
  static bool WriteAll(int fd, std::string_view bytes);

  ServerOptions options_;
  std::unique_ptr<FunctionalDatabase> db_;  // null in spec-only mode
  GraphSpecification spec_;
  QueryCache cache_;
  std::unique_ptr<TaskPool> pool_;

  /// Engine lock: shared = membership/ping/stats/trace, exclusive =
  /// query/update (see the header comment).
  std::shared_mutex state_mu_;
  uint64_t fingerprint_ = 0;  // materialized under the exclusive lock

  int listen_fd_ = -1;
  int bound_port_ = -1;
  int wake_r_ = -1;
  std::atomic<int> wake_w_{-1};
  std::atomic<bool> shutdown_{false};
  std::atomic<uint64_t> served_{0};
  std::atomic<int> in_flight_{0};
  std::vector<std::unique_ptr<Conn>> conns_;
};

}  // namespace serve
}  // namespace relspec

#endif  // RELSPEC_SERVE_SERVER_H_
