// The relspecd serving core: a socket front-end over one FunctionalDatabase
// (docs/DAEMON.md).
//
// Design: a thin layer over the existing engine API, not a fork of it. One
// poll() loop (the thread that calls Serve()) owns the listener and every
// connection; complete RSRV frames are handed to the TaskPool as
// task-per-request work (the mxtasking-style scheduler/worker split). At
// most one request per connection is in flight at a time — the loop stops
// polling a connection while its task runs — so responses never reorder
// within a connection, while distinct connections proceed concurrently.
//
// Concurrency model over the engine (the honest one, given the engine's
// documented single-coordinator design):
//   * membership / ping / stats / trace-dump run under a shared lock —
//     membership parses into a scratch Program holding a *copy* of the
//     spec's symbol table (the CLI's spec-only pattern), so it never
//     mutates shared state; the fingerprint is pre-materialized whenever
//     the exclusive lock is held, so shared readers never race its lazy
//     computation.
//   * query / update run under the exclusive lock: ParseQuery interns into
//     the engine's shared symbol table, and updates rewrite the engine.
// The shared QueryCache has its own internal mutex and still pays off:
// repeated queries skip the whole answer pipeline even though they
// serialize on the engine lock.
//
// Shutdown (SIGTERM/SIGINT -> RequestShutdown, async-signal-safe) drains:
// the listener closes, one final read pass harvests request frames already
// delivered to each idle connection's socket buffer, every in-flight
// request runs to completion and its response is written, then Serve()
// returns so the caller can flush stats/trace exactly like the CLI.

#ifndef RELSPEC_SERVE_SERVER_H_
#define RELSPEC_SERVE_SERVER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/base/governor.h"
#include "src/base/status.h"
#include "src/base/task_pool.h"
#include "src/core/engine.h"
#include "src/core/graph_spec.h"
#include "src/core/query.h"
#include "src/serve/protocol.h"
#include "src/serve/slowlog.h"

namespace relspec {
namespace serve {

struct ServerOptions {
  /// Unix-domain socket path. A stale file at the path is unlinked first.
  std::string unix_path;
  /// TCP listener on 127.0.0.1 when >= 0 (0 picks an ephemeral port —
  /// read it back with tcp_port()). Exactly one of unix_path / tcp_port
  /// must be set.
  int tcp_port = -1;
  /// TaskPool lanes for request execution. 1 runs requests inline on the
  /// poll loop (fork-friendly: no threads at all).
  int threads = 2;
  /// Shared query cache configuration.
  QueryCache::Options cache;
  /// Server-side default budgets for requests that carry none in their
  /// header (0 fields). A request's own nonzero header fields win.
  GovernorLimits default_limits;
  /// Slow-query audit log policy (threshold_ms < 0 disables it; then
  /// kSlowlogDump answers kFailedPrecondition). See docs/OPERATIONS.md.
  SlowLog::Options slowlog;
  /// Append "  -- elapsed N ns" to every kQuery reply text (the daemon's
  /// --reply-timing flag). Off by default so reply bytes stay canonical.
  bool reply_timing = false;
};

class Server {
 public:
  /// Full-engine serving: every request type. Takes ownership of the
  /// database (which may be durable — updates then go through
  /// LogAndApplyDeltas and acks imply durability).
  static StatusOr<std::unique_ptr<Server>> Create(
      std::unique_ptr<FunctionalDatabase> db, const ServerOptions& options);

  /// Spec-only serving (--load-snapshot warm start without a program):
  /// membership/ping/stats/trace-dump only; query and update requests get a
  /// kFailedPrecondition reply (a saved spec has no rules).
  static StatusOr<std::unique_ptr<Server>> CreateSpecOnly(
      GraphSpecification spec, const ServerOptions& options);

  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Runs the accept/poll/dispatch loop until RequestShutdown. Returns OK
  /// after a clean drain; call at most once.
  Status Serve();

  /// Initiates drain-then-exit. Async-signal-safe (atomic store + one
  /// write() to the self-pipe) — call it straight from a SIGTERM handler.
  void RequestShutdown();

  /// The bound TCP port (meaningful after Create with tcp_port >= 0).
  int tcp_port() const { return bound_port_; }
  const std::string& unix_path() const { return options_.unix_path; }
  uint64_t requests_served() const { return served_.load(); }
  /// The served database (null in spec-only mode). The caller may inspect
  /// it after Serve() returns; touching it while serving races.
  FunctionalDatabase* db() { return db_.get(); }
  /// The slow-query audit ring (always present; enabled() reflects the
  /// configured policy). Safe to dump after Serve() returns — the drain
  /// flush in relspecd reads it exactly like a kSlowlogDump request.
  const SlowLog& slowlog() const { return slowlog_; }

 private:
  struct Conn;

  /// Sliding 60-second window of request/error counts, one bucket per
  /// second, backing the serve.qps_1m / serve.error_rate_1m gauges.
  /// Lock-free and approximate: a bucket reset racing an increment can
  /// miscount one request, which is noise for a rate gauge.
  struct RateWindow {
    static constexpr int kSlots = 64;
    std::array<std::atomic<uint64_t>, kSlots> stamp{};  // second + 1; 0 = empty
    std::array<std::atomic<uint64_t>, kSlots> requests{};
    std::array<std::atomic<uint64_t>, kSlots> errors{};
    void Tick(uint64_t now_sec, bool error);
    void Sum60(uint64_t now_sec, uint64_t* reqs, uint64_t* errs) const;
  };

  Server(std::unique_ptr<FunctionalDatabase> db, GraphSpecification spec,
         const ServerOptions& options);

  Status Listen();
  void Wake();
  void AcceptAll();
  /// Reads everything available; returns false when the peer is gone.
  bool ReadAvailable(Conn* conn);
  /// Dispatches the complete frame at the head of conn->inbuf, if any.
  void MaybeDispatch(Conn* conn);
  void ExecuteFrame(Conn* conn, std::string frame);
  /// Governor setup + dispatch + headroom capture for one decoded request;
  /// returns the response payload and sets *out. Phase timings and cache
  /// attribution land in *entry (always non-null).
  std::string Handle(const RequestHeader& req, std::string_view payload,
                     uint64_t trace_id, Status* out, SlowlogEntry* entry);
  std::string HandleRequest(const RequestHeader& req, std::string_view payload,
                            ResourceGovernor* governor, Status* out,
                            SlowlogEntry* entry);
  /// Re-publishes the live gauges (cache.entries/bytes, trace.dropped,
  /// serve.qps_1m, serve.error_rate_1m, serve.uptime_ms) so a stats or
  /// health reply never reports stale values.
  void RefreshLiveGauges();
  uint64_t UptimeSec() const;
  static bool WriteAll(int fd, std::string_view bytes);

  ServerOptions options_;
  std::unique_ptr<FunctionalDatabase> db_;  // null in spec-only mode
  GraphSpecification spec_;
  QueryCache cache_;
  std::unique_ptr<TaskPool> pool_;

  /// Engine lock: shared = membership/ping/stats/trace, exclusive =
  /// query/update (see the header comment).
  std::shared_mutex state_mu_;
  uint64_t fingerprint_ = 0;  // materialized under the exclusive lock

  int listen_fd_ = -1;
  int bound_port_ = -1;
  int wake_r_ = -1;
  std::atomic<int> wake_w_{-1};
  std::atomic<bool> shutdown_{false};
  std::atomic<uint64_t> served_{0};
  std::atomic<int> in_flight_{0};
  std::vector<std::unique_ptr<Conn>> conns_;

  SlowLog slowlog_;
  RateWindow rates_;
  /// Fallback trace-ID source for requests that arrive with request_id 0:
  /// the high bit marks the ID as server-assigned, the counter keeps it
  /// unique (and nonzero) within the process.
  std::atomic<uint64_t> next_trace_id_{1};
  const std::chrono::steady_clock::time_point start_time_ =
      std::chrono::steady_clock::now();
};

}  // namespace serve
}  // namespace relspec

#endif  // RELSPEC_SERVE_SERVER_H_
