// SlowLog — a lock-free, fixed-capacity audit ring of per-request serving
// telemetry (docs/OPERATIONS.md).
//
// The server records one entry per request whose total latency reaches the
// configured threshold, plus a 1-in-N sample of the faster rest, so the
// slow tail is always attributable without paying for (or drowning in) a
// full request log. Recording is wait-free for writers: a slot index is
// claimed with one fetch_add, the entry fields are written, and a per-slot
// sequence publish (release store) makes the entry visible. Readers
// (kSlowlogDump, the drain flush) validate the per-slot sequence after
// copying, so a concurrently overwritten slot is skipped rather than read
// torn — the classic seqlock discipline, one writer per claimed slot.
//
// Entries serialize as JSONL: one self-contained JSON object per line with
// the request type, trace ID, normalized query-text hash, per-phase ns
// breakdown (parse/cache/eval/render/write), cache hit/miss, governor
// headroom at completion, and the reply status. The schema is documented
// (and pinned) in docs/OPERATIONS.md.

#ifndef RELSPEC_SERVE_SLOWLOG_H_
#define RELSPEC_SERVE_SLOWLOG_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace relspec {
namespace serve {

/// One audit record. Plain data; string rendering happens only at dump
/// time so the record path stays allocation-free.
struct SlowlogEntry {
  /// Admission order (0-based, assigned by MaybeRecord).
  uint64_t seq = 0;
  uint64_t trace_id = 0;
  uint32_t type = 0;        // RequestType numeric
  uint32_t status = 0;      // StatusCode numeric (0 = OK)
  uint64_t query_hash = 0;  // FNV-1a over the normalized request payload
  uint64_t total_ns = 0;
  uint64_t parse_ns = 0;
  uint64_t cache_ns = 0;
  uint64_t eval_ns = 0;
  uint64_t render_ns = 0;
  uint64_t write_ns = 0;
  // 0 = miss, 1 = hit, 2 = not applicable (non-query request).
  uint8_t cache_hit = 2;
  // Governor headroom at completion: remaining deadline budget in ms and
  // remaining tuple budget; -1 = the corresponding limit was unset.
  int64_t headroom_ms = -1;
  int64_t headroom_tuples = -1;
  // True when the entry was admitted by sampling rather than the
  // threshold (distinguishes "slow" from "representative" records).
  bool sampled = false;
};

/// FNV-1a 64-bit, the hash used for SlowlogEntry::query_hash.
uint64_t SlowlogHash(std::string_view text);

class SlowLog {
 public:
  struct Options {
    /// Threshold in milliseconds: every request whose total latency is
    /// >= this is recorded (0 records everything). Negative disables the
    /// slow log entirely — MaybeRecord becomes a single branch.
    int64_t threshold_ms = -1;
    /// When > 0, additionally record every Nth request that falls under
    /// the threshold (1-in-N sampling of the fast path).
    uint64_t sample_every = 0;
    /// Ring capacity (rounded up to a power of two, minimum 8). Once the
    /// ring wraps, the oldest entries are overwritten.
    size_t capacity = 4096;
  };

  explicit SlowLog(const Options& options);

  bool enabled() const { return options_.threshold_ms >= 0; }
  const Options& options() const { return options_; }

  /// Records `entry` if the policy admits it (threshold or sampling).
  /// Wait-free; safe from any number of threads. Returns true when the
  /// entry was admitted. `entry.sampled` is set by this call.
  bool MaybeRecord(SlowlogEntry entry);

  /// Entries admitted since construction (including any already
  /// overwritten by ring wrap-around).
  uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }

  /// Snapshot of the surviving entries, oldest first. Entries being
  /// concurrently overwritten are skipped, never returned torn.
  std::vector<SlowlogEntry> Snapshot() const;

  /// Snapshot rendered as JSONL (one JSON object per line, "\n"-separated,
  /// trailing newline when nonempty). Schema: docs/OPERATIONS.md.
  std::string DumpJsonl() const;

  /// One entry rendered as a single JSON line (no trailing newline).
  static std::string EntryJson(const SlowlogEntry& entry);

 private:
  // Entries live in slots as packed arrays of relaxed-atomic words, so a
  // wrap-around collision between two stalled writers is a benign word
  // race, never UB — the per-slot sequence check filters mixed copies.
  static constexpr size_t kWords = 13;

  struct Slot {
    // 0 = never written; odd = being written; value 2*k+2 marks the slot
    // as holding the k-th admitted entry.
    std::atomic<uint64_t> seq{0};
    std::array<std::atomic<uint64_t>, kWords> words{};
  };

  static void Pack(const SlowlogEntry& entry, Slot* slot);
  static SlowlogEntry Unpack(const Slot& slot);

  Options options_;
  size_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_{0};      // admitted-entry counter
  std::atomic<uint64_t> observed_{0};  // all requests offered (for sampling)
};

}  // namespace serve
}  // namespace relspec

#endif  // RELSPEC_SERVE_SLOWLOG_H_
