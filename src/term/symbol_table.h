// SymbolTable: interning of predicate, function, constant and variable names.
//
// All engine data structures work with dense integer ids; names only matter
// at parse and print time. Id spaces are separate per symbol kind.
//
// Terminology follows the paper (Section 2.1):
//  * predicates are functional (carry a functional argument in a fixed
//    position) or non-functional (plain DATALOG);
//  * function symbols are "pure" (unary: one functional argument) or "mixed"
//    (arity >= 2: one functional argument plus non-functional arguments);
//  * there is exactly one functional constant, written 0;
//  * non-functional constants are ordinary database constants.

#ifndef RELSPEC_TERM_SYMBOL_TABLE_H_
#define RELSPEC_TERM_SYMBOL_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"

namespace relspec {

using PredId = uint32_t;
using FuncId = uint32_t;
using ConstId = uint32_t;
using VarId = uint32_t;

inline constexpr uint32_t kInvalidId = UINT32_MAX;

/// Metadata recorded for each predicate.
struct PredicateInfo {
  std::string name;
  /// Total number of arguments, including the functional one if any.
  int arity = 0;
  /// True once the predicate has been seen with a functional term in
  /// argument position 0. Fixed position per the paper's restriction.
  bool functional = false;
};

/// Metadata recorded for each function symbol.
struct FunctionInfo {
  std::string name;
  /// 1 for pure symbols; >= 2 for mixed symbols (functional argument plus
  /// arity-1 non-functional arguments).
  int arity = 1;
};

/// Interns names and hands out dense ids. Not thread-safe (one table per
/// program/engine instance).
class SymbolTable {
 public:
  SymbolTable() = default;

  /// Interns predicate `name` with the given arity/functionality; returns the
  /// existing id if already present. Fails if the arity conflicts.
  StatusOr<PredId> InternPredicate(std::string_view name, int arity,
                                   bool functional);
  /// Looks up a predicate by name.
  StatusOr<PredId> FindPredicate(std::string_view name) const;
  /// Marks an existing predicate functional (used by inference passes).
  Status SetFunctional(PredId id);

  StatusOr<FuncId> InternFunction(std::string_view name, int arity);
  StatusOr<FuncId> FindFunction(std::string_view name) const;

  ConstId InternConstant(std::string_view name);
  StatusOr<ConstId> FindConstant(std::string_view name) const;

  VarId InternVariable(std::string_view name);

  const PredicateInfo& predicate(PredId id) const { return predicates_[id]; }
  const FunctionInfo& function(FuncId id) const { return functions_[id]; }
  const std::string& constant_name(ConstId id) const { return constants_[id]; }
  const std::string& variable_name(VarId id) const { return variables_[id]; }

  size_t num_predicates() const { return predicates_.size(); }
  size_t num_functions() const { return functions_.size(); }
  size_t num_constants() const { return constants_.size(); }
  size_t num_variables() const { return variables_.size(); }

 private:
  std::vector<PredicateInfo> predicates_;
  std::vector<FunctionInfo> functions_;
  std::vector<std::string> constants_;
  std::vector<std::string> variables_;
  std::unordered_map<std::string, PredId> predicate_index_;
  std::unordered_map<std::string, FuncId> function_index_;
  std::unordered_map<std::string, ConstId> constant_index_;
  std::unordered_map<std::string, VarId> variable_index_;
};

}  // namespace relspec

#endif  // RELSPEC_TERM_SYMBOL_TABLE_H_
