// Path: a ground *pure* functional term viewed as a string over the alphabet
// of pure function symbols.
//
// After the mixed-to-pure transformation (Section 2.4) every functional term
// is pure, so the set of ground functional terms is exactly the set of
// strings over the function-symbol alphabet, with the functional constant 0
// as the empty string and f(t) as "t followed by f". The engine's fixpoint
// machinery (trunk labels, Algorithm Q traversal, Link walks) operates on
// Paths.
//
// The precedence ordering of Section 3.4 ("breadth-first traversal of the
// term tree") is shortlex: shorter paths first, ties broken by the symbol
// order given by FuncId.

#ifndef RELSPEC_TERM_PATH_H_
#define RELSPEC_TERM_PATH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/term/symbol_table.h"
#include "src/term/term.h"

namespace relspec {

/// A pure ground functional term as an innermost-first symbol string.
class Path {
 public:
  Path() = default;
  explicit Path(std::vector<FuncId> symbols) : symbols_(std::move(symbols)) {}

  /// The functional constant 0.
  static Path Zero() { return Path(); }

  /// Conversion from an interned term; fails on mixed terms.
  static StatusOr<Path> FromTerm(const TermArena& arena, TermId id);

  /// Interns this path as a term.
  TermId ToTerm(TermArena* arena) const { return arena->FromSymbols(symbols_); }

  int depth() const { return static_cast<int>(symbols_.size()); }
  bool empty() const { return symbols_.empty(); }
  const std::vector<FuncId>& symbols() const { return symbols_; }

  /// The symbol applied i-th (innermost-first).
  FuncId at(int i) const { return symbols_[static_cast<size_t>(i)]; }

  /// f(this): this path extended by one outermost application.
  Path Extend(FuncId f) const;

  /// The path without its outermost symbol. Precondition: !empty().
  Path Parent() const;

  /// The outermost symbol. Precondition: !empty().
  FuncId Outermost() const { return symbols_.back(); }

  /// The first `n` innermost symbols.
  Path Prefix(int n) const;

  /// Shortlex ("precedence") comparison: by depth, then lexicographic.
  bool operator<(const Path& other) const;
  bool operator==(const Path& other) const { return symbols_ == other.symbols_; }
  bool operator!=(const Path& other) const { return !(*this == other); }

  /// Term syntax, e.g. "f(g(0))".
  std::string ToString(const SymbolTable& symbols) const;
  /// Compact word syntax, e.g. "g.f" ("" for 0) — innermost first.
  std::string ToWord(const SymbolTable& symbols) const;

  size_t Hash() const;

 private:
  std::vector<FuncId> symbols_;
};

struct PathHash {
  size_t operator()(const Path& p) const { return p.Hash(); }
};

/// Enumerates all paths of exactly depth d over `alphabet`, in shortlex
/// order. Used to seed Algorithm Q's Potential set with the depth c+1 layer.
std::vector<Path> AllPathsOfDepth(const std::vector<FuncId>& alphabet, int d);

}  // namespace relspec

#endif  // RELSPEC_TERM_PATH_H_
