#include "src/term/interner.h"

#include "src/base/logging.h"
#include "src/base/metrics.h"

namespace relspec {
namespace {

constexpr size_t kInitialSlots = 64;  // power of two

/// splitmix64 finalizer: full-avalanche mix of one 64-bit word.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

TermInterner::TermInterner() {
  nodes_.push_back(Node{});  // the functional constant 0
  hash_of_.push_back(0);
  slots_.assign(kInitialSlots, kInvalidId);
  // The constant 0 is never probed (Apply keys always carry a real fn), so
  // it stays out of the intern table.
}

uint64_t TermInterner::HashKey(FuncId fn, TermId child,
                               std::span<const ConstId> args) {
  uint64_t h = Mix(0x5851f42d4c957f2dull ^ fn);
  h = Mix(h ^ child);
  for (ConstId a : args) h = Mix(h ^ a);
  return h;
}

bool TermInterner::NodeEquals(TermId id, FuncId fn, TermId child,
                              std::span<const ConstId> args) const {
  const Node& n = nodes_[id];
  if (n.fn != fn || n.child != child || n.args_len != args.size()) {
    return false;
  }
  const ConstId* stored = args_pool_.data() + n.args_begin;
  for (size_t i = 0; i < args.size(); ++i) {
    if (stored[i] != args[i]) return false;
  }
  return true;
}

TermId TermInterner::Probe(uint64_t hash, FuncId fn, TermId child,
                           std::span<const ConstId> args, size_t* slot) const {
  size_t mask = slots_.size() - 1;
  size_t i = static_cast<size_t>(hash) & mask;
  while (true) {
    TermId candidate = slots_[i];
    if (candidate == kInvalidId) {
      *slot = i;
      return kInvalidId;
    }
    if (hash_of_[candidate] == hash &&
        NodeEquals(candidate, fn, child, args)) {
      *slot = i;
      return candidate;
    }
    i = (i + 1) & mask;
  }
}

void TermInterner::Grow() {
  std::vector<TermId> old = std::move(slots_);
  slots_.assign(old.size() * 2, kInvalidId);
  size_t mask = slots_.size() - 1;
  for (TermId id : old) {
    if (id == kInvalidId) continue;
    size_t i = static_cast<size_t>(hash_of_[id]) & mask;
    while (slots_[i] != kInvalidId) i = (i + 1) & mask;
    slots_[i] = id;
  }
}

TermId TermInterner::Apply(FuncId fn, TermId child,
                           std::span<const ConstId> args) {
  RELSPEC_CHECK_LT(child, nodes_.size());
  uint64_t hash = HashKey(fn, child, args);
  size_t slot = 0;
  TermId existing = Probe(hash, fn, child, args, &slot);
  if (existing != kInvalidId) {
    ++hits_;
    RELSPEC_COUNTER("interner.hits");
    return existing;
  }
  ++misses_;
  RELSPEC_COUNTER("interner.misses");
  TermId id = static_cast<TermId>(nodes_.size());
  Node n;
  n.fn = fn;
  n.child = child;
  n.args_begin = static_cast<uint32_t>(args_pool_.size());
  n.args_len = static_cast<uint32_t>(args.size());
  n.depth = nodes_[child].depth + 1;
  args_pool_.insert(args_pool_.end(), args.begin(), args.end());
  nodes_.push_back(n);
  hash_of_.push_back(hash);
  slots_[slot] = id;
  // Grow at 70% load; the never-probed zero node keeps the count exact.
  if ((nodes_.size() - 1) * 10 >= slots_.size() * 7) Grow();
  return id;
}

TermId TermInterner::FromSymbols(std::span<const FuncId> fns) {
  TermId t = Zero();
  for (FuncId f : fns) t = Apply(f, t);
  return t;
}

TermId TermInterner::FindSymbols(std::span<const FuncId> fns) const {
  TermId t = Zero();
  for (FuncId f : fns) {
    size_t slot = 0;
    t = Probe(HashKey(f, t, {}), f, t, {}, &slot);
    if (t == kInvalidId) return kInvalidId;
  }
  return t;
}

bool TermInterner::IsPure(TermId id) const {
  for (TermId t = id; t != kZeroTerm; t = nodes_[t].child) {
    if (nodes_[t].args_len != 0) return false;
  }
  return true;
}

StatusOr<std::vector<FuncId>> TermInterner::ToSymbols(TermId id) const {
  std::vector<FuncId> out;
  out.reserve(static_cast<size_t>(Depth(id)));
  for (TermId t = id; t != kZeroTerm; t = nodes_[t].child) {
    if (nodes_[t].args_len != 0) {
      return Status::FailedPrecondition(
          "ToSymbols called on a term with mixed function symbols");
    }
    out.push_back(nodes_[t].fn);
  }
  // Collected outermost-first; return innermost-first to match FromSymbols.
  std::vector<FuncId> inner(out.rbegin(), out.rend());
  return inner;
}

std::string TermInterner::ToString(TermId id,
                                   const SymbolTable& symbols) const {
  if (id == kZeroTerm) return "0";
  TermNode n = node(id);
  std::string out = symbols.function(n.fn).name;
  out += "(";
  out += ToString(n.child, symbols);
  for (ConstId a : n.args) {
    out += ",";
    out += symbols.constant_name(a);
  }
  out += ")";
  return out;
}

size_t TermInterner::ApproxBytes() const {
  return nodes_.capacity() * sizeof(Node) +
         args_pool_.capacity() * sizeof(ConstId) +
         hash_of_.capacity() * sizeof(uint64_t) +
         slots_.capacity() * sizeof(TermId);
}

void TermInterner::RecordMetrics() const {
  RELSPEC_GAUGE_MAX("interner.terms", static_cast<int64_t>(nodes_.size()));
  RELSPEC_GAUGE_MAX("interner.bytes", static_cast<int64_t>(ApproxBytes()));
}

}  // namespace relspec
