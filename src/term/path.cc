#include "src/term/path.h"

#include "src/base/logging.h"

namespace relspec {

StatusOr<Path> Path::FromTerm(const TermArena& arena, TermId id) {
  RELSPEC_ASSIGN_OR_RETURN(std::vector<FuncId> syms, arena.ToSymbols(id));
  return Path(std::move(syms));
}

Path Path::Extend(FuncId f) const {
  std::vector<FuncId> syms = symbols_;
  syms.push_back(f);
  return Path(std::move(syms));
}

Path Path::Parent() const {
  RELSPEC_CHECK(!empty());
  std::vector<FuncId> syms(symbols_.begin(), symbols_.end() - 1);
  return Path(std::move(syms));
}

Path Path::Prefix(int n) const {
  RELSPEC_CHECK_LE(n, depth());
  std::vector<FuncId> syms(symbols_.begin(), symbols_.begin() + n);
  return Path(std::move(syms));
}

bool Path::operator<(const Path& other) const {
  if (symbols_.size() != other.symbols_.size()) {
    return symbols_.size() < other.symbols_.size();
  }
  return symbols_ < other.symbols_;
}

std::string Path::ToString(const SymbolTable& symbols) const {
  std::string out = "0";
  for (FuncId f : symbols_) {
    out = symbols.function(f).name + "(" + out + ")";
  }
  return out;
}

std::string Path::ToWord(const SymbolTable& symbols) const {
  std::string out;
  for (size_t i = 0; i < symbols_.size(); ++i) {
    if (i > 0) out += ".";
    out += symbols.function(symbols_[i]).name;
  }
  return out;
}

size_t Path::Hash() const {
  uint64_t h = 1469598103934665603ull;
  for (FuncId f : symbols_) {
    h ^= f;
    h *= 1099511628211ull;
  }
  h ^= symbols_.size();
  h *= 1099511628211ull;
  return static_cast<size_t>(h);
}

std::vector<Path> AllPathsOfDepth(const std::vector<FuncId>& alphabet, int d) {
  std::vector<Path> layer = {Path::Zero()};
  for (int i = 0; i < d; ++i) {
    std::vector<Path> next;
    next.reserve(layer.size() * alphabet.size());
    for (const Path& p : layer) {
      for (FuncId f : alphabet) next.push_back(p.Extend(f));
    }
    layer = std::move(next);
  }
  return layer;
}

}  // namespace relspec
