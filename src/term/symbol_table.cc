#include "src/term/symbol_table.h"

#include "src/base/str_util.h"

namespace relspec {

StatusOr<PredId> SymbolTable::InternPredicate(std::string_view name, int arity,
                                              bool functional) {
  auto it = predicate_index_.find(std::string(name));
  if (it != predicate_index_.end()) {
    PredicateInfo& info = predicates_[it->second];
    if (info.arity != arity) {
      return Status::InvalidArgument(StrFormat(
          "predicate '%s' used with arity %d but declared with arity %d",
          info.name.c_str(), arity, info.arity));
    }
    if (functional) info.functional = true;
    return it->second;
  }
  PredId id = static_cast<PredId>(predicates_.size());
  predicates_.push_back(PredicateInfo{std::string(name), arity, functional});
  predicate_index_.emplace(std::string(name), id);
  return id;
}

StatusOr<PredId> SymbolTable::FindPredicate(std::string_view name) const {
  auto it = predicate_index_.find(std::string(name));
  if (it == predicate_index_.end()) {
    return Status::NotFound("unknown predicate '" + std::string(name) + "'");
  }
  return it->second;
}

Status SymbolTable::SetFunctional(PredId id) {
  if (id >= predicates_.size()) {
    return Status::OutOfRange("bad predicate id");
  }
  predicates_[id].functional = true;
  return Status::OK();
}

StatusOr<FuncId> SymbolTable::InternFunction(std::string_view name, int arity) {
  auto it = function_index_.find(std::string(name));
  if (it != function_index_.end()) {
    const FunctionInfo& info = functions_[it->second];
    if (info.arity != arity) {
      return Status::InvalidArgument(StrFormat(
          "function symbol '%s' used with arity %d but declared with arity %d",
          info.name.c_str(), arity, info.arity));
    }
    return it->second;
  }
  if (arity < 1) {
    return Status::InvalidArgument(
        "function symbol '" + std::string(name) + "' must have arity >= 1");
  }
  FuncId id = static_cast<FuncId>(functions_.size());
  functions_.push_back(FunctionInfo{std::string(name), arity});
  function_index_.emplace(std::string(name), id);
  return id;
}

StatusOr<FuncId> SymbolTable::FindFunction(std::string_view name) const {
  auto it = function_index_.find(std::string(name));
  if (it == function_index_.end()) {
    return Status::NotFound("unknown function symbol '" + std::string(name) + "'");
  }
  return it->second;
}

ConstId SymbolTable::InternConstant(std::string_view name) {
  auto it = constant_index_.find(std::string(name));
  if (it != constant_index_.end()) return it->second;
  ConstId id = static_cast<ConstId>(constants_.size());
  constants_.emplace_back(name);
  constant_index_.emplace(std::string(name), id);
  return id;
}

StatusOr<ConstId> SymbolTable::FindConstant(std::string_view name) const {
  auto it = constant_index_.find(std::string(name));
  if (it == constant_index_.end()) {
    return Status::NotFound("unknown constant '" + std::string(name) + "'");
  }
  return it->second;
}

VarId SymbolTable::InternVariable(std::string_view name) {
  auto it = variable_index_.find(std::string(name));
  if (it != variable_index_.end()) return it->second;
  VarId id = static_cast<VarId>(variables_.size());
  variables_.emplace_back(name);
  variable_index_.emplace(std::string(name), id);
  return id;
}

}  // namespace relspec
