#include "src/term/term.h"

#include "src/base/logging.h"

namespace relspec {

TermArena::TermArena() {
  nodes_.push_back(TermNode{});  // the functional constant 0
}

TermId TermArena::Apply(FuncId fn, TermId child, std::vector<ConstId> args) {
  RELSPEC_CHECK_LT(child, nodes_.size());
  NodeKey key{fn, child, args};
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(nodes_.size());
  nodes_.push_back(
      TermNode{fn, child, std::move(args), nodes_[child].depth + 1});
  index_.emplace(std::move(key), id);
  return id;
}

TermId TermArena::FromSymbols(const std::vector<FuncId>& fns) {
  TermId t = Zero();
  for (FuncId f : fns) t = Apply(f, t);
  return t;
}

bool TermArena::IsPure(TermId id) const {
  for (TermId t = id; t != kZeroTerm; t = nodes_[t].child) {
    if (!nodes_[t].args.empty()) return false;
  }
  return true;
}

StatusOr<std::vector<FuncId>> TermArena::ToSymbols(TermId id) const {
  std::vector<FuncId> out;
  out.reserve(static_cast<size_t>(Depth(id)));
  for (TermId t = id; t != kZeroTerm; t = nodes_[t].child) {
    if (!nodes_[t].args.empty()) {
      return Status::FailedPrecondition(
          "ToSymbols called on a term with mixed function symbols");
    }
    out.push_back(nodes_[t].fn);
  }
  // Collected outermost-first; return innermost-first to match FromSymbols.
  std::vector<FuncId> inner(out.rbegin(), out.rend());
  return inner;
}

std::string TermArena::ToString(TermId id, const SymbolTable& symbols) const {
  if (id == kZeroTerm) return "0";
  const TermNode& n = nodes_[id];
  std::string out = symbols.function(n.fn).name;
  out += "(";
  out += ToString(n.child, symbols);
  for (ConstId a : n.args) {
    out += ",";
    out += symbols.constant_name(a);
  }
  out += ")";
  return out;
}

}  // namespace relspec
