// TermInterner: the hash-consing fast-representation layer for ground
// functional terms.
//
// Every structurally distinct ground term is interned exactly once and
// identified by a dense TermId, so equality is id equality and hashing a
// term is hashing one uint32 — O(1) regardless of depth. The interner is
// arena-allocated: nodes live in one contiguous vector and the mixed
// symbols' non-functional arguments live in one shared pool, so interning
// N terms costs two flat arrays (plus the intern table) instead of N
// heap-allocated argument vectors. The intern table itself is a
// power-of-two open-addressing table over precomputed structural hashes —
// no per-key allocation on lookup or insert.
//
// This is the canonical term representation: the fixpoint's label tables,
// Algorithm Q's traversal bookkeeping, the congruence closure and the
// CONGR encoding all work over TermIds from one of these interners
// (`TermArena` in term.h is an alias for compatibility with the original
// seed API).
//
// Metrics (enabled runs only): interner.hits / interner.misses count Apply
// calls that found / created a node; interner.terms and interner.bytes are
// exported by RecordMetrics.

#ifndef RELSPEC_TERM_INTERNER_H_
#define RELSPEC_TERM_INTERNER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/term/symbol_table.h"

namespace relspec {

using TermId = uint32_t;

/// The id of the functional constant 0; present in every interner.
inline constexpr TermId kZeroTerm = 0;

/// A view of one interned term node: fn applied to child, with the mixed
/// symbol's non-functional constant arguments in args (empty for pure
/// symbols). Valid until the next Apply on the owning interner.
struct TermNode {
  FuncId fn = kInvalidId;  // kInvalidId only for the constant 0
  TermId child = kZeroTerm;
  std::span<const ConstId> args;
  int depth = 0;  // 0 for the constant 0
};

/// Arena of hash-consed ground functional terms.
///
/// Thread-compatible: concurrent reads are fine once construction is done;
/// interleaved interning requires external synchronization.
class TermInterner {
 public:
  TermInterner();

  /// The functional constant 0.
  TermId Zero() const { return kZeroTerm; }

  /// Interns fn(child) for a pure symbol, or fn(child, args...) for a mixed
  /// symbol. `args` must match the symbol's arity - 1.
  TermId Apply(FuncId fn, TermId child, std::span<const ConstId> args = {});
  TermId Apply(FuncId fn, TermId child, std::initializer_list<ConstId> args) {
    return Apply(fn, child,
                 std::span<const ConstId>(args.begin(), args.size()));
  }

  /// Interns the pure term fns[n-1](...fns[0](0)...), i.e. applies the
  /// symbols innermost-first.
  TermId FromSymbols(std::span<const FuncId> fns);

  /// Read-only lookup: the id of fns[n-1](...fns[0](0)...) if that term is
  /// already interned, kInvalidId otherwise. Never allocates.
  TermId FindSymbols(std::span<const FuncId> fns) const;

  TermNode node(TermId id) const {
    const Node& n = nodes_[id];
    return TermNode{n.fn, n.child,
                    std::span<const ConstId>(args_pool_.data() + n.args_begin,
                                             n.args_len),
                    n.depth};
  }
  int Depth(TermId id) const { return nodes_[id].depth; }
  bool IsZero(TermId id) const { return id == kZeroTerm; }
  /// True if no mixed symbol occurs in the term.
  bool IsPure(TermId id) const;

  /// The outermost-to-innermost chain of pure symbols; fails on mixed terms.
  StatusOr<std::vector<FuncId>> ToSymbols(TermId id) const;

  /// Textual form, e.g. "f(g(0))" or "ext(0,a)"; needs the symbol table for
  /// names.
  std::string ToString(TermId id, const SymbolTable& symbols) const;

  size_t size() const { return nodes_.size(); }

  /// Approximate heap footprint of the arena (nodes, argument pool, intern
  /// table) in bytes.
  size_t ApproxBytes() const;

  /// Apply calls that found an existing node / created a new one.
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  /// Publishes interner.* metrics (terms, hits, misses, bytes). No-op while
  /// metrics are disabled.
  void RecordMetrics() const;

 private:
  struct Node {
    FuncId fn = kInvalidId;
    TermId child = kZeroTerm;
    uint32_t args_begin = 0;
    uint32_t args_len = 0;
    int32_t depth = 0;
  };

  static uint64_t HashKey(FuncId fn, TermId child,
                          std::span<const ConstId> args);
  bool NodeEquals(TermId id, FuncId fn, TermId child,
                  std::span<const ConstId> args) const;
  /// Probes the intern table for (fn, child, args); returns the matching id
  /// or kInvalidId, and the slot where an insert would go.
  TermId Probe(uint64_t hash, FuncId fn, TermId child,
               std::span<const ConstId> args, size_t* slot) const;
  void Grow();

  std::vector<Node> nodes_;
  std::vector<ConstId> args_pool_;
  std::vector<uint64_t> hash_of_;  // structural hash per node
  // Open-addressing intern table: power-of-two sized, kInvalidId = empty.
  std::vector<TermId> slots_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace relspec

#endif  // RELSPEC_TERM_INTERNER_H_
