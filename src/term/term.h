// TermArena: hash-consed ground functional terms.
//
// Ground functional terms (Section 2.1 of the paper) are built from the
// functional constant 0 by applying pure (unary) function symbols and mixed
// (k-ary) function symbols whose remaining arguments are non-functional
// constants. The arena interns every distinct term exactly once, so terms
// are identified by a dense TermId, structural equality is id equality, and
// no manual memory management of term graphs is needed anywhere else.
//
// The implementation is the flat-arena TermInterner; this header keeps the
// original name for the many call sites that predate it.

#ifndef RELSPEC_TERM_TERM_H_
#define RELSPEC_TERM_TERM_H_

#include "src/term/interner.h"

namespace relspec {

using TermArena = TermInterner;

}  // namespace relspec

#endif  // RELSPEC_TERM_TERM_H_
