// TermArena: hash-consed ground functional terms.
//
// Ground functional terms (Section 2.1 of the paper) are built from the
// functional constant 0 by applying pure (unary) function symbols and mixed
// (k-ary) function symbols whose remaining arguments are non-functional
// constants. The arena interns every distinct term exactly once, so terms
// are identified by a dense TermId, structural equality is id equality, and
// no manual memory management of term graphs is needed anywhere else.

#ifndef RELSPEC_TERM_TERM_H_
#define RELSPEC_TERM_TERM_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/term/symbol_table.h"

namespace relspec {

using TermId = uint32_t;

/// The id of the functional constant 0; present in every arena.
inline constexpr TermId kZeroTerm = 0;

/// One interned term node: fn applied to child, with the mixed symbol's
/// non-functional constant arguments in args (empty for pure symbols).
struct TermNode {
  FuncId fn = kInvalidId;        // kInvalidId only for the constant 0
  TermId child = kZeroTerm;
  std::vector<ConstId> args;
  int depth = 0;                 // 0 for the constant 0
};

/// Arena of hash-consed ground functional terms.
///
/// Thread-compatible: concurrent reads are fine once construction is done;
/// interleaved interning requires external synchronization.
class TermArena {
 public:
  TermArena();

  /// The functional constant 0.
  TermId Zero() const { return kZeroTerm; }

  /// Interns fn(child) for a pure symbol, or fn(child, args...) for a mixed
  /// symbol. `args` must match the symbol's arity - 1.
  TermId Apply(FuncId fn, TermId child, std::vector<ConstId> args = {});

  /// Interns the pure term fns[n-1](...fns[0](0)...), i.e. applies the
  /// symbols innermost-first.
  TermId FromSymbols(const std::vector<FuncId>& fns);

  const TermNode& node(TermId id) const { return nodes_[id]; }
  int Depth(TermId id) const { return nodes_[id].depth; }
  bool IsZero(TermId id) const { return id == kZeroTerm; }
  /// True if no mixed symbol occurs in the term.
  bool IsPure(TermId id) const;

  /// The outermost-to-innermost chain of pure symbols; fails on mixed terms.
  StatusOr<std::vector<FuncId>> ToSymbols(TermId id) const;

  /// Textual form, e.g. "f(g(0))" or "ext(0,a)"; needs the symbol table for
  /// names.
  std::string ToString(TermId id, const SymbolTable& symbols) const;

  size_t size() const { return nodes_.size(); }

 private:
  struct NodeKey {
    FuncId fn;
    TermId child;
    std::vector<ConstId> args;
    bool operator==(const NodeKey& o) const {
      return fn == o.fn && child == o.child && args == o.args;
    }
  };
  struct NodeKeyHash {
    size_t operator()(const NodeKey& k) const {
      uint64_t h = 1469598103934665603ull;
      auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
      };
      mix(k.fn);
      mix(k.child);
      for (ConstId a : k.args) mix(a);
      return static_cast<size_t>(h);
    }
  };

  std::vector<TermNode> nodes_;
  std::unordered_map<NodeKey, TermId, NodeKeyHash> index_;
};

}  // namespace relspec

#endif  // RELSPEC_TERM_TERM_H_
