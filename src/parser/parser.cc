#include "src/parser/parser.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/ast/printer.h"
#include "src/ast/validate.h"
#include "src/base/metrics.h"
#include "src/base/str_util.h"
#include "src/parser/lexer.h"

namespace relspec {
namespace {

// Maximum numeral allowed in a functional position ("Meets(100,...)"
// expands to 100 successor applications).
constexpr long kMaxFunctionalNumeral = 1000000;

// Maximum nesting depth of a term. ParseTerm/ParsePrimary (and later the
// Lowerer and the STerm destructor) recurse once per nesting level, so an
// adversarial input like f(f(f(...))) would otherwise overflow the stack;
// the guard turns it into InvalidArgument. The value must leave headroom
// under sanitizer builds, whose padded frames are several times larger
// than release frames on the default 8 MB stack (the ASan suite runs the
// deep-nesting regression test). Real programs nest a handful of levels;
// numerals like t+1000000 parse iteratively and are not limited by this.
constexpr int kMaxTermDepth = 1000;

// ---------- Surface representation (pass 1) ----------

struct STerm {
  enum class Kind { kIdent, kApply, kNumeral };
  Kind kind = Kind::kIdent;
  std::string name;         // kIdent / kApply
  std::vector<STerm> args;  // kApply
  long numeral = 0;         // kNumeral
  int plus = 0;             // number of '+n' successor wraps
  int line = 0, column = 0;
};

struct SAtom {
  std::string pred;
  std::vector<STerm> args;
  int line = 0, column = 0;
};

enum class StatementKind { kFact, kRule, kQuery };

struct Statement {
  StatementKind kind = StatementKind::kFact;
  std::vector<SAtom> body;                // rule body / query atoms
  SAtom head;                             // fact or rule head
  std::vector<std::string> answer_vars;   // query only
  bool explicit_answer_vars = false;
  int line = 0;
};

/// True if `name` is a variable under the paper's convention: a lowercase
/// letter from the end of the alphabet (s..z), optionally followed by digits
/// or primes.
bool IsVariableName(std::string_view name) {
  if (name.empty()) return false;
  char c = name[0];
  if (c < 's' || c > 'z') return false;
  for (size_t i = 1; i < name.size(); ++i) {
    char d = name[i];
    if (!(d >= '0' && d <= '9') && d != '\'') return false;
  }
  return true;
}

// ---------- Token-stream parser ----------

class TokenParser {
 public:
  explicit TokenParser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<std::vector<Statement>> ParseStatements() {
    std::vector<Statement> out;
    while (Peek().kind != TokenKind::kEof) {
      RELSPEC_ASSIGN_OR_RETURN(Statement stmt, ParseStatement());
      out.push_back(std::move(stmt));
    }
    return out;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Next() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  Status Expect(TokenKind kind) {
    const Token& t = Next();
    if (t.kind != kind) {
      return Status::InvalidArgument(
          StrFormat("line %d:%d: expected %s, found %s", t.line, t.column,
                    TokenKindName(kind), TokenKindName(t.kind)));
    }
    return Status::OK();
  }

  StatusOr<Statement> ParseStatement() {
    Statement stmt;
    stmt.line = Peek().line;
    if (Peek().kind == TokenKind::kQuestion) {
      Next();
      stmt.kind = StatementKind::kQuery;
      if (Peek().kind == TokenKind::kLParen) {
        Next();
        stmt.explicit_answer_vars = true;
        while (true) {
          const Token& t = Next();
          if (t.kind != TokenKind::kIdent) {
            return Status::InvalidArgument(
                StrFormat("line %d:%d: expected a variable in the query "
                          "answer list", t.line, t.column));
          }
          stmt.answer_vars.push_back(t.text);
          if (Peek().kind == TokenKind::kComma) {
            Next();
            continue;
          }
          break;
        }
        RELSPEC_RETURN_NOT_OK(Expect(TokenKind::kRParen));
      }
      RELSPEC_ASSIGN_OR_RETURN(stmt.body, ParseAtomList());
      RELSPEC_RETURN_NOT_OK(Expect(TokenKind::kDot));
      return stmt;
    }

    RELSPEC_ASSIGN_OR_RETURN(std::vector<SAtom> atoms, ParseAtomList());
    switch (Peek().kind) {
      case TokenKind::kDot:
        Next();
        if (atoms.size() != 1) {
          return Status::InvalidArgument(StrFormat(
              "line %d: a fact must be a single atom", stmt.line));
        }
        stmt.kind = StatementKind::kFact;
        stmt.head = std::move(atoms[0]);
        return stmt;
      case TokenKind::kArrow: {
        Next();
        RELSPEC_ASSIGN_OR_RETURN(SAtom head, ParseAtom());
        RELSPEC_RETURN_NOT_OK(Expect(TokenKind::kDot));
        stmt.kind = StatementKind::kRule;
        stmt.body = std::move(atoms);
        stmt.head = std::move(head);
        return stmt;
      }
      case TokenKind::kColonDash: {
        Next();
        if (atoms.size() != 1) {
          return Status::InvalidArgument(StrFormat(
              "line %d: ':-' must be preceded by a single head atom",
              stmt.line));
        }
        RELSPEC_ASSIGN_OR_RETURN(stmt.body, ParseAtomList());
        RELSPEC_RETURN_NOT_OK(Expect(TokenKind::kDot));
        stmt.kind = StatementKind::kRule;
        stmt.head = std::move(atoms[0]);
        return stmt;
      }
      default: {
        const Token& t = Peek();
        return Status::InvalidArgument(
            StrFormat("line %d:%d: expected '.', '->' or ':-', found %s",
                      t.line, t.column, TokenKindName(t.kind)));
      }
    }
  }

  StatusOr<std::vector<SAtom>> ParseAtomList() {
    std::vector<SAtom> out;
    while (true) {
      RELSPEC_ASSIGN_OR_RETURN(SAtom atom, ParseAtom());
      out.push_back(std::move(atom));
      if (Peek().kind == TokenKind::kComma) {
        Next();
        continue;
      }
      break;
    }
    return out;
  }

  StatusOr<SAtom> ParseAtom() {
    const Token& name = Next();
    if (name.kind != TokenKind::kIdent) {
      return Status::InvalidArgument(
          StrFormat("line %d:%d: expected a predicate name, found %s",
                    name.line, name.column, TokenKindName(name.kind)));
    }
    SAtom atom;
    atom.pred = name.text;
    atom.line = name.line;
    atom.column = name.column;
    if (Peek().kind == TokenKind::kLParen) {
      Next();
      while (true) {
        RELSPEC_ASSIGN_OR_RETURN(STerm term, ParseTerm());
        atom.args.push_back(std::move(term));
        if (Peek().kind == TokenKind::kComma) {
          Next();
          continue;
        }
        break;
      }
      RELSPEC_RETURN_NOT_OK(Expect(TokenKind::kRParen));
    }
    return atom;
  }

  StatusOr<STerm> ParseTerm() {
    if (term_depth_ >= kMaxTermDepth) {
      const Token& t = Peek();
      return Status::InvalidArgument(StrFormat(
          "line %d:%d: term nesting exceeds the maximum depth %d", t.line,
          t.column, kMaxTermDepth));
    }
    ++term_depth_;
    StatusOr<STerm> result = ParseTermGuarded();
    --term_depth_;
    return result;
  }

  StatusOr<STerm> ParseTermGuarded() {
    RELSPEC_ASSIGN_OR_RETURN(STerm term, ParsePrimary());
    while (Peek().kind == TokenKind::kPlus) {
      Next();
      const Token& n = Next();
      if (n.kind != TokenKind::kInteger) {
        return Status::InvalidArgument(StrFormat(
            "line %d:%d: expected an integer after '+'", n.line, n.column));
      }
      if (n.value < 0 || n.value > kMaxFunctionalNumeral) {
        return Status::InvalidArgument(StrFormat(
            "line %d:%d: successor increment %ld out of range", n.line,
            n.column, n.value));
      }
      term.plus += static_cast<int>(n.value);
    }
    return term;
  }

  StatusOr<STerm> ParsePrimary() {
    const Token& t = Next();
    STerm term;
    term.line = t.line;
    term.column = t.column;
    if (t.kind == TokenKind::kInteger) {
      term.kind = STerm::Kind::kNumeral;
      term.numeral = t.value;
      term.name = t.text;
      return term;
    }
    if (t.kind != TokenKind::kIdent) {
      return Status::InvalidArgument(
          StrFormat("line %d:%d: expected a term, found %s", t.line, t.column,
                    TokenKindName(t.kind)));
    }
    term.name = t.text;
    if (Peek().kind == TokenKind::kLParen) {
      Next();
      term.kind = STerm::Kind::kApply;
      while (true) {
        RELSPEC_ASSIGN_OR_RETURN(STerm arg, ParseTerm());
        term.args.push_back(std::move(arg));
        if (Peek().kind == TokenKind::kComma) {
          Next();
          continue;
        }
        break;
      }
      RELSPEC_RETURN_NOT_OK(Expect(TokenKind::kRParen));
    } else {
      term.kind = STerm::Kind::kIdent;
    }
    return term;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int term_depth_ = 0;
};

// ---------- Pass 2: functional inference + lowering ----------

// Decides which predicates are functional and lowers surface statements into
// the AST. Functionality is inferred to a fixpoint (see parser.h).
class Lowerer {
 public:
  explicit Lowerer(Program* program) : program_(program) {}

  Status InferFunctionalPredicates(const std::vector<Statement>& statements) {
    // Seed with predicates already known functional (ParseQuery case).
    for (PredId p = 0; p < program_->symbols.num_predicates(); ++p) {
      if (program_->symbols.predicate(p).functional) {
        functional_preds_.insert(program_->symbols.predicate(p).name);
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Statement& stmt : statements) {
        // Statement-local set of functional variables.
        std::set<std::string> func_vars;
        bool local_changed = true;
        while (local_changed) {
          local_changed = false;
          auto scan_atom = [&](const SAtom& atom) {
            if (atom.args.empty()) return;
            const STerm& a0 = atom.args[0];
            bool explicitly_functional =
                a0.kind == STerm::Kind::kNumeral ||
                a0.kind == STerm::Kind::kApply || a0.plus > 0;
            bool var_functional = a0.kind == STerm::Kind::kIdent &&
                                  IsVariableName(a0.name) &&
                                  func_vars.count(a0.name) > 0;
            if (explicitly_functional || var_functional) {
              if (functional_preds_.insert(atom.pred).second) changed = true;
            }
            if (functional_preds_.count(atom.pred) > 0 &&
                a0.kind == STerm::Kind::kIdent && IsVariableName(a0.name)) {
              if (func_vars.insert(a0.name).second) local_changed = true;
            }
            // The base of every function application chain is functional.
            MarkApplyBases(a0, &func_vars, &local_changed);
          };
          for (const SAtom& a : stmt.body) scan_atom(a);
          if (stmt.kind != StatementKind::kQuery) scan_atom(stmt.head);
        }
      }
    }
    return Status::OK();
  }

  StatusOr<Atom> LowerAtom(const SAtom& atom) {
    bool functional = functional_preds_.count(atom.pred) > 0;
    int arity = static_cast<int>(atom.args.size());
    RELSPEC_ASSIGN_OR_RETURN(
        PredId pred,
        program_->symbols.InternPredicate(atom.pred, arity, functional));
    Atom out;
    out.pred = pred;
    size_t first_nf = 0;
    if (functional) {
      if (atom.args.empty()) {
        return Status::InvalidArgument(StrFormat(
            "line %d: functional predicate '%s' needs a functional argument",
            atom.line, atom.pred.c_str()));
      }
      RELSPEC_ASSIGN_OR_RETURN(FuncTerm ft, LowerFuncTerm(atom.args[0]));
      out.fterm = std::move(ft);
      first_nf = 1;
    }
    for (size_t i = first_nf; i < atom.args.size(); ++i) {
      RELSPEC_ASSIGN_OR_RETURN(NfArg arg, LowerNfArg(atom.args[i]));
      out.args.push_back(arg);
    }
    return out;
  }

  StatusOr<FuncTerm> LowerFuncTerm(const STerm& term) {
    FuncTerm base;
    switch (term.kind) {
      case STerm::Kind::kNumeral: {
        if (term.numeral < 0 || term.numeral > kMaxFunctionalNumeral) {
          return Status::InvalidArgument(StrFormat(
              "line %d:%d: numeral %ld out of range for a functional term",
              term.line, term.column, term.numeral));
        }
        base = FuncTerm::Zero();
        if (term.numeral > 0) {
          RELSPEC_ASSIGN_OR_RETURN(FuncId succ, SuccessorSymbol());
          for (long i = 0; i < term.numeral; ++i) {
            base.apps.push_back(FuncApply{succ, {}});
          }
        }
        break;
      }
      case STerm::Kind::kIdent: {
        if (!IsVariableName(term.name)) {
          return Status::InvalidArgument(StrFormat(
              "line %d:%d: '%s' appears in a functional position but is not "
              "a variable or a numeral (variables are s..z[0-9']*)",
              term.line, term.column, term.name.c_str()));
        }
        base = FuncTerm::Var(program_->symbols.InternVariable(term.name));
        func_vars_.insert(term.name);
        if (nf_vars_.count(term.name) > 0) {
          return Status::InvalidArgument(StrFormat(
              "line %d:%d: variable '%s' is used both functionally and "
              "non-functionally", term.line, term.column, term.name.c_str()));
        }
        break;
      }
      case STerm::Kind::kApply: {
        RELSPEC_ASSIGN_OR_RETURN(base, LowerFuncTerm(term.args[0]));
        int arity = static_cast<int>(term.args.size());
        RELSPEC_ASSIGN_OR_RETURN(
            FuncId fn, program_->symbols.InternFunction(term.name, arity));
        std::vector<NfArg> args;
        for (size_t i = 1; i < term.args.size(); ++i) {
          RELSPEC_ASSIGN_OR_RETURN(NfArg arg, LowerNfArg(term.args[i]));
          args.push_back(arg);
        }
        base.apps.push_back(FuncApply{fn, std::move(args)});
        break;
      }
    }
    if (term.plus > 0) {
      RELSPEC_ASSIGN_OR_RETURN(FuncId succ, SuccessorSymbol());
      for (int i = 0; i < term.plus; ++i) {
        base.apps.push_back(FuncApply{succ, {}});
      }
    }
    return base;
  }

  StatusOr<NfArg> LowerNfArg(const STerm& term) {
    if (term.kind == STerm::Kind::kApply || term.plus > 0) {
      return Status::InvalidArgument(StrFormat(
          "line %d:%d: function symbols may only occur in the functional "
          "position (argument 0 of a functional predicate)",
          term.line, term.column));
    }
    if (term.kind == STerm::Kind::kNumeral) {
      return NfArg::Constant(program_->symbols.InternConstant(term.name));
    }
    if (IsVariableName(term.name)) {
      if (func_vars_.count(term.name) > 0) {
        return Status::InvalidArgument(StrFormat(
            "line %d:%d: variable '%s' is used both functionally and "
            "non-functionally", term.line, term.column, term.name.c_str()));
      }
      nf_vars_.insert(term.name);
      return NfArg::Variable(program_->symbols.InternVariable(term.name));
    }
    return NfArg::Constant(program_->symbols.InternConstant(term.name));
  }

  /// Resets the per-statement variable-kind tracking.
  void BeginStatement() {
    func_vars_.clear();
    nf_vars_.clear();
  }

 private:
  StatusOr<FuncId> SuccessorSymbol() {
    return program_->symbols.InternFunction(kSuccessorName, 1);
  }

  static void MarkApplyBases(const STerm& term, std::set<std::string>* func_vars,
                             bool* changed) {
    if (term.kind != STerm::Kind::kApply) {
      if (term.plus > 0 && term.kind == STerm::Kind::kIdent &&
          IsVariableName(term.name)) {
        if (func_vars->insert(term.name).second) *changed = true;
      }
      return;
    }
    const STerm* base = &term;
    while (base->kind == STerm::Kind::kApply) base = &base->args[0];
    if (base->kind == STerm::Kind::kIdent && IsVariableName(base->name)) {
      if (func_vars->insert(base->name).second) *changed = true;
    }
  }

  Program* program_;
  std::set<std::string> functional_preds_;
  // Per-statement variable kind tracking (reset by BeginStatement).
  std::set<std::string> func_vars_;
  std::set<std::string> nf_vars_;
};

StatusOr<Query> LowerQuery(Lowerer* lowerer, const Statement& stmt,
                           Program* program) {
  lowerer->BeginStatement();
  Query query;
  std::vector<std::string> seen_vars;  // first-occurrence order
  for (const SAtom& satom : stmt.body) {
    RELSPEC_ASSIGN_OR_RETURN(Atom atom, lowerer->LowerAtom(satom));
    std::vector<VarId> nf;
    std::optional<VarId> fv;
    CollectVariables(atom, &nf, &fv);
    auto remember = [&](VarId v) {
      const std::string& name = program->symbols.variable_name(v);
      if (std::find(seen_vars.begin(), seen_vars.end(), name) ==
          seen_vars.end()) {
        seen_vars.push_back(name);
      }
    };
    if (fv.has_value()) remember(*fv);
    for (VarId v : nf) remember(v);
    query.atoms.push_back(std::move(atom));
  }
  if (stmt.explicit_answer_vars) {
    for (const std::string& name : stmt.answer_vars) {
      query.answer_vars.push_back(program->symbols.InternVariable(name));
    }
  } else {
    for (const std::string& name : seen_vars) {
      query.answer_vars.push_back(program->symbols.InternVariable(name));
    }
  }
  RELSPEC_RETURN_NOT_OK(ValidateQuery(query, program->symbols));
  return query;
}

}  // namespace

namespace {

StatusOr<ParseResult> ParseSeeded(std::string_view input, SymbolTable seed) {
  RELSPEC_PHASE("parse");
  RELSPEC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  TokenParser tp(std::move(tokens));
  RELSPEC_ASSIGN_OR_RETURN(std::vector<Statement> statements,
                           tp.ParseStatements());

  ParseResult result;
  result.program.symbols = std::move(seed);
  Lowerer lowerer(&result.program);
  RELSPEC_RETURN_NOT_OK(lowerer.InferFunctionalPredicates(statements));
  for (const Statement& stmt : statements) {
    switch (stmt.kind) {
      case StatementKind::kFact: {
        lowerer.BeginStatement();
        RELSPEC_ASSIGN_OR_RETURN(Atom fact, lowerer.LowerAtom(stmt.head));
        if (!fact.IsGround()) {
          return Status::InvalidArgument(StrFormat(
              "line %d: database fact is not ground: %s", stmt.line,
              ToString(fact, result.program.symbols).c_str()));
        }
        result.program.facts.push_back(std::move(fact));
        break;
      }
      case StatementKind::kRule: {
        lowerer.BeginStatement();
        Rule rule;
        for (const SAtom& a : stmt.body) {
          RELSPEC_ASSIGN_OR_RETURN(Atom atom, lowerer.LowerAtom(a));
          rule.body.push_back(std::move(atom));
        }
        RELSPEC_ASSIGN_OR_RETURN(rule.head, lowerer.LowerAtom(stmt.head));
        result.program.rules.push_back(std::move(rule));
        break;
      }
      case StatementKind::kQuery: {
        RELSPEC_ASSIGN_OR_RETURN(
            Query q, LowerQuery(&lowerer, stmt, &result.program));
        result.queries.push_back(std::move(q));
        break;
      }
    }
  }
  RELSPEC_RETURN_NOT_OK(ValidateProgram(result.program));
  return result;
}

}  // namespace

StatusOr<ParseResult> Parse(std::string_view input) {
  return ParseSeeded(input, SymbolTable());
}

StatusOr<Program> ParseProgram(std::string_view input) {
  RELSPEC_ASSIGN_OR_RETURN(ParseResult result, Parse(input));
  return std::move(result.program);
}

StatusOr<Program> ParseProgram(std::string_view input,
                               SymbolTable seed_symbols) {
  RELSPEC_ASSIGN_OR_RETURN(ParseResult result,
                           ParseSeeded(input, std::move(seed_symbols)));
  return std::move(result.program);
}

StatusOr<Query> ParseQuery(std::string_view input, Program* program) {
  RELSPEC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  TokenParser tp(std::move(tokens));
  RELSPEC_ASSIGN_OR_RETURN(std::vector<Statement> statements,
                           tp.ParseStatements());
  if (statements.size() != 1 || statements[0].kind != StatementKind::kQuery) {
    return Status::InvalidArgument("expected exactly one query statement");
  }
  // Only predicates already present may be mentioned; record the current
  // count so we can detect accidental introductions.
  size_t num_preds_before = program->symbols.num_predicates();
  Lowerer lowerer(program);
  RELSPEC_RETURN_NOT_OK(lowerer.InferFunctionalPredicates(statements));
  RELSPEC_ASSIGN_OR_RETURN(Query q, LowerQuery(&lowerer, statements[0], program));
  if (program->symbols.num_predicates() != num_preds_before) {
    return Status::InvalidArgument(
        "query mentions a predicate that does not occur in the program");
  }
  return q;
}

}  // namespace relspec
