#include "src/parser/lexer.h"

#include <cctype>

#include "src/base/str_util.h"

namespace relspec {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kInteger: return "integer";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kArrow: return "'->'";
    case TokenKind::kColonDash: return "':-'";
    case TokenKind::kQuestion: return "'?'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kEquals: return "'='";
    case TokenKind::kEof: return "end of input";
  }
  return "?";
}

StatusOr<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> out;
  int line = 1;
  int col = 1;
  size_t i = 0;
  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n; ++k) {
      if (input[i + k] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    i += n;
  };
  while (i < input.size()) {
    char c = input[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    if (c == '%' || (c == '/' && i + 1 < input.size() && input[i + 1] == '/')) {
      while (i < input.size() && input[i] != '\n') advance(1);
      continue;
    }
    Token tok;
    tok.line = line;
    tok.column = col;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[j])) ||
              input[j] == '_' || input[j] == '\'')) {
        ++j;
      }
      tok.kind = TokenKind::kIdent;
      tok.text = std::string(input.substr(i, j - i));
      advance(j - i);
      out.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < input.size() && std::isdigit(static_cast<unsigned char>(input[j]))) {
        ++j;
      }
      tok.kind = TokenKind::kInteger;
      tok.text = std::string(input.substr(i, j - i));
      tok.value = std::stol(tok.text);
      advance(j - i);
      out.push_back(std::move(tok));
      continue;
    }
    switch (c) {
      case '(': tok.kind = TokenKind::kLParen; advance(1); break;
      case ')': tok.kind = TokenKind::kRParen; advance(1); break;
      case ',': tok.kind = TokenKind::kComma; advance(1); break;
      case '.': tok.kind = TokenKind::kDot; advance(1); break;
      case '?': tok.kind = TokenKind::kQuestion; advance(1); break;
      case '+': tok.kind = TokenKind::kPlus; advance(1); break;
      case '=': tok.kind = TokenKind::kEquals; advance(1); break;
      case '-':
        if (i + 1 < input.size() && input[i + 1] == '>') {
          tok.kind = TokenKind::kArrow;
          advance(2);
          break;
        }
        return Status::InvalidArgument(
            StrFormat("line %d:%d: unexpected character '-'", line, col));
      case ':':
        if (i + 1 < input.size() && input[i + 1] == '-') {
          tok.kind = TokenKind::kColonDash;
          advance(2);
          break;
        }
        return Status::InvalidArgument(
            StrFormat("line %d:%d: unexpected character ':'", line, col));
      default:
        return Status::InvalidArgument(
            StrFormat("line %d:%d: unexpected character '%c'", line, col, c));
    }
    out.push_back(std::move(tok));
  }
  Token eof;
  eof.kind = TokenKind::kEof;
  eof.line = line;
  eof.column = col;
  out.push_back(eof);
  return out;
}

}  // namespace relspec
