// Parser for the relspec surface language.
//
// Grammar (statements end with '.'):
//
//   fact    :=  atom '.'
//   rule    :=  atom {',' atom} '->' atom '.'        // paper style
//            |  atom ':-' atom {',' atom} '.'        // Prolog style
//   query   :=  '?' atom {',' atom} '.'              // all variables free
//            |  '?' '(' var {',' var} ')' atom {',' atom} '.'
//   atom    :=  IDENT [ '(' term {',' term} ')' ]
//   term    :=  IDENT                                // variable or constant
//            |  IDENT '(' term {',' term} ')'        // function application
//            |  INTEGER                              // 0, or +1^n(0) sugar
//            |  term '+' INTEGER                     // successor sugar
//
// Conventions (match the paper, Section 2.1):
//  * identifiers matching [s-z][0-9']* are variables (x, y, s, t, x1, s');
//    every other identifier in argument position is a constant;
//  * the functional position of a functional predicate is argument 0;
//  * whether a predicate is functional is inferred: an arg-0 expression that
//    is an integer, a function application or a '+'-term makes the predicate
//    functional, and functionality propagates through shared variables to a
//    fixpoint; inconsistent use is an error;
//  * 'n' in a functional position denotes the n-fold application of the
//    builtin successor symbol "+1" to 0; 't+n' applies "+1" n times to t.
//
// Comments run from '%' or '//' to end of line.

#ifndef RELSPEC_PARSER_PARSER_H_
#define RELSPEC_PARSER_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/ast/ast.h"
#include "src/base/status.h"

namespace relspec {

/// A parsed source file: the program (facts + rules) and the queries, in
/// source order.
struct ParseResult {
  Program program;
  std::vector<Query> queries;
};

/// Parses a complete source text and validates the resulting program.
StatusOr<ParseResult> Parse(std::string_view input);

/// Parses a source text that must contain exactly one program (queries
/// allowed but dropped). Convenience for tests and examples.
StatusOr<Program> ParseProgram(std::string_view input);

/// Like ParseProgram, but interning into `seed_symbols` (moved in): names
/// already present keep their ids, and nothing in the seed is renumbered.
/// Symbol ids are assigned by first appearance, so a program rendered with
/// ToString does not generally re-parse to the engine's historical interning
/// order (facts move under delete/re-insert, and noop edits intern symbols
/// no surviving fact mentions). Durable checkpoint recovery (src/core/wal.h)
/// stores the engine's table and seeds the re-parse with it so the rebuilt
/// engine is byte-identical.
StatusOr<Program> ParseProgram(std::string_view input,
                               SymbolTable seed_symbols);

/// Parses a single query against an existing program's symbol table. The
/// query may mention only predicates already present in the program.
StatusOr<Query> ParseQuery(std::string_view input, Program* program);

/// Name of the builtin successor function symbol used by numeral sugar.
inline constexpr std::string_view kSuccessorName = "+1";

}  // namespace relspec

#endif  // RELSPEC_PARSER_PARSER_H_
