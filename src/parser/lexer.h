// Tokenizer for the relspec surface language (see parser.h for the grammar).

#ifndef RELSPEC_PARSER_LEXER_H_
#define RELSPEC_PARSER_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"

namespace relspec {

enum class TokenKind {
  kIdent,      // Meets, tony, ext, x
  kInteger,    // 0, 42
  kLParen,     // (
  kRParen,     // )
  kComma,      // ,
  kDot,        // .
  kArrow,      // ->
  kColonDash,  // :-
  kQuestion,   // ?
  kPlus,       // +
  kEquals,     // =
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  long value = 0;  // for kInteger
  int line = 1;
  int column = 1;
};

const char* TokenKindName(TokenKind kind);

/// Tokenizes `input`. Comments run from '%' or "//" to end of line.
StatusOr<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace relspec

#endif  // RELSPEC_PARSER_LEXER_H_
