// Disjoint-set forest with path compression and union by rank.

#ifndef RELSPEC_CC_UNION_FIND_H_
#define RELSPEC_CC_UNION_FIND_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace relspec {

/// Union-find over dense uint32 ids. Ids are added implicitly: any id below
/// `size()` is a member; EnsureSize grows the universe.
class UnionFind {
 public:
  UnionFind() = default;
  explicit UnionFind(size_t n) { EnsureSize(n); }

  /// Grows the universe so ids [0, n) are valid, each initially its own set.
  void EnsureSize(size_t n);

  size_t size() const { return parent_.size(); }

  /// Representative of x's set.
  uint32_t Find(uint32_t x);

  /// Merges the sets of a and b; returns the surviving root, or the common
  /// root if they were already merged.
  uint32_t Union(uint32_t a, uint32_t b);

  bool Same(uint32_t a, uint32_t b) { return Find(a) == Find(b); }

  /// Number of distinct sets.
  size_t NumSets() const { return num_sets_; }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint8_t> rank_;
  size_t num_sets_ = 0;
};

}  // namespace relspec

#endif  // RELSPEC_CC_UNION_FIND_H_
