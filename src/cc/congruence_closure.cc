#include "src/cc/congruence_closure.h"

#include <unordered_set>

#include "src/base/failpoint.h"
#include "src/base/governor.h"
#include "src/base/logging.h"
#include "src/base/metrics.h"
#include "src/base/str_util.h"

namespace relspec {

void CongruenceClosure::AddTerm(TermId t) {
  if (t < known_bits_.size() && known_bits_[t]) return;
  // Walk down to the first known subterm, then add bottom-up.
  std::vector<TermId> chain;
  TermId cur = t;
  while (true) {
    bool is_known = cur < known_bits_.size() && known_bits_[cur];
    if (is_known) break;
    chain.push_back(cur);
    if (cur == kZeroTerm) break;
    cur = arena_->node(cur).child;
  }
  RELSPEC_COUNTER_ADD("cc.terms_added", chain.size());
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    TermId u = *it;
    if (known_bits_.size() <= u) known_bits_.resize(u + 1, false);
    known_bits_[u] = true;
    known_.push_back(u);
    uf_.EnsureSize(u + 1);
    if (u == kZeroTerm) continue;
    // Register u under its signature; if an equal-signature term exists,
    // u joins its class immediately.
    Signature sig = SignatureOf(u);
    parents_[sig.child_root].push_back(u);
    auto [sit, inserted] = signatures_.emplace(sig, u);
    if (!inserted && !uf_.Same(sit->second, u)) {
      pending_.push_back(Pending{sit->second, u, /*congruence=*/true});
      DrainPending();
    }
  }
}

CongruenceClosure::Signature CongruenceClosure::SignatureOf(TermId t) {
  TermNode n = arena_->node(t);
  return Signature{n.fn, uf_.Find(n.child),
                   std::vector<ConstId>(n.args.begin(), n.args.end())};
}

void CongruenceClosure::Merge(TermId a, TermId b) {
  RELSPEC_COUNTER("cc.merges");
  AddTerm(a);
  AddTerm(b);
  pending_.push_back(Pending{a, b, /*congruence=*/false});
  DrainPending();
}

bool CongruenceClosure::AreCongruent(TermId a, TermId b) {
  RELSPEC_COUNTER("cc.congruence_checks");
  AddTerm(a);
  AddTerm(b);
  return uf_.Same(a, b);
}

TermId CongruenceClosure::Find(TermId t) {
  AddTerm(t);
  return uf_.Find(t);
}

size_t CongruenceClosure::NumClasses() {
  size_t n = 0;
  for (TermId t : known_) {
    if (uf_.Find(t) == t) ++n;
  }
  return n;
}

void CongruenceClosure::DrainPending() {
  if (pending_.empty()) return;  // keep no-op calls out of the event trace
  RELSPEC_PHASE("cc.drain");
  RELSPEC_GAUGE_MAX("cc.pending_peak", pending_.size());
  while (!pending_.empty()) {
    // Sticky interrupt: once a breach is recorded, queued consequences stay
    // queued — the closure under-approximates Cl(R) from then on.
    if (!interrupt_.ok()) return;
    {
      Status st;
      if (failpoint::Active()) st = failpoint::Evaluate("cc.drain");
      if (st.ok() && governor_ != nullptr) st = governor_->Check();
      if (!st.ok()) {
        interrupt_ = std::move(st);
        return;
      }
    }
    RELSPEC_COUNTER("cc.pending_processed");
    Pending p = pending_.back();
    TermId a = p.a;
    TermId b = p.b;
    pending_.pop_back();
    uint32_t ra = uf_.Find(a);
    uint32_t rb = uf_.Find(b);
    if (ra == rb) continue;
    AddProofEdge(a, b, p.congruence);
    uint32_t merged = uf_.Union(ra, rb);
    ++num_unions_;
    uint32_t absorbed = merged == ra ? rb : ra;
    // Every parent of the absorbed class gets a new signature rooted at the
    // merged class; collisions detected there queue further merges.
    PropagateFrom(absorbed);
    parents_.erase(absorbed);
    RELSPEC_GAUGE_MAX("cc.pending_peak", pending_.size());
  }
}

void CongruenceClosure::PropagateFrom(uint32_t root) {
  // Re-hash every application whose child class just changed; collisions in
  // the signature table are exactly the congruence consequences.
  auto it = parents_.find(root);
  if (it == parents_.end()) return;
  std::vector<TermId> apps = it->second;  // copy: the map mutates below
  for (TermId app : apps) {
    Signature sig = SignatureOf(app);
    if (sig.child_root != root) {
      // The class was absorbed elsewhere; re-file the parent.
      parents_[sig.child_root].push_back(app);
    }
    auto [sit, inserted] = signatures_.emplace(sig, app);
    if (!inserted && !uf_.Same(sit->second, app)) {
      pending_.push_back(Pending{sit->second, app, /*congruence=*/true});
    }
  }
}

void CongruenceClosure::AddProofEdge(TermId a, TermId b, bool congruence) {
  // Reverse the path from a to its proof-forest root so a becomes the root
  // of its tree, then hang a below b.
  std::vector<std::pair<TermId, std::pair<TermId, bool>>> path;
  TermId cur = a;
  while (true) {
    auto it = proof_parent_.find(cur);
    if (it == proof_parent_.end()) break;
    path.emplace_back(cur, it->second);
    cur = it->second.first;
  }
  for (const auto& [node, edge] : path) proof_parent_.erase(node);
  for (const auto& [node, edge] : path) {
    proof_parent_[edge.first] = {node, edge.second};
  }
  proof_parent_[a] = {b, congruence};
}

StatusOr<EqProof> CongruenceClosure::Explain(TermId a, TermId b) {
  AddTerm(a);
  AddTerm(b);
  if (!uf_.Same(a, b)) {
    return Status::NotFound("terms are not congruent");
  }
  EqProof proof;
  proof.lhs = a;
  proof.rhs = b;
  if (a == b) return proof;

  // Nearest common ancestor in the (shared) proof tree.
  std::unordered_map<TermId, size_t> a_order;
  {
    TermId cur = a;
    size_t i = 0;
    a_order.emplace(cur, i++);
    auto it = proof_parent_.find(cur);
    while (it != proof_parent_.end()) {
      cur = it->second.first;
      a_order.emplace(cur, i++);
      it = proof_parent_.find(cur);
    }
  }
  TermId lca = b;
  while (a_order.count(lca) == 0) {
    auto it = proof_parent_.find(lca);
    if (it == proof_parent_.end()) {
      return Status::Internal("proof forest lost the connection");
    }
    lca = it->second.first;
  }

  auto make_step = [this](TermId u, TermId v, bool congruence,
                          bool flipped) -> StatusOr<EqStep> {
    EqStep step;
    step.asserted = !congruence;
    step.lhs = flipped ? v : u;
    step.rhs = flipped ? u : v;
    if (congruence) {
      // Signatures matched: same symbol, same arguments, congruent children.
      RELSPEC_ASSIGN_OR_RETURN(
          EqProof sub,
          Explain(arena_->node(step.lhs).child, arena_->node(step.rhs).child));
      step.premises.push_back(std::move(sub));
    }
    return step;
  };

  // Edges a -> lca, in order.
  for (TermId cur = a; cur != lca;) {
    const auto& edge = proof_parent_.at(cur);
    RELSPEC_ASSIGN_OR_RETURN(EqStep step,
                             make_step(cur, edge.first, edge.second, false));
    proof.steps.push_back(std::move(step));
    cur = edge.first;
  }
  // Edges b -> lca, flipped and reversed so the chain runs lca -> b.
  std::vector<EqStep> tail;
  for (TermId cur = b; cur != lca;) {
    const auto& edge = proof_parent_.at(cur);
    RELSPEC_ASSIGN_OR_RETURN(EqStep step,
                             make_step(cur, edge.first, edge.second, true));
    tail.push_back(std::move(step));
    cur = edge.first;
  }
  for (auto it = tail.rbegin(); it != tail.rend(); ++it) {
    proof.steps.push_back(std::move(*it));
  }
  return proof;
}

void EqProof::CollectAsserted(
    std::vector<std::pair<TermId, TermId>>* out) const {
  for (const EqStep& step : steps) {
    if (step.asserted) {
      out->emplace_back(step.lhs, step.rhs);
    } else {
      for (const EqProof& premise : step.premises) {
        premise.CollectAsserted(out);
      }
    }
  }
}

size_t EqProof::NumSteps() const {
  size_t n = steps.size();
  for (const EqStep& step : steps) {
    for (const EqProof& premise : step.premises) n += premise.NumSteps();
  }
  return n;
}

std::string EqProof::ToString(const TermArena& arena,
                              const SymbolTable& symbols, int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad + arena.ToString(lhs, symbols) +
                    " == " + arena.ToString(rhs, symbols) + "\n";
  for (const EqStep& step : steps) {
    out += pad + "  " + arena.ToString(step.lhs, symbols) +
           " == " + arena.ToString(step.rhs, symbols) +
           (step.asserted ? "   [asserted]" : "   [congruence]") + "\n";
    for (const EqProof& premise : step.premises) {
      out += premise.ToString(arena, symbols, indent + 2);
    }
  }
  return out;
}

}  // namespace relspec
