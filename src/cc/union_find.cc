#include "src/cc/union_find.h"

#include "src/base/metrics.h"

namespace relspec {

void UnionFind::EnsureSize(size_t n) {
  while (parent_.size() < n) {
    parent_.push_back(static_cast<uint32_t>(parent_.size()));
    rank_.push_back(0);
    ++num_sets_;
  }
}

uint32_t UnionFind::Find(uint32_t x) {
  RELSPEC_COUNTER("uf.finds");
  uint32_t root = x;
  while (parent_[root] != root) root = parent_[root];
  uint32_t compressed = 0;
  while (parent_[x] != root) {
    uint32_t next = parent_[x];
    parent_[x] = root;
    ++compressed;
    x = next;
  }
  if (compressed > 0) RELSPEC_COUNTER_ADD("uf.path_compressions", compressed);
  return root;
}

uint32_t UnionFind::Union(uint32_t a, uint32_t b) {
  uint32_t ra = Find(a);
  uint32_t rb = Find(b);
  if (ra == rb) return ra;
  RELSPEC_COUNTER("uf.unions");
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  --num_sets_;
  return ra;
}

}  // namespace relspec
