// Congruence closure over ground functional terms, after Downey, Sethi and
// Tarjan [DST80] (signature hashing + union-find).
//
// This is the decision procedure for the equational specifications of
// Section 3.5: given the finite relation R, the test (t0, t) in Cl(R) is the
// ground word problem "R |- t0 = t", which congruence closure over the
// subterm-closed set of R ∪ {t0, t} decides soundly and completely.

#ifndef RELSPEC_CC_CONGRUENCE_CLOSURE_H_
#define RELSPEC_CC_CONGRUENCE_CLOSURE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/cc/union_find.h"
#include "src/term/term.h"

namespace relspec {

class ResourceGovernor;
struct EqProof;

/// One step of an equality chain: lhs == rhs either because it was asserted
/// (an equation of R) or by congruence from the sub-proof that the terms'
/// children are equal (their non-functional arguments are syntactically
/// identical whenever signatures matched).
struct EqStep {
  bool asserted = true;
  TermId lhs = kZeroTerm;
  TermId rhs = kZeroTerm;
  std::vector<EqProof> premises;  // congruence steps only
};

/// A proof that lhs == rhs: a chain of steps, each sharing an endpoint with
/// the next (lhs = t0 == t1 == ... == tn = rhs).
struct EqProof {
  TermId lhs = kZeroTerm;
  TermId rhs = kZeroTerm;
  std::vector<EqStep> steps;

  /// Appends every asserted equation used anywhere in the proof (with
  /// repetition, in use order).
  void CollectAsserted(std::vector<std::pair<TermId, TermId>>* out) const;
  /// Total asserted + congruence steps.
  size_t NumSteps() const;
  std::string ToString(const TermArena& arena, const SymbolTable& symbols,
                       int indent = 0) const;
};

/// Incremental congruence closure: assert ground equations with Merge and
/// test with AreCongruent. Terms live in an external TermArena; new terms may
/// be interned at any time and enter the closure lazily.
class CongruenceClosure {
 public:
  /// The arena must outlive the closure.
  explicit CongruenceClosure(const TermArena* arena) : arena_(arena) {}

  /// Asserts a == b (and, transitively, the congruence consequences
  /// f(a) == f(b) for every known parent application).
  void Merge(TermId a, TermId b);

  /// True iff a == b follows from the asserted equations by reflexivity,
  /// symmetry, transitivity and congruence.
  bool AreCongruent(TermId a, TermId b);

  /// The representative of t's congruence class (stable between Merges).
  TermId Find(TermId t);

  /// A proof of a == b from the asserted equations (Nelson–Oppen style
  /// proof forest). NotFound if the terms are not congruent.
  StatusOr<EqProof> Explain(TermId a, TermId b);

  /// Number of congruence classes among the terms added so far.
  size_t NumClasses();

  /// Total terms known to the closure.
  size_t NumTerms() const { return known_.size(); }

  /// Number of union operations performed (for benchmarking).
  size_t num_unions() const { return num_unions_; }

  /// Optional resource governor, polled once per pending merge processed.
  /// Must outlive the closure.
  void set_governor(ResourceGovernor* g) { governor_ = g; }

  /// OK until a resource breach (or failpoint) interrupts DrainPending.
  /// Sticky: once set, further Merges stop propagating (queued consequences
  /// are retained but not applied), so AreCongruent under-approximates
  /// Cl(R) soundly — it may answer false for congruent terms, never the
  /// reverse. Status-returning callers should surface this.
  const Status& interrupt() const { return interrupt_; }

 private:
  struct Signature {
    FuncId fn;
    uint32_t child_root;
    std::vector<ConstId> args;
    bool operator==(const Signature& o) const {
      return fn == o.fn && child_root == o.child_root && args == o.args;
    }
  };
  struct SignatureHash {
    size_t operator()(const Signature& s) const {
      uint64_t h = 1469598103934665603ull;
      auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
      };
      mix(s.fn);
      mix(s.child_root);
      for (ConstId a : s.args) mix(a);
      return static_cast<size_t>(h);
    }
  };

  struct Pending {
    TermId a;
    TermId b;
    bool congruence;  // false: asserted by Merge
  };

  /// Adds t and its whole subterm chain to the closure (idempotent).
  void AddTerm(TermId t);
  Signature SignatureOf(TermId t);
  /// Records the proof-forest edge a -- b (reversing a's path to its root).
  void AddProofEdge(TermId a, TermId b, bool congruence);
  /// Re-canonicalizes the parents of a just-merged class, merging any
  /// signature collisions (the congruence propagation step).
  void PropagateFrom(uint32_t root);
  /// Processes queued merges until the closure is congruence-closed.
  void DrainPending();

  const TermArena* arena_;
  UnionFind uf_;
  std::vector<bool> known_bits_;
  std::vector<TermId> known_;
  // parents_[root]: application terms whose child is in this class.
  std::unordered_map<uint32_t, std::vector<TermId>> parents_;
  std::unordered_map<Signature, TermId, SignatureHash> signatures_;
  std::vector<Pending> pending_;
  // Proof forest: each term has at most one labeled edge; trees span
  // congruence classes.
  std::unordered_map<TermId, std::pair<TermId, bool>> proof_parent_;
  size_t num_unions_ = 0;
  ResourceGovernor* governor_ = nullptr;
  Status interrupt_;
};

}  // namespace relspec

#endif  // RELSPEC_CC_CONGRUENCE_CLOSURE_H_
