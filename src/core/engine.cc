#include "src/core/engine.h"

#include "src/ast/printer.h"
#include "src/ast/validate.h"
#include "src/base/failpoint.h"
#include "src/base/governor.h"
#include "src/base/metrics.h"
#include "src/core/verify.h"
#include "src/parser/parser.h"

namespace relspec {

StatusOr<std::unique_ptr<FunctionalDatabase>> FunctionalDatabase::FromSource(
    std::string_view source, const EngineOptions& options) {
  ParseResult parsed;
  RELSPEC_ASSIGN_OR_RETURN(parsed, Parse(source));  // "parse" phase inside
  if (!parsed.queries.empty()) {
    return Status::InvalidArgument(
        "FromSource expects facts and rules only; answer queries through "
        "AnswerQuery/ParseQuery instead");
  }
  return FromProgram(std::move(parsed.program), options);
}

StatusOr<std::unique_ptr<FunctionalDatabase>> FunctionalDatabase::FromProgram(
    Program program, const EngineOptions& options) {
  RELSPEC_PHASE("engine.build");
  auto db = std::unique_ptr<FunctionalDatabase>(new FunctionalDatabase());
  {
    RELSPEC_PHASE("validate");
    RELSPEC_RETURN_NOT_OK(ValidateProgram(program));
    RELSPEC_RETURN_NOT_OK(CheckDomainIndependence(program));
  }
  db->original_ = program;
  db->program_ = std::move(program);
  RELSPEC_ASSIGN_OR_RETURN(db->normalize_stats_,
                           NormalizeProgram(&db->program_));
  RELSPEC_ASSIGN_OR_RETURN(db->purify_stats_, MixedToPure(&db->program_));
  db->info_ = Analyze(db->program_);
  {
    RELSPEC_PHASE("ground");
    RELSPEC_FAILPOINT("ground.build");
    if (options.governor != nullptr) {
      RELSPEC_RETURN_NOT_OK(options.governor->Check());
    }
    RELSPEC_ASSIGN_OR_RETURN(GroundProgram ground,
                             Ground(db->program_, options.ground));
    db->ground_ = std::make_unique<GroundProgram>(std::move(ground));
  }
  FixpointOptions fixpoint = options.fixpoint;
  LabelGraphOptions graph = options.graph;
  if (options.governor != nullptr) {
    fixpoint.governor = options.governor;
    graph.governor = options.governor;
  }
  if (options.allow_partial) {
    fixpoint.allow_partial = true;
    graph.allow_partial = true;
  }
  RELSPEC_ASSIGN_OR_RETURN(db->labeling_,
                           ComputeFixpoint(*db->ground_, fixpoint));
  RELSPEC_ASSIGN_OR_RETURN(db->graph_, BuildLabelGraph(&db->labeling_, graph));
  return db;
}

StatusOr<Path> FunctionalDatabase::PathOfGroundTerm(const FuncTerm& term) {
  if (!term.IsGround()) {
    return Status::InvalidArgument("term is not ground");
  }
  RELSPEC_ASSIGN_OR_RETURN(FuncTerm pure,
                           PurifyGroundTerm(term, &program_.symbols));
  std::vector<FuncId> syms;
  syms.reserve(pure.apps.size());
  for (const FuncApply& a : pure.apps) syms.push_back(a.fn);
  return Path(std::move(syms));
}

StatusOr<bool> FunctionalDatabase::HoldsFact(const Atom& fact) {
  if (!fact.IsGround()) {
    return Status::InvalidArgument("HoldsFact expects a ground atom");
  }
  std::vector<ConstId> args;
  args.reserve(fact.args.size());
  for (const NfArg& a : fact.args) args.push_back(a.id);
  if (!fact.fterm.has_value()) {
    return labeling_.HoldsGlobal(fact.pred, args);
  }
  RELSPEC_ASSIGN_OR_RETURN(Path path, PathOfGroundTerm(*fact.fterm));
  return labeling_.Holds(path, SliceAtom{fact.pred, args});
}

StatusOr<bool> FunctionalDatabase::HoldsFactText(std::string_view text) {
  std::string wrapped = "? " + std::string(text) + ".";
  RELSPEC_ASSIGN_OR_RETURN(Query q, ParseQuery(wrapped, &program_));
  if (q.atoms.size() != 1 || !q.atoms[0].IsGround()) {
    return Status::InvalidArgument(
        "HoldsFactText expects a single ground atom");
  }
  return HoldsFact(q.atoms[0]);
}

StatusOr<GraphSpecification> FunctionalDatabase::BuildGraphSpec() {
  return BuildGraphSpecification(graph_, &labeling_, program_.symbols);
}

StatusOr<EquationalSpecification> FunctionalDatabase::BuildEquationalSpec() {
  return BuildEquationalSpecification(graph_, &labeling_, program_.symbols);
}

uint64_t FunctionalDatabase::Fingerprint() const {
  if (fingerprint_ != 0) return fingerprint_;
  // FNV-1a over the normal-form rendering, then mixed with the
  // result-affecting build parameters. The rendering fixes fact/rule order,
  // so two databases answer queries identically iff the inputs match.
  uint64_t h = 1469598103934665603ull;
  auto eat = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (char c : ToString(original_)) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  eat(static_cast<uint64_t>(graph_.trunk_depth()));
  eat(static_cast<uint64_t>(graph_.frontier_depth()));
  eat(graph_.num_clusters());
  eat(truncated() ? 1 : 0);
  if (h == 0) h = 1;  // 0 is the "not computed" sentinel
  fingerprint_ = h;
  return h;
}

Status FunctionalDatabase::Verify() {
  if (truncated()) {
    return Status::FailedPrecondition(
        "database is truncated (partial fixpoint): the quotient-model "
        "certificate only applies to a converged fixpoint; breach: " +
        breach().ToString());
  }
  return VerifyQuotientModel(graph_, &labeling_);
}

}  // namespace relspec
