#include "src/core/engine.h"

#include <algorithm>

#include "src/ast/printer.h"
#include "src/ast/validate.h"
#include "src/base/failpoint.h"
#include "src/base/governor.h"
#include "src/base/metrics.h"
#include "src/base/str_util.h"
#include "src/base/trace.h"
#include "src/core/snapshot.h"
#include "src/core/verify.h"
#include "src/parser/parser.h"

namespace relspec {

StatusOr<std::unique_ptr<FunctionalDatabase>> FunctionalDatabase::FromSource(
    std::string_view source, const EngineOptions& options) {
  ParseResult parsed;
  RELSPEC_ASSIGN_OR_RETURN(parsed, Parse(source));  // "parse" phase inside
  if (!parsed.queries.empty()) {
    return Status::InvalidArgument(
        "FromSource expects facts and rules only; answer queries through "
        "AnswerQuery/ParseQuery instead");
  }
  return FromProgram(std::move(parsed.program), options);
}

StatusOr<std::unique_ptr<FunctionalDatabase>> FunctionalDatabase::FromProgram(
    Program program, const EngineOptions& options) {
  RELSPEC_PHASE("engine.build");
  auto db = std::unique_ptr<FunctionalDatabase>(new FunctionalDatabase());
  {
    RELSPEC_PHASE("validate");
    RELSPEC_RETURN_NOT_OK(ValidateProgram(program));
    RELSPEC_RETURN_NOT_OK(CheckDomainIndependence(program));
  }
  db->original_ = program;
  db->program_ = std::move(program);
  RELSPEC_ASSIGN_OR_RETURN(db->normalize_stats_,
                           NormalizeProgram(&db->program_));
  RELSPEC_ASSIGN_OR_RETURN(db->purify_stats_, MixedToPure(&db->program_));
  db->info_ = Analyze(db->program_);
  {
    RELSPEC_PHASE("ground");
    RELSPEC_FAILPOINT("ground.build");
    if (options.governor != nullptr) {
      RELSPEC_RETURN_NOT_OK(options.governor->Check());
    }
    RELSPEC_ASSIGN_OR_RETURN(GroundProgram ground,
                             Ground(db->program_, options.ground));
    db->ground_ = std::make_unique<GroundProgram>(std::move(ground));
  }
  FixpointOptions fixpoint = options.fixpoint;
  LabelGraphOptions graph = options.graph;
  if (options.governor != nullptr) {
    fixpoint.governor = options.governor;
    graph.governor = options.governor;
  }
  if (options.allow_partial) {
    fixpoint.allow_partial = true;
    graph.allow_partial = true;
  }
  RELSPEC_ASSIGN_OR_RETURN(db->labeling_,
                           ComputeFixpoint(*db->ground_, fixpoint));
  RELSPEC_ASSIGN_OR_RETURN(db->graph_, BuildLabelGraph(&db->labeling_, graph));
  return db;
}

StatusOr<Path> FunctionalDatabase::PathOfGroundTerm(const FuncTerm& term) {
  if (!term.IsGround()) {
    return Status::InvalidArgument("term is not ground");
  }
  RELSPEC_ASSIGN_OR_RETURN(FuncTerm pure,
                           PurifyGroundTerm(term, &program_.symbols));
  std::vector<FuncId> syms;
  syms.reserve(pure.apps.size());
  for (const FuncApply& a : pure.apps) syms.push_back(a.fn);
  return Path(std::move(syms));
}

StatusOr<bool> FunctionalDatabase::HoldsFact(const Atom& fact) {
  if (!fact.IsGround()) {
    return Status::InvalidArgument("HoldsFact expects a ground atom");
  }
  std::vector<ConstId> args;
  args.reserve(fact.args.size());
  for (const NfArg& a : fact.args) args.push_back(a.id);
  if (!fact.fterm.has_value()) {
    return labeling_.HoldsGlobal(fact.pred, args);
  }
  RELSPEC_ASSIGN_OR_RETURN(Path path, PathOfGroundTerm(*fact.fterm));
  return labeling_.Holds(path, SliceAtom{fact.pred, args});
}

StatusOr<bool> FunctionalDatabase::HoldsFactText(std::string_view text) {
  std::string wrapped = "? " + std::string(text) + ".";
  RELSPEC_ASSIGN_OR_RETURN(Query q, ParseQuery(wrapped, &program_));
  if (q.atoms.size() != 1 || !q.atoms[0].IsGround()) {
    return Status::InvalidArgument(
        "HoldsFactText expects a single ground atom");
  }
  return HoldsFact(q.atoms[0]);
}

StatusOr<GraphSpecification> FunctionalDatabase::BuildGraphSpec() {
  return BuildGraphSpecification(graph_, &labeling_, program_.symbols);
}

StatusOr<EquationalSpecification> FunctionalDatabase::BuildEquationalSpec() {
  return BuildEquationalSpecification(graph_, &labeling_, program_.symbols);
}

namespace {

// True when `base` is an id-for-id prefix of `ext`: every symbol of `base`
// exists in `ext` under the same id, name and metadata. ParseQuery interns
// helper variables (and sometimes constants) into the engine's program, and
// outstanding Query objects hold those ids — when this holds, the engine can
// keep the extended table across a delta commit and those queries stay valid.
bool IsSymbolPrefix(const SymbolTable& base, const SymbolTable& ext) {
  if (base.num_predicates() > ext.num_predicates() ||
      base.num_functions() > ext.num_functions() ||
      base.num_constants() > ext.num_constants() ||
      base.num_variables() > ext.num_variables()) {
    return false;
  }
  for (PredId p = 0; p < base.num_predicates(); ++p) {
    const PredicateInfo& a = base.predicate(p);
    const PredicateInfo& b = ext.predicate(p);
    if (a.name != b.name || a.arity != b.arity ||
        a.functional != b.functional) {
      return false;
    }
  }
  for (FuncId f = 0; f < base.num_functions(); ++f) {
    if (base.function(f).name != ext.function(f).name ||
        base.function(f).arity != ext.function(f).arity) {
      return false;
    }
  }
  for (ConstId c = 0; c < base.num_constants(); ++c) {
    if (base.constant_name(c) != ext.constant_name(c)) return false;
  }
  for (VarId v = 0; v < base.num_variables(); ++v) {
    if (base.variable_name(v) != ext.variable_name(v)) return false;
  }
  return true;
}

// Applies one edit to `facts`, in batch order: insert appends (unless the
// fact is already present), delete erases the first equal fact. Returns
// false for a noop. This is exactly the program a from-scratch rebuild
// would see, which is what makes ApplyDeltas ≡ FromProgram(edited program).
bool EditFacts(std::vector<Atom>* facts, const Atom& fact, bool insert,
               DeltaStats* stats) {
  auto it = std::find(facts->begin(), facts->end(), fact);
  if (insert) {
    if (it != facts->end()) {
      ++stats->noops;
      return false;
    }
    facts->push_back(fact);
    ++stats->inserted;
  } else {
    if (it == facts->end()) {
      ++stats->noops;
      return false;
    }
    facts->erase(it);
    ++stats->deleted;
  }
  return true;
}

}  // namespace

StatusOr<DeltaStats> FunctionalDatabase::ApplyDeltas(
    const std::vector<FactDelta>& deltas, const EngineOptions& options) {
  RELSPEC_PHASE("delta.apply");
  DeltaStats stats;
  Program next = original_;
  for (const FactDelta& d : deltas) {
    if (!d.fact.IsGround()) {
      return Status::InvalidArgument("delta facts must be ground atoms");
    }
    EditFacts(&next.facts, d.fact, d.insert, &stats);
  }
  if (stats.inserted == 0 && stats.deleted == 0) {
    RELSPEC_COUNTER("delta.noop_batches");
    return stats;  // nothing changed: state and fingerprint stay intact
  }
  return ApplyEditedProgram(std::move(next), stats, options);
}

StatusOr<DeltaStats> FunctionalDatabase::ApplyDeltaText(
    std::string_view text, const EngineOptions& options) {
  RELSPEC_PHASE("delta.apply");
  DeltaStats stats;
  Program next = original_;
  // Phase 1: parse and validate the whole batch before editing any facts. A
  // bad line k must leave the database untouched — the strong guarantee —
  // and must not even partially edit the scratch program a later error path
  // would abandon. (Parsing may intern new symbols into `next.symbols`;
  // interning is additive and `next` is a private copy, so an abandoned
  // batch leaves no trace in *this.)
  struct ParsedEdit {
    bool insert;
    Atom fact;
  };
  std::vector<ParsedEdit> edits;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    // Trim and skip blanks/comments.
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t' ||
                             line.front() == '\r')) {
      line.remove_prefix(1);
    }
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                             line.back() == '\r')) {
      line.remove_suffix(1);
    }
    if (line.empty() || line.front() == '#') continue;
    bool insert;
    if (line.front() == '+') {
      insert = true;
    } else if (line.front() == '-') {
      insert = false;
    } else {
      return Status::InvalidArgument(StrFormat(
          "delta line %zu: expected '+ Fact.' or '- Fact.'", line_no));
    }
    line.remove_prefix(1);
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    if (!line.empty() && line.back() == '.') line.remove_suffix(1);
    // Parse against the edited program copy: new constants/functions intern
    // into `next.symbols` exactly as they would when rebuilding from the
    // edited source; unknown predicates are rejected by ParseQuery.
    std::string wrapped = "? " + std::string(line) + ".";
    StatusOr<Query> q = ParseQuery(wrapped, &next);
    if (!q.ok()) {
      return Status::InvalidArgument(StrFormat(
          "delta line %zu: %s", line_no, q.status().ToString().c_str()));
    }
    if (q->atoms.size() != 1 || !q->atoms[0].IsGround()) {
      return Status::InvalidArgument(StrFormat(
          "delta line %zu: expected a single ground fact", line_no));
    }
    edits.push_back(ParsedEdit{insert, std::move(q->atoms[0])});
  }
  // Phase 2: the batch parsed end to end; apply the edits in order.
  for (const ParsedEdit& e : edits) {
    EditFacts(&next.facts, e.fact, e.insert, &stats);
  }
  if (stats.inserted == 0 && stats.deleted == 0) {
    RELSPEC_COUNTER("delta.noop_batches");
    return stats;
  }
  return ApplyEditedProgram(std::move(next), stats, options);
}

StatusOr<DeltaStats> FunctionalDatabase::ApplyEditedProgram(
    Program next, DeltaStats stats, const EngineOptions& options) {
  {
    RELSPEC_PHASE("validate");
    RELSPEC_RETURN_NOT_OK(ValidateProgram(next));
    RELSPEC_RETURN_NOT_OK(CheckDomainIndependence(next));
  }
  // Re-run the front of the pipeline on the edited program. Everything up to
  // the commit below works on temporaries: an error leaves *this unchanged.
  Program transformed = next;
  NormalizeStats nstats;
  MixedToPureStats pstats;
  RELSPEC_ASSIGN_OR_RETURN(nstats, NormalizeProgram(&transformed));
  RELSPEC_ASSIGN_OR_RETURN(pstats, MixedToPure(&transformed));
  ProgramInfo info = Analyze(transformed);
  GroundProgram next_ground;
  {
    RELSPEC_PHASE("ground");
    RELSPEC_FAILPOINT("ground.build");
    if (options.governor != nullptr) {
      RELSPEC_RETURN_NOT_OK(options.governor->Check());
    }
    RELSPEC_ASSIGN_OR_RETURN(next_ground, Ground(transformed, options.ground));
  }
  FixpointOptions fixpoint = options.fixpoint;
  LabelGraphOptions graph = options.graph;
  if (options.governor != nullptr) {
    fixpoint.governor = options.governor;
    graph.governor = options.governor;
  }
  if (options.allow_partial) {
    fixpoint.allow_partial = true;
    graph.allow_partial = true;
  }

  if (truncated() || !next_ground.SameUniverse(*ground_)) {
    // Rebuild path: the edit changed the grounded universe (or the current
    // state is a truncated under-approximation there is nothing sound to
    // repair from). Build into temporaries, then commit.
    stats.rebuilt = true;
    RELSPEC_COUNTER("delta.rebuilds");
    auto ng = std::make_unique<GroundProgram>(std::move(next_ground));
    Labeling labeling;
    RELSPEC_ASSIGN_OR_RETURN(labeling, ComputeFixpoint(*ng, fixpoint));
    LabelGraph lg;
    RELSPEC_ASSIGN_OR_RETURN(lg, BuildLabelGraph(&labeling, graph));
    labeling_ = std::move(labeling);  // frees the state bound to old ground_
    graph_ = std::move(lg);
    ground_ = std::move(ng);
  } else {
    // Repair path: identical universe, so AtomIdx/CtxIdx bitsets line up and
    // the labeling can be patched in place. Base-fact diffs use multiset
    // semantics (grounding may legitimately emit duplicates).
    std::vector<std::pair<Path, AtomIdx>> removed_pinned =
        ground_->pinned_facts();
    for (const auto& f : next_ground.pinned_facts()) {
      auto it = std::find(removed_pinned.begin(), removed_pinned.end(), f);
      if (it != removed_pinned.end()) removed_pinned.erase(it);
    }
    std::vector<CtxIdx> removed_global = ground_->global_facts();
    for (CtxIdx g : next_ground.global_facts()) {
      auto it = std::find(removed_global.begin(), removed_global.end(), g);
      if (it != removed_global.end()) removed_global.erase(it);
    }
    // *ground_ is address-stable: assigning through the pointer keeps the
    // labeling's and chi engine's GroundProgram* valid across the swap.
    *ground_ = std::move(next_ground);
    DeltaRepairStats repair;
    RELSPEC_ASSIGN_OR_RETURN(
        repair, labeling_.ApplyFactDeltas(removed_pinned, removed_global,
                                          fixpoint));
    stats.deleted_bits = repair.deleted_bits;
    stats.chi_reset = repair.chi_reset;
    stats.rederive_rounds = repair.rounds;
    RELSPEC_ASSIGN_OR_RETURN(graph_, BuildLabelGraph(&labeling_, graph));
  }

  // Keep the old (extended) symbol table when the rebuilt one is an
  // id-for-id prefix of it, so Query objects parsed against
  // mutable_program() before the delta keep resolving. On the repair path
  // the transformed table always comes out identical to the pre-delta base
  // table (same rules, same symbols, deterministic passes), making this a
  // strict extension; if the edit introduced genuinely new symbols the
  // prefix check fails and the fresh table wins (outstanding queries must
  // then be re-parsed, as documented on ApplyDeltas).
  if (IsSymbolPrefix(transformed.symbols, program_.symbols)) {
    transformed.symbols = program_.symbols;
  }
  original_ = std::move(next);
  program_ = std::move(transformed);
  info_ = std::move(info);
  normalize_stats_ = nstats;
  purify_stats_ = pstats;
  fingerprint_ = 0;  // effective delta: re-key the query cache
  RELSPEC_COUNTER("delta.batches_applied");
  RELSPEC_COUNTER_ADD("delta.facts_inserted", stats.inserted);
  RELSPEC_COUNTER_ADD("delta.facts_deleted", stats.deleted);
  return stats;
}

// ---------------------------------------------------------------------------
// Durability: OpenDurable / LogAndApplyDeltas / Checkpoint
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<FunctionalDatabase>> FunctionalDatabase::OpenDurable(
    std::string_view program_source, const std::string& wal_path,
    const DurableOptions& durable, const EngineOptions& options,
    RecoveryStats* recovery) {
  RELSPEC_PHASE("wal.recover");
  RELSPEC_TRACE_SPAN("wal", "wal.recover");
  RecoveryStats rec;
  const std::string ckpt_path = wal_path + ".ckpt";

  // Candidate bases, newest first: the current checkpoint, the previous
  // generation's checkpoint, and the program source itself (generation-0
  // logs anchor there). A base is valid only if it rebuilds to exactly the
  // fingerprint it claims — for checkpoints, the embedded RSNP snapshot must
  // additionally match the rebuilt spec byte for byte.
  struct Candidate {
    std::string path;  // empty: build from program_source
    bool tried = false;
    std::unique_ptr<FunctionalDatabase> db;  // null once tried: invalid
  };
  Candidate bases[3];
  bases[0].path = ckpt_path;
  bases[1].path = ckpt_path + ".prev";
  Status program_error;  // only meaningful if bases[2] was tried

  auto build_base = [&](Candidate* c) -> FunctionalDatabase* {
    if (c->tried) return c->db.get();
    c->tried = true;
    if (c->path.empty()) {
      auto db = FromSource(program_source, options);
      if (db.ok()) {
        c->db = std::move(*db);
      } else {
        program_error = db.status();
      }
      return c->db.get();
    }
    auto bytes = DeltaWal::ReadFile(c->path);
    if (!bytes.ok()) return nullptr;
    auto data = ParseCheckpoint(*bytes);
    if (!data.ok()) return nullptr;
    // Re-parse with the checkpointed symbol table as seed: interning order
    // is engine state (it fixes every downstream id), and the rendered text
    // alone does not reproduce it.
    auto program = ParseProgram(data->program_text, data->symbols);
    if (!program.ok()) return nullptr;
    auto db = FromProgram(std::move(*program), options);
    if (!db.ok()) return nullptr;
    if ((*db)->Fingerprint() != data->fingerprint) return nullptr;
    auto spec = (*db)->BuildGraphSpec();
    if (!spec.ok() || Snapshot::Serialize(*spec) != data->snapshot_bytes) {
      return nullptr;
    }
    c->db = std::move(*db);
    return c->db.get();
  };

  // Pair each log — current first, then the previous generation — with the
  // newest base matching the fingerprint stamped in its header.
  std::unique_ptr<FunctionalDatabase> db;
  WalScanResult scan;
  bool have_log = false;
  bool fallback_log = false;
  // Set when the current log exists but pairs with no base (its checkpoint
  // is torn, the caller's program diverged, or it is a foreign file).
  // Falling back one generation is still allowed — that is exactly the
  // torn-checkpoint contract — but recovery refuses to invent a state and
  // clobber such a log when the fallback yields nothing either.
  bool current_log_unmatched = false;
  for (int li = 0; li < 2 && db == nullptr; ++li) {
    const std::string log_path = li == 0 ? wal_path : wal_path + ".prev";
    auto scanned = DeltaWal::Scan(log_path);
    if (!scanned.ok()) {
      if (scanned.status().code() == StatusCode::kNotFound) continue;
      // The file exists but its header is unreadable. A create torn by a
      // crash leaves fewer than kHeaderSize bytes and no records, so it is
      // safe to start over; anything longer is not ours to clobber.
      auto bytes = DeltaWal::ReadFile(log_path);
      if (bytes.ok() && bytes->size() >= DeltaWal::kHeaderSize && li == 0) {
        return Status::FailedPrecondition(StrFormat(
            "wal: '%s' is not a readable delta log (%s); refusing to "
            "overwrite it",
            log_path.c_str(), scanned.status().message().c_str()));
      }
      continue;
    }
    for (Candidate& base : bases) {
      FunctionalDatabase* built = build_base(&base);
      if (built != nullptr &&
          built->Fingerprint() == scanned->base_fingerprint) {
        db = std::move(base.db);
        scan = std::move(*scanned);
        have_log = true;
        fallback_log = li == 1;
        rec.checkpoint_loaded = !base.path.empty();
        break;
      }
    }
    if (db == nullptr && li == 0) current_log_unmatched = true;
  }

  if (db == nullptr) {
    // No log pairs with any base. Recover from the newest valid base alone
    // (a crash between checkpoint-install renames can leave exactly that),
    // or start fresh from the program — but never by discarding a live log
    // whose history we simply cannot anchor.
    if (current_log_unmatched) {
      return Status::FailedPrecondition(StrFormat(
          "wal: log at '%s' does not anchor to this program or any "
          "checkpoint generation; refusing to recover from it",
          wal_path.c_str()));
    }
    for (Candidate& base : bases) {
      if (build_base(&base) != nullptr) {
        db = std::move(base.db);
        rec.checkpoint_loaded = !base.path.empty();
        break;
      }
    }
    if (db == nullptr) {
      if (!program_error.ok()) return program_error;
      return Status::FailedPrecondition(StrFormat(
          "wal: no recoverable state at '%s'", wal_path.c_str()));
    }
    rec.created = !rec.checkpoint_loaded;
  }

  // Replay surviving batches through ApplyDeltaText — the same code that
  // applied them live — checking the fingerprint chain record by record.
  for (const WalRecord& r : scan.records) {
    auto applied = db->ApplyDeltaText(r.payload, options);
    if (!applied.ok()) {
      return Status::Internal(StrFormat(
          "wal: replay of record %llu failed: %s",
          static_cast<unsigned long long>(r.seq),
          applied.status().ToString().c_str()));
    }
    if (db->Fingerprint() != r.fingerprint) {
      return Status::Internal(StrFormat(
          "wal: fingerprint chain broken at record %llu (engine %016llx, "
          "logged %016llx)",
          static_cast<unsigned long long>(r.seq),
          static_cast<unsigned long long>(db->Fingerprint()),
          static_cast<unsigned long long>(r.fingerprint)));
    }
    ++rec.replayed_batches;
    rec.replayed_bytes += r.payload.size();
  }
  rec.truncated_bytes = scan.truncated_bytes;
  rec.used_fallback = fallback_log;
  RELSPEC_COUNTER_ADD("wal.replayed_records", rec.replayed_batches);
  RELSPEC_COUNTER_ADD("wal.replayed_bytes", rec.replayed_bytes);

  db->wal_path_ = wal_path;
  db->durable_options_ = durable;
  if (have_log && !fallback_log) {
    // Normal case: keep appending to the current log (truncating its torn
    // tail first).
    RELSPEC_ASSIGN_OR_RETURN(
        db->wal_, DeltaWal::OpenForAppend(wal_path, scan, durable.wal));
  } else if (!have_log && !rec.checkpoint_loaded) {
    // Brand-new state: no log, no checkpoint.
    RELSPEC_ASSIGN_OR_RETURN(
        db->wal_,
        DeltaWal::Create(wal_path, db->Fingerprint(), durable.wal));
  } else {
    // The current generation is gone or torn (we recovered via `.prev` or a
    // bare checkpoint). Rebuild it by installing a fresh (checkpoint, log)
    // pair — without rotating, so the generation we just recovered from
    // stays intact until the install lands.
    RELSPEC_RETURN_NOT_OK(db->CheckpointImpl(/*rotate_prev=*/false));
  }
  if (recovery != nullptr) *recovery = rec;
  return db;
}

StatusOr<DeltaStats> FunctionalDatabase::LogAndApplyDeltas(
    std::string_view delta_text, const EngineOptions& options) {
  if (!durable()) {
    return Status::FailedPrecondition(
        "LogAndApplyDeltas: engine was not opened via OpenDurable");
  }
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "LogAndApplyDeltas: no armed log (a failed checkpoint detached it); "
        "reopen via OpenDurable");
  }
  if (wal_->broken()) {
    return Status::FailedPrecondition(
        "LogAndApplyDeltas: log is poisoned by an earlier write/fsync "
        "failure; Checkpoint() or a fresh OpenDurable re-arms it");
  }
  RELSPEC_ASSIGN_OR_RETURN(DeltaStats stats,
                           ApplyDeltaText(delta_text, options));
  // Applied in memory; now make it durable. Append returning OK under
  // fsync=always is the acknowledgment the crash tests hold us to. Even an
  // all-noop batch is logged: its parse may have interned new symbols, and
  // interning order is engine state a replay must reproduce.
  RELSPEC_RETURN_NOT_OK(wal_->Append(Fingerprint(), delta_text));
  ++batches_since_checkpoint_;
  if (durable_options_.checkpoint_every > 0 &&
      batches_since_checkpoint_ >= durable_options_.checkpoint_every) {
    RELSPEC_RETURN_NOT_OK(Checkpoint());
  }
  return stats;
}

Status FunctionalDatabase::Checkpoint() {
  return CheckpointImpl(/*rotate_prev=*/true);
}

Status FunctionalDatabase::CheckpointImpl(bool rotate_prev) {
  if (!durable()) {
    return Status::FailedPrecondition(
        "Checkpoint: engine was not opened via OpenDurable");
  }
  RELSPEC_PHASE("wal.checkpoint");
  RELSPEC_TRACE_SPAN("wal", "wal.checkpoint");
  const std::string ckpt_path = wal_path_ + ".ckpt";
  const bool durable_sync = durable_options_.wal.fsync != FsyncMode::kOff;

  // Anchor: the current state as (program text, spec snapshot, fingerprint).
  RELSPEC_ASSIGN_OR_RETURN(GraphSpecification spec, BuildGraphSpec());
  std::string ckpt_bytes =
      SerializeCheckpoint(Fingerprint(), original_.symbols, ToString(original_),
                          Snapshot::Serialize(spec));

  // Stage the new generation as .tmp files, durably, before any rename.
  RELSPEC_FAILPOINT("wal.checkpoint.write_ckpt");
  RELSPEC_RETURN_NOT_OK(DeltaWal::WriteFileDurable(
      ckpt_path + ".tmp", ckpt_bytes, durable_sync, durable_options_.wal));
  RELSPEC_FAILPOINT("wal.checkpoint.write_newlog");
  RELSPEC_RETURN_NOT_OK(DeltaWal::WriteFileDurable(
      wal_path_ + ".tmp", DeltaWal::SerializeHeader(Fingerprint()),
      durable_sync, durable_options_.wal));

  // Close the live log so everything it acknowledged is on disk before the
  // file changes name. A poisoned log closes as-is: its durable prefix is
  // still valid, and the checkpoint carries the in-memory state anyway.
  if (wal_ != nullptr) {
    Status closed = wal_->Close();
    if (!closed.ok() && !wal_->broken()) return closed;
    wal_.reset();
  }

  // Rotate, then install. Every intermediate crash state leaves at least
  // one (base, log) pair — or a bare checkpoint — that recovery accepts;
  // tests/crash_recovery_test.cc kills at each of these boundaries.
  if (rotate_prev) {
    RELSPEC_FAILPOINT("wal.checkpoint.rename_ckpt_prev");
    RELSPEC_RETURN_NOT_OK(DeltaWal::RenameFile(ckpt_path, ckpt_path + ".prev",
                                               /*ignore_missing=*/true));
    RELSPEC_FAILPOINT("wal.checkpoint.rename_wal_prev");
    RELSPEC_RETURN_NOT_OK(DeltaWal::RenameFile(wal_path_, wal_path_ + ".prev",
                                               /*ignore_missing=*/true));
  }
  RELSPEC_FAILPOINT("wal.checkpoint.rename_ckpt");
  RELSPEC_RETURN_NOT_OK(DeltaWal::RenameFile(ckpt_path + ".tmp", ckpt_path));
  RELSPEC_FAILPOINT("wal.checkpoint.rename_wal");
  RELSPEC_RETURN_NOT_OK(DeltaWal::RenameFile(wal_path_ + ".tmp", wal_path_));
  if (durable_sync) DeltaWal::SyncDir(wal_path_);
  RELSPEC_FAILPOINT("wal.checkpoint.done");

  // Re-arm appending on the fresh log.
  WalScanResult fresh;
  fresh.base_fingerprint = Fingerprint();
  fresh.valid_bytes = DeltaWal::kHeaderSize;
  RELSPEC_ASSIGN_OR_RETURN(
      wal_, DeltaWal::OpenForAppend(wal_path_, fresh, durable_options_.wal));
  batches_since_checkpoint_ = 0;
  RELSPEC_COUNTER("wal.checkpoints");
  return Status::OK();
}

uint64_t FunctionalDatabase::Fingerprint() const {
  if (fingerprint_ != 0) return fingerprint_;
  // FNV-1a over the normal-form rendering, then mixed with the
  // result-affecting build parameters. The rendering fixes fact/rule order,
  // so two databases answer queries identically iff the inputs match.
  uint64_t h = 1469598103934665603ull;
  auto eat = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (char c : ToString(original_)) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  eat(static_cast<uint64_t>(graph_.trunk_depth()));
  eat(static_cast<uint64_t>(graph_.frontier_depth()));
  eat(graph_.num_clusters());
  eat(truncated() ? 1 : 0);
  if (h == 0) h = 1;  // 0 is the "not computed" sentinel
  fingerprint_ = h;
  return h;
}

Status FunctionalDatabase::Verify() {
  if (truncated()) {
    return Status::FailedPrecondition(
        "database is truncated (partial fixpoint): the quotient-model "
        "certificate only applies to a converged fixpoint; breach: " +
        breach().ToString());
  }
  return VerifyQuotientModel(graph_, &labeling_);
}

}  // namespace relspec
