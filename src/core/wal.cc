#include "src/core/wal.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "src/base/failpoint.h"
#include "src/base/metrics.h"
#include "src/base/str_util.h"
#include "src/base/trace.h"

namespace relspec {
namespace {

uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Chained splitmix over 8-byte blocks (tail zero-padded) — the same scheme
// the RSNP snapshot format uses, so one flipped bit anywhere avalanches.
uint64_t WalChecksum(std::string_view bytes) {
  uint64_t h = Mix(0x243f6a8885a308d3ull ^ bytes.size());
  size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    uint64_t word;
    std::memcpy(&word, bytes.data() + i, 8);
    h = Mix(h ^ word);
  }
  if (i < bytes.size()) {
    uint64_t word = 0;
    std::memcpy(&word, bytes.data() + i, bytes.size() - i);
    h = Mix(h ^ word);
  }
  return h;
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}
void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}
uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}
uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

Status ErrnoStatus(const char* op, const std::string& path) {
  return Status::Internal(
      StrFormat("wal: %s '%s' failed: %s", op, path.c_str(), strerror(errno)));
}

// Full write with EINTR/short-write handling.
Status WriteAll(int fd, std::string_view bytes, const std::string& path) {
  const char* p = bytes.data();
  size_t left = bytes.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path);
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  return Status::OK();
}

// fsync with bounded retries and doubling backoff. Only EINTR/EAGAIN are
// retried; after a genuine I/O error the kernel may already have dropped the
// dirty pages, so "retry until it works" would turn data loss into a false
// durability ack.
Status FsyncBounded(int fd, const std::string& path,
                    const WalOptions& options) {
  int backoff_ms = options.fsync_backoff_ms;
  int attempts = options.fsync_attempts < 1 ? 1 : options.fsync_attempts;
  for (int attempt = 0;; ++attempt) {
    auto start = std::chrono::steady_clock::now();
    int rc = ::fsync(fd);
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count();
    RELSPEC_HISTOGRAM("wal.fsync_ns", static_cast<uint64_t>(ns));
    if (rc == 0) return Status::OK();
    if ((errno != EINTR && errno != EAGAIN) || attempt + 1 >= attempts) {
      return ErrnoStatus("fsync", path);
    }
    RELSPEC_COUNTER("wal.fsync_retries");
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms *= 2;
  }
}

// Makes a just-written or just-renamed directory entry durable. Best-effort
// on filesystems that refuse to fsync directories.
void SyncDirContaining(const std::string& path) {
  std::string dir = ".";
  size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) dir = path.substr(0, slash + 1);
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

StatusOr<FsyncMode> ParseFsyncMode(std::string_view name) {
  if (name == "always") return FsyncMode::kAlways;
  if (name == "batch") return FsyncMode::kBatch;
  if (name == "off") return FsyncMode::kOff;
  return Status::InvalidArgument(
      StrFormat("unknown fsync mode '%s' (want always|batch|off)",
                std::string(name).c_str()));
}

const char* FsyncModeName(FsyncMode mode) {
  switch (mode) {
    case FsyncMode::kAlways:
      return "always";
    case FsyncMode::kBatch:
      return "batch";
    case FsyncMode::kOff:
      return "off";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

std::string DeltaWal::SerializeHeader(uint64_t base_fingerprint) {
  std::string covered;
  covered.reserve(12);
  PutU32(&covered, kVersion);
  PutU64(&covered, base_fingerprint);
  std::string out;
  out.reserve(kHeaderSize);
  out.append(kMagic, 4);
  out.append(covered);
  PutU64(&out, WalChecksum(covered));
  return out;
}

std::string DeltaWal::SerializeRecord(uint64_t seq, uint64_t fingerprint,
                                      std::string_view payload) {
  std::string covered;
  covered.reserve(16 + payload.size());
  PutU64(&covered, seq);
  PutU64(&covered, fingerprint);
  covered.append(payload);
  std::string out;
  out.reserve(kRecordHeaderSize + payload.size());
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU64(&out, WalChecksum(covered));
  out.append(covered);
  return out;
}

// ---------------------------------------------------------------------------
// Scan
// ---------------------------------------------------------------------------

StatusOr<WalScanResult> DeltaWal::ScanBytes(std::string_view bytes) {
  if (bytes.size() < kHeaderSize) {
    return Status::InvalidArgument("wal: file shorter than header");
  }
  if (std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return Status::InvalidArgument("wal: bad magic");
  }
  uint32_t version = GetU32(bytes.data() + 4);
  uint64_t base_fingerprint = GetU64(bytes.data() + 8);
  uint64_t header_sum = GetU64(bytes.data() + 16);
  if (WalChecksum(bytes.substr(4, 12)) != header_sum) {
    return Status::InvalidArgument("wal: header checksum mismatch");
  }
  if (version != kVersion) {
    return Status::InvalidArgument(
        StrFormat("wal: unsupported version %u (this build reads v%u)",
                  version, kVersion));
  }

  WalScanResult result;
  result.base_fingerprint = base_fingerprint;
  size_t pos = kHeaderSize;
  uint64_t expect_seq = 1;
  while (pos < bytes.size()) {
    size_t remaining = bytes.size() - pos;
    // Each check below declares the tail torn and stops; the length prefix
    // is only ever trusted after it is proven to fit in the file, so a
    // corrupt 0xFFFFFFFF length cannot trigger a giant allocation.
    if (remaining < kRecordHeaderSize) break;
    uint32_t payload_len = GetU32(bytes.data() + pos);
    if (payload_len > kMaxPayloadBytes) break;
    if (payload_len > remaining - kRecordHeaderSize) break;
    uint64_t sum = GetU64(bytes.data() + pos + 4);
    std::string_view covered = bytes.substr(pos + 12, 16 + payload_len);
    if (WalChecksum(covered) != sum) break;
    uint64_t seq = GetU64(bytes.data() + pos + 12);
    if (seq != expect_seq) break;
    WalRecord rec;
    rec.seq = seq;
    rec.fingerprint = GetU64(bytes.data() + pos + 20);
    rec.payload.assign(bytes.data() + pos + kRecordHeaderSize, payload_len);
    result.records.push_back(std::move(rec));
    pos += kRecordHeaderSize + payload_len;
    ++expect_seq;
  }
  result.valid_bytes = pos;
  result.truncated_bytes = bytes.size() - pos;
  return result;
}

StatusOr<WalScanResult> DeltaWal::Scan(const std::string& path) {
  RELSPEC_TRACE_SPAN("wal", "wal.scan");
  RELSPEC_ASSIGN_OR_RETURN(std::string bytes, ReadFile(path));
  return ScanBytes(bytes);
}

// ---------------------------------------------------------------------------
// Create / open / append
// ---------------------------------------------------------------------------

DeltaWal::DeltaWal(std::string path, int fd, uint64_t base_fingerprint,
                   uint64_t next_seq, const WalOptions& options)
    : path_(std::move(path)),
      options_(options),
      fd_(fd),
      base_fingerprint_(base_fingerprint),
      next_seq_(next_seq) {}

DeltaWal::~DeltaWal() {
  Status st = Close();  // best effort; errors have nowhere to go here
  (void)st;
}

StatusOr<std::unique_ptr<DeltaWal>> DeltaWal::Create(
    const std::string& path, uint64_t base_fingerprint,
    const WalOptions& options) {
  RELSPEC_FAILPOINT("wal.create.write");
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC,
                  0644);
  if (fd < 0) return ErrnoStatus("create", path);
  std::unique_ptr<DeltaWal> wal(
      new DeltaWal(path, fd, base_fingerprint, /*next_seq=*/1, options));
  Status st = WriteAll(fd, SerializeHeader(base_fingerprint), path);
  if (st.ok() && options.fsync != FsyncMode::kOff) {
    st = FsyncBounded(fd, path, options);
    if (st.ok()) SyncDirContaining(path);
  }
  if (!st.ok()) return st;
  RELSPEC_FAILPOINT("wal.create.synced");
  return wal;
}

StatusOr<std::unique_ptr<DeltaWal>> DeltaWal::OpenForAppend(
    const std::string& path, const WalScanResult& scan,
    const WalOptions& options) {
  int fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
  if (fd < 0) return ErrnoStatus("open", path);
  uint64_t next_seq =
      scan.records.empty() ? 1 : scan.records.back().seq + 1;
  std::unique_ptr<DeltaWal> wal(
      new DeltaWal(path, fd, scan.base_fingerprint, next_seq, options));
  if (scan.truncated_bytes > 0) {
    RELSPEC_FAILPOINT("wal.recover.truncate");
    if (::ftruncate(fd, static_cast<off_t>(scan.valid_bytes)) != 0) {
      return ErrnoStatus("ftruncate", path);
    }
    RELSPEC_COUNTER_ADD("wal.truncated_bytes", scan.truncated_bytes);
    if (options.fsync != FsyncMode::kOff) {
      RELSPEC_RETURN_NOT_OK(FsyncBounded(fd, path, options));
    }
  }
  if (::lseek(fd, static_cast<off_t>(scan.valid_bytes), SEEK_SET) < 0) {
    return ErrnoStatus("lseek", path);
  }
  return wal;
}

Status DeltaWal::Append(uint64_t fingerprint_after, std::string_view payload) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("wal: log is closed");
  }
  if (broken_) {
    return Status::FailedPrecondition(
        "wal: log is broken (a previous write or fsync failed); reopen via "
        "recovery");
  }
  Status st = AppendImpl(fingerprint_after, payload);
  if (!st.ok()) broken_ = true;
  return st;
}

Status DeltaWal::AppendImpl(uint64_t fingerprint_after,
                            std::string_view payload) {
  RELSPEC_TRACE_SPAN("wal", "wal.append");
  if (payload.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument("wal: delta batch exceeds max record size");
  }
  std::string record = SerializeRecord(next_seq_, fingerprint_after, payload);
  RELSPEC_FAILPOINT("wal.append.write");
  RELSPEC_RETURN_NOT_OK(WriteAll(fd_, record, path_));
  RELSPEC_FAILPOINT("wal.append.written");
  ++next_seq_;
  ++unsynced_appends_;
  RELSPEC_COUNTER("wal.appended_records");
  RELSPEC_COUNTER_ADD("wal.appended_bytes", record.size());
  switch (options_.fsync) {
    case FsyncMode::kAlways:
      RELSPEC_RETURN_NOT_OK(SyncImpl());
      break;
    case FsyncMode::kBatch:
      if (unsynced_appends_ >= options_.batch_every) {
        RELSPEC_RETURN_NOT_OK(SyncImpl());
      }
      break;
    case FsyncMode::kOff:
      break;
  }
  RELSPEC_FAILPOINT("wal.append.acked");
  return Status::OK();
}

Status DeltaWal::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("wal: log is closed");
  if (broken_) {
    return Status::FailedPrecondition("wal: log is broken");
  }
  Status st = SyncImpl();
  if (!st.ok()) broken_ = true;
  return st;
}

Status DeltaWal::SyncImpl() {
  if (unsynced_appends_ == 0) return Status::OK();
  RELSPEC_TRACE_SPAN("wal", "wal.sync");
  RELSPEC_FAILPOINT("wal.fsync");
  RELSPEC_RETURN_NOT_OK(FsyncBounded(fd_, path_, options_));
  unsynced_appends_ = 0;
  return Status::OK();
}

Status DeltaWal::Close() {
  if (fd_ < 0) return Status::OK();
  Status st = Status::OK();
  if (!broken_) st = SyncImpl();
  ::close(fd_);
  fd_ = -1;
  return st;
}

// ---------------------------------------------------------------------------
// File helpers for the checkpoint/rotation protocol
// ---------------------------------------------------------------------------

StatusOr<std::string> DeltaWal::ReadFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound(StrFormat("no file at '%s'", path.c_str()));
    }
    return ErrnoStatus("open", path);
  }
  std::string bytes;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = ErrnoStatus("read", path);
      ::close(fd);
      return st;
    }
    if (n == 0) break;
    bytes.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return bytes;
}

Status DeltaWal::WriteFileDurable(const std::string& path,
                                  std::string_view bytes, bool durable,
                                  const WalOptions& options) {
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC,
                  0644);
  if (fd < 0) return ErrnoStatus("create", path);
  Status st = WriteAll(fd, bytes, path);
  if (st.ok() && durable) st = FsyncBounded(fd, path, options);
  ::close(fd);
  if (!st.ok()) ::unlink(path.c_str());
  return st;
}

Status DeltaWal::RenameFile(const std::string& from, const std::string& to,
                            bool ignore_missing) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    if (ignore_missing && errno == ENOENT) return Status::OK();
    return ErrnoStatus("rename", from);
  }
  return Status::OK();
}

void DeltaWal::SyncDir(const std::string& path) { SyncDirContaining(path); }

// ---------------------------------------------------------------------------
// Checkpoint container
// ---------------------------------------------------------------------------

namespace {

void PutName(std::string* out, std::string_view name) {
  PutU32(out, static_cast<uint32_t>(name.size()));
  out->append(name);
}

// Reads a u32 length then that many name bytes, validating against the
// remaining body before touching (let alone allocating) anything.
StatusOr<std::string_view> GetName(std::string_view body, size_t* pos) {
  if (body.size() - *pos < 4) {
    return Status::InvalidArgument("checkpoint: truncated symbol name");
  }
  uint32_t len = GetU32(body.data() + *pos);
  *pos += 4;
  if (len > body.size() - *pos) {
    return Status::InvalidArgument(
        "checkpoint: symbol name length exceeds file");
  }
  std::string_view name = body.substr(*pos, len);
  *pos += len;
  return name;
}

StatusOr<uint32_t> GetCount(std::string_view body, size_t* pos) {
  if (body.size() - *pos < 4) {
    return Status::InvalidArgument("checkpoint: truncated symbol section");
  }
  uint32_t n = GetU32(body.data() + *pos);
  *pos += 4;
  // Each entry carries at least a 4-byte name length, so a count larger
  // than the remaining bytes / 4 cannot be honest. Rejecting here bounds
  // every loop below by the file size.
  if (n > (body.size() - *pos) / 4) {
    return Status::InvalidArgument("checkpoint: symbol count exceeds file");
  }
  return n;
}

}  // namespace

std::string SerializeCheckpoint(uint64_t fingerprint,
                                const SymbolTable& symbols,
                                std::string_view program_text,
                                std::string_view snapshot_bytes) {
  std::string body;
  body.reserve(64 + program_text.size() + snapshot_bytes.size());
  PutU64(&body, fingerprint);
  PutU32(&body, static_cast<uint32_t>(symbols.num_predicates()));
  for (PredId p = 0; p < symbols.num_predicates(); ++p) {
    const PredicateInfo& info = symbols.predicate(p);
    PutName(&body, info.name);
    PutU32(&body, static_cast<uint32_t>(info.arity));
    body.push_back(info.functional ? 1 : 0);
  }
  PutU32(&body, static_cast<uint32_t>(symbols.num_functions()));
  for (FuncId f = 0; f < symbols.num_functions(); ++f) {
    const FunctionInfo& info = symbols.function(f);
    PutName(&body, info.name);
    PutU32(&body, static_cast<uint32_t>(info.arity));
  }
  PutU32(&body, static_cast<uint32_t>(symbols.num_constants()));
  for (ConstId c = 0; c < symbols.num_constants(); ++c) {
    PutName(&body, symbols.constant_name(c));
  }
  PutU32(&body, static_cast<uint32_t>(symbols.num_variables()));
  for (VarId v = 0; v < symbols.num_variables(); ++v) {
    PutName(&body, symbols.variable_name(v));
  }
  PutU32(&body, static_cast<uint32_t>(program_text.size()));
  body.append(program_text);
  PutU32(&body, static_cast<uint32_t>(snapshot_bytes.size()));
  body.append(snapshot_bytes);
  std::string out;
  out.reserve(16 + body.size());
  out.append("RCKP", 4);
  PutU32(&out, DeltaWal::kVersion);
  PutU64(&out, WalChecksum(body));
  out.append(body);
  return out;
}

StatusOr<CheckpointData> ParseCheckpoint(std::string_view bytes) {
  constexpr size_t kCkptHeader = 4 + 4 + 8;
  if (bytes.size() < kCkptHeader) {
    return Status::InvalidArgument("checkpoint: file shorter than header");
  }
  if (std::memcmp(bytes.data(), "RCKP", 4) != 0) {
    return Status::InvalidArgument("checkpoint: bad magic");
  }
  uint32_t version = GetU32(bytes.data() + 4);
  if (version != DeltaWal::kVersion) {
    return Status::InvalidArgument(
        StrFormat("checkpoint: unsupported version %u", version));
  }
  uint64_t sum = GetU64(bytes.data() + 8);
  std::string_view body = bytes.substr(kCkptHeader);
  if (WalChecksum(body) != sum) {
    return Status::InvalidArgument("checkpoint: checksum mismatch");
  }
  // Past the checksum the body is authenticated, but lengths are still
  // validated against the remaining size before allocating.
  if (body.size() < 12) {
    return Status::InvalidArgument("checkpoint: truncated body");
  }
  CheckpointData data;
  data.fingerprint = GetU64(body.data());
  size_t pos = 8;
  {
    RELSPEC_ASSIGN_OR_RETURN(uint32_t n, GetCount(body, &pos));
    for (uint32_t i = 0; i < n; ++i) {
      RELSPEC_ASSIGN_OR_RETURN(std::string_view name, GetName(body, &pos));
      if (body.size() - pos < 5) {
        return Status::InvalidArgument("checkpoint: truncated predicate");
      }
      uint32_t arity = GetU32(body.data() + pos);
      pos += 4;
      bool functional = body[pos++] != 0;
      auto id = data.symbols.InternPredicate(name, static_cast<int>(arity),
                                             functional);
      if (!id.ok() || *id != i) {
        return Status::InvalidArgument("checkpoint: bad predicate table");
      }
      if (functional) {
        RELSPEC_RETURN_NOT_OK(data.symbols.SetFunctional(*id));
      }
    }
  }
  {
    RELSPEC_ASSIGN_OR_RETURN(uint32_t n, GetCount(body, &pos));
    for (uint32_t i = 0; i < n; ++i) {
      RELSPEC_ASSIGN_OR_RETURN(std::string_view name, GetName(body, &pos));
      if (body.size() - pos < 4) {
        return Status::InvalidArgument("checkpoint: truncated function");
      }
      uint32_t arity = GetU32(body.data() + pos);
      pos += 4;
      auto id = data.symbols.InternFunction(name, static_cast<int>(arity));
      if (!id.ok() || *id != i) {
        return Status::InvalidArgument("checkpoint: bad function table");
      }
    }
  }
  {
    RELSPEC_ASSIGN_OR_RETURN(uint32_t n, GetCount(body, &pos));
    for (uint32_t i = 0; i < n; ++i) {
      RELSPEC_ASSIGN_OR_RETURN(std::string_view name, GetName(body, &pos));
      if (data.symbols.InternConstant(name) != i) {
        return Status::InvalidArgument("checkpoint: bad constant table");
      }
    }
  }
  {
    RELSPEC_ASSIGN_OR_RETURN(uint32_t n, GetCount(body, &pos));
    for (uint32_t i = 0; i < n; ++i) {
      RELSPEC_ASSIGN_OR_RETURN(std::string_view name, GetName(body, &pos));
      if (data.symbols.InternVariable(name) != i) {
        return Status::InvalidArgument("checkpoint: bad variable table");
      }
    }
  }
  if (body.size() - pos < 4) {
    return Status::InvalidArgument("checkpoint: truncated body");
  }
  uint32_t prog_len = GetU32(body.data() + pos);
  pos += 4;
  if (prog_len > body.size() - pos) {
    return Status::InvalidArgument("checkpoint: program length exceeds file");
  }
  data.program_text.assign(body.data() + pos, prog_len);
  pos += prog_len;
  if (body.size() - pos < 4) {
    return Status::InvalidArgument("checkpoint: truncated body");
  }
  uint32_t snap_len = GetU32(body.data() + pos);
  pos += 4;
  if (snap_len > body.size() - pos) {
    return Status::InvalidArgument("checkpoint: snapshot length exceeds file");
  }
  data.snapshot_bytes.assign(body.data() + pos, snap_len);
  pos += snap_len;
  if (pos != body.size()) {
    return Status::InvalidArgument("checkpoint: trailing bytes");
  }
  return data;
}

}  // namespace relspec
