// FunctionalDatabase: the public facade over the whole pipeline.
//
//   source text --parse--> Program --validate/normalize/purify--> Program'
//     --ground--> GroundProgram --fixpoint--> Labeling --Algorithm Q-->
//     LabelGraph --> GraphSpecification / EquationalSpecification
//
// Typical use:
//
//   auto db = FunctionalDatabase::FromSource(R"(
//     Meets(0, Tony).
//     Next(Tony, Jan).  Next(Jan, Tony).
//     Meets(t, x), Next(x, y) -> Meets(t+1, y).
//   )");
//   db->HoldsFactText("Meets(4, Tony)");   // -> true
//   auto spec = db->BuildGraphSpec();      // finite (B, F)

#ifndef RELSPEC_CORE_ENGINE_H_
#define RELSPEC_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/ast/ast.h"
#include "src/base/status.h"
#include "src/core/analysis.h"
#include "src/core/equational_spec.h"
#include "src/core/fixpoint.h"
#include "src/core/graph_spec.h"
#include "src/core/ground.h"
#include "src/core/label_graph.h"
#include "src/core/mixed_to_pure.h"
#include "src/core/normalize.h"
#include "src/core/wal.h"

namespace relspec {

struct EngineOptions {
  GroundOptions ground;
  FixpointOptions fixpoint;
  LabelGraphOptions graph;

  /// Optional resource governor applied to every phase. Overrides the
  /// per-phase governor fields in `fixpoint` and `graph` when set.
  ResourceGovernor* governor = nullptr;
  /// Graceful degradation for the whole pipeline: sets allow_partial on the
  /// fixpoint and Algorithm Q, so a resource breach yields a truncated (but
  /// sound and queryable) database instead of an error.
  bool allow_partial = false;
};

/// One base-fact edit (paper Section 5): insert (`+`) or delete (`-`) a
/// ground fact, given as an Atom over the database's *original* symbols.
struct FactDelta {
  bool insert = true;
  Atom fact;
};

/// What one ApplyDeltas/ApplyDeltaText batch did.
struct DeltaStats {
  /// Facts actually added to / removed from the program (a second insert of
  /// a present fact, or a delete of an absent one, is a noop).
  size_t inserted = 0;
  size_t deleted = 0;
  size_t noops = 0;
  /// True if the edit changed the grounded universe (new atoms, constants,
  /// rule instances, or trunk depth) and the engine fell back to a full
  /// rebuild instead of an in-place repair.
  bool rebuilt = false;
  /// Repair-path details (zero/false on the rebuild path); see
  /// DeltaRepairStats in src/core/fixpoint.h.
  bool chi_reset = false;
  size_t deleted_bits = 0;
  size_t rederive_rounds = 0;
};

/// Durability knobs for OpenDurable (docs/DURABILITY.md).
struct DurableOptions {
  WalOptions wal;
  /// Auto-checkpoint (snapshot + log rotation) after this many logged
  /// batches; 0 = only when Checkpoint() is called explicitly.
  uint64_t checkpoint_every = 0;
};

/// What OpenDurable's recovery did, for operators and tests.
struct RecoveryStats {
  /// No usable log existed; a fresh one was created at the requested path.
  bool created = false;
  /// The current (checkpoint, log) pair was missing or torn; recovery fell
  /// back one generation to the `.prev` pair left by the last rotation.
  bool used_fallback = false;
  /// The engine was rebuilt from a checkpoint rather than the program
  /// source (and the checkpoint's embedded snapshot matched byte for byte).
  bool checkpoint_loaded = false;
  uint64_t replayed_batches = 0;
  uint64_t replayed_bytes = 0;
  /// Torn/corrupt tail bytes physically truncated from the log.
  uint64_t truncated_bytes = 0;
};

/// A fully materialized functional deductive database with a finitely
/// represented least fixpoint. Movable, not copyable.
class FunctionalDatabase {
 public:
  /// Parses and builds. The source may not contain queries.
  static StatusOr<std::unique_ptr<FunctionalDatabase>> FromSource(
      std::string_view source, const EngineOptions& options = {});
  /// Builds from an already-constructed program (takes a copy).
  static StatusOr<std::unique_ptr<FunctionalDatabase>> FromProgram(
      Program program, const EngineOptions& options = {});

  /// Opens a durable engine: builds the newest recoverable state anchored at
  /// `wal_path` and arms a write-ahead log so LogAndApplyDeltas survives a
  /// crash (docs/DURABILITY.md).
  ///
  /// Recovery prefers the current (checkpoint, log) pair and falls back one
  /// generation (`.prev`) if the current pair is torn; a log is paired with
  /// whichever base (checkpoint, previous checkpoint, or `program_source`)
  /// matches the base fingerprint stamped in its header. The log's torn
  /// tail is physically truncated, surviving batches replay through
  /// ApplyDeltaText — the same code that applied them live — and the engine
  /// fingerprint is checked against every record's stamp, so recovery
  /// converges on a byte-identical engine or fails loudly. When no log
  /// exists yet, a fresh one is created from the built program. A log whose
  /// chain matches none of the candidate bases (e.g. `program_source`
  /// changed) is never clobbered: FailedPrecondition.
  static StatusOr<std::unique_ptr<FunctionalDatabase>> OpenDurable(
      std::string_view program_source, const std::string& wal_path,
      const DurableOptions& durable = {}, const EngineOptions& options = {},
      RecoveryStats* recovery = nullptr);

  /// The program as given (before normalization and purification).
  const Program& original_program() const { return original_; }
  /// The transformed (normal, pure) program the engine actually runs.
  const Program& program() const { return program_; }
  /// Writable symbol table (parsing helper terms may intern new symbols).
  SymbolTable* mutable_symbols() { return &program_.symbols; }
  /// Writable transformed program, for ParseQuery and friends. Only the
  /// symbol table may be extended; rules and facts must not be touched.
  Program* mutable_program() { return &program_; }

  const ProgramInfo& info() const { return info_; }
  const NormalizeStats& normalize_stats() const { return normalize_stats_; }
  const MixedToPureStats& purify_stats() const { return purify_stats_; }
  const GroundProgram& ground() const { return *ground_; }
  Labeling& labeling() { return labeling_; }
  const LabelGraph& label_graph() const { return graph_; }

  /// Membership of a ground fact given as an Atom over the original
  /// predicates (mixed terms are purified internally).
  StatusOr<bool> HoldsFact(const Atom& fact);
  /// Convenience: "Meets(4, Tony)" — parsed against this database.
  StatusOr<bool> HoldsFactText(std::string_view text);

  /// Builds the (B, F) graph specification (Section 3.4).
  StatusOr<GraphSpecification> BuildGraphSpec();
  /// Builds the (B, R) equational specification (Section 3.5).
  StatusOr<EquationalSpecification> BuildEquationalSpec();

  /// Applies a batch of base-fact deltas in order, maintaining the least
  /// fixpoint incrementally (paper Section 5; docs/INCREMENTAL.md).
  /// Equivalent to rebuilding from the edited program — after the call,
  /// `FromProgram(original_program())` yields a byte-identical database —
  /// but repairs the existing labeling/chi-table/spec in place whenever the
  /// grounded universe is unchanged (semi-naive re-derivation for inserts,
  /// DRed for deletes), falling back to a full rebuild otherwise.
  ///
  /// An all-noop batch leaves the database (and its Fingerprint) untouched;
  /// any effective batch invalidates the fingerprint, so stale QueryCache
  /// entries miss. Validation errors leave the database unchanged (strong
  /// guarantee). A resource breach mid-repair without allow_partial leaves
  /// it in an unspecified state — discard it; with allow_partial it degrades
  /// to a truncated-but-sound database like the build pipeline does.
  ///
  /// Delta atoms must be ground and use this database's original symbols
  /// (predicates, constants, functions); facts mentioning symbols unknown to
  /// the program can only come in through ApplyDeltaText, which interns them.
  ///
  /// Query objects previously parsed via mutable_program() stay valid across
  /// a batch as long as the edit introduces no new symbols (the engine keeps
  /// the extended symbol table whenever the rebuilt one is an id-for-id
  /// prefix of it). A batch that interns new symbols commits a fresh table:
  /// re-parse outstanding queries after it.
  StatusOr<DeltaStats> ApplyDeltas(const std::vector<FactDelta>& deltas,
                                   const EngineOptions& options = {});

  /// Parses and applies a delta file: one edit per line, `+ Fact(args).` or
  /// `- Fact(args).`, with `#` comments and blank lines ignored. Facts may
  /// mention new constants (the active domain grows → full rebuild) but not
  /// new predicates. Line numbers are reported in errors; a parse or
  /// validation error leaves the database unchanged.
  StatusOr<DeltaStats> ApplyDeltaText(std::string_view text,
                                      const EngineOptions& options = {});

  /// ApplyDeltaText + durability: applies the batch in memory, then appends
  /// it to the WAL under the configured fsync policy. OK means *applied and
  /// logged* — under FsyncMode::kAlways it is an acknowledgment that the
  /// batch survives any crash from here on. Even an all-noop batch is
  /// logged: parsing it may have interned new symbols, and interning order
  /// is engine state a replay must reproduce byte for byte. If the append
  /// or fsync fails the batch stays applied in memory but the log is
  /// poisoned: every later call fails, and the honest move is to discard
  /// this engine and OpenDurable again. FailedPrecondition when the engine
  /// was not opened durable.
  StatusOr<DeltaStats> LogAndApplyDeltas(std::string_view delta_text,
                                         const EngineOptions& options = {});

  /// Anchors the current state durably and rotates the log: writes a
  /// checkpoint (program text + spec snapshot + fingerprint) and a fresh
  /// empty log as `.tmp` files, then atomically renames the old pair to
  /// `.prev` and the new pair into place. A crash at any step leaves at
  /// least one recoverable generation (the crash matrix in
  /// tests/crash_recovery_test.cc walks every boundary). Also the repair
  /// path after a poisoned log: a successful Checkpoint re-arms logging.
  Status Checkpoint();

  /// True when this engine was opened via OpenDurable.
  bool durable() const { return !wal_path_.empty(); }
  /// The armed log (null when not durable or after Checkpoint failed
  /// mid-rotation).
  const DeltaWal* wal() const { return wal_.get(); }

  /// Checks the quotient-model certificate (Proposition 3.2): the computed
  /// finite structure is a model of Z and D, hence equals LFP(Z, D).
  /// FailedPrecondition on a truncated database — a partial fixpoint is a
  /// sound under-approximation, not a model.
  Status Verify();

  /// True when a resource breach truncated the build (only possible with
  /// EngineOptions::allow_partial): answers are a sound
  /// under-approximation of LFP(Z, D).
  bool truncated() const {
    return labeling_.truncated() || graph_.truncated();
  }
  /// The breach that truncated the build; OK unless truncated().
  const Status& breach() const {
    return labeling_.truncated() ? labeling_.breach() : graph_.breach();
  }

  /// Converts a ground functional term over the original symbols into the
  /// engine's pure path form.
  StatusOr<Path> PathOfGroundTerm(const FuncTerm& term);

  /// A stable fingerprint of this database's answer-relevant state: the
  /// original program rendered in normal form plus the result-affecting
  /// build parameters (trunk/frontier depths, truncation). QueryCache keys
  /// on it so entries from a different database never alias. Lazy; O(1)
  /// after the first call.
  uint64_t Fingerprint() const;

 private:
  FunctionalDatabase() = default;

  /// Shared tail of ApplyDeltas/ApplyDeltaText: `next` is the edited
  /// original-form program with `stats` counting the edits already applied
  /// to it. Validates, re-grounds, and either repairs in place (same
  /// universe) or rebuilds, then commits every member and resets the
  /// fingerprint.
  StatusOr<DeltaStats> ApplyEditedProgram(Program next, DeltaStats stats,
                                          const EngineOptions& options);

  /// Checkpoint body. With `rotate_prev` the old (checkpoint, log) pair is
  /// renamed to `.prev` before the new pair is installed; without it the new
  /// pair is installed in place — used when recovery rebuilt the current
  /// generation from `.prev`, which must survive until the install lands.
  Status CheckpointImpl(bool rotate_prev);

  Program original_;
  Program program_;
  ProgramInfo info_;
  NormalizeStats normalize_stats_;
  MixedToPureStats purify_stats_;
  std::unique_ptr<GroundProgram> ground_;  // address-stable for labeling_
  Labeling labeling_;
  LabelGraph graph_;
  mutable uint64_t fingerprint_ = 0;  // 0 = not yet computed

  // Durability state (empty/null unless opened via OpenDurable).
  std::string wal_path_;
  DurableOptions durable_options_;
  std::unique_ptr<DeltaWal> wal_;
  uint64_t batches_since_checkpoint_ = 0;
};

}  // namespace relspec

#endif  // RELSPEC_CORE_ENGINE_H_
