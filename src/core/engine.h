// FunctionalDatabase: the public facade over the whole pipeline.
//
//   source text --parse--> Program --validate/normalize/purify--> Program'
//     --ground--> GroundProgram --fixpoint--> Labeling --Algorithm Q-->
//     LabelGraph --> GraphSpecification / EquationalSpecification
//
// Typical use:
//
//   auto db = FunctionalDatabase::FromSource(R"(
//     Meets(0, Tony).
//     Next(Tony, Jan).  Next(Jan, Tony).
//     Meets(t, x), Next(x, y) -> Meets(t+1, y).
//   )");
//   db->HoldsFactText("Meets(4, Tony)");   // -> true
//   auto spec = db->BuildGraphSpec();      // finite (B, F)

#ifndef RELSPEC_CORE_ENGINE_H_
#define RELSPEC_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>

#include "src/ast/ast.h"
#include "src/base/status.h"
#include "src/core/analysis.h"
#include "src/core/equational_spec.h"
#include "src/core/fixpoint.h"
#include "src/core/graph_spec.h"
#include "src/core/ground.h"
#include "src/core/label_graph.h"
#include "src/core/mixed_to_pure.h"
#include "src/core/normalize.h"

namespace relspec {

struct EngineOptions {
  GroundOptions ground;
  FixpointOptions fixpoint;
  LabelGraphOptions graph;

  /// Optional resource governor applied to every phase. Overrides the
  /// per-phase governor fields in `fixpoint` and `graph` when set.
  ResourceGovernor* governor = nullptr;
  /// Graceful degradation for the whole pipeline: sets allow_partial on the
  /// fixpoint and Algorithm Q, so a resource breach yields a truncated (but
  /// sound and queryable) database instead of an error.
  bool allow_partial = false;
};

/// A fully materialized functional deductive database with a finitely
/// represented least fixpoint. Movable, not copyable.
class FunctionalDatabase {
 public:
  /// Parses and builds. The source may not contain queries.
  static StatusOr<std::unique_ptr<FunctionalDatabase>> FromSource(
      std::string_view source, const EngineOptions& options = {});
  /// Builds from an already-constructed program (takes a copy).
  static StatusOr<std::unique_ptr<FunctionalDatabase>> FromProgram(
      Program program, const EngineOptions& options = {});

  /// The program as given (before normalization and purification).
  const Program& original_program() const { return original_; }
  /// The transformed (normal, pure) program the engine actually runs.
  const Program& program() const { return program_; }
  /// Writable symbol table (parsing helper terms may intern new symbols).
  SymbolTable* mutable_symbols() { return &program_.symbols; }
  /// Writable transformed program, for ParseQuery and friends. Only the
  /// symbol table may be extended; rules and facts must not be touched.
  Program* mutable_program() { return &program_; }

  const ProgramInfo& info() const { return info_; }
  const NormalizeStats& normalize_stats() const { return normalize_stats_; }
  const MixedToPureStats& purify_stats() const { return purify_stats_; }
  const GroundProgram& ground() const { return *ground_; }
  Labeling& labeling() { return labeling_; }
  const LabelGraph& label_graph() const { return graph_; }

  /// Membership of a ground fact given as an Atom over the original
  /// predicates (mixed terms are purified internally).
  StatusOr<bool> HoldsFact(const Atom& fact);
  /// Convenience: "Meets(4, Tony)" — parsed against this database.
  StatusOr<bool> HoldsFactText(std::string_view text);

  /// Builds the (B, F) graph specification (Section 3.4).
  StatusOr<GraphSpecification> BuildGraphSpec();
  /// Builds the (B, R) equational specification (Section 3.5).
  StatusOr<EquationalSpecification> BuildEquationalSpec();

  /// Checks the quotient-model certificate (Proposition 3.2): the computed
  /// finite structure is a model of Z and D, hence equals LFP(Z, D).
  /// FailedPrecondition on a truncated database — a partial fixpoint is a
  /// sound under-approximation, not a model.
  Status Verify();

  /// True when a resource breach truncated the build (only possible with
  /// EngineOptions::allow_partial): answers are a sound
  /// under-approximation of LFP(Z, D).
  bool truncated() const {
    return labeling_.truncated() || graph_.truncated();
  }
  /// The breach that truncated the build; OK unless truncated().
  const Status& breach() const {
    return labeling_.truncated() ? labeling_.breach() : graph_.breach();
  }

  /// Converts a ground functional term over the original symbols into the
  /// engine's pure path form.
  StatusOr<Path> PathOfGroundTerm(const FuncTerm& term);

  /// A stable fingerprint of this database's answer-relevant state: the
  /// original program rendered in normal form plus the result-affecting
  /// build parameters (trunk/frontier depths, truncation). QueryCache keys
  /// on it so entries from a different database never alias. Lazy; O(1)
  /// after the first call.
  uint64_t Fingerprint() const;

 private:
  FunctionalDatabase() = default;

  Program original_;
  Program program_;
  ProgramInfo info_;
  NormalizeStats normalize_stats_;
  MixedToPureStats purify_stats_;
  std::unique_ptr<GroundProgram> ground_;  // address-stable for labeling_
  Labeling labeling_;
  LabelGraph graph_;
  mutable uint64_t fingerprint_ = 0;  // 0 = not yet computed
};

}  // namespace relspec

#endif  // RELSPEC_CORE_ENGINE_H_
