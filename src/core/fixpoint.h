// The least-fixpoint computation for grounded functional programs.
//
// The least fixpoint LFP(Z, D) is represented as
//   * exact labels for every *trunk* node (paths of depth <= c, where ground
//     facts are pinned),
//   * seeds for the boundary layer (depth c+1), whose labels — and all
//     deeper labels — live in the ChiEngine table,
//   * the context bitset: true ground non-functional atoms ("globals") and
//     pinned facts, closed under the propositional global rules.
//
// ComputeFixpoint runs a chaotic iteration (global rules, pinned syncs,
// trunk rules, chi passes) until a full round changes nothing; monotonicity
// over finite lattices gives termination and leastness.
//
// ComputeBoundedFixpoint is the brute-force reference: the least fixpoint of
// the rule system restricted to nodes of depth <= bound. It
// under-approximates LFP(Z, D) and converges to it on any fixed region as
// the bound grows — the property tests and the materialization baseline
// (experiment E11) are built on it.

#ifndef RELSPEC_CORE_FIXPOINT_H_
#define RELSPEC_CORE_FIXPOINT_H_

#include <map>
#include <memory>
#include <vector>

#include "src/base/bitset.h"
#include "src/base/status.h"
#include "src/core/ground.h"
#include "src/core/subtree_closure.h"
#include "src/term/path.h"
#include "src/term/term.h"

namespace relspec {

class ResourceGovernor;

struct FixpointOptions {
  /// Cap on |Sigma|^c trunk nodes.
  size_t max_trunk_nodes = 2'000'000;
  /// Cap on chi-table entries (distinct demanded seeds).
  size_t max_chi_entries = 1'000'000;
  /// Cap on chaotic-iteration rounds (safety net; 0 = unlimited).
  size_t max_rounds = 0;
  /// Worker threads for chi-table passes (1 = fully sequential, today's
  /// exact behavior). With N > 1 each full pass over the table is split
  /// across a work-stealing pool with chunk-local gather and a
  /// single-threaded merge; the converged labeling is identical either way
  /// (see docs/ARCHITECTURE.md, "Determinism contract").
  int num_threads = 1;
  /// Optional resource governor (deadline, cancellation, budgets), polled
  /// once per round and per chi-table entry/chunk. Must outlive the call.
  ResourceGovernor* governor = nullptr;
  /// Graceful degradation: when a resource breach (kResourceExhausted,
  /// kCancelled, kDeadlineExceeded) interrupts the iteration, return the
  /// partial labeling marked truncated() instead of the error. The partial
  /// labeling is a sound under-approximation of LFP(Z, D): the iteration is
  /// monotone, so every fact it reports is in the least fixpoint.
  bool allow_partial = false;
};

/// Statistics from one incremental repair (Labeling::ApplyFactDeltas).
struct DeltaRepairStats {
  /// Bits retracted by the DRed over-deletion (trunk labels + context).
  size_t deleted_bits = 0;
  /// True if the deletion cascade reached chi-dependent state (a boundary
  /// seed, or a context bit some local rule reads), forcing a chi-table
  /// reset and re-derivation of the boundary from empty seeds.
  bool chi_reset = false;
  /// Chaotic-iteration rounds the re-derivation took.
  size_t rounds = 0;
};

/// The converged least fixpoint, queryable by path.
class Labeling {
 public:
  /// The label (set of slice atoms true) of an arbitrary path. Paths using
  /// function symbols outside the program's alphabet have empty labels.
  /// Non-const: deep labels are expanded (and cached) on demand.
  const DynamicBitset& LabelOf(const Path& path);

  /// True iff the fact pred(path, args...) is in LFP(Z, D).
  bool Holds(const Path& path, const SliceAtom& atom);
  /// True iff the ground non-functional atom holds.
  bool HoldsGlobal(PredId pred, const std::vector<ConstId>& args) const;

  const DynamicBitset& ctx() const { return shared_->ctx; }
  const GroundProgram& ground() const { return *ground_; }
  ChiEngine& chi() { return *chi_; }
  int trunk_depth() const { return ground_->trunk_depth(); }

  /// All trunk paths (depth <= c) in shortlex order.
  const std::vector<Path>& trunk_paths() const { return trunk_paths_; }
  const DynamicBitset& TrunkLabel(const Path& path) const {
    return trunk_labels_.at(terms_.FindSymbols(path.symbols()));
  }

  /// The interner holding every path this labeling has touched (trunk,
  /// boundary, deep lookups). Label maps are keyed by its TermIds.
  const TermInterner& terms() const { return terms_; }

  size_t rounds() const { return rounds_; }

  /// True when the iteration was interrupted by a resource breach under
  /// allow_partial: labels are a sound under-approximation of LFP(Z, D)
  /// (everything reported holds; some facts may be missing).
  bool truncated() const { return truncated_; }
  /// The breach that interrupted the iteration; OK unless truncated().
  const Status& breach() const { return breach_; }

  /// Incrementally repairs this converged labeling after base-fact deltas
  /// (paper Section 5; soundness argument in docs/INCREMENTAL.md).
  ///
  /// Preconditions: this labeling is converged and not truncated(), and the
  /// GroundProgram it is bound to has already been replaced *in place* by a
  /// re-grounding of the edited program over the same universe
  /// (GroundProgram::SameUniverse — the engine enforces both).
  ///
  /// `removed_pinned` / `removed_global` list the base facts of the old
  /// grounding that are absent from the new one. Insertions need no listing:
  /// every base fact of the new grounding is re-asserted before
  /// re-derivation. Deletions use DRed (delete-and-rederive): an
  /// over-deletion closure retracts every fact whose old derivation may have
  /// used a removed fact, escalating to a full chi-table reset when the
  /// cascade reaches a boundary seed or a context bit some local rule reads;
  /// the standard chaotic iteration then re-derives from the retained
  /// under-approximation and converges to exactly LFP of the edited program.
  StatusOr<DeltaRepairStats> ApplyFactDeltas(
      const std::vector<std::pair<Path, AtomIdx>>& removed_pinned,
      const std::vector<CtxIdx>& removed_global,
      const FixpointOptions& options);

 private:
  friend StatusOr<Labeling> ComputeFixpoint(const GroundProgram&,
                                            const FixpointOptions&);
  // Heap-allocated so ChiEngine's pointers into it survive moves of the
  // enclosing Labeling.
  struct ChiShared {
    DynamicBitset ctx;
    bool ctx_changed = false;
  };
  /// The chaotic iteration (global rules, pinned syncs, trunk rules, chi
  /// passes) run to convergence from the current state. Shared verbatim by
  /// ComputeFixpoint (from the base facts) and ApplyFactDeltas (from the
  /// retained under-approximation), so both converge through identical code
  /// to the identical least fixpoint.
  Status RunToFixpoint(const FixpointOptions& options);

  const GroundProgram* ground_ = nullptr;  // owned by the caller
  std::unique_ptr<ChiShared> shared_;
  std::unique_ptr<ChiEngine> chi_;
  std::vector<Path> trunk_paths_;
  /// Canonical ids for every path key below: hashing a path is hashing one
  /// uint32 instead of walking its symbols, and a trunk child lookup is one
  /// O(1) Apply instead of a Path allocation.
  TermInterner terms_;
  std::unordered_map<TermId, DynamicBitset> trunk_labels_;
  /// Boundary (depth c+1) seeds.
  std::unordered_map<TermId, DynamicBitset> boundary_seeds_;
  /// Cache for LabelOf beyond the boundary.
  std::unordered_map<TermId, DynamicBitset> deep_cache_;
  size_t rounds_ = 0;
  bool truncated_ = false;
  Status breach_;
  DynamicBitset empty_label_;
};

/// Computes the least fixpoint. `ground` must outlive the result.
StatusOr<Labeling> ComputeFixpoint(const GroundProgram& ground,
                                   const FixpointOptions& options = {});

/// Brute-force bounded fixpoint: labels for every path of depth <= bound.
class BoundedLabeling {
 public:
  const DynamicBitset& LabelOf(const Path& path) const;
  bool Holds(const Path& path, const SliceAtom& atom) const;
  bool HoldsGlobal(PredId pred, const std::vector<ConstId>& args) const;
  const DynamicBitset& ctx() const { return ctx_; }
  int bound() const { return bound_; }
  size_t num_nodes() const { return labels_.size(); }
  /// Total facts stored (sum of label cardinalities) — the materialization
  /// footprint used by experiment E11.
  size_t TotalFacts() const;

 private:
  friend StatusOr<BoundedLabeling> ComputeBoundedFixpoint(const GroundProgram&,
                                                          int, size_t);
  const GroundProgram* ground_ = nullptr;
  int bound_ = 0;
  TermInterner terms_;
  std::unordered_map<TermId, DynamicBitset> labels_;
  DynamicBitset ctx_;
  DynamicBitset empty_label_;
};

/// Least fixpoint of the rule system restricted to nodes of depth <= bound.
StatusOr<BoundedLabeling> ComputeBoundedFixpoint(const GroundProgram& ground,
                                                 int bound,
                                                 size_t max_nodes = 5'000'000);

}  // namespace relspec

#endif  // RELSPEC_CORE_FIXPOINT_H_
