// Provenance: derivation trees for facts of the least fixpoint.
//
// The paper's specifications are "explicit" — membership is decidable
// without the rules — but a user of a deductive database also wants to know
// *why* a fact holds. ExplainFact reconstructs a minimal-step derivation
// tree: leaves are database facts of D, inner nodes are rule applications at
// concrete tree positions.
//
// Implementation: a justification-recording re-run of the bounded fixpoint
// (the first rule instance to derive each fact is recorded; its premises
// were derived strictly earlier, so the recorded graph is acyclic), with the
// bound doubled until the target fact appears. Every fact of LFP(Z, D) has a
// finite derivation, so the search terminates for true facts; for false
// facts it stops at `max_bound` with NotFound.

#ifndef RELSPEC_CORE_EXPLAIN_H_
#define RELSPEC_CORE_EXPLAIN_H_

#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/core/ground.h"
#include "src/term/path.h"

namespace relspec {

/// One derivation node: a fact plus how it was obtained.
struct Derivation {
  enum class Kind {
    kDatabaseFact,  ///< a fact of D
    kLocalRule,     ///< a positional rule applied at `at`
    kGlobalRule,    ///< a propositional rule over context facts
  };

  Kind kind = Kind::kDatabaseFact;

  /// The derived fact: either a slice atom at a position...
  bool is_positional = true;
  Path position;
  AtomIdx atom = kInvalidId;
  /// ...or a context proposition (global / pinned).
  CtxIdx ctx = kInvalidId;

  /// For rule nodes: the position the rule's functional variable was bound
  /// to, and the index of the ground rule in the GroundProgram.
  Path at;
  uint32_t rule_index = 0;

  std::vector<Derivation> premises;

  /// Number of rule applications in the tree.
  size_t NumSteps() const;
  /// Indented, human-readable rendering.
  std::string ToString(const GroundProgram& ground,
                       const SymbolTable& symbols) const;
};

struct ExplainOptions {
  /// The search gives up when a derivation needs nodes deeper than this.
  int max_bound = 64;
  size_t max_nodes = 2'000'000;
};

/// Explains why pred(path, args...) is in LFP(Z, D). NotFound if it is not
/// derivable within max_bound.
StatusOr<Derivation> ExplainFact(const GroundProgram& ground, const Path& path,
                                 const SliceAtom& fact,
                                 const ExplainOptions& options = {});

/// Explains a ground non-functional fact.
StatusOr<Derivation> ExplainGlobal(const GroundProgram& ground, PredId pred,
                                   const std::vector<ConstId>& args,
                                   const ExplainOptions& options = {});

}  // namespace relspec

#endif  // RELSPEC_CORE_EXPLAIN_H_
