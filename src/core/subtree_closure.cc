#include "src/core/subtree_closure.h"

#include "src/base/logging.h"
#include "src/base/metrics.h"
#include "src/base/str_util.h"

namespace relspec {

uint32_t ChiEngine::EntryFor(const DynamicBitset& seed) {
  RELSPEC_COUNTER("chi.lookups");
  auto it = index_.find(seed);
  if (it != index_.end()) {
    RELSPEC_COUNTER("chi.hits");
    return it->second;
  }
  RELSPEC_COUNTER("chi.misses");
  uint32_t id = static_cast<uint32_t>(entries_.size());
  entries_.push_back(Entry{seed, seed});
  index_.emplace(seed, id);
  return id;
}

bool ChiEngine::CloseNode(DynamicBitset* T,
                          std::vector<DynamicBitset>* child_labels) {
  RELSPEC_COUNTER("chi.close_node_calls");
  const size_t num_syms = ground_->num_symbols();
  const size_t num_atoms = ground_->num_atoms();
  bool changed = false;

  while (true) {
    // Mutual fixpoint of child seeds and child labels given the node label.
    std::vector<DynamicBitset> seeds(num_syms, DynamicBitset(num_atoms));
    child_labels->assign(num_syms, DynamicBitset(num_atoms));
    bool seeds_changed = true;
    while (seeds_changed) {
      seeds_changed = false;
      for (size_t f = 0; f < num_syms; ++f) {
        (*child_labels)[f] = Value(EntryFor(seeds[f]));
      }
      for (const GroundRule& rule : ground_->local_rules()) {
        if (rule.head_kind != GroundRule::HeadKind::kChild) continue;
        if (seeds[rule.head_sym].Test(rule.head_id)) continue;
        if (BodySatisfied(rule, *T, *ctx_,
                          [&](SymIdx s) -> const DynamicBitset& {
                            return (*child_labels)[s];
                          })) {
          seeds[rule.head_sym].Set(rule.head_id);
          seeds_changed = true;
        }
      }
    }

    // Up-propagation into the node label and existential context emissions.
    bool t_changed = false;
    for (const GroundRule& rule : ground_->local_rules()) {
      if (rule.head_kind == GroundRule::HeadKind::kChild) continue;
      bool is_eps = rule.head_kind == GroundRule::HeadKind::kEps;
      if (is_eps && T->Test(rule.head_id)) continue;
      if (!is_eps && ctx_->Test(rule.head_id)) continue;
      if (BodySatisfied(rule, *T, *ctx_,
                        [&](SymIdx s) -> const DynamicBitset& {
                          return (*child_labels)[s];
                        })) {
        if (is_eps) {
          T->Set(rule.head_id);
          t_changed = true;
          changed = true;
        } else {
          ctx_->Set(rule.head_id);
          *ctx_changed_ = true;
          changed = true;
        }
      }
    }
    if (!t_changed) break;
  }
  return changed;
}

StatusOr<bool> ChiEngine::ProcessAllOnce() {
  RELSPEC_COUNTER("chi.passes");
  RELSPEC_SCOPED_TIMER("chi.pass_ns");
  bool changed = false;
  for (size_t i = 0; i < entries_.size(); ++i) {
    RELSPEC_COUNTER("chi.entries_processed");
    if (entries_.size() > max_entries_) {
      return Status::ResourceExhausted(
          StrFormat("chi table exceeded max_entries=%zu", max_entries_));
    }
    // Copy out: entries_ may reallocate while children are demanded.
    DynamicBitset T = entries_[i].value;
    std::vector<DynamicBitset> child_labels;
    bool entry_changed = CloseNode(&T, &child_labels);
    if (T != entries_[i].value) {
      entries_[i].value = std::move(T);
      entry_changed = true;
    }
    changed |= entry_changed;
  }
  if (changed) expand_cache_.clear();
  return changed;
}

const std::vector<DynamicBitset>& ChiEngine::Expand(
    const DynamicBitset& label) {
  auto it = expand_cache_.find(label);
  if (it != expand_cache_.end()) {
    RELSPEC_COUNTER("chi.expand_cache_hits");
    return it->second;
  }
  RELSPEC_COUNTER("chi.expansions");
  DynamicBitset T = label;
  std::vector<DynamicBitset> child_labels;
  CloseNode(&T, &child_labels);
  // At convergence of the surrounding fixpoint, a real node's label is
  // already closed; CloseNode must not grow it.
  RELSPEC_CHECK(T == label)
      << "Expand called on a non-closed label (fixpoint not converged?): "
      << "label=" << label.ToString() << " closed=" << T.ToString();
  return expand_cache_.emplace(label, std::move(child_labels)).first->second;
}

}  // namespace relspec
