#include "src/core/subtree_closure.h"

#include <algorithm>
#include <utility>

#include "src/base/failpoint.h"
#include "src/base/governor.h"
#include "src/base/logging.h"
#include "src/base/metrics.h"
#include "src/base/str_util.h"
#include "src/base/task_pool.h"

namespace relspec {

// Live-table policy: child seeds are interned into the table as demanded,
// context emissions go straight to the shared bitset (today's exact
// single-threaded behavior).
struct ChiEngine::SequentialPolicy {
  ChiEngine* e;

  DynamicBitset ChildValue(const DynamicBitset& seed) {
    return e->Value(e->EntryFor(seed));
  }
  const DynamicBitset& ctx() const { return *e->ctx_; }
  void CtxSet(CtxIdx c) {
    e->ctx_->Set(c);
    *e->ctx_changed_ = true;
  }
};

// Snapshot policy for one chunk of a parallel pass. Reads are against the
// start-of-pass table (plus this chunk's own updates, for Gauss-Seidel
// convergence within the chunk); every write lands in chunk-local buffers
// that the calling thread merges in chunk order.
struct ChiEngine::ChunkPolicy {
  const ChiEngine* e;
  /// ctx snapshot | this chunk's emissions (what BodySatisfied sees).
  DynamicBitset eff_ctx;
  /// This chunk's emissions only (merged into the live ctx afterwards).
  DynamicBitset* ctx_add;
  /// entry id -> value recomputed by this chunk.
  std::unordered_map<uint32_t, DynamicBitset>* updated;
  /// Seeds absent from the table, in first-demand order.
  std::unordered_map<DynamicBitset, uint32_t, DynamicBitsetHash>* seen_seeds;
  std::vector<DynamicBitset>* new_seeds;

  DynamicBitset ChildValue(const DynamicBitset& seed) {
    auto it = e->index_.find(seed);
    if (it != e->index_.end()) {
      auto u = updated->find(it->second);
      return u != updated->end() ? u->second : e->entries_[it->second].value;
    }
    if (seen_seeds->emplace(seed, 0).second) new_seeds->push_back(seed);
    return seed;  // a fresh entry starts with value == seed
  }
  const DynamicBitset& ctx() const { return eff_ctx; }
  void CtxSet(CtxIdx c) {
    eff_ctx.Set(c);
    ctx_add->Set(c);
  }
};

uint32_t ChiEngine::EntryFor(const DynamicBitset& seed) {
  RELSPEC_COUNTER("chi.lookups");
  auto it = index_.find(seed);
  if (it != index_.end()) {
    RELSPEC_COUNTER("chi.hits");
    return it->second;
  }
  RELSPEC_COUNTER("chi.misses");
  uint32_t id = static_cast<uint32_t>(entries_.size());
  entries_.push_back(Entry{seed, seed});
  index_.emplace(seed, id);
  return id;
}

template <typename Policy>
bool ChiEngine::CloseNodeWith(Policy& policy, DynamicBitset* T,
                              std::vector<DynamicBitset>* child_labels) {
  RELSPEC_COUNTER("chi.close_node_calls");
  const size_t num_syms = ground_->num_symbols();
  const size_t num_atoms = ground_->num_atoms();
  bool changed = false;

  while (true) {
    // Mutual fixpoint of child seeds and child labels given the node label.
    std::vector<DynamicBitset> seeds(num_syms, DynamicBitset(num_atoms));
    child_labels->assign(num_syms, DynamicBitset(num_atoms));
    bool seeds_changed = true;
    while (seeds_changed) {
      seeds_changed = false;
      for (size_t f = 0; f < num_syms; ++f) {
        (*child_labels)[f] = policy.ChildValue(seeds[f]);
      }
      for (const GroundRule& rule : ground_->local_rules()) {
        if (rule.head_kind != GroundRule::HeadKind::kChild) continue;
        if (seeds[rule.head_sym].Test(rule.head_id)) continue;
        if (BodySatisfied(rule, *T, policy.ctx(),
                          [&](SymIdx s) -> const DynamicBitset& {
                            return (*child_labels)[s];
                          })) {
          seeds[rule.head_sym].Set(rule.head_id);
          seeds_changed = true;
        }
      }
    }

    // Up-propagation into the node label and existential context emissions.
    bool t_changed = false;
    for (const GroundRule& rule : ground_->local_rules()) {
      if (rule.head_kind == GroundRule::HeadKind::kChild) continue;
      bool is_eps = rule.head_kind == GroundRule::HeadKind::kEps;
      if (is_eps && T->Test(rule.head_id)) continue;
      if (!is_eps && policy.ctx().Test(rule.head_id)) continue;
      if (BodySatisfied(rule, *T, policy.ctx(),
                        [&](SymIdx s) -> const DynamicBitset& {
                          return (*child_labels)[s];
                        })) {
        if (is_eps) {
          T->Set(rule.head_id);
          t_changed = true;
          changed = true;
        } else {
          policy.CtxSet(rule.head_id);
          changed = true;
        }
      }
    }
    if (!t_changed) break;
  }
  return changed;
}

bool ChiEngine::CloseNode(DynamicBitset* T,
                          std::vector<DynamicBitset>* child_labels) {
  SequentialPolicy policy{this};
  return CloseNodeWith(policy, T, child_labels);
}

StatusOr<bool> ChiEngine::ProcessAllOnce(TaskPool* pool) {
  if (pool != nullptr && pool->num_threads() > 1 && entries_.size() > 1) {
    return ProcessAllOnceParallel(pool);
  }
  RELSPEC_COUNTER("chi.passes");
  RELSPEC_SCOPED_TIMER("chi.pass_ns");
  RELSPEC_FAILPOINT("chi.pass");
  bool changed = false;
  for (size_t i = 0; i < entries_.size(); ++i) {
    RELSPEC_COUNTER("chi.entries_processed");
    if (entries_.size() > max_entries_) {
      return Status::ResourceExhausted(
          StrFormat("chi table exceeded max_entries=%zu", max_entries_));
    }
    if (governor_ != nullptr) {
      RELSPEC_RETURN_NOT_OK(governor_->CheckNodes(entries_.size()));
    }
    // Copy out: entries_ may reallocate while children are demanded.
    DynamicBitset T = entries_[i].value;
    std::vector<DynamicBitset> child_labels;
    bool entry_changed = CloseNode(&T, &child_labels);
    if (T != entries_[i].value) {
      entries_[i].value = std::move(T);
      entry_changed = true;
    }
    changed |= entry_changed;
  }
  if (changed) expand_cache_.clear();
  return changed;
}

StatusOr<bool> ChiEngine::ProcessAllOnceParallel(TaskPool* pool) {
  RELSPEC_COUNTER("chi.passes");
  RELSPEC_COUNTER("chi.parallel_passes");
  RELSPEC_SCOPED_TIMER("chi.pass_ns");
  RELSPEC_PHASE("chi.parallel_pass");
  RELSPEC_FAILPOINT("chi.pass");

  const size_t n = entries_.size();
  const DynamicBitset ctx_snapshot = *ctx_;
  struct ChunkOut {
    std::vector<std::pair<uint32_t, DynamicBitset>> updated;  // sorted by id
    std::vector<DynamicBitset> new_seeds;  // in first-demand order
    DynamicBitset ctx_add;
  };
  std::vector<ChunkOut> outs(pool->NumChunks(n, 1));

  // Fan-out: the table, index and live ctx are read-only here; every write
  // goes to chunk-local buffers.
  pool->ParallelFor(0, n, 1, [&](size_t lo, size_t hi, size_t chunk) {
    ChunkOut& out = outs[chunk];
    out.ctx_add = DynamicBitset(ctx_snapshot.size());
    // Cooperative cancellation: a chunk that starts after a breach drains
    // immediately (its empty buffers merge as no-ops); the coordinating
    // thread turns the condition into a Status below.
    if (governor_ != nullptr && governor_->ShouldAbort()) return;
    std::unordered_map<uint32_t, DynamicBitset> updated;
    std::unordered_map<DynamicBitset, uint32_t, DynamicBitsetHash> seen_seeds;
    ChunkPolicy policy{this,     ctx_snapshot,   &out.ctx_add,
                       &updated, &seen_seeds,    &out.new_seeds};
    for (size_t i = lo; i < hi; ++i) {
      RELSPEC_COUNTER("chi.entries_processed");
      DynamicBitset T = entries_[i].value;
      std::vector<DynamicBitset> child_labels;
      CloseNodeWith(policy, &T, &child_labels);
      if (T != entries_[i].value) {
        updated[static_cast<uint32_t>(i)] = std::move(T);
      }
    }
    out.updated.assign(updated.begin(), updated.end());
    std::sort(out.updated.begin(), out.updated.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  });

  // Single-threaded merge in chunk order.
  bool changed = false;
  for (ChunkOut& out : outs) {
    for (auto& [id, value] : out.updated) {
      entries_[id].value = std::move(value);
      changed = true;
    }
    for (DynamicBitset& seed : out.new_seeds) {
      size_t before = entries_.size();
      EntryFor(seed);
      // A fresh entry has not been closed yet; force another pass.
      if (entries_.size() > before) changed = true;
    }
    if (ctx_->UnionWith(out.ctx_add)) {
      *ctx_changed_ = true;
      changed = true;
    }
  }
  if (entries_.size() > max_entries_) {
    return Status::ResourceExhausted(
        StrFormat("chi table exceeded max_entries=%zu", max_entries_));
  }
  if (governor_ != nullptr) {
    RELSPEC_RETURN_NOT_OK(governor_->CheckNodes(entries_.size()));
  }
  if (changed) expand_cache_.clear();
  return changed;
}

const std::vector<DynamicBitset>& ChiEngine::Expand(
    const DynamicBitset& label) {
  auto it = expand_cache_.find(label);
  if (it != expand_cache_.end()) {
    RELSPEC_COUNTER("chi.expand_cache_hits");
    return it->second;
  }
  RELSPEC_COUNTER("chi.expansions");
  DynamicBitset T = label;
  std::vector<DynamicBitset> child_labels;
  CloseNode(&T, &child_labels);
  // At convergence of the surrounding fixpoint, a real node's label is
  // already closed; CloseNode must not grow it. A frozen engine serves a
  // truncated (interrupted) fixpoint whose labels are legitimately
  // non-closed under-approximations, so the invariant is waived there.
  if (!frozen_) {
    RELSPEC_CHECK(T == label)
        << "Expand called on a non-closed label (fixpoint not converged?): "
        << "label=" << label.ToString() << " closed=" << T.ToString();
  }
  return expand_cache_.emplace(label, std::move(child_labels)).first->second;
}

}  // namespace relspec
