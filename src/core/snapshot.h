// Binary snapshots of relational specifications.
//
// A snapshot is the warm-start companion of the text format in spec_io.h:
// the same self-contained specification — primary database (slices +
// globals), symbol table, and graph/equational structure — in a versioned,
// checksummed binary layout that loads without parsing. Loading a snapshot
// and re-serializing through SpecIo is byte-identical to serializing the
// original specification, so snapshots are interchangeable with text specs
// everywhere (and the differential/golden tests hold them to that).
//
// Wire layout (see docs/SNAPSHOT_FORMAT.md for the field-level reference):
//
//   header   magic "RSNP" | u32 version | u32 kind | u64 checksum
//   body     sections, each: u32 tag | u64 payload length | payload
//
// All integers are little-endian. The checksum covers every body byte; the
// loader verifies it before looking at any section, and every read is
// bounds-checked, so truncated files, flipped bits, and wrong versions all
// come back as InvalidArgument — never a crash (the fuzz corpus in
// tests/fuzz_parser.cc drives this).

#ifndef RELSPEC_CORE_SNAPSHOT_H_
#define RELSPEC_CORE_SNAPSHOT_H_

#include <string>
#include <string_view>

#include "src/base/status.h"
#include "src/core/equational_spec.h"
#include "src/core/graph_spec.h"

namespace relspec {

class Snapshot {
 public:
  enum class Kind : uint32_t { kGraph = 1, kEquational = 2 };

  static constexpr char kMagic[4] = {'R', 'S', 'N', 'P'};
  static constexpr uint32_t kVersion = 1;

  /// Serializes a graph specification (B, F) to snapshot bytes.
  static std::string Serialize(const GraphSpecification& spec);
  /// Serializes an equational specification (B, R) to snapshot bytes.
  static std::string Serialize(const EquationalSpecification& spec);

  /// The kind recorded in a snapshot header (validates magic + version +
  /// checksum reachability only as far as the header).
  static StatusOr<Kind> PeekKind(std::string_view bytes);

  /// Parses a graph-spec snapshot; the result is fully queryable.
  static StatusOr<GraphSpecification> ParseGraphSpec(std::string_view bytes);
  static StatusOr<EquationalSpecification> ParseEquationalSpec(
      std::string_view bytes);
};

}  // namespace relspec

#endif  // RELSPEC_CORE_SNAPSHOT_H_
