#include "src/core/ground.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

#include "src/ast/printer.h"
#include "src/core/analysis.h"
#include "src/ast/validate.h"
#include "src/base/logging.h"
#include "src/base/str_util.h"

namespace relspec {

namespace {
uint64_t MixHash(uint64_t h, uint64_t v) {
  h ^= v;
  h *= 1099511628211ull;
  return h;
}
}  // namespace

size_t SliceAtomHasher::operator()(const SliceAtom& a) const {
  uint64_t h = 1469598103934665603ull;
  h = MixHash(h, a.pred);
  for (ConstId c : a.args) h = MixHash(h, c);
  return static_cast<size_t>(h);
}

size_t GroundProgram::SliceAtomHash::operator()(const SliceAtom& a) const {
  return SliceAtomHasher{}(a);
}

size_t GroundProgram::CtxPropHash::operator()(const CtxProp& p) const {
  uint64_t h = 1469598103934665603ull;
  h = MixHash(h, static_cast<uint64_t>(p.kind));
  h = MixHash(h, p.pred);
  for (ConstId c : p.args) h = MixHash(h, c);
  h = MixHash(h, p.path.Hash());
  h = MixHash(h, p.atom);
  return static_cast<size_t>(h);
}

AtomIdx GroundProgram::FindAtom(const SliceAtom& key) const {
  auto it = atom_index_.find(key);
  return it == atom_index_.end() ? kInvalidId : it->second;
}

CtxIdx GroundProgram::FindGlobal(PredId pred,
                                 const std::vector<ConstId>& args) const {
  CtxProp key;
  key.kind = CtxProp::Kind::kGlobal;
  key.pred = pred;
  key.args = args;
  auto it = ctx_index_.find(key);
  return it == ctx_index_.end() ? kInvalidId : it->second;
}

SymIdx GroundProgram::SymIndexOf(FuncId f) const {
  auto it = sym_index_.find(f);
  return it == sym_index_.end() ? kInvalidId : it->second;
}

bool GroundProgram::SameUniverse(const GroundProgram& o) const {
  // Vector equality compares interning *order*, not just set membership:
  // a labeling carries AtomIdx/CtxIdx bitsets, so indices must line up.
  return atoms_ == o.atoms_ && ctx_props_ == o.ctx_props_ &&
         alphabet_ == o.alphabet_ && trunk_depth_ == o.trunk_depth_ &&
         local_rules_ == o.local_rules_ && global_rules_ == o.global_rules_;
}

std::string GroundProgram::AtomToString(AtomIdx i,
                                        const SymbolTable& symbols) const {
  const SliceAtom& a = atoms_[i];
  std::string out = symbols.predicate(a.pred).name + "(@";
  for (ConstId c : a.args) {
    out += ",";
    out += symbols.constant_name(c);
  }
  out += ")";
  return out;
}

std::string GroundProgram::CtxToString(CtxIdx i,
                                       const SymbolTable& symbols) const {
  const CtxProp& p = ctx_props_[i];
  if (p.kind == CtxProp::Kind::kGlobal) {
    std::string out = symbols.predicate(p.pred).name + "(";
    for (size_t k = 0; k < p.args.size(); ++k) {
      if (k > 0) out += ",";
      out += symbols.constant_name(p.args[k]);
    }
    out += ")";
    return out;
  }
  return StrFormat("pinned[%s: %s]", p.path.ToString(symbols).c_str(),
                   AtomToString(p.atom, symbols).c_str());
}

std::string GroundProgram::RuleToString(const GroundRule& r,
                                        const SymbolTable& symbols) const {
  std::vector<std::string> parts;
  for (AtomIdx a : r.body_eps) parts.push_back(AtomToString(a, symbols) + "@s");
  for (const auto& [sym, a] : r.body_child) {
    parts.push_back(AtomToString(a, symbols) + "@" +
                    symbols.function(alphabet_[sym]).name + "(s)");
  }
  for (CtxIdx c : r.body_ctx) parts.push_back(CtxToString(c, symbols));
  std::string head;
  switch (r.head_kind) {
    case GroundRule::HeadKind::kEps:
      head = AtomToString(r.head_id, symbols) + "@s";
      break;
    case GroundRule::HeadKind::kChild:
      head = AtomToString(r.head_id, symbols) + "@" +
             symbols.function(alphabet_[r.head_sym]).name + "(s)";
      break;
    case GroundRule::HeadKind::kCtx:
      head = CtxToString(r.head_id, symbols);
      break;
  }
  return Join(parts, ", ") + " -> " + head;
}

namespace {

struct GroundRuleHash {
  size_t operator()(const GroundRule& r) const {
    uint64_t h = 1469598103934665603ull;
    for (AtomIdx a : r.body_eps) h = MixHash(h, a);
    for (const auto& [s, a] : r.body_child) h = MixHash(h, (uint64_t{s} << 32) | a);
    for (CtxIdx c : r.body_ctx) h = MixHash(h, c);
    h = MixHash(h, static_cast<uint64_t>(r.head_kind));
    h = MixHash(h, r.head_sym);
    h = MixHash(h, r.head_id);
    return static_cast<size_t>(h);
  }
};

}  // namespace

// Friend of GroundProgram; see ground.h.
class Grounder {
 public:
  Grounder(const Program& program, const GroundOptions& options)
      : program_(program), options_(options) {}

  StatusOr<GroundProgram> Run() {
    if (HasMixedOccurrences(program_)) {
      return Status::FailedPrecondition(
          "grounding requires a pure program; run MixedToPure first");
    }
    if (!IsNormalProgram(program_)) {
      return Status::FailedPrecondition(
          "grounding requires a normal program; run NormalizeProgram first");
    }
    RELSPEC_RETURN_NOT_OK(ValidateProgram(program_));

    out_.alphabet_ = program_.PureFunctions();
    for (SymIdx i = 0; i < out_.alphabet_.size(); ++i) {
      out_.sym_index_.emplace(out_.alphabet_[i], i);
    }
    out_.trunk_depth_ = program_.MaxGroundDepth();
    domain_ = program_.ActiveDomain();

    // EDB non-functional predicates: never derived by any rule.
    std::set<PredId> head_preds;
    for (const Rule& r : program_.rules) head_preds.insert(r.head.pred);
    for (PredId p = 0; p < program_.symbols.num_predicates(); ++p) {
      if (!program_.symbols.predicate(p).functional && head_preds.count(p) == 0) {
        edb_preds_.insert(p);
      }
    }
    for (const Atom& f : program_.facts) {
      facts_by_pred_[f.pred].push_back(&f);
    }

    RELSPEC_RETURN_NOT_OK(GroundFacts());
    for (const Rule& r : program_.rules) {
      RELSPEC_RETURN_NOT_OK(GroundOneRule(r));
    }
    return std::move(out_);
  }

 private:
  AtomIdx InternAtom(SliceAtom a) {
    auto it = out_.atom_index_.find(a);
    if (it != out_.atom_index_.end()) return it->second;
    AtomIdx id = static_cast<AtomIdx>(out_.atoms_.size());
    out_.atoms_.push_back(a);
    out_.atom_index_.emplace(std::move(a), id);
    return id;
  }

  CtxIdx InternCtx(CtxProp p) {
    auto it = out_.ctx_index_.find(p);
    if (it != out_.ctx_index_.end()) return it->second;
    CtxIdx id = static_cast<CtxIdx>(out_.ctx_props_.size());
    out_.ctx_props_.push_back(p);
    out_.ctx_index_.emplace(std::move(p), id);
    return id;
  }

  // The functional term of a ground atom as a Path.
  StatusOr<Path> GroundPath(const FuncTerm& t) const {
    if (!t.IsGround()) return Status::Internal("GroundPath on non-ground term");
    std::vector<FuncId> syms;
    syms.reserve(t.apps.size());
    for (const FuncApply& a : t.apps) syms.push_back(a.fn);
    return Path(std::move(syms));
  }

  Status GroundFacts() {
    for (const Atom& f : program_.facts) {
      if (f.fterm.has_value()) {
        RELSPEC_ASSIGN_OR_RETURN(Path path, GroundPath(*f.fterm));
        SliceAtom atom;
        atom.pred = f.pred;
        for (const NfArg& a : f.args) atom.args.push_back(a.id);
        out_.pinned_facts_.emplace_back(std::move(path), InternAtom(atom));
      } else {
        CtxProp prop;
        prop.kind = CtxProp::Kind::kGlobal;
        prop.pred = f.pred;
        for (const NfArg& a : f.args) prop.args.push_back(a.id);
        out_.global_facts_.push_back(InternCtx(std::move(prop)));
      }
    }
    return Status::OK();
  }

  // --- per-rule grounding ---

  Status GroundOneRule(const Rule& rule) {
    // Split body into EDB-prunable atoms and the rest.
    std::vector<const Atom*> edb_atoms;
    std::vector<const Atom*> other_body;
    for (const Atom& a : rule.body) {
      if (options_.edb_pruning && !a.fterm.has_value() &&
          edb_preds_.count(a.pred) > 0) {
        edb_atoms.push_back(&a);
      } else {
        other_body.push_back(&a);
      }
    }
    std::map<VarId, ConstId> subst;
    return MatchEdb(rule, edb_atoms, other_body, 0, &subst);
  }

  Status MatchEdb(const Rule& rule, const std::vector<const Atom*>& edb_atoms,
                  const std::vector<const Atom*>& other_body, size_t i,
                  std::map<VarId, ConstId>* subst) {
    if (i == edb_atoms.size()) {
      return EnumerateFreeVars(rule, other_body, subst);
    }
    const Atom& atom = *edb_atoms[i];
    auto it = facts_by_pred_.find(atom.pred);
    if (it == facts_by_pred_.end()) return Status::OK();  // no facts: no match
    for (const Atom* fact : it->second) {
      std::vector<VarId> bound_here;
      bool ok = true;
      for (size_t k = 0; k < atom.args.size() && ok; ++k) {
        const NfArg& pat = atom.args[k];
        ConstId val = fact->args[k].id;
        if (pat.IsConstant()) {
          ok = pat.id == val;
        } else {
          auto sit = subst->find(pat.id);
          if (sit == subst->end()) {
            (*subst)[pat.id] = val;
            bound_here.push_back(pat.id);
          } else {
            ok = sit->second == val;
          }
        }
      }
      if (ok) {
        RELSPEC_RETURN_NOT_OK(MatchEdb(rule, edb_atoms, other_body, i + 1, subst));
      }
      for (VarId v : bound_here) subst->erase(v);
    }
    return Status::OK();
  }

  Status EnumerateFreeVars(const Rule& rule,
                           const std::vector<const Atom*>& other_body,
                           std::map<VarId, ConstId>* subst) {
    // Remaining unbound non-functional variables of the rule.
    std::set<VarId> vars;
    auto collect = [&vars](const Atom& a) {
      std::vector<VarId> nf;
      std::optional<VarId> fv;
      CollectVariables(a, &nf, &fv);
      vars.insert(nf.begin(), nf.end());
    };
    collect(rule.head);
    for (const Atom& a : rule.body) collect(a);
    std::vector<VarId> free;
    for (VarId v : vars) {
      if (subst->count(v) == 0) free.push_back(v);
    }
    if (!free.empty() && domain_.empty()) return Status::OK();  // cannot bind

    std::vector<size_t> idx(free.size(), 0);
    while (true) {
      for (size_t k = 0; k < free.size(); ++k) (*subst)[free[k]] = domain_[idx[k]];
      RELSPEC_RETURN_NOT_OK(EmitInstance(rule, other_body, *subst));
      size_t k = 0;
      for (; k < idx.size(); ++k) {
        if (++idx[k] < domain_.size()) break;
        idx[k] = 0;
      }
      if (k == idx.size() || free.empty()) break;
    }
    for (VarId v : free) subst->erase(v);
    return Status::OK();
  }

  StatusOr<SliceAtom> SubstSliceAtom(const Atom& atom,
                                     const std::map<VarId, ConstId>& subst) {
    SliceAtom out;
    out.pred = atom.pred;
    for (const NfArg& a : atom.args) {
      if (a.IsConstant()) {
        out.args.push_back(a.id);
      } else {
        auto it = subst.find(a.id);
        if (it == subst.end()) {
          return Status::Internal("unbound variable during grounding");
        }
        out.args.push_back(it->second);
      }
    }
    return out;
  }

  Status EmitInstance(const Rule& rule, const std::vector<const Atom*>& body,
                      const std::map<VarId, ConstId>& subst) {
    GroundRule g;
    for (const Atom* ap : body) {
      const Atom& a = *ap;
      if (!a.fterm.has_value()) {
        RELSPEC_ASSIGN_OR_RETURN(SliceAtom sa, SubstSliceAtom(a, subst));
        CtxProp prop;
        prop.kind = CtxProp::Kind::kGlobal;
        prop.pred = sa.pred;
        prop.args = std::move(sa.args);
        g.body_ctx.push_back(InternCtx(std::move(prop)));
        continue;
      }
      RELSPEC_ASSIGN_OR_RETURN(SliceAtom sa, SubstSliceAtom(a, subst));
      const FuncTerm& t = *a.fterm;
      if (t.IsGround()) {
        RELSPEC_ASSIGN_OR_RETURN(Path path, GroundPath(t));
        CtxProp prop;
        prop.kind = CtxProp::Kind::kPinned;
        prop.path = std::move(path);
        prop.atom = InternAtom(std::move(sa));
        g.body_ctx.push_back(InternCtx(std::move(prop)));
      } else if (t.depth() == 0) {
        g.body_eps.push_back(InternAtom(std::move(sa)));
      } else {  // depth 1: f(s)
        SymIdx sym = out_.SymIndexOf(t.apps[0].fn);
        RELSPEC_CHECK_NE(sym, kInvalidId);
        g.body_child.emplace_back(sym, InternAtom(std::move(sa)));
      }
    }

    const Atom& h = rule.head;
    RELSPEC_ASSIGN_OR_RETURN(SliceAtom hs, SubstSliceAtom(h, subst));
    if (!h.fterm.has_value()) {
      CtxProp prop;
      prop.kind = CtxProp::Kind::kGlobal;
      prop.pred = hs.pred;
      prop.args = std::move(hs.args);
      g.head_kind = GroundRule::HeadKind::kCtx;
      g.head_id = InternCtx(std::move(prop));
    } else if (h.fterm->IsGround()) {
      RELSPEC_ASSIGN_OR_RETURN(Path path, GroundPath(*h.fterm));
      CtxProp prop;
      prop.kind = CtxProp::Kind::kPinned;
      prop.path = std::move(path);
      prop.atom = InternAtom(std::move(hs));
      g.head_kind = GroundRule::HeadKind::kCtx;
      g.head_id = InternCtx(std::move(prop));
    } else if (h.fterm->depth() == 0) {
      g.head_kind = GroundRule::HeadKind::kEps;
      g.head_id = InternAtom(std::move(hs));
    } else {
      g.head_kind = GroundRule::HeadKind::kChild;
      g.head_sym = out_.SymIndexOf(h.fterm->apps[0].fn);
      RELSPEC_CHECK_NE(g.head_sym, kInvalidId);
      g.head_id = InternAtom(std::move(hs));
    }

    // Canonicalize for deduplication.
    std::sort(g.body_eps.begin(), g.body_eps.end());
    g.body_eps.erase(std::unique(g.body_eps.begin(), g.body_eps.end()),
                     g.body_eps.end());
    std::sort(g.body_child.begin(), g.body_child.end());
    g.body_child.erase(std::unique(g.body_child.begin(), g.body_child.end()),
                       g.body_child.end());
    std::sort(g.body_ctx.begin(), g.body_ctx.end());
    g.body_ctx.erase(std::unique(g.body_ctx.begin(), g.body_ctx.end()),
                     g.body_ctx.end());

    if (!seen_rules_.insert(g).second) return Status::OK();
    if (seen_rules_.size() > options_.max_rules) {
      return Status::ResourceExhausted(
          StrFormat("grounding exceeded max_rules=%zu", options_.max_rules));
    }
    if (g.IsLocal()) {
      out_.local_rules_.push_back(std::move(g));
    } else {
      out_.global_rules_.push_back(std::move(g));
    }
    return Status::OK();
  }

  const Program& program_;
  GroundOptions options_;
  GroundProgram out_;
  std::vector<ConstId> domain_;
  std::set<PredId> edb_preds_;
  std::map<PredId, std::vector<const Atom*>> facts_by_pred_;
  std::unordered_set<GroundRule, GroundRuleHash> seen_rules_;
};

StatusOr<GroundProgram> Ground(const Program& program,
                               const GroundOptions& options) {
  Grounder grounder(program, options);
  return grounder.Run();
}

}  // namespace relspec
