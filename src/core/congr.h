// The canonical form CONGR (Section 3.6).
//
// Any set of functional rules Z with database D is equivalent to the single,
// database-independent rule set CONGR applied to the database C = B ∪ R:
//
//   eq(x, x)                      <- term(x).
//   eq(x, y)                      <- eq(y, x).
//   eq(x, y)                      <- eq(x, z), eq(z, y).
//   eq(x', y')                    <- eq(x, y), apply_f(x, x'), apply_f(y, y').
//   P(t, z...)                    <- P(s, z...), eq(s, t).      (per P)
//
// CONGR's rules are not functional (eq has two functional components), so
// they are evaluated with the plain DATALOG substrate over a bounded term
// universe; EvaluateCongrBounded materializes LFP(CONGR, C) for all terms of
// depth <= bound and the tests check it coincides with the specification.
// The rule set depends only on the predicates of Z, not on Z's rules — the
// canonical-form property.

#ifndef RELSPEC_CORE_CONGR_H_
#define RELSPEC_CORE_CONGR_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/core/equational_spec.h"
#include "src/datalog/database.h"
#include "src/datalog/evaluator.h"

namespace relspec {

/// The materialized LFP(CONGR, C) over a bounded universe.
struct BoundedCongrResult {
  /// Terms of depth <= bound in shortlex order; relation columns holding
  /// functional components store indices into this vector.
  std::vector<Path> terms;
  /// eq and apply_f get synthetic predicate ids above the user predicates.
  PredId eq_pred = kInvalidId;
  PredId term_pred = kInvalidId;
  std::vector<std::pair<FuncId, PredId>> apply_preds;
  datalog::Database db;
  datalog::EvalStats stats;

  /// Index of a path in `terms`, or kInvalidId.
  uint32_t TermIndex(const Path& path) const;
  /// Membership of pred(path, args...) in the materialized fixpoint.
  bool Holds(const Path& path, PredId pred,
             const std::vector<ConstId>& args) const;
};

/// Pretty-prints the CONGR rule set for the given specification's
/// predicates (the database-independent canonical form).
std::string CongrRulesText(const EquationalSpecification& spec);

/// Evaluates LFP(CONGR, B ∪ R) over all terms of depth <= bound using the
/// DATALOG engine. `bound` must cover every term in B and R.
StatusOr<BoundedCongrResult> EvaluateCongrBounded(
    const EquationalSpecification& spec, int bound,
    datalog::Strategy strategy = datalog::Strategy::kSemiNaive);

}  // namespace relspec

#endif  // RELSPEC_CORE_CONGR_H_
