#include "src/core/label_graph.h"

#include <deque>
#include <unordered_set>

#include "src/base/logging.h"
#include "src/base/metrics.h"
#include "src/base/str_util.h"

namespace relspec {

uint32_t LabelGraph::ClusterOf(const Path& path) const {
  for (FuncId f : path.symbols()) {
    if (sym_index_.count(f) == 0) return kInvalidId;
  }
  if (path.depth() < frontier_depth_) return trunk_cluster_.at(path);
  uint32_t cur = boundary_cluster_.at(path.Prefix(frontier_depth_));
  for (int i = frontier_depth_; i < path.depth(); ++i) {
    cur = clusters_[cur].successors[sym_index_.at(path.at(i))];
  }
  return cur;
}

size_t LabelGraph::EquivalenceScope() const {
  std::unordered_set<DynamicBitset, DynamicBitsetHash> labels;
  for (const Cluster& c : clusters_) labels.insert(c.label);
  return labels.size();
}

StatusOr<LabelGraph> BuildLabelGraph(Labeling* labeling,
                                     const LabelGraphOptions& options) {
  RELSPEC_PHASE("algorithm_q");
  LabelGraph out;
  const GroundProgram& ground = labeling->ground();
  const int c = ground.trunk_depth();
  const int frontier = options.merge_trunk_frontier ? c : c + 1;
  out.trunk_depth_ = c;
  out.frontier_depth_ = frontier;
  out.num_symbols_ = ground.num_symbols();
  for (SymIdx i = 0; i < ground.num_symbols(); ++i) {
    out.sym_index_.emplace(ground.alphabet()[i], i);
  }

  // Trunk clusters: one singleton per path of depth < frontier, shortlex.
  for (const Path& w : labeling->trunk_paths()) {
    if (w.depth() >= frontier) continue;
    uint32_t id = static_cast<uint32_t>(out.clusters_.size());
    Cluster cl;
    cl.representative = w;
    cl.label = labeling->TrunkLabel(w);
    cl.trunk = true;
    out.clusters_.push_back(std::move(cl));
    out.trunk_cluster_.emplace(w, id);
  }

  // Algorithm Q: breadth-first from the frontier layer.
  std::unordered_map<DynamicBitset, uint32_t, DynamicBitsetHash> label_to_cluster;
  std::deque<Path> queue;
  if (frontier <= c) {
    for (const Path& w : labeling->trunk_paths()) {
      if (w.depth() == frontier) queue.push_back(w);
    }
  } else {
    for (const Path& w : labeling->trunk_paths()) {
      if (w.depth() != c) continue;
      for (FuncId f : ground.alphabet()) queue.push_back(w.Extend(f));
    }
  }
  while (!queue.empty()) {
    Path p = std::move(queue.front());
    queue.pop_front();
    ++out.num_potential_;
    DynamicBitset label = labeling->LabelOf(p);
    auto it = label_to_cluster.find(label);
    if (it != label_to_cluster.end()) {
      // Inactive: subsumed by an earlier Active term; branch not extended.
      if (p.depth() == frontier) out.boundary_cluster_.emplace(p, it->second);
      continue;
    }
    // Active: p is the representative of a new cluster.
    uint32_t id = static_cast<uint32_t>(out.clusters_.size());
    if (out.clusters_.size() >= options.max_clusters) {
      return Status::ResourceExhausted(
          StrFormat("label graph exceeded max_clusters=%zu",
                    options.max_clusters));
    }
    Cluster cl;
    cl.representative = p;
    cl.label = label;
    out.clusters_.push_back(std::move(cl));
    label_to_cluster.emplace(std::move(label), id);
    if (p.depth() == frontier) out.boundary_cluster_.emplace(p, id);
    ++out.num_active_;
    for (FuncId f : ground.alphabet()) queue.push_back(p.Extend(f));
  }

  // Successor mappings.
  for (Cluster& cl : out.clusters_) {
    cl.successors.assign(ground.num_symbols(), kInvalidId);
    for (SymIdx s = 0; s < ground.num_symbols(); ++s) {
      Path child = cl.representative.Extend(ground.alphabet()[s]);
      if (cl.trunk) {
        if (child.depth() < frontier) {
          cl.successors[s] = out.trunk_cluster_.at(child);
        } else {
          cl.successors[s] = out.boundary_cluster_.at(child);
        }
      } else {
        auto it = label_to_cluster.find(labeling->LabelOf(child));
        if (it == label_to_cluster.end()) {
          return Status::Internal(
              "successor label missing from the cluster index (BFS did not "
              "close the graph)");
        }
        cl.successors[s] = it->second;
      }
    }
  }
  RELSPEC_GAUGE_SET("labelgraph.clusters", out.clusters_.size());
  RELSPEC_GAUGE_SET("labelgraph.active", out.num_active_);
  RELSPEC_GAUGE_SET("labelgraph.potential", out.num_potential_);
  return out;
}

}  // namespace relspec
